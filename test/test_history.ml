(* Tests for the formal history model: operations, recording, derived
   relations and well-formedness (Section 3 of the paper). *)

module Op = Mc_history.Op
module History = Mc_history.History
module Recorder = Mc_history.Recorder
module Dsl = Mc_history.Dsl
module Relation = Mc_util.Relation

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* ------------------------------------------------------------------ *)
(* Op                                                                  *)
(* ------------------------------------------------------------------ *)

let mk kind : Op.t = { id = 0; proc = 0; kind; inv_seq = 0; resp_seq = 1; sync_seq = -1 }

let test_op_classification () =
  let w = mk (Op.Write { loc = "x"; value = 3 }) in
  let r = mk (Op.Read { loc = "x"; label = Op.PRAM; value = 3 }) in
  let d = mk (Op.Decrement { loc = "c"; amount = 2; observed = 5 }) in
  let a = mk (Op.Await { loc = "x"; value = 3 }) in
  let b = mk (Op.Barrier 0) in
  let l = mk (Op.Write_lock "m") in
  check "write writes" true (Op.writes_value w = Some ("x", 3));
  check "read reads" true (Op.reads_value r = Some ("x", 3));
  check "dec writes observed - amount" true (Op.writes_value d = Some ("c", 3));
  check "dec observes" true (Op.reads_value d = Some ("c", 5));
  check "await reads" true (Op.reads_value a = Some ("x", 3));
  check "barrier neither" true (Op.writes_value b = None && Op.reads_value b = None);
  check "read is memory read" true (Op.is_memory_read r);
  check "await is not memory read" false (Op.is_memory_read a);
  check "dec is write-like" true (Op.is_write_like d);
  check "lock is sync" true (Op.is_sync l);
  check "lock object" true (Op.lock_of l = Some "m");
  check "to_string mentions location" true
    (String.length (Op.to_string w) > 0)

(* ------------------------------------------------------------------ *)
(* Recorder                                                            *)
(* ------------------------------------------------------------------ *)

let test_recorder_sequencing () =
  let r = Recorder.create ~procs:2 () in
  let id0 = Recorder.record r ~proc:0 (Op.Write { loc = "x"; value = 1 }) in
  let id1 = Recorder.record r ~proc:0 (Op.Read { loc = "x"; label = Op.Causal; value = 1 }) in
  let id2 = Recorder.record r ~proc:1 (Op.Write { loc = "y"; value = 2 }) in
  check_int "ids sequential" 0 id0;
  check_int "ids sequential" 1 id1;
  check_int "ids sequential" 2 id2;
  let h = Recorder.history r in
  check_int "procs" 2 (History.procs h);
  let po = History.program_order h in
  check "same proc ordered" true (Relation.mem po 0 1);
  check "cross proc unordered" false (Relation.mem po 0 2 || Relation.mem po 2 0)

let test_recorder_overlap () =
  let r = Recorder.create ~procs:1 () in
  let t1 = Recorder.start r ~proc:0 in
  let t2 = Recorder.start r ~proc:0 in
  let _id1 = Recorder.finish r t1 (Op.Write { loc = "x"; value = 1 }) in
  let _id2 = Recorder.finish r t2 (Op.Write { loc = "y"; value = 2 }) in
  let h = Recorder.history r in
  let po = History.program_order h in
  check "overlapping ops unordered" false (Relation.mem po 0 1 || Relation.mem po 1 0)

let test_recorder_grant_seq () =
  let r = Recorder.create ~procs:1 () in
  check_int "first grant" 0 (Recorder.grant_seq r "l");
  check_int "second grant" 1 (Recorder.grant_seq r "l");
  check_int "other lock independent" 0 (Recorder.grant_seq r "m")

(* ------------------------------------------------------------------ *)
(* Derived relations                                                   *)
(* ------------------------------------------------------------------ *)

let test_reads_from () =
  let h =
    Dsl.make ~procs:2 [ [ Dsl.w "x" 1 ]; [ Dsl.rc "x" 1; Dsl.rp "x" 0 ] ]
  in
  let rf = History.reads_from h in
  check "write to read edge" true (Relation.mem rf 0 1);
  check "initial read has no edge" true (Relation.predecessors rf 2 = []);
  Alcotest.(check (list int)) "writers_of" [ 0 ] (History.writers_of h "x" 1)

let test_await_order () =
  let h = Dsl.make ~procs:2 [ [ Dsl.w "x" 5 ]; [ Dsl.await "x" 5; Dsl.rc "y" 0 ] ] in
  let ao = History.await_order h in
  check "write before await" true (Relation.mem ao 0 1);
  let causality = History.causality h in
  check "causality includes await edge" true (Relation.mem causality 0 2)

let test_barrier_order () =
  let h =
    Dsl.make ~procs:2
      [ [ Dsl.w "x" 1; Dsl.bar 0; Dsl.rp "y" 2 ]; [ Dsl.w "y" 2; Dsl.bar 0 ] ]
  in
  let bo = History.barrier_order h in
  (* op ids: p0: w x=1 (0), bar (1), r y (2); p1: w y=2 (3), bar (4) *)
  check "pre-barrier write ordered before remote barrier" true (Relation.mem bo 0 4);
  check "remote barrier ordered before post-barrier read" true (Relation.mem bo 4 2);
  check "same-episode barriers unordered" false
    (Relation.mem bo 1 4 || Relation.mem bo 4 1);
  (* hence the remote write is causally before the read *)
  let causality = History.causality h in
  check "w y -> r y via barrier" true (Relation.mem causality 3 2)

let test_lock_order_epochs () =
  (* two write critical sections and one read epoch, ordered by grant seq *)
  let h =
    Dsl.make ~procs:3
      [
        [ Dsl.wl ~seq:0 "m"; Dsl.w "x" 1; Dsl.wu ~seq:1 "m" ];
        [ Dsl.wl ~seq:4 "m"; Dsl.rc "x" 1; Dsl.wu ~seq:5 "m" ];
        [ Dsl.rl ~seq:2 "m"; Dsl.rc "x" 1; Dsl.ru ~seq:3 "m" ];
      ]
  in
  let lo = History.lock_order h in
  (* ids: p0: wl 0, w 1, wu 2; p1: wl 3, r 4, wu 5; p2: rl 6, r 7, ru 8 *)
  check "epoch 1 before read epoch" true (Relation.mem lo 2 6);
  check "read epoch before epoch 2" true (Relation.mem lo 8 3);
  check "wl before wu in epoch" true (Relation.mem lo 0 2);
  check "transitive epoch ordering" true (Relation.mem lo 0 3);
  (* reduced order drops the transitive epoch edge *)
  let red = History.sync_order_reduced h in
  check "reduction keeps adjacent" true (Relation.mem red 2 6);
  check "reduction drops distant" false (Relation.mem red 0 3)

let test_concurrent_read_locks_unordered () =
  let h =
    Dsl.make ~procs:2
      [
        [ Dsl.rl ~seq:0 "m"; Dsl.ru ~seq:2 "m" ];
        [ Dsl.rl ~seq:1 "m"; Dsl.ru ~seq:3 "m" ];
      ]
  in
  let lo = History.lock_order h in
  check "read locks of one epoch unordered" false
    (Relation.mem lo 0 2 || Relation.mem lo 2 0);
  check "own unlock ordered" true (Relation.mem lo 0 1)

let test_causality_acyclic_check () =
  let h = Dsl.make ~procs:1 [ [ Dsl.w "x" 1; Dsl.rc "x" 1 ] ] in
  check "acyclic" true (History.causality_is_acyclic h)

let test_causal_relation_excludes_remote_reads () =
  let h =
    Dsl.make ~procs:3
      [ [ Dsl.w "x" 1 ]; [ Dsl.rc "x" 1 ]; [ Dsl.rc "x" 1 ] ]
  in
  (* for process 2, process 1's read is invisible *)
  let rel = History.causal_relation h 2 in
  check "w -> own read kept" true (Relation.mem rel 0 2);
  check "remote read dropped" false (Relation.mem rel 0 1)

let test_pram_relation_drops_transitive_sync () =
  (* p0 writes x then unlocks; p1 holds the lock next and writes y; p2
     locks third. In the full causal order p2 sees p0's critical section;
     in PRAM order (transitive reduction + only edges touching p2) it is
     only connected to the immediately preceding holder p1. *)
  let h =
    Dsl.make ~procs:3
      [
        [ Dsl.wl ~seq:0 "m"; Dsl.w "x" 1; Dsl.wu ~seq:1 "m" ];
        [ Dsl.wl ~seq:2 "m"; Dsl.w "y" 2; Dsl.wu ~seq:3 "m" ];
        [ Dsl.wl ~seq:4 "m"; Dsl.rp "x" 0; Dsl.wu ~seq:5 "m" ];
      ]
  in
  (* ids: p0: 0 1 2; p1: 3 4 5; p2: 6 7 8 *)
  let causal2 = History.causal_relation h 2 in
  check "causally, p0's write reaches p2's read" true (Relation.mem causal2 1 7);
  let pram2 = History.pram_relation h 2 in
  check "in PRAM order, p0's cs does not reach p2" false (Relation.mem pram2 1 7);
  check "previous holder reaches p2" true (Relation.mem pram2 4 7)

(* ------------------------------------------------------------------ *)
(* Well-formedness                                                     *)
(* ------------------------------------------------------------------ *)

let test_well_formed_history () =
  let h =
    Dsl.make ~procs:2
      [
        [ Dsl.wl ~seq:0 "m"; Dsl.w "x" 1; Dsl.wu ~seq:1 "m"; Dsl.bar 0 ];
        [ Dsl.bar 0; Dsl.rc "x" 1 ];
      ]
  in
  Alcotest.(check int) "no violations" 0
    (List.length (History.well_formedness_violations h))

let test_unmatched_unlock_detected () =
  let h = Dsl.make ~procs:1 [ [ Dsl.wu ~seq:0 "m" ] ] in
  check "violation found" true (History.well_formedness_violations h <> [])

let test_double_write_lock_detected () =
  let h =
    Dsl.make ~procs:2
      [ [ Dsl.wl ~seq:0 "m"; Dsl.wu ~seq:3 "m" ]; [ Dsl.wl ~seq:1 "m"; Dsl.wu ~seq:2 "m" ] ]
  in
  check "overlapping write locks detected" true
    (History.well_formedness_violations h <> [])

let test_duplicate_write_values_detected () =
  let h = Dsl.make ~procs:2 [ [ Dsl.w "x" 1 ]; [ Dsl.w "x" 1 ] ] in
  check "unique-writes violation" true (History.well_formedness_violations h <> [])

let test_missing_grant_seq_detected () =
  let h = Dsl.make ~procs:1 [ [ Dsl.wl ~seq:(-1) "m"; Dsl.wu ~seq:(-1) "m" ] ] in
  check "missing manager order detected" true
    (History.well_formedness_violations h <> [])

let test_overlapping_same_object_ops_detected () =
  let r = Recorder.create ~procs:1 () in
  let t1 = Recorder.start r ~proc:0 in
  let t2 = Recorder.start r ~proc:0 in
  ignore (Recorder.finish r t1 (Op.Write { loc = "x"; value = 1 }));
  ignore (Recorder.finish r t2 (Op.Write { loc = "x"; value = 2 }));
  let h = Recorder.history r in
  check "two pending invocations on one object" true
    (History.well_formedness_violations h <> [])

let test_overlapping_barrier_detected () =
  let r = Recorder.create ~procs:1 () in
  let t1 = Recorder.start r ~proc:0 in
  let t2 = Recorder.start r ~proc:0 in
  ignore (Recorder.finish r t1 (Op.Barrier 0));
  ignore (Recorder.finish r t2 (Op.Write { loc = "x"; value = 1 }));
  let h = Recorder.history r in
  check "barrier must be totally ordered" true
    (History.well_formedness_violations h <> [])

let () =
  Alcotest.run "mc_history"
    [
      ( "op",
        [ Alcotest.test_case "classification" `Quick test_op_classification ] );
      ( "recorder",
        [
          Alcotest.test_case "sequential recording" `Quick test_recorder_sequencing;
          Alcotest.test_case "overlapping operations" `Quick test_recorder_overlap;
          Alcotest.test_case "grant sequences" `Quick test_recorder_grant_seq;
        ] );
      ( "relations",
        [
          Alcotest.test_case "reads-from" `Quick test_reads_from;
          Alcotest.test_case "await order" `Quick test_await_order;
          Alcotest.test_case "barrier order" `Quick test_barrier_order;
          Alcotest.test_case "lock epochs" `Quick test_lock_order_epochs;
          Alcotest.test_case "concurrent read locks" `Quick test_concurrent_read_locks_unordered;
          Alcotest.test_case "acyclicity" `Quick test_causality_acyclic_check;
          Alcotest.test_case "causal relation restriction" `Quick test_causal_relation_excludes_remote_reads;
          Alcotest.test_case "pram relation reduction" `Quick test_pram_relation_drops_transitive_sync;
        ] );
      ( "well-formedness",
        [
          Alcotest.test_case "well-formed history" `Quick test_well_formed_history;
          Alcotest.test_case "unmatched unlock" `Quick test_unmatched_unlock_detected;
          Alcotest.test_case "double write lock" `Quick test_double_write_lock_detected;
          Alcotest.test_case "duplicate write values" `Quick test_duplicate_write_values_detected;
          Alcotest.test_case "missing grant order" `Quick test_missing_grant_seq_detected;
          Alcotest.test_case "overlapping ops on one object" `Quick test_overlapping_same_object_ops_detected;
          Alcotest.test_case "overlapping barrier" `Quick test_overlapping_barrier_detected;
        ] );
    ]
