(* Differential tests of the streaming pipeline against the offline
   record-then-check stack:

   - the online mixed-consistency checker must reproduce
     [Mixed.failures] verdict-for-verdict (including [Overwritten]
     diagnostics) on random histories with locks, barriers, subset
     barriers, awaits and all three read labels;
   - [Hb.Online] must answer every happens-before query like [Hb];
   - the engine must retire operations (bounded in-flight window) on
     workloads with synchronization;
   - recorder edge cases: overlapping fiber tokens, grant sequences,
     out-of-range processes. *)

module Op = Mc_history.Op
module History = Mc_history.History
module Recorder = Mc_history.Recorder
module Stream = Mc_history.Stream
module Dsl = Mc_history.Dsl
module Mixed = Mc_consistency.Mixed
module Online = Mc_consistency.Online
module Read_rule = Mc_consistency.Read_rule
module Hb = Mc_analysis.Hb

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* ------------------------------------------------------------------ *)
(* Random histories with synchronization                               *)
(* ------------------------------------------------------------------ *)

(* Per process, a program of segments separated by global barriers; a
   segment is a list of simple choices. Writes get globally unique
   values; reads and awaits guess among the written values or 0.
   Critical sections take whole-section grant numbers in (segment,
   process) order so the grant order usually agrees with the barrier
   order (cyclic outcomes are discarded like everywhere else). *)

type simple = {
  s_is_write : bool;
  s_loc : int;
  s_guess : int;
  s_label : int; (* 0 PRAM, 1 Causal, 2+ group selector *)
}

type choice =
  | Simple of simple
  | Section of bool * int * simple list (* write?, lock, body *)
  | Await_of of int * int (* loc, guess *)

type program = choice list list (* segments, separated by barriers *)

let simple_gen =
  QCheck.Gen.(
    map
      (fun (w, loc, g, l) -> { s_is_write = w; s_loc = loc; s_guess = g; s_label = l })
      (tup4 bool (int_bound 2) (int_bound 11) (int_bound 3)))

let choice_gen =
  QCheck.Gen.(
    frequency
      [
        (6, map (fun s -> Simple s) simple_gen);
        ( 2,
          map3
            (fun w lock body -> Section (w, lock, body))
            bool (int_bound 1)
            (list_size (int_bound 2) simple_gen) );
        (1, map2 (fun loc g -> Await_of (loc, g)) (int_bound 2) (int_bound 11));
      ])

let program_gen ~segments ~max_ops =
  QCheck.Gen.(list_size (return segments) (list_size (int_bound max_ops) choice_gen))

let programs_gen ~procs ~segments ~max_ops =
  QCheck.Gen.(list_size (return procs) (program_gen ~segments ~max_ops))

(* materialize: pre-assign write values left-to-right so guesses can
   refer to any of them, then emit Dsl specs with grant numbers *)
let history_of_programs ~procs (progs : program list) =
  let next_value = ref 0 in
  let values = ref [ 0 ] in
  let collect_simple s =
    if s.s_is_write then begin
      incr next_value;
      values := !next_value :: !values
    end
  in
  List.iter
    (List.iter
       (List.iter (function
         | Simple s -> collect_simple s
         | Section (_, _, body) -> List.iter collect_simple body
         | Await_of _ -> ())))
    progs;
  let values = Array.of_list (List.rev !values) in
  let next_value = ref 0 in
  let lock_seq = Array.make 2 0 in
  let label_of proc l =
    match l with
    | 0 -> Op.PRAM
    | 1 -> Op.Causal
    | 2 -> Op.Group (List.sort_uniq compare [ proc; (proc + 1) mod procs ])
    | _ -> Op.Group (List.init procs Fun.id)
  in
  let spec_of_simple proc s =
    if s.s_is_write then begin
      incr next_value;
      Dsl.w ("v" ^ string_of_int s.s_loc) !next_value
    end
    else
      let v = values.(s.s_guess mod Array.length values) in
      match label_of proc s.s_label with
      | Op.PRAM -> Dsl.rp ("v" ^ string_of_int s.s_loc) v
      | Op.Causal -> Dsl.rc ("v" ^ string_of_int s.s_loc) v
      | Op.Group g -> Dsl.rg g ("v" ^ string_of_int s.s_loc) v
  in
  let segments = List.length (List.hd progs) in
  (* per proc, per segment, the emitted spec list *)
  let out = Array.make_matrix procs segments [] in
  for seg = 0 to segments - 1 do
    List.iteri
      (fun proc prog ->
        let choices = List.nth prog seg in
        let specs =
          List.concat_map
            (function
              | Simple s -> [ spec_of_simple proc s ]
              | Section (w, lock, body) ->
                let l = "m" ^ string_of_int lock in
                let s0 = lock_seq.(lock) in
                lock_seq.(lock) <- s0 + 2;
                let body = List.map (spec_of_simple proc) body in
                if w then
                  (Dsl.wl ~seq:s0 l :: body) @ [ Dsl.wu ~seq:(s0 + 1) l ]
                else (Dsl.rl ~seq:s0 l :: body) @ [ Dsl.ru ~seq:(s0 + 1) l ]
              | Await_of (loc, g) ->
                let v = values.(g mod Array.length values) in
                [ Dsl.await ("v" ^ string_of_int loc) v ])
            choices
        in
        out.(proc).(seg) <- specs)
      progs
  done;
  let per_proc =
    List.init procs (fun proc ->
        List.concat
          (List.init segments (fun seg ->
               out.(proc).(seg)
               @ if seg < segments - 1 then [ Dsl.bar seg ] else [])))
  in
  Dsl.make ~procs per_proc

let sync_history_arb ~procs ~segments ~max_ops =
  QCheck.make
    ~print:(fun progs ->
      Format.asprintf "%a" History.pp (history_of_programs ~procs progs))
    (programs_gen ~procs ~segments ~max_ops)

let acyclic h = QCheck.assume (History.causality_is_acyclic h)

(* failure lists must agree exactly: ids, labels and diagnostics *)
let same_failures (offline : Mixed.failure list) (online : Mixed.failure list) =
  List.length offline = List.length online
  && List.for_all2
       (fun (a : Mixed.failure) (b : Mixed.failure) ->
         a.read_id = b.read_id && a.label = b.label && a.verdict = b.verdict)
       offline online

let online_matches_offline h =
  acyclic h;
  let offline = Mixed.failures h in
  let chk = Online.check h in
  if not (same_failures offline (Online.failures chk)) then begin
    Format.eprintf "history:@.%a@.offline:@." History.pp h;
    List.iter (fun f -> Format.eprintf "  %a@." Mixed.pp_failure f) offline;
    Format.eprintf "online:@.";
    List.iter (fun f -> Format.eprintf "  %a@." Mixed.pp_failure f) (Online.failures chk);
    false
  end
  else true

let online_diff_memory_only =
  QCheck.Test.make ~name:"online = offline on memory-only histories" ~count:500
    (sync_history_arb ~procs:3 ~segments:1 ~max_ops:6)
    (fun progs -> online_matches_offline (history_of_programs ~procs:3 progs))

let online_diff_sync =
  QCheck.Test.make ~name:"online = offline with locks, barriers, awaits"
    ~count:500
    (sync_history_arb ~procs:3 ~segments:3 ~max_ops:4)
    (fun progs -> online_matches_offline (history_of_programs ~procs:3 progs))

let online_diff_more_procs =
  QCheck.Test.make ~name:"online = offline on 4 processes" ~count:200
    (sync_history_arb ~procs:4 ~segments:2 ~max_ops:4)
    (fun progs -> online_matches_offline (history_of_programs ~procs:4 progs))

(* ------------------------------------------------------------------ *)
(* Hb.Online differential                                              *)
(* ------------------------------------------------------------------ *)

let hb_online_matches h =
  acyclic h;
  let a = Hb.of_history h in
  let b = Hb.Online.of_history h in
  let n = History.length h in
  let ok = ref true in
  for i = 0 to n - 1 do
    for j = 0 to n - 1 do
      if Hb.hb a i j <> Hb.hb b i j then ok := false
    done
  done;
  !ok

let hb_online_diff =
  QCheck.Test.make ~name:"Hb.Online = Hb on all pairs" ~count:300
    (sync_history_arb ~procs:3 ~segments:2 ~max_ops:4)
    (fun progs -> hb_online_matches (history_of_programs ~procs:3 progs))

(* ------------------------------------------------------------------ *)
(* Engine window                                                       *)
(* ------------------------------------------------------------------ *)

let test_engine_retires () =
  (* a long lock-ping-pong run recorded in real-time order (sections of
     the two processes alternate): the in-flight window must stay far
     below the history length *)
  let sections = 200 in
  let r = Recorder.create ~procs:2 () in
  for k = 0 to sections - 1 do
    let proc = k mod 2 in
    ignore
      (Recorder.record r ~proc
         ~sync_seq:(Recorder.grant_seq r "m")
         (Op.Write_lock "m"));
    ignore
      (Recorder.record r ~proc
         (Op.Write { loc = Printf.sprintf "x%d" proc; value = k + 1 }));
    ignore
      (Recorder.record r ~proc
         ~sync_seq:(Recorder.grant_seq r "m")
         (Op.Write_unlock "m"))
  done;
  let h = Recorder.history r in
  let chk = Online.check h in
  let stats = Online.stats chk in
  check_int "all ops checked" (History.length h) stats.Online.ops_checked;
  check "window is bounded" true
    (stats.Online.max_resident < History.length h / 4)

let test_online_rejects_unregistered_group () =
  let h = Dsl.make ~procs:3 [ [ Dsl.rg [ 0; 1 ] "x" 0 ]; []; [] ] in
  let chk = Online.create ~procs:3 () in
  Alcotest.check_raises "unregistered group"
    (Invalid_argument "Online: unregistered reader group (pass it via ~groups)")
    (fun () -> Stream.replay (Online.engine chk) h)

let test_groups_of_history () =
  let h =
    Dsl.make ~procs:3
      [ [ Dsl.rg [ 0; 1 ] "x" 0; Dsl.rg [ 1; 0 ] "x" 0 ]; [ Dsl.rp "x" 0 ]; [] ]
  in
  check "harvested" true (Online.groups_of_history h = [ [ 0; 1 ] ])

(* ------------------------------------------------------------------ *)
(* Runtime integration: online checking during execution               *)
(* ------------------------------------------------------------------ *)

module Engine = Mc_sim.Engine
module Runtime = Mc_dsm.Runtime
module Config = Mc_dsm.Config
module Api = Mc_dsm.Api

let run_checked ?(procs = 3) ?(groups = []) f =
  let engine = Engine.create () in
  let cfg =
    { (Config.default ~procs) with record = true; check_online = true; groups }
  in
  let rt = Runtime.create engine cfg in
  f rt (Api.spawn rt);
  ignore (Runtime.run rt);
  let chk = Option.get (Runtime.online_checker rt) in
  (Runtime.history rt, chk)

(* the online verdicts produced during the run must equal the offline
   verdicts on the history recorded alongside *)
let runtime_differential h chk =
  let offline = Mixed.failures h in
  let online = Online.failures chk in
  let stats = Online.stats chk in
  stats.Online.ops_checked = History.length h && same_failures offline online

(* a small interpreted workload language for random runtime programs *)
type rt_step =
  | Rt_write of int
  | Rt_read of int * int (* loc, label selector *)
  | Rt_wsection of int * int list (* lock, write locs *)
  | Rt_rsection of int * (int * int) list (* lock, reads *)

let rt_step_gen =
  QCheck.Gen.(
    frequency
      [
        (4, map (fun l -> Rt_write l) (int_bound 2));
        (4, map2 (fun l lab -> Rt_read (l, lab)) (int_bound 2) (int_bound 2));
        (1, map2 (fun l ws -> Rt_wsection (l, ws)) (int_bound 1)
             (list_size (int_bound 2) (int_bound 2)));
        (1, map2 (fun l rs -> Rt_rsection (l, rs)) (int_bound 1)
             (list_size (int_bound 2) (tup2 (int_bound 2) (int_bound 2))));
      ])

let rt_programs_gen ~procs ~segments =
  QCheck.Gen.(
    list_size (return procs)
      (list_size (return segments) (list_size (int_bound 4) rt_step_gen)))

let rt_workload_arb ~procs ~segments =
  QCheck.make
    ~print:(fun progs ->
      String.concat "|"
        (List.map (fun p -> string_of_int (List.length (List.concat p))) progs))
    (rt_programs_gen ~procs ~segments)

let run_random_workload ~procs progs =
  let groups = [ [ 0; 1 ] ] in
  let label_of proc sel =
    match sel with
    | 0 -> Op.PRAM
    | 1 -> Op.Causal
    | _ -> if proc <= 1 then Op.Group [ 0; 1 ] else Op.Causal
  in
  let loc l = "v" ^ string_of_int l in
  let lock l = "m" ^ string_of_int l in
  run_checked ~procs ~groups (fun rt spawn ->
      ignore spawn;
      List.iteri
        (fun i prog ->
          Runtime.spawn_process rt i (fun p ->
              List.iter
                (fun seg ->
                  List.iter
                    (fun step ->
                      match step with
                      | Rt_write l ->
                        Runtime.write p (loc l) ((100 * i) + l)
                      | Rt_read (l, sel) ->
                        ignore (Runtime.read p ~label:(label_of i sel) (loc l))
                      | Rt_wsection (m, ws) ->
                        Runtime.write_lock p (lock m);
                        List.iter
                          (fun l -> Runtime.write p (loc l) ((100 * i) + l))
                          ws;
                        Runtime.write_unlock p (lock m)
                      | Rt_rsection (m, rs) ->
                        Runtime.read_lock p (lock m);
                        List.iter
                          (fun (l, sel) ->
                            ignore
                              (Runtime.read p ~label:(label_of i sel) (loc l)))
                          rs;
                        Runtime.read_unlock p (lock m))
                    seg;
                  Runtime.barrier p)
                prog))
        progs)

let online_diff_runtime =
  QCheck.Test.make ~name:"online = offline on random runtime workloads"
    ~count:60
    (rt_workload_arb ~procs:3 ~segments:2)
    (fun progs ->
      let h, chk = run_random_workload ~procs:3 progs in
      runtime_differential h chk)

(* ------------------------------------------------------------------ *)
(* Section-5 applications under online checking                        *)
(* ------------------------------------------------------------------ *)

module Solver = Mc_apps.Linear_solver
module Em = Mc_apps.Em_field
module Sparse = Mc_apps.Sparse_spd
module Cholesky = Mc_apps.Cholesky

let app_differential ?(procs = 3) ?(groups = []) name f =
  let h, chk = run_checked ~procs ~groups (fun rt spawn -> ignore (f rt spawn)) in
  check (name ^ ": online = offline") true (runtime_differential h chk)

let solver_problem = Solver.Problem.generate ~seed:42 ~n:8

let test_app_solver_barrier () =
  app_differential ~procs:4 "solver barrier" (fun _ spawn ->
      Solver.launch ~spawn ~procs:4 ~variant:Solver.Barrier_pram solver_problem)

let test_app_solver_handshake () =
  app_differential "solver handshake" (fun _ spawn ->
      Solver.launch ~spawn ~procs:3 ~variant:Solver.Handshake_causal
        solver_problem)

let test_app_solver_group () =
  app_differential ~groups:(Solver.solver_groups ~procs:3) "solver group"
    (fun _ spawn ->
      Solver.launch ~spawn ~procs:3 ~variant:Solver.Handshake_group
        solver_problem)

let test_app_em_field () =
  let params = { Em.rows = 9; cols = 5; steps = 4; seed = 5 } in
  app_differential "em field" (fun _ spawn ->
      Em.launch ~spawn ~procs:3 params)

let test_app_cholesky_locks () =
  let m = Sparse.generate ~seed:11 ~n:10 ~density:0.3 in
  app_differential "cholesky locks" (fun _ spawn ->
      Cholesky.launch ~spawn ~procs:3 ~variant:Cholesky.Lock_based m)

let test_app_cholesky_counters () =
  let m = Sparse.generate ~seed:11 ~n:10 ~density:0.3 in
  app_differential "cholesky counters" (fun _ spawn ->
      Cholesky.launch ~spawn ~procs:3 ~variant:Cholesky.Counter_based m)

let test_app_pipeline () =
  let params = { Mc_apps.Pipeline.items = 15; slots = 3; work = 2.0 } in
  app_differential "pipeline awaits" (fun _ spawn ->
      Mc_apps.Pipeline.launch ~spawn ~procs:3 ~impl:Mc_apps.Pipeline.Await_based
        params)

let test_stability_reclaims () =
  (* a barrier-phased run long enough for sweeps to retire state: the
     checker must end with far fewer live summaries than writes *)
  let rounds = 40 in
  let _, chk =
    run_checked ~procs:3 (fun rt _ ->
        for i = 0 to 2 do
          Runtime.spawn_process rt i (fun p ->
              for r = 1 to rounds do
                Runtime.write p (Printf.sprintf "x%d" i) r;
                Runtime.barrier p;
                ignore (Runtime.read p ~label:Op.Causal "x0");
                Runtime.barrier p
              done)
        done)
  in
  let stats = Online.stats chk in
  check "summaries reclaimed" true
    (stats.Online.live_summaries < rounds * 3 / 2);
  check "window bounded" true
    (stats.Online.max_resident < stats.Online.ops_checked / 4)

(* ------------------------------------------------------------------ *)
(* Recorder edge cases                                                 *)
(* ------------------------------------------------------------------ *)

let test_recorder_overlapping_tokens () =
  (* two fibers of one process overlap: program order must be partial *)
  let r = Recorder.create ~procs:1 () in
  let t1 = Recorder.start r ~proc:0 in
  let t2 = Recorder.start r ~proc:0 in
  ignore (Recorder.finish r t1 (Op.Write { loc = "x"; value = 1 }));
  let t3 = Recorder.start r ~proc:0 in
  ignore (Recorder.finish r t2 (Op.Write { loc = "y"; value = 2 }));
  ignore (Recorder.finish r t3 (Op.Write { loc = "z"; value = 3 }));
  let h = Recorder.history r in
  let po = History.program_order h in
  check "overlapped ops unordered" false
    (Mc_util.Relation.mem po 0 1 || Mc_util.Relation.mem po 1 0);
  (* op 2 started after op 0 finished *)
  check "sequential ops ordered" true (Mc_util.Relation.mem po 0 2)

let test_recorder_out_of_range_proc () =
  let r = Recorder.create ~procs:2 () in
  check "in range ok" true (Recorder.record r ~proc:1 (Op.Barrier 0) >= 0);
  (match Recorder.record r ~proc:2 (Op.Barrier 0) with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "out-of-range proc accepted");
  match Recorder.start r ~proc:(-1) with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "negative proc accepted"

let test_recorder_grant_numbering () =
  let r = Recorder.create ~procs:2 () in
  check_int "starts at zero" 0 (Recorder.grant_seq r "a");
  check_int "increments" 1 (Recorder.grant_seq r "a");
  check_int "per lock" 0 (Recorder.grant_seq r "b");
  check_int "independent" 2 (Recorder.grant_seq r "a")

let test_streaming_only_recorder () =
  let r = Recorder.create ~materialize:false ~procs:2 () in
  let seen = ref 0 in
  Recorder.subscribe r (Mc_history.Sink.make (fun _ -> incr seen));
  ignore (Recorder.record r ~proc:0 (Op.Write { loc = "x"; value = 1 }));
  ignore (Recorder.record r ~proc:1 (Op.Read { loc = "x"; label = Op.PRAM; value = 1 }));
  check_int "sink saw both" 2 !seen;
  match Recorder.history r with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "history of a streaming-only recorder"

let () =
  let qt = QCheck_alcotest.to_alcotest in
  Alcotest.run "online"
    [
      ( "differential",
        [
          qt online_diff_memory_only;
          qt online_diff_sync;
          qt online_diff_more_procs;
          qt hb_online_diff;
        ] );
      ( "engine",
        [
          Alcotest.test_case "window bounded" `Quick test_engine_retires;
          Alcotest.test_case "unregistered group" `Quick
            test_online_rejects_unregistered_group;
          Alcotest.test_case "group harvest" `Quick test_groups_of_history;
        ] );
      ("runtime", [ qt online_diff_runtime ]);
      ( "apps",
        [
          Alcotest.test_case "solver barrier" `Quick test_app_solver_barrier;
          Alcotest.test_case "solver handshake" `Quick test_app_solver_handshake;
          Alcotest.test_case "solver group" `Quick test_app_solver_group;
          Alcotest.test_case "em field" `Quick test_app_em_field;
          Alcotest.test_case "cholesky locks" `Quick test_app_cholesky_locks;
          Alcotest.test_case "cholesky counters" `Quick
            test_app_cholesky_counters;
          Alcotest.test_case "pipeline awaits" `Quick test_app_pipeline;
          Alcotest.test_case "stability reclaims" `Quick test_stability_reclaims;
        ] );
      ( "recorder",
        [
          Alcotest.test_case "overlapping tokens" `Quick
            test_recorder_overlapping_tokens;
          Alcotest.test_case "out of range" `Quick test_recorder_out_of_range_proc;
          Alcotest.test_case "grant numbering" `Quick test_recorder_grant_numbering;
          Alcotest.test_case "streaming only" `Quick test_streaming_only_recorder;
        ] );
    ]
