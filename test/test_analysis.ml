(* Tests for the Mc_analysis subsystem:

   - the race detector is differentially tested against
     [Commute.theorem1_report] on every history in a catalog replicating
     the existing test-suite histories, on recorded histories with
     overlapping fibers, and on random histories (QCheck);
   - the chain-decomposed happens-before clocks are exact w.r.t.
     [History.causality];
   - each lint rule L001-L006 fires on a minimal trigger and stays quiet
     on clean histories;
   - the label advisor recommends along the PRAM < Group < Causal
     spectrum and honours the two corollary program classes. *)

module Op = Mc_history.Op
module History = Mc_history.History
module Dsl = Mc_history.Dsl
module Recorder = Mc_history.Recorder
module Relation = Mc_util.Relation
module Commute = Mc_consistency.Commute
module Diag = Mc_analysis.Diag
module Hb = Mc_analysis.Hb
module Lockset = Mc_analysis.Lockset
module Race = Mc_analysis.Race
module Lint = Mc_analysis.Lint
module Advisor = Mc_analysis.Advisor
module Analysis = Mc_analysis.Analysis

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* ------------------------------------------------------------------ *)
(* History catalog: the shapes used across the existing test suite     *)
(* ------------------------------------------------------------------ *)

let lock_chain ~last_read =
  Dsl.make ~procs:3
    [
      [ Dsl.wl ~seq:0 "m"; Dsl.w "x" 1; Dsl.wu ~seq:1 "m" ];
      [ Dsl.wl ~seq:2 "m"; Dsl.w "y" 2; Dsl.wu ~seq:3 "m" ];
      [ Dsl.wl ~seq:4 "m"; last_read; Dsl.wu ~seq:5 "m" ];
    ]

let overlapping_fibers () =
  (* two in-flight operations on process 0: program order is a genuine
     partial order, so the per-process chain decomposition needs more
     chains than processes *)
  let r = Recorder.create ~procs:2 () in
  let t1 = Recorder.start r ~proc:0 in
  let t2 = Recorder.start r ~proc:0 in
  ignore (Recorder.finish r t1 (Op.Write { loc = "x"; value = 1 }));
  ignore (Recorder.finish r t2 (Op.Write { loc = "y"; value = 2 }));
  ignore
    (Recorder.record r ~proc:0 (Op.Read { loc = "x"; label = Op.Causal; value = 1 }));
  ignore
    (Recorder.record r ~proc:1 (Op.Read { loc = "y"; label = Op.PRAM; value = 0 }));
  ignore (Recorder.record r ~proc:1 (Op.Write { loc = "x"; value = 3 }));
  Recorder.history r

let catalog () =
  [
    ( "dekker",
      Dsl.make ~procs:2
        [ [ Dsl.w "x" 1; Dsl.rc "y" 0 ]; [ Dsl.w "y" 1; Dsl.rc "x" 0 ] ] );
    ( "message-passing",
      Dsl.make ~procs:2
        [ [ Dsl.w "x" 42; Dsl.w "f" 1 ]; [ Dsl.rc "f" 1; Dsl.rc "x" 42 ] ] );
    ( "pram-not-causal",
      Dsl.make ~procs:3
        [
          [ Dsl.w "x" 1 ];
          [ Dsl.rp "x" 1; Dsl.w "y" 2 ];
          [ Dsl.rp "y" 2; Dsl.rp "x" 0 ];
        ] );
    ( "fifo-violation",
      Dsl.make ~procs:2
        [ [ Dsl.w "x" 1; Dsl.w "x" 2 ]; [ Dsl.rp "x" 2; Dsl.rp "x" 1 ] ] );
    ( "write-order-disagreement",
      Dsl.make ~procs:4
        [
          [ Dsl.w "x" 1 ];
          [ Dsl.w "x" 2 ];
          [ Dsl.rc "x" 1; Dsl.rc "x" 2 ];
          [ Dsl.rc "x" 2; Dsl.rc "x" 1 ];
        ] );
    ( "await-fresh",
      Dsl.make ~procs:2
        [ [ Dsl.w "y" 5; Dsl.w "x" 1 ]; [ Dsl.await "x" 1; Dsl.rp "y" 5 ] ] );
    ( "await-stale",
      Dsl.make ~procs:2
        [ [ Dsl.w "y" 5; Dsl.w "x" 1 ]; [ Dsl.await "x" 1; Dsl.rp "y" 0 ] ] );
    ("lock-chain-stale-x", lock_chain ~last_read:(Dsl.rp "x" 0));
    ("lock-chain-fresh-y", lock_chain ~last_read:(Dsl.rp "y" 2));
    ( "entry-consistent",
      Dsl.make ~procs:2
        [
          [ Dsl.wl ~seq:0 "m"; Dsl.w "x" 1; Dsl.wu ~seq:1 "m" ];
          [ Dsl.rl ~seq:2 "m"; Dsl.rc "x" 1; Dsl.ru ~seq:3 "m" ];
        ] );
    ( "read-lock-write",
      Dsl.make ~procs:2
        [
          [ Dsl.rl ~seq:0 "m"; Dsl.w "x" 1; Dsl.ru ~seq:1 "m" ];
          [ Dsl.rl ~seq:2 "m"; Dsl.rc "x" 1; Dsl.ru ~seq:3 "m" ];
        ] );
    ( "unlocked-write",
      Dsl.make ~procs:2
        [ [ Dsl.w "x" 1 ]; [ Dsl.rl ~seq:0 "m"; Dsl.rc "x" 1; Dsl.ru ~seq:1 "m" ] ] );
    ( "pram-phases",
      Dsl.make ~procs:2
        [
          [ Dsl.rp "x" 0; Dsl.bar 0; Dsl.w "x" 1; Dsl.bar 1 ];
          [ Dsl.rp "x" 0; Dsl.bar 0; Dsl.bar 1; Dsl.rp "x" 1 ];
        ] );
    ( "group-barrier",
      Dsl.make ~procs:3
        [
          [ Dsl.w "x" 1; Dsl.barg 0 [ 0; 1 ]; Dsl.rp "y" 2 ];
          [ Dsl.barg 0 [ 0; 1 ]; Dsl.w "y" 2; Dsl.barg 1 [ 1; 2 ] ];
          [ Dsl.barg 1 [ 1; 2 ]; Dsl.rp "y" 2; Dsl.rp "x" 0 ];
        ] );
    ( "decrements",
      Dsl.make ~procs:2
        [
          [ Dsl.w "c" 5; Dsl.dec "c" ~amount:2 ~observed:5 ];
          [ Dsl.dec "c" ~amount:1 ~observed:3; Dsl.rc "c" 2 ];
        ] );
    ( "group-labels",
      Dsl.make ~procs:3
        [
          [ Dsl.w "x" 1 ];
          [ Dsl.rp "x" 1; Dsl.w "y" 2 ];
          [ Dsl.rg [ 2 ] "y" 2; Dsl.rg [ 0; 1; 2 ] "x" 1 ];
        ] );
    ( "handshake",
      Dsl.make ~procs:2
        [
          [ Dsl.await "computed" 1; Dsl.rc "x" 10; Dsl.w "ack" 1 ];
          [ Dsl.w "x" 10; Dsl.w "computed" 1; Dsl.await "ack" 1 ];
        ] );
    ( "racy-writes",
      Dsl.make ~procs:2
        [ [ Dsl.w "x" 1; Dsl.rp "y" 0 ]; [ Dsl.w "x" 2; Dsl.w "y" 1 ] ] );
    ( "bad-lock-discipline",
      Dsl.make ~procs:2
        [
          [ Dsl.wl ~seq:0 "l"; Dsl.w "x" 1 ];
          [ Dsl.rl ~seq:1 "l"; Dsl.w "x" 2; Dsl.ru ~seq:2 "l" ];
        ] );
    ( "await-never-fires",
      Dsl.make ~procs:2 [ [ Dsl.await "f" 5 ]; [ Dsl.w "f" 1 ] ] );
    ( "theorem1-positive",
      Dsl.make ~procs:2
        [ [ Dsl.w "x" 1; Dsl.rc "x" 1 ]; [ Dsl.w "y" 2; Dsl.rc "y" 2 ] ] );
    ("overlapping-fibers", overlapping_fibers ());
  ]

(* ------------------------------------------------------------------ *)
(* Differential: detector == Theorem 1 premise 1                       *)
(* ------------------------------------------------------------------ *)

let pp_pairs ps =
  String.concat ","
    (List.map (fun (i, j) -> Printf.sprintf "(%d,%d)" i j) ps)

let assert_differential name h =
  let expected = (Commute.theorem1_report h).Commute.non_commuting_pairs in
  let got = Race.race_pairs (Race.detect h) in
  if got <> expected then
    Alcotest.failf "%s: detector found [%s], theorem1_report found [%s]" name
      (pp_pairs got) (pp_pairs expected)

let test_differential_catalog () =
  List.iter (fun (name, h) -> assert_differential name h) (catalog ())

let test_hb_exact () =
  List.iter
    (fun (name, h) ->
      let hb = Hb.of_history h in
      let causality = History.causality h in
      let n = History.length h in
      for i = 0 to n - 1 do
        for j = 0 to n - 1 do
          if i <> j && Hb.hb hb i j <> Relation.mem causality i j then
            Alcotest.failf "%s: hb(%d,%d)=%b but causality says %b" name i j
              (Hb.hb hb i j)
              (Relation.mem causality i j)
        done
      done)
    (catalog ())

let test_overlapping_fibers_need_extra_chains () =
  let h = overlapping_fibers () in
  let hb = Hb.of_history h in
  check "more chains than processes" true (Hb.chains hb > History.procs h)

(* random histories: reads/writes plus locked writes and barriers, so the
   differential also exercises the lock-epoch and barrier-episode paths *)
type op_choice = { shape : int; loc : int; guess : int; causal_label : bool }

let history_of_choices ~procs (choices : op_choice list list) =
  let r = Recorder.create ~procs () in
  let next_value = ref 0 in
  let all_values = ref [ 0 ] in
  let programs =
    List.map
      (List.map (fun c ->
           let loc = "v" ^ string_of_int c.loc in
           match c.shape with
           | 0 | 1 ->
             incr next_value;
             all_values := !next_value :: !all_values;
             `Write (loc, !next_value)
           | 2 | 3 -> `Read (loc, c.guess, c.causal_label)
           | 4 ->
             incr next_value;
             all_values := !next_value :: !all_values;
             `Locked_write (loc, !next_value)
           | _ -> `Barrier))
      choices
  in
  let values = Array.of_list (List.rev !all_values) in
  List.iteri
    (fun proc prog ->
      let bars = ref 0 in
      List.iter
        (fun op ->
          match op with
          | `Write (loc, v) ->
            ignore (Recorder.record r ~proc (Op.Write { loc; value = v }))
          | `Read (loc, guess, causal_label) ->
            let value = values.(guess mod Array.length values) in
            let label = if causal_label then Op.Causal else Op.PRAM in
            ignore (Recorder.record r ~proc (Op.Read { loc; label; value }))
          | `Locked_write (loc, v) ->
            ignore
              (Recorder.record r ~proc
                 ~sync_seq:(Recorder.grant_seq r "m")
                 (Op.Write_lock "m"));
            ignore (Recorder.record r ~proc (Op.Write { loc; value = v }));
            ignore
              (Recorder.record r ~proc
                 ~sync_seq:(Recorder.grant_seq r "m")
                 (Op.Write_unlock "m"))
          | `Barrier ->
            let k = !bars in
            incr bars;
            ignore (Recorder.record r ~proc (Op.Barrier k)))
        prog)
    programs;
  Recorder.history r

let op_choice_gen =
  QCheck.Gen.(
    map4
      (fun shape loc guess causal_label -> { shape; loc; guess; causal_label })
      (int_bound 5) (int_bound 2) (int_bound 11) bool)

let history_arb ~procs ~max_ops =
  QCheck.make
    ~print:(fun choices ->
      Format.asprintf "%a" History.pp (history_of_choices ~procs choices))
    QCheck.Gen.(
      list_size (return procs) (list_size (int_bound max_ops) op_choice_gen))

let random_differential =
  QCheck.Test.make ~name:"detector matches theorem1_report on random histories"
    ~count:400
    (history_arb ~procs:3 ~max_ops:5)
    (fun choices ->
      let h = history_of_choices ~procs:3 choices in
      QCheck.assume (History.causality_is_acyclic h);
      Race.race_pairs (Race.detect h)
      = (Commute.theorem1_report h).Commute.non_commuting_pairs)

let random_hb_exact =
  QCheck.Test.make ~name:"hb clocks match History.causality on random histories"
    ~count:400
    (history_arb ~procs:3 ~max_ops:5)
    (fun choices ->
      let h = history_of_choices ~procs:3 choices in
      QCheck.assume (History.causality_is_acyclic h);
      let hb = Hb.of_history h in
      let causality = History.causality h in
      let n = History.length h in
      let ok = ref true in
      for i = 0 to n - 1 do
        for j = 0 to n - 1 do
          if i <> j && Hb.hb hb i j <> Relation.mem causality i j then ok := false
        done
      done;
      !ok)

(* ------------------------------------------------------------------ *)
(* Lockset                                                             *)
(* ------------------------------------------------------------------ *)

let test_lockset_protected () =
  let h =
    Dsl.make ~procs:2
      [
        [ Dsl.wl ~seq:0 "m"; Dsl.w "x" 1; Dsl.wu ~seq:1 "m" ];
        [ Dsl.wl ~seq:2 "m"; Dsl.w "x" 2; Dsl.wu ~seq:3 "m" ];
      ]
  in
  match Lockset.analyze h with
  | [ info ] ->
    check "x protected by m" true (Lockset.is_protected info);
    check "candidates" true (info.Lockset.candidates = [ "m" ])
  | infos -> Alcotest.failf "expected one shared location, got %d" (List.length infos)

let test_lockset_unprotected () =
  let h =
    Dsl.make ~procs:2
      [
        [ Dsl.wl ~seq:0 "m"; Dsl.w "x" 1; Dsl.wu ~seq:1 "m" ];
        [ Dsl.w "x" 2 ];
      ]
  in
  match Lockset.analyze h with
  | [ info ] ->
    check "candidate set emptied" false (Lockset.is_protected info);
    check "R002 reported" true
      (List.exists
         (fun d -> d.Diag.rule = "R002")
         (Lockset.diagnostics [ info ]))
  | _ -> Alcotest.fail "expected one shared location"

(* ------------------------------------------------------------------ *)
(* Lint rules                                                          *)
(* ------------------------------------------------------------------ *)

let rules ds = List.map (fun d -> d.Diag.rule) ds

let test_lint_l001_unlock_without_lock () =
  let h = Dsl.make ~procs:1 [ [ Dsl.wu ~seq:0 "m" ] ] in
  check "L001" true (List.mem "L001" (rules (Lint.lint h)))

let test_lint_l001_wrong_mode () =
  let h = Dsl.make ~procs:1 [ [ Dsl.wl ~seq:0 "m"; Dsl.ru ~seq:1 "m" ] ] in
  check "L001 wrong mode" true (List.mem "L001" (rules (Lint.lint h)))

let test_lint_l002_double_acquire () =
  let h =
    Dsl.make ~procs:1
      [ [ Dsl.wl ~seq:0 "m"; Dsl.wl ~seq:1 "m"; Dsl.wu ~seq:2 "m"; Dsl.wu ~seq:3 "m" ] ]
  in
  check "L002" true (List.mem "L002" (rules (Lint.lint h)))

let test_lint_l003_held_at_exit () =
  let h = Dsl.make ~procs:1 [ [ Dsl.wl ~seq:0 "m"; Dsl.w "x" 1 ] ] in
  check "L003" true (List.mem "L003" (rules (Lint.lint h)))

let test_lint_l004_barrier_mismatch () =
  (* p1 never reaches episode 1 *)
  let h =
    Dsl.make ~procs:2 [ [ Dsl.bar 0; Dsl.bar 1 ]; [ Dsl.bar 0 ] ]
  in
  check "L004 missing process" true (List.mem "L004" (rules (Lint.lint h)));
  (* a non-member participates in a group barrier *)
  let h =
    Dsl.make ~procs:2 [ [ Dsl.barg 0 [ 0 ] ]; [ Dsl.barg 0 [ 0 ] ] ]
  in
  check "L004 non-member" true (List.mem "L004" (rules (Lint.lint h)))

let test_lint_l005_await_never_fires () =
  let h = Dsl.make ~procs:2 [ [ Dsl.await "f" 5 ]; [ Dsl.w "f" 1 ] ] in
  check "L005" true (List.mem "L005" (rules (Lint.lint h)));
  (* awaiting the initial value or a written value is fine *)
  let ok =
    Dsl.make ~procs:2 [ [ Dsl.await "f" 0; Dsl.await "g" 1 ]; [ Dsl.w "g" 1 ] ]
  in
  check "no L005" false (List.mem "L005" (rules (Lint.lint ok)))

let test_lint_l006_write_under_read_lock () =
  let h = Dsl.make ~procs:1 [ [ Dsl.rl ~seq:0 "m"; Dsl.w "x" 1; Dsl.ru ~seq:1 "m" ] ] in
  check "L006" true (List.mem "L006" (rules (Lint.lint h)))

let test_lint_clean_history () =
  let h =
    Dsl.make ~procs:2
      [
        [ Dsl.wl ~seq:0 "m"; Dsl.w "x" 1; Dsl.wu ~seq:1 "m"; Dsl.bar 0 ];
        [ Dsl.rl ~seq:2 "m"; Dsl.rc "x" 0; Dsl.ru ~seq:3 "m"; Dsl.bar 0 ];
      ]
  in
  check_int "no diagnostics" 0 (List.length (Lint.lint h))

(* ------------------------------------------------------------------ *)
(* Label advisor                                                       *)
(* ------------------------------------------------------------------ *)

let advice_rules h = rules (Advisor.diagnostics h (Advisor.advise h))

let test_advisor_over_labelled () =
  let h = Dsl.make ~procs:2 [ [ Dsl.w "x" 1 ]; [ Dsl.rc "x" 1 ] ] in
  check "A001" true (List.mem "A001" (advice_rules h))

let test_advisor_under_labelled () =
  (* the transitivity chain: the stale read of x is PRAM-valid but not
     causal-valid, so declaring it Causal under-delivers *)
  let h =
    Dsl.make ~procs:3
      [
        [ Dsl.w "x" 1 ];
        [ Dsl.rp "x" 1; Dsl.w "y" 2 ];
        [ Dsl.rp "y" 2; Dsl.rc "x" 0 ];
      ]
  in
  let advices = Advisor.advise h in
  let bad = List.find (fun a -> a.Advisor.read_id = 4) advices in
  check "declared label invalid" false bad.Advisor.declared_valid;
  check "PRAM recommended" true (bad.Advisor.recommended = Some Op.PRAM);
  check "A002" true (List.mem "A002" (advice_rules h))

let test_advisor_no_label_validates () =
  let h = Dsl.make ~procs:2 [ [ Dsl.w "x" 1 ]; [ Dsl.rc "x" 9 ] ] in
  check "A003" true (List.mem "A003" (advice_rules h))

let test_advisor_corollary1_strengthens () =
  (* entry-consistent program whose PRAM-labelled read happens to validate
     in this schedule: Corollary 1 still wants Causal *)
  let h =
    Dsl.make ~procs:2
      [
        [ Dsl.wl ~seq:0 "m"; Dsl.w "x" 1; Dsl.wu ~seq:1 "m" ];
        [ Dsl.rl ~seq:2 "m"; Dsl.rp "x" 1; Dsl.ru ~seq:3 "m" ];
      ]
  in
  let advices = Advisor.advise h in
  let a = List.find (fun a -> a.Advisor.read_id = 4) advices in
  check "declared PRAM validates" true a.Advisor.declared_valid;
  check "Causal recommended" true (a.Advisor.recommended = Some Op.Causal);
  check "A002 warning" true (List.mem "A002" (advice_rules h))

let test_advisor_corollary2_keeps_pram () =
  (* PRAM-consistent phase program: PRAM reads already give SC, so the
     causal read is flagged as over-labelled and the PRAM reads pass *)
  let h =
    Dsl.make ~procs:2
      [
        [ Dsl.rp "x" 0; Dsl.bar 0; Dsl.w "x" 1; Dsl.bar 1 ];
        [ Dsl.rp "x" 0; Dsl.bar 0; Dsl.bar 1; Dsl.rc "x" 1 ];
      ]
  in
  let advices = Advisor.advise h in
  let causal_read = List.find (fun a -> a.Advisor.read_id = 7) advices in
  check "PRAM recommended for the causal read" true
    (causal_read.Advisor.recommended = Some Op.PRAM);
  let pram_reads = List.filter (fun a -> a.Advisor.declared = Op.PRAM) advices in
  check "PRAM reads keep PRAM" true
    (List.for_all (fun a -> a.Advisor.recommended = Some Op.PRAM) pram_reads)

let test_advisor_group_spectrum () =
  (* a group read whose group is just the reader behaves as PRAM; the full
     group behaves as Causal (Section 3.2 end points) *)
  let h =
    Dsl.make ~procs:3
      [
        [ Dsl.w "x" 1 ];
        [ Dsl.rp "x" 1; Dsl.w "y" 2 ];
        [ Dsl.rg [ 2 ] "y" 2; Dsl.rg [ 0; 1; 2 ] "x" 0 ];
      ]
  in
  let advices = Advisor.advise h in
  let singleton = List.find (fun a -> a.Advisor.read_id = 3) advices in
  check "singleton group validates" true singleton.Advisor.declared_valid;
  let full = List.find (fun a -> a.Advisor.read_id = 4) advices in
  check "full group behaves as causal: invalid" false full.Advisor.declared_valid;
  check "PRAM would do" true (full.Advisor.recommended = Some Op.PRAM)

(* ------------------------------------------------------------------ *)
(* Driver                                                              *)
(* ------------------------------------------------------------------ *)

let test_driver_counts_and_json () =
  let h =
    Dsl.make ~procs:2
      [ [ Dsl.w "x" 1; Dsl.rp "y" 0 ]; [ Dsl.w "x" 2; Dsl.w "y" 1 ] ]
  in
  let r = Analysis.analyze h in
  check "has errors" true (Analysis.has_errors r);
  check_int "severities partition the diagnostics"
    (List.length r.Analysis.diags)
    (r.Analysis.errors + r.Analysis.warnings + r.Analysis.infos);
  let json = Analysis.to_json r in
  let contains needle =
    let nl = String.length needle and jl = String.length json in
    let rec at i = i + nl <= jl && (String.sub json i nl = needle || at (i + 1)) in
    at 0
  in
  List.iter
    (fun needle ->
      check (Printf.sprintf "json contains %s" needle) true (contains needle))
    [ "\"rule\":\"R001\""; "\"summary\""; "\"errors\"" ]

let test_driver_clean_report () =
  let h =
    Dsl.make ~procs:2
      [ [ Dsl.w "x" 1; Dsl.w "f" 1 ]; [ Dsl.rp "f" 1; Dsl.rp "x" 1 ] ]
  in
  let r = Analysis.analyze h in
  check "no errors" false (Analysis.has_errors r)

let () =
  Alcotest.run "mc_analysis"
    [
      ( "differential",
        [
          Alcotest.test_case "catalog matches theorem1_report" `Quick
            test_differential_catalog;
          Alcotest.test_case "hb clocks exact on catalog" `Quick test_hb_exact;
          Alcotest.test_case "overlapping fibers use extra chains" `Quick
            test_overlapping_fibers_need_extra_chains;
          QCheck_alcotest.to_alcotest random_differential;
          QCheck_alcotest.to_alcotest random_hb_exact;
        ] );
      ( "lockset",
        [
          Alcotest.test_case "protected location" `Quick test_lockset_protected;
          Alcotest.test_case "unprotected location" `Quick test_lockset_unprotected;
        ] );
      ( "lint",
        [
          Alcotest.test_case "L001 unlock without lock" `Quick
            test_lint_l001_unlock_without_lock;
          Alcotest.test_case "L001 wrong mode" `Quick test_lint_l001_wrong_mode;
          Alcotest.test_case "L002 double acquire" `Quick test_lint_l002_double_acquire;
          Alcotest.test_case "L003 held at exit" `Quick test_lint_l003_held_at_exit;
          Alcotest.test_case "L004 barrier mismatch" `Quick
            test_lint_l004_barrier_mismatch;
          Alcotest.test_case "L005 await never fires" `Quick
            test_lint_l005_await_never_fires;
          Alcotest.test_case "L006 write under read lock" `Quick
            test_lint_l006_write_under_read_lock;
          Alcotest.test_case "clean history" `Quick test_lint_clean_history;
        ] );
      ( "advisor",
        [
          Alcotest.test_case "over-labelled" `Quick test_advisor_over_labelled;
          Alcotest.test_case "under-labelled" `Quick test_advisor_under_labelled;
          Alcotest.test_case "no label validates" `Quick
            test_advisor_no_label_validates;
          Alcotest.test_case "corollary 1 strengthens" `Quick
            test_advisor_corollary1_strengthens;
          Alcotest.test_case "corollary 2 keeps PRAM" `Quick
            test_advisor_corollary2_keeps_pram;
          Alcotest.test_case "group spectrum end points" `Quick
            test_advisor_group_spectrum;
        ] );
      ( "driver",
        [
          Alcotest.test_case "counts and json" `Quick test_driver_counts_and_json;
          Alcotest.test_case "clean report" `Quick test_driver_clean_report;
        ] );
    ]
