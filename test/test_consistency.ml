(* Tests for the consistency checkers: Definitions 1-5, Theorem 1, and
   the corollary program classes. Several cases are the classic
   separating examples between the consistency levels. *)

module Op = Mc_history.Op
module History = Mc_history.History
module Dsl = Mc_history.Dsl
module Read_rule = Mc_consistency.Read_rule
module Causal = Mc_consistency.Causal
module Pram = Mc_consistency.Pram
module Mixed = Mc_consistency.Mixed
module Sequential = Mc_consistency.Sequential
module Commute = Mc_consistency.Commute
module Program_class = Mc_consistency.Program_class

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* ------------------------------------------------------------------ *)
(* Read rule                                                           *)
(* ------------------------------------------------------------------ *)

let test_read_rule_verdicts () =
  (* p1 reads a value nobody wrote *)
  let h = Dsl.make ~procs:2 [ [ Dsl.w "x" 1 ]; [ Dsl.rc "x" 9 ] ] in
  check "no matching write" true (Causal.verdict h ~read_id:1 = Read_rule.No_matching_write);
  (* p0 writes twice; its own read of the first value is overwritten *)
  let h = Dsl.make ~procs:1 [ [ Dsl.w "x" 1; Dsl.w "x" 2; Dsl.rc "x" 1 ] ] in
  (match Causal.verdict h ~read_id:2 with
  | Read_rule.Overwritten 1 -> ()
  | v -> Alcotest.failf "expected Overwritten 1, got %a" Read_rule.pp_verdict v);
  (* reading the initial value before any visible write is fine *)
  let h = Dsl.make ~procs:2 [ [ Dsl.w "x" 1 ]; [ Dsl.rc "x" 0 ] ] in
  check "initial read valid when write is concurrent" true
    (Causal.verdict h ~read_id:1 = Read_rule.Valid)

let test_own_write_visible () =
  let h = Dsl.make ~procs:1 [ [ Dsl.w "x" 7; Dsl.rc "x" 7; Dsl.rp "x" 7 ] ] in
  check "causal read of own write" true (Causal.is_causal_read h ~read_id:1);
  check "pram read of own write" true (Pram.is_pram_read h ~read_id:2);
  let stale = Dsl.make ~procs:1 [ [ Dsl.w "x" 7; Dsl.rc "x" 0 ] ] in
  check "own write cannot be unseen" false (Causal.is_causal_read stale ~read_id:1)

(* ------------------------------------------------------------------ *)
(* Separating examples                                                 *)
(* ------------------------------------------------------------------ *)

(* Dekker-style: causal (and PRAM) but not sequentially consistent *)
let dekker =
  Dsl.make ~procs:2
    [ [ Dsl.w "x" 1; Dsl.rc "y" 0 ]; [ Dsl.w "y" 1; Dsl.rc "x" 0 ] ]

let test_dekker_causal_not_sc () =
  check "causal" true (Causal.is_causal_history dekker);
  check "pram" true (Pram.is_pram_history dekker);
  check "not sequentially consistent" true
    (Sequential.is_sequentially_consistent dekker = Sequential.Inconsistent)

(* Transitivity chain: PRAM but not causal *)
let pram_not_causal =
  Dsl.make ~procs:3
    [
      [ Dsl.w "x" 1 ];
      [ Dsl.rp "x" 1; Dsl.w "y" 2 ];
      [ Dsl.rp "y" 2; Dsl.rp "x" 0 ];
    ]

let test_pram_not_causal () =
  check "pram holds" true (Pram.is_pram_history pram_not_causal);
  check "causal fails" false (Causal.is_causal_history pram_not_causal);
  (* the failing read is p2's stale read of x *)
  match Causal.failures pram_not_causal with
  | [ { read_id = 4; verdict = Read_rule.Overwritten 0 } ] -> ()
  | fs ->
    Alcotest.failf "unexpected failures: %s"
      (String.concat "; " (List.map (Format.asprintf "%a" Causal.pp_failure) fs))

let test_mixed_labels () =
  (* same execution, labels chosen per Definition 4 *)
  let consistent =
    Dsl.make ~procs:3
      [
        [ Dsl.w "x" 1 ];
        [ Dsl.rp "x" 1; Dsl.w "y" 2 ];
        [ Dsl.rc "y" 2; Dsl.rp "x" 0 ];
      ]
  in
  check "mixed consistent with PRAM label on the stale read" true
    (Mixed.is_mixed_consistent consistent);
  let violating =
    Dsl.make ~procs:3
      [
        [ Dsl.w "x" 1 ];
        [ Dsl.rp "x" 1; Dsl.w "y" 2 ];
        [ Dsl.rp "y" 2; Dsl.rc "x" 0 ];
      ]
  in
  check "causal label on the stale read fails" false
    (Mixed.is_mixed_consistent violating);
  match Mixed.failures violating with
  | [ { read_id = 4; label = Op.Causal; _ } ] -> ()
  | _ -> Alcotest.fail "expected exactly the causal read to fail"

(* Group labels in Definition 4's per-label dispatch: a singleton group
   is a PRAM read, the full group is a causal read (Section 3.2) *)
let test_mixed_group_labels () =
  (* the transitivity chain again; the stale read of x carries a group
     label. Group = {reader}: behaves as PRAM, so the history passes. *)
  let singleton =
    Dsl.make ~procs:3
      [
        [ Dsl.w "x" 1 ];
        [ Dsl.rp "x" 1; Dsl.w "y" 2 ];
        [ Dsl.rp "y" 2; Dsl.rg [ 2 ] "x" 0 ];
      ]
  in
  check "singleton group read behaves as PRAM" true
    (Mixed.is_mixed_consistent singleton);
  (* Group = all processes: behaves as Causal, so the stale read fails *)
  let full =
    Dsl.make ~procs:3
      [
        [ Dsl.w "x" 1 ];
        [ Dsl.rp "x" 1; Dsl.w "y" 2 ];
        [ Dsl.rp "y" 2; Dsl.rg [ 0; 1; 2 ] "x" 0 ];
      ]
  in
  check "full group read behaves as causal" false (Mixed.is_mixed_consistent full);
  (match Mixed.failures full with
  | [ { read_id = 4; label = Op.Group [ 0; 1; 2 ]; _ } ] -> ()
  | _ -> Alcotest.fail "expected exactly the group-labelled read to fail");
  (* the intermediate group {1,2} already sees p1's forwarding of x, so
     the stale read fails there too: the spectrum is monotone *)
  let intermediate =
    Dsl.make ~procs:3
      [
        [ Dsl.w "x" 1 ];
        [ Dsl.rp "x" 1; Dsl.w "y" 2 ];
        [ Dsl.rp "y" 2; Dsl.rg [ 1; 2 ] "x" 0 ];
      ]
  in
  check "group {1,2} maintains causality through p1" false
    (Mixed.is_mixed_consistent intermediate)

(* FIFO violation: not even PRAM *)
let test_not_pram () =
  let h =
    Dsl.make ~procs:2
      [ [ Dsl.w "x" 1; Dsl.w "x" 2 ]; [ Dsl.rp "x" 2; Dsl.rp "x" 1 ] ]
  in
  check "second read violates writer order" false (Pram.is_pram_history h);
  check "and is not causal either" false (Causal.is_causal_history h)

(* Two concurrent writes may be observed in different orders by
   different processes under PRAM/causal memory - but not under SC *)
let test_write_order_disagreement () =
  let h =
    Dsl.make ~procs:4
      [
        [ Dsl.w "x" 1 ];
        [ Dsl.w "x" 2 ];
        [ Dsl.rc "x" 1; Dsl.rc "x" 2 ];
        [ Dsl.rc "x" 2; Dsl.rc "x" 1 ];
      ]
  in
  check "causal allows disagreement" true (Causal.is_causal_history h);
  check "SC forbids disagreement" true
    (Sequential.is_sequentially_consistent h = Sequential.Inconsistent)

(* Await synchronization strengthens PRAM: the awaited write's process
   is directly synchronized with the awaiting process *)
let test_await_strengthens_pram () =
  let stale =
    Dsl.make ~procs:2
      [ [ Dsl.w "y" 5; Dsl.w "x" 1 ]; [ Dsl.await "x" 1; Dsl.rp "y" 0 ] ]
  in
  check "stale read after await is not PRAM" false (Pram.is_pram_history stale);
  let fresh =
    Dsl.make ~procs:2
      [ [ Dsl.w "y" 5; Dsl.w "x" 1 ]; [ Dsl.await "x" 1; Dsl.rp "y" 5 ] ]
  in
  check "fresh read after await is PRAM" true (Pram.is_pram_history fresh)

(* Lock hand-off: PRAM reads see only the immediately preceding holder
   (Section 6), causal reads see all prior holders *)
let lock_chain ~last_read =
  Dsl.make ~procs:3
    [
      [ Dsl.wl ~seq:0 "m"; Dsl.w "x" 1; Dsl.wu ~seq:1 "m" ];
      [ Dsl.wl ~seq:2 "m"; Dsl.w "y" 2; Dsl.wu ~seq:3 "m" ];
      [ Dsl.wl ~seq:4 "m"; last_read; Dsl.wu ~seq:5 "m" ];
    ]

let test_lock_handoff_pram_vs_causal () =
  let stale_x = lock_chain ~last_read:(Dsl.rp "x" 0) in
  check "PRAM read may miss the holder-before-last" true
    (Pram.is_pram_history stale_x);
  let stale_x_causal = lock_chain ~last_read:(Dsl.rc "x" 0) in
  check "causal read must see the holder-before-last" false
    (Causal.is_causal_history stale_x_causal);
  let fresh_y = lock_chain ~last_read:(Dsl.rp "y" 0) in
  check "PRAM read must see the immediately preceding holder" false
    (Pram.is_pram_history fresh_y)

(* ------------------------------------------------------------------ *)
(* Sequential consistency and replay                                   *)
(* ------------------------------------------------------------------ *)

let test_replay_valid_order () =
  let h = Dsl.make ~procs:2 [ [ Dsl.w "x" 1 ]; [ Dsl.rc "x" 1; Dsl.w "x" 2 ] ] in
  check "good order" true (Sequential.replay h [ 0; 1; 2 ] = Ok ());
  check "bad order" true (Result.is_error (Sequential.replay h [ 1; 0; 2 ]));
  check "wrong length" true (Result.is_error (Sequential.replay h [ 0; 1 ]));
  check "duplicate" true (Result.is_error (Sequential.replay h [ 0; 0; 1 ]))

let test_replay_lock_discipline () =
  let h =
    Dsl.make ~procs:2
      [
        [ Dsl.wl ~seq:0 "m"; Dsl.wu ~seq:1 "m" ];
        [ Dsl.wl ~seq:2 "m"; Dsl.wu ~seq:3 "m" ];
      ]
  in
  check "serialized critical sections" true
    (Sequential.replay h [ 0; 1; 2; 3 ] = Ok ());
  check "interleaved write locks rejected" true
    (Result.is_error (Sequential.replay h [ 0; 2; 1; 3 ]))

let test_replay_decrement () =
  let h =
    Dsl.make ~procs:1
      [ [ Dsl.w "c" 5; Dsl.dec "c" ~amount:2 ~observed:5; Dsl.rc "c" 3 ] ]
  in
  check "decrement observes and installs" true
    (Sequential.replay h [ 0; 1; 2 ] = Ok ());
  (* the recorded pre-value disagrees with the replay state (as happens
     for concurrent commuting decrements observed at different replicas);
     the state still advances by the decremented amount *)
  let wrong =
    Dsl.make ~procs:1
      [ [ Dsl.w "c" 5; Dsl.dec "c" ~amount:2 ~observed:4; Dsl.rc "c" 3 ] ]
  in
  check "wrong observation rejected" true
    (Result.is_error (Sequential.replay wrong [ 0; 1; 2 ]));
  check "unchecked mode tolerates it" true
    (Sequential.replay ~check_observed:false wrong [ 0; 1; 2 ] = Ok ())

let test_respects_causality () =
  let h = Dsl.make ~procs:2 [ [ Dsl.w "x" 1 ]; [ Dsl.rc "x" 1 ] ] in
  check "rf order respected" true (Sequential.respects_causality h [ 0; 1 ]);
  check "rf order violated" false (Sequential.respects_causality h [ 1; 0 ])

let test_sc_search_finds_witness () =
  let h =
    Dsl.make ~procs:2
      [ [ Dsl.w "x" 1; Dsl.rc "y" 2 ]; [ Dsl.w "y" 2; Dsl.rc "x" 1 ] ]
  in
  let witness, answer = Sequential.witness h in
  check "consistent" true (answer = Sequential.Consistent);
  match witness with
  | Some order ->
    check "witness replays" true (Sequential.replay h order = Ok ());
    check "witness respects causality" true (Sequential.respects_causality h order)
  | None -> Alcotest.fail "expected a witness"

let test_sc_budget () =
  check "tiny budget gives Unknown" true
    (Sequential.is_sequentially_consistent ~max_states:1 dekker = Sequential.Unknown)

(* ------------------------------------------------------------------ *)
(* Commutativity and Theorem 1                                         *)
(* ------------------------------------------------------------------ *)

let mk ?(proc = 0) kind : Op.t =
  { id = 0; proc; kind; inv_seq = 0; resp_seq = 1; sync_seq = -1 }

let test_commute_rules () =
  let w_x = mk (Op.Write { loc = "x"; value = 1 }) in
  let w_x' = mk (Op.Write { loc = "x"; value = 2 }) in
  let w_y = mk (Op.Write { loc = "y"; value = 3 }) in
  let r_x = mk (Op.Read { loc = "x"; label = Op.Causal; value = 1 }) in
  let r_x' = mk (Op.Read { loc = "x"; label = Op.PRAM; value = 2 }) in
  let d_c = mk (Op.Decrement { loc = "c"; amount = 1; observed = 5 }) in
  let d_c' = mk (Op.Decrement { loc = "c"; amount = 2; observed = 4 }) in
  let r_c = mk (Op.Read { loc = "c"; label = Op.Causal; value = 3 }) in
  let bar = mk (Op.Barrier 0) in
  check "writes to same location conflict" false (Commute.commute w_x w_x');
  check "writes to different locations commute" true (Commute.commute w_x w_y);
  check "reads commute" true (Commute.commute r_x r_x');
  check "read/write same location conflict" false (Commute.commute w_x r_x);
  check "decrements commute" true (Commute.commute d_c d_c');
  check "decrement vs read conflict" false (Commute.commute d_c r_c);
  check "barrier commutes" true (Commute.commute bar w_x);
  let rl1 = mk (Op.Read_lock "m") and rl2 = mk ~proc:1 (Op.Read_lock "m") in
  let wl = mk ~proc:1 (Op.Write_lock "m") in
  check "read locks commute" true (Commute.commute rl1 rl2);
  check "write lock conflicts with read lock" false (Commute.commute rl1 wl)

let test_theorem1_positive () =
  (* disjoint writes + causal reads: premises hold, hence SC *)
  let h =
    Dsl.make ~procs:2
      [ [ Dsl.w "x" 1; Dsl.rc "x" 1 ]; [ Dsl.w "y" 2; Dsl.rc "y" 2 ] ]
  in
  check "theorem 1 premises hold" true (Commute.theorem1_holds h);
  check "and the history is indeed SC" true
    (Sequential.is_sequentially_consistent h = Sequential.Consistent)

let test_theorem1_negative () =
  (* Dekker: unrelated writes and reads on the same locations conflict *)
  let r = Commute.theorem1_report dekker in
  check "non-commuting pairs found" true (r.Commute.non_commuting_pairs <> []);
  check "premises fail" false (Commute.theorem1_holds dekker)

let test_theorem1_handshake_shape () =
  (* miniature Fig. 3 round: worker writes x, handshakes through the
     coordinator with awaits; the only potentially-conflicting accesses
     are ordered by causality, so Theorem 1 applies *)
  let h =
    Dsl.make ~procs:2
      [
        [ Dsl.await "computed" 1; Dsl.rc "x" 10; Dsl.w "ack" 1 ];
        [ Dsl.w "x" 10; Dsl.w "computed" 1; Dsl.await "ack" 1 ];
      ]
  in
  check "handshake satisfies Theorem 1" true (Commute.theorem1_holds h);
  check "SC" true (Sequential.is_sequentially_consistent h = Sequential.Consistent)

(* ------------------------------------------------------------------ *)
(* Program classes (Corollaries 1 and 2)                               *)
(* ------------------------------------------------------------------ *)

let test_entry_consistent_program () =
  let h =
    Dsl.make ~procs:2
      [
        [ Dsl.wl ~seq:0 "m"; Dsl.w "x" 1; Dsl.wu ~seq:1 "m" ];
        [ Dsl.rl ~seq:2 "m"; Dsl.rc "x" 1; Dsl.ru ~seq:3 "m" ];
      ]
  in
  let r = Program_class.check_entry_consistent h in
  check "no violations" true (r.Program_class.entry_violations = []);
  check "x assigned to m" true (List.mem ("x", "m") r.Program_class.assignment);
  check "classified entry-consistent" true (Program_class.is_entry_consistent h);
  (* Corollary 1: with causal reads the history is SC *)
  check "corollary 1 conclusion" true
    (Sequential.is_sequentially_consistent h = Sequential.Consistent)

let test_entry_violations () =
  let unlocked_write =
    Dsl.make ~procs:2
      [ [ Dsl.w "x" 1 ]; [ Dsl.rl ~seq:0 "m"; Dsl.rc "x" 1; Dsl.ru ~seq:1 "m" ] ]
  in
  check "write outside lock detected" false
    (Program_class.is_entry_consistent unlocked_write);
  let read_lock_write =
    Dsl.make ~procs:2
      [
        [ Dsl.rl ~seq:0 "m"; Dsl.w "x" 1; Dsl.ru ~seq:1 "m" ];
        [ Dsl.rl ~seq:2 "m"; Dsl.rc "x" 1; Dsl.ru ~seq:3 "m" ];
      ]
  in
  check "write under read lock detected" false
    (Program_class.is_entry_consistent read_lock_write)

let test_entry_consistent_private_vars_ignored () =
  (* x is only accessed by one process: not shared, no lock needed *)
  let h = Dsl.make ~procs:2 [ [ Dsl.w "x" 1; Dsl.rc "x" 1 ]; [ Dsl.w "y" 2 ] ] in
  check "private variables exempt" true (Program_class.is_entry_consistent h)

let test_pram_consistent_program () =
  (* Fig. 2 shape: reads in one phase, the unique write in the next *)
  let h =
    Dsl.make ~procs:2
      [
        [ Dsl.rp "x" 0; Dsl.bar 0; Dsl.w "x" 1; Dsl.bar 1 ];
        [ Dsl.rp "x" 0; Dsl.bar 0; Dsl.bar 1; Dsl.rp "x" 1 ];
      ]
  in
  check "PRAM-consistent" true (Program_class.is_pram_consistent h);
  check "corollary 2 conclusion" true
    (Sequential.is_sequentially_consistent h = Sequential.Consistent)

let test_pram_inconsistent_programs () =
  let double_write =
    Dsl.make ~procs:2 [ [ Dsl.w "x" 1; Dsl.w "x" 2 ]; [ Dsl.rp "x" 2 ] ]
  in
  check "two updates in one phase" false
    (Program_class.is_pram_consistent double_write);
  let read_with_write =
    Dsl.make ~procs:2 [ [ Dsl.w "x" 1 ]; [ Dsl.rp "x" 1 ] ]
  in
  check "cross-process read in the write phase" false
    (Program_class.is_pram_consistent read_with_write);
  match Program_class.check_pram_consistent read_with_write with
  | [ { loc = "x"; phase = 0; _ } ] -> ()
  | _ -> Alcotest.fail "expected one violation on x in phase 0"

let test_pram_consistent_same_proc_read_after_write () =
  let h = Dsl.make ~procs:2 [ [ Dsl.w "x" 1; Dsl.rp "x" 1 ]; [ Dsl.rp "x" 0; Dsl.bar 0 ] ] in
  (* x is written and read by p0 in phase 0 (read after write: fine), but
     also read by p1 in phase 0: violation *)
  check "own read after write ok, foreign read not" false
    (Program_class.is_pram_consistent h);
  let ok =
    Dsl.make ~procs:1 [ [ Dsl.w "x" 1; Dsl.rp "x" 1 ] ]
  in
  check_int "no violation for own ordered read" 0
    (List.length (Program_class.check_pram_consistent ok ~shared:(fun _ -> true)))

let () =
  Alcotest.run "mc_consistency"
    [
      ( "read_rule",
        [
          Alcotest.test_case "verdicts" `Quick test_read_rule_verdicts;
          Alcotest.test_case "own writes visible" `Quick test_own_write_visible;
        ] );
      ( "separations",
        [
          Alcotest.test_case "dekker: causal, not SC" `Quick test_dekker_causal_not_sc;
          Alcotest.test_case "chain: PRAM, not causal" `Quick test_pram_not_causal;
          Alcotest.test_case "mixed labels (Definition 4)" `Quick test_mixed_labels;
          Alcotest.test_case "group labels (Section 3.2)" `Quick test_mixed_group_labels;
          Alcotest.test_case "FIFO violation: not PRAM" `Quick test_not_pram;
          Alcotest.test_case "write-order disagreement" `Quick test_write_order_disagreement;
          Alcotest.test_case "await strengthens PRAM" `Quick test_await_strengthens_pram;
          Alcotest.test_case "lock hand-off visibility" `Quick test_lock_handoff_pram_vs_causal;
        ] );
      ( "sequential",
        [
          Alcotest.test_case "replay orders" `Quick test_replay_valid_order;
          Alcotest.test_case "replay lock discipline" `Quick test_replay_lock_discipline;
          Alcotest.test_case "replay decrements" `Quick test_replay_decrement;
          Alcotest.test_case "respects_causality" `Quick test_respects_causality;
          Alcotest.test_case "search finds a witness" `Quick test_sc_search_finds_witness;
          Alcotest.test_case "bounded search returns Unknown" `Quick test_sc_budget;
        ] );
      ( "theorem1",
        [
          Alcotest.test_case "commutativity rules" `Quick test_commute_rules;
          Alcotest.test_case "premises imply SC" `Quick test_theorem1_positive;
          Alcotest.test_case "dekker violates premises" `Quick test_theorem1_negative;
          Alcotest.test_case "handshake shape" `Quick test_theorem1_handshake_shape;
        ] );
      ( "program_classes",
        [
          Alcotest.test_case "entry-consistent program" `Quick test_entry_consistent_program;
          Alcotest.test_case "entry violations" `Quick test_entry_violations;
          Alcotest.test_case "private variables exempt" `Quick test_entry_consistent_private_vars_ignored;
          Alcotest.test_case "PRAM-consistent phases" `Quick test_pram_consistent_program;
          Alcotest.test_case "PRAM-inconsistent phases" `Quick test_pram_inconsistent_programs;
          Alcotest.test_case "same-process read after write" `Quick test_pram_consistent_same_proc_read_after_write;
        ] );
    ]
