(* Unit and property tests for Mc_placement.Placement: the loc -> shard
   policies, the subscription registry, the home function and the
   per-(shard, root) dissemination trees. *)

module P = Mc_placement.Placement
module Rng = Mc_util.Rng

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_ints = Alcotest.(check (list int))

(* ------------------------------------------------------------------ *)
(* Policies                                                            *)
(* ------------------------------------------------------------------ *)

let test_range_policy () =
  let pl = P.create ~shards:10 ~policy:(P.Range { objects = 100 }) () in
  (* per-shard span is ceil(100/10) = 10 *)
  check_int "first id" 0 (P.shard_of_loc pl "s:0");
  check_int "last of shard 0" 0 (P.shard_of_loc pl "s:9");
  check_int "first of shard 1" 1 (P.shard_of_loc pl "s:10");
  check_int "last id" 9 (P.shard_of_loc pl "s:99");
  check_int "overflow ids clamp to the last shard" 9 (P.shard_of_loc pl "s:150");
  (* locations without a numeric suffix fall back to hashing *)
  let h = P.shard_of_loc pl "done" in
  check "hash fallback in range" true (h >= 0 && h < 10);
  check_int "hash fallback deterministic" h (P.shard_of_loc pl "done")

let test_hash_policy () =
  let pl = P.create ~shards:7 ~policy:P.Hash () in
  List.iter
    (fun loc ->
      let s = P.shard_of_loc pl loc in
      check (loc ^ " in range") true (s >= 0 && s < 7);
      check_int (loc ^ " deterministic") s (P.shard_of_loc pl loc))
    [ "x:0"; "x:1"; "y"; "done"; "cnt:42" ]

let test_policy_strings () =
  (* the textual form names the constructor; a range's object count is
     supplied separately (on the CLI, by --objects) *)
  let ctor = function P.Hash -> "hash" | P.Range _ -> "range" in
  List.iter
    (fun p ->
      match P.policy_of_string (P.policy_to_string p) with
      | Ok p' -> Alcotest.(check string) "roundtrip" (ctor p) (ctor p')
      | Error e -> Alcotest.failf "roundtrip failed: %s" e)
    [ P.Hash; P.Range { objects = 64 } ];
  check "garbage rejected" true
    (match P.policy_of_string "nonsense" with Error _ -> true | Ok _ -> false)

(* ------------------------------------------------------------------ *)
(* Subscriptions and home                                              *)
(* ------------------------------------------------------------------ *)

let test_subscriptions () =
  let pl = P.create ~shards:4 ~policy:P.Hash () in
  check_ints "initially empty" [] (P.subscribers pl ~shard:2);
  check "no home" true (P.home pl ~shard:2 = None);
  P.subscribe pl ~node:5 ~shard:2;
  P.subscribe pl ~node:1 ~shard:2;
  P.subscribe pl ~node:3 ~shard:2;
  P.subscribe pl ~node:1 ~shard:2 (* duplicate *);
  check_ints "sorted, deduplicated" [ 1; 3; 5 ] (P.subscribers pl ~shard:2);
  check "home is least subscriber" true (P.home pl ~shard:2 = Some 1);
  check "is_subscribed" true (P.is_subscribed pl ~node:3 ~shard:2);
  P.subscribe pl ~node:3 ~shard:0;
  check_ints "per-node view" [ 0; 2 ] (P.subscriptions pl ~node:3);
  P.unsubscribe pl ~node:1 ~shard:2;
  check_ints "after unsubscribe" [ 3; 5 ] (P.subscribers pl ~shard:2);
  check "home recomputed" true (P.home pl ~shard:2 = Some 3);
  check "is_subscribed off" false (P.is_subscribed pl ~node:1 ~shard:2)

(* ------------------------------------------------------------------ *)
(* Dissemination trees                                                 *)
(* ------------------------------------------------------------------ *)

(* Walk the tree from [root] and collect every reached node. *)
let reachable pl ~shard ~root =
  let seen = Hashtbl.create 16 in
  let rec go node =
    if Hashtbl.mem seen node then
      Alcotest.failf "node %d reached twice (shard %d root %d)" node shard root;
    Hashtbl.add seen node ();
    List.iter go (P.children pl ~shard ~root ~node)
  in
  go root;
  List.sort compare (Hashtbl.fold (fun n () acc -> n :: acc) seen [])

let test_tree_covers_subscribers () =
  for seed = 1 to 30 do
    let rng = Rng.make (9100 + seed) in
    let fanout = 1 + Rng.int rng 4 in
    let pl = P.create ~shards:3 ~policy:P.Hash ~fanout () in
    let n = 1 + Rng.int rng 12 in
    for _ = 1 to n do
      P.subscribe pl ~node:(Rng.int rng 40) ~shard:1
    done;
    let subs = P.subscribers pl ~shard:1 in
    List.iter
      (fun root ->
        let name what =
          Printf.sprintf "seed %d fanout %d root %d: %s" seed fanout root what
        in
        check_ints (name "tree spans the subscriber set") subs
          (reachable pl ~shard:1 ~root);
        List.iter
          (fun node ->
            let kids = P.children pl ~shard:1 ~root ~node in
            check (name "fanout bound") true (List.length kids <= fanout);
            check (name "deterministic") true
              (kids = P.children pl ~shard:1 ~root ~node);
            check (name "root is nobody's child") true
              (not (List.mem root kids)))
          subs)
      subs
  done

let test_tree_follows_churn () =
  let pl = P.create ~shards:2 ~policy:P.Hash ~fanout:2 () in
  List.iter (fun n -> P.subscribe pl ~node:n ~shard:0) [ 0; 1; 2; 3; 4 ];
  check_ints "full set" [ 0; 1; 2; 3; 4 ] (reachable pl ~shard:0 ~root:2);
  P.unsubscribe pl ~node:3 ~shard:0;
  (* memoized trees must be invalidated by the membership change *)
  check_ints "after unsubscribe" [ 0; 1; 2; 4 ] (reachable pl ~shard:0 ~root:2);
  P.subscribe pl ~node:7 ~shard:0;
  check_ints "after resubscribe" [ 0; 1; 2; 4; 7 ] (reachable pl ~shard:0 ~root:2)

let () =
  Alcotest.run "placement"
    [
      ( "policy",
        [
          Alcotest.test_case "range" `Quick test_range_policy;
          Alcotest.test_case "hash" `Quick test_hash_policy;
          Alcotest.test_case "strings" `Quick test_policy_strings;
        ] );
      ( "subscriptions",
        [ Alcotest.test_case "registry and home" `Quick test_subscriptions ] );
      ( "trees",
        [
          Alcotest.test_case "random sets are spanned" `Quick
            test_tree_covers_subscribers;
          Alcotest.test_case "churn invalidates memos" `Quick
            test_tree_follows_churn;
        ] );
    ]
