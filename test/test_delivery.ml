(* Differential proof that the fast causal-delivery engine is
   observationally identical to the retained reference engine:

   - replica-level: random valid update streams (FIFO per writer,
     arbitrarily interleaved across writers) fed to both engines produce
     identical state after every single receive;
   - runtime-level: random phase-structured workloads (writes, PRAM and
     causal reads, decrements, lock-protected sections, barriers) under
     every propagation mode record identical histories, identical final
     memories and identical consistency verdicts; likewise under
     multicast routing;
   - every Section-5 application computes the same result with the same
     history on both engines;
   - update batching: encode/decode roundtrips, batched runs are
     bit-identical across engines, preserve the unbatched final memory
     and verdict, cost strictly fewer messages and bytes, and the window
     timer flushes a stalled outbox. *)

module Engine = Mc_sim.Engine
module Runtime = Mc_dsm.Runtime
module Config = Mc_dsm.Config
module Api = Mc_dsm.Api
module Replica = Mc_dsm.Replica
module Protocol = Mc_dsm.Protocol
module Network = Mc_net.Network
module Latency = Mc_net.Latency
module Op = Mc_history.Op
module History = Mc_history.History
module Mixed = Mc_consistency.Mixed
module Rng = Mc_util.Rng
module Solver = Mc_apps.Linear_solver
module Em = Mc_apps.Em_field
module Cholesky = Mc_apps.Cholesky
module Sparse = Mc_apps.Sparse_spd
module Pipeline = Mc_apps.Pipeline

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let check_histories name hf hr =
  let a = History.ops hf and b = History.ops hr in
  check_int (name ^ ": op count") (Array.length b) (Array.length a);
  Array.iteri
    (fun i o ->
      if o <> b.(i) then
        Alcotest.failf "%s: op %d differs:\n  fast:      %s\n  reference: %s" name
          i (Op.to_string o) (Op.to_string b.(i)))
    a

(* ------------------------------------------------------------------ *)
(* Replica-level stream differential                                   *)
(* ------------------------------------------------------------------ *)

(* Build a valid execution among [writers] replicas: each step either
   issues a fresh update at a random writer or lets a writer receive the
   oldest in-flight update from a peer, so later updates carry rich,
   genuinely cross-writer dependency clocks. Returns the per-writer
   update streams in issue order. *)
let gen_valid_streams rng ~writers ~per_writer =
  let e = Engine.create () in
  let n = writers + 1 in
  let ws = Array.init writers (fun i -> Replica.create e ~id:i ~n ()) in
  let queues = Array.make writers [] in
  let inflight = Array.init writers (fun _ -> Array.init writers (fun _ -> Queue.create ())) in
  let locs = [| "x"; "y"; "z"; "w" |] in
  let issued = Array.make writers 0 in
  for _ = 1 to writers * per_writer * 3 do
    let i = Rng.int rng writers in
    if Rng.bool rng && issued.(i) < per_writer then begin
      let u =
        if Rng.int rng 4 = 0 then
          fst (Replica.local_dec ws.(i) ~loc:"cnt" ~amount:1)
        else
          Replica.local_write ws.(i) ~loc:(Rng.pick rng locs)
            ~numeric:(Rng.int rng 100)
            ~tag:((100 * (i + 1)) + issued.(i) + 1)
      in
      issued.(i) <- issued.(i) + 1;
      queues.(i) <- u :: queues.(i);
      for j = 0 to writers - 1 do
        if j <> i then Queue.push u inflight.(j).(i)
      done
    end
    else begin
      let peers =
        List.filter
          (fun j -> j <> i && not (Queue.is_empty inflight.(i).(j)))
          (List.init writers Fun.id)
      in
      match peers with
      | [] -> ()
      | ps ->
        let j = List.nth ps (Rng.int rng (List.length ps)) in
        Replica.receive ws.(i) (Queue.pop inflight.(i).(j))
    end
  done;
  Array.map List.rev queues

let test_replica_stream_differential () =
  let locs = [ "x"; "y"; "z"; "w"; "cnt" ] in
  for seed = 1 to 25 do
    let rng = Rng.make (4000 + seed) in
    let writers = 2 + Rng.int rng 3 in
    let streams = gen_valid_streams rng ~writers ~per_writer:6 in
    let n = writers + 1 in
    let group = [ 0; 1 ] in
    let e = Engine.create () in
    let mk delivery =
      Replica.create e ~id:writers ~n ~groups:[ group ] ~delivery ()
    in
    let fast = mk Config.Fast and slow = mk Config.Reference in
    (* a demand obligation whose clock comes from a real update, so it
       is eventually satisfied mid-stream *)
    (match Array.to_list streams |> List.concat with
    | u :: _ ->
      let dep = Array.copy u.Protocol.dep in
      dep.(u.Protocol.writer) <- u.Protocol.useq;
      Replica.mark_invalid fast "x" dep;
      Replica.mark_invalid slow "x" dep
    | [] -> ());
    let compare_state step =
      let name what = Printf.sprintf "seed %d step %d: %s" seed step what in
      check (name "applied") true (Replica.applied fast = Replica.applied slow);
      check (name "received") true (Replica.received fast = Replica.received slow);
      check_int (name "pending")
        (Replica.pending_count slow)
        (Replica.pending_count fast);
      check (name "blocked x") true
        (Replica.location_blocked fast "x" = Replica.location_blocked slow "x");
      List.iter
        (fun loc ->
          check (name ("causal " ^ loc)) true
            (Replica.causal_read fast loc = Replica.causal_read slow loc);
          check (name ("pram " ^ loc)) true
            (Replica.pram_read fast loc = Replica.pram_read slow loc);
          check (name ("group " ^ loc)) true
            (Replica.group_read fast ~group loc
            = Replica.group_read slow ~group loc))
        locs
    in
    (* feed the receiver an arbitrary interleaving that is FIFO per
       writer, comparing the engines after every message *)
    let remaining = Array.map ref streams in
    let step = ref 0 in
    let continue_ = ref true in
    while !continue_ do
      let nonempty =
        List.filter (fun i -> !(remaining.(i)) <> []) (List.init writers Fun.id)
      in
      match nonempty with
      | [] -> continue_ := false
      | is -> (
        let i = List.nth is (Rng.int rng (List.length is)) in
        match !(remaining.(i)) with
        | u :: rest ->
          remaining.(i) := rest;
          Replica.receive fast u;
          Replica.receive slow u;
          incr step;
          compare_state !step
        | [] -> assert false)
    done;
    (* the receiver got every update, so everything must have applied *)
    check_int (Printf.sprintf "seed %d: nothing left pending" seed) 0
      (Replica.pending_count fast)
  done

(* ------------------------------------------------------------------ *)
(* Runtime-level random workload differential                          *)
(* ------------------------------------------------------------------ *)

type wop =
  | W of string * int
  | R of string * Op.label
  | Dec of string
  | Locked of string * string * int

let free_locs = [| "a"; "b"; "c" |]
let counter_loc = "cnt"
let all_locs = [ "a"; "b"; "c"; "cnt"; "g0"; "g1" ]

(* guarded locations g0/g1 are only touched inside their lock's critical
   section, so the plan is valid under every propagation mode including
   entry consistency *)
let gen_plan rng ~procs ~rounds =
  Array.init procs (fun pid ->
      List.init rounds (fun round ->
          List.init
            (1 + Rng.int rng 3)
            (fun _ ->
              match Rng.int rng 10 with
              | 0 | 1 | 2 ->
                W (Rng.pick rng free_locs, (100 * pid) + Rng.int rng 50)
              | 3 | 4 ->
                R (Rng.pick rng free_locs, if Rng.bool rng then Op.Causal else Op.PRAM)
              | 5 when round > 0 -> Dec counter_loc
              | 6 | 7 ->
                let g = Rng.int rng 2 in
                Locked
                  (Printf.sprintf "lg%d" g, Printf.sprintf "g%d" g, Rng.int rng 90)
              | _ -> R (Rng.pick rng free_locs, Op.Causal))))

let run_plan ~delivery ~seed ~propagation ~procs plan =
  let engine = Engine.create () in
  let cfg =
    { (Config.default ~procs) with record = true; propagation; delivery }
  in
  let latency = Latency.uniform (Rng.make seed) ~lo:5. ~hi:150. in
  let rt = Runtime.create engine ~latency cfg in
  for i = 0 to procs - 1 do
    Runtime.spawn_process rt i (fun p ->
        if i = 0 then Runtime.init_counter p counter_loc 1000;
        List.iter
          (fun round_ops ->
            List.iter
              (function
                | W (loc, v) -> Runtime.write p loc v
                | R (loc, label) -> ignore (Runtime.read p ~label loc)
                | Dec loc -> Runtime.decrement p loc ~amount:1
                | Locked (lock, gloc, v) ->
                  Runtime.write_lock p lock;
                  Runtime.write p gloc v;
                  ignore (Runtime.read p gloc);
                  Runtime.write_unlock p lock)
              round_ops;
            Runtime.barrier p)
          plan.(i))
  done;
  ignore (Runtime.run rt);
  (rt, Runtime.history rt)

let test_random_workloads_differential () =
  List.iter
    (fun propagation ->
      for seed = 1 to 5 do
        let rng = Rng.make (7000 + (100 * seed)) in
        let procs = 3 + Rng.int rng 2 in
        let plan = gen_plan rng ~procs ~rounds:3 in
        let rt_f, h_f =
          run_plan ~delivery:Config.Fast ~seed ~propagation ~procs plan
        in
        let rt_r, h_r =
          run_plan ~delivery:Config.Reference ~seed ~propagation ~procs plan
        in
        let name =
          Printf.sprintf "%s seed %d" (Config.propagation_to_string propagation) seed
        in
        check_histories name h_f h_r;
        List.iter
          (fun loc ->
            for proc = 0 to procs - 1 do
              check_int
                (Printf.sprintf "%s: peek %s at %d" name loc proc)
                (Runtime.peek rt_r ~proc loc)
                (Runtime.peek rt_f ~proc loc)
            done)
          all_locs;
        check (name ^ ": same verdict") true
          (Mixed.is_mixed_consistent h_f = Mixed.is_mixed_consistent h_r)
      done)
    [ Config.Eager; Config.Lazy; Config.Demand; Config.Entry ]

let test_multicast_differential () =
  let procs = 3 in
  let subs = function
    | "m0" -> Some [ 1 ]
    | "m1" -> Some [ 2 ]
    | "m2" -> Some [ 0 ]
    | _ -> None
  in
  let run delivery =
    let engine = Engine.create () in
    let cfg =
      {
        (Config.default ~procs) with
        record = true;
        delivery;
        multicast = Some subs;
        timestamped_updates = false;
      }
    in
    let latency = Latency.uniform (Rng.make 99) ~lo:5. ~hi:80. in
    let rt = Runtime.create engine ~latency cfg in
    for i = 0 to procs - 1 do
      Runtime.spawn_process rt i (fun p ->
          let mine = Printf.sprintf "m%d" i in
          for k = 1 to 4 do
            Runtime.write p mine ((10 * i) + k)
          done;
          Runtime.barrier p;
          ignore (Runtime.read p ~label:Op.PRAM (Printf.sprintf "m%d" ((i + 2) mod 3)));
          Runtime.barrier p)
    done;
    ignore (Runtime.run rt);
    Runtime.history rt
  in
  check_histories "multicast" (run Config.Fast) (run Config.Reference)

(* ------------------------------------------------------------------ *)
(* Section-5 applications                                              *)
(* ------------------------------------------------------------------ *)

let run_app ~delivery ?(procs = 4) ?propagation ?multicast f =
  let engine = Engine.create () in
  let base = { (Config.default ~procs) with record = true; delivery } in
  let base =
    match propagation with Some p -> { base with propagation = p } | None -> base
  in
  let cfg =
    match multicast with
    | Some m -> { base with multicast = Some m; timestamped_updates = false }
    | None -> base
  in
  let latency = Latency.uniform (Rng.make 11) ~lo:5. ~hi:120. in
  let rt = Runtime.create engine ~latency cfg in
  let out = f (Api.spawn rt) in
  ignore (Runtime.run rt);
  (!out, Runtime.history rt)

let app_differential name ?procs ?propagation ?multicast f =
  let rf, hf = run_app ~delivery:Config.Fast ?procs ?propagation ?multicast f in
  let rr, hr = run_app ~delivery:Config.Reference ?procs ?propagation ?multicast f in
  check (name ^ ": result produced") true (rf <> None);
  check (name ^ ": same result") true (rf = rr);
  check_histories name hf hr

let test_apps_differential () =
  let problem = Solver.Problem.generate ~seed:7 ~n:6 in
  app_differential "solver barrier_pram" ~procs:4 (fun spawn ->
      Solver.launch ~spawn ~procs:4 ~variant:Solver.Barrier_pram problem);
  app_differential "solver handshake_causal" ~procs:3 (fun spawn ->
      Solver.launch ~spawn ~procs:3 ~variant:Solver.Handshake_causal problem);
  let em_params = { Em.rows = 6; cols = 5; steps = 2; seed = 3 } in
  app_differential "em broadcast" ~procs:3 (fun spawn ->
      Em.launch ~spawn ~procs:3 em_params);
  app_differential "em multicast" ~procs:3
    ~multicast:(Em.subscriptions ~procs:3)
    (fun spawn -> Em.launch ~spawn ~procs:3 em_params);
  let m = Sparse.generate ~seed:5 ~n:6 ~density:0.4 in
  app_differential "cholesky locks (lazy)" ~procs:3 (fun spawn ->
      Cholesky.launch ~spawn ~procs:3 ~variant:Cholesky.Lock_based m);
  app_differential "cholesky locks (demand)" ~procs:3 ~propagation:Config.Demand
    (fun spawn -> Cholesky.launch ~spawn ~procs:3 ~variant:Cholesky.Lock_based m);
  app_differential "cholesky counters" ~procs:3 (fun spawn ->
      Cholesky.launch ~spawn ~procs:3 ~variant:Cholesky.Counter_based m);
  let pipe = { Pipeline.items = 8; slots = 2; work = 0.5 } in
  app_differential "pipeline awaits" ~procs:3 (fun spawn ->
      Pipeline.launch ~spawn ~procs:3 ~impl:Pipeline.Await_based pipe)

(* ------------------------------------------------------------------ *)
(* Update batching                                                     *)
(* ------------------------------------------------------------------ *)

let update_seq_gen =
  QCheck.Gen.(
    int_range 2 5 >>= fun procs ->
    int_range 0 (procs - 1) >>= fun writer ->
    int_range 1 10 >>= fun start ->
    int_range 1 6 >>= fun len ->
    list_size (return len) (list_size (return procs) (int_bound 8)) >>= fun depss ->
    list_size (return len) (triple (int_bound 3) (int_bound 50) bool)
    >>= fun metas ->
    return
      (List.mapi
         (fun k (deps, (locn, num, is_dec)) ->
           let dep = Array.of_list deps in
           dep.(writer) <- start + k - 1;
           {
             Protocol.writer;
             useq = start + k;
             dep;
             loc = "l" ^ string_of_int locn;
             numeric = num;
             tag = (if is_dec then 0 else k + 1);
             is_dec;
           })
         (List.combine depss metas)))

let batch_roundtrip =
  QCheck.Test.make ~name:"encode_batch/decode_batch roundtrip" ~count:300
    (QCheck.make update_seq_gen) (fun us ->
      Protocol.decode_batch (Protocol.encode_batch us) = us)

let test_batch_encoding_directed () =
  Alcotest.check_raises "empty batch"
    (Invalid_argument "Protocol.encode_batch: empty batch") (fun () ->
      ignore (Protocol.encode_batch []));
  let u ~writer ~useq ~dep =
    { Protocol.writer; useq; dep; loc = "x"; numeric = 1; tag = useq; is_dec = false }
  in
  Alcotest.check_raises "mixed writers"
    (Invalid_argument "Protocol.encode_batch: mixed writers") (fun () ->
      ignore
        (Protocol.encode_batch
           [ u ~writer:0 ~useq:1 ~dep:[| 0; 0 |]; u ~writer:1 ~useq:2 ~dep:[| 0; 1 |] ]));
  Alcotest.check_raises "useq gap"
    (Invalid_argument "Protocol.encode_batch: non-consecutive useq") (fun () ->
      ignore
        (Protocol.encode_batch
           [ u ~writer:0 ~useq:1 ~dep:[| 0; 0 |]; u ~writer:0 ~useq:3 ~dep:[| 2; 0 |] ]));
  (* three updates whose clocks change by one entry between neighbours:
     two transmitted delta entries in total, the writer's own entry never
     transmitted *)
  let b =
    Protocol.encode_batch
      [
        u ~writer:0 ~useq:4 ~dep:[| 3; 1; 0 |];
        u ~writer:0 ~useq:5 ~dep:[| 4; 2; 0 |];
        u ~writer:0 ~useq:6 ~dep:[| 5; 2; 7 |];
      ]
  in
  check_int "length" 3 (Protocol.batch_length b);
  check_int "delta entries" 2 (Protocol.batch_delta_entries b)

let write_heavy_program procs rt =
  for i = 0 to procs - 1 do
    Runtime.spawn_process rt i (fun p ->
        let mine = Printf.sprintf "w%d" i in
        for k = 1 to 20 do
          Runtime.write p mine k
        done;
        Runtime.barrier p;
        for j = 0 to procs - 1 do
          ignore (Runtime.read p (Printf.sprintf "w%d" j))
        done;
        Runtime.barrier p)
  done

let run_write_heavy ~delivery ~batch_max () =
  let procs = 3 in
  let engine = Engine.create () in
  let cfg =
    {
      (Config.default ~procs) with
      record = true;
      delivery;
      batch_max;
      batch_window = 2.0;
    }
  in
  let latency = Latency.uniform (Rng.make 5) ~lo:10. ~hi:60. in
  let rt = Runtime.create engine ~latency cfg in
  write_heavy_program procs rt;
  ignore (Runtime.run rt);
  rt

let test_batching_preserves_semantics () =
  let rt1 = run_write_heavy ~delivery:Config.Fast ~batch_max:1 () in
  let rt8 = run_write_heavy ~delivery:Config.Fast ~batch_max:8 () in
  let rt8r = run_write_heavy ~delivery:Config.Reference ~batch_max:8 () in
  check_histories "batched engines agree" (Runtime.history rt8)
    (Runtime.history rt8r);
  for proc = 0 to 2 do
    for j = 0 to 2 do
      let loc = Printf.sprintf "w%d" j in
      check_int
        (Printf.sprintf "final %s at %d" loc proc)
        (Runtime.peek rt1 ~proc loc)
        (Runtime.peek rt8 ~proc loc)
    done
  done;
  check "unbatched run mixed consistent" true
    (Mixed.is_mixed_consistent (Runtime.history rt1));
  check "batched run mixed consistent" true
    (Mixed.is_mixed_consistent (Runtime.history rt8));
  let msgs rt = Network.messages_sent (Runtime.network rt) in
  let bytes rt = Network.bytes_sent (Runtime.network rt) in
  check "batching sends fewer messages" true (msgs rt8 < msgs rt1);
  check "batching sends fewer bytes" true (bytes rt8 < bytes rt1)

let test_batch_window_flush () =
  (* no synchronization ever forces a flush here: only the window timer
     can get the buffered write onto the wire *)
  let engine = Engine.create () in
  let cfg = { (Config.default ~procs:2) with batch_max = 64; batch_window = 5.0 } in
  let rt = Runtime.create engine cfg in
  Runtime.spawn_process rt 0 (fun p -> Runtime.write p "x" 7);
  Runtime.spawn_process rt 1 (fun p -> Runtime.await p "x" 7);
  ignore (Runtime.run rt);
  check_int "delivered by window flush" 7 (Runtime.peek rt ~proc:1 "x")

let () =
  let qt = QCheck_alcotest.to_alcotest in
  Alcotest.run "delivery"
    [
      ( "differential",
        [
          Alcotest.test_case "replica stream equivalence" `Quick
            test_replica_stream_differential;
          Alcotest.test_case "random workloads, all modes" `Quick
            test_random_workloads_differential;
          Alcotest.test_case "multicast routing" `Quick test_multicast_differential;
          Alcotest.test_case "section-5 applications" `Quick test_apps_differential;
        ] );
      ( "batching",
        [
          qt batch_roundtrip;
          Alcotest.test_case "encoding directed" `Quick test_batch_encoding_directed;
          Alcotest.test_case "semantics preserved" `Quick
            test_batching_preserves_semantics;
          Alcotest.test_case "window flush" `Quick test_batch_window_flush;
        ] );
    ]
