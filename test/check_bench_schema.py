#!/usr/bin/env python3
"""Guard the BENCH_CORE.json schema produced by observe=false bench runs.

The observability layer must not change the shape of the core benchmark
artifact: a run of the seed experiment set
(``--exp delivery --exp online --exp static --exp lattice``)
has to emit exactly the key paths recorded in ``bench_core_schema.txt``.
Array elements are collapsed to ``[]`` so varying row counts (quick vs
full sizes) do not affect the schema.

Usage:
    check_bench_schema.py BENCH_CORE.json [schema.txt]

With one argument the schema file next to this script is used. Exits 0
on an exact match, 1 with a path-level diff otherwise. Regenerate after
an intentional schema change with:
    check_bench_schema.py --regen BENCH_CORE.json [schema.txt]
"""

import json
import os
import sys


def key_paths(value, prefix=""):
    """Yield every key path in *value*, arrays collapsed to []."""
    if isinstance(value, dict):
        if not value:
            yield prefix + "{}"
        for k, v in value.items():
            yield from key_paths(v, f"{prefix}.{k}" if prefix else k)
    elif isinstance(value, list):
        if not value:
            yield prefix + "[]"
        for v in value:
            yield from key_paths(v, prefix + "[]")
    else:
        yield f"{prefix}:{type(value).__name__}"


def schema_of(path):
    with open(path) as fh:
        doc = json.load(fh)
    return sorted(set(key_paths(doc)))


def main(argv):
    regen = "--regen" in argv
    argv = [a for a in argv if a != "--regen"]
    if not 1 <= len(argv) <= 2:
        sys.exit(__doc__)
    bench = argv[0]
    schema_file = (
        argv[1]
        if len(argv) == 2
        else os.path.join(os.path.dirname(os.path.abspath(__file__)),
                          "bench_core_schema.txt")
    )
    got = schema_of(bench)
    if regen:
        with open(schema_file, "w") as fh:
            fh.write("\n".join(got) + "\n")
        print(f"wrote {len(got)} key paths to {schema_file}")
        return 0
    with open(schema_file) as fh:
        want = [line.strip() for line in fh if line.strip()]
    missing = sorted(set(want) - set(got))
    extra = sorted(set(got) - set(want))
    if not missing and not extra:
        print(f"BENCH schema OK: {len(got)} key paths match {schema_file}")
        return 0
    for p in missing:
        print(f"missing: {p}", file=sys.stderr)
    for p in extra:
        print(f"extra:   {p}", file=sys.stderr)
    print(
        f"BENCH schema drift: {len(missing)} missing, {len(extra)} extra "
        f"key paths (vs {schema_file})",
        file=sys.stderr,
    )
    return 1


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
