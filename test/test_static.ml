(* Tests of the Mc_static symbolic analyzer (ISSUE 6):

   - app expectations: the Section-5 models get the verdicts the paper
     assigns them, at every parameter valuation, with zero S001 races;
   - differential containment against the dynamic pipeline on the app
     models at two parameter settings;
   - QCheck: random well-formed IR programs, checked statically and
     dynamically — (a) every dynamic race has a static counterpart,
     (b) inferred labels are never weaker than the advisor's
     recommendation, (c) proved-SC programs are never observed
     inconsistent by the online checker. *)

module P = Mc_static.Pir
module Sum = Mc_static.Summary
module Sr = Mc_static.Srace
module Cls = Mc_static.Classify
module St = Mc_static.Static
module Cz = Mc_static.Concretize
module Models = Mc_apps.Static_models
module An = Mc_analysis.Analysis
module Adv = Mc_analysis.Advisor
module Race = Mc_analysis.Race
module Diag = Mc_analysis.Diag

let static_strength = Cls.strength

(* ------------------------------------------------------------------ *)
(* App expectations                                                    *)
(* ------------------------------------------------------------------ *)

let models () =
  [
    (Models.solver_barrier, Cls.Corollary2);
    (Models.solver_handshake ~labels:Models.Hs_causal (), Cls.Theorem1);
    (Models.solver_handshake ~labels:Models.Hs_group (), Cls.Theorem1);
    (Models.em_field, Cls.Corollary2);
    (Models.cholesky, Cls.Corollary1);
  ]

let test_verdicts () =
  List.iter
    (fun (prog, expected) ->
      let rep = St.analyze prog in
      Alcotest.(check string)
        (prog.P.name ^ " verdict")
        (Cls.verdict_to_string expected)
        (Cls.verdict_to_string rep.St.verdict))
    (models ());
  let rep = St.analyze (Models.solver_handshake ~labels:Models.Hs_pram ()) in
  (match rep.St.verdict with
  | Cls.Unproved _ -> ()
  | v ->
    Alcotest.failf "under-labelled handshake solver proved SC (%s)"
      (Cls.verdict_to_string v));
  Alcotest.(check bool)
    "under-labelling is an S006, not a race" true
    (rep.St.srace.Sr.races = []
    && List.exists (fun d -> d.Diag.rule = "S006") rep.St.diags)

let test_no_static_races () =
  List.iter
    (fun (prog, _) ->
      let rep = St.analyze prog in
      Alcotest.(check int)
        (prog.P.name ^ " S001 count")
        0
        (List.length rep.St.srace.Sr.races);
      Alcotest.(check bool) (prog.P.name ^ " has no errors") false
        (St.has_errors rep))
    (models ())

(* the group-handshake solver's worker reads are exactly the minimal
   group {coordinator, self}; the coordinator's own reads need only
   PRAM because every handshake edge is incident to it *)
let test_group_inference () =
  let rep = St.analyze (Models.solver_handshake ~labels:Models.Hs_group ()) in
  let worker_x =
    List.filter
      (fun (rr : Cls.read_report) ->
        rr.Cls.racc.Sum.role = "worker" && rr.Cls.racc.Sum.loc.P.base = "x")
      rep.St.reads
  in
  Alcotest.(check bool) "worker x reads found" true (worker_x <> []);
  List.iter
    (fun (rr : Cls.read_report) ->
      Alcotest.(check int) "worker x inferred strength is group" 1
        (static_strength rr.Cls.inferred);
      Alcotest.(check bool) "declared = inferred as term sets" true
        (Cls.label_geq ~declared:rr.Cls.declared ~inferred:rr.Cls.inferred
        && Cls.label_geq ~declared:rr.Cls.inferred ~inferred:rr.Cls.declared))
    worker_x;
  let coord_reads =
    List.filter
      (fun (rr : Cls.read_report) -> rr.Cls.racc.Sum.role = "coord")
      rep.St.reads
  in
  Alcotest.(check bool) "coord reads found" true (coord_reads <> []);
  List.iter
    (fun (rr : Cls.read_report) ->
      Alcotest.(check int)
        ("coord read " ^ rr.Cls.racc.Sum.site ^ " inferred PRAM")
        0
        (static_strength rr.Cls.inferred))
    coord_reads

let test_cholesky_gate () =
  let rep = St.analyze Models.cholesky in
  Alcotest.(check bool) "await relies on the S007 gate witness" true
    (rep.St.srace.Sr.gate_sites <> []);
  Alcotest.(check bool) "S007 diagnostic present" true
    (List.exists (fun d -> d.Diag.rule = "S007") rep.St.diags);
  Alcotest.(check int) "cholesky warnings" 0 (St.count Diag.Warning rep)

let test_json_shape () =
  List.iter
    (fun (prog, _) ->
      let js = St.to_json (St.analyze prog) in
      let has needle =
        let nl = String.length needle and jl = String.length js in
        let rec go i = i + nl <= jl && (String.sub js i nl = needle || go (i + 1)) in
        go 0
      in
      Alcotest.(check bool) (prog.P.name ^ " json keys") true
        (has "\"program\"" && has "\"verdict\"" && has "\"reads\""
        && has "\"diagnostics\""))
    (models ())

(* the optional site field must not disturb pre-existing diagnostics *)
let test_diag_site () =
  let without = Diag.make ~rule:"R001" ~severity:Diag.Error "m" in
  let with_site = Diag.make ~rule:"R001" ~severity:Diag.Error ~site:"a/b" "m" in
  let render d = Format.asprintf "%a" Diag.pp d in
  Alcotest.(check bool) "no site, no @" false
    (String.contains (render without) '@');
  Alcotest.(check bool) "site rendered" true
    (String.contains (render with_site) '@')

(* ------------------------------------------------------------------ *)
(* Differential containment                                            *)
(* ------------------------------------------------------------------ *)

let sorted_pair a b = if a <= b then (a, b) else (b, a)

(* (a) every dynamic R001 maps, via site paths, to a static S001 pair *)
let check_race_containment name (rep : St.report) run (dyn : An.report) =
  let static_sites =
    List.map
      (fun (p : Sr.pair) -> sorted_pair p.Sr.pa.Sum.site p.Sr.pb.Sum.site)
      rep.St.srace.Sr.races
  in
  List.iter
    (fun (r : Race.race) ->
      let site id =
        match Cz.site_of run id with
        | Some s -> s
        | None -> Alcotest.failf "%s: op %d has no site" name id
      in
      let pair = sorted_pair (site r.Race.first) (site r.Race.second) in
      if not (List.mem pair static_sites) then
        Alcotest.failf "%s: dynamic race %s <-> %s not reported statically"
          name (fst pair) (snd pair))
    dyn.An.races.Race.races

(* (b) a static label is never weaker than the advisor's schedule-
   dependent recommendation for the same read site *)
let check_label_containment name (rep : St.report) run (dyn : An.report) =
  let site_label =
    List.map
      (fun (rr : Cls.read_report) -> (rr.Cls.racc.Sum.site, rr.Cls.inferred))
      rep.St.reads
  in
  List.iter
    (fun (a : Adv.advice) ->
      match Cz.site_of run a.Adv.read_id with
      | None -> ()
      | Some site -> (
        match (List.assoc_opt site site_label, a.Adv.recommended) with
        | Some inferred, Some rec_ ->
          if static_strength inferred < Adv.strength rec_ then
            Alcotest.failf "%s: read %s inferred %s below recommended %s" name
              site
              (P.label_to_string inferred)
              (Adv.label_to_string rec_)
        | _ -> ()))
    dyn.An.advice

(* (c) a proved program is never caught inconsistent while running *)
let check_online_consistent name (rep : St.report) run =
  match (rep.St.verdict, run.Cz.online) with
  | Cls.Unproved _, _ | _, None -> ()
  | _, Some o ->
    Alcotest.(check bool)
      (name ^ " proved SC and online-consistent")
      true
      (Mc_consistency.Online.is_consistent o)

let differential name prog params =
  let rep = St.analyze prog in
  let run = Cz.run ~check_online:true ~params prog in
  let dyn = An.analyze run.Cz.history in
  check_race_containment name rep run dyn;
  check_label_containment name rep run dyn;
  check_online_consistent name rep run

let test_apps_differential () =
  List.iter
    (fun params ->
      List.iter
        (fun (prog, _) ->
          differential (prog : P.t).P.name prog params)
        (models ()))
    [ []; [ ("P", 3); ("N", 5); ("T", 2) ] ]

(* ------------------------------------------------------------------ *)
(* QCheck: random well-formed IR programs                              *)
(* ------------------------------------------------------------------ *)

(* Each element becomes one barrier-aligned segment of a two-role
   program (a [Single 0] main and a [Span 1..P-1] crew); racy elements
   plant conflicts the static detector must report at every
   concretization. No awaits: the generated programs exercise the
   phase, lock and ownership witnesses. *)
type elt =
  | E_phase_data of P.rlabel  (* crew writes its block; all read next phase *)
  | E_locked_count            (* both roles increment under one lock *)
  | E_racy_count              (* unprotected increments: static race *)
  | E_racy_scalar             (* both roles write one scalar: static race *)
  | E_compute

let is_racy = function E_racy_count | E_racy_scalar -> true | _ -> false

let elt_to_string = function
  | E_phase_data l -> "data(" ^ P.label_to_string l ^ ")"
  | E_locked_count -> "locked"
  | E_racy_count -> "racy-count"
  | E_racy_scalar -> "racy-scalar"
  | E_compute -> "compute"

let n = P.Param "N"

let sweep ?label base =
  let j = P.Var "j" in
  P.for_ "j" (P.Int 0) (P.Sub (n, P.Int 1)) [ P.read ?label (P.loc base [ j ]) ]

let segment k = function
  | E_phase_data label ->
    let base = "d" ^ string_of_int k in
    let r = P.Var "r" in
    ( [ P.bar; sweep ~label base; P.bar ],
      [
        P.for_owned "r" n [ P.write (P.loc base [ r ]) (P.Int (k + 1)) ];
        P.bar;
        sweep ~label base;
        P.bar;
      ] )
  | E_locked_count ->
    let s =
      [
        P.locked
          (P.loc0 ("l" ^ string_of_int k))
          [ P.fetch_add (P.loc0 ("c" ^ string_of_int k)) (P.Int 1) ];
        P.bar;
      ]
    in
    (s, s)
  | E_racy_count ->
    let s =
      [ P.fetch_add (P.loc0 ("u" ^ string_of_int k)) (P.Int 1); P.bar ]
    in
    (s, s)
  | E_racy_scalar ->
    let base = P.loc0 ("s" ^ string_of_int k) in
    ([ P.write base (P.Int 1); P.bar ], [ P.write base (P.Int 2); P.bar ])
  | E_compute -> ([ P.compute 0.5; P.bar ], [ P.compute 0.5; P.bar ])

let program_of_elts elts =
  let mains, crews = List.split (List.mapi segment elts) in
  {
    P.name = "qcheck";
    params = [ P.param ~min:2 "N" 6; P.param ~min:2 "P" 3 ];
    roles =
      [
        { P.rname = "main"; range = P.Single (P.Int 0); body = List.concat mains };
        {
          P.rname = "crew";
          range = P.Span { lo = P.Int 1; hi = P.Sub (P.Param "P", P.Int 1) };
          body = List.concat crews;
        };
      ];
  }

let elt_gen =
  QCheck.Gen.(
    frequency
      [
        (4, map (fun l -> E_phase_data l)
               (oneofl
                  [ P.L_pram; P.L_causal; P.L_group [ P.Int 0; P.Proc ] ]));
        (2, return E_locked_count);
        (1, return E_racy_count);
        (1, return E_racy_scalar);
        (1, return E_compute);
      ])

let elts_arb =
  QCheck.make
    ~print:(fun elts -> String.concat "; " (List.map elt_to_string elts))
    QCheck.Gen.(list_size (int_range 1 4) elt_gen)

let qcheck_differential =
  QCheck.Test.make ~name:"random IR: static contains dynamic" ~count:40
    elts_arb (fun elts ->
      let prog = program_of_elts elts in
      let rep = St.analyze prog in
      (* generator sanity: planted races are found, clean programs prove *)
      if List.exists is_racy elts then
        QCheck.assume (rep.St.srace.Sr.races <> [])
      else if rep.St.srace.Sr.races <> [] then
        QCheck.Test.fail_reportf "clean program has static races";
      List.iter
        (fun params -> differential "qcheck" prog params)
        [ []; [ ("P", 4); ("N", 4) ] ];
      true)

let qcheck_clean_proves =
  QCheck.Test.make ~name:"random IR without race seeds proves SC" ~count:40
    elts_arb (fun elts ->
      QCheck.assume (not (List.exists is_racy elts));
      let prog = program_of_elts elts in
      let rep = St.analyze prog in
      match rep.St.verdict with
      | Cls.Unproved r -> QCheck.Test.fail_reportf "unproved: %s" r
      | _ -> true)

(* ------------------------------------------------------------------ *)

let () =
  let qt = QCheck_alcotest.to_alcotest in
  Alcotest.run "static"
    [
      ( "apps",
        [
          Alcotest.test_case "verdicts" `Quick test_verdicts;
          Alcotest.test_case "no static races" `Quick test_no_static_races;
          Alcotest.test_case "group inference" `Quick test_group_inference;
          Alcotest.test_case "cholesky gate" `Quick test_cholesky_gate;
          Alcotest.test_case "json shape" `Quick test_json_shape;
          Alcotest.test_case "diag site field" `Quick test_diag_site;
        ] );
      ( "differential",
        [ Alcotest.test_case "apps, two settings" `Slow test_apps_differential ]
      );
      ("qcheck", [ qt qcheck_differential; qt qcheck_clean_proves ]);
    ]
