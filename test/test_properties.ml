(* Property-based tests of the consistency hierarchy on randomly
   generated histories:

   - causal validity implies PRAM validity (Definition 3 is weaker);
   - the group spectrum is monotone: growing the group only removes
     behaviours, with PRAM and causal as its end points (Section 3.2);
   - sequential consistency implies causal consistency;
   - Theorem 1's premises imply sequential consistency;
   - the SC search agrees with replay on its own witnesses. *)

module Op = Mc_history.Op
module History = Mc_history.History
module Recorder = Mc_history.Recorder
module Causal = Mc_consistency.Causal
module Pram = Mc_consistency.Pram
module Group = Mc_consistency.Group
module Sequential = Mc_consistency.Sequential
module Commute = Mc_consistency.Commute

(* ------------------------------------------------------------------ *)
(* Random history generation                                           *)
(* ------------------------------------------------------------------ *)

(* A compact encodable description: per process, a list of op choices.
   Writes get globally unique values (their index); reads guess a value
   among the written ones or 0, so generated histories are a healthy mix
   of consistent and inconsistent. *)

type op_choice = { is_write : bool; loc : int; guess : int; causal_label : bool }

let history_of_choices ~procs (choices : op_choice list list) =
  let rec_ = Recorder.create ~procs () in
  let next_value = ref 0 in
  let all_values = ref [ 0 ] in
  (* pre-assign write values in order so read guesses can refer to them *)
  let programs =
    List.map
      (fun per_proc ->
        List.map
          (fun c ->
            if c.is_write then begin
              incr next_value;
              all_values := !next_value :: !all_values;
              `Write (c.loc, !next_value)
            end
            else `Read (c.loc, c.guess, c.causal_label))
          per_proc)
      choices
  in
  let values = Array.of_list (List.rev !all_values) in
  List.iteri
    (fun proc prog ->
      List.iter
        (fun op ->
          match op with
          | `Write (loc, v) ->
            ignore
              (Recorder.record rec_ ~proc
                 (Op.Write { loc = "v" ^ string_of_int loc; value = v }))
          | `Read (loc, guess, causal_label) ->
            let value = values.(guess mod Array.length values) in
            let label = if causal_label then Op.Causal else Op.PRAM in
            ignore
              (Recorder.record rec_ ~proc
                 (Op.Read { loc = "v" ^ string_of_int loc; label; value })))
        prog)
    programs;
  Recorder.history rec_

let op_choice_gen =
  QCheck.Gen.(
    map4
      (fun is_write loc guess causal_label -> { is_write; loc; guess; causal_label })
      bool (int_bound 2) (int_bound 11) bool)

let choices_gen ~procs ~max_ops =
  QCheck.Gen.(list_size (return procs) (list_size (int_bound max_ops) op_choice_gen))

let history_arb ~procs ~max_ops =
  QCheck.make
    ~print:(fun choices ->
      Format.asprintf "%a" History.pp (history_of_choices ~procs choices))
    (choices_gen ~procs ~max_ops)

(* ------------------------------------------------------------------ *)
(* Hierarchy properties                                                *)
(* ------------------------------------------------------------------ *)

(* the paper restricts attention to histories with acyclic causality
   relations; random read-value guesses can produce a read that
   reads-from a later write of its own process, which is outside the
   model - discard those *)
let acyclic h = QCheck.assume (History.causality_is_acyclic h)

let all_read_ids h =
  Array.to_list (History.ops h)
  |> List.filter_map (fun (o : Op.t) -> if Op.is_memory_read o then Some o.id else None)

let causal_implies_pram =
  QCheck.Test.make ~name:"causal-valid reads are PRAM-valid" ~count:300
    (history_arb ~procs:3 ~max_ops:5)
    (fun choices ->
      let h = history_of_choices ~procs:3 choices in
      acyclic h;
      List.for_all
        (fun read_id ->
          (not (Causal.is_causal_read h ~read_id)) || Pram.is_pram_read h ~read_id)
        (all_read_ids h))

let group_spectrum_endpoints =
  QCheck.Test.make ~name:"group {i} = PRAM verdicts, group all = causal verdicts"
    ~count:300
    (history_arb ~procs:3 ~max_ops:5)
    (fun choices ->
      let h = history_of_choices ~procs:3 choices in
      acyclic h;
      List.for_all
        (fun read_id ->
          let reader = (History.op h read_id).Op.proc in
          Group.is_group_read h ~read_id ~group:[ reader ]
          = Pram.is_pram_read h ~read_id
          && Group.is_group_read h ~read_id ~group:[ 0; 1; 2 ]
             = Causal.is_causal_read h ~read_id)
        (all_read_ids h))

let group_monotone =
  QCheck.Test.make ~name:"larger groups only reject more reads" ~count:300
    (history_arb ~procs:3 ~max_ops:5)
    (fun choices ->
      let h = history_of_choices ~procs:3 choices in
      acyclic h;
      List.for_all
        (fun read_id ->
          let reader = (History.op h read_id).Op.proc in
          let other = (reader + 1) mod 3 in
          let mid = List.sort compare [ reader; other ] in
          let small = Group.is_group_read h ~read_id ~group:[ reader ] in
          let medium = Group.is_group_read h ~read_id ~group:mid in
          let full = Group.is_group_read h ~read_id ~group:[ 0; 1; 2 ] in
          ((not medium) || small) && ((not full) || medium))
        (all_read_ids h))

let sc_implies_causal =
  QCheck.Test.make ~name:"sequentially consistent histories are causal" ~count:200
    (history_arb ~procs:2 ~max_ops:4)
    (fun choices ->
      let h = history_of_choices ~procs:2 choices in
      acyclic h;
      match Sequential.is_sequentially_consistent ~max_states:50_000 h with
      | Sequential.Consistent -> Causal.is_causal_history h
      | Sequential.Inconsistent | Sequential.Unknown -> true)

let theorem1_implies_sc =
  QCheck.Test.make ~name:"Theorem 1 premises imply sequential consistency"
    ~count:200
    (history_arb ~procs:2 ~max_ops:4)
    (fun choices ->
      let h = history_of_choices ~procs:2 choices in
      acyclic h;
      (not (Commute.theorem1_holds h))
      || Sequential.is_sequentially_consistent ~max_states:100_000 h
         <> Sequential.Inconsistent)

let witness_is_sound =
  QCheck.Test.make ~name:"SC witnesses replay and respect causality" ~count:200
    (history_arb ~procs:2 ~max_ops:4)
    (fun choices ->
      let h = history_of_choices ~procs:2 choices in
      acyclic h;
      match Sequential.witness ~max_states:50_000 h with
      | Some order, Sequential.Consistent ->
        Sequential.replay h order = Ok () && Sequential.respects_causality h order
      | None, (Sequential.Inconsistent | Sequential.Unknown) -> true
      | _ -> false)

let well_formedness_of_generated =
  QCheck.Test.make ~name:"generated histories are well-formed" ~count:300
    (history_arb ~procs:3 ~max_ops:5)
    (fun choices ->
      let h = history_of_choices ~procs:3 choices in
      acyclic h;
      History.is_well_formed h)

(* mixed consistency with per-read labels is implied by the per-level
   checks: a history whose causal-labelled reads are causal-valid and
   PRAM-labelled reads are PRAM-valid is mixed consistent by definition *)
let mixed_is_composition =
  QCheck.Test.make ~name:"Definition 4 composes the per-label rules" ~count:300
    (history_arb ~procs:3 ~max_ops:5)
    (fun choices ->
      let h = history_of_choices ~procs:3 choices in
      acyclic h;
      let expected =
        Array.for_all
          (fun (o : Op.t) ->
            match o.kind with
            | Op.Read { label = Op.Causal; _ } -> Causal.is_causal_read h ~read_id:o.id
            | Op.Read { label = Op.PRAM; _ } -> Pram.is_pram_read h ~read_id:o.id
            | _ -> true)
          (History.ops h)
      in
      Mc_consistency.Mixed.is_mixed_consistent h = expected)

let () =
  let qt = QCheck_alcotest.to_alcotest in
  Alcotest.run "properties"
    [
      ( "hierarchy",
        [
          qt causal_implies_pram;
          qt group_spectrum_endpoints;
          qt group_monotone;
          qt sc_implies_causal;
          qt theorem1_implies_sc;
          qt witness_is_sound;
          qt well_formedness_of_generated;
          qt mixed_is_composition;
        ] );
    ]
