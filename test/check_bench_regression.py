#!/usr/bin/env python3
"""Guard benchmark results against regressions.

Compares a fresh BENCH_CORE.json (e.g. the CI smoke run) against a
committed baseline. Rows are matched by their identifying key fields;
only rows present in both files are compared, so a quick-mode run is
checked against whatever subset of the full grid it shares with the
baseline.

Two kinds of bands:

* throughput metrics (higher is better): fail when the fresh value
  drops more than ``--tolerance`` (default 25%) below the baseline;
  improvements always pass.
* deterministic metrics (seeded sim results -- sim time, message and
  fetch counts): fail when they drift more than the tolerance in either
  direction. These should be bit-identical for an unchanged simulation,
  so the band only absorbs intentional re-baselining noise.

Additionally, when the baseline carries an EXP-OBS-SHARD section, its
observe=off acceptance gate (``gate_pass``) must hold: the committed
full-scale measurement is the record that observability off-mode
overhead stayed under 2%.

Usage:
    check_bench_regression.py BASELINE FRESH [--tolerance 0.25]

Exits 0 when every matched row is within bands, 1 with a per-row diff
otherwise.
"""

import json
import sys

# section -> (rows key, identity fields, metrics where higher is better)
THROUGHPUT = {
    "EXP-DELIVERY": (
        "drain",
        ("p", "depth"),
        ("fast_updates_per_s", "ref_updates_per_s"),
    ),
}

# section -> (rows key, identity fields, seeded-deterministic metrics)
DETERMINISTIC = {
    "EXP-SHARD": (
        "runs",
        ("procs", "objects", "writes", "rounds", "mode"),
        ("sim_time", "update_messages", "resident_max", "fetches"),
    ),
}


def rows_by_key(doc, section, rows_key, id_fields):
    table = {}
    for row in doc.get(section, {}).get(rows_key, []):
        try:
            key = tuple(row[f] for f in id_fields)
        except KeyError:
            continue
        table[key] = row
    return table


def check(baseline, fresh, tolerance):
    failures = []
    compared = 0

    def match(section, spec, check_row):
        nonlocal compared
        rows_key, id_fields, metrics = spec
        base_rows = rows_by_key(baseline, section, rows_key, id_fields)
        fresh_rows = rows_by_key(fresh, section, rows_key, id_fields)
        for key in sorted(set(base_rows) & set(fresh_rows), key=str):
            for metric in metrics:
                b = base_rows[key].get(metric)
                f = fresh_rows[key].get(metric)
                if not isinstance(b, (int, float)) or not isinstance(f, (int, float)):
                    continue
                compared += 1
                check_row(section, key, metric, b, f)

    def throughput(section, key, metric, b, f):
        if b > 0 and f < b * (1.0 - tolerance):
            failures.append(
                f"{section}{list(key)}.{metric}: {f:.1f} is more than "
                f"{tolerance:.0%} below baseline {b:.1f}"
            )

    def deterministic(section, key, metric, b, f):
        limit = abs(b) * tolerance
        if abs(f - b) > limit:
            failures.append(
                f"{section}{list(key)}.{metric}: {f} drifted more than "
                f"{tolerance:.0%} from baseline {b}"
            )

    for section, spec in THROUGHPUT.items():
        match(section, spec, throughput)
    for section, spec in DETERMINISTIC.items():
        match(section, spec, deterministic)

    for run in baseline.get("EXP-OBS-SHARD", {}).get("runs", []):
        if "gate_pass" in run:
            compared += 1
            if not run["gate_pass"]:
                failures.append(
                    "EXP-OBS-SHARD baseline: observe=off overhead gate failed "
                    f"(off_overhead={run.get('off_overhead')})"
                )

    return compared, failures


def main(argv):
    tolerance = 0.25
    if "--tolerance" in argv:
        i = argv.index("--tolerance")
        tolerance = float(argv[i + 1])
        del argv[i : i + 2]
    if len(argv) != 2:
        sys.exit(__doc__)
    with open(argv[0]) as fh:
        baseline = json.load(fh)
    with open(argv[1]) as fh:
        fresh = json.load(fh)
    compared, failures = check(baseline, fresh, tolerance)
    if failures:
        print(f"bench regression guard: {len(failures)} failure(s)")
        for f in failures:
            print(f"  {f}")
        return 1
    print(
        f"bench regression guard: {compared} metric(s) within "
        f"{tolerance:.0%} of baseline"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
