(* Mc_obs unit tests plus a differential check of the traced timeline
   against the simulation: histogram bucket-boundary semantics, label
   cardinality and handle identity, gauge high-water marks, ring-buffer
   wraparound and sink mirroring, Chrome-export JSON validity, and a
   runtime run where every recorded operation must produce exactly one
   span and all traced timestamps must respect engine event order. *)

module Metrics = Mc_obs.Metrics
module Trace = Mc_obs.Trace
module Engine = Mc_sim.Engine
module Runtime = Mc_dsm.Runtime
module Config = Mc_dsm.Config
module Op = Mc_history.Op
module History = Mc_history.History

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* ------------------------------------------------------------------ *)
(* Histograms                                                          *)
(* ------------------------------------------------------------------ *)

let test_histogram_buckets () =
  let reg = Metrics.Registry.create () in
  let h = Metrics.Registry.histogram reg ~buckets:[| 1.0; 2.0; 5.0 |] "h" in
  (* boundary values land in the bucket whose bound equals them *)
  List.iter (Metrics.Histogram.observe h) [ 1.0; 1.5; 2.0; 5.0; 6.0; -3.0 ];
  (match Metrics.Histogram.buckets h with
  | [ (b1, c1); (b2, c2); (b3, c3); (binf, cinf) ] ->
    check "bound 1" true (b1 = 1.0);
    (* -3.0 and 1.0: anything <= the first bound lands in bucket one *)
    check_int "cum <=1" 2 c1;
    check "bound 2" true (b2 = 2.0);
    check_int "cum <=2" 4 c2;
    check "bound 5" true (b3 = 5.0);
    check_int "cum <=5" 5 c3;
    check "last bound inf" true (binf = infinity);
    check_int "cum total" 6 cinf
  | bs -> Alcotest.failf "expected 4 buckets, got %d" (List.length bs));
  check_int "count" 6 (Metrics.Histogram.count h);
  check "sum" true (abs_float (Metrics.Histogram.sum h -. 12.5) < 1e-9);
  check "min" true (Metrics.Histogram.min h = -3.0);
  check "max" true (Metrics.Histogram.max h = 6.0);
  (* the embedded summary is the live handle, not a copy *)
  let s = Metrics.Histogram.summary h in
  check_int "summary shares count" 6 (Mc_util.Stats.Summary.count s);
  Metrics.Histogram.observe h 100.0;
  check_int "summary sees later observe" 7 (Mc_util.Stats.Summary.count s)

let test_histogram_invalid_buckets () =
  let reg = Metrics.Registry.create () in
  let raises f =
    match f () with
    | exception Invalid_argument _ -> true
    | _ -> false
  in
  check "non-increasing rejected" true
    (raises (fun () ->
         Metrics.Registry.histogram reg ~buckets:[| 2.0; 1.0 |] "bad1"));
  check "duplicate bound rejected" true
    (raises (fun () ->
         Metrics.Registry.histogram reg ~buckets:[| 1.0; 1.0 |] "bad2"));
  check "nan rejected" true
    (raises (fun () ->
         Metrics.Registry.histogram reg ~buckets:[| 1.0; nan |] "bad3"));
  (* no explicit bounds degenerates to the single implicit +inf bucket *)
  let h = Metrics.Registry.histogram reg ~buckets:[||] "inf_only" in
  Metrics.Histogram.observe h 5.0;
  check "degenerate histogram" true
    (Metrics.Histogram.buckets h = [ (infinity, 1) ])

(* ------------------------------------------------------------------ *)
(* Registry: labels, identity, type safety                             *)
(* ------------------------------------------------------------------ *)

let test_label_cardinality () =
  let reg = Metrics.Registry.create () in
  let c_read = Metrics.Registry.counter reg ~labels:[ ("op", "read") ] "ops" in
  let c_write = Metrics.Registry.counter reg ~labels:[ ("op", "write") ] "ops" in
  let c_rw =
    Metrics.Registry.counter reg
      ~labels:[ ("proc", "0"); ("op", "read") ]
      "ops"
  in
  check "distinct label sets are distinct series" true (c_read != c_write);
  check_int "three series" 3 (Metrics.Registry.series_count reg);
  (* label order must not matter: same key set -> same handle *)
  let c_rw' =
    Metrics.Registry.counter reg
      ~labels:[ ("op", "read"); ("proc", "0") ]
      "ops"
  in
  check "label order irrelevant" true (c_rw == c_rw');
  check_int "still three series" 3 (Metrics.Registry.series_count reg);
  Metrics.Counter.incr c_read;
  Metrics.Counter.add c_write 5;
  let total =
    List.fold_left
      (fun acc (_, _, c) -> acc + Metrics.Counter.get c)
      0
      (Metrics.Registry.counters reg)
  in
  check_int "counters enumerate all series" 6 total;
  (* re-registering under a different metric type is a hard error *)
  (match Metrics.Registry.gauge reg ~labels:[ ("op", "read") ] "ops" with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "type clash not detected")

let test_gauge_high_water () =
  let reg = Metrics.Registry.create () in
  let g = Metrics.Registry.gauge reg "depth" in
  Metrics.Gauge.set g 3.0;
  Metrics.Gauge.set g 10.0;
  Metrics.Gauge.set g 2.0;
  Metrics.Gauge.add g 1.0;
  check "current" true (Metrics.Gauge.get g = 3.0);
  check "high water survives decrease" true (Metrics.Gauge.high_water g = 10.0)

(* ------------------------------------------------------------------ *)
(* A minimal JSON syntax validator (no json library in the test deps)  *)
(* ------------------------------------------------------------------ *)

let json_valid (s : string) : bool =
  let n = String.length s in
  let pos = ref 0 in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') ->
      advance ();
      skip_ws ()
    | _ -> ()
  in
  let fail () = raise Exit in
  let expect c = if peek () = Some c then advance () else fail () in
  let literal word =
    String.iter (fun c -> expect c) word
  in
  let rec value () =
    skip_ws ();
    match peek () with
    | Some '{' -> obj ()
    | Some '[' -> arr ()
    | Some '"' -> string_lit ()
    | Some 't' -> literal "true"
    | Some 'f' -> literal "false"
    | Some 'n' -> literal "null"
    | Some ('-' | '0' .. '9') -> number ()
    | _ -> fail ()
  and obj () =
    expect '{';
    skip_ws ();
    if peek () = Some '}' then advance ()
    else begin
      members ();
      skip_ws ();
      expect '}'
    end
  and members () =
    skip_ws ();
    string_lit ();
    skip_ws ();
    expect ':';
    value ();
    skip_ws ();
    if peek () = Some ',' then begin
      advance ();
      members ()
    end
  and arr () =
    expect '[';
    skip_ws ();
    if peek () = Some ']' then advance ()
    else begin
      value ();
      skip_ws ();
      while peek () = Some ',' do
        advance ();
        value ();
        skip_ws ()
      done;
      expect ']'
    end
  and string_lit () =
    expect '"';
    let rec body () =
      match peek () with
      | Some '"' -> advance ()
      | Some '\\' ->
        advance ();
        (match peek () with
        | Some ('"' | '\\' | '/' | 'b' | 'f' | 'n' | 'r' | 't') ->
          advance ();
          body ()
        | Some 'u' ->
          advance ();
          for _ = 1 to 4 do
            match peek () with
            | Some ('0' .. '9' | 'a' .. 'f' | 'A' .. 'F') -> advance ()
            | _ -> fail ()
          done;
          body ()
        | _ -> fail ())
      | Some _ ->
        advance ();
        body ()
      | None -> fail ()
    in
    body ()
  and number () =
    let digits () =
      let seen = ref false in
      let rec go () =
        match peek () with
        | Some '0' .. '9' ->
          seen := true;
          advance ();
          go ()
        | _ -> ()
      in
      go ();
      if not !seen then fail ()
    in
    if peek () = Some '-' then advance ();
    digits ();
    if peek () = Some '.' then begin
      advance ();
      digits ()
    end;
    (match peek () with
    | Some ('e' | 'E') ->
      advance ();
      (match peek () with Some ('+' | '-') -> advance () | _ -> ());
      digits ()
    | _ -> ())
  in
  match
    value ();
    skip_ws ();
    !pos = n
  with
  | complete -> complete
  | exception Exit -> false

let test_json_validator_sanity () =
  check "accepts object" true (json_valid {|{"a": [1, 2.5, -3e2], "b": null}|});
  check "rejects trailing comma" false (json_valid {|{"a": 1,}|});
  check "rejects bare word" false (json_valid "hello");
  check "rejects unterminated string" false (json_valid {|{"a": "x}|})

let test_registry_json () =
  let reg = Metrics.Registry.create () in
  let c = Metrics.Registry.counter reg ~labels:[ ("op", "read") ] "ops" in
  Metrics.Counter.incr c;
  let h = Metrics.Registry.histogram reg "wait" in
  Metrics.Histogram.observe h 3.5;
  Metrics.Registry.gauge_fn reg "cb" (fun () -> 42.0);
  let g = Metrics.Registry.gauge reg "inf_gauge" in
  Metrics.Gauge.set g infinity;
  (* non-finite values must serialize as null, not bare inf *)
  check "registry json valid" true (json_valid (Metrics.Registry.to_json reg))

(* ------------------------------------------------------------------ *)
(* Trace ring buffer and sinks                                         *)
(* ------------------------------------------------------------------ *)

let test_ring_wraparound () =
  let t = Trace.create ~capacity:8 () in
  let mirrored = ref 0 in
  let closed = ref 0 in
  Trace.add_sink t
    { Trace.on_event = (fun _ -> incr mirrored); on_close = (fun () -> incr closed) };
  for i = 1 to 20 do
    Trace.instant t ~tid:0 ~ts:(float_of_int i) (Printf.sprintf "e%d" i)
  done;
  check_int "total emitted" 20 (Trace.event_count t);
  check_int "dropped" 12 (Trace.dropped t);
  let kept = Trace.events t in
  check_int "ring holds capacity" 8 (List.length kept);
  (* oldest-first: events 13..20 survive, in order *)
  List.iteri
    (fun i ev ->
      match ev with
      | Trace.Instant { name; ts; _ } ->
        check ("kept " ^ name) true
          (name = Printf.sprintf "e%d" (13 + i) && ts = float_of_int (13 + i))
      | _ -> Alcotest.fail "unexpected event kind")
    kept;
  (* sinks see every event, not just the ring survivors *)
  check_int "sink mirrored all" 20 !mirrored;
  Trace.close t;
  Trace.close t;
  check_int "on_close once" 1 !closed

let test_ring_under_capacity () =
  let t = Trace.create ~capacity:8 () in
  Trace.span t ~tid:1 ~ts:10.0 ~dur:2.0 "op";
  Trace.flow t ~id:7 ~src:0 ~dst:1 ~ts_send:1.0 ~ts_recv:4.0 "msg";
  check_int "no drops" 0 (Trace.dropped t);
  check_int "two events" 2 (List.length (Trace.events t));
  check_int "one span" 1 (Trace.span_count t)

let test_chrome_export () =
  let t = Trace.create ~capacity:16 () in
  Trace.span t ~tid:0 ~ts:1.0 ~dur:2.0 ~args:[ ("loc", "x") ] "read";
  Trace.instant t ~tid:1 ~ts:3.0 "sync_epoch";
  Trace.flow t ~id:1 ~src:0 ~dst:1 ~ts_send:1.0 ~ts_recv:5.0 "update";
  Trace.counter t ~tid:0 ~ts:6.0 "depth" 4.0;
  let body = Trace.to_chrome t in
  check "chrome json valid" true (json_valid body);
  (* a Flow renders as a start and an end arc: two newline-joined
     objects, each individually valid JSON *)
  let flow_json =
    Trace.event_to_chrome_json
      (Trace.Flow
         {
           id = 1;
           name = "m";
           cat = "msg";
           src = 0;
           dst = 1;
           ts_send = 1.0;
           ts_recv = 2.0;
           args = [];
         })
  in
  (match String.split_on_char '\n' flow_json with
  | [ s_part; f_part ] ->
    check "flow start arc valid" true (json_valid s_part);
    check "flow finish arc valid" true (json_valid f_part)
  | parts -> Alcotest.failf "flow rendered as %d objects" (List.length parts));
  (* non-flow events render as a single object *)
  List.iter
    (fun ev ->
      match ev with
      | Trace.Flow _ -> ()
      | ev -> check "event json valid" true (json_valid (Trace.event_to_chrome_json ev)))
    (Trace.events t)

(* ------------------------------------------------------------------ *)
(* Differential: traced timeline vs engine event order                 *)
(* ------------------------------------------------------------------ *)

(* every recorded operation produces exactly one Complete span; spans,
   instants and flow send-points are emitted in simulation order, so the
   emission timestamp must be non-decreasing along the buffer and never
   exceed the final virtual time *)
let observed_workload ~procs (rt : Runtime.t) =
  for i = 0 to procs - 1 do
    Runtime.spawn_process rt i (fun p ->
        for k = 1 to 3 do
          Runtime.write p (Printf.sprintf "w:%d:%d" i k) ((i * 100) + k)
        done;
        Runtime.barrier p;
        for j = 0 to procs - 1 do
          ignore (Runtime.read p ~label:Op.PRAM (Printf.sprintf "w:%d:3" j))
        done;
        Runtime.write_lock p "l";
        let v = Runtime.read p "acc" in
        Runtime.write p "acc" (v + 1);
        Runtime.write_unlock p "l";
        Runtime.barrier p)
  done

let test_span_op_parity_and_order () =
  let procs = 3 in
  let tracer = Trace.create ~capacity:65536 () in
  let engine = Engine.create () in
  let cfg =
    {
      (Config.default ~procs) with
      record = true;
      observe = true;
      tracer = Some tracer;
    }
  in
  let rt = Runtime.create engine cfg in
  observed_workload ~procs rt;
  let final = Runtime.run rt in
  let ops = History.length (Runtime.history rt) in
  check "workload recorded something" true (ops > 0);
  check_int "one span per recorded op" ops (Trace.span_count tracer);
  check_int "nothing dropped" 0 (Trace.dropped tracer);
  (* Events are emitted as the engine executes them, so engine-clocked
     timestamps (span completions, instants, counters) must be
     non-decreasing along the buffer. A flow's [ts_send] is the network
     departure time — at or after the engine clock at emission — so it
     is bounded below by the running engine watermark but does not
     advance it. *)
  let eps = 1e-9 in
  let prev = ref neg_infinity in
  List.iter
    (fun ev ->
      match ev with
      | Trace.Complete { ts; dur; _ } ->
        let at = ts +. dur in
        check "span completion follows engine order" true (at >= !prev -. eps);
        prev := at;
        check "span within run" true (ts >= 0.0 && at <= final +. eps);
        check "non-negative duration" true (dur >= 0.0)
      | Trace.Instant { ts; _ } | Trace.Counter { ts; _ } ->
        check "instant follows engine order" true (ts >= !prev -. eps);
        prev := ts
      | Trace.Flow { ts_send; ts_recv; src; dst; _ } ->
        check "flow departs no earlier than engine clock" true
          (ts_send >= !prev -. eps);
        check "flow arrow forward in time" true (ts_recv >= ts_send -. eps);
        check "flow endpoints are procs" true
          (src >= 0 && src < procs && dst >= 0 && dst < procs && src <> dst))
    (Trace.events tracer);
  (* the full Chrome artifact for this run parses *)
  check "run trace chrome-valid" true (json_valid (Trace.to_chrome tracer));
  (* registry-backed compatibility API still behaves like the seed's *)
  let counts = Runtime.op_counts rt in
  let count k = try List.assoc k counts with Not_found -> 0 in
  check_int "write count" (procs * 4) (count "write");
  check_int "read count" (procs * (procs + 1)) (count "read");
  check_int "barrier count" (procs * 2) (count "barrier");
  let summaries = Runtime.wait_summaries rt in
  check "barrier waits summarized" true
    (match List.assoc_opt "barrier" summaries with
    | Some s -> Mc_util.Stats.Summary.count s = procs * 2
    | None -> false);
  (* op totals agree between the compat API and the registry *)
  let total_ops = List.fold_left (fun a (_, c) -> a + c) 0 counts in
  check_int "registry/compat agreement" ops total_ops

let test_observation_is_passive () =
  (* attaching metrics and a tracer must not perturb virtual time *)
  let run ~observe ~tracer =
    let engine = Engine.create () in
    let cfg = { (Config.default ~procs:3) with observe; tracer } in
    let rt = Runtime.create engine cfg in
    observed_workload ~procs:3 rt;
    let t = Runtime.run rt in
    (t, Runtime.peek rt ~proc:0 "acc")
  in
  let t_off, acc_off = run ~observe:false ~tracer:None in
  let t_on, acc_on =
    run ~observe:true ~tracer:(Some (Trace.create ~capacity:1024 ()))
  in
  check "same final time" true (t_off = t_on);
  check_int "same result" acc_off acc_on

(* ------------------------------------------------------------------ *)
(* Shard-aware flight recorder and postmortem report                   *)
(* ------------------------------------------------------------------ *)

module Report = Mc_obs.Report
module Placement = Mc_placement.Placement
module Solver = Mc_apps.Linear_solver
module Api = Mc_dsm.Api

(* the sharded series must be labelled per shard or per node, never per
   operation: at 1000 procs x 120 shards the registry stays linear in
   (procs + shards) and does not grow with the op count *)
let test_shard_label_cardinality () =
  let procs = 1000 and shards = 120 in
  let series ~writes =
    let engine = Engine.create () in
    let pl = Placement.create ~shards ~policy:Placement.Hash () in
    for node = 0 to procs - 1 do
      Placement.subscribe pl ~node ~shard:(node mod shards)
    done;
    (* the writer subscribes every shard so all of them carry traffic *)
    for shard = 0 to shards - 1 do
      Placement.subscribe pl ~node:0 ~shard
    done;
    let cfg =
      { (Config.default ~procs) with observe = true; placement = Some pl }
    in
    let rt = Runtime.create engine cfg in
    Runtime.spawn_process rt 0 (fun p ->
        for i = 1 to writes do
          Runtime.write p (Printf.sprintf "k:%d" (i mod 300)) i
        done);
    ignore (Runtime.run rt);
    Metrics.Registry.series_count (Runtime.metrics rt)
  in
  (* both runs touch the same 300 locations (hence the same shards, as
     the per-shard histograms are created on first touch); only the op
     count differs — by 4x *)
  let small = series ~writes:400 in
  let large = series ~writes:1600 in
  check_int "series count independent of op count" small large;
  check "series count linear in procs + shards" true
    (small <= 8 * (procs + shards))

(* the live [mcdsm report] pipeline: sharded solver with metrics,
   tracer, recorder and online checker all attached *)
let sharded_solver_run ~seed =
  let n = 8 and procs = 3 and shards = 4 in
  let tracer = Trace.create ~capacity:65536 () in
  let engine = Engine.create () in
  let pl =
    Placement.create ~shards ~policy:(Placement.Range { objects = n }) ()
  in
  Solver.subscribe_shards pl ~procs ~n;
  let cfg =
    {
      (Config.default ~procs) with
      record = true;
      check_online = true;
      observe = true;
      placement = Some pl;
      tracer = Some tracer;
    }
  in
  let rt = Runtime.create engine cfg in
  let problem = Solver.Problem.generate ~seed ~n in
  ignore
    (Solver.launch ~spawn:(Api.spawn rt) ~procs ~variant:Solver.Barrier_pram
       problem);
  ignore (Runtime.run rt);
  (rt, tracer)

let live_input (rt, tracer) =
  {
    Report.events = Trace.events tracer;
    metrics = Metrics.Registry.snapshot (Runtime.metrics rt);
    violations = Some [];
    meta = [ ("mode", "live") ];
  }

let test_report_json_deterministic () =
  let j1 = Report.to_json (Report.analyze (live_input (sharded_solver_run ~seed:42))) in
  let j2 = Report.to_json (Report.analyze (live_input (sharded_solver_run ~seed:42))) in
  check "report json valid" true (json_valid j1);
  check "byte-identical across two seeded runs" true (String.equal j1 j2);
  (* the report actually carries shard flight data *)
  let r = Report.analyze (live_input (sharded_solver_run ~seed:42)) in
  check "has shard rows" true (r.Report.r_shards <> []);
  check "some shard has visibility stats" true
    (List.exists (fun row -> row.Report.sr_vis <> None) r.Report.r_shards);
  check "some shard has fetch stats" true
    (List.exists (fun row -> row.Report.sr_fetches > 0) r.Report.r_shards)

(* analyzing the live event buffer and re-parsing the exported trace
   file must agree: counts exactly, latency stats within the float
   precision of the export format (9 significant digits) *)
let test_report_live_file_parity () =
  let ((rt, tracer) as run) = sharded_solver_run ~seed:42 in
  let live = Report.analyze (live_input run) in
  let jsonl =
    String.concat "\n"
      (List.map Trace.event_to_chrome_json (Trace.events tracer))
  in
  let events = Report.parse_trace jsonl in
  let metrics =
    Report.parse_metrics (Metrics.Registry.to_json (Runtime.metrics rt))
  in
  let filed =
    Report.analyze { Report.events; metrics; violations = None; meta = [] }
  in
  check_int "events round-trip" live.Report.r_events filed.Report.r_events;
  check_int "op spans" live.Report.r_op_spans filed.Report.r_op_spans;
  check_int "flows" live.Report.r_flows filed.Report.r_flows;
  check_int "instants" live.Report.r_instants filed.Report.r_instants;
  check_int "shard rows" (List.length live.Report.r_shards)
    (List.length filed.Report.r_shards);
  let close a b = Float.abs (a -. b) < 0.11 in
  let stats_close a b =
    match (a, b) with
    | None, None -> true
    | Some (x : Report.stat), Some (y : Report.stat) ->
      x.Report.n = y.Report.n
      && close x.Report.mean y.Report.mean
      && close x.Report.p50 y.Report.p50
      && close x.Report.p95 y.Report.p95
      && close x.Report.max y.Report.max
    | _ -> false
  in
  List.iter2
    (fun (a : Report.shard_row) (b : Report.shard_row) ->
      check_int "shard id" a.Report.sr_shard b.Report.sr_shard;
      check_int "updates" a.Report.sr_updates b.Report.sr_updates;
      check_int "hops" a.Report.sr_hops b.Report.sr_hops;
      check_int "applies" a.Report.sr_applies b.Report.sr_applies;
      check_int "in flight" a.Report.sr_in_flight b.Report.sr_in_flight;
      check_int "fetches" a.Report.sr_fetches b.Report.sr_fetches;
      check "visibility stats agree" true
        (stats_close a.Report.sr_vis b.Report.sr_vis);
      check "full-visibility stats agree" true
        (stats_close a.Report.sr_vis_full b.Report.sr_vis_full);
      check "fetch stats agree" true
        (stats_close a.Report.sr_fetch b.Report.sr_fetch))
    live.Report.r_shards filed.Report.r_shards;
  check "hot keys agree" true (live.Report.r_hot_keys = filed.Report.r_hot_keys);
  check "placement counters agree" true
    (live.Report.r_placement = filed.Report.r_placement);
  (* the whole-buffer chrome form parses to the same event set *)
  let chrome_events = Report.parse_trace (Trace.to_chrome tracer) in
  check_int "chrome form event count" (List.length events)
    (List.length chrome_events)

let () =
  Alcotest.run "obs"
    [
      ( "metrics",
        [
          Alcotest.test_case "histogram buckets" `Quick test_histogram_buckets;
          Alcotest.test_case "invalid buckets" `Quick
            test_histogram_invalid_buckets;
          Alcotest.test_case "label cardinality" `Quick test_label_cardinality;
          Alcotest.test_case "gauge high water" `Quick test_gauge_high_water;
          Alcotest.test_case "json validator sanity" `Quick
            test_json_validator_sanity;
          Alcotest.test_case "registry json" `Quick test_registry_json;
        ] );
      ( "trace",
        [
          Alcotest.test_case "ring wraparound" `Quick test_ring_wraparound;
          Alcotest.test_case "under capacity" `Quick test_ring_under_capacity;
          Alcotest.test_case "chrome export" `Quick test_chrome_export;
        ] );
      ( "differential",
        [
          Alcotest.test_case "span/op parity and order" `Quick
            test_span_op_parity_and_order;
          Alcotest.test_case "observation is passive" `Quick
            test_observation_is_passive;
        ] );
      ( "report",
        [
          Alcotest.test_case "shard label cardinality" `Quick
            test_shard_label_cardinality;
          Alcotest.test_case "report json deterministic" `Quick
            test_report_json_deterministic;
          Alcotest.test_case "live/file mode parity" `Quick
            test_report_live_file_parity;
        ] );
    ]
