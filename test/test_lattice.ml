(* Tests of the axiom-parameterized consistency lattice (ISSUE 7):

   - algebra: [leq] is a preorder on the model pool with [Session []]
     at the bottom and [Linearizable] at the top; [meet]/[join] bound
     their arguments; [Group []] collapses to [PRAM]; [Mixed] is the
     interval [PRAM, Causal]; names round-trip through
     [of_string]/[to_string]; the documentation [ladder] never lists a
     strictly stronger model before a weaker one;
   - differential: on random histories with locks, barriers and all
     three read labels, [Lattice.verdict_at] equals [Read_rule.check]
     over the seed [History] relations for every memory read, and the
     [Mixed] model point reproduces [Mixed.failures] exactly;
   - QCheck monotonicity: [leq m1 m2] implies the failing read-id set
     of [m1] is contained in that of [m2], across the whole pool
     including the witness-based SC/linearizable points;
   - online: for every streamable point the uniform online checker
     reproduces [Lattice.failures] verdict-for-verdict;
   - Section-5 apps: the same differential + monotonicity sweep on
     recorded solver/EM/Cholesky executions;
   - static: [Static.analyze] infers weakest models at or below the
     paper's label assignment for every [Static_models] app, and the
     per-axiom proof trace reconstructs the inferred model. *)

module Op = Mc_history.Op
module History = Mc_history.History
module Dsl = Mc_history.Dsl
module Lattice = Mc_consistency.Lattice
module Read_rule = Mc_consistency.Read_rule
module Online = Mc_consistency.Online
module Mixed = Mc_consistency.Mixed

let check = Alcotest.(check bool)

(* ------------------------------------------------------------------ *)
(* Random histories (the test_online generator, trimmed)               *)
(* ------------------------------------------------------------------ *)

type simple = {
  s_is_write : bool;
  s_loc : int;
  s_guess : int;
  s_label : int; (* 0 PRAM, 1 Causal, 2+ group selector *)
}

type choice =
  | Simple of simple
  | Section of bool * int * simple list (* write?, lock, body *)

type program = choice list list (* segments, separated by barriers *)

let simple_gen =
  QCheck.Gen.(
    map
      (fun (w, loc, g, l) ->
        { s_is_write = w; s_loc = loc; s_guess = g; s_label = l })
      (tup4 bool (int_bound 2) (int_bound 11) (int_bound 3)))

let choice_gen =
  QCheck.Gen.(
    frequency
      [
        (6, map (fun s -> Simple s) simple_gen);
        ( 2,
          map3
            (fun w lock body -> Section (w, lock, body))
            bool (int_bound 1)
            (list_size (int_bound 2) simple_gen) );
      ])

let programs_gen ~procs ~segments ~max_ops =
  QCheck.Gen.(
    list_size (return procs)
      (list_size (return segments) (list_size (int_bound max_ops) choice_gen)))

let history_of_programs ~procs (progs : program list) =
  let next_value = ref 0 in
  let values = ref [ 0 ] in
  let collect_simple s =
    if s.s_is_write then begin
      incr next_value;
      values := !next_value :: !values
    end
  in
  List.iter
    (List.iter
       (List.iter (function
         | Simple s -> collect_simple s
         | Section (_, _, body) -> List.iter collect_simple body)))
    progs;
  let values = Array.of_list (List.rev !values) in
  let next_value = ref 0 in
  let lock_seq = Array.make 2 0 in
  let label_of proc l =
    match l with
    | 0 -> Op.PRAM
    | 1 -> Op.Causal
    | 2 -> Op.Group (List.sort_uniq compare [ proc; (proc + 1) mod procs ])
    | _ -> Op.Group (List.init procs Fun.id)
  in
  let spec_of_simple proc s =
    if s.s_is_write then begin
      incr next_value;
      Dsl.w ("v" ^ string_of_int s.s_loc) !next_value
    end
    else
      let v = values.(s.s_guess mod Array.length values) in
      match label_of proc s.s_label with
      | Op.PRAM -> Dsl.rp ("v" ^ string_of_int s.s_loc) v
      | Op.Causal -> Dsl.rc ("v" ^ string_of_int s.s_loc) v
      | Op.Group g -> Dsl.rg g ("v" ^ string_of_int s.s_loc) v
  in
  let segments = List.length (List.hd progs) in
  let out = Array.make_matrix procs segments [] in
  for seg = 0 to segments - 1 do
    List.iteri
      (fun proc prog ->
        let choices = List.nth prog seg in
        let specs =
          List.concat_map
            (function
              | Simple s -> [ spec_of_simple proc s ]
              | Section (w, lock, body) ->
                let l = "m" ^ string_of_int lock in
                let s0 = lock_seq.(lock) in
                lock_seq.(lock) <- s0 + 2;
                let body = List.map (spec_of_simple proc) body in
                if w then (Dsl.wl ~seq:s0 l :: body) @ [ Dsl.wu ~seq:(s0 + 1) l ]
                else (Dsl.rl ~seq:s0 l :: body) @ [ Dsl.ru ~seq:(s0 + 1) l ])
            choices
        in
        out.(proc).(seg) <- specs)
      progs
  done;
  let per_proc =
    List.init procs (fun proc ->
        List.concat
          (List.init segments (fun seg ->
               out.(proc).(seg)
               @ if seg < segments - 1 then [ Dsl.bar seg ] else [])))
  in
  Dsl.make ~procs per_proc

let sync_history_arb ~procs ~segments ~max_ops =
  QCheck.make
    ~print:(fun progs ->
      Format.asprintf "%a" History.pp (history_of_programs ~procs progs))
    (programs_gen ~procs ~segments ~max_ops)

let acyclic h = QCheck.assume (History.causality_is_acyclic h)

(* ------------------------------------------------------------------ *)
(* Lattice algebra                                                     *)
(* ------------------------------------------------------------------ *)

(* the ladder plus session/group points off the documentation path *)
let pool =
  Lattice.ladder
  @ Lattice.
      [
        Session [];
        Session [ Read_your_writes ];
        Session [ Monotonic_reads ];
        Group [];
        Group [ 0; 1 ];
        Group [ 0; 1; 2 ];
      ]

let test_leq_preorder () =
  List.iter
    (fun m ->
      check (Lattice.to_string m ^ " reflexive") true (Lattice.leq m m))
    pool;
  List.iter
    (fun a ->
      List.iter
        (fun b ->
          List.iter
            (fun c ->
              if Lattice.leq a b && Lattice.leq b c then
                check
                  (Printf.sprintf "transitive %s <= %s <= %s"
                     (Lattice.to_string a) (Lattice.to_string b)
                     (Lattice.to_string c))
                  true (Lattice.leq a c))
            pool)
        pool)
    pool

let test_bounds () =
  List.iter
    (fun m ->
      check ("bottom below " ^ Lattice.to_string m) true
        (Lattice.leq (Lattice.Session []) m);
      check (Lattice.to_string m ^ " below top") true
        (Lattice.leq m Lattice.Linearizable))
    pool

let test_meet_join () =
  List.iter
    (fun a ->
      List.iter
        (fun b ->
          let m = Lattice.meet a b and j = Lattice.join a b in
          let name op =
            Printf.sprintf "%s(%s,%s)" op (Lattice.to_string a)
              (Lattice.to_string b)
          in
          check (name "meet below left") true (Lattice.leq m a);
          check (name "meet below right") true (Lattice.leq m b);
          check (name "join above left") true (Lattice.leq a j);
          check (name "join above right") true (Lattice.leq b j);
          check (name "meet commutes") true
            (Lattice.equal m (Lattice.meet b a));
          check (name "join commutes") true
            (Lattice.equal j (Lattice.join b a)))
        pool)
    pool

let test_special_points () =
  check "Group [] = PRAM" true Lattice.(equal (Group []) PRAM);
  check "PRAM <= Mixed" true Lattice.(leq PRAM Mixed);
  check "Mixed <= Causal" true Lattice.(leq Mixed Causal);
  check "Causal not <= Mixed" false Lattice.(leq Causal Mixed);
  check "Mixed not <= PRAM" false Lattice.(leq Mixed PRAM);
  check "session pointwise" true
    Lattice.(leq (Session [ Read_your_writes ]) (Session [ Read_your_writes; Monotonic_reads ]));
  check "session incomparable" false
    Lattice.(leq (Session [ Read_your_writes ]) (Session [ Monotonic_reads ]));
  check "group inclusion" true Lattice.(leq (Group [ 0; 1 ]) (Group [ 0; 1; 2 ]));
  check "slow below pram and cache" true
    Lattice.(leq Slow PRAM && leq Slow Cache);
  check "processor above pram and cache" true
    Lattice.(leq PRAM Processor && leq Cache Processor)

let test_names_round_trip () =
  List.iter
    (fun m ->
      match Lattice.of_string (Lattice.to_string m) with
      | Ok m' ->
        check ("round trip " ^ Lattice.to_string m) true (Lattice.equal m m')
      | Error e -> Alcotest.failf "%s does not parse: %s" (Lattice.to_string m) e)
    pool;
  (match Lattice.of_string "no-such-model" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "junk name parsed");
  check "lin alias" true
    (Lattice.of_string "lin" = Ok Lattice.Linearizable)

let test_ladder_is_linear_extension () =
  (* a strictly stronger model never appears before a weaker one *)
  let l = Array.of_list Lattice.ladder in
  check "nine points" true (Array.length l = 9);
  Array.iteri
    (fun i a ->
      Array.iteri
        (fun j b ->
          if i < j then
            check
              (Printf.sprintf "%s before %s" (Lattice.to_string a)
                 (Lattice.to_string b))
              false
              (Lattice.leq b a && not (Lattice.leq a b)))
        l)
    l

(* ------------------------------------------------------------------ *)
(* Differential against the seed relations                             *)
(* ------------------------------------------------------------------ *)

let seed_verdict h (o : Op.t) label =
  let rel =
    match label with
    | Op.PRAM -> History.pram_relation h o.Op.proc
    | Op.Causal -> History.causal_relation h o.Op.proc
    | Op.Group g -> History.group_relation h ~reader:o.Op.proc ~group:g
  in
  Read_rule.check h rel ~read_id:o.Op.id

let differential_ok h =
  Array.for_all
    (fun (o : Op.t) ->
      match o.Op.kind with
      | Op.Read { label; _ } ->
        let labels =
          Op.PRAM :: Op.Causal
          :: (match label with Op.Group _ -> [ label ] | _ -> [])
        in
        List.for_all
          (fun l ->
            Lattice.verdict_at h l ~read_id:o.Op.id = seed_verdict h o l)
          labels
        && Lattice.verdict h Lattice.Mixed ~read_id:o.Op.id
           = seed_verdict h o label
      | _ -> true)
    (History.ops h)

let mixed_point_matches_seed h =
  let seed = Mixed.failures h in
  let lat = Lattice.failures h Lattice.Mixed in
  List.length seed = List.length lat
  && List.for_all2
       (fun (a : Mixed.failure) (b : Lattice.failure) ->
         a.Mixed.read_id = b.Lattice.read_id
         && a.Mixed.verdict = b.Lattice.verdict)
       seed lat

let lattice_diff_random =
  QCheck.Test.make ~name:"verdict_at = seed relations on random histories"
    ~count:300
    (sync_history_arb ~procs:3 ~segments:2 ~max_ops:4)
    (fun progs ->
      let h = history_of_programs ~procs:3 progs in
      acyclic h;
      differential_ok h && mixed_point_matches_seed h)

(* ------------------------------------------------------------------ *)
(* Monotonicity: leq m1 m2 => failures m1 subset of failures m2        *)
(* ------------------------------------------------------------------ *)

let failing_ids h m =
  List.filter_map
    (fun (f : Lattice.failure) ->
      if f.Lattice.verdict = Read_rule.Valid then None
      else Some f.Lattice.read_id)
    (Lattice.failures h m)

let subset a b = List.for_all (fun x -> List.mem x b) a

let monotone_ok h =
  let fails = List.map (fun m -> (m, failing_ids h m)) pool in
  List.for_all
    (fun (m1, f1) ->
      List.for_all
        (fun (m2, f2) ->
          (not (Lattice.leq m1 m2)) || subset f1 f2
          || begin
               Format.eprintf "monotonicity broken: %a <= %a@.%a@."
                 Lattice.pp m1 Lattice.pp m2 History.pp h;
               false
             end)
        fails)
    fails

let lattice_monotone =
  QCheck.Test.make ~name:"leq implies failure-set inclusion" ~count:200
    (sync_history_arb ~procs:3 ~segments:2 ~max_ops:4)
    (fun progs ->
      let h = history_of_programs ~procs:3 progs in
      acyclic h;
      monotone_ok h)

(* ------------------------------------------------------------------ *)
(* Online uniform mode                                                 *)
(* ------------------------------------------------------------------ *)

let streamable_pool =
  List.filter Online.supports pool

let test_supports () =
  let expect m v =
    check ("supports " ^ Lattice.to_string m) v (Online.supports m)
  in
  List.iter
    (fun m -> expect m true)
    Lattice.
      [ Causal; PRAM; Mixed; Group [ 0; 1 ]; Session []; Session [ Read_your_writes ] ];
  List.iter
    (fun m -> expect m false)
    Lattice.[ SC; Linearizable; Processor; Cache; Slow ]

let online_uniform_ok h =
  let groups = Online.groups_of_history h in
  List.for_all
    (fun m ->
      let online =
        List.filter_map
          (fun (f : Mixed.failure) ->
            if f.Mixed.verdict = Read_rule.Valid then None
            else Some (f.Mixed.read_id, f.Mixed.verdict))
          (Online.failures (Online.check ~groups ~model:m h))
      in
      let offline =
        List.filter_map
          (fun (f : Lattice.failure) ->
            if f.Lattice.verdict = Read_rule.Valid then None
            else Some (f.Lattice.read_id, f.Lattice.verdict))
          (Lattice.failures h m)
      in
      online = offline
      || begin
           Format.eprintf "online disagrees under %a:@.%a@." Lattice.pp m
             History.pp h;
           false
         end)
    streamable_pool

let online_uniform_diff =
  QCheck.Test.make ~name:"uniform online = Lattice.failures" ~count:200
    (sync_history_arb ~procs:3 ~segments:2 ~max_ops:4)
    (fun progs ->
      let h = history_of_programs ~procs:3 progs in
      acyclic h;
      online_uniform_ok h)

(* ------------------------------------------------------------------ *)
(* Section-5 applications                                              *)
(* ------------------------------------------------------------------ *)

module Engine = Mc_sim.Engine
module Runtime = Mc_dsm.Runtime
module Config = Mc_dsm.Config
module Api = Mc_dsm.Api
module Solver = Mc_apps.Linear_solver
module Em = Mc_apps.Em_field
module Sparse = Mc_apps.Sparse_spd
module Cholesky = Mc_apps.Cholesky

let record_app ?(procs = 3) f =
  let engine = Engine.create () in
  let cfg = { (Config.default ~procs) with Config.record = true } in
  let rt = Runtime.create engine cfg in
  f rt (Api.spawn rt);
  ignore (Runtime.run rt);
  Runtime.history rt

let app_sweep name h =
  check (name ^ ": verdict_at = seed") true (differential_ok h);
  check (name ^ ": mixed point = seed Mixed") true (mixed_point_matches_seed h);
  check (name ^ ": monotone on the pool") true (monotone_ok h);
  check (name ^ ": uniform online = offline") true (online_uniform_ok h)

let test_app_solver () =
  let problem = Solver.Problem.generate ~seed:42 ~n:8 in
  let h =
    record_app ~procs:4 (fun _ spawn ->
        ignore (Solver.launch ~spawn ~procs:4 ~variant:Solver.Barrier_pram problem))
  in
  app_sweep "solver barrier" h

let test_app_em () =
  let params = { Em.rows = 9; cols = 5; steps = 3; seed = 5 } in
  let h =
    record_app (fun _ spawn -> ignore (Em.launch ~spawn ~procs:3 params))
  in
  app_sweep "em field" h

let test_app_cholesky () =
  let m = Sparse.generate ~seed:11 ~n:10 ~density:0.3 in
  let h =
    record_app (fun _ spawn ->
        ignore (Cholesky.launch ~spawn ~procs:3 ~variant:Cholesky.Lock_based m))
  in
  app_sweep "cholesky locks" h

(* ------------------------------------------------------------------ *)
(* Static weakest-model inference                                      *)
(* ------------------------------------------------------------------ *)

module P = Mc_static.Pir
module Cls = Mc_static.Classify
module St = Mc_static.Static
module Models = Mc_apps.Static_models

(* the model implied by a read's declared label: the static analysis
   must never require more than the paper's own label assignment *)
let lmodel_of_label = function
  | P.L_pram -> Cls.M_pram
  | P.L_causal -> Cls.M_causal
  | P.L_group ts -> Cls.M_group ts

let declared_join (rep : St.report) =
  List.fold_left
    (fun acc (rr : Cls.read_report) ->
      Cls.model_join acc (lmodel_of_label rr.Cls.declared))
    (Cls.M_session { ryw = false; mr = false })
    rep.St.reads

let static_apps () =
  [
    ("solver-barrier", Models.solver_barrier, Some "pram");
    ("solver-handshake-causal", Models.solver_handshake ~labels:Models.Hs_causal (), None);
    ("solver-handshake-group", Models.solver_handshake ~labels:Models.Hs_group (), None);
    ("em-field", Models.em_field, Some "pram");
    ("cholesky", Models.cholesky, Some "causal");
  ]

let test_static_weakest_below_labels () =
  List.iter
    (fun (name, prog, exact) ->
      let rep = St.analyze prog in
      let weakest = rep.St.lattice.Cls.weakest in
      check
        (name ^ ": weakest <= declared labels")
        true
        (Cls.model_leq weakest (declared_join rep));
      match exact with
      | None -> ()
      | Some s ->
        Alcotest.(check string)
          (name ^ ": weakest model")
          s
          (Cls.lmodel_to_string weakest))
    (static_apps ())

let test_static_group_weakest () =
  let rep = St.analyze (Models.solver_handshake ~labels:Models.Hs_group ()) in
  match rep.St.lattice.Cls.weakest with
  | Cls.M_group _ -> ()
  | m ->
    Alcotest.failf "group-labelled handshake inferred %s"
      (Cls.lmodel_to_string m)

(* rebuild the model from the [level] column of the proof trace; it
   must equal the inferred weakest model (the trace is machine-checkable) *)
let rebuild_from_axioms (axioms : Cls.axiom_req list) =
  let level a =
    (List.find (fun (r : Cls.axiom_req) -> r.Cls.axiom = a) axioms).Cls.level
  in
  match level "wi" with
  | "all" -> "causal"
  | "reader" -> (
    match level "po" with "global" -> "pram" | s -> s)
  | g -> g (* "group:..." carries the group verbatim *)

let test_static_axiom_trace () =
  List.iter
    (fun (name, prog, _) ->
      let rep = St.analyze prog in
      let lat = rep.St.lattice in
      check (name ^ ": five axiom rows") true
        (List.map (fun (r : Cls.axiom_req) -> r.Cls.axiom) lat.Cls.axioms
        = [ "po"; "wi"; "sync"; "wo"; "rt" ]);
      List.iter
        (fun (r : Cls.axiom_req) ->
          if r.Cls.axiom = "wo" || r.Cls.axiom = "rt" then
            check (name ^ ": " ^ r.Cls.axiom ^ " never needed") false
              r.Cls.needed)
        lat.Cls.axioms;
      Alcotest.(check string)
        (name ^ ": trace rebuilds the model")
        (Cls.lmodel_to_string lat.Cls.weakest)
        (rebuild_from_axioms lat.Cls.axioms))
    (static_apps ())

let test_static_read_models_join () =
  (* the reported weakest model is the join of the per-read models *)
  List.iter
    (fun (name, prog, _) ->
      let rep = St.analyze prog in
      let lat = rep.St.lattice in
      let join =
        List.fold_left
          (fun acc (rm : Cls.read_model) -> Cls.model_join acc rm.Cls.rm_model)
          (Cls.M_session { ryw = false; mr = false })
          lat.Cls.read_models
      in
      Alcotest.(check string)
        (name ^ ": weakest = join of reads")
        (Cls.lmodel_to_string lat.Cls.weakest)
        (Cls.lmodel_to_string join))
    (static_apps ())

(* ------------------------------------------------------------------ *)

let () =
  let qt = QCheck_alcotest.to_alcotest in
  Alcotest.run "lattice"
    [
      ( "algebra",
        [
          Alcotest.test_case "leq preorder" `Quick test_leq_preorder;
          Alcotest.test_case "bottom and top" `Quick test_bounds;
          Alcotest.test_case "meet and join bound" `Quick test_meet_join;
          Alcotest.test_case "special points" `Quick test_special_points;
          Alcotest.test_case "names round-trip" `Quick test_names_round_trip;
          Alcotest.test_case "ladder order" `Quick
            test_ladder_is_linear_extension;
        ] );
      ( "differential",
        [ qt lattice_diff_random; qt lattice_monotone; qt online_uniform_diff ]
      );
      ( "online",
        [ Alcotest.test_case "supports" `Quick test_supports ] );
      ( "apps",
        [
          Alcotest.test_case "solver barrier" `Quick test_app_solver;
          Alcotest.test_case "em field" `Quick test_app_em;
          Alcotest.test_case "cholesky locks" `Quick test_app_cholesky;
        ] );
      ( "static",
        [
          Alcotest.test_case "weakest below labels" `Quick
            test_static_weakest_below_labels;
          Alcotest.test_case "group handshake" `Quick test_static_group_weakest;
          Alcotest.test_case "axiom trace rebuilds" `Quick
            test_static_axiom_trace;
          Alcotest.test_case "weakest is join of reads" `Quick
            test_static_read_models_join;
        ] );
    ]
