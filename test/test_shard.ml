(* Sharded (partially-replicated) mode:

   - replica-level gap tolerance: random shard-update streams with
     subscriber churn (unsubscribe, resubscribe with a state-transfer
     snapshot) and cross-writer reorder converge to the reference state
     on every subscribed shard — including dropping in-flight updates
     already covered by a snapshot;
   - the write-subscription discipline and the placement/multicast
     exclusivity raise;
   - partial-view online checking: on a run with a genuine PRAM
     violation on a subscribed read, the streaming checker's failure
     list (verdicts and [Overwritten] diagnostics) is identical to the
     offline checker's, restricted to non-fetched reads, while the
     fetched read validates against its snapshot;
   - solver differential: the Fig. 2 solver under sharded placement
     computes the same result as under full replication, with a clean
     online verdict despite every foreign-row read being a fetch. *)

module Engine = Mc_sim.Engine
module Runtime = Mc_dsm.Runtime
module Config = Mc_dsm.Config
module Api = Mc_dsm.Api
module Replica = Mc_dsm.Replica
module Network = Mc_net.Network
module Latency = Mc_net.Latency
module P = Mc_placement.Placement
module Op = Mc_history.Op
module Mixed = Mc_consistency.Mixed
module Online = Mc_consistency.Online
module Rng = Mc_util.Rng
module Solver = Mc_apps.Linear_solver

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* ------------------------------------------------------------------ *)
(* Gap-tolerant delivery under churn and reorder                       *)
(* ------------------------------------------------------------------ *)

(* Three writers, three shards, one observer. Writers are fully
   subscribed and issue shard writes to writer-private locations (so the
   final value per location is deterministic); every message travels on
   per-link FIFO queues but links drain in random relative order. The
   observer randomly unsubscribes shards and resubscribes them with a
   fresh snapshot (per-writer issue counts + reference values), so
   stale in-flight updates must be recognized and dropped. *)
let test_gap_tolerant_churn () =
  let writers = 3 and shards = 3 in
  for seed = 1 to 40 do
    let rng = Rng.make (5200 + seed) in
    let e = Engine.create () in
    let n = writers + 1 in
    let obs_id = writers in
    let ws = Array.init writers (fun i -> Replica.create e ~id:i ~n ()) in
    Array.iter
      (fun w ->
        for s = 0 to shards - 1 do
          Replica.subscribe_shard w ~shard:s ()
        done)
      ws;
    let obs = Replica.create e ~id:obs_id ~n () in
    for s = 0 to shards - 1 do
      Replica.subscribe_shard obs ~shard:s ()
    done;
    (* reference: issue counts and last value per location *)
    let issued = Array.make_matrix writers shards 0 in
    let ref_view = Hashtbl.create 32 in
    let loc_of s w = Printf.sprintf "o:%d:%d" s w in
    (* per-link FIFO in-flight queues; dst indexes writers then observer *)
    let links = Array.init writers (fun _ -> Array.init n (fun _ -> Queue.create ())) in
    let next_val = ref 0 in
    let deliver ~src ~dst =
      if not (Queue.is_empty links.(src).(dst)) then begin
        let su = Queue.pop links.(src).(dst) in
        let r = if dst = obs_id then obs else ws.(dst) in
        Replica.shard_receive r su
      end
    in
    let snapshot s =
      let clock = List.init writers (fun w -> (w, issued.(w).(s))) in
      let values =
        Hashtbl.fold
          (fun (s', loc) (num, tag) acc ->
            if s' = s then (loc, num, tag) :: acc else acc)
          ref_view []
      in
      (clock, values)
    in
    for _step = 1 to 150 do
      match Rng.int rng 10 with
      | 0 | 1 | 2 | 3 ->
        (* issue a fresh write *)
        let w = Rng.int rng writers and s = Rng.int rng shards in
        incr next_val;
        let v = !next_val in
        let su =
          Replica.shard_write ws.(w) ~shard:s ~loc:(loc_of s w) ~numeric:v ~tag:v
        in
        issued.(w).(s) <- issued.(w).(s) + 1;
        Hashtbl.replace ref_view (s, loc_of s w) (v, v);
        for dst = 0 to n - 1 do
          if dst <> w then Queue.push su links.(w).(dst)
        done
      | 4 | 5 | 6 | 7 ->
        (* drain one message on a random link *)
        deliver ~src:(Rng.int rng writers) ~dst:(Rng.int rng n)
      | 8 ->
        let s = Rng.int rng shards in
        if Replica.shard_subscribed obs ~shard:s then
          Replica.unsubscribe_shard obs ~shard:s
      | _ ->
        let s = Rng.int rng shards in
        if not (Replica.shard_subscribed obs ~shard:s) then begin
          let clock, values = snapshot s in
          Replica.subscribe_shard obs ~clock ~values ~shard:s ()
        end
    done;
    (* resubscribe everything missing (with snapshots), then drain all *)
    for s = 0 to shards - 1 do
      if not (Replica.shard_subscribed obs ~shard:s) then begin
        let clock, values = snapshot s in
        Replica.subscribe_shard obs ~clock ~values ~shard:s ()
      end
    done;
    for src = 0 to writers - 1 do
      for dst = 0 to n - 1 do
        while not (Queue.is_empty links.(src).(dst)) do
          deliver ~src ~dst
        done
      done
    done;
    let name what = Printf.sprintf "seed %d: %s" seed what in
    (* every replica converged to the reference on every shard *)
    Hashtbl.iter
      (fun (s, loc) (num, tag) ->
        check (name (Printf.sprintf "observer %s" loc)) true
          (Replica.shard_read obs ~shard:s loc = (num, tag));
        check (name (Printf.sprintf "observer pram %s" loc)) true
          (Replica.pram_read obs loc = (num, tag));
        Array.iter
          (fun w ->
            check (name (Printf.sprintf "writer %s" loc)) true
              (Replica.shard_read w ~shard:s loc = (num, tag)))
          ws)
      ref_view;
    check_int (name "observer drained") 0 (Replica.pending_count obs);
    Array.iter
      (fun w -> check_int (name "writer drained") 0 (Replica.pending_count w))
      ws
  done

(* QCheck: single writer, single shard — any interleaving of FIFO
   deliveries with churn (resubscription always installs the up-to-date
   snapshot) leaves the subscriber exactly at the reference value. *)
let churn_prop =
  QCheck.Test.make ~name:"single-stream churn convergence" ~count:200
    (QCheck.make QCheck.Gen.(list_size (int_range 1 40) (int_bound 5)))
    (fun ops ->
      let e = Engine.create () in
      let w = Replica.create e ~id:0 ~n:2 () in
      Replica.subscribe_shard w ~shard:0 ();
      let obs = Replica.create e ~id:1 ~n:2 () in
      Replica.subscribe_shard obs ~shard:0 ();
      let inflight = Queue.create () in
      let issued = ref 0 and last = ref (0, 0) in
      List.iter
        (fun op ->
          match op with
          | 0 | 1 ->
            incr issued;
            let v = !issued * 10 in
            Queue.push
              (Replica.shard_write w ~shard:0 ~loc:"x" ~numeric:v ~tag:v)
              inflight;
            last := (v, v)
          | 2 | 3 ->
            if not (Queue.is_empty inflight) then
              Replica.shard_receive obs (Queue.pop inflight)
          | 4 ->
            if Replica.shard_subscribed obs ~shard:0 then
              Replica.unsubscribe_shard obs ~shard:0
          | _ ->
            if not (Replica.shard_subscribed obs ~shard:0) then
              Replica.subscribe_shard obs
                ~clock:[ (0, !issued) ]
                ~values:(if !issued = 0 then [] else [ ("x", fst !last, snd !last) ])
                ~shard:0 ())
        ops;
      if not (Replica.shard_subscribed obs ~shard:0) then
        Replica.subscribe_shard obs
          ~clock:[ (0, !issued) ]
          ~values:(if !issued = 0 then [] else [ ("x", fst !last, snd !last) ])
          ~shard:0 ();
      while not (Queue.is_empty inflight) do
        Replica.shard_receive obs (Queue.pop inflight)
      done;
      Replica.shard_read obs ~shard:0 "x" = !last
      && Replica.pending_count obs = 0)

(* ------------------------------------------------------------------ *)
(* Write discipline and configuration exclusivity                      *)
(* ------------------------------------------------------------------ *)

let test_write_discipline () =
  let pl = P.create ~shards:4 ~policy:(P.Range { objects = 40 }) () in
  (* proc 0 owns shard 0 (ids 0-9); shard 1 (ids 10-19) is unowned *)
  P.subscribe pl ~node:0 ~shard:0;
  P.subscribe pl ~node:1 ~shard:0;
  let engine = Engine.create () in
  let cfg = { (Config.default ~procs:2) with placement = Some pl } in
  let rt = Runtime.create engine cfg in
  let raises f = try f () |> ignore; false with Invalid_argument _ -> true in
  let unsubscribed_write = ref false
  and group_read = ref false
  and lock = ref false
  and own_ok = ref false in
  Runtime.spawn_process rt 0 (fun p ->
      Runtime.write p "s:3" 7;
      own_ok := Runtime.read p ~label:Op.PRAM "s:3" = 7;
      unsubscribed_write := raises (fun () -> Runtime.write p "s:13" 1);
      group_read :=
        raises (fun () -> Runtime.read p ~label:(Op.Group [ 0; 1 ]) "s:3");
      lock := raises (fun () -> Runtime.write_lock p "l"));
  ignore (Runtime.run rt);
  check "write to own shard + read-your-write" true !own_ok;
  check "write to unsubscribed shard raises" true !unsubscribed_write;
  check "group read raises" true !group_read;
  check "locks raise" true !lock;
  check "placement and multicast are exclusive" true
    (raises (fun () ->
         Runtime.create (Engine.create ())
           {
             (Config.default ~procs:2) with
             placement = Some pl;
             multicast = Some (fun _ -> None);
           }))

(* ------------------------------------------------------------------ *)
(* Partial-view checking: online = offline on non-fetched reads        *)
(* ------------------------------------------------------------------ *)

(* Engineer a real PRAM violation on subscribed reads: writer 2 writes
   [a] (shard A, direct edge 2 -> 1) then [b] (shard B, whose tree
   routes 2 -> 0 -> 1); with the 2 -> 1 link paused, process 1 observes
   [b] and then reads the older [a] as 0 — new-then-old across one
   writer's stream. Process 1 also performs one fetched read of an
   unsubscribed location, which must validate against the home snapshot
   and stay out of the failure comparison. *)
let test_partial_view_checker_identity () =
  let pl = P.create ~shards:3 ~policy:(P.Range { objects = 30 }) ~fanout:1 () in
  let loc_a = "s:5" (* shard 0 *) and loc_b = "s:15" (* shard 1 *) in
  let loc_c = "s:25" (* shard 2: subscribed by 0 only; fetched by 1 *) in
  List.iter (fun n -> P.subscribe pl ~node:n ~shard:0) [ 1; 2 ];
  List.iter (fun n -> P.subscribe pl ~node:n ~shard:1) [ 0; 1; 2 ];
  P.subscribe pl ~node:0 ~shard:2;
  (* shard 1's tree rooted at 2 is the chain 2 -> 0 -> 1 *)
  Alcotest.(check (list int)) "chain head" [ 0 ]
    (P.children pl ~shard:1 ~root:2 ~node:2);
  Alcotest.(check (list int)) "chain tail" [ 1 ]
    (P.children pl ~shard:1 ~root:2 ~node:0);
  let engine = Engine.create () in
  let cfg =
    {
      (Config.default ~procs:3) with
      record = true;
      check_online = true;
      placement = Some pl;
      await_label = Op.PRAM;
    }
  in
  let rt = Runtime.create engine cfg in
  Network.pause_link (Runtime.network rt) ~src:2 ~dst:1;
  let seen = ref (-1) in
  Runtime.spawn_process rt 2 (fun p ->
      Runtime.write p loc_a 11;
      Runtime.write p loc_b 22);
  Runtime.spawn_process rt 1 (fun p ->
      Runtime.await p loc_b 22;
      seen := Runtime.read p ~label:Op.PRAM loc_a;
      ignore (Runtime.read p ~label:Op.PRAM loc_c));
  ignore (Runtime.run rt);
  check_int "read of a is stale" 0 !seen;
  let chk = Option.get (Runtime.online_checker rt) in
  let stats = Online.stats chk in
  check_int "one fetched read" 1 stats.Online.fetched_reads;
  let fetched = Online.fetched_ids chk in
  check_int "one fetched id" 1 (List.length fetched);
  let online = Online.failures chk in
  let offline =
    List.filter
      (fun (f : Mixed.failure) -> not (List.mem f.Mixed.read_id fetched))
      (Mixed.failures (Runtime.history rt))
  in
  check "a violation was engineered" true (online <> []);
  check "online = offline on non-fetched reads (verdicts + diagnostics)" true
    (online = offline)

(* ------------------------------------------------------------------ *)
(* Solver differential: sharded vs full replication                    *)
(* ------------------------------------------------------------------ *)

let test_solver_sharded_differential () =
  let n = 12 and procs = 4 in
  let problem = Solver.Problem.generate ~seed:7 ~n in
  let run placement =
    let engine = Engine.create () in
    let cfg =
      {
        (Config.default ~procs) with
        record = true;
        check_online = placement <> None;
        placement;
      }
    in
    let latency = Latency.uniform (Rng.make 13) ~lo:5. ~hi:90. in
    let rt = Runtime.create engine ~latency cfg in
    let res =
      Solver.launch ~spawn:(Api.spawn rt) ~procs ~variant:Solver.Barrier_pram
        problem
    in
    ignore (Runtime.run rt);
    (Option.get !res, rt)
  in
  let full, rt_full = run None in
  let pl = P.create ~shards:8 ~policy:(P.Range { objects = n }) () in
  Solver.subscribe_shards pl ~procs ~n;
  let sharded, rt_sh = run (Some pl) in
  check "same estimate" true (full.Solver.x = sharded.Solver.x);
  check_int "same iterations" full.Solver.iterations sharded.Solver.iterations;
  check "same convergence" true (full.Solver.converged = sharded.Solver.converged);
  check "full run mixed consistent" true
    (Mixed.is_mixed_consistent (Runtime.history rt_full));
  let chk = Option.get (Runtime.online_checker rt_sh) in
  check "sharded run passes the online checker" true (Online.is_consistent chk);
  check "fetches actually happened" true ((Online.stats chk).Online.fetched_reads > 0);
  check "fetch counter agrees" true (Runtime.fetch_count rt_sh > 0);
  (* offline, restricted to non-fetched reads, agrees (here: both clean) *)
  let fetched = Online.fetched_ids chk in
  let offline =
    List.filter
      (fun (f : Mixed.failure) -> not (List.mem f.Mixed.read_id fetched))
      (Mixed.failures (Runtime.history rt_sh))
  in
  check "offline clean on non-fetched reads" true (offline = []);
  (* partial replication really holds less state than full replication *)
  let max_resident rt =
    let m = ref 0 in
    for i = 0 to procs - 1 do
      m := max !m (Runtime.resident_objects rt ~proc:i)
    done;
    !m
  in
  check "resident state shrank" true (max_resident rt_sh < max_resident rt_full)

let () =
  let qt = QCheck_alcotest.to_alcotest in
  Alcotest.run "shard"
    [
      ( "gap tolerance",
        [
          Alcotest.test_case "churn + reorder convergence" `Quick
            test_gap_tolerant_churn;
          qt churn_prop;
        ] );
      ( "discipline",
        [ Alcotest.test_case "write subscription" `Quick test_write_discipline ] );
      ( "partial-view checking",
        [
          Alcotest.test_case "online = offline off the fetch path" `Quick
            test_partial_view_checker_identity;
        ] );
      ( "solver",
        [
          Alcotest.test_case "sharded = full replication" `Quick
            test_solver_sharded_differential;
        ] );
    ]
