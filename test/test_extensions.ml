(* Tests for the paper-sketched generalizations: group consistency
   (Section 3.2), subset barriers (Section 3.1.2), the asynchronous
   relaxation solver (Section 7), and the trace-rendering tools. *)

module Engine = Mc_sim.Engine
module Runtime = Mc_dsm.Runtime
module Config = Mc_dsm.Config
module Api = Mc_dsm.Api
module Network = Mc_net.Network
module Op = Mc_history.Op
module History = Mc_history.History
module Dsl = Mc_history.Dsl
module Group = Mc_consistency.Group
module Pram = Mc_consistency.Pram
module Causal = Mc_consistency.Causal
module Mixed = Mc_consistency.Mixed

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* ------------------------------------------------------------------ *)
(* Group consistency: the checker                                      *)
(* ------------------------------------------------------------------ *)

(* the classic PRAM-not-causal chain: p0 writes x, p1 relays through y,
   p2 reads y fresh but x stale *)
let chain_with last_read =
  Dsl.make ~procs:3
    [
      [ Dsl.w "x" 1 ];
      [ Dsl.rp "x" 1; Dsl.w "y" 2 ];
      [ Dsl.rp "y" 2; last_read ];
    ]

let test_group_endpoints () =
  (* the stale read of x by p2 (op id 4) *)
  let h = chain_with (Dsl.rp "x" 0) in
  check "valid as PRAM" true (Pram.is_pram_read h ~read_id:4);
  check "invalid as causal" false (Causal.is_causal_read h ~read_id:4);
  (* singleton group = PRAM *)
  check "group {2} behaves like PRAM" true
    (Group.is_group_read h ~read_id:4 ~group:[ 2 ]);
  (* full group = causal *)
  check "group {0,1,2} behaves like causal" false
    (Group.is_group_read h ~read_id:4 ~group:[ 0; 1; 2 ]);
  (* the interesting middle point: grouping the reader with the relay
     process p1 pulls in p1's reads-from edge on x, exposing the
     staleness even without p0 in the group *)
  check "group {1,2} sees through the relay" false
    (Group.is_group_read h ~read_id:4 ~group:[ 1; 2 ]);
  (* grouping with the original writer also catches it: the reads-from
     edge out of p0's write touches the member p0, and program order of
     the relay completes the chain *)
  check "group {0,2} also sees the chain" false
    (Group.is_group_read h ~read_id:4 ~group:[ 0; 2 ])

(* build the history with explicit Group labels through a recorder *)
let test_group_label_checked_by_mixed () =
  let r = Mc_history.Recorder.create ~procs:3 () in
  let w kind p = ignore (Mc_history.Recorder.record r ~proc:p kind) in
  w (Op.Write { loc = "x"; value = 1 }) 0;
  w (Op.Read { loc = "x"; label = Op.PRAM; value = 1 }) 1;
  w (Op.Write { loc = "y"; value = 2 }) 1;
  w (Op.Read { loc = "y"; label = Op.PRAM; value = 2 }) 2;
  w (Op.Read { loc = "x"; label = Op.Group [ 2 ]; value = 0 }) 2;
  let h = Mc_history.Recorder.history r in
  check "mixed accepts the {2}-group stale read" true
    (Mixed.is_mixed_consistent h);
  let r2 = Mc_history.Recorder.create ~procs:3 () in
  let w2 kind p = ignore (Mc_history.Recorder.record r2 ~proc:p kind) in
  w2 (Op.Write { loc = "x"; value = 1 }) 0;
  w2 (Op.Read { loc = "x"; label = Op.PRAM; value = 1 }) 1;
  w2 (Op.Write { loc = "y"; value = 2 }) 1;
  w2 (Op.Read { loc = "y"; label = Op.PRAM; value = 2 }) 2;
  w2 (Op.Read { loc = "x"; label = Op.Group [ 1; 2 ]; value = 0 }) 2;
  let h2 = Mc_history.Recorder.history r2 in
  check "mixed rejects the {1,2}-group stale read" false
    (Mixed.is_mixed_consistent h2)

let test_group_relation_validations () =
  let h = chain_with (Dsl.rp "x" 0) in
  Alcotest.check_raises "reader must be a member"
    (Invalid_argument "History.group_relation: reader must be a group member")
    (fun () -> ignore (History.group_relation h ~reader:2 ~group:[ 0; 1 ]))

(* ------------------------------------------------------------------ *)
(* Group consistency: the runtime                                      *)
(* ------------------------------------------------------------------ *)

let test_group_views_in_runtime () =
  (* relay scenario with a paused direct link: p2 group-reads with the
     relay group {1,2} and must see p0's write once p1's relay applies,
     because the group view gates member updates on received non-member
     dependencies *)
  let engine = Engine.create () in
  let cfg = { (Config.default ~procs:3) with groups = [ [ 1; 2 ]; [ 2 ] ] } in
  let rt = Runtime.create engine cfg in
  let net = Runtime.network rt in
  Network.pause_link net ~src:0 ~dst:2;
  let relay_seen = ref (-1) and singleton_seen = ref (-1) and x_after = ref (-1) in
  Runtime.spawn_process rt 0 (fun p -> Runtime.write p "x" 7);
  Runtime.spawn_process rt 1 (fun p ->
      Runtime.await p "x" 7;
      Runtime.write p "y" 9);
  Runtime.spawn_process rt 2 (fun p ->
      Runtime.compute p 1000.;
      (* y from p1 has arrived; x from p0 is still paused. The raw PRAM
         view applies y on receipt; the group views gate it on the
         received dependency from p0 (the singleton group is conservative
         here - Definition 3 would allow the fresh y) *)
      singleton_seen := Runtime.read p ~label:Op.PRAM "y";
      relay_seen := Runtime.read p ~label:(Op.Group [ 1; 2 ]) "y";
      ignore (Runtime.read p ~label:(Op.Group [ 2 ]) "y");
      Runtime.compute p 2000.;
      x_after := Runtime.read p ~label:(Op.Group [ 1; 2 ]) "x");
  Engine.schedule engine ~delay:1500. (fun () -> Network.resume_link net ~src:0 ~dst:2);
  ignore (Runtime.run rt);
  check_int "the PRAM view applied y on receipt" 9 !singleton_seen;
  check_int "relay group view held y back until x was received" 0 !relay_seen;
  check_int "after the link resumes the group view has x" 7 !x_after

let test_group_read_requires_membership () =
  let engine = Engine.create () in
  let cfg = { (Config.default ~procs:2) with groups = [ [ 0 ] ] } in
  let rt = Runtime.create engine cfg in
  Runtime.spawn_process rt 1 (fun p ->
      ignore (Runtime.read p ~label:(Op.Group [ 0 ]) "x"));
  match Runtime.run rt with
  | (_ : float) -> Alcotest.fail "expected membership failure"
  | exception Engine.Fiber_failure (Invalid_argument _, _) -> ()

let test_group_runtime_history_checks () =
  (* executions using group reads are still mixed consistent *)
  let engine = Engine.create () in
  let cfg =
    { (Config.default ~procs:3) with record = true; groups = [ [ 0; 1 ] ] }
  in
  let rt = Runtime.create engine cfg in
  Runtime.spawn_process rt 0 (fun p ->
      Runtime.write p "a" 1;
      Runtime.barrier p;
      ignore (Runtime.read p ~label:(Op.Group [ 0; 1 ]) "b"));
  Runtime.spawn_process rt 1 (fun p ->
      Runtime.write p "b" 2;
      Runtime.barrier p;
      ignore (Runtime.read p ~label:(Op.Group [ 0; 1 ]) "a"));
  Runtime.spawn_process rt 2 (fun p -> Runtime.barrier p);
  ignore (Runtime.run rt);
  let h = Runtime.history rt in
  check "well-formed" true (History.is_well_formed h);
  check "mixed consistent with group labels" true (Mixed.is_mixed_consistent h)

(* ------------------------------------------------------------------ *)
(* Subset barriers                                                     *)
(* ------------------------------------------------------------------ *)

let test_subset_barrier_runtime () =
  let engine = Engine.create () in
  let cfg = { (Config.default ~procs:3) with record = true } in
  let rt = Runtime.create engine cfg in
  let seen = ref (-1) and outsider_done = ref 0. in
  Runtime.spawn_process rt 0 (fun p ->
      Runtime.write p "x" 5;
      Runtime.barrier_subset p [ 0; 1 ]);
  Runtime.spawn_process rt 1 (fun p ->
      Runtime.barrier_subset p [ 0; 1 ];
      seen := Runtime.read p ~label:Op.PRAM "x");
  Runtime.spawn_process rt 2 (fun p ->
      (* the outsider never joins and must not block *)
      Runtime.compute p 1.;
      outsider_done := Engine.now engine);
  ignore (Runtime.run rt);
  check_int "pre-barrier write visible to the member" 5 !seen;
  check "outsider unaffected" true (!outsider_done < 5.);
  let h = Runtime.history rt in
  check "well-formed" true (History.is_well_formed h);
  check "mixed consistent" true (Mixed.is_mixed_consistent h)

let test_subset_barrier_order_in_model () =
  (* model-level: the subset barrier orders only members *)
  let h =
    Dsl.make ~procs:3
      [
        [ Dsl.w "x" 1; Dsl.barg 0 [ 0; 1 ] ];
        [ Dsl.barg 0 [ 0; 1 ]; Dsl.rp "x" 1 ];
        [ Dsl.rp "x" 0 ];
      ]
  in
  check "member's post-barrier read must be fresh" true
    (Pram.is_pram_read h ~read_id:3);
  check "outsider's stale read is fine" true (Pram.is_pram_read h ~read_id:4);
  let bo = History.barrier_order h in
  (* ids: p0: w=0 bar=1; p1: bar=2 r=3; p2: r=4 *)
  check "w ordered before member barrier" true (Mc_util.Relation.mem bo 0 2);
  check "no ordering towards the outsider" false
    (Mc_util.Relation.mem bo 0 4 || Mc_util.Relation.mem bo 2 4)

let test_subset_barrier_separate_episodes () =
  (* two disjoint pairs can run barriers independently *)
  let engine = Engine.create () in
  let rt = Runtime.create engine (Config.default ~procs:4) in
  let rounds = Array.make 4 0 in
  List.iter
    (fun (a, b) ->
      List.iter
        (fun i ->
          Runtime.spawn_process rt i (fun p ->
              for _ = 1 to 3 do
                Runtime.barrier_subset p [ a; b ];
                rounds.(i) <- rounds.(i) + 1
              done))
        [ a; b ])
    [ (0, 1); (2, 3) ];
  ignore (Runtime.run rt);
  Alcotest.(check (array int)) "all pairs completed" [| 3; 3; 3; 3 |] rounds

let test_subset_barrier_membership_enforced () =
  let engine = Engine.create () in
  let rt = Runtime.create engine (Config.default ~procs:2) in
  Runtime.spawn_process rt 0 (fun p -> Runtime.barrier_subset p [ 1 ]);
  match Runtime.run rt with
  | (_ : float) -> Alcotest.fail "expected membership failure"
  | exception Engine.Fiber_failure (Invalid_argument _, _) -> ()

(* ------------------------------------------------------------------ *)
(* Async relaxation                                                    *)
(* ------------------------------------------------------------------ *)

let test_async_converges_with_pram () =
  let p = Mc_apps.Linear_solver.Problem.generate ~seed:42 ~n:10 in
  let engine = Engine.create () in
  let rt = Runtime.create engine (Config.default ~procs:4) in
  let res = Mc_apps.Async_solver.launch ~spawn:(Api.spawn rt) ~procs:4 p in
  ignore (Runtime.run rt);
  let r = Option.get !res in
  let tol = Mc_apps.Fixed.scale / 100 in
  check "converged" true r.Mc_apps.Async_solver.converged;
  check "small residual" true (r.Mc_apps.Async_solver.residual <= tol);
  let truth = Mc_apps.Async_solver.solution p in
  let maxdiff =
    Array.fold_left max 0
      (Array.mapi (fun i v -> abs (v - truth.(i))) r.Mc_apps.Async_solver.x)
  in
  check "close to the true solution" true (maxdiff <= tol)

let test_async_under_adverse_latency () =
  (* convergence survives very uneven link latencies *)
  let p = Mc_apps.Linear_solver.Problem.generate ~seed:7 ~n:8 in
  let nodes = 3 in
  let lat = Array.make_matrix nodes nodes 500. in
  for i = 0 to nodes - 1 do
    lat.(i).(i) <- 0.;
    lat.(i).(0) <- 10.;
    lat.(0).(i) <- 10.
  done;
  let engine = Engine.create () in
  let rt =
    Runtime.create engine
      ~latency:(Mc_net.Latency.matrix lat)
      (Config.default ~procs:nodes)
  in
  let res = Mc_apps.Async_solver.launch ~spawn:(Api.spawn rt) ~procs:nodes p in
  ignore (Runtime.run rt);
  let r = Option.get !res in
  check "converged despite stale reads" true r.Mc_apps.Async_solver.converged;
  check "residual bounded" true
    (r.Mc_apps.Async_solver.residual <= Mc_apps.Fixed.scale / 100)

(* ------------------------------------------------------------------ *)
(* Multi-threaded processes (Section 3)                                *)
(* ------------------------------------------------------------------ *)

let test_threads_share_replica () =
  let engine = Engine.create () in
  let cfg = { (Config.default ~procs:2) with record = true } in
  let rt = Runtime.create engine cfg in
  let seen = ref (-1) in
  Runtime.spawn_process rt 0 (fun p -> Runtime.write p "t:a" 1);
  Runtime.spawn_thread rt 0 (fun p ->
      (* a second fiber of process 0: its own writes and reads share the
         replica; intra-process reads see thread writes immediately once
         applied *)
      Runtime.write p "t:b" 2;
      Runtime.compute p 5.;
      seen := Runtime.read p "t:a");
  Runtime.spawn_process rt 1 (fun p ->
      Runtime.await p "t:a" 1;
      Runtime.await p "t:b" 2);
  ignore (Runtime.run rt);
  check_int "thread sees sibling's write" 1 !seen;
  let h = Runtime.history rt in
  check "well-formed with overlapping threads" true (History.is_well_formed h);
  check "mixed consistent" true (Mixed.is_mixed_consistent h)

let test_threads_partial_program_order () =
  let engine = Engine.create () in
  let cfg = { (Config.default ~procs:1) with record = true } in
  let rt = Runtime.create engine cfg in
  (* two fibers each take a different lock; their lock acquisitions
     overlap in time, so the recorded program order is partial *)
  Runtime.spawn_process rt 0 (fun p ->
      Runtime.write_lock p "la";
      Runtime.compute p 100.;
      Runtime.write_unlock p "la");
  Runtime.spawn_thread rt 0 (fun p ->
      Runtime.write_lock p "lb";
      Runtime.compute p 100.;
      Runtime.write_unlock p "lb");
  ignore (Runtime.run rt);
  let h = Runtime.history rt in
  check "well-formed" true (History.is_well_formed h);
  let po = Mc_history.History.program_order h in
  (* find the two lock-acquisition ops and check neither precedes the other *)
  let locks =
    Array.to_list (History.ops h)
    |> List.filter_map (fun (o : Op.t) ->
           match o.kind with Op.Write_lock _ -> Some o.id | _ -> None)
  in
  match locks with
  | [ a; b ] ->
    check "overlapping acquisitions unordered" false
      (Mc_util.Relation.mem po a b || Mc_util.Relation.mem po b a)
  | _ -> Alcotest.fail "expected two lock operations"

let test_threads_contend_on_one_lock () =
  let engine = Engine.create () in
  let rt = Runtime.create engine (Config.default ~procs:2) in
  let active = ref 0 and max_active = ref 0 and entries = ref 0 in
  let body p =
    Runtime.write_lock p "shared";
    incr active;
    incr entries;
    max_active := max !max_active !active;
    Runtime.compute p 50.;
    decr active;
    Runtime.write_unlock p "shared"
  in
  Runtime.spawn_process rt 0 body;
  Runtime.spawn_thread rt 0 body;
  Runtime.spawn_process rt 1 body;
  ignore (Runtime.run rt);
  check_int "all three entered" 3 !entries;
  check_int "mutual exclusion across threads too" 1 !max_active

(* ------------------------------------------------------------------ *)
(* Fault injection: extreme reordering via link pauses                 *)
(* ------------------------------------------------------------------ *)

let test_mixed_consistency_under_link_pauses () =
  (* run random programs while randomly pausing and resuming links: the
     recorded histories must stay well-formed and mixed consistent *)
  for seed = 1 to 10 do
    let rng = Mc_util.Rng.make (7000 + seed) in
    let procs = 3 in
    let engine = Engine.create () in
    let cfg = { (Config.default ~procs) with record = true } in
    let rt = Runtime.create engine cfg in
    let net = Runtime.network rt in
    let next_value = ref 0 in
    for i = 0 to procs - 1 do
      let plan =
        List.init 10 (fun _ ->
            let loc = Mc_util.Rng.pick rng [| "fa"; "fb" |] in
            if Mc_util.Rng.bool rng then begin
              incr next_value;
              `W (loc, !next_value)
            end
            else `R (loc, Mc_util.Rng.bool rng))
      in
      Runtime.spawn_process rt i (fun p ->
          List.iter
            (function
              | `W (loc, v) -> Runtime.write p loc v
              | `R (loc, causal) ->
                ignore
                  (Runtime.read p
                     ~label:(if causal then Op.Causal else Op.PRAM)
                     loc))
            plan)
    done;
    (* random pause/resume schedule on random links *)
    for _ = 1 to 4 do
      let src = Mc_util.Rng.int rng procs and dst = Mc_util.Rng.int rng procs in
      if src <> dst then begin
        let t_pause = Mc_util.Rng.float rng 5. in
        let t_resume = t_pause +. Mc_util.Rng.float rng 500. in
        Engine.schedule engine ~delay:t_pause (fun () ->
            Network.pause_link net ~src ~dst);
        Engine.schedule engine ~delay:t_resume (fun () ->
            Network.resume_link net ~src ~dst)
      end
    done;
    ignore (Runtime.run rt);
    let h = Runtime.history rt in
    check (Printf.sprintf "well-formed under faults (seed %d)" seed) true
      (History.is_well_formed h);
    check
      (Printf.sprintf "mixed consistent under faults (seed %d)" seed)
      true
      (Mixed.is_mixed_consistent h)
  done

(* ------------------------------------------------------------------ *)
(* Entry consistency (Section 2, Midway)                               *)
(* ------------------------------------------------------------------ *)

let test_entry_mode_transfers_values () =
  let engine = Engine.create () in
  let cfg =
    { (Config.default ~procs:3) with propagation = Config.Entry; record = true }
  in
  let rt = Runtime.create engine cfg in
  let net = Runtime.network rt in
  let seen = ref (-1) in
  Runtime.spawn_process rt 0 (fun p ->
      Runtime.write_lock p "g";
      Runtime.write p "guarded" 42;
      Runtime.write_unlock p "g");
  Runtime.spawn_process rt 1 (fun p ->
      Runtime.compute p 500.;
      Runtime.write_lock p "g";
      seen := Runtime.read p "guarded";
      Runtime.write_unlock p "g");
  Runtime.spawn_process rt 2 (fun _ -> ());
  ignore (Runtime.run rt);
  check_int "value arrives with the grant" 42 !seen;
  (* no update broadcasts at all: only lock control traffic *)
  let kinds = Network.messages_by_kind net in
  check_int "no update broadcasts" 0
    (Option.value ~default:0 (List.assoc_opt "update" kinds));
  let h = Runtime.history rt in
  check "well-formed" true (History.is_well_formed h);
  check "mixed consistent" true (Mixed.is_mixed_consistent h);
  check "entry-consistent program (Cor. 1)" true
    (Mc_consistency.Program_class.is_entry_consistent h)

let test_entry_mode_accumulates_across_holders () =
  (* the second holder sees the first holder's value even though it was
     never broadcast; a third holder sees the second's overwrite *)
  let engine = Engine.create () in
  let cfg = { (Config.default ~procs:3) with propagation = Config.Entry } in
  let rt = Runtime.create engine cfg in
  let observed = Array.make 3 (-1) in
  for i = 0 to 2 do
    Runtime.spawn_process rt i (fun p ->
        Runtime.compute p (float_of_int i *. 400.);
        Runtime.write_lock p "g";
        observed.(i) <- Runtime.read p "acc";
        Runtime.write p "acc" (observed.(i) + 10);
        Runtime.write_unlock p "g")
  done;
  ignore (Runtime.run rt);
  Alcotest.(check (array int)) "chain of critical sections" [| 0; 10; 20 |] observed

let test_entry_mode_counters () =
  (* decrements inside entry critical sections are serialized by the lock
     and travel with it *)
  let engine = Engine.create () in
  let cfg = { (Config.default ~procs:2) with propagation = Config.Entry } in
  let rt = Runtime.create engine cfg in
  let final = ref (-1) in
  for i = 0 to 1 do
    Runtime.spawn_process rt i (fun p ->
        Runtime.compute p (float_of_int i *. 300.);
        Runtime.write_lock p "g";
        if i = 0 then Runtime.init_counter p "c" 10
        else begin
          Runtime.decrement p "c" ~amount:3;
          final := Runtime.read p "c"
        end;
        Runtime.write_unlock p "g")
  done;
  ignore (Runtime.run rt);
  check_int "decrement under entry lock" 7 !final

(* ------------------------------------------------------------------ *)
(* Multicast routing (Section 6, Maya optimization)                    *)
(* ------------------------------------------------------------------ *)

let em_params = { Mc_apps.Em_field.rows = 12; cols = 6; steps = 5; seed = 5 }

let run_em ~procs ~multicast =
  let engine = Engine.create () in
  let cfg =
    {
      (Config.default ~procs) with
      timestamped_updates = false;
      multicast =
        (if multicast then Some (Mc_apps.Em_field.subscriptions ~procs) else None);
    }
  in
  let rt = Runtime.create engine cfg in
  let res = Mc_apps.Em_field.launch ~spawn:(Api.spawn rt) ~procs em_params in
  ignore (Runtime.run rt);
  (Option.get !res, Network.messages_sent (Runtime.network rt))

let test_multicast_exact_and_leaner () =
  let procs = 4 in
  let expected = Mc_apps.Em_field.reference ~procs em_params in
  let r_b, msgs_b = run_em ~procs ~multicast:false in
  let r_m, msgs_m = run_em ~procs ~multicast:true in
  check_int "broadcast exact" expected.Mc_apps.Em_field.checksum
    r_b.Mc_apps.Em_field.checksum;
  check_int "multicast exact" expected.Mc_apps.Em_field.checksum
    r_m.Mc_apps.Em_field.checksum;
  check "multicast sends fewer messages" true (msgs_m < msgs_b)

let test_multicast_count_barrier_gating () =
  (* a subscriber must not pass the barrier before the counted updates
     arrive, even on a slow link *)
  let procs = 2 in
  let lat = [| [| 0.; 500. |]; [| 10.; 0. |] |] in
  let engine = Engine.create () in
  let cfg =
    {
      (Config.default ~procs) with
      timestamped_updates = false;
      multicast = Some (fun loc -> if loc = "mx" then Some [ 1 ] else None);
    }
  in
  let rt = Runtime.create engine ~latency:(Mc_net.Latency.matrix lat) cfg in
  let seen = ref (-1) in
  Runtime.spawn_process rt 0 (fun p ->
      Runtime.write p "mx" 77;
      Runtime.barrier p);
  Runtime.spawn_process rt 1 (fun p ->
      Runtime.barrier p;
      seen := Runtime.read p ~label:Op.PRAM "mx");
  ignore (Runtime.run rt);
  check_int "post-barrier read is fresh despite the slow link" 77 !seen

let test_multicast_restrictions () =
  let engine = Engine.create () in
  let cfg =
    { (Config.default ~procs:2) with multicast = Some (fun _ -> None) }
  in
  let rt = Runtime.create engine cfg in
  Runtime.spawn_process rt 0 (fun p -> ignore (Runtime.read p ~label:Op.Causal "x"));
  (match Runtime.run rt with
  | (_ : float) -> Alcotest.fail "expected causal-read rejection"
  | exception Engine.Fiber_failure (Invalid_argument _, _) -> ());
  let engine = Engine.create () in
  let rt = Runtime.create engine cfg in
  Runtime.spawn_process rt 0 (fun p -> Runtime.write_lock p "m");
  match Runtime.run rt with
  | (_ : float) -> Alcotest.fail "expected lock rejection"
  | exception Engine.Fiber_failure (Invalid_argument _, _) -> ()

(* ------------------------------------------------------------------ *)
(* Rendering                                                           *)
(* ------------------------------------------------------------------ *)

let sample_history () =
  Dsl.make ~procs:2
    [
      [ Dsl.w "x" 1; Dsl.wl ~seq:0 "m"; Dsl.wu ~seq:1 "m"; Dsl.bar 0 ];
      [ Dsl.rc "x" 1; Dsl.bar 0 ];
    ]

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec scan i = i + nn <= nh && (String.sub hay i nn = needle || scan (i + 1)) in
  scan 0

let index_of hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec scan i =
    if i + nn > nh then -1
    else if String.sub hay i nn = needle then i
    else scan (i + 1)
  in
  scan 0

let test_space_time () =
  let s = Mc_history.Render.space_time (sample_history ()) in
  check "has process headers" true (contains s "p0" && contains s "p1");
  check "shows operations" true (contains s "w(x)1" && contains s "rc(x)1");
  (* causality respected vertically: the write row precedes the read row *)
  check "write before read" true (index_of s "w(x)1" < index_of s "rc(x)1")

let test_dot_export () =
  let s = Mc_history.Render.dot (sample_history ()) in
  check "digraph wrapper" true (contains s "digraph history");
  check "clusters per process" true (contains s "cluster_p0" && contains s "cluster_p1");
  check "reads-from edge" true (contains s "rf");
  check "barrier edge" true (contains s "bar")

let test_summary () =
  let s = Mc_history.Render.summary (sample_history ()) in
  check "counts ops" true (contains s "6 operations over 2 processes");
  check "mentions locks" true (contains s "lock")

let () =
  Alcotest.run "extensions"
    [
      ( "group-consistency",
        [
          Alcotest.test_case "spectrum endpoints" `Quick test_group_endpoints;
          Alcotest.test_case "group labels in Definition 4" `Quick
            test_group_label_checked_by_mixed;
          Alcotest.test_case "validation" `Quick test_group_relation_validations;
          Alcotest.test_case "runtime group views" `Quick test_group_views_in_runtime;
          Alcotest.test_case "membership enforced" `Quick
            test_group_read_requires_membership;
          Alcotest.test_case "recorded histories check out" `Quick
            test_group_runtime_history_checks;
        ] );
      ( "subset-barriers",
        [
          Alcotest.test_case "runtime subset barrier" `Quick test_subset_barrier_runtime;
          Alcotest.test_case "model-level ordering" `Quick
            test_subset_barrier_order_in_model;
          Alcotest.test_case "independent episodes" `Quick
            test_subset_barrier_separate_episodes;
          Alcotest.test_case "membership enforced" `Quick
            test_subset_barrier_membership_enforced;
        ] );
      ( "multi-threaded",
        [
          Alcotest.test_case "threads share the replica" `Quick
            test_threads_share_replica;
          Alcotest.test_case "partial program order" `Quick
            test_threads_partial_program_order;
          Alcotest.test_case "lock contention across threads" `Quick
            test_threads_contend_on_one_lock;
        ] );
      ( "fault-injection",
        [
          Alcotest.test_case "mixed consistency under link pauses" `Slow
            test_mixed_consistency_under_link_pauses;
        ] );
      ( "async-relaxation",
        [
          Alcotest.test_case "converges with PRAM" `Quick test_async_converges_with_pram;
          Alcotest.test_case "adverse latency" `Quick test_async_under_adverse_latency;
        ] );
      ( "entry-consistency",
        [
          Alcotest.test_case "values ride the lock" `Quick
            test_entry_mode_transfers_values;
          Alcotest.test_case "accumulates across holders" `Quick
            test_entry_mode_accumulates_across_holders;
          Alcotest.test_case "counters under entry locks" `Quick
            test_entry_mode_counters;
        ] );
      ( "multicast",
        [
          Alcotest.test_case "exact and leaner" `Quick test_multicast_exact_and_leaner;
          Alcotest.test_case "count-vector barrier gating" `Quick
            test_multicast_count_barrier_gating;
          Alcotest.test_case "mode restrictions" `Quick test_multicast_restrictions;
        ] );
      ( "render",
        [
          Alcotest.test_case "space-time diagram" `Quick test_space_time;
          Alcotest.test_case "dot export" `Quick test_dot_export;
          Alcotest.test_case "summary" `Quick test_summary;
        ] );
    ]
