module Summary = struct
  type t = {
    mutable count : int;
    mutable mean : float;
    mutable m2 : float;
    mutable min : float;
    mutable max : float;
    mutable total : float;
  }

  let create () =
    { count = 0; mean = 0.; m2 = 0.; min = infinity; max = neg_infinity; total = 0. }

  let add t x =
    t.count <- t.count + 1;
    t.total <- t.total +. x;
    let delta = x -. t.mean in
    t.mean <- t.mean +. (delta /. float_of_int t.count);
    t.m2 <- t.m2 +. (delta *. (x -. t.mean));
    if x < t.min then t.min <- x;
    if x > t.max then t.max <- x

  let count t = t.count
  let mean t = if t.count = 0 then 0. else t.mean

  let stddev t =
    if t.count < 2 then 0. else sqrt (t.m2 /. float_of_int (t.count - 1))

  let min t = if t.count = 0 then 0. else t.min
  let max t = if t.count = 0 then 0. else t.max
  let total t = t.total

  let pp fmt t =
    Format.fprintf fmt "n=%d mean=%.3f sd=%.3f min=%.3f max=%.3f" t.count (mean t)
      (stddev t) (min t) (max t)
end

module Counters = struct
  type t = (string, int ref) Hashtbl.t

  let create () : t = Hashtbl.create 16

  let cell t name =
    match Hashtbl.find_opt t name with
    | Some r -> r
    | None ->
      let r = ref 0 in
      Hashtbl.add t name r;
      r

  let counter = cell

  let add t name k =
    let r = cell t name in
    r := !r + k

  let incr t name = add t name 1
  let get t name = match Hashtbl.find_opt t name with Some r -> !r | None -> 0

  let to_list t =
    Hashtbl.fold (fun name r acc -> (name, !r) :: acc) t []
    |> List.sort (fun (a, _) (b, _) -> String.compare a b)

  let merge a b = List.iter (fun (name, k) -> add a name k) (to_list b)

  let pp fmt t =
    let pairs = to_list t in
    Format.fprintf fmt "@[<v>";
    List.iter (fun (name, k) -> Format.fprintf fmt "%s=%d@ " name k) pairs;
    Format.fprintf fmt "@]"
end
