(** Streaming statistics accumulators and counters, used by the network
    and DSM layers to report message counts, bytes, and latencies. *)

(** Welford-style streaming summary of a sequence of floats. *)
module Summary : sig
  type t

  val create : unit -> t
  val add : t -> float -> unit
  val count : t -> int
  val mean : t -> float
  val stddev : t -> float
  val min : t -> float
  val max : t -> float
  val total : t -> float

  (** [pp] prints "n=.. mean=.. sd=.. min=.. max=..". *)
  val pp : Format.formatter -> t -> unit
end

(** Named integer counters. *)
module Counters : sig
  type t

  val create : unit -> t

  (** [counter t name] is the live cell behind [name], created at zero on
      first use. Callers on hot paths cache it to skip the per-increment
      hash lookup; increments through the cell and through {!incr}/{!add}
      are interchangeable. *)
  val counter : t -> string -> int ref

  val incr : t -> string -> unit
  val add : t -> string -> int -> unit
  val get : t -> string -> int
  val to_list : t -> (string * int) list

  (** [merge a b] adds all of [b]'s counters into [a]. *)
  val merge : t -> t -> unit

  val pp : Format.formatter -> t -> unit
end
