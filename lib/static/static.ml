(* The [Mc_static] driver (ISSUE 6 tentpole, part 5): runs the whole
   pipeline — summary, skeleton, race detection, classification — over
   one IR program and renders the result as S0xx diagnostics, a
   human-readable report or JSON. Nothing here executes the program:
   every judgement holds at every parameter valuation. *)

module Diag = Mc_analysis.Diag

type report = {
  program : string;
  verdict : Classify.verdict;
  verdict_proof : string;
  srace : Srace.t;
  reads : Classify.read_report list;
  lattice : Classify.lattice_report;
  diags : Diag.t list;
}

let strictly_stronger ~declared ~inferred =
  Classify.label_geq ~declared ~inferred
  && not (Classify.label_geq ~declared:inferred ~inferred:declared)

let diags_of prog (sr : Srace.t) (cl : Classify.t) =
  let races =
    List.map
      (fun (p : Srace.pair) ->
        Diag.make ~rule:"S001" ~severity:Diag.Error
          ~loc:p.Srace.pa.Summary.loc.Pir.base ~site:p.Srace.pa.Summary.site
          (Printf.sprintf
             "conflicting accesses %s (%s) and %s (%s) have no ordering \
              witness at some parameters"
             p.Srace.pa.Summary.site
             (Summary.kind_to_string p.Srace.pa.Summary.kind)
             p.Srace.pb.Summary.site
             (Summary.kind_to_string p.Srace.pb.Summary.kind)))
      sr.Srace.races
  in
  let uncovered =
    List.map
      (fun base ->
        Diag.make ~rule:"S002" ~severity:Diag.Warning ~loc:base
          (Printf.sprintf
             "shared base %s is written by several processes but no \
              single lock discipline guards every access" base))
      sr.Srace.uncovered
  in
  let verdict =
    match cl.Classify.verdict with
    | Classify.Unproved _ ->
      [ Diag.make ~rule:"S004" ~severity:Diag.Warning
          ?site:(Option.map fst cl.Classify.failing)
          cl.Classify.verdict_proof ]
    | _ ->
      [ Diag.make ~rule:"S003" ~severity:Diag.Info
          (Printf.sprintf "%s: %s"
             (Classify.verdict_to_string cl.Classify.verdict)
             cl.Classify.verdict_proof) ]
  in
  let labels =
    List.filter_map
      (fun (rr : Classify.read_report) ->
        let declared = rr.Classify.declared
        and inferred = rr.Classify.inferred in
        if not (Classify.label_geq ~declared ~inferred) then
          Some
            (Diag.make ~rule:"S006" ~severity:Diag.Warning
               ~loc:rr.Classify.racc.Summary.loc.Pir.base
               ~site:rr.Classify.racc.Summary.site
               (Printf.sprintf
                  "read declares %s but needs %s at some parameters (%s)"
                  (Pir.label_to_string declared)
                  (Pir.label_to_string inferred)
                  rr.Classify.rproof))
        else if strictly_stronger ~declared ~inferred then
          Some
            (Diag.make ~rule:"S005" ~severity:Diag.Info
               ~loc:rr.Classify.racc.Summary.loc.Pir.base
               ~site:rr.Classify.racc.Summary.site
               (Printf.sprintf
                  "read declares %s where %s suffices at every parameter \
                   (%s)"
                  (Pir.label_to_string declared)
                  (Pir.label_to_string inferred)
                  rr.Classify.rproof))
        else None)
      cl.Classify.reads
  in
  let gates =
    List.map
      (fun site ->
        Diag.make ~rule:"S007" ~severity:Diag.Info ~site
          (Printf.sprintf
             "await at %s treated as ordered after its lock-serialized \
              gating writes (terminal-value assumption)" site))
      sr.Srace.gate_sites
  in
  ignore prog;
  List.sort Diag.compare (races @ uncovered @ verdict @ labels @ gates)

let analyze (prog : Pir.t) =
  let summary = Summary.build prog in
  let actx = Summary.actx_create summary in
  let skel = Skeleton.build actx in
  let sr = Srace.analyze actx skel in
  let cl = Classify.classify sr in
  {
    program = prog.Pir.name;
    verdict = cl.Classify.verdict;
    verdict_proof = cl.Classify.verdict_proof;
    srace = sr;
    reads = cl.Classify.reads;
    lattice = Classify.infer_lattice sr cl;
    diags = diags_of prog sr cl;
  }

let has_errors r =
  List.exists (fun (d : Diag.t) -> d.Diag.severity = Diag.Error) r.diags

let count sev r =
  List.length (List.filter (fun (d : Diag.t) -> d.Diag.severity = sev) r.diags)

(* ------------------------------------------------------------------ *)
(* Rendering                                                           *)
(* ------------------------------------------------------------------ *)

let pp ?(proof = false) ?(lattice = false) fmt r =
  Format.fprintf fmt "%s: %s@." r.program
    (Classify.verdict_to_string r.verdict);
  if proof then begin
    Format.fprintf fmt "  %s@." r.verdict_proof;
    List.iter
      (fun (rr : Classify.read_report) ->
        Format.fprintf fmt "  read %s: declared %s, inferred %s — %s@."
          rr.Classify.racc.Summary.site
          (Pir.label_to_string rr.Classify.declared)
          (Pir.label_to_string rr.Classify.inferred)
          rr.Classify.rproof)
      r.reads
  end;
  if lattice then begin
    let l = r.lattice in
    Format.fprintf fmt "  weakest model: %s@."
      (Classify.lmodel_to_string l.Classify.weakest);
    List.iter
      (fun (rm : Classify.read_model) ->
        Format.fprintf fmt "  read %s: %s — %s@."
          rm.Classify.rm_acc.Summary.site
          (Classify.lmodel_to_string rm.Classify.rm_model)
          rm.Classify.rm_proof)
      l.Classify.read_models;
    List.iter
      (fun (a : Classify.axiom_req) ->
        Format.fprintf fmt "  axiom %-4s %-12s %s — %s%s@." a.Classify.axiom
          a.Classify.level
          (if a.Classify.needed then "needed" else "not needed")
          a.Classify.reason
          (match a.Classify.sites with
          | [] -> ""
          | sites -> " [" ^ String.concat "; " sites ^ "]"))
      l.Classify.axioms
  end;
  List.iter (fun d -> Format.fprintf fmt "%a@." Diag.pp d) r.diags;
  Format.fprintf fmt "%s: %d error(s), %d warning(s), %d info@." r.program
    (count Diag.Error r) (count Diag.Warning r) (count Diag.Info r)

let json_escape s =
  let b = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | c when Char.code c < 0x20 ->
        Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let to_json r =
  let reads =
    List.map
      (fun (rr : Classify.read_report) ->
        Printf.sprintf
          "{\"site\":\"%s\",\"declared\":\"%s\",\"inferred\":\"%s\",\"proof\":\"%s\"}"
          (json_escape rr.Classify.racc.Summary.site)
          (json_escape (Pir.label_to_string rr.Classify.declared))
          (json_escape (Pir.label_to_string rr.Classify.inferred))
          (json_escape rr.Classify.rproof))
      r.reads
  in
  let verdict =
    match r.verdict with
    | Classify.Corollary2 -> "corollary2"
    | Classify.Corollary1 -> "corollary1"
    | Classify.Theorem1 -> "theorem1"
    | Classify.Unproved _ -> "unproved"
  in
  let lattice =
    let l = r.lattice in
    let rms =
      List.map
        (fun (rm : Classify.read_model) ->
          Printf.sprintf "{\"site\":\"%s\",\"model\":\"%s\",\"proof\":\"%s\"}"
            (json_escape rm.Classify.rm_acc.Summary.site)
            (json_escape (Classify.lmodel_to_string rm.Classify.rm_model))
            (json_escape rm.Classify.rm_proof))
        l.Classify.read_models
    in
    let axioms =
      List.map
        (fun (a : Classify.axiom_req) ->
          Printf.sprintf
            "{\"axiom\":\"%s\",\"level\":\"%s\",\"needed\":%b,\"reason\":\"%s\",\"sites\":[%s]}"
            (json_escape a.Classify.axiom)
            (json_escape a.Classify.level)
            a.Classify.needed
            (json_escape a.Classify.reason)
            (String.concat ","
               (List.map
                  (fun s -> Printf.sprintf "\"%s\"" (json_escape s))
                  a.Classify.sites)))
        l.Classify.axioms
    in
    Printf.sprintf
      "{\"weakest\":\"%s\",\"reads\":[%s],\"axioms\":[%s]}"
      (json_escape (Classify.lmodel_to_string l.Classify.weakest))
      (String.concat "," rms)
      (String.concat "," axioms)
  in
  Printf.sprintf
    "{\"program\":\"%s\",\"verdict\":\"%s\",\"proof\":\"%s\",\"races\":%d,\"reads\":[%s],\"lattice\":%s,\"diagnostics\":[%s]}"
    (json_escape r.program) verdict (json_escape r.verdict_proof)
    (List.length r.srace.Srace.races)
    (String.concat "," reads)
    lattice
    (String.concat "," (List.map Diag.to_json r.diags))
