(* The static race detector (ISSUE 6 tentpole, part 4a).

   Every conflicting access pair that can collide on a concrete location
   at some parameter valuation must be proved happens-before ordered in
   every execution, or it is reported as a static race (S001). Ordering
   witnesses are tried from cheapest to most precise:

   - [W_phase]: the accesses provably sit in different barrier phases of
     a barrier-aligned program whenever their locations collide, so the
     global barrier chain orders each occurrence pair.
   - [W_lock]: both sides hold the same concrete lock (indices forced
     equal by the location unifier) with at least one side in [W] mode,
     so their critical sections are serialized.
   - [W_gate]: an await against a write serialized by a consistent
     [W]-lock discipline over the awaited base; the await only proceeds
     on the gated terminal value, so it is ordered after every gating
     epoch. This is the one assumption-bearing rule (S007): the awaited
     value being terminal is taken from the program structure, not
     proved, and is validated differentially.
   - [W_skeleton]: the await-handshake skeleton proves every occurrence
     pair ordered at every parameter valuation ({!Skeleton.ordered}).

   The detector is a sound over-approximation: a pair with no witness is
   [W_unordered] even if some scheduler happens to order it, so every
   dynamic R001 at any concretization has a static S001 counterpart.

   The same module hosts the must-lockset discipline check behind S002
   (the static mirror of the dynamic Eraser-style R002): a shared,
   modified base is covered when one lock base guards every non-await
   access with sufficient mode and provably identical indices whenever
   two accesses collide. *)

type witness =
  | W_phase
  | W_lock of string
  | W_gate
  | W_skeleton
  | W_unordered

let witness_to_string = function
  | W_phase -> "barrier phase"
  | W_lock l -> Printf.sprintf "lock %s" l
  | W_gate -> "gated await"
  | W_skeleton -> "sync skeleton"
  | W_unordered -> "unordered"

type pair = {
  pa : Summary.access;
  pia : Summary.inst;
  pb : Summary.access;
  pib : Summary.inst;
  pwitness : witness;
}

type t = {
  actx : Summary.actx;
  skel : Skeleton.t;
  aligned : bool;
  pairs : pair list;
  races : pair list;
  uncovered : string list;
  gate_sites : string list;
}

(* ------------------------------------------------------------------ *)
(* Witness rules                                                       *)
(* ------------------------------------------------------------------ *)

let forced_eqs ctx eqs diffs =
  List.for_all (fun d -> Sym.forced_zero_given ctx eqs d) diffs

(* both sides hold the same concrete lock, not both in read mode *)
let lock_witness actx eqs (x : Summary.iaccess) (y : Summary.iaccess) =
  let ctx = actx.Summary.ctx in
  List.find_map
    (fun (bx, ix, mx) ->
      List.find_map
        (fun (by, iy, my) ->
          if
            bx = by
            && List.length ix = List.length iy
            && not (mx = Pir.R && my = Pir.R)
            && forced_eqs ctx eqs (List.map2 Sym.sub ix iy)
          then Some bx
          else None)
        y.Summary.ilocks)
    x.Summary.ilocks

(* [gate_witness]: [aw] is an await on some base, [w] a write to it that
   can collide ([eqs_w]). The await is ordered after [w] when [w] holds
   a [W] lock and every other write that can collide with the same await
   occurrence holds a [W] lock on the same base with indices forced
   equal under the combined unifier — i.e. all writes to the awaited
   concrete location are serialized by one concrete lock, and the await
   completes only after the terminal epoch (assumption S007). *)
let gate_witness actx eqs_w (aw : Summary.iaccess) (w : Summary.iaccess) =
  let ctx = actx.Summary.ctx in
  let base = aw.Summary.acc.Summary.loc.Pir.base in
  List.exists
    (fun (lb, li, m) ->
      m = Pir.W
      && List.for_all
           (fun (w' : Summary.access) ->
             if (not (Summary.is_write w')) || w'.Summary.loc.Pir.base <> base
             then true
             else
               List.for_all
                 (fun inst' ->
                   let iw' = Summary.instantiate actx w' inst' in
                   match Summary.loc_eqs aw iw' with
                   | None -> true
                   | Some eqs' ->
                     let combined = eqs_w @ eqs' in
                     (not (Sym.satisfiable ctx combined))
                     || List.exists
                          (fun (lb', li', m') ->
                            lb' = lb && m' = Pir.W
                            && List.length li' = List.length li
                            && forced_eqs ctx combined
                                 (List.map2 Sym.sub li li'))
                          iw'.Summary.ilocks)
                 (Summary.insts_of_role actx w'.Summary.role))
           actx.Summary.summary.Summary.accesses)
    w.Summary.ilocks

let witness_of actx skel ~aligned (a : Summary.access) ia
    (b : Summary.access) ib =
  let ctx = actx.Summary.ctx in
  let xa = Summary.instantiate actx a ia in
  let xb = Summary.instantiate actx b ib in
  match Summary.loc_eqs xa xb with
  | None -> None (* bases or arities never match: no conflict *)
  | Some eqs ->
    if not (Sym.satisfiable ctx eqs) then None
    else if
      aligned
      && Sym.nonzero_given ctx eqs
           (Sym.sub xa.Summary.iphase xb.Summary.iphase)
    then Some W_phase
    else (
      match lock_witness actx eqs xa xb with
      | Some l -> Some (W_lock l)
      | None ->
        let gated =
          if Summary.is_await a && Summary.is_write b then
            gate_witness actx eqs xa xb
          else if Summary.is_await b && Summary.is_write a then
            gate_witness actx (List.map Sym.neg eqs) xb xa
          else false
        in
        if gated then Some W_gate
        else if
          Skeleton.ordered skel a ia b ib || Skeleton.ordered skel b ib a ia
        then Some W_skeleton
        else Some W_unordered)

(* ------------------------------------------------------------------ *)
(* Lockset discipline (S002)                                           *)
(* ------------------------------------------------------------------ *)

let accesses_of_base actx base =
  List.filter
    (fun (a : Summary.access) ->
      a.Summary.loc.Pir.base = base && not (Summary.is_await a))
    actx.Summary.summary.Summary.accesses

(* instance pairs whose collisions matter for lock-index agreement:
   cross-instance pairs plus the same-instance pair (two loop iterations
   of one process can reach the same location and must then agree too,
   since the dynamic candidate set intersects over every access) *)
let coverage_inst_pairs actx ra rb =
  let cross = Summary.distinct_inst_pairs actx ra rb in
  if ra = rb then
    match Summary.insts_of_role actx ra with
    | i :: _ -> (i, i) :: cross
    | [] -> cross
  else cross

(* a base is shared when, at some parameter valuation, processes of more
   than one identity can access it: two roles, or one span role *)
let shared_base actx base =
  let roles =
    List.sort_uniq compare
      (List.map (fun (a : Summary.access) -> a.Summary.role)
         (accesses_of_base actx base))
  in
  let insts =
    List.concat_map (fun r -> Summary.insts_of_role actx r) roles
  in
  List.length insts >= 2

let modified_base actx base =
  List.exists Summary.is_write (accesses_of_base actx base)

(* every non-await access to [base] holds a lock on one common lock base
   (mode [W] for writes) whose indices are forced equal whenever two
   accesses collide: then every concrete location of the base has a
   non-empty candidate lockset at every concretization *)
let covered_base actx base =
  let ctx = actx.Summary.ctx in
  let members = accesses_of_base actx base in
  match members with
  | [] -> true
  | first :: _ ->
    let sufficient (a : Summary.access) (_, _, m) =
      (not (Summary.is_write a)) || m = Pir.W
    in
    let candidates =
      List.filter_map
        (fun ((l : Pir.locpat), m) ->
          if sufficient first (l.Pir.base, (), m) then Some l.Pir.base
          else None)
        first.Summary.locks
    in
    List.exists
      (fun lb ->
        let lock_on (x : Summary.iaccess) =
          List.find_opt (fun (b, _, _) -> b = lb) x.Summary.ilocks
        in
        (* every member holds [lb] with sufficient mode *)
        List.for_all
          (fun (a : Summary.access) ->
            List.exists
              (fun ((l : Pir.locpat), m) ->
                l.Pir.base = lb && sufficient a ((), (), m))
              a.Summary.locks)
          members
        (* and colliding members hold the same concrete lock *)
        && List.for_all
             (fun (a : Summary.access) ->
               List.for_all
                 (fun (b : Summary.access) ->
                   a.Summary.aid > b.Summary.aid
                   || List.for_all
                        (fun (ia, ib) ->
                          let xa = Summary.instantiate actx a ia in
                          let xb = Summary.instantiate actx b ib in
                          match Summary.loc_eqs xa xb with
                          | None -> true
                          | Some eqs ->
                            (not (Sym.satisfiable ctx eqs))
                            ||
                            (match (lock_on xa, lock_on xb) with
                            | Some (_, la, _), Some (_, lb', _) ->
                              List.length la = List.length lb'
                              && forced_eqs ctx eqs
                                   (List.map2 Sym.sub la lb')
                            | _ -> false))
                        (coverage_inst_pairs actx a.Summary.role
                           b.Summary.role))
                 members)
             members)
      candidates

(* ------------------------------------------------------------------ *)
(* Driver                                                              *)
(* ------------------------------------------------------------------ *)

let analyze actx skel =
  let s = actx.Summary.summary in
  let aligned =
    match Summary.alignment actx with Ok _ -> true | Error _ -> false
  in
  let pairs = ref [] in
  let gate_sites = Hashtbl.create 8 in
  List.iter
    (fun (a : Summary.access) ->
      List.iter
        (fun (b : Summary.access) ->
          if a.Summary.aid <= b.Summary.aid && Summary.kinds_conflict a b
          then
            List.iter
              (fun (ia, ib) ->
                match witness_of actx skel ~aligned a ia b ib with
                | None -> ()
                | Some w ->
                  (if w = W_gate then
                     let site =
                       if Summary.is_await a then a.Summary.site
                       else b.Summary.site
                     in
                     Hashtbl.replace gate_sites site ());
                  pairs :=
                    { pa = a; pia = ia; pb = b; pib = ib; pwitness = w }
                    :: !pairs)
              (Summary.distinct_inst_pairs actx a.Summary.role
                 b.Summary.role))
        s.Summary.accesses)
    s.Summary.accesses;
  let pairs = List.rev !pairs in
  let races = List.filter (fun p -> p.pwitness = W_unordered) pairs in
  let bases =
    List.sort_uniq compare
      (List.filter_map
         (fun (a : Summary.access) ->
           if Summary.is_await a then None
           else Some a.Summary.loc.Pir.base)
         s.Summary.accesses)
  in
  let uncovered =
    List.filter
      (fun b ->
        shared_base actx b && modified_base actx b
        && not (covered_base actx b))
      bases
  in
  {
    actx;
    skel;
    aligned;
    pairs;
    races;
    uncovered;
    gate_sites =
      List.sort compare (Hashtbl.fold (fun k () acc -> k :: acc) gate_sites []);
  }
