(** Sync skeletons (ISSUE 6 tentpole, part 3): a symbolic happens-before
    summary derived from the program's await/handshake structure,
    parametric in process count and iteration bounds.

    Top-level await-containing loops are unrolled over a window of
    {!window} iterations based at a symbolic iteration, roles are
    instantiated at their generic instances, and await edges are added
    only from a provably {e unique} supplying write (mirroring the
    dynamic [await_order]). {!ordered} then proves a conflicting pair
    ordered for {e all} parameters via the grid-lifting rule: boundary
    window offsets must be ordered outward — extendable by program-order
    tails — and nearer offsets in some direction. *)

val window : int

type node

type t

val build : Summary.actx -> t

(** [ordered t ?filter a ia b ib]: every dynamic occurrence pair of
    access [a] (on instance [ia]) and [b] (on [ib]) is happens-before
    ordered, in every execution and at every parameter valuation.
    [filter] restricts usable await edges by the two endpoint process
    terms (used for group-visibility label inference); program order
    always passes. *)
val ordered :
  t ->
  ?filter:(Sym.t -> Sym.t -> bool) ->
  Summary.access ->
  Summary.inst ->
  Summary.access ->
  Summary.inst ->
  bool

val await_edge_count : t -> int
