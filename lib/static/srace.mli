(** Static race detection and lockset discipline (ISSUE 6 tentpole,
    part 4a): every conflicting, possibly-colliding access pair must be
    proved ordered by a witness — barrier phase, common lock, gated
    await, or the sync skeleton — or it is a static race (S001). The
    detector over-approximates the dynamic R001/R002 analyses: every
    dynamic race at any concretization has a static counterpart. *)

type witness =
  | W_phase  (** different barrier phases whenever locations collide *)
  | W_lock of string  (** same concrete lock, not both read-mode *)
  | W_gate  (** await after [W]-lock-serialized writes (assumption S007) *)
  | W_skeleton  (** proved by {!Skeleton.ordered} *)
  | W_unordered  (** no witness: reported as S001 *)

val witness_to_string : witness -> string

type pair = {
  pa : Summary.access;
  pia : Summary.inst;
  pb : Summary.access;
  pib : Summary.inst;
  pwitness : witness;
}

type t = {
  actx : Summary.actx;
  skel : Skeleton.t;
  aligned : bool;  (** barrier-aligned ({!Summary.alignment}) *)
  pairs : pair list;  (** every colliding conflict pair, with witness *)
  races : pair list;  (** the [W_unordered] subset *)
  uncovered : string list;  (** shared modified bases behind S002 *)
  gate_sites : string list;  (** await sites relying on S007 *)
}

val analyze : Summary.actx -> Skeleton.t -> t

(** {1 Discipline helpers, shared with {!Classify}} *)

val shared_base : Summary.actx -> string -> bool
val modified_base : Summary.actx -> string -> bool

(** One lock base guards every non-await access to the base ([W] mode
    for writes) with indices forced equal whenever accesses collide. *)
val covered_base : Summary.actx -> string -> bool
