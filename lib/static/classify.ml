(* The static theorem classifier and weakest-label inference (ISSUE 6
   tentpole, part 4b).

   [classify] tries the paper's SC results in order of label strength:

   - Corollary 2 (PRAM phases): a barrier-aligned program without awaits
     or fetch-adds in which every shared location is written at most
     once per barrier phase, and read within the writing phase only by
     its writer, after the write. PRAM reads then suffice for SC, at
     every parameter valuation.
   - Corollary 1 (entry consistency): every shared base guarded by a
     single lock discipline (W mode for writes) and every static race
     discharged; causal labels on shared reads then give SC.
   - Theorem 1: no static races and every declared label at least as
     strong as the inferred requirement.

   The per-read weakest-label inference mirrors the dynamic advisor's
   precedence exactly — this is what makes the differential property
   "static label ≥ dynamic recommendation" hold:

   - Corollary-2 programs: PRAM everywhere (the advisor's [pramc]
     branch).
   - Corollary-1 programs: causal on shared reads (the advisor
     recommends causal on entry-consistent histories even where PRAM
     would validate).
   - otherwise per read: a lock-, gate- or unordered-witnessed conflict
     forces causal (reduced lock chains are not visible to the reader
     across non-adjacent epochs under PRAM); all-barrier conflicts allow
     PRAM (barrier chains route through the reader's own barrier ops);
     skeleton-witnessed conflicts are re-proved with the await edges
     restricted to a candidate visibility group — the reader alone
     (PRAM) or the reader plus the singleton roles (Group). *)

type verdict = Corollary2 | Corollary1 | Theorem1 | Unproved of string

let verdict_to_string = function
  | Corollary2 -> "SC by Corollary 2 (PRAM phases)"
  | Corollary1 -> "SC by Corollary 1 (entry consistency)"
  | Theorem1 -> "SC by Theorem 1 (mixed labels)"
  | Unproved r -> Printf.sprintf "not proved SC: %s" r

type read_report = {
  racc : Summary.access;
  declared : Pir.rlabel;
  inferred : Pir.rlabel;
  rproof : string;
}

type t = {
  verdict : verdict;
  verdict_proof : string;
  failing : (string * string) option;  (** site pair behind [Unproved] *)
  reads : read_report list;
}

(* ------------------------------------------------------------------ *)
(* Label order                                                         *)
(* ------------------------------------------------------------------ *)

let strength = function Pir.L_pram -> 0 | Pir.L_group _ -> 1 | Pir.L_causal -> 2

let group_strings ts =
  List.sort_uniq compare (List.map Pir.term_to_string ts)

(* [declared] validates whatever [inferred] validates *)
let label_geq ~declared ~inferred =
  match (declared, inferred) with
  | Pir.L_group d, Pir.L_group i ->
    List.for_all (fun t -> List.mem t (group_strings d)) (group_strings i)
  | d, i -> strength d >= strength i

(* ------------------------------------------------------------------ *)
(* Corollary 2: PRAM phase discipline                                  *)
(* ------------------------------------------------------------------ *)

let no_sync_ops (s : Summary.t) =
  List.for_all
    (fun (a : Summary.access) ->
      match a.Summary.kind with
      | Summary.K_await | Summary.K_fa_read | Summary.K_fa_write -> false
      | _ -> true)
    s.Summary.accesses

(* instance pairs for the phase discipline: cross-instance plus the
   same-instance pair (one process may not write a location twice in a
   phase either) *)
let cor2_inst_pairs actx ra rb =
  let cross = Summary.distinct_inst_pairs actx ra rb in
  if ra = rb then
    match Summary.insts_of_role actx ra with
    | i :: _ -> (i, i) :: cross
    | [] -> cross
  else cross

(* under [sys], the two fresh instantiations of one access on one
   instance denote the same dynamic occurrence: every binder pair is
   forced equal *)
let occ_forced_same ctx sys (x : Summary.iaccess) (y : Summary.iaccess) =
  List.for_all2
    (fun (_, ax) (_, ay) ->
      Sym.forced_zero_given ctx sys (Sym.sub (Sym.atom ax) (Sym.atom ay)))
    x.Summary.ibinders y.Summary.ibinders

(* same-instance write then read: the read provably follows the write in
   program order whenever they collide in one phase — shared enclosing
   binders forced equal and the write positioned earlier *)
let write_then_read ctx sys (w : Summary.iaccess) (r : Summary.iaccess) =
  w.Summary.acc.Summary.pos < r.Summary.acc.Summary.pos
  && List.for_all
       (fun (bs, aw) ->
         match List.assoc_opt bs r.Summary.ibinders with
         | None -> true
         | Some ar ->
           Sym.forced_zero_given ctx sys (Sym.sub (Sym.atom aw) (Sym.atom ar)))
       w.Summary.ibinders

(* one phase-discipline violation, or None *)
let cor2_violation (sr : Srace.t) =
  let actx = sr.Srace.actx in
  let ctx = actx.Summary.ctx in
  let s = actx.Summary.summary in
  let accs = s.Summary.accesses in
  let shared_accs =
    List.filter
      (fun (a : Summary.access) ->
        Srace.shared_base actx a.Summary.loc.Pir.base)
      accs
  in
  let check (a : Summary.access) (b : Summary.access) =
    if not (Summary.kinds_conflict a b) then None
    else
      List.find_map
        (fun (ia, ib) ->
          let xa = Summary.instantiate actx a ia in
          let xb = Summary.instantiate actx b ib in
          match Summary.loc_eqs xa xb with
          | None -> None
          | Some eqs ->
            let sys =
              eqs @ [ Sym.sub xa.Summary.iphase xb.Summary.iphase ]
            in
            if not (Sym.satisfiable ctx sys) then None
            else
              let same_inst =
                Summary.inst_key ia = Summary.inst_key ib
              in
              let ok =
                if Summary.is_write a && Summary.is_write b then
                  (* two writes in one phase: only the literal same
                     occurrence may collide *)
                  a.Summary.aid = b.Summary.aid && same_inst
                  && occ_forced_same ctx sys xa xb
                else if same_inst then
                  (* writer reading its own value, after the write *)
                  if Summary.is_write a then write_then_read ctx sys xa xb
                  else write_then_read ctx sys xb xa
                else false (* read of another process's same-phase write *)
              in
              if ok then None
              else Some (a.Summary.site, b.Summary.site))
        (cor2_inst_pairs actx a.Summary.role b.Summary.role)
  in
  List.find_map
    (fun (a : Summary.access) ->
      List.find_map
        (fun (b : Summary.access) ->
          if a.Summary.aid <= b.Summary.aid then check a b else None)
        shared_accs)
    shared_accs

let cor2_applies (sr : Srace.t) =
  sr.Srace.aligned
  && no_sync_ops sr.Srace.actx.Summary.summary
  &&
  match cor2_violation sr with None -> true | Some _ -> false

(* ------------------------------------------------------------------ *)
(* Corollary 1: entry consistency                                      *)
(* ------------------------------------------------------------------ *)

let shared_bases actx =
  List.sort_uniq compare
    (List.filter_map
       (fun (a : Summary.access) ->
         if Summary.is_await a then None
         else
           let b = a.Summary.loc.Pir.base in
           if Srace.shared_base actx b then Some b else None)
       actx.Summary.summary.Summary.accesses)

let cor1_applies (sr : Srace.t) =
  let actx = sr.Srace.actx in
  sr.Srace.races = []
  && List.for_all (Srace.covered_base actx) (shared_bases actx)
  && List.for_all
       (fun (a : Summary.access) ->
         match a.Summary.kind with
         | Summary.K_read l ->
           (not (Srace.shared_base actx a.Summary.loc.Pir.base))
           || l = Pir.L_causal
         | _ -> true)
       actx.Summary.summary.Summary.accesses

(* ------------------------------------------------------------------ *)
(* Per-read inference                                                  *)
(* ------------------------------------------------------------------ *)

(* await-edge filter: the edge is usable when either endpoint process
   provably belongs to the visibility group *)
let group_filter group p q =
  let mem t = List.exists (Sym.must_equal t) group in
  mem p || mem q

let singleton_roles actx =
  List.filter_map
    (fun (ri : Summary.role_info) ->
      match ri.Summary.range with
      | Pir.Single t -> Some (ri.Summary.rname, t)
      | Pir.Span _ -> None)
    actx.Summary.summary.Summary.roles

(* conflicts of read [r] on instance [inst] *)
let conflicts_of (sr : Srace.t) (r : Summary.access) inst =
  let k = Summary.inst_key inst in
  List.filter_map
    (fun (p : Srace.pair) ->
      if
        p.Srace.pa.Summary.aid = r.Summary.aid
        && Summary.inst_key p.Srace.pia = k
      then Some (p.Srace.pb, p.Srace.pib, p.Srace.pwitness)
      else if
        p.Srace.pb.Summary.aid = r.Summary.aid
        && Summary.inst_key p.Srace.pib = k
      then Some (p.Srace.pa, p.Srace.pia, p.Srace.pwitness)
      else None)
    sr.Srace.pairs

(* the weakest label sufficing for read [r] on one instance *)
let infer_inst (sr : Srace.t) (r : Summary.access) inst =
  let actx = sr.Srace.actx in
  let conflicts = conflicts_of sr r inst in
  if conflicts = [] then (Pir.L_pram, "no conflicting writes")
  else
  let causal =
    List.exists
      (fun (_, _, w) ->
        match w with
        | Srace.W_lock _ | Srace.W_gate | Srace.W_unordered -> true
        | Srace.W_phase | Srace.W_skeleton -> false)
      conflicts
  in
  if causal then
    (Pir.L_causal, "a lock-, gate- or unordered-witnessed conflict")
  else
    let skeletal =
      List.filter_map
        (fun (o, oi, w) ->
          match w with Srace.W_skeleton -> Some (o, oi) | _ -> None)
        conflicts
    in
    if skeletal = [] then
      (Pir.L_pram, "every conflicting write is barrier-ordered")
    else
      let visible group =
        let filter = group_filter group in
        List.for_all
          (fun ((o : Summary.access), oi) ->
            Skeleton.ordered sr.Srace.skel ~filter r inst o oi
            || Skeleton.ordered sr.Srace.skel ~filter o oi r inst)
          skeletal
      in
      if visible [ inst.Summary.iproc ] then
        (Pir.L_pram, "handshake edges incident to the reader suffice")
      else
        let singles = singleton_roles actx in
        let sterms =
          List.map
            (fun (_, t) ->
              Summary.sym_of_term ~binders:[] ~proc:Sym.zero t)
            singles
        in
        if singles <> [] && visible (inst.Summary.iproc :: sterms) then
          ( Pir.L_group (Pir.Proc :: List.map snd singles),
            "handshake edges within the reader's group suffice" )
        else (Pir.L_causal, "ordering needs edges outside any static group")

let join_label a b =
  if strength a >= strength b then
    if strength a = strength b then
      match (a, b) with
      | Pir.L_group ta, Pir.L_group tb ->
        if group_strings ta = group_strings tb then a
        else Pir.L_causal (* incomparable groups: escalate *)
      | _ -> a
    else a
  else b

let infer_read (sr : Srace.t) (r : Summary.access) =
  let actx = sr.Srace.actx in
  match
    List.fold_left
      (fun acc inst ->
        let l, p = infer_inst sr r inst in
        match acc with
        | None -> Some (l, p)
        | Some (lbl, proof) ->
          let j = join_label lbl l in
          if strength j > strength lbl then Some (j, p)
          else Some (lbl, proof))
      None
      (Summary.insts_of_role actx r.Summary.role)
  with
  | Some r -> r
  | None -> (Pir.L_pram, "no instances")

(* ------------------------------------------------------------------ *)
(* Classification                                                      *)
(* ------------------------------------------------------------------ *)

let reads_of actx =
  List.filter_map
    (fun (a : Summary.access) ->
      match a.Summary.kind with
      | Summary.K_read l -> Some (a, l)
      | _ -> None)
    actx.Summary.summary.Summary.accesses

let classify (sr : Srace.t) =
  let actx = sr.Srace.actx in
  let reads = reads_of actx in
  if cor2_applies sr then
    {
      verdict = Corollary2;
      verdict_proof =
        "barrier-aligned, and every shared location is written at most \
         once per phase and read in the writing phase only by its \
         writer, after the write (Corollary 2): PRAM reads give SC at \
         every parameter valuation";
      failing = None;
      reads =
        List.map
          (fun (r, declared) ->
            {
              racc = r;
              declared;
              inferred = Pir.L_pram;
              rproof = "Corollary 2: the program keeps PRAM phases";
            })
          reads;
    }
  else if cor1_applies sr then
    {
      verdict = Corollary1;
      verdict_proof =
        "every shared base is guarded by a single lock discipline and \
         every conflict is discharged (Corollary 1): causal reads of \
         shared data give SC at every parameter valuation";
      failing = None;
      reads =
        List.map
          (fun (r, declared) ->
            let shared =
              Srace.shared_base actx r.Summary.loc.Pir.base
            in
            {
              racc = r;
              declared;
              inferred = (if shared then Pir.L_causal else Pir.L_pram);
              rproof =
                (if shared then
                   "Corollary 1: entry-consistent shared data needs \
                    causal reads"
                 else "private to one process");
            })
          reads;
    }
  else
    let reports =
      List.map
        (fun (r, declared) ->
          let inferred, rproof = infer_read sr r in
          { racc = r; declared; inferred; rproof })
        reads
    in
    if sr.Srace.races <> [] then
      let p = List.hd sr.Srace.races in
      {
        verdict = Unproved "static races remain";
        verdict_proof =
          "a conflicting access pair has no ordering witness; no \
           theorem of the paper applies";
        failing = Some (p.Srace.pa.Summary.site, p.Srace.pb.Summary.site);
        reads = reports;
      }
    else
      match
        List.find_opt
          (fun rr ->
            not (label_geq ~declared:rr.declared ~inferred:rr.inferred))
          reports
      with
      | Some rr ->
        {
          verdict = Unproved "a read is under-labelled";
          verdict_proof =
            Printf.sprintf
              "every conflict is ordered, but the read at %s declares \
               %s where %s is required"
              rr.racc.Summary.site
              (Pir.label_to_string rr.declared)
              (Pir.label_to_string rr.inferred);
          failing = Some (rr.racc.Summary.site, rr.racc.Summary.site);
          reads = reports;
        }
      | None ->
        {
          verdict = Theorem1;
          verdict_proof =
            "every conflicting pair is ordered by a witness and every \
             declared label is at least the inferred requirement \
             (Theorem 1)";
          failing = None;
          reads = reports;
        }

(* ------------------------------------------------------------------ *)
(* Weakest lattice model (ISSUE 7 tentpole, layer 2)                    *)
(* ------------------------------------------------------------------ *)

(* The static mirror of [Mc_consistency.Lattice.t], restricted to the
   points a Pir program can require: groups carry symbolic terms, and
   the session points below PRAM are reachable by *weakening* an
   inferred label when a read provably has no conflicting foreign
   write. [M_session {ryw; mr}] keeps only the selected session
   guarantees; [M_session {false; false}] is the lattice bottom. *)
type lmodel =
  | M_session of { ryw : bool; mr : bool }
  | M_pram
  | M_group of Pir.term list
  | M_causal

let model_strength = function
  | M_session _ -> 0
  | M_pram -> 1
  | M_group _ -> 2
  | M_causal -> 3

let lmodel_to_string = function
  | M_session { ryw; mr } -> (
    match (ryw, mr) with
    | false, false -> "session:none"
    | true, false -> "session:ryw"
    | false, true -> "session:mr"
    | true, true -> "session:ryw,mr")
  | M_pram -> "pram"
  | M_group ts ->
    "group:" ^ String.concat "," (List.map Pir.term_to_string ts)
  | M_causal -> "causal"

let model_leq a b =
  match (a, b) with
  | M_session ga, M_session gb ->
    (ga.ryw <= gb.ryw) && (ga.mr <= gb.mr)
  | M_group ta, M_group tb ->
    List.for_all (fun t -> List.mem t (group_strings tb)) (group_strings ta)
  | _ -> model_strength a <= model_strength b

let model_join a b =
  if model_leq a b then b
  else if model_leq b a then a
  else
    match (a, b) with
    | M_session ga, M_session gb ->
      M_session { ryw = ga.ryw || gb.ryw; mr = ga.mr || gb.mr }
    | (M_group _ | M_session _ | M_pram), (M_group _ | M_session _ | M_pram)
      ->
      M_causal (* incomparable groups: escalate, as [join_label] does *)
    | _ -> M_causal

(* can an own (same-role, same-instance) write alias the read's
   location? Then dropping read-your-writes would let the read miss its
   own process's value. *)
let own_write_overlap (sr : Srace.t) (r : Summary.access) =
  let actx = sr.Srace.actx in
  let ctx = actx.Summary.ctx in
  List.exists
    (fun (w : Summary.access) ->
      Summary.is_write w
      && w.Summary.role = r.Summary.role
      && List.exists
           (fun inst ->
             let xw = Summary.instantiate actx w inst in
             let xr = Summary.instantiate actx r inst in
             match Summary.loc_eqs xw xr with
             | None -> false
             | Some eqs -> Sym.satisfiable ctx eqs)
           (Summary.insts_of_role actx r.Summary.role))
    actx.Summary.summary.Summary.accesses

type read_model = {
  rm_acc : Summary.access;
  rm_model : lmodel;
  rm_proof : string;
}

(* per-read weakest lattice point: the inferred label, weakened below
   PRAM when the read provably has no conflicting foreign write at any
   instance — then its unique candidate writer is model-independent, so
   only the reader's own session guarantees can matter *)
let read_model (sr : Srace.t) (rr : read_report) =
  let actx = sr.Srace.actx in
  let r = rr.racc in
  let conflict_free =
    List.for_all
      (fun inst -> conflicts_of sr r inst = [])
      (Summary.insts_of_role actx r.Summary.role)
  in
  if conflict_free then
    if own_write_overlap sr r then
      {
        rm_acc = r;
        rm_model = M_session { ryw = true; mr = false };
        rm_proof =
          "no conflicting foreign write; an own write may alias, so \
           read-your-writes must hold";
      }
    else
      {
        rm_acc = r;
        rm_model = M_session { ryw = false; mr = false };
        rm_proof =
          "no write conflicts with this read: its candidate writer is \
           the same under every model";
      }
  else
    let m =
      match rr.inferred with
      | Pir.L_pram -> M_pram
      | Pir.L_group ts -> M_group ts
      | Pir.L_causal -> M_causal
    in
    { rm_acc = r; rm_model = m; rm_proof = rr.rproof }

(* one row of the machine-checkable proof trace: which level of one
   lattice axiom the program needs, why, and the read sites that force
   it. The five axioms are exactly the fields of
   [Mc_consistency.Lattice.axioms]; rebuilding a model from the [level]
   column yields [weakest] again (the lattice differential test checks
   this). *)
type axiom_req = {
  axiom : string;  (** po | wi | sync | wo | rt *)
  level : string;
  needed : bool;
  reason : string;
  sites : string list;
}

let axiom_table weakest read_models =
  let sites pred =
    List.sort_uniq compare
      (List.filter_map
         (fun rm ->
           if pred rm.rm_model then Some rm.rm_acc.Summary.site else None)
         read_models)
  in
  let at_least k = sites (fun m -> model_strength m >= k) in
  let po =
    match weakest with
    | M_session { ryw = false; mr = false } ->
      {
        axiom = "po";
        level = "none";
        needed = false;
        reason = "no read depends on any other operation's position";
        sites = [];
      }
    | M_session { ryw; mr } ->
      {
        axiom = "po";
        level = lmodel_to_string (M_session { ryw; mr });
        needed = true;
        reason =
          (if ryw then
             "an own write may alias a later read of the same location \
              (read-your-writes)"
           else "reads must not lose writes an earlier read saw");
        sites =
          sites (function
            | M_session { ryw = r'; mr = m' } -> (r' && ryw) || (m' && mr)
            | _ -> false);
      }
    | _ ->
      {
        axiom = "po";
        level = "global";
        needed = true;
        reason =
          "a read has a conflicting foreign write: the writer's program \
           order must reach the reader";
        sites = at_least 1;
      }
  in
  let wi =
    match weakest with
    | M_causal ->
      {
        axiom = "wi";
        level = "all";
        needed = true;
        reason =
          "a causal read needs writes-into edges between foreign \
           processes (Definition 2)";
        sites = sites (fun m -> model_strength m >= 3);
      }
    | M_group ts ->
      {
        axiom = "wi";
        level = "group:" ^ String.concat "," (List.map Pir.term_to_string ts);
        needed = true;
        reason =
          "a group read needs writes-into edges among its group members \
           (Section 3.2)";
        sites = sites (fun m -> model_strength m >= 2);
      }
    | _ ->
      {
        axiom = "wi";
        level = "reader";
        needed = true;
        reason =
          "every model keeps the reads-from edges incident to the reader";
        sites = [];
      }
  in
  let sync =
    match weakest with
    | M_causal ->
      {
        axiom = "sync";
        level = "all";
        needed = true;
        reason =
          "lock-, gate- or unordered-witnessed conflicts route through \
           synchronization chains between foreign processes";
        sites = sites (fun m -> model_strength m >= 3);
      }
    | M_group ts ->
      {
        axiom = "sync";
        level = "group:" ^ String.concat "," (List.map Pir.term_to_string ts);
        needed = true;
        reason =
          "handshake edges within the reader's group order the \
           skeleton-witnessed conflicts";
        sites = sites (fun m -> model_strength m >= 2);
      }
    | M_pram ->
      {
        axiom = "sync";
        level = "reader";
        needed = true;
        reason =
          "barrier-ordered conflicts route through the reader's own \
           synchronization operations";
        sites = at_least 1;
      }
    | M_session _ ->
      {
        axiom = "sync";
        level = "none";
        needed = false;
        reason = "no conflict needs a synchronization chain";
        sites = [];
      }
  in
  let wo =
    {
      axiom = "wo";
      level = "none";
      needed = false;
      reason =
        "unique writes (Section 3): no read needs a total order over \
         other processes' writes";
      sites = [];
    }
  in
  let rt =
    {
      axiom = "rt";
      level = "none";
      needed = false;
      reason =
        "verdicts are independent of the real-time interleaving; no \
         linearizability constraint";
      sites = [];
    }
  in
  [ po; wi; sync; wo; rt ]

type lattice_report = {
  weakest : lmodel;
  read_models : read_model list;
  axioms : axiom_req list;
}

(* the weakest uniform lattice point the program provably tolerates:
   the join of the per-read requirements (bottom when there are no
   reads) *)
let infer_lattice (sr : Srace.t) (cl : t) =
  let read_models = List.map (read_model sr) cl.reads in
  let weakest =
    List.fold_left
      (fun acc rm -> model_join acc rm.rm_model)
      (M_session { ryw = false; mr = false })
      read_models
  in
  { weakest; read_models; axioms = axiom_table weakest read_models }
