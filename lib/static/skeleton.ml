(* Sync skeletons: a symbolic happens-before summary built from the
   program's await/handshake structure, parametric in process count and
   iteration bounds (ISSUE 6 tentpole, part 3).

   The skeleton instantiates each role at its generic instances (one per
   singleton role, two provably-distinct instances per span role) and
   unrolls every top-level await-containing loop over a window of
   [window] iterations based at a symbolic iteration [τ] — so one graph
   stands for every concretization. Nodes carry resolved symbolic
   locations and values; edges are

     - program order, computed structurally (two nodes of one instance
       compare by unrolled iteration, then by pre-order position, and are
       incomparable under a shared unresolved loop binder), and
     - await edges [W → A]: added only when W is provably the {e unique}
       write that can supply A's awaited value — every other candidate
       write is refuted by location unification, value arithmetic or
       bound reasoning — mirroring the dynamic [await_order] relation.

   A conflicting pair is proved ordered for {e all} iterations by the
   grid-lifting rule: within one loop group, the boundary offsets
   ±(window-1) must be ordered in the outward direction (so program-order
   tails extend the witness to every farther offset), and every nearer
   offset must be ordered in some direction. Reachability is restricted
   to the iteration interval spanned by the endpoints, so a witness never
   routes through iterations that a small concretization lacks. *)

let window = 3

type node = {
  nid : int;
  inst : Summary.inst;
  acc : Summary.access;
  k : int;  (* unrolled copy within the window; 0 outside sync loops *)
  fp : (string * Sym.t) list;  (* For_procs binder site -> process term *)
  group : int option;  (* alignment group of the enclosing sync loop *)
  nloc : Sym.t list option;  (* None when under an unresolved binder *)
  nvalue : Sym.t option;
}

type t = {
  actx : Summary.actx;
  nodes : node array;
  by_acc : (string * int, int list) Hashtbl.t;  (* (inst key, aid) -> nids *)
  await_succ : (int, int list) Hashtbl.t;  (* writer nid -> await nids *)
  await_pred : (int, int) Hashtbl.t;  (* await nid -> supplying writer nid *)
}

(* ------------------------------------------------------------------ *)
(* Alignment groups of top-level sync loops                            *)
(* ------------------------------------------------------------------ *)

type group_info = {
  gid : int;
  glo : Sym.t;
  ghi : Sym.t;
  tau : Sym.t;
  gpos : int;  (* position among the role's top-level sync loops *)
}

(* [lo]/[hi] of a top-level loop may mention only parameters; anything
   else (including the process id) disqualifies the loop from windowed
   unrolling and its accesses stay conservative single nodes *)
let param_only_sym t =
  try
    let dummy = Sym.Avar min_int in
    let s = Summary.sym_of_term ~binders:[] ~proc:(Sym.atom dummy) t in
    if List.mem dummy (Sym.atoms s) then None else Some s
  with Invalid_argument _ -> None

let build_groups (actx : Summary.actx) =
  let prog = actx.summary.prog in
  let table : (string * string, int) Hashtbl.t = Hashtbl.create 8 in
  let defs = ref [] in
  let next = ref 0 in
  List.iter
    (fun (r : Pir.role) ->
      let base = Pir.site_join prog.name r.rname in
      let pos = ref 0 in
      List.iteri
        (fun i (s : Pir.stmt) ->
          match s with
          | Pir.For { lo; hi; body; _ } when Pir.contains_await body -> (
            let bsite = Pir.site_join base (Pir.seg_of_stmt i s) in
            let n = !pos in
            incr pos;
            match (param_only_sym lo, param_only_sym hi) with
            | Some lo_s, Some hi_s -> (
              (* join the n-th sync loop of an earlier role when the
                 bounds provably coincide; otherwise open a new group *)
              match
                List.find_opt
                  (fun g ->
                    g.gpos = n && Sym.must_equal g.glo lo_s
                    && Sym.must_equal g.ghi hi_s)
                  !defs
              with
              | Some g -> Hashtbl.replace table (r.rname, bsite) g.gid
              | None ->
                let tau_atom = Sym.fresh_iter actx.ctx in
                Sym.set_bounds actx.ctx tau_atom
                  ( fst (Sym.eval_bounds actx.ctx lo_s),
                    Option.map
                      (fun h -> h - (window - 1))
                      (snd (Sym.eval_bounds actx.ctx hi_s)) );
                let g =
                  { gid = !next; glo = lo_s; ghi = hi_s;
                    tau = Sym.atom tau_atom; gpos = n }
                in
                incr next;
                defs := g :: !defs;
                Hashtbl.replace table (r.rname, bsite) g.gid)
            | _ -> ())
          | _ -> ())
        r.body)
    prog.roles;
  (table, !defs)

(* ------------------------------------------------------------------ *)
(* Nodes                                                               *)
(* ------------------------------------------------------------------ *)

let rec cartesian = function
  | [] -> [ [] ]
  | choices :: rest ->
    let tails = cartesian rest in
    List.concat_map (fun c -> List.map (fun t -> c :: t) tails) choices

let build (actx : Summary.actx) =
  let groups, defs = build_groups actx in
  let tau_of gid = (List.find (fun g -> g.gid = gid) defs).tau in
  let nodes = ref [] in
  let by_acc = Hashtbl.create 64 in
  let next = ref 0 in
  List.iter
    (fun (inst : Summary.inst) ->
      let ri =
        List.find
          (fun (r : Summary.role_info) -> r.rname = inst.irole)
          actx.summary.roles
      in
      List.iter
        (fun (a : Summary.access) ->
          let group =
            match a.binders with
            | b0 :: _ -> Hashtbl.find_opt groups (inst.irole, b0.bsite)
            | [] -> None
          in
          let ks =
            match group with
            | Some _ -> List.init window (fun k -> k)
            | None -> [ 0 ]
          in
          let fp_choices =
            List.filter_map
              (fun (b : Summary.binder) ->
                match b.bkind with
                | Summary.B_procs { over } ->
                  Some
                    (List.map
                       (fun (oi : Summary.inst) -> (b.bsite, oi.iproc))
                       (Summary.insts_of_role actx over))
                | _ -> None)
              a.binders
          in
          List.iter
            (fun k ->
              List.iter
                (fun fp ->
                  let binders =
                    List.filter_map
                      (fun (b : Summary.binder) ->
                        match b.bkind with
                        | Summary.B_procs _ ->
                          Option.map
                            (fun v -> (b.bvar, v))
                            (List.assoc_opt b.bsite fp)
                        | _ -> (
                          match (group, a.binders) with
                          | Some gid, b0 :: _ when b0.bsite = b.bsite ->
                            Some
                              (b.bvar, Sym.add (tau_of gid) (Sym.const k))
                          | _ -> None))
                      a.binders
                  in
                  let resolve t =
                    try
                      Some
                        (Summary.sym_of_term ~binders ~proc:inst.iproc t)
                    with Invalid_argument _ -> None
                  in
                  let nloc =
                    let rs = List.map resolve a.loc.Pir.index in
                    if List.for_all Option.is_some rs then
                      Some (List.map Option.get rs)
                    else None
                  in
                  let nvalue = Option.map resolve a.value in
                  let nvalue = Option.join nvalue in
                  let nid = !next in
                  incr next;
                  let n =
                    { nid; inst; acc = a; k; fp; group; nloc; nvalue }
                  in
                  nodes := n :: !nodes;
                  let key = (Summary.inst_key inst, a.aid) in
                  Hashtbl.replace by_acc key
                    (nid
                    :: Option.value ~default:[]
                         (Hashtbl.find_opt by_acc key)))
                (cartesian fp_choices))
            ks)
        ri.accesses)
    actx.insts;
  let nodes = Array.of_list (List.rev !nodes) in
  let t =
    { actx; nodes; by_acc; await_succ = Hashtbl.create 32;
      await_pred = Hashtbl.create 32 }
  in
  (* ---------------- await edges: unique-supplier analysis ---------- *)
  let ctx = actx.ctx in
  Array.iter
    (fun (a_node : node) ->
      if Summary.is_await a_node.acc then
        match (a_node.nloc, a_node.nvalue) with
        | Some aloc, Some aval when Sym.definitely_nonzero ctx aval ->
          (* the awaited value must differ from the initial store value
             (0): otherwise the await may complete with no writer at all *)
          let candidates = ref [] in
          let ambiguous = ref false in
          List.iter
            (fun (w : Summary.access) ->
              if
                Summary.is_write w
                && w.loc.Pir.base = a_node.acc.loc.Pir.base
                && List.length w.loc.Pir.index = List.length aloc
              then
                List.iter
                  (fun (iw : Summary.inst) ->
                    let xw = Summary.instantiate actx w iw in
                    let eqs = List.map2 Sym.sub xw.iloc aloc in
                    let eqs =
                      match (w.kind, xw.ivalue) with
                      | Summary.K_write, Some v ->
                        Some (Sym.sub v aval :: eqs)
                      | Summary.K_fa_write, _ -> None  (* value unknown *)
                      | _, _ -> Some eqs
                    in
                    match eqs with
                    | None ->
                      if Sym.satisfiable ctx (List.map2 Sym.sub xw.iloc aloc)
                      then ambiguous := true
                    | Some eqs -> (
                      match Sym.solve ctx eqs with
                      | Sym.Unsat -> ()
                      | Sym.Sat sol -> (
                        (* resolve the matching write to one window node:
                           its sync iteration and every For_procs binder
                           must be forced; anything looser is ambiguous *)
                        try
                          let kw, rest =
                            match (w.binders, xw.ibinders) with
                            | b0 :: rest, (bs0, atom0) :: _
                              when Hashtbl.mem groups (iw.irole, b0.bsite)
                            -> (
                              assert (bs0 = b0.bsite);
                              let gid =
                                Hashtbl.find groups (iw.irole, b0.bsite)
                              in
                              let r =
                                Sym.reduce sol (Sym.atom atom0)
                              in
                              let d = Sym.sub r (tau_of gid) in
                              match Sym.const_value d with
                              | Some kw when 0 <= kw && kw < window ->
                                (kw, rest)
                              | _ -> raise Exit)
                            | bs, _ -> (0, bs)
                          in
                          let fp =
                            List.map
                              (fun (b : Summary.binder) ->
                                match b.bkind with
                                | Summary.B_procs { over } -> (
                                  let atom =
                                    List.assoc b.bsite xw.ibinders
                                  in
                                  let r =
                                    Sym.reduce sol (Sym.atom atom)
                                  in
                                  match
                                    List.find_opt
                                      (fun (oi : Summary.inst) ->
                                        Sym.must_equal oi.iproc r)
                                      (Summary.insts_of_role actx over)
                                  with
                                  | Some oi -> (b.bsite, oi.iproc)
                                  | None -> raise Exit)
                                | _ -> raise Exit)
                              rest
                          in
                          candidates :=
                            (Summary.inst_key iw, w.aid, kw, fp)
                            :: !candidates
                        with Exit -> ambiguous := true)))
                  (Summary.insts_of_role actx w.role))
            actx.summary.accesses;
          (match (!ambiguous, !candidates) with
          | false, [ (ikey, aid, kw, fp) ] -> (
            let nids =
              Option.value ~default:[]
                (Hashtbl.find_opt by_acc (ikey, aid))
            in
            let matches (n : node) =
              n.k = kw
              && List.for_all
                   (fun (bs, p) ->
                     match List.assoc_opt bs n.fp with
                     | Some q -> Sym.must_equal p q
                     | None -> false)
                   fp
              && List.length n.fp = List.length fp
            in
            match
              List.find_opt (fun nid -> matches nodes.(nid)) nids
            with
            | Some w_nid ->
              Hashtbl.replace t.await_succ w_nid
                (a_node.nid
                :: Option.value ~default:[]
                     (Hashtbl.find_opt t.await_succ w_nid));
              Hashtbl.replace t.await_pred a_node.nid w_nid
            | None -> ())
          | _ -> ())
        | _ -> ())
    nodes;
  t

(* ------------------------------------------------------------------ *)
(* Program order between nodes of one instance                         *)
(* ------------------------------------------------------------------ *)

let po_before (x : node) (y : node) =
  x.nid <> y.nid
  && Summary.inst_key x.inst = Summary.inst_key y.inst
  &&
  let rec walk bxs bys =
    match (bxs, bys) with
    | ( (bx : Summary.binder) :: rx,
        (by_ : Summary.binder) :: ry )
      when bx.bsite = by_.bsite -> (
      match bx.bkind with
      | Summary.B_procs _ -> (
        match
          (List.assoc_opt bx.bsite x.fp, List.assoc_opt by_.bsite y.fp)
        with
        | Some a, Some b when Sym.must_equal a b -> walk rx ry
        | _ -> false)
      | _ -> false (* shared unresolved loop: iterations interleave *))
    | _ -> x.acc.pos < y.acc.pos
  in
  match (x.acc.binders, y.acc.binders) with
  | b0x :: rx, b0y :: ry
    when b0x.bsite = b0y.bsite && x.group <> None && x.group = y.group ->
    if x.k <> y.k then x.k < y.k else walk rx ry
  | bx, by_ -> walk bx by_

(* ------------------------------------------------------------------ *)
(* Reachability and the ordering query                                 *)
(* ------------------------------------------------------------------ *)

let reachable t ~kmin ~kmax ~filter (src : node) (dst : node) =
  let n = Array.length t.nodes in
  let allowed (m : node) =
    m.group = None || (m.k >= kmin && m.k <= kmax)
  in
  let visited = Array.make n false in
  let queue = Queue.create () in
  Queue.add src.nid queue;
  visited.(src.nid) <- true;
  let found = ref false in
  while (not !found) && not (Queue.is_empty queue) do
    let cur = t.nodes.(Queue.pop queue) in
    if cur.nid = dst.nid then found := true
    else begin
      Array.iter
        (fun m ->
          if (not visited.(m.nid)) && allowed m && po_before cur m then begin
            visited.(m.nid) <- true;
            Queue.add m.nid queue
          end)
        t.nodes;
      List.iter
        (fun anid ->
          let m = t.nodes.(anid) in
          if
            (not visited.(anid)) && allowed m
            && filter cur.inst.Summary.iproc m.inst.Summary.iproc
          then begin
            visited.(anid) <- true;
            Queue.add anid queue
          end)
        (Option.value ~default:[]
           (Hashtbl.find_opt t.await_succ cur.nid))
    end
  done;
  !found || visited.(dst.nid)

let nodes_of t (inst : Summary.inst) (a : Summary.access) =
  List.map
    (fun nid -> t.nodes.(nid))
    (Option.value ~default:[]
       (Hashtbl.find_opt t.by_acc (Summary.inst_key inst, a.aid)))

let may_collide t (x : node) (y : node) =
  match (x.nloc, y.nloc) with
  | Some lx, Some ly when List.length lx = List.length ly ->
    Sym.satisfiable t.actx.Summary.ctx (List.map2 Sym.sub lx ly)
  | _ -> true

let ordered t ?(filter = fun _ _ -> true) (a : Summary.access)
    (ia : Summary.inst) (b : Summary.access) (ib : Summary.inst) =
  let na = nodes_of t ia a and nb = nodes_of t ib b in
  na <> [] && nb <> []
  && List.for_all
       (fun x ->
         List.for_all
           (fun y ->
             match (x.group, y.group) with
             | Some gx, Some gy when gx = gy ->
               let d = y.k - x.k in
               let kmin = min x.k y.k and kmax = max x.k y.k in
               (* boundary offsets are required unconditionally: their
                  outward witnesses extend by program-order tails to
                  every farther offset, colliding or not *)
               if d = window - 1 then reachable t ~kmin ~kmax ~filter x y
               else if d = -(window - 1) then
                 reachable t ~kmin ~kmax ~filter y x
               else
                 (not (may_collide t x y))
                 || reachable t ~kmin ~kmax ~filter x y
                 || reachable t ~kmin ~kmax ~filter y x
             | Some _, Some _ -> false (* unaligned loop groups *)
             | _ ->
               (not (may_collide t x y))
               || reachable t ~kmin:0 ~kmax:(window - 1) ~filter x y
               || reachable t ~kmin:0 ~kmax:(window - 1) ~filter y x)
           nb)
       na

let await_edge_count t =
  Hashtbl.fold (fun _ succs acc -> acc + List.length succs) t.await_succ 0
