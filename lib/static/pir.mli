(** The program IR of [Mc_static] (ISSUE 6 tentpole, part 1).

    A {!t} is a parameterized, {e data-independent} program: control flow
    — sequencing, counted loops, barrier phases, lock-guarded regions —
    depends only on the parameters, never on values read from memory, so
    a single symbolic analysis covers every concretization. Programs are
    organized into {e roles}; a role is instantiated once per process id
    in its range ([Single] roles once, [Span] roles per id in an
    inclusive interval). Reads and writes address {e location patterns}
    ([x\[i\]], [row(p)]) whose indices are affine terms over parameters,
    loop binders and the executing process id.

    The three Section-5 applications are re-expressed in this IR in
    [Mc_apps.Static_models]; {!Concretize} compiles a program at concrete
    parameters into a real runtime execution for differential
    validation. *)

type term =
  | Int of int
  | Param of string
  | Var of string  (** an enclosing loop binder *)
  | Proc  (** the process id executing the role instance *)
  | Add of term * term
  | Sub of term * term
  | Neg of term
  | Mul of int * term

type locpat = { base : string; index : term list }

(** Declared read label, mirroring [Mc_history.Op.label] symbolically:
    a group is a list of process-id terms. *)
type rlabel = L_pram | L_causal | L_group of term list

type lock_mode = R | W

type stmt =
  | Read of { loc : locpat; label : rlabel }
  | Write of { loc : locpat; value : term }
  | Fetch_add of { loc : locpat; delta : term }
      (** read [loc] then write the value plus [delta] — the Section-5.3
          counter idiom, concretized as a read/write pair (Fig. 5) *)
  | Await of { loc : locpat; value : term }
  | Barrier
  | Locked of { lock : locpat; mode : lock_mode; body : stmt list }
  | For of { var : string; lo : term; hi : term; body : stmt list }
      (** counted loop, inclusive bounds *)
  | For_owned of { var : string; total : term; body : stmt list }
      (** [var] ranges over this instance's block of [0, total); the
          blocks partition the index space across the instances of the
          enclosing role, making same-loop accesses of different
          instances disjoint by construction *)
  | For_procs of { var : string; over : string; body : stmt list }
      (** [var] ranges over the process ids of the instances of role
          [over] *)
  | Compute of float

type range = Single of term | Span of { lo : term; hi : term }

type role = { rname : string; range : range; body : stmt list }

type param = { pname : string; default : int; min : int }

type t = { name : string; params : param list; roles : role list }

(** {1 Builders} *)

val loc : string -> term list -> locpat
val loc0 : string -> locpat
val read : ?label:rlabel -> locpat -> stmt
val write : locpat -> term -> stmt
val fetch_add : locpat -> term -> stmt
val await : locpat -> term -> stmt
val bar : stmt
val locked : ?mode:lock_mode -> locpat -> stmt list -> stmt
val for_ : string -> term -> term -> stmt list -> stmt
val for_owned : string -> term -> stmt list -> stmt
val for_procs : string -> string -> stmt list -> stmt
val compute : float -> stmt
val param : ?min:int -> string -> int -> param

(** {1 Site paths}

    The site path of a statement is [program/role/segments], each segment
    an index-prefixed structural step (e.g.
    [solver/worker/2.for\[t\]/4.w(x\[r\])]). [Summary] and [Concretize]
    traverse statements through the same helpers, so static findings and
    recorded operations meet on identical paths. *)

val term_to_string : term -> string
val locpat_to_string : locpat -> string
val label_to_string : rlabel -> string

(** Path segment of the [i]-th statement of a block. *)
val seg_of_stmt : int -> stmt -> string

val site_join : string -> string -> string

(** {1 Structural queries} *)

val contains_await : stmt list -> bool
val contains_barrier : stmt list -> bool
val default_params : t -> (string * int) list
val find_role : t -> string -> role
