(** Concretizer: compile a {!Pir.t} at concrete parameters into a real
    [Mc_dsm.Runtime] execution (ISSUE 6 tentpole, differential leg).

    Every recorded operation is tagged with the site path of the
    statement that issued it — the same [Pir.seg_of_stmt] traversal the
    static passes use — so dynamic findings (R001/R002/A00x, keyed by op
    id) and static findings (S0xx, keyed by site) can be compared
    exactly. *)

type run = {
  history : Mc_history.History.t;
  procs : int;
  sites : (int, string) Hashtbl.t;  (** op id -> issuing site path *)
  online : Mc_consistency.Online.t option;
  time : float;  (** simulated completion time *)
}

val site_of : run -> int -> string option

(** [run p] executes [p] on the mixed runtime with recording on.
    [params] overrides program parameter defaults; group-labelled reads
    are collected into [Config.groups] automatically. Raises
    [Invalid_argument] on non-contiguous or overlapping role ranges and
    [Failure] if the recorded history and the site log disagree (a
    concretizer bug by construction). *)
val run :
  ?propagation:Mc_dsm.Config.propagation ->
  ?check_online:bool ->
  ?params:(string * int) list ->
  Pir.t ->
  run

(** The block of [0, total) owned by instance [idx] of [n] — the same
    partition as [Linear_solver.rows_of_worker]. *)
val owned_block : total:int -> n:int -> idx:int -> int * int
