(* Access summaries: the bridge from the structured IR to the symbolic
   passes. One traversal per role collects every memory access with

     - its must-lockset (the Locked regions enclosing it — a *must*
       analysis by construction, since lock regions are structured),
     - its symbolic barrier phase (number of barriers program-order
       before it, an affine expression in parameters and loop binders),
     - its enclosing binder chain and site path.

   [instantiate] turns an access into symbolic (Sym) form on behalf of a
   generic role instance, allocating fresh binder atoms so the two sides
   of a pair analysis never alias. *)

type binder_kind =
  | B_for of { lo : Pir.term; hi : Pir.term }
  | B_owned of { total : Pir.term }
  | B_procs of { over : string }

type binder = { bvar : string; bkind : binder_kind; bsite : string }

type access_kind =
  | K_read of Pir.rlabel
  | K_write
  | K_fa_read
  | K_fa_write
  | K_await

type access = {
  aid : int;
  role : string;
  site : string;
  kind : access_kind;
  loc : Pir.locpat;
  value : Pir.term option;  (* writes with a static value; awaits *)
  locks : (Pir.locpat * Pir.lock_mode) list;
  phase : Pir.term;
  pos : int;  (* pre-order position within the role body *)
  binders : binder list;  (* outermost first *)
  in_sync_loop : bool;  (* under an await-containing For *)
  in_data_loop : bool;  (* under a loop that the skeleton keeps opaque *)
}

let is_write a = match a.kind with K_write | K_fa_write -> true | _ -> false
let is_await a = match a.kind with K_await -> true | _ -> false

let kind_to_string = function
  | K_read _ -> "read"
  | K_write -> "write"
  | K_fa_read -> "fetch-add read"
  | K_fa_write -> "fetch-add write"
  | K_await -> "await"

type role_info = {
  rname : string;
  range : Pir.range;
  accesses : access list;
  total_phase : Pir.term;
  misaligned : string option;
      (* a site whose barrier structure is not expressible as an
         instance-independent affine phase, if any *)
}

type t = { prog : Pir.t; roles : role_info list; accesses : access list }

(* ------------------------------------------------------------------ *)
(* Building                                                            *)
(* ------------------------------------------------------------------ *)

(* count the barriers of one statement as a constant, or None when the
   count is iteration- or instance-dependent *)
let rec const_barriers (s : Pir.stmt) =
  match s with
  | Pir.Barrier -> Some 1
  | Pir.Read _ | Pir.Write _ | Pir.Fetch_add _ | Pir.Await _ | Pir.Compute _ ->
    Some 0
  | Pir.Locked { body; _ } ->
    if Pir.contains_barrier body then None else Some 0
  | Pir.For_owned { body; _ } | Pir.For_procs { body; _ } ->
    if Pir.contains_barrier body then None else Some 0
  | Pir.For { body; lo; hi; _ } -> (
    match
      List.fold_left
        (fun acc s ->
          match (acc, const_barriers s) with
        | Some a, Some b -> Some (a + b)
        | _ -> None)
        (Some 0) body
    with
    | Some 0 -> Some 0
    | Some per -> (
      (* constant trip count needed to keep the total a constant *)
      match (lo, hi) with
      | Pir.Int l, Pir.Int h -> Some (per * max 0 (h - l + 1))
      | _ -> None)
    | None -> None)

let build_role ~prog next_aid (r : Pir.role) =
  let accesses = ref [] in
  let misaligned = ref None in
  let pos = ref 0 in
  let mark_misaligned site = if !misaligned = None then misaligned := Some site in
  let add ~site ~kind ~loc ~value ~locks ~phase ~binders ~sync ~data =
    let aid = !next_aid in
    next_aid := aid + 1;
    incr pos;
    accesses :=
      { aid; role = r.rname; site; kind; loc; value; locks; phase; pos = !pos;
        binders; in_sync_loop = sync; in_data_loop = data }
      :: !accesses
  in
  (* walk returns the symbolic barrier count of the block *)
  let rec block ~path ~locks ~phase ~binders ~sync ~data body =
    List.fold_left
      (fun phase (i, s) ->
        stmt ~site:(Pir.site_join path (Pir.seg_of_stmt i s)) ~locks ~phase
          ~binders ~sync ~data s)
      phase
      (List.mapi (fun i s -> (i, s)) body)
  and stmt ~site ~locks ~phase ~binders ~sync ~data (s : Pir.stmt) =
    match s with
    | Pir.Read { loc; label } ->
      add ~site ~kind:(K_read label) ~loc ~value:None ~locks ~phase ~binders
        ~sync ~data;
      phase
    | Pir.Write { loc; value } ->
      add ~site ~kind:K_write ~loc ~value:(Some value) ~locks ~phase ~binders
        ~sync ~data;
      phase
    | Pir.Fetch_add { loc; _ } ->
      add ~site:(site ^ "/fa.r") ~kind:K_fa_read ~loc ~value:None ~locks ~phase
        ~binders ~sync ~data;
      add ~site:(site ^ "/fa.w") ~kind:K_fa_write ~loc ~value:None ~locks
        ~phase ~binders ~sync ~data;
      phase
    | Pir.Await { loc; value } ->
      add ~site ~kind:K_await ~loc ~value:(Some value) ~locks ~phase ~binders
        ~sync ~data;
      phase
    | Pir.Barrier -> Pir.Add (phase, Pir.Int 1)
    | Pir.Compute _ -> phase
    | Pir.Locked { lock; mode; body } ->
      if Pir.contains_barrier body then mark_misaligned site;
      block ~path:site ~locks:((lock, mode) :: locks) ~phase ~binders ~sync
        ~data body
    | Pir.For { var; lo; hi; body } ->
      let b = { bvar = var; bkind = B_for { lo; hi }; bsite = site } in
      let is_sync = Pir.contains_await body in
      let per =
        List.fold_left
          (fun acc s ->
            match (acc, const_barriers s) with
            | Some a, Some b -> Some (a + b)
            | _ -> None)
          (Some 0) body
      in
      (match per with
      | Some per_iter ->
        (* phase inside iteration [var]: phase + per_iter*(var - lo) + offset *)
        let inner_base =
          if per_iter = 0 then phase
          else Pir.Add (phase, Pir.Mul (per_iter, Pir.Sub (Pir.Var var, lo)))
        in
        let inner_end =
          block ~path:site ~locks ~phase:inner_base ~binders:(binders @ [ b ])
            ~sync:(sync || is_sync)
            ~data:(data || not is_sync)
            body
        in
        ignore inner_end;
        if per_iter = 0 then phase
        else
          Pir.Add
            (phase, Pir.Mul (per_iter, Pir.Add (Pir.Sub (hi, lo), Pir.Int 1)))
      | None ->
        mark_misaligned site;
        ignore
          (block ~path:site ~locks ~phase ~binders:(binders @ [ b ])
             ~sync:(sync || is_sync)
             ~data:(data || not is_sync)
             body);
        phase)
    | Pir.For_owned { var; total; body } ->
      if Pir.contains_barrier body then mark_misaligned site;
      let b = { bvar = var; bkind = B_owned { total }; bsite = site } in
      ignore
        (block ~path:site ~locks ~phase ~binders:(binders @ [ b ]) ~sync
           ~data:true body);
      phase
    | Pir.For_procs { var; over; body } ->
      if Pir.contains_barrier body then mark_misaligned site;
      let b = { bvar = var; bkind = B_procs { over }; bsite = site } in
      ignore
        (block ~path:site ~locks ~phase ~binders:(binders @ [ b ]) ~sync
           ~data:true body);
      phase
  in
  let total =
    block ~path:(Pir.site_join prog r.rname) ~locks:[] ~phase:(Pir.Int 0)
      ~binders:[] ~sync:false ~data:false r.body
  in
  { rname = r.rname; range = r.range; accesses = List.rev !accesses;
    total_phase = total; misaligned = !misaligned }

let build (p : Pir.t) =
  let next_aid = ref 0 in
  let roles = List.map (build_role ~prog:p.name next_aid) p.roles in
  { prog = p; roles; accesses = List.concat_map (fun (ri : role_info) -> ri.accesses) roles }

(* ------------------------------------------------------------------ *)
(* Generic instances and symbolic instantiation                        *)
(* ------------------------------------------------------------------ *)

type inst = {
  irole : string;
  iidx : int;  (* 0 | 1 for span roles, 0 for singletons *)
  iproc : Sym.t;
  isingle : bool;
}

let inst_key i = Printf.sprintf "%s#%d" i.irole i.iidx

type actx = {
  ctx : Sym.ctx;
  summary : t;
  insts : inst list;
  role_proc_bounds : (string * (int option * int option)) list;
  role_proc_ranges : (string * (Sym.t * Sym.t)) list;
      (* symbolic inclusive process-id range per role *)
}

let rec sym_of_term ~binders ~proc = function
  | Pir.Int n -> Sym.const n
  | Pir.Param p -> Sym.atom (Sym.Aparam p)
  | Pir.Var v -> (
    match List.assoc_opt v binders with
    | Some s -> s
    | None -> invalid_arg (Printf.sprintf "Mc_static: unbound loop variable %s" v))
  | Pir.Proc -> proc
  | Pir.Add (a, b) -> Sym.add (sym_of_term ~binders ~proc a) (sym_of_term ~binders ~proc b)
  | Pir.Sub (a, b) -> Sym.sub (sym_of_term ~binders ~proc a) (sym_of_term ~binders ~proc b)
  | Pir.Neg a -> Sym.neg (sym_of_term ~binders ~proc a)
  | Pir.Mul (k, a) -> Sym.scale k (sym_of_term ~binders ~proc a)

(* range terms may only mention parameters *)
let sym_of_range_term t =
  sym_of_term ~binders:[] ~proc:(Sym.const min_int) t

let actx_create (s : t) =
  let ctx = Sym.ctx_create () in
  List.iter
    (fun (p : Pir.param) ->
      Sym.set_bounds ctx (Sym.Aparam p.pname) (Some p.min, None))
    s.prog.params;
  let insts, bounds, ranges =
    List.fold_left
      (fun (insts, bounds, ranges) (ri : role_info) ->
        match ri.range with
        | Pir.Single t ->
          let proc = sym_of_range_term t in
          ( insts
            @ [ { irole = ri.rname; iidx = 0; iproc = proc; isingle = true } ],
            bounds @ [ (ri.rname, Sym.eval_bounds ctx proc) ],
            ranges @ [ (ri.rname, (proc, proc)) ] )
        | Pir.Span { lo; hi } ->
          let lo_s = sym_of_range_term lo and hi_s = sym_of_range_term hi in
          let b = (fst (Sym.eval_bounds ctx lo_s), snd (Sym.eval_bounds ctx hi_s)) in
          let mk i =
            let a = Sym.Ainst (ri.rname, i) in
            Sym.set_bounds ctx a b;
            Sym.set_range ctx a ~lo:lo_s ~hi:hi_s;
            { irole = ri.rname; iidx = i; iproc = Sym.atom a; isingle = false }
          in
          ( insts @ [ mk 0; mk 1 ],
            bounds @ [ (ri.rname, b) ],
            ranges @ [ (ri.rname, (lo_s, hi_s)) ] ))
      ([], [], []) s.roles
  in
  { ctx; summary = s; insts; role_proc_bounds = bounds; role_proc_ranges = ranges }

let insts_of_role actx rname =
  List.filter (fun i -> i.irole = rname) actx.insts

(* representative pairs of distinct instances for pairwise analyses: for
   two accesses of the same span role, its two generic instances; for
   accesses of different roles, one generic instance of each; same-
   singleton pairs are program-ordered and yield nothing *)
let distinct_inst_pairs actx ra rb =
  if ra = rb then
    match insts_of_role actx ra with
    | [ a; b ] -> [ (a, b) ]
    | _ -> []
  else
    match (insts_of_role actx ra, insts_of_role actx rb) with
    | ia :: _, ib :: _ -> [ (ia, ib) ]
    | _ -> []

type iaccess = {
  acc : access;
  inst : inst;
  iloc : Sym.t list;
  ivalue : Sym.t option;
  ilocks : (string * Sym.t list * Pir.lock_mode) list;
  iphase : Sym.t;
  ibinders : (string * Sym.atom) list;  (* bsite-keyed, outermost first *)
}

(* instantiate [a] on behalf of [inst], allocating fresh binder atoms *)
let instantiate actx (a : access) (inst : inst) =
  let ctx = actx.ctx in
  let proc = inst.iproc in
  let binders = ref [] and keyed = ref [] in
  List.iter
    (fun (b : binder) ->
      let atom = Sym.fresh_var ctx in
      let bsyms = !binders in
      (match b.bkind with
      | B_for { lo; hi } ->
        let lo_s = sym_of_term ~binders:bsyms ~proc lo in
        let hi_s = sym_of_term ~binders:bsyms ~proc hi in
        Sym.set_bounds ctx atom
          (fst (Sym.eval_bounds ctx lo_s), snd (Sym.eval_bounds ctx hi_s))
      | B_owned { total } ->
        let hi_s =
          Sym.sub (sym_of_term ~binders:bsyms ~proc total) (Sym.const 1)
        in
        Sym.set_bounds ctx atom (Some 0, snd (Sym.eval_bounds ctx hi_s));
        Sym.set_owned ctx atom ~loop:b.bsite ~inst:proc
      | B_procs { over } ->
        Sym.set_bounds ctx atom
          (match List.assoc_opt over actx.role_proc_bounds with
          | Some b -> b
          | None -> (None, None));
        Option.iter
          (fun (lo, hi) -> Sym.set_range ctx atom ~lo ~hi)
          (List.assoc_opt over actx.role_proc_ranges));
      binders := (b.bvar, Sym.atom atom) :: !binders;
      keyed := (b.bsite, atom) :: !keyed)
    a.binders;
  let sym t = sym_of_term ~binders:!binders ~proc t in
  {
    acc = a;
    inst;
    iloc = List.map sym a.loc.Pir.index;
    ivalue = Option.map sym a.value;
    ilocks =
      List.map
        (fun ((l : Pir.locpat), m) -> (l.Pir.base, List.map sym l.Pir.index, m))
        a.locks;
    iphase = sym a.phase;
    ibinders = List.rev !keyed;
  }

(* location unifier of two instantiated accesses: the equations forcing
   their concrete locations equal, or [None] when the bases (or arities)
   can never match *)
let loc_eqs (x : iaccess) (y : iaccess) =
  if x.acc.loc.Pir.base <> y.acc.loc.Pir.base then None
  else if List.length x.iloc <> List.length y.iloc then None
  else Some (List.map2 Sym.sub x.iloc y.iloc)

(* a conflicting pair: same pattern, at least one side writes *)
let kinds_conflict a b = is_write a || is_write b

(* program-wide barrier alignment: every role's barrier structure is an
   instance-independent affine phase and all totals provably coincide *)
let alignment actx =
  let s = actx.summary in
  let bad = List.find_opt (fun ri -> ri.misaligned <> None) s.roles in
  match bad with
  | Some ri -> Error (Option.get ri.misaligned)
  | None -> (
    let totals =
      List.map
        (fun (ri : role_info) ->
          (* a per-role dummy process atom: proc-dependent totals then
             fail the pairwise equality below *)
          let dummy = Sym.fresh_var actx.ctx in
          (ri, sym_of_term ~binders:[] ~proc:(Sym.atom dummy) ri.total_phase))
        s.roles
    in
    match totals with
    | [] -> Ok Sym.zero
    | (_, t0) :: rest ->
      if List.for_all (fun (_, t) -> Sym.must_equal t0 t) rest then Ok t0
      else
        Error
          (Printf.sprintf "barrier counts differ across roles (%s)"
             (String.concat " vs "
                (List.map
                   (fun ((ri : role_info), t) ->
                     Printf.sprintf "%s:%s" ri.rname (Sym.to_string t))
                   totals))))
