(* The program intermediate representation of Mc_static.

   A [t] is a parameterized, data-independent program: control flow
   (sequencing, counted loops, barrier phases, lock regions) depends only
   on the parameters, never on values read from memory, so one symbolic
   analysis covers every concretization. Programs are organized into
   roles; a role is instantiated once per process id in its range. The
   three Section-5 applications are expressed in this IR in
   [Mc_apps.Static_models]. *)

type term =
  | Int of int
  | Param of string
  | Var of string  (* an enclosing loop binder *)
  | Proc  (* the process id executing the role instance *)
  | Add of term * term
  | Sub of term * term
  | Neg of term
  | Mul of int * term

type locpat = { base : string; index : term list }

type rlabel = L_pram | L_causal | L_group of term list

type lock_mode = R | W

type stmt =
  | Read of { loc : locpat; label : rlabel }
  | Write of { loc : locpat; value : term }
  | Fetch_add of { loc : locpat; delta : term }
      (* read [loc] then write the value plus [delta], the Section-5.3
         counter idiom; concretized as a read/write pair (Fig. 5 style) *)
  | Await of { loc : locpat; value : term }
  | Barrier
  | Locked of { lock : locpat; mode : lock_mode; body : stmt list }
  | For of { var : string; lo : term; hi : term; body : stmt list }
      (* counted loop, inclusive bounds *)
  | For_owned of { var : string; total : term; body : stmt list }
      (* [var] ranges over this instance's block of [0, total): the
         blocks partition the index space across the instances of the
         enclosing role, so same-loop accesses of different instances
         are disjoint by construction *)
  | For_procs of { var : string; over : string; body : stmt list }
      (* [var] ranges over the process ids of the instances of role
         [over] *)
  | Compute of float

type range = Single of term | Span of { lo : term; hi : term }

type role = { rname : string; range : range; body : stmt list }

type param = { pname : string; default : int; min : int }

type t = { name : string; params : param list; roles : role list }

(* ------------------------------------------------------------------ *)
(* Builders                                                            *)
(* ------------------------------------------------------------------ *)

let loc base index = { base; index }
let loc0 base = { base; index = [] }
let read ?(label = L_causal) l = Read { loc = l; label }
let write l v = Write { loc = l; value = v }
let fetch_add l delta = Fetch_add { loc = l; delta }
let await l v = Await { loc = l; value = v }
let bar = Barrier
let locked ?(mode = W) lock body = Locked { lock; mode; body }
let for_ var lo hi body = For { var; lo; hi; body }
let for_owned var total body = For_owned { var; total; body }
let for_procs var over body = For_procs { var; over; body }
let compute c = Compute c
let param ?(min = 1) pname default = { pname; default; min }

(* ------------------------------------------------------------------ *)
(* Site paths                                                          *)
(* ------------------------------------------------------------------ *)

let rec term_to_string = function
  | Int n -> string_of_int n
  | Param p -> p
  | Var v -> v
  | Proc -> "p"
  | Add (a, b) -> term_to_string a ^ "+" ^ term_to_string b
  | Sub (a, b) -> term_to_string a ^ "-" ^ term_to_string b
  | Neg a -> "-" ^ term_to_string a
  | Mul (k, a) -> string_of_int k ^ "*" ^ term_to_string a

let locpat_to_string l =
  if l.index = [] then l.base
  else l.base ^ "[" ^ String.concat "," (List.map term_to_string l.index) ^ "]"

let label_to_string = function
  | L_pram -> "pram"
  | L_causal -> "causal"
  | L_group ts ->
    "group{" ^ String.concat "," (List.map term_to_string ts) ^ "}"

(* The site path of a statement: program/role/segments, each segment an
   index-prefixed structural step, e.g. [solver/worker/2.for[t]/4.w(x[r])].
   [Summary] and [Concretize] traverse statements with the same helper so
   static findings and recorded operations meet on identical paths. *)
let seg_of_stmt i = function
  | Read { loc; _ } -> Printf.sprintf "%d.r(%s)" i (locpat_to_string loc)
  | Write { loc; _ } -> Printf.sprintf "%d.w(%s)" i (locpat_to_string loc)
  | Fetch_add { loc; _ } -> Printf.sprintf "%d.fa(%s)" i (locpat_to_string loc)
  | Await { loc; _ } -> Printf.sprintf "%d.await(%s)" i (locpat_to_string loc)
  | Barrier -> Printf.sprintf "%d.bar" i
  | Locked { lock; _ } -> Printf.sprintf "%d.lk(%s)" i (locpat_to_string lock)
  | For { var; _ } -> Printf.sprintf "%d.for[%s]" i var
  | For_owned { var; _ } -> Printf.sprintf "%d.own[%s]" i var
  | For_procs { var; _ } -> Printf.sprintf "%d.procs[%s]" i var
  | Compute _ -> Printf.sprintf "%d.compute" i

let site_join path seg = path ^ "/" ^ seg

(* ------------------------------------------------------------------ *)
(* Structural queries                                                  *)
(* ------------------------------------------------------------------ *)

let rec stmts_contain p body =
  List.exists
    (fun s ->
      p s
      ||
      match s with
      | Locked { body; _ } | For { body; _ } | For_owned { body; _ }
      | For_procs { body; _ } ->
        stmts_contain p body
      | _ -> false)
    body

let contains_await body =
  stmts_contain (function Await _ -> true | _ -> false) body

let contains_barrier body =
  stmts_contain (function Barrier -> true | _ -> false) body

let default_params t = List.map (fun p -> (p.pname, p.default)) t.params

let find_role t name = List.find (fun r -> r.rname = name) t.roles
