(* Affine symbolic integer terms over a small universe of atoms, the
   arithmetic core every static pass shares. A term is [const + Σ coeff·atom];
   atoms stand for program parameters, binder occurrences of loops, generic
   role instances and symbolic base iterations of unrolled sync loops.

   The only judgements exported are conservative: [must_equal] / [is_zero]
   claim equality only when it holds for every valuation, [definitely_nonzero]
   claims disequality only when no integer valuation inside the registered
   bounds can make the term zero (constant tests, a gcd divisibility test —
   which resolves the even/odd phase patterns of barrier programs — and
   interval arithmetic over the registered atom bounds), and the equation
   solver answers [Unsat] only when the system provably has no solution.
   Anything unknown degrades to "maybe", which callers must treat as the
   unordered / conflicting case. *)

type atom =
  | Aparam of string  (** program parameter, bounded below by its [min] *)
  | Avar of int  (** one binder occurrence of a loop variable *)
  | Ainst of string * int  (** generic instance [0|1] of a span role *)
  | Aiter of int  (** symbolic base iteration of a sync-loop group *)

let atom_compare = Stdlib.compare

type t = { const : int; terms : (atom * int) list }
(* [terms] sorted by atom, coefficients non-zero *)

let normalize ts =
  let sorted = List.sort (fun (a, _) (b, _) -> atom_compare a b) ts in
  let rec merge = function
    | (a, c1) :: (b, c2) :: rest when atom_compare a b = 0 ->
      merge ((a, c1 + c2) :: rest)
    | (a, c) :: rest -> if c = 0 then merge rest else (a, c) :: merge rest
    | [] -> []
  in
  merge sorted

let make const terms = { const; terms = normalize terms }
let const n = { const = n; terms = [] }
let atom a = { const = 0; terms = [ (a, 1) ] }
let zero = const 0

let add a b = make (a.const + b.const) (a.terms @ b.terms)
let neg a = { const = -a.const; terms = List.map (fun (x, c) -> (x, -c)) a.terms }
let sub a b = add a (neg b)
let scale k a =
  if k = 0 then zero
  else { const = k * a.const; terms = List.map (fun (x, c) -> (x, k * c)) a.terms }

let is_zero t = t.const = 0 && t.terms = []
let is_const t = t.terms = []
let const_value t = if t.terms = [] then Some t.const else None
let atoms t = List.map fst t.terms

let must_equal a b = is_zero (sub a b)

(* ------------------------------------------------------------------ *)
(* Contexts: bounds and known-distinctness of atoms                    *)
(* ------------------------------------------------------------------ *)

type ctx = {
  bounds : (atom, int option * int option) Hashtbl.t;
  (* owned-loop binder occurrences: loop key + instance term, used to
     declare two occurrences of an owned binder on behalf of different
     instances disjoint (the blocks partition the index space) *)
  owned : (atom, string * t) Hashtbl.t;
  (* symbolic inclusive ranges, for atoms whose bounds are terms over
     parameters rather than constants (span-role instances, for_procs
     binders): used to prove a value provably outside the range *)
  ranges : (atom, t * t) Hashtbl.t;
  mutable next : int;
}

let ctx_create () =
  {
    bounds = Hashtbl.create 32;
    owned = Hashtbl.create 8;
    ranges = Hashtbl.create 8;
    next = 0;
  }

let fresh_var ctx =
  let id = ctx.next in
  ctx.next <- ctx.next + 1;
  Avar id

let fresh_iter ctx =
  let id = ctx.next in
  ctx.next <- ctx.next + 1;
  Aiter id

let set_bounds ctx a b = Hashtbl.replace ctx.bounds a b
let set_owned ctx a ~loop ~inst = Hashtbl.replace ctx.owned a (loop, inst)
let set_range ctx a ~lo ~hi = Hashtbl.replace ctx.ranges a (lo, hi)

let bounds_of ctx a =
  match Hashtbl.find_opt ctx.bounds a with Some b -> b | None -> (None, None)

(* interval bounds of a term under the registered atom bounds *)
let eval_bounds ctx t =
  let open_add a b =
    match (a, b) with Some x, Some y -> Some (x + y) | _ -> None
  in
  List.fold_left
    (fun (lo, hi) (a, c) ->
      let alo, ahi = bounds_of ctx a in
      if c >= 0 then
        (open_add lo (Option.map (( * ) c) alo),
         open_add hi (Option.map (( * ) c) ahi))
      else
        (open_add lo (Option.map (( * ) c) ahi),
         open_add hi (Option.map (( * ) c) alo)))
    (Some t.const, Some t.const)
    t.terms

(* two atoms that can never be equal: the two generic instances of one
   span role, or owned-loop binders of the same loop on behalf of
   provably different instances *)
let atoms_distinct ctx a b =
  match (a, b) with
  | Ainst (r1, i1), Ainst (r2, i2) -> r1 = r2 && i1 <> i2
  | _ -> (
    match (Hashtbl.find_opt ctx.owned a, Hashtbl.find_opt ctx.owned b) with
    | Some (l1, inst1), Some (l2, inst2) when l1 = l2 ->
      (* same owned loop: disjoint iff the instances provably differ *)
      let d = sub inst1 inst2 in
      (match (d.terms, d.const) with
      | [], c -> c <> 0
      | [ (x, 1); (y, -1) ], 0 | [ (x, -1); (y, 1) ], 0 ->
        (match (x, y) with
        | Ainst (r1, i1), Ainst (r2, i2) -> r1 = r2 && i1 <> i2
        | _ -> false)
      | _ -> false)
    | _ -> false)

let rec gcd a b = if b = 0 then abs a else gcd b (a mod b)

(* [definitely_nonzero ctx t]: no integer valuation within bounds makes
   [t] zero *)
let definitely_nonzero ctx t =
  match t.terms with
  | [] -> t.const <> 0
  | [ (x, 1); (y, -1) ] | [ (x, -1); (y, 1) ] when t.const = 0 ->
    atoms_distinct ctx x y
  | terms -> (
    (* on a zero of [t], a unit-coefficient atom takes the value of the
       negated rest; a registered symbolic range it provably falls
       outside of rules the zero out *)
    let outside_range () =
      List.exists
        (fun (a, c) ->
          abs c = 1
          &&
          match Hashtbl.find_opt ctx.ranges a with
          | None -> false
          | Some (lo, hi) ->
            let rest = { t with terms = List.remove_assoc a t.terms } in
            let v = scale (-c) rest in
            (match eval_bounds ctx (sub v hi) with
            | Some l, _ -> l > 0
            | _ -> false)
            ||
            (match eval_bounds ctx (sub lo v) with
            | Some l, _ -> l > 0
            | _ -> false))
        terms
    in
    let g = List.fold_left (fun acc (_, c) -> gcd acc c) 0 terms in
    if g > 1 && t.const mod g <> 0 then true
    else
      match eval_bounds ctx t with
      | Some lo, _ when lo > 0 -> true
      | _, Some hi when hi < 0 -> true
      | _ -> outside_range ())

(* ------------------------------------------------------------------ *)
(* Equation systems                                                    *)
(* ------------------------------------------------------------------ *)

type subst = (atom * t) list

let rec reduce (s : subst) t =
  let changed = ref false in
  let t' =
    List.fold_left
      (fun acc (a, c) ->
        match List.assoc_opt a s with
        | Some repl ->
          changed := true;
          add acc (scale c repl)
        | None -> add acc { const = 0; terms = [ (a, c) ] })
      (const t.const) t.terms
  in
  if !changed then reduce s t' else t'

type solution = Unsat | Sat of subst

(* Solve the conjunction [eqs = 0] by eliminating unit-coefficient atoms;
   residual equations only feed the contradiction tests. Unsat is only
   reported when provable; the substitution of a Sat answer maps each
   eliminated atom to an equivalent term, so reducing any term through it
   preserves its value on every solution of the system. *)
let solve ctx eqs =
  let subst = ref [] in
  let residual = ref [] in
  let unsat = ref false in
  let step eq =
    if !unsat then ()
    else
      let eq = reduce !subst eq in
      if is_zero eq then ()
      else if definitely_nonzero ctx eq then unsat := true
      else
        (* scale down by the coefficient gcd when exact, so e.g.
           [2t - 2t' = 0] still eliminates an atom *)
        let eq =
          let g = List.fold_left (fun acc (_, c) -> gcd acc c) 0 eq.terms in
          if g > 1 && eq.const mod g = 0 then
            { const = eq.const / g;
              terms = List.map (fun (a, c) -> (a, c / g)) eq.terms }
          else eq
        in
        match List.find_opt (fun (_, c) -> abs c = 1) eq.terms with
        | Some (a, c) ->
          (* a = -(eq - c·a)/c, exact since |c| = 1 *)
          let rest = { eq with terms = List.remove_assoc a eq.terms } in
          let repl = scale (-c) rest in
          subst := (a, repl) :: List.map (fun (x, t) -> (x, reduce [ (a, repl) ] t)) !subst;
          residual := List.map (reduce !subst) !residual
        | None -> residual := eq :: !residual
  in
  List.iter step eqs;
  if !unsat then Unsat
  else if List.exists (definitely_nonzero ctx) !residual then Unsat
  else if
    (* any solution assigns each eliminated atom the value of its
       replacement; disjoint intervals mean no solution exists *)
    List.exists
      (fun (a, repl) ->
        let repl = reduce !subst repl in
        let alo, ahi = bounds_of ctx a in
        let rlo, rhi = eval_bounds ctx repl in
        (match (alo, rhi) with Some lo, Some hi -> hi < lo | _ -> false)
        || match (ahi, rlo) with Some hi, Some lo -> lo > hi | _ -> false)
      !subst
  then Unsat
  else Sat !subst

(* [eqs ⟹ d = 0]: on every solution of the system, [d] vanishes *)
let forced_zero_given ctx eqs d =
  match solve ctx eqs with
  | Unsat -> true (* vacuous *)
  | Sat s -> is_zero (reduce s d)

(* [eqs ⟹ d ≠ 0]: on every solution of the system, [d] is non-zero *)
let nonzero_given ctx eqs d =
  match solve ctx eqs with
  | Unsat -> true (* vacuous *)
  | Sat s -> definitely_nonzero ctx (reduce s d)

let satisfiable ctx eqs = match solve ctx eqs with Unsat -> false | Sat _ -> true

(* ------------------------------------------------------------------ *)
(* Printing                                                            *)
(* ------------------------------------------------------------------ *)

let atom_to_string = function
  | Aparam p -> p
  | Avar i -> Printf.sprintf "v%d" i
  | Ainst (r, i) -> Printf.sprintf "%s#%c" r (Char.chr (Char.code 'a' + i))
  | Aiter i -> Printf.sprintf "t%d" i

let to_string t =
  if is_zero t then "0"
  else
    let parts =
      (if t.const <> 0 then [ string_of_int t.const ] else [])
      @ List.map
          (fun (a, c) ->
            if c = 1 then atom_to_string a
            else Printf.sprintf "%d*%s" c (atom_to_string a))
          t.terms
    in
    String.concat "+" parts
