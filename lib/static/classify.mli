(** Theorem classification and weakest-label inference (ISSUE 6
    tentpole, part 4b): proves a program SC by Corollary 2 (PRAM
    phases), Corollary 1 (entry consistency) or Theorem 1 (mixed
    labels), independent of process count and iteration bounds, and
    infers the weakest sufficient label of every read — mirroring the
    dynamic advisor's precedence so a static label is never weaker than
    the advisor's schedule-dependent recommendation. *)

type verdict = Corollary2 | Corollary1 | Theorem1 | Unproved of string

val verdict_to_string : verdict -> string

type read_report = {
  racc : Summary.access;
  declared : Pir.rlabel;
  inferred : Pir.rlabel;
  rproof : string;  (** one-line justification of the inferred label *)
}

type t = {
  verdict : verdict;
  verdict_proof : string;
  failing : (string * string) option;  (** site pair behind [Unproved] *)
  reads : read_report list;
}

val classify : Srace.t -> t

(** {1 Label order} *)

val strength : Pir.rlabel -> int

(** [label_geq ~declared ~inferred]: the declared label validates
    whatever the inferred one validates (groups compare by term-set
    inclusion). *)
val label_geq : declared:Pir.rlabel -> inferred:Pir.rlabel -> bool

(** {1 Weakest lattice model (ISSUE 7)} *)

(** The static mirror of [Mc_consistency.Lattice.t], restricted to the
    points a Pir program can require: groups carry symbolic terms, and
    the session points below PRAM are reached by weakening a read whose
    conflicting-write set is provably empty. *)
type lmodel =
  | M_session of { ryw : bool; mr : bool }
  | M_pram
  | M_group of Pir.term list
  | M_causal

val model_strength : lmodel -> int
val lmodel_to_string : lmodel -> string

(** Lattice order on the static points: session guarantees compare
    pointwise, groups by term-set inclusion, otherwise by strength. *)
val model_leq : lmodel -> lmodel -> bool

(** Least upper bound; incomparable groups escalate to [M_causal], as
    {!label_geq}'s join does. *)
val model_join : lmodel -> lmodel -> lmodel

type read_model = {
  rm_acc : Summary.access;
  rm_model : lmodel;  (** weakest point sufficing for this read *)
  rm_proof : string;  (** one-line justification *)
}

(** One row of the machine-checkable proof trace: the level of one
    lattice axiom the program needs, why, and the read sites forcing
    it. The five rows are exactly the fields of
    [Mc_consistency.Lattice.axioms]; rebuilding a model from the
    [level] column yields [weakest] again. *)
type axiom_req = {
  axiom : string;  (** po | wi | sync | wo | rt *)
  level : string;
  needed : bool;
  reason : string;
  sites : string list;
}

type lattice_report = {
  weakest : lmodel;  (** join of the per-read requirements *)
  read_models : read_model list;
  axioms : axiom_req list;
}

(** [infer_lattice sr cl] is the weakest uniform lattice point the
    program provably tolerates, with its per-read decomposition and
    per-axiom proof trace. Sound alongside any {!verdict}: a read keeps
    its inferred label unless its conflicting-write set is empty at
    every instance, in which case its candidate writer is
    model-independent and only the reader's own session guarantees can
    matter. *)
val infer_lattice : Srace.t -> t -> lattice_report
