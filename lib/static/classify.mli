(** Theorem classification and weakest-label inference (ISSUE 6
    tentpole, part 4b): proves a program SC by Corollary 2 (PRAM
    phases), Corollary 1 (entry consistency) or Theorem 1 (mixed
    labels), independent of process count and iteration bounds, and
    infers the weakest sufficient label of every read — mirroring the
    dynamic advisor's precedence so a static label is never weaker than
    the advisor's schedule-dependent recommendation. *)

type verdict = Corollary2 | Corollary1 | Theorem1 | Unproved of string

val verdict_to_string : verdict -> string

type read_report = {
  racc : Summary.access;
  declared : Pir.rlabel;
  inferred : Pir.rlabel;
  rproof : string;  (** one-line justification of the inferred label *)
}

type t = {
  verdict : verdict;
  verdict_proof : string;
  failing : (string * string) option;  (** site pair behind [Unproved] *)
  reads : read_report list;
}

val classify : Srace.t -> t

(** {1 Label order} *)

val strength : Pir.rlabel -> int

(** [label_geq ~declared ~inferred]: the declared label validates
    whatever the inferred one validates (groups compare by term-set
    inclusion). *)
val label_geq : declared:Pir.rlabel -> inferred:Pir.rlabel -> bool
