(** The [Mc_static] analysis driver: summary → skeleton → race
    detection → classification over one {!Pir} program, with results
    rendered as [S0xx] {!Diag} diagnostics, a text report or JSON.
    Every judgement is execution-free and holds at every parameter
    valuation. *)

type report = {
  program : string;
  verdict : Classify.verdict;
  verdict_proof : string;
  srace : Srace.t;
  reads : Classify.read_report list;
  lattice : Classify.lattice_report;
      (** weakest lattice model the program provably tolerates, with
          per-read decomposition and per-axiom proof trace *)
  diags : Mc_analysis.Diag.t list;
      (** sorted with [Mc_analysis.Diag.compare] *)
}

val analyze : Pir.t -> report
val has_errors : report -> bool

(** Number of diagnostics at exactly the given severity. *)
val count : Mc_analysis.Diag.severity -> report -> int

(** [pp ~proof ~lattice] renders the verdict, (optionally) the per-read
    label table with justifications, (optionally) the weakest-model
    section with its axiom table, the diagnostics and a summary
    line. *)
val pp : ?proof:bool -> ?lattice:bool -> Format.formatter -> report -> unit

val to_json : report -> string
