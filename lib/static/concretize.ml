(* Concretizer: compile a Pir program at concrete parameters into a real
   [Mc_dsm.Runtime] execution, so every static verdict can be validated
   differentially against the dynamic pipeline (Race / Advisor / Online).

   Each recorded operation is logged with the site path of the statement
   that issued it ([Pir.seg_of_stmt], the same traversal the Summary pass
   uses), and the recorded history is zipped per process in invocation
   order, yielding an op-id -> site map that lets tests compare dynamic
   R001/R002/A00x findings with static S0xx findings site by site. *)

module Op = Mc_history.Op
module Config = Mc_dsm.Config
module Runtime = Mc_dsm.Runtime
module Api = Mc_dsm.Api

type env = {
  params : (string * int) list;
  binders : (string * int) list;
  proc : int;
  role_ids : (string * int list) list;  (* role name -> sorted proc ids *)
  inst_index : int;  (* index of this instance within its role *)
  n_insts : int;  (* number of instances of this role *)
}

let rec eval env = function
  | Pir.Int n -> n
  | Pir.Param p -> (
    match List.assoc_opt p env.params with
    | Some v -> v
    | None -> invalid_arg (Printf.sprintf "Concretize: unknown parameter %s" p))
  | Pir.Var v -> (
    match List.assoc_opt v env.binders with
    | Some x -> x
    | None -> invalid_arg (Printf.sprintf "Concretize: unbound loop variable %s" v))
  | Pir.Proc -> env.proc
  | Pir.Add (a, b) -> eval env a + eval env b
  | Pir.Sub (a, b) -> eval env a - eval env b
  | Pir.Neg a -> -eval env a
  | Pir.Mul (k, a) -> k * eval env a

let eval_loc env (l : Pir.locpat) =
  if l.index = [] then l.base
  else
    l.base ^ ":" ^ String.concat ":" (List.map (fun t -> string_of_int (eval env t)) l.index)

let eval_label env = function
  | Pir.L_pram -> Op.PRAM
  | Pir.L_causal -> Op.Causal
  | Pir.L_group ts ->
    Op.Group (List.sort_uniq compare (List.map (eval env) ts))

(* the block of [0, total) owned by instance [idx] of [n] (the same
   partition as [Linear_solver.rows_of_worker]) *)
let owned_block ~total ~n ~idx =
  let per = total / n and extra = total mod n in
  let lo = (idx * per) + min idx extra in
  let hi = lo + per + (if idx < extra then 1 else 0) - 1 in
  (lo, hi)

(* ------------------------------------------------------------------ *)
(* Role-range resolution                                               *)
(* ------------------------------------------------------------------ *)

let resolve_roles (p : Pir.t) params =
  let env0 =
    { params; binders = []; proc = 0; role_ids = []; inst_index = 0; n_insts = 1 }
  in
  let role_ids =
    List.map
      (fun (r : Pir.role) ->
        let ids =
          match r.range with
          | Pir.Single t -> [ eval env0 t ]
          | Pir.Span { lo; hi } ->
            let lo = eval env0 lo and hi = eval env0 hi in
            if hi < lo then []
            else List.init (hi - lo + 1) (fun i -> lo + i)
        in
        (r.rname, ids))
      p.roles
  in
  let all = List.concat_map snd role_ids in
  let sorted = List.sort_uniq compare all in
  if List.length sorted <> List.length all then
    invalid_arg "Concretize: overlapping role ranges";
  let procs = match List.rev sorted with [] -> 0 | hi :: _ -> hi + 1 in
  if sorted <> List.init procs (fun i -> i) then
    invalid_arg "Concretize: role ranges must cover process ids 0..max contiguously";
  (role_ids, procs)

(* groups mentioned by group-labelled reads, for [Config.groups] *)
let collect_groups (p : Pir.t) params role_ids =
  let acc = ref [] in
  let rec walk env body =
    List.iter
      (fun (s : Pir.stmt) ->
        match s with
        | Pir.Read { label = Pir.L_group ts; _ } ->
          let g = List.sort_uniq compare (List.map (eval env) ts) in
          if not (List.mem g !acc) then acc := g :: !acc
        | Pir.Locked { body; _ }
        | Pir.For { body; _ }
        | Pir.For_owned { body; _ }
        | Pir.For_procs { body; _ } ->
          walk env body
        | _ -> ())
      body
  in
  List.iter
    (fun (r : Pir.role) ->
      let ids = List.assoc r.rname role_ids in
      List.iteri
        (fun idx proc ->
          walk
            { params; binders = []; proc; role_ids; inst_index = idx;
              n_insts = List.length ids }
            r.body)
        ids)
    p.roles;
  List.rev !acc

(* ------------------------------------------------------------------ *)
(* Execution                                                           *)
(* ------------------------------------------------------------------ *)

(* run one role instance, appending the site of every recorded operation
   to [log] in issue order *)
let exec_role (p : Pir.t) env (api : Api.t) log (r : Pir.role) =
  let push site = log := site :: !log in
  let rec block env path body =
    List.iteri (fun i s -> stmt env (Pir.site_join path (Pir.seg_of_stmt i s)) s) body
  and stmt env site (s : Pir.stmt) =
    match s with
    | Pir.Read { loc; label } ->
      push site;
      ignore (api.read ~label:(eval_label env label) (eval_loc env loc))
    | Pir.Write { loc; value } ->
      push site;
      api.write (eval_loc env loc) (eval env value)
    | Pir.Fetch_add { loc; delta } ->
      let l = eval_loc env loc in
      push (site ^ "/fa.r");
      let v = api.read ~label:Op.Causal l in
      push (site ^ "/fa.w");
      api.write l (v + eval env delta)
    | Pir.Await { loc; value } ->
      push site;
      api.await (eval_loc env loc) (eval env value)
    | Pir.Barrier ->
      push site;
      api.barrier ()
    | Pir.Compute c -> api.compute c
    | Pir.Locked { lock; mode; body } ->
      let l = eval_loc env lock in
      push (site ^ "/acq");
      (match mode with Pir.R -> api.read_lock l | Pir.W -> api.write_lock l);
      block env site body;
      push (site ^ "/rel");
      (match mode with Pir.R -> api.read_unlock l | Pir.W -> api.write_unlock l)
    | Pir.For { var; lo; hi; body } ->
      let lo = eval env lo and hi = eval env hi in
      for v = lo to hi do
        block { env with binders = (var, v) :: env.binders } site body
      done
    | Pir.For_owned { var; total; body } ->
      let total = eval env total in
      let lo, hi = owned_block ~total ~n:env.n_insts ~idx:env.inst_index in
      for v = lo to hi do
        block { env with binders = (var, v) :: env.binders } site body
      done
    | Pir.For_procs { var; over; body } ->
      let ids =
        match List.assoc_opt over env.role_ids with
        | Some ids -> ids
        | None -> invalid_arg (Printf.sprintf "Concretize: unknown role %s" over)
      in
      List.iter
        (fun v -> block { env with binders = (var, v) :: env.binders } site body)
        ids
  in
  block env (Pir.site_join p.name r.rname) r.body

type run = {
  history : Mc_history.History.t;
  procs : int;
  sites : (int, string) Hashtbl.t;  (* op id -> issuing site path *)
  online : Mc_consistency.Online.t option;
  time : float;
}

let site_of run id = Hashtbl.find_opt run.sites id

let run ?(propagation = Config.Lazy) ?(check_online = false) ?(params = [])
    (p : Pir.t) =
  let params =
    List.map
      (fun (d : Pir.param) ->
        (d.pname, match List.assoc_opt d.pname params with Some v -> v | None -> d.default))
      p.params
  in
  let role_ids, procs = resolve_roles p params in
  let groups = collect_groups p params role_ids in
  let engine = Mc_sim.Engine.create () in
  let cfg =
    { (Config.default ~procs) with propagation; record = true; check_online; groups }
  in
  let rt = Runtime.create engine cfg in
  let logs = Array.make procs [] in
  List.iter
    (fun (r : Pir.role) ->
      let ids = List.assoc r.rname role_ids in
      let n_insts = List.length ids in
      List.iteri
        (fun idx proc ->
          let log = ref [] in
          Api.spawn rt proc (fun api ->
              exec_role p
                { params; binders = []; proc; role_ids; inst_index = idx; n_insts }
                api log r;
              logs.(proc) <- List.rev !log))
        ids)
    p.roles;
  let time = Runtime.run rt in
  let history = Runtime.history rt in
  (* zip each process's recorded ops (in invocation order) with its log *)
  let sites = Hashtbl.create 256 in
  let per_proc = Array.make procs [] in
  Array.iter
    (fun (o : Op.t) -> per_proc.(o.Op.proc) <- (o.Op.inv_seq, o.Op.id) :: per_proc.(o.Op.proc))
    (Mc_history.History.ops history);
  Array.iteri
    (fun proc entries ->
      let entries = List.sort compare entries in
      let log = logs.(proc) in
      if List.length entries <> List.length log then
        failwith
          (Printf.sprintf
             "Concretize: process %d recorded %d operations but logged %d sites"
             proc (List.length entries) (List.length log));
      List.iter2 (fun (_, id) site -> Hashtbl.replace sites id site) entries log)
    per_proc;
  { history; procs; sites; online = Runtime.online_checker rt; time }
