(** Access summaries (ISSUE 6 tentpole, part 2): one traversal per role
    collects every memory access with its must-lockset, symbolic barrier
    phase and binder chain; [instantiate] then lifts an access into
    {!Sym} form on behalf of a generic role instance for the pairwise
    analyses ({!Srace}, {!Classify}). *)

type binder_kind =
  | B_for of { lo : Pir.term; hi : Pir.term }
  | B_owned of { total : Pir.term }
  | B_procs of { over : string }

type binder = { bvar : string; bkind : binder_kind; bsite : string }

type access_kind =
  | K_read of Pir.rlabel
  | K_write
  | K_fa_read
  | K_fa_write
  | K_await

type access = {
  aid : int;
  role : string;
  site : string;
  kind : access_kind;
  loc : Pir.locpat;
  value : Pir.term option;  (** writes with a static value; awaits *)
  locks : (Pir.locpat * Pir.lock_mode) list;  (** must-lockset, innermost first *)
  phase : Pir.term;  (** barriers program-order before this access *)
  pos : int;  (** pre-order position within the role body *)
  binders : binder list;  (** outermost first *)
  in_sync_loop : bool;  (** under an await-containing [For] *)
  in_data_loop : bool;  (** under a loop the skeleton keeps opaque *)
}

val is_write : access -> bool
val is_await : access -> bool
val kind_to_string : access_kind -> string

type role_info = {
  rname : string;
  range : Pir.range;
  accesses : access list;
  total_phase : Pir.term;
  misaligned : string option;
      (** a site whose barrier structure is not expressible as an
          instance-independent affine phase, if any *)
}

type t = { prog : Pir.t; roles : role_info list; accesses : access list }

val build : Pir.t -> t

(** {1 Generic instances} *)

type inst = {
  irole : string;
  iidx : int;  (** 0 | 1 for span roles, 0 for singletons *)
  iproc : Sym.t;
  isingle : bool;
}

val inst_key : inst -> string

type actx = {
  ctx : Sym.ctx;
  summary : t;
  insts : inst list;
  role_proc_bounds : (string * (int option * int option)) list;
  role_proc_ranges : (string * (Sym.t * Sym.t)) list;
      (** symbolic inclusive process-id range per role *)
}

val sym_of_term :
  binders:(string * Sym.t) list -> proc:Sym.t -> Pir.term -> Sym.t

val actx_create : t -> actx
val insts_of_role : actx -> string -> inst list

(** Representative pairs of provably-distinct instances covering all
    cross-instance interactions of two accesses' roles. *)
val distinct_inst_pairs : actx -> string -> string -> (inst * inst) list

type iaccess = {
  acc : access;
  inst : inst;
  iloc : Sym.t list;
  ivalue : Sym.t option;
  ilocks : (string * Sym.t list * Pir.lock_mode) list;
  iphase : Sym.t;
  ibinders : (string * Sym.atom) list;  (** bsite-keyed, outermost first *)
}

(** Instantiate an access on behalf of a generic instance, allocating
    fresh binder atoms (with bounds and ownership registered in the
    context) so the two sides of a pair analysis never alias. *)
val instantiate : actx -> access -> inst -> iaccess

(** The equations forcing two instantiated accesses' concrete locations
    equal, or [None] when the bases or arities can never match. *)
val loc_eqs : iaccess -> iaccess -> Sym.t list option

val kinds_conflict : access -> access -> bool

(** Program-wide barrier alignment: [Ok total] when every role's barrier
    structure is an instance-independent affine phase and all totals
    provably coincide. *)
val alignment : actx -> (Sym.t, string) result
