(** Affine symbolic integer terms — the arithmetic core of [Mc_static].

    A term is [const + Σ coeff·atom] over atoms standing for program
    parameters, loop-binder occurrences, generic role instances and the
    symbolic base iteration of an unrolled sync loop. All exported
    judgements are conservative: equality and disequality are only
    claimed when they hold for {e every} integer valuation compatible
    with the registered atom bounds; the unknown case must be treated by
    callers as "may be equal" / "may conflict". Disequality combines a
    constant test, a gcd divisibility test (which discharges the
    even/odd phase patterns of barrier programs) and interval arithmetic
    over atom bounds. *)

type atom =
  | Aparam of string  (** program parameter, bounded below by its [min] *)
  | Avar of int  (** one binder occurrence of a loop variable *)
  | Ainst of string * int  (** generic instance [0|1] of a span role *)
  | Aiter of int  (** symbolic base iteration of a sync-loop group *)

type t = private { const : int; terms : (atom * int) list }

val const : int -> t
val atom : atom -> t
val zero : t
val add : t -> t -> t
val sub : t -> t -> t
val neg : t -> t
val scale : int -> t -> t
val is_zero : t -> bool
val is_const : t -> bool
val const_value : t -> int option
val atoms : t -> atom list

(** Syntactic equality of normal forms: equal under every valuation. *)
val must_equal : t -> t -> bool

(** {1 Contexts} *)

(** Mutable registry of atom bounds (inclusive, [None] = unbounded) and
    owned-loop binder metadata, threaded through one whole analysis. *)
type ctx

val ctx_create : unit -> ctx
val fresh_var : ctx -> atom
val fresh_iter : ctx -> atom
val set_bounds : ctx -> atom -> int option * int option -> unit

(** Declare a binder occurrence as an owned-loop variable: occurrences of
    the same [loop] on behalf of provably different instances are
    disjoint (the blocks partition the index space). *)
val set_owned : ctx -> atom -> loop:string -> inst:t -> unit

(** Register a symbolic inclusive range for an atom whose bounds are
    terms over parameters (span-role instances, [for_procs] binders):
    disequality can then discharge values provably outside it, e.g. a
    mid-role process id against the boundary singleton [P-1]. *)
val set_range : ctx -> atom -> lo:t -> hi:t -> unit

(** Interval bounds of a term under the registered atom bounds. *)
val eval_bounds : ctx -> t -> int option * int option

(** No integer valuation within bounds makes the term zero. *)
val definitely_nonzero : ctx -> t -> bool

(** {1 Equation systems}

    A system is a conjunction of [t = 0] equations (typically location
    unifiers). The solver eliminates unit-coefficient atoms; [Unsat] is
    only answered when the system provably has no integer solution. *)

type subst

type solution = Unsat | Sat of subst

val solve : ctx -> t list -> solution

(** Rewrite a term through the substitution of a [Sat] answer; its value
    is preserved on every solution of the solved system. *)
val reduce : subst -> t -> t

(** [forced_zero_given ctx eqs d]: on every solution of [eqs], [d] = 0.
    Vacuously true when [eqs] is unsatisfiable. *)
val forced_zero_given : ctx -> t list -> t -> bool

(** [nonzero_given ctx eqs d]: on every solution of [eqs], [d] ≠ 0.
    Vacuously true when [eqs] is unsatisfiable. *)
val nonzero_given : ctx -> t list -> t -> bool

val satisfiable : ctx -> t list -> bool

val atom_to_string : atom -> string
val to_string : t -> string
