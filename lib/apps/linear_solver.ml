module Api = Mc_dsm.Api
module Op = Mc_history.Op

module Problem = struct
  type t = { n : int; a : int array array; b : int array; x0 : int array }

  let generate ~seed ~n =
    let rng = Mc_util.Rng.make seed in
    let a = Array.make_matrix n n 0 in
    for i = 0 to n - 1 do
      let row_sum = ref 0 in
      for j = 0 to n - 1 do
        if i <> j then begin
          let v = Fixed.of_float (Mc_util.Rng.float_in rng (-1.0) 1.0) in
          a.(i).(j) <- v;
          row_sum := !row_sum + abs v
        end
      done;
      (* strict diagonal dominance guarantees Jacobi convergence *)
      a.(i).(i) <- !row_sum + Fixed.of_float (Mc_util.Rng.float_in rng 1.0 2.0)
    done;
    let b = Array.init n (fun _ -> Fixed.of_float (Mc_util.Rng.float_in rng (-5.0) 5.0)) in
    let x0 = Array.make n 0 in
    { n; a; b; x0 }
end

type variant = Barrier_pram | Handshake_causal | Handshake_pram | Handshake_group

let variant_to_string = function
  | Barrier_pram -> "barrier+pram (Fig. 2)"
  | Handshake_causal -> "handshake+causal (Fig. 3)"
  | Handshake_pram -> "handshake+pram (Fig. 3, weakened)"
  | Handshake_group -> "handshake+group{0,i} (Sec. 3.2)"

type result = { x : int array; iterations : int; converged : bool }

let default_tol = Fixed.scale / 100

(* one Jacobi update of row [r] given estimate-read function [get] *)
let update_row (p : Problem.t) get r =
  let sum = ref 0 in
  for j = 0 to p.n - 1 do
    sum := !sum + Fixed.mul p.a.(r).(j) (get j)
  done;
  get r + Fixed.div (p.b.(r) - !sum) p.a.(r).(r)

let max_diff a b =
  let m = ref 0 in
  Array.iteri (fun i v -> m := max !m (abs (v - b.(i)))) a;
  !m

let residual (p : Problem.t) x =
  let m = ref 0 in
  for i = 0 to p.n - 1 do
    let sum = ref 0 in
    for j = 0 to p.n - 1 do
      sum := !sum + Fixed.mul p.a.(i).(j) x.(j)
    done;
    m := max !m (abs (p.b.(i) - !sum))
  done;
  !m

let loc_x i = "x:" ^ string_of_int i
let loc_done = "done"
let loc_computed i = "computed:" ^ string_of_int i
let loc_updated i = "updated:" ^ string_of_int i

(* rows owned by worker [w] of [workers], for a system of [n] rows *)
let rows_of_worker ~n ~workers w =
  let per = n / workers and extra = n mod workers in
  let lo = (w * per) + min w extra in
  let hi = lo + per + (if w < extra then 1 else 0) - 1 in
  (lo, hi)

(* the read label used by process [proc] under each variant; the group
   variant gives every process the smallest group that restores
   correctness - itself plus the coordinator, through which all
   handshake causality flows *)
let label_of_variant variant ~proc =
  match variant with
  | Barrier_pram -> Op.PRAM
  | Handshake_causal -> Op.Causal
  | Handshake_pram -> Op.PRAM
  | Handshake_group -> Op.Group (if proc = 0 then [ 0 ] else [ 0; proc ])

(* ------------------------------------------------------------------ *)
(* Figure 2: barriers                                                  *)
(*                                                                     *)
(* Each iteration is split by two barriers into a read sub-phase (all  *)
(* processes read the estimate; the coordinator decides convergence)   *)
(* and an install sub-phase (workers install new estimates unless the  *)
(* coordinator announced termination before the first barrier). The    *)
(* workers' termination check sits between the barriers, where the     *)
(* coordinator's [done] write is guaranteed visible, so every process  *)
(* executes exactly the same number of barrier episodes.               *)
(* ------------------------------------------------------------------ *)

let barrier_coordinator (p : Problem.t) ~max_iters ~tol ~label result (api : Api.t) =
  let read_x i = api.read ~label (loc_x i) in
  let prev = ref None in
  let iterations = ref 0 in
  let hit_tol = ref false in
  let finished = ref false in
  while not !finished do
    let cur = Array.init p.n read_x in
    (match !prev with
    | Some prev_x when max_diff cur prev_x <= tol -> hit_tol := true
    | Some _ | None -> ());
    prev := Some cur;
    if !hit_tol || !iterations >= max_iters then begin
      api.write loc_done 1;
      finished := true
    end
    else incr iterations;
    api.barrier ();
    api.barrier ()
  done;
  let x = Array.init p.n read_x in
  result := Some { x; iterations = !iterations; converged = !hit_tol }

let barrier_worker (p : Problem.t) ~workers ~label w (api : Api.t) =
  let lo, hi = rows_of_worker ~n:p.n ~workers w in
  let read_x i = api.read ~label (loc_x i) in
  let temp = Array.make (hi - lo + 1) 0 in
  let quit = ref false in
  while not !quit do
    for r = lo to hi do
      temp.(r - lo) <- update_row p read_x r;
      api.compute 1.0
    done;
    api.barrier ();
    if api.read ~label loc_done = 1 then quit := true
    else
      for r = lo to hi do
        api.write (loc_x r) temp.(r - lo)
      done;
    api.barrier ()
  done

(* ------------------------------------------------------------------ *)
(* Figure 3: handshaking                                               *)
(*                                                                     *)
(* The coordinator paces iterations through [computed]/[updated]       *)
(* handshake variables and awaits; termination is announced through    *)
(* [done], written before the final [updated] acknowledgements, so     *)
(* workers observe it at their next loop entry.                        *)
(* ------------------------------------------------------------------ *)

let handshake_coordinator (p : Problem.t) ~workers ~max_iters ~tol ~label result
    (api : Api.t) =
  let read_x i = api.read ~label (loc_x i) in
  let prev = ref None in
  let phase = ref 0 in
  let iterations = ref 0 in
  let hit_tol = ref false in
  let finished = ref false in
  while not !finished do
    incr phase;
    for w = 1 to workers do
      api.await (loc_computed w) !phase
    done;
    for w = 1 to workers do
      api.write (loc_computed w) (- !phase)
    done;
    for w = 1 to workers do
      api.await (loc_updated w) !phase
    done;
    incr iterations;
    let cur = Array.init p.n read_x in
    (match !prev with
    | Some prev_x when max_diff cur prev_x <= tol -> hit_tol := true
    | Some _ | None -> ());
    prev := Some cur;
    if !hit_tol || !iterations >= max_iters then begin
      api.write loc_done 1;
      finished := true
    end;
    for w = 1 to workers do
      api.write (loc_updated w) (- !phase)
    done
  done;
  let x = Array.init p.n read_x in
  result := Some { x; iterations = !iterations; converged = !hit_tol }

let handshake_worker (p : Problem.t) ~workers ~label w (api : Api.t) =
  let lo, hi = rows_of_worker ~n:p.n ~workers (w - 1) in
  let read_x i = api.read ~label (loc_x i) in
  let temp = Array.make (hi - lo + 1) 0 in
  let phase = ref 0 in
  while api.read ~label loc_done = 0 do
    incr phase;
    for r = lo to hi do
      temp.(r - lo) <- update_row p read_x r;
      api.compute 1.0
    done;
    api.write (loc_computed w) !phase;
    api.await (loc_computed w) (- !phase);
    for r = lo to hi do
      api.write (loc_x r) temp.(r - lo)
    done;
    api.write (loc_updated w) !phase;
    api.await (loc_updated w) (- !phase)
  done

(* ------------------------------------------------------------------ *)
(* Entry points                                                        *)
(* ------------------------------------------------------------------ *)

let launch ~spawn ~procs ~variant ?(max_iters = 200) ?(tol = default_tol)
    (p : Problem.t) =
  if procs < 2 then invalid_arg "Linear_solver.launch: need a coordinator and a worker";
  let workers = procs - 1 in
  let result = ref None in
  (match variant with
  | Barrier_pram ->
    spawn 0 (fun api ->
        barrier_coordinator p ~max_iters ~tol
          ~label:(label_of_variant variant ~proc:0) result api);
    for w = 1 to workers do
      spawn w (fun api ->
          barrier_worker p ~workers ~label:(label_of_variant variant ~proc:w)
            (w - 1) api)
    done
  | Handshake_causal | Handshake_pram | Handshake_group ->
    spawn 0 (fun api ->
        handshake_coordinator p ~workers ~max_iters ~tol
          ~label:(label_of_variant variant ~proc:0) result api);
    for w = 1 to workers do
      spawn w (fun api ->
          handshake_worker p ~workers ~label:(label_of_variant variant ~proc:w) w
            api)
    done);
  result

let reference ~variant ?(max_iters = 200) ?(tol = default_tol) (p : Problem.t) =
  let x = Array.copy p.x0 in
  let step () = Array.init p.n (fun r -> update_row p (fun j -> x.(j)) r) in
  match variant with
  | Barrier_pram ->
    (* convergence is decided on the pre-install estimate *)
    let prev = ref None in
    let iterations = ref 0 in
    let hit_tol = ref false in
    let finished = ref false in
    while not !finished do
      let cur = Array.copy x in
      (match !prev with
      | Some prev_x when max_diff cur prev_x <= tol -> hit_tol := true
      | Some _ | None -> ());
      prev := Some cur;
      if !hit_tol || !iterations >= max_iters then finished := true
      else begin
        incr iterations;
        let temp = step () in
        Array.blit temp 0 x 0 p.n
      end
    done;
    { x; iterations = !iterations; converged = !hit_tol }
  | Handshake_causal | Handshake_pram | Handshake_group ->
    (* convergence is decided on the post-install estimate *)
    let prev = ref None in
    let iterations = ref 0 in
    let hit_tol = ref false in
    let finished = ref false in
    while not !finished do
      incr iterations;
      let temp = step () in
      Array.blit temp 0 x 0 p.n;
      (match !prev with
      | Some prev_x when max_diff x prev_x <= tol -> hit_tol := true
      | Some _ | None -> ());
      prev := Some (Array.copy x);
      if !hit_tol || !iterations >= max_iters then finished := true
    done;
    { x; iterations = !iterations; converged = !hit_tol }

let solver_groups ~procs =
  [ 0 ] :: List.init (procs - 1) (fun w -> [ 0; w + 1 ])

(* Sharded placement (Barrier_pram variant): every process subscribes
   exactly the shards it writes — worker w its own rows, the coordinator
   the [done] flag. Everything else (foreign rows at the workers, the
   whole estimate at the coordinator, [done] at the workers) is reached
   by read-miss fetches, which the two barriers per iteration make
   fresh: the fetch home is a barrier member, so it has applied every
   pre-barrier write of its shards. *)
let subscribe_shards pl ~procs ~n =
  let module P = Mc_placement.Placement in
  if procs < 2 then
    invalid_arg "Linear_solver.subscribe_shards: need at least two processes";
  let workers = procs - 1 in
  P.subscribe pl ~node:0 ~shard:(P.shard_of_loc pl loc_done);
  for w = 0 to workers - 1 do
    let lo, hi = rows_of_worker ~n ~workers w in
    for r = lo to hi do
      P.subscribe pl ~node:(w + 1) ~shard:(P.shard_of_loc pl (loc_x r))
    done
  done
