(** Synchronous iterative linear-equation solver (paper Section 5.1).

    A coordinator (process 0) plus workers solve [A x = b] by Jacobi
    iteration in fixed point. Three variants:

    - {!Barrier_pram} — Figure 2: two barriers split each iteration into
      a read sub-phase and an install sub-phase; the program is
      PRAM-consistent, so PRAM reads suffice (Corollary 2).
    - {!Handshake_causal} — Figure 3: no barriers; the coordinator
      synchronizes workers through [computed]/[updated] handshake
      variables and awaits. Causal reads make the execution
      sequentially consistent (Theorem 1).
    - {!Handshake_pram} — Figure 3 with reads weakened to PRAM: the
      paper notes "it is possible to show that inconsistent values of
      the matrix are read in that case"; this variant exists to
      demonstrate exactly that (the run stays mixed consistent but can
      diverge from the sequential reference).

    Both distributed variants match their sequential references exactly
    (integer arithmetic, identical schedules) when the consistency level
    is sufficient. *)

module Problem : sig
  type t = {
    n : int;
    a : int array array;  (** fixed-point, diagonally dominant *)
    b : int array;  (** fixed-point *)
    x0 : int array;  (** initial estimate *)
  }

  (** [generate ~seed ~n] builds a random diagonally dominant system. *)
  val generate : seed:int -> n:int -> t
end

type variant =
  | Barrier_pram
  | Handshake_causal
  | Handshake_pram
  | Handshake_group
      (** Figure 3 with reads labelled [Group [0; self]] — the smallest
          group that restores sequential consistency, since all handshake
          causality flows through the coordinator (Section 3.2). Requires
          a runtime configured with those groups; see
          {!solver_groups}. *)

val variant_to_string : variant -> string

type result = {
  x : int array;  (** final estimate, fixed point *)
  iterations : int;  (** install phases executed *)
  converged : bool;  (** false when the iteration cap fired *)
}

(** [launch ~spawn ~procs ~variant ?max_iters ?tol problem] spawns the
    coordinator (process 0) and [procs - 1] workers on any memory that
    provides the {!Mc_dsm.Api.t} operations. The returned cell is filled
    by the coordinator when the computation finishes (i.e. after the
    engine runs). [tol] is a fixed-point magnitude (default
    [Fixed.scale / 100]). *)
val launch :
  spawn:(int -> (Mc_dsm.Api.t -> unit) -> unit) ->
  procs:int ->
  variant:variant ->
  ?max_iters:int ->
  ?tol:int ->
  Problem.t ->
  result option ref

(** [reference ~variant ?max_iters ?tol problem] is the sequential
    execution with the same schedule and arithmetic. *)
val reference : variant:variant -> ?max_iters:int -> ?tol:int -> Problem.t -> result

(** [residual problem x] is the max-norm residual [|b - A x|] in fixed
    point, for sanity checks. *)
val residual : Problem.t -> int array -> int

(** [solver_groups ~procs] is the group list a runtime must be configured
    with to run the {!Handshake_group} variant. *)
val solver_groups : procs:int -> int list list

(** [subscribe_shards pl ~procs ~n] registers the {!Barrier_pram}
    variant's write-ownership subscriptions in placement [pl]: worker
    [w] subscribes the shards of its own rows, the coordinator the shard
    of the [done] flag. All other accesses (foreign rows, the estimate
    at the coordinator, [done] at the workers) become read-miss fetches;
    the two barriers per iteration keep them fresh, since every fetch
    home is a barrier member with all pre-barrier writes of its shards
    applied. *)
val subscribe_shards : Mc_placement.Placement.t -> procs:int -> n:int -> unit
