(** The Section-5 applications as [Mc_static] IR programs: parameterized
    data-independent models whose static verdicts match the paper — the
    barrier solver and the EM field prove SC by Corollary 2 with PRAM
    reads, the handshake solver by Theorem 1 with group reads routed
    through the coordinator, and the (idealized, entry-consistent) lock
    cholesky by Corollary 1 with causal reads. Concretized through
    [Mc_static.Concretize] for the differential tests. *)

val solver_barrier : Mc_static.Pir.t

type solver_labels = Hs_causal | Hs_group | Hs_pram

val solver_labels_to_string : solver_labels -> string

(** Defaults to the paper's minimal [Hs_group] labelling: each worker
    reads with group [{0, self}]. [Hs_pram] is the deliberately
    under-labelled variant the analyzer must reject. *)
val solver_handshake : ?labels:solver_labels -> unit -> Mc_static.Pir.t

val em_field : Mc_static.Pir.t
val cholesky : Mc_static.Pir.t

(** The CLI set: barrier and group-handshake solvers, EM field,
    cholesky. *)
val all : unit -> Mc_static.Pir.t list
