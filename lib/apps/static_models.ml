(* The three Section-5 applications re-expressed in the [Mc_static] IR
   (ISSUE 6 tentpole): parameterized, data-independent models whose
   static verdicts must match the paper — the barrier solver and the EM
   field keep PRAM phases (Corollary 2), the handshake solver needs
   group visibility through the coordinator (Theorem 1), and the lock
   cholesky is entry-consistent (Corollary 1) — and whose
   concretizations feed the differential tests.

   The models idealize the dynamic apps where data-dependence cannot be
   expressed: convergence tests become a fixed iteration count [T],
   sparse dependency structure becomes dense, and cholesky is written
   with every access under its column lock (the idealized
   entry-consistent discipline the paper describes). *)

module P = Mc_static.Pir

let n = P.Param "N"
and procs = P.Param "P"
and iters = P.Param "T"

let t = P.Var "t"
and i = P.Var "i"
and j = P.Var "j"
and k = P.Var "k"
and r = P.Var "r"
and w = P.Var "w"

let last_index p = P.Sub (p, P.Int 1)

(* ------------------------------------------------------------------ *)
(* Figure 2: the barrier solver (Corollary 2, PRAM reads)              *)
(* ------------------------------------------------------------------ *)

let sweep ?(label = P.L_pram) base =
  P.for_ "j" (P.Int 0) (last_index n) [ P.read ~label (P.loc base [ j ]) ]

let solver_barrier : P.t =
  {
    name = "solver-barrier";
    params = [ P.param "N" 8; P.param ~min:2 "P" 4; P.param "T" 3 ];
    roles =
      [
        {
          rname = "coord";
          range = P.Single (P.Int 0);
          body =
            [
              P.for_ "t" (P.Int 1) iters [ sweep "x"; P.bar; P.bar ];
              P.write (P.loc0 "done") (P.Int 1);
            ];
        };
        {
          rname = "worker";
          range = P.Span { lo = P.Int 1; hi = last_index procs };
          body =
            [
              P.for_ "t" (P.Int 1) iters
                [
                  sweep "x";
                  P.compute 1.0;
                  P.bar;
                  P.read ~label:P.L_pram (P.loc0 "done");
                  P.for_owned "r" n [ P.write (P.loc "x" [ r ]) t ];
                  P.bar;
                ];
            ];
        };
      ];
  }

(* ------------------------------------------------------------------ *)
(* Figure 3: the handshake solver (Theorem 1, group reads)             *)
(* ------------------------------------------------------------------ *)

type solver_labels = Hs_causal | Hs_group | Hs_pram

let solver_labels_to_string = function
  | Hs_causal -> "causal"
  | Hs_group -> "group"
  | Hs_pram -> "pram"

(* the smallest labels restoring correctness route all visibility
   through the coordinator: each worker reads with group {0, self} *)
let handshake_labels = function
  | Hs_causal -> (P.L_causal, P.L_causal)
  | Hs_group -> (P.L_group [ P.Int 0 ], P.L_group [ P.Int 0; P.Proc ])
  | Hs_pram -> (P.L_pram, P.L_pram)

let solver_handshake ?(labels = Hs_group) () : P.t =
  let clabel, wlabel = handshake_labels labels in
  {
    name = "solver-handshake-" ^ solver_labels_to_string labels;
    params = [ P.param "N" 8; P.param ~min:2 "P" 4; P.param "T" 3 ];
    roles =
      [
        {
          rname = "coord";
          range = P.Single (P.Int 0);
          body =
            [
              P.for_ "t" (P.Int 1) iters
                [
                  P.for_procs "w" "worker"
                    [ P.await (P.loc "computed" [ w ]) t ];
                  P.for_procs "w" "worker"
                    [ P.write (P.loc "computed" [ w ]) (P.Neg t) ];
                  P.for_procs "w" "worker"
                    [ P.await (P.loc "updated" [ w ]) t ];
                  sweep ~label:clabel "x";
                  P.write (P.loc0 "done") t;
                  P.for_procs "w" "worker"
                    [ P.write (P.loc "updated" [ w ]) (P.Neg t) ];
                ];
            ];
        };
        {
          rname = "worker";
          range = P.Span { lo = P.Int 1; hi = last_index procs };
          body =
            [
              P.for_ "t" (P.Int 1) iters
                [
                  P.read ~label:wlabel (P.loc0 "done");
                  sweep ~label:wlabel "x";
                  P.compute 1.0;
                  P.write (P.loc "computed" [ P.Proc ]) t;
                  P.await (P.loc "computed" [ P.Proc ]) (P.Neg t);
                  P.for_owned "r" n [ P.write (P.loc "x" [ r ]) t ];
                  P.write (P.loc "updated" [ P.Proc ]) t;
                  P.await (P.loc "updated" [ P.Proc ]) (P.Neg t);
                ];
            ];
        };
      ];
  }

(* ------------------------------------------------------------------ *)
(* Section 5.2: the EM field (Corollary 2, PRAM reads)                 *)
(* ------------------------------------------------------------------ *)

(* One strip of rows per process; only boundary rows cross strips, so
   the model keeps per-process boundary locations [e[p][j]] / [h[p][j]].
   The first and last strips lack one neighbour each, hence three
   roles. *)

let cols = P.Param "C"

let col_sweep mk = P.for_ "j" (P.Int 0) (last_index cols) (mk j)

let em_gather_write =
  [
    P.write (P.loc "chk" [ P.Proc ]) (P.Int 1);
    P.write (P.loc "nrg" [ P.Proc ]) (P.Int 1);
    P.bar;
  ]

let em_gather_read over =
  P.for_procs "w" over
    [
      P.read ~label:P.L_pram (P.loc "chk" [ w ]);
      P.read ~label:P.L_pram (P.loc "nrg" [ w ]);
    ]

let em_field : P.t =
  let read_ghost_h =
    col_sweep (fun j ->
        [ P.read ~label:P.L_pram (P.loc "h" [ P.Sub (P.Proc, P.Int 1); j ]) ])
  in
  let read_ghost_e =
    col_sweep (fun j ->
        [ P.read ~label:P.L_pram (P.loc "e" [ P.Add (P.Proc, P.Int 1); j ]) ])
  in
  let publish base = col_sweep (fun j -> [ P.write (P.loc base [ P.Proc; j ]) t ]) in
  {
    name = "em-field";
    params = [ P.param "C" 4; P.param ~min:3 "P" 4; P.param "T" 3 ];
    roles =
      [
        {
          rname = "first";
          range = P.Single (P.Int 0);
          body =
            [
              P.for_ "t" (P.Int 1) iters
                [
                  P.compute 1.0;
                  P.bar;
                  read_ghost_e;
                  publish "h";
                  P.bar;
                ];
            ]
            @ em_gather_write
            @ [
                P.read ~label:P.L_pram (P.loc "chk" [ P.Proc ]);
                P.read ~label:P.L_pram (P.loc "nrg" [ P.Proc ]);
                em_gather_read "mid";
                em_gather_read "last";
              ];
        };
        {
          rname = "mid";
          range = P.Span { lo = P.Int 1; hi = P.Sub (procs, P.Int 2) };
          body =
            [
              P.for_ "t" (P.Int 1) iters
                [
                  read_ghost_h;
                  P.compute 1.0;
                  publish "e";
                  P.bar;
                  read_ghost_e;
                  publish "h";
                  P.bar;
                ];
            ]
            @ em_gather_write;
        };
        {
          rname = "last";
          range = P.Single (last_index procs);
          body =
            [
              P.for_ "t" (P.Int 1) iters
                [ read_ghost_h; P.compute 1.0; publish "e"; P.bar; P.bar ];
            ]
            @ em_gather_write;
        };
      ];
  }

(* ------------------------------------------------------------------ *)
(* Section 5.3 / Figure 5: sparse cholesky (Corollary 1, causal reads) *)
(* ------------------------------------------------------------------ *)

(* Dense idealization: column [j] depends on every earlier column, so
   [count[j]] starts at [j] and each predecessor decrements it once,
   under the column lock [l[j]] that also guards every access to the
   column data [L[i][j]]. Columns are block-partitioned across all
   processes; every process gathers at the end under read locks. *)

let cholesky : P.t =
  let body =
    [
      (* init: install the owned columns and their dependency counts *)
      P.for_owned "j" n
        [
          P.locked (P.loc "l" [ j ])
            [
              P.for_ "i" j (last_index n)
                [ P.write (P.loc "L" [ i; j ]) (P.Int 1) ];
              P.write (P.loc "count" [ j ]) j;
            ];
        ];
      P.bar;
      (* process the owned columns in order *)
      P.for_owned "j" n
        [
          P.await (P.loc "count" [ j ]) (P.Int 0);
          P.locked (P.loc "l" [ j ])
            [
              P.for_ "i" j (last_index n)
                [
                  P.read (P.loc "L" [ i; j ]);
                  P.write (P.loc "L" [ i; j ]) (P.Int 2);
                ];
              P.compute 1.0;
            ];
          P.for_ "k" (P.Add (j, P.Int 1)) (last_index n)
            [
              P.locked (P.loc "l" [ k ])
                [
                  P.for_ "i" k (last_index n)
                    [ P.fetch_add (P.loc "L" [ i; k ]) (P.Int (-1)) ];
                  P.fetch_add (P.loc "count" [ k ]) (P.Int (-1));
                ];
            ];
        ];
      P.bar;
      (* gather under read locks *)
      P.for_ "j" (P.Int 0) (last_index n)
        [
          P.locked ~mode:P.R (P.loc "l" [ j ])
            [ P.for_ "i" j (last_index n) [ P.read (P.loc "L" [ i; j ]) ] ];
        ];
    ]
  in
  {
    name = "cholesky";
    params = [ P.param "N" 6; P.param ~min:2 "P" 3 ];
    roles = [ { rname = "proc"; range = P.Span { lo = P.Int 0; hi = last_index procs }; body } ];
  }

let all () =
  [
    solver_barrier;
    solver_handshake ~labels:Hs_group ();
    em_field;
    cholesky;
  ]
