(** Wire protocol of the mixed-consistency DSM (Section 6).

    All node-to-node traffic is one of these messages. Updates carry the
    writer's dependency clock for causal delivery; lock and barrier
    control messages carry dependency clocks so grantees and barrier
    leavers know which updates must be applied before they proceed. *)

(** A propagated write or decrement. *)
type update = {
  writer : int;
  useq : int;  (** per-writer update sequence number, starting at 1 *)
  dep : int array;
      (** applied-update counts per process at the writer when the update
          was issued; [dep.(writer) = useq - 1] *)
  loc : Mc_history.Op.location;
  numeric : Mc_history.Op.value;
      (** the application-level value (for decrements, the amount) *)
  tag : int;
      (** globally unique identity of the installed value, used for exact
          reads-from recording; [0] for decrements *)
  is_dec : bool;
}

(** One coalesced update inside an {!Update_batch}. Its dependency clock
    is delta-encoded against the previous update of the batch: only the
    entries that differ are listed, and the writer's own entry is never
    transmitted (it equals [useq - 1], with useqs consecutive within a
    batch). *)
type batch_item = {
  b_loc : Mc_history.Op.location;
  b_numeric : Mc_history.Op.value;
  b_tag : int;
  b_is_dec : bool;
  b_dep_delta : (int * int) list;
      (** [(process, count)] entries of the dependency clock that changed
          relative to the previous update in the batch *)
}

(** A run of consecutive updates by one writer, coalesced into a single
    wire message between synchronization points. Only the first update
    carries its full dependency clock. Because channels are FIFO and the
    items are in useq order, delivering the decoded updates in sequence
    preserves exactly the ordering guarantees of individual sends. *)
type batch = { first : update; rest : batch_item list }

(** [encode_batch updates] delta-encodes a non-empty list of updates by
    one writer with consecutive useqs. Raises [Invalid_argument]
    otherwise. *)
val encode_batch : update list -> batch

(** [decode_batch b] reconstructs the full updates, inverse of
    {!encode_batch}. *)
val decode_batch : batch -> update list

(** [batch_length b] is the number of updates carried. *)
val batch_length : batch -> int

(** [batch_delta_entries b] is the total number of transmitted
    dependency-clock delta entries, the basis of the wire-cost model for
    batches. *)
val batch_delta_entries : batch -> int

(** A propagated write scoped to one shard of a partially-replicated
    placement (see {!Mc_placement}). Instead of the global vector clock
    it carries per-shard ordering metadata: [su_sseq] numbers the
    (writer, shard) stream starting at 1, and [su_sdep] is the
    shard-scoped delta clock — the sparse per-writer applied counts of
    that shard at the writer when the update was issued, with the
    writer's own entry omitted (it equals [su_sseq - 1]). Subscribers
    deliver the update to their per-shard causal view once [su_sdep] is
    satisfied; the PRAM view applies it on receipt (tree paths are
    fixed per stream, so per-stream FIFO order is preserved). *)
type shard_update = {
  su_shard : int;
  su_writer : int;
  su_sseq : int;
  su_sdep : (int * int) list;
  su_loc : Mc_history.Op.location;
  su_numeric : Mc_history.Op.value;
  su_tag : int;
  su_is_dec : bool;
}

type msg =
  | Update of update
  | Update_batch of batch
  | Shard_update of shard_update
  | Fetch_request of { proc : int; loc : Mc_history.Op.location }
      (** demand-driven propagation for non-subscribers: ask the
          location's shard {e home} (least subscriber) for its current
          per-shard causal value *)
  | Fetch_reply of {
      loc : Mc_history.Op.location;
      numeric : Mc_history.Op.value;
      tag : int;
      clock : (int * int) list;
          (** the home's per-writer applied counts for the location's
              shard — the snapshot the fetched read is validated
              against by the partial-view online checker *)
    }
  | Lock_request of { proc : int; lock : Mc_history.Op.lock_name; write : bool }
  | Lock_grant of {
      lock : Mc_history.Op.lock_name;
      write : bool;
      seq : int;  (** manager grant-order number for the lock operation *)
      dep : int array;  (** updates the grantee must apply before entering *)
      invalid : (Mc_history.Op.location * int array) list;
          (** demand mode: locations whose reads must wait for [dep] *)
      values : (Mc_history.Op.location * int * int) list;
          (** entry mode: current values of the lock's guarded variables,
              installed at the grantee before it enters *)
    }
  | Unlock_msg of {
      proc : int;
      lock : Mc_history.Op.lock_name;
      write : bool;
      vc : int array;  (** the releaser's applied-update counts *)
      write_set : Mc_history.Op.location list;
      values : (Mc_history.Op.location * int * int) list;
          (** entry mode: (location, numeric, tag) of every value written
              in the critical section, to ride the next grant *)
    }
  | Unlock_ack of { lock : Mc_history.Op.lock_name; seq : int }
  | Flush_request of { proc : int }
  | Flush_ack of { proc : int }
  | Barrier_arrive of {
      proc : int;
      episode : int;
      vc : int array;
      members : int list;  (** empty means all processes *)
      sent : int array;
          (** multicast mode: cumulative update counts this process has
              sent to each peer (Section 6's count vectors); empty when
              vector timestamps are in use *)
    }
  | Barrier_release of {
      episode : int;
      dep : int array;
      members : int list;
      expect : int array;
          (** multicast mode: cumulative update counts the receiver must
              have received from each peer before leaving the barrier;
              empty when vector timestamps are in use *)
    }

(** [kind msg] is a short label for per-kind message statistics. *)
val kind : msg -> string
