(** Per-node replicated store with dual consistency views (Section 6).

    Every node keeps a full copy of the shared memory in two views: the
    {e PRAM view}, to which incoming updates are applied as soon as they
    are received (channels are FIFO, so per-writer order is preserved),
    and the {e causal view}, to which updates are applied in causal order
    using vector-timestamp delivery. Reads of either label return local
    values; they differ only in which view they consult.

    Each installed value carries a unique [tag] used for exact reads-from
    recording; decrements adjust the numeric value without changing the
    tag (counter objects are only ever read through awaits and
    decrements).

    Two interchangeable delivery engines implement causal delivery (see
    {!Config.delivery}). The fast engine keeps one FIFO buffer per
    writer: since channels are FIFO, the only update by writer [w] that
    can ever be deliverable is the buffered head with
    [useq = applied.(w) + 1], so deliverability is an O(procs) check of
    that single update rather than a rescan of everything pending. A
    blocked head is parked on the first clock entry still gating it, and
    is re-examined exactly when that writer's applied count advances.
    The reference engine is the seed's rescan-everything pending list,
    retained as a differential-testing oracle. Both engines apply the
    same updates in the same order and wake watchers in the same order,
    so executions are bit-identical. *)

type t

(** [create engine ~id ~n ~groups] builds a replica. [groups] lists the
    process groups for which a {e group view} is maintained (the
    Section-3.2 spectrum between PRAM and causal): a group view applies
    an update once the update's dependencies on group members are applied
    to the view and its dependencies on non-members have been received. Group reads are only
    meaningful at replicas whose process belongs to the group. *)
val create :
  Mc_sim.Engine.t ->
  id:int ->
  n:int ->
  ?groups:int list list ->
  ?causal_delivery:bool ->
  ?delivery:Config.delivery ->
  unit ->
  t
(** [causal_delivery:false] disables the causal view and group views —
    used by the multicast routing mode, where updates arrive with gaps in
    writer sequences and only the PRAM view is meaningful.
    [delivery] selects the causal-delivery engine (default
    {!Config.Fast}). *)

val id : t -> int

(** [applied t] is the vector of causally-applied update counts per
    writer — the node's vector timestamp. Returns a copy. *)
val applied : t -> int array

(** [received t] is the per-writer received-update counts (equal to the
    PRAM view's application counts). Returns a copy. *)
val received : t -> int array

(** {1 Local operations} *)

(** [local_write t ~loc ~numeric ~tag] applies a write locally to both
    views and returns the update to broadcast. *)
val local_write :
  t -> loc:Mc_history.Op.location -> numeric:int -> tag:int -> Protocol.update

(** [local_dec t ~loc ~amount] applies a decrement locally and returns
    the update to broadcast along with the pre-decrement value of the
    causal view. *)
val local_dec :
  t -> loc:Mc_history.Op.location -> amount:int -> Protocol.update * int

(** {1 Remote updates} *)

(** [receive t update] ingests an update from the network: applies it to
    the PRAM view immediately and to the causal view once deliverable,
    then wakes any watchers whose condition became true. *)
val receive : t -> Protocol.update -> unit

(** [receive_many t updates] ingests a decoded {!Protocol.Update_batch}:
    every update is processed as by {!receive}, but watchers are woken
    once, after the whole batch — one wire message, one wake sweep. *)
val receive_many : t -> Protocol.update list -> unit

(** [pending_count t] is the number of received updates still awaiting
    causal delivery. *)
val pending_count : t -> int

(** {1 Reading} *)

(** [causal_read t loc] is [(numeric, tag)] from the causal view. *)
val causal_read : t -> Mc_history.Op.location -> int * int

(** [pram_read t loc] is [(numeric, tag)] from the PRAM view. *)
val pram_read : t -> Mc_history.Op.location -> int * int

(** [group_read t ~group loc] reads the registered group view. Raises
    [Invalid_argument] if the group was not passed to {!create}. *)
val group_read : t -> group:int list -> Mc_history.Op.location -> int * int

(** {1 Dependency gating} *)

(** [dep_satisfied t dep] tests [applied >= dep] pointwise. *)
val dep_satisfied : t -> int array -> bool

(** [install_direct t ~loc ~numeric ~tag] installs a value that arrived
    out of band (entry-mode lock grants) into every view, without
    touching the update counts. *)
val install_direct : t -> loc:Mc_history.Op.location -> numeric:int -> tag:int -> unit

(** [mark_invalid t loc dep] records a demand-mode obligation: reads of
    [loc] must block until [dep] is applied. Merged pointwise with any
    existing obligation. *)
val mark_invalid : t -> Mc_history.Op.location -> int array -> unit

(** [location_blocked t loc] is true while an unmet obligation on [loc]
    exists. *)
val location_blocked : t -> Mc_history.Op.location -> bool

(** {1 Blocking} *)

(** What a watcher's predicate depends on, so the fast engine
    re-evaluates it only when that part of the replica state changes:
    [Loc l] — the value or demand-obligation of location [l]; [Clock] —
    the applied/received counts; [Any] — re-evaluated on every change
    (always safe, the default). A hint must be {e conservative}: the
    predicate may only flip when the hinted state changes. *)
type hint = Loc of Mc_history.Op.location | Clock | Any

(** [wait_until t ?hint pred] suspends the calling fiber until [pred ()]
    holds. The predicate is re-evaluated per [hint] (default [Any]:
    after every state change of the replica). Returns immediately if
    already true. *)
val wait_until : t -> ?hint:hint -> (unit -> bool) -> unit

(** [notify t] re-evaluates every watcher predicate regardless of hints;
    exposed for the runtime to call after non-replica state changes
    (e.g. lock grants). *)
val notify : t -> unit

(** [attach_metrics t reg] registers delivery metrics in [reg] and starts
    updating them: [mc_delivery_delay_us] (receipt → causal application,
    simulated µs), [mc_delivery_queue_depth] (gauge, labelled by [node]),
    [mc_update_batch_size] (updates per received batch),
    [mc_resident_objects{node}] (callback gauge, sampled at snapshot
    time), and — in sharded mode — the per-shard gap-buffer series
    [mc_shard_gap_depth{shard}] (gauge with high water, shared across
    replicas) and [mc_shard_gap_buffered_total{shard}] (updates that
    arrived ahead of a sequence gap and had to wait). *)
val attach_metrics : t -> Mc_obs.Metrics.Registry.t -> unit

(** {1 Sharded (partially-replicated) mode}

    The substrate is the gap-tolerant [causal_delivery:false] mode above:
    the global causal view is off, and the PRAM view absorbs whatever
    subset of the update stream this node receives. On top of it the
    replica keeps, {e per subscribed shard}, a causal view ordered by the
    shard-scoped delta clocks of {!Protocol.shard_update} — partition
    consistency: per-writer FIFO plus causality hold within each shard,
    and cross-shard ordering is recovered by barrier count vectors.

    Writes are only permitted to subscribed shards ([Invalid_argument]
    otherwise — a placement discipline analogous to entry consistency's
    lock discipline), which guarantees read-your-writes from the local
    PRAM view and means every location a node ever fetches is one it
    never wrote. *)

(** [subscribe_shard t ~shard ()] starts maintaining per-shard state.
    [clock] and [values] install a state-transfer snapshot: the per-writer
    applied counts and the [(loc, numeric, tag)] contents of the shard
    view at the donor. Re-subscribing replaces any previous state. *)
val subscribe_shard :
  t ->
  ?clock:(int * int) list ->
  ?values:(Mc_history.Op.location * int * int) list ->
  shard:int ->
  unit ->
  unit

(** [unsubscribe_shard t ~shard] drops the shard's view, applied counts
    and pending queue; subsequent updates of the shard are ignored. *)
val unsubscribe_shard : t -> shard:int -> unit

val shard_subscribed : t -> shard:int -> bool

(** [shard_write t ~shard ~loc ~numeric ~tag] applies a write to the PRAM
    view and the shard's causal view, and returns the stamped update to
    route down the shard's dissemination tree. Raises [Invalid_argument]
    if [shard] is not subscribed. *)
val shard_write :
  t ->
  shard:int ->
  loc:Mc_history.Op.location ->
  numeric:int ->
  tag:int ->
  Protocol.shard_update

(** [shard_dec t ~shard ~loc ~amount] is the decrement counterpart;
    also returns the pre-decrement value of the shard view. *)
val shard_dec :
  t ->
  shard:int ->
  loc:Mc_history.Op.location ->
  amount:int ->
  Protocol.shard_update * int

(** [shard_receive t su] ingests a shard update from the network: applied
    to the PRAM view immediately, and to the shard's causal view once its
    shard-scoped delta clock is satisfied. Updates of unsubscribed shards
    are dropped silently — the gap tolerance that makes partial
    replication sound — as are updates already covered by the snapshot
    clock installed at subscription time (their payloads are reflected in
    the snapshot values). *)
val shard_receive : t -> Protocol.shard_update -> unit

(** [shard_read t ~shard loc] is [(numeric, tag)] from the shard's causal
    view. Raises [Invalid_argument] if [shard] is not subscribed. *)
val shard_read : t -> shard:int -> Mc_history.Op.location -> int * int

(** [shard_clock t ~shard] is the sorted [(writer, applied)] list of the
    shard's causal view — the snapshot clock sent with fetch replies. *)
val shard_clock : t -> shard:int -> (int * int) list

(** [resident_objects t] is the number of distinct locations materialized
    at this node — the resident-state measure of EXP-SHARD. *)
val resident_objects : t -> int

(** [shard_queue_depths t] is the sorted [(shard, pending)] list of
    per-shard delivery queue depths. *)
val shard_queue_depths : t -> (int * int) list

(** [shard_pending_len t ~shard] is the number of updates of [shard]
    parked on a sequence gap ([0] when not subscribed) — the per-shard
    staleness proxy sampled by read instrumentation. *)
val shard_pending_len : t -> shard:int -> int

(** [set_shard_apply_observer t f] installs a callback fired after every
    {e remote} shard update is applied to its shard view (self-writes are
    excluded), with the update's stream coordinates. The runtime uses it
    to measure write-visibility latency per shard; when unset the cost is
    one option check per apply. *)
val set_shard_apply_observer :
  t -> (shard:int -> writer:int -> sseq:int -> unit) -> unit

