(** Per-node replicated store with dual consistency views (Section 6).

    Every node keeps a full copy of the shared memory in two views: the
    {e PRAM view}, to which incoming updates are applied as soon as they
    are received (channels are FIFO, so per-writer order is preserved),
    and the {e causal view}, to which updates are applied in causal order
    using vector-timestamp delivery. Reads of either label return local
    values; they differ only in which view they consult.

    Each installed value carries a unique [tag] used for exact reads-from
    recording; decrements adjust the numeric value without changing the
    tag (counter objects are only ever read through awaits and
    decrements).

    Two interchangeable delivery engines implement causal delivery (see
    {!Config.delivery}). The fast engine keeps one FIFO buffer per
    writer: since channels are FIFO, the only update by writer [w] that
    can ever be deliverable is the buffered head with
    [useq = applied.(w) + 1], so deliverability is an O(procs) check of
    that single update rather than a rescan of everything pending. A
    blocked head is parked on the first clock entry still gating it, and
    is re-examined exactly when that writer's applied count advances.
    The reference engine is the seed's rescan-everything pending list,
    retained as a differential-testing oracle. Both engines apply the
    same updates in the same order and wake watchers in the same order,
    so executions are bit-identical. *)

type t

(** [create engine ~id ~n ~groups] builds a replica. [groups] lists the
    process groups for which a {e group view} is maintained (the
    Section-3.2 spectrum between PRAM and causal): a group view applies
    an update once the update's dependencies on group members are applied
    to the view and its dependencies on non-members have been received. Group reads are only
    meaningful at replicas whose process belongs to the group. *)
val create :
  Mc_sim.Engine.t ->
  id:int ->
  n:int ->
  ?groups:int list list ->
  ?causal_delivery:bool ->
  ?delivery:Config.delivery ->
  unit ->
  t
(** [causal_delivery:false] disables the causal view and group views —
    used by the multicast routing mode, where updates arrive with gaps in
    writer sequences and only the PRAM view is meaningful.
    [delivery] selects the causal-delivery engine (default
    {!Config.Fast}). *)

val id : t -> int

(** [applied t] is the vector of causally-applied update counts per
    writer — the node's vector timestamp. Returns a copy. *)
val applied : t -> int array

(** [received t] is the per-writer received-update counts (equal to the
    PRAM view's application counts). Returns a copy. *)
val received : t -> int array

(** {1 Local operations} *)

(** [local_write t ~loc ~numeric ~tag] applies a write locally to both
    views and returns the update to broadcast. *)
val local_write :
  t -> loc:Mc_history.Op.location -> numeric:int -> tag:int -> Protocol.update

(** [local_dec t ~loc ~amount] applies a decrement locally and returns
    the update to broadcast along with the pre-decrement value of the
    causal view. *)
val local_dec :
  t -> loc:Mc_history.Op.location -> amount:int -> Protocol.update * int

(** {1 Remote updates} *)

(** [receive t update] ingests an update from the network: applies it to
    the PRAM view immediately and to the causal view once deliverable,
    then wakes any watchers whose condition became true. *)
val receive : t -> Protocol.update -> unit

(** [receive_many t updates] ingests a decoded {!Protocol.Update_batch}:
    every update is processed as by {!receive}, but watchers are woken
    once, after the whole batch — one wire message, one wake sweep. *)
val receive_many : t -> Protocol.update list -> unit

(** [pending_count t] is the number of received updates still awaiting
    causal delivery. *)
val pending_count : t -> int

(** {1 Reading} *)

(** [causal_read t loc] is [(numeric, tag)] from the causal view. *)
val causal_read : t -> Mc_history.Op.location -> int * int

(** [pram_read t loc] is [(numeric, tag)] from the PRAM view. *)
val pram_read : t -> Mc_history.Op.location -> int * int

(** [group_read t ~group loc] reads the registered group view. Raises
    [Invalid_argument] if the group was not passed to {!create}. *)
val group_read : t -> group:int list -> Mc_history.Op.location -> int * int

(** {1 Dependency gating} *)

(** [dep_satisfied t dep] tests [applied >= dep] pointwise. *)
val dep_satisfied : t -> int array -> bool

(** [install_direct t ~loc ~numeric ~tag] installs a value that arrived
    out of band (entry-mode lock grants) into every view, without
    touching the update counts. *)
val install_direct : t -> loc:Mc_history.Op.location -> numeric:int -> tag:int -> unit

(** [mark_invalid t loc dep] records a demand-mode obligation: reads of
    [loc] must block until [dep] is applied. Merged pointwise with any
    existing obligation. *)
val mark_invalid : t -> Mc_history.Op.location -> int array -> unit

(** [location_blocked t loc] is true while an unmet obligation on [loc]
    exists. *)
val location_blocked : t -> Mc_history.Op.location -> bool

(** {1 Blocking} *)

(** What a watcher's predicate depends on, so the fast engine
    re-evaluates it only when that part of the replica state changes:
    [Loc l] — the value or demand-obligation of location [l]; [Clock] —
    the applied/received counts; [Any] — re-evaluated on every change
    (always safe, the default). A hint must be {e conservative}: the
    predicate may only flip when the hinted state changes. *)
type hint = Loc of Mc_history.Op.location | Clock | Any

(** [wait_until t ?hint pred] suspends the calling fiber until [pred ()]
    holds. The predicate is re-evaluated per [hint] (default [Any]:
    after every state change of the replica). Returns immediately if
    already true. *)
val wait_until : t -> ?hint:hint -> (unit -> bool) -> unit

(** [notify t] re-evaluates every watcher predicate regardless of hints;
    exposed for the runtime to call after non-replica state changes
    (e.g. lock grants). *)
val notify : t -> unit

(** [attach_metrics t reg] registers delivery metrics in [reg] and starts
    updating them: [mc_delivery_delay_us] (receipt → causal application,
    simulated µs), [mc_delivery_queue_depth] (gauge, labelled by [node]),
    and [mc_update_batch_size] (updates per received batch). *)
val attach_metrics : t -> Mc_obs.Metrics.Registry.t -> unit
