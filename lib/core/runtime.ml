module Engine = Mc_sim.Engine
module Network = Mc_net.Network
module Latency = Mc_net.Latency
module Op = Mc_history.Op
module Recorder = Mc_history.Recorder
module Metrics = Mc_obs.Metrics
module Trace = Mc_obs.Trace

(* Client-side state of one node, beyond the replica itself. *)
type node = {
  replica : Replica.t;
  (* FIFO queues of resolvers: several fibers of one process (the model
     allows multi-threaded processes, Section 3) may have requests in
     flight on the same lock object *)
  grant_waiters : (Op.lock_name, (Protocol.msg -> unit) Queue.t) Hashtbl.t;
  ack_waiters : (Op.lock_name, (int -> unit) Queue.t) Hashtbl.t;
  mutable flush_waiter : (int ref * (unit -> unit)) option;
      (* remaining acks, resume *)
  released : (int list * int, int array * int array) Hashtbl.t;
      (* (member set, episode) -> (dep, expect); [] means all processes *)
  mutable barrier_episode : int;
  subset_episodes : (int list, int ref) Hashtbl.t;
  sent_updates : int array; (* cumulative updates sent to each peer *)
  mutable open_write_sets :
    (Op.lock_name * (Op.location, int * int * int) Hashtbl.t) list;
      (* loc -> (write_seq, numeric, tag) written under each
         currently-held write lock: locations feed demand-mode
         invalidations, values feed entry-mode grants. The sequence
         number orders the extracted write-set most-recent-first at
         release time *)
  mutable write_seq : int;
  (* outgoing update batching (broadcast routing only): updates buffered
     since the last flush, newest first *)
  mutable outbox : Protocol.update list;
  mutable outbox_len : int;
  mutable flush_scheduled : bool; (* a batch-window timer is outstanding *)
  (* sharded mode: fibers blocked on a read-miss fetch, per location.
     Replies from one home arrive in FIFO order, so matching the oldest
     waiter of the reply's location is exact *)
  fetch_waiters :
    (Op.location, (int * int * (int * int) list -> unit) Queue.t) Hashtbl.t;
}

(* Registry handles resolved once at creation, so the per-operation
   record is a direct increment / Welford add instead of a hash lookup
   on every call. The op counters and wait histograms are always live
   (they back [op_counts]/[wait_summaries], at the same cost as the
   seed's cached [Stats] handles); everything else hangs off
   [Config.observe]. *)
type hot = {
  c_read : Metrics.Counter.t;
  c_write : Metrics.Counter.t;
  c_init_counter : Metrics.Counter.t;
  c_decrement : Metrics.Counter.t;
  c_write_lock : Metrics.Counter.t;
  c_read_lock : Metrics.Counter.t;
  c_write_unlock : Metrics.Counter.t;
  c_read_unlock : Metrics.Counter.t;
  c_barrier : Metrics.Counter.t;
  c_barrier_subset : Metrics.Counter.t;
  c_await : Metrics.Counter.t;
  c_compute : Metrics.Counter.t;
  c_fetch : Metrics.Counter.t;
  h_read : Metrics.Histogram.t;
  h_write_lock : Metrics.Histogram.t;
  h_read_lock : Metrics.Histogram.t;
  h_write_unlock : Metrics.Histogram.t;
  h_read_unlock : Metrics.Histogram.t;
  h_barrier : Metrics.Histogram.t;
  h_await : Metrics.Histogram.t;
  h_fetch : Metrics.Histogram.t;
}

(* extra series maintained only when [Config.observe] is set *)
type extras = {
  h_staleness : Metrics.Histogram.t; (* pending updates at read time *)
  h_flush : Metrics.Histogram.t; (* updates per outbox flush *)
}

(* One shard update in flight down its dissemination tree: registered at
   the root when it is routed, updated by every hop transmission and by
   every subscriber-side apply. Visibility latency is apply time minus
   route time; the flight is complete once every remote subscriber
   counted at registration has applied it. *)
type flight = {
  fl_t0 : float;
  fl_loc : Op.location;
  fl_expect : int; (* remote subscribers at registration time *)
  mutable fl_applied : int;
  mutable fl_hops : (int * int * float * float) list; (* src,dst,sent,recv; newest first *)
  mutable fl_applies : (int * float) list; (* node, apply time; newest first *)
  mutable fl_done : bool;
}

(* sharded-mode series and flight table, maintained only when
   [Config.observe] is set and a placement is configured. All series are
   labelled by shard — cardinality O(shards), never per-op. Completed
   flights are retained only when the online checker runs ([so_keep]),
   so the violation audit can attach causal paths to verdicts. *)
type shard_obs = {
  so_fetch_hist : (int, Metrics.Histogram.t) Hashtbl.t;
  so_fetch_count : (int, Metrics.Counter.t) Hashtbl.t;
  so_vis : (int, Metrics.Histogram.t) Hashtbl.t;
  so_vis_full : (int, Metrics.Histogram.t) Hashtbl.t;
  so_staleness : (int, Metrics.Histogram.t) Hashtbl.t;
  so_inflight : (int * int * int, flight) Hashtbl.t; (* (writer, shard, sseq) *)
  so_keep : bool;
}

type t = {
  engine : Engine.t;
  cfg : Config.t;
  net : Protocol.msg Network.t;
  nodes : node array;
  lock_managers : Lock_manager.t array;
  barrier_manager : Barrier_manager.t;
  recorder : Recorder.t option;
  checker : Mc_consistency.Online.t option;
  (* stability collector state: per location, the recorded values whose
     death has not been established yet, as (value, writer, useq);
     writer -1 marks the location's virtual initial value 0 *)
  live_values : (Op.location, (int * int * int) list ref) Hashtbl.t;
  counter_locs : (Op.location, unit) Hashtbl.t;
  (* sharded mode, checker on: per (writer, shard) stream, the writes it
     carried as (sseq, loc, recorded value), newest first — translates a
     fetch snapshot clock into the admissible value set of a location *)
  shard_log : (int * int, (int * Op.location * int) list ref) Hashtbl.t;
  mutable tag_counter : int;
  metrics : Metrics.Registry.t;
  hot : hot;
  extras : extras option;
  shard_obs : shard_obs option;
  tracer : Trace.t option;
}

type proc = { rt : t; id : int }

let engine t = t.engine
let config t = t.cfg
let network t = t.net
let proc t i = { rt = t; id = i }
let proc_id p = p.id
let runtime_of_proc p = p.rt

let lock_home t lock = Hashtbl.hash lock mod t.cfg.Config.procs

(* control messages that carry a dependency clock pay for it *)
let vc_bytes cfg = 8 * cfg.Config.procs

let update_wire_bytes cfg =
  cfg.Config.update_bytes
  + (if cfg.Config.timestamped_updates then vc_bytes cfg else 0)

(* a batch carries every item's payload but only one full vector
   timestamp; the remaining clocks are delta-encoded at 8 bytes per
   transmitted entry *)
let batch_wire_bytes cfg b =
  (cfg.Config.update_bytes * Protocol.batch_length b)
  + (if cfg.Config.timestamped_updates then
       vc_bytes cfg + (8 * Protocol.batch_delta_entries b)
     else 0)

(* a shard update carries its shard id, stream sequence number and the
   sparse shard-scoped delta clock instead of the full vector timestamp
   — the wire-size advantage of the sharded mode *)
let shard_update_wire_bytes cfg (su : Protocol.shard_update) =
  cfg.Config.update_bytes + 8 + (8 * List.length su.su_sdep)

let control_wire_bytes cfg msg =
  cfg.Config.control_bytes
  + (match msg with
    | Protocol.Lock_grant _ | Protocol.Unlock_msg _ | Protocol.Barrier_arrive _
    | Protocol.Barrier_release _ ->
      vc_bytes cfg
    | _ -> 0)
  + (* entry mode: guarded values ride the lock messages and pay for it *)
  (match msg with
  | Protocol.Lock_grant { values; _ } | Protocol.Unlock_msg { values; _ } ->
    16 * List.length values
  | Protocol.Fetch_reply { clock; _ } ->
    (* the value plus the home's sparse snapshot clock *)
    16 + (8 * List.length clock)
  | _ -> 0)

let send t ~src ~dst ?(control = true) msg =
  let bytes =
    if control then control_wire_bytes t.cfg msg else update_wire_bytes t.cfg
  in
  Network.send t.net ~src ~dst ~bytes ~kind:(Protocol.kind msg) msg

let handle_message t node_id ~src msg =
  let node = t.nodes.(node_id) in
  match msg with
  | Protocol.Update u -> Replica.receive node.replica u
  | Protocol.Update_batch b ->
    Replica.receive_many node.replica (Protocol.decode_batch b)
  | Protocol.Lock_request _ | Protocol.Unlock_msg _ ->
    Lock_manager.handle t.lock_managers.(node_id) ~src msg
  | Protocol.Lock_grant { lock; _ } -> (
    match Hashtbl.find_opt node.grant_waiters lock with
    | Some q when not (Queue.is_empty q) -> (Queue.pop q) msg
    | Some _ | None -> invalid_arg "Runtime: unexpected lock grant")
  | Protocol.Unlock_ack { lock; seq } -> (
    match Hashtbl.find_opt node.ack_waiters lock with
    | Some q when not (Queue.is_empty q) -> (Queue.pop q) seq
    | Some _ | None -> invalid_arg "Runtime: unexpected unlock ack")
  | Protocol.Flush_request { proc } ->
    (* FIFO channels: every update [proc] sent before this request has
       already been received here *)
    send t ~src:node_id ~dst:proc (Protocol.Flush_ack { proc = node_id })
  | Protocol.Flush_ack _ -> (
    match node.flush_waiter with
    | Some (remaining, resume) ->
      decr remaining;
      if !remaining = 0 then begin
        node.flush_waiter <- None;
        resume ()
      end
    | None -> invalid_arg "Runtime: unexpected flush ack")
  | Protocol.Barrier_arrive _ ->
    Barrier_manager.handle t.barrier_manager ~src msg
  | Protocol.Barrier_release { episode; dep; members; expect } ->
    Hashtbl.replace node.released (members, episode) (dep, expect);
    Replica.notify node.replica
  | Protocol.Shard_update su ->
    (* relay down the per-(writer, shard) dissemination tree before
       ingesting: the tree is deterministic, so consecutive updates of
       one stream traverse identical FIFO paths and stay in order *)
    (match t.cfg.Config.placement with
    | Some pl ->
      let kids =
        Mc_placement.Placement.children pl ~shard:su.su_shard
          ~root:su.su_writer ~node:node_id
      in
      if kids <> [] then
        Network.multicast t.net ~src:node_id ~dsts:kids
          ~bytes:(shard_update_wire_bytes t.cfg su) ~kind:(Protocol.kind msg)
          msg
    | None -> ());
    Replica.shard_receive node.replica su
  | Protocol.Fetch_request { proc; loc } ->
    (* this node is the shard's home: answer from the per-shard causal
       view, stamped with its per-writer applied counts *)
    let pl =
      match t.cfg.Config.placement with
      | Some pl -> pl
      | None -> invalid_arg "Runtime: fetch request without a placement"
    in
    let shard = Mc_placement.Placement.shard_of_loc pl loc in
    let numeric, tag = Replica.shard_read node.replica ~shard loc in
    let clock = Replica.shard_clock node.replica ~shard in
    (match t.tracer with
    | Some tr ->
      Trace.instant tr ~cat:"fetch" ~tid:node_id ~ts:(Engine.now t.engine)
        ~args:[ ("loc", loc); ("proc", string_of_int proc) ]
        "fetch_serve"
    | None -> ());
    send t ~src:node_id ~dst:proc (Protocol.Fetch_reply { loc; numeric; tag; clock })
  | Protocol.Fetch_reply { loc; numeric; tag; clock } -> (
    match Hashtbl.find_opt node.fetch_waiters loc with
    | Some q when not (Queue.is_empty q) -> (Queue.pop q) (numeric, tag, clock)
    | Some _ | None -> invalid_arg "Runtime: unexpected fetch reply")

(* per-shard series, memoized per runtime (the registry would memoize
   too, but caching the handle keeps the hot path allocation-free) *)
let shard_series tbl make shard =
  match Hashtbl.find_opt tbl shard with
  | Some h -> h
  | None ->
    let h = make (string_of_int shard) in
    Hashtbl.add tbl shard h;
    h

let shard_hist t tbl ~name ~help shard =
  shard_series tbl
    (fun s ->
      Metrics.Registry.histogram t.metrics ~help ~labels:[ ("shard", s) ] name)
    shard

let shard_counter t tbl ~name ~help shard =
  shard_series tbl
    (fun s ->
      Metrics.Registry.counter t.metrics ~help ~labels:[ ("shard", s) ] name)
    shard

(* subscriber-side apply of a remote shard update: advance the update's
   flight record and the per-shard visibility series, and mark the apply
   point in the trace *)
let on_shard_apply t node_id ~shard ~writer ~sseq =
  let now = Engine.now t.engine in
  (match t.tracer with
  | Some tr ->
    Trace.instant tr ~cat:"shard" ~tid:node_id ~ts:now
      ~args:
        [
          ("shard", string_of_int shard);
          ("writer", string_of_int writer);
          ("sseq", string_of_int sseq);
        ]
      "shard_apply"
  | None -> ());
  match t.shard_obs with
  | Some so -> (
    match Hashtbl.find_opt so.so_inflight (writer, shard, sseq) with
    | Some fl when not fl.fl_done ->
      fl.fl_applied <- fl.fl_applied + 1;
      fl.fl_applies <- (node_id, now) :: fl.fl_applies;
      let dt = now -. fl.fl_t0 in
      Metrics.Histogram.observe
        (shard_hist t so.so_vis ~name:"mc_shard_visibility_us"
           ~help:"write routed to applied at one subscriber (us)" shard)
        dt;
      if fl.fl_applied >= fl.fl_expect then begin
        Metrics.Histogram.observe
          (shard_hist t so.so_vis_full ~name:"mc_shard_visibility_full_us"
             ~help:"write routed to applied at every subscriber (us)" shard)
          dt;
        fl.fl_done <- true;
        if not so.so_keep then Hashtbl.remove so.so_inflight (writer, shard, sseq)
      end
    | _ -> ())
  | None -> ()

let create engine ?latency cfg =
  let n = cfg.Config.procs in
  if cfg.Config.placement <> None && cfg.Config.multicast <> None then
    invalid_arg
      "Runtime.create: placement and multicast routing are mutually exclusive";
  (* both routing modes disable the global causal machinery and run the
     replicas gap-tolerant (PRAM view on receipt; sharded mode adds its
     per-shard causal views on top) *)
  let full_replication =
    cfg.Config.multicast = None && cfg.Config.placement = None
  in
  let latency =
    match latency with
    | Some l -> l
    | None -> Latency.uniform (Mc_util.Rng.make 0xC0FFEE) ~lo:30. ~hi:70.
  in
  let net =
    Network.create engine ~nodes:n ~latency ~send_cost:cfg.Config.send_cost
      ~byte_cost:cfg.Config.byte_cost ()
  in
  let metrics = Metrics.Registry.create () in
  let op_counter op =
    Metrics.Registry.counter metrics ~help:"operations issued"
      ~labels:[ ("op", op) ] "mc_ops_total"
  in
  let wait_hist op =
    Metrics.Registry.histogram metrics ~help:"blocking time per operation (us)"
      ~labels:[ ("op", op) ] "mc_wait_us"
  in
  let hot =
    {
      c_read = op_counter "read";
      c_write = op_counter "write";
      c_init_counter = op_counter "init_counter";
      c_decrement = op_counter "decrement";
      c_write_lock = op_counter "write_lock";
      c_read_lock = op_counter "read_lock";
      c_write_unlock = op_counter "write_unlock";
      c_read_unlock = op_counter "read_unlock";
      c_barrier = op_counter "barrier";
      c_barrier_subset = op_counter "barrier_subset";
      c_await = op_counter "await";
      c_compute = op_counter "compute";
      c_fetch = op_counter "fetch";
      h_read = wait_hist "read";
      h_write_lock = wait_hist "write_lock";
      h_read_lock = wait_hist "read_lock";
      h_write_unlock = wait_hist "write_unlock";
      h_read_unlock = wait_hist "read_unlock";
      h_barrier = wait_hist "barrier";
      h_await = wait_hist "await";
      h_fetch = wait_hist "fetch";
    }
  in
  let extras =
    if cfg.Config.observe then
      Some
        {
          h_staleness =
            Metrics.Registry.histogram metrics
              ~help:"updates still awaiting causal delivery at read time"
              "mc_read_staleness_updates";
          h_flush =
            Metrics.Registry.histogram metrics ~help:"updates per outbox flush"
              "mc_outbox_flush_size";
        }
    else None
  in
  let shard_obs =
    if cfg.Config.observe && cfg.Config.placement <> None then
      Some
        {
          so_fetch_hist = Hashtbl.create 8;
          so_fetch_count = Hashtbl.create 8;
          so_vis = Hashtbl.create 8;
          so_vis_full = Hashtbl.create 8;
          so_staleness = Hashtbl.create 8;
          so_inflight = Hashtbl.create 256;
          so_keep = cfg.Config.check_online;
        }
    else None
  in
  let rec t =
    lazy
      (let send_from home ~dst msg =
         send (Lazy.force t) ~src:home ~dst msg
       in
       {
         engine;
         cfg;
         net;
         nodes =
           Array.init n (fun id ->
               {
                 replica =
                   Replica.create engine ~id ~n ~groups:cfg.Config.groups
                     ~causal_delivery:full_replication
                     ~delivery:cfg.Config.delivery ();
                 grant_waiters = Hashtbl.create 4;
                 ack_waiters = Hashtbl.create 4;
                 flush_waiter = None;
                 released = Hashtbl.create 8;
                 barrier_episode = 0;
                 subset_episodes = Hashtbl.create 4;
                 sent_updates = Array.make n 0;
                 open_write_sets = [];
                 write_seq = 0;
                 outbox = [];
                 outbox_len = 0;
                 flush_scheduled = false;
                 fetch_waiters = Hashtbl.create 4;
               });
         lock_managers =
           Array.init n (fun home ->
               Lock_manager.create ~n
                 ~demand:(cfg.Config.propagation = Config.Demand)
                 ~send:(send_from home));
         barrier_manager = Barrier_manager.create ~n ~send:(send_from 0);
         recorder =
           (if cfg.Config.record || cfg.Config.check_online then
              Some (Recorder.create ~materialize:cfg.Config.record ~procs:n ())
            else None);
         checker =
           (if cfg.Config.check_online then
              Some
                (Mc_consistency.Online.create ~procs:n ~groups:cfg.Config.groups
                   ?model:cfg.Config.check_model ())
            else None);
         live_values = Hashtbl.create 32;
         counter_locs = Hashtbl.create 8;
         shard_log = Hashtbl.create 64;
         tag_counter = 0;
         metrics;
         hot;
         extras;
         shard_obs;
         tracer = cfg.Config.tracer;
       })
  in
  let t = Lazy.force t in
  (* materialize the placement's subscriptions at the replicas *)
  (match cfg.Config.placement with
  | Some pl ->
    Array.iteri
      (fun id node ->
        List.iter
          (fun shard -> Replica.subscribe_shard node.replica ~shard ())
          (Mc_placement.Placement.subscriptions pl ~node:id))
      t.nodes
  | None -> ());
  (match (t.recorder, t.checker) with
  | Some r, Some c -> Recorder.subscribe r (Mc_consistency.Online.sink c)
  | _ -> ());
  for node_id = 0 to n - 1 do
    Network.set_handler net node_id (fun ~src msg -> handle_message t node_id ~src msg)
  done;
  if cfg.Config.observe then begin
    Engine.attach_metrics engine metrics;
    Network.attach_metrics net metrics;
    Array.iter (fun node -> Replica.attach_metrics node.replica metrics) t.nodes;
    Option.iter
      (fun pl -> Mc_placement.Placement.attach_metrics pl metrics)
      cfg.Config.placement;
    Option.iter
      (fun c -> Mc_consistency.Online.attach_metrics c metrics)
      t.checker
  end;
  (* visibility tracking: every remote shard-update apply reports back
     through the replica's apply observer *)
  if cfg.Config.placement <> None && (t.shard_obs <> None || t.tracer <> None)
  then
    Array.iteri
      (fun node_id node ->
        Replica.set_shard_apply_observer node.replica (fun ~shard ~writer ~sseq ->
            on_shard_apply t node_id ~shard ~writer ~sseq))
      t.nodes;
  if t.tracer <> None || t.shard_obs <> None then begin
    (* fetch round trips are paired by a per-(requester, location) FIFO of
       fresh rtt ids: requests and replies of one pair travel opposite
       directions of FIFO channels through a home that answers in arrival
       order, so the queue discipline matches them exactly *)
    let rtt_counter = ref 0 in
    let rtt_pending : (int * Op.location, int Queue.t) Hashtbl.t =
      Hashtbl.create 16
    in
    let rtt_push key =
      incr rtt_counter;
      let q =
        match Hashtbl.find_opt rtt_pending key with
        | Some q -> q
        | None ->
          let q = Queue.create () in
          Hashtbl.add rtt_pending key q;
          q
      in
      Queue.push !rtt_counter q;
      !rtt_counter
    in
    let rtt_pop key =
      match Hashtbl.find_opt rtt_pending key with
      | Some q when not (Queue.is_empty q) -> Queue.pop q
      | _ -> -1
    in
    Network.set_observer net
      (fun ~src ~dst ~bytes ~kind ~seq ~sent ~recv msg ->
        let emit ?(cat = "msg") args =
          match t.tracer with
          | Some tr ->
            Trace.flow tr ~cat ~id:seq ~src ~dst ~ts_send:sent ~ts_recv:recv
              ~args:(("bytes", string_of_int bytes) :: args)
              kind
          | None -> ()
        in
        match msg with
        | Protocol.Shard_update su ->
          (match t.shard_obs with
          | Some so -> (
            match
              Hashtbl.find_opt so.so_inflight
                (su.su_writer, su.su_shard, su.su_sseq)
            with
            | Some fl -> fl.fl_hops <- (src, dst, sent, recv) :: fl.fl_hops
            | None -> ())
          | None -> ());
          emit ~cat:"shard"
            [
              ("shard", string_of_int su.su_shard);
              ("writer", string_of_int su.su_writer);
              ("sseq", string_of_int su.su_sseq);
              ("loc", su.su_loc);
            ]
        | Protocol.Fetch_request { proc; loc } ->
          emit ~cat:"fetch"
            [ ("loc", loc); ("rtt", string_of_int (rtt_push (proc, loc))) ]
        | Protocol.Fetch_reply { loc; _ } ->
          emit ~cat:"fetch"
            [ ("loc", loc); ("rtt", string_of_int (rtt_pop (dst, loc))) ]
        | _ -> emit [])
  end;
  t

(* ------------------------------------------------------------------ *)
(* Stability collector                                                 *)
(* ------------------------------------------------------------------ *)

let recorded_value ~numeric ~tag = if tag <> 0 then tag else numeric

(* A recorded value is dead — no future operation can read it — once
   (a) its update is applied at every replica (the causal applied
   vectors dominate it, which implies the PRAM and group views have
   applied it too), and (b) no view of its location at any replica
   currently returns it. Views only move forward over each location's
   unique tags, so both conditions are stable. Counter locations are
   exempt: decrements may rewrite an earlier numeric value. Entry-mode
   guarded writes travel with lock grants instead of the applied
   streams, so they are registered without a sequence number and simply
   never declared dead (conservative). *)

let register_live t loc ~value ~writer ~useq =
  if not (Hashtbl.mem t.counter_locs loc) then begin
    match Hashtbl.find_opt t.live_values loc with
    | Some l -> l := (value, writer, useq) :: !l
    | None ->
      (* first write: the virtual initial value 0 becomes collectable *)
      Hashtbl.add t.live_values loc (ref [ (value, writer, useq); (0, -1, 0) ])
  end

let mark_counter_loc t loc =
  Hashtbl.replace t.counter_locs loc ();
  Hashtbl.remove t.live_values loc

let value_visible t loc v =
  let groups = t.cfg.Config.groups in
  let visible_at node =
    let check (numeric, tag) = recorded_value ~numeric ~tag = v in
    check (Replica.pram_read node.replica loc)
    || check (Replica.causal_read node.replica loc)
    || List.exists
         (fun group -> check (Replica.group_read node.replica ~group loc))
         groups
  in
  Array.exists visible_at t.nodes

let stability_sweep t =
  match t.recorder with
  | Some r
    when t.checker <> None
         && t.cfg.Config.multicast = None
         && t.cfg.Config.placement = None
         && Hashtbl.length t.live_values > 0 ->
    let n = t.cfg.Config.procs in
    let min_applied = Array.make n max_int in
    Array.iter
      (fun node ->
        let a = Replica.applied node.replica in
        Array.iteri
          (fun j c -> if c < min_applied.(j) then min_applied.(j) <- c)
          a)
      t.nodes;
    Hashtbl.iter
      (fun loc l ->
        l :=
          List.filter
            (fun (v, writer, useq) ->
              let applied_everywhere =
                writer < 0 || min_applied.(writer) >= useq
              in
              if applied_everywhere && not (value_visible t loc v) then begin
                Recorder.notify_dead r ~loc ~value:v;
                false
              end
              else true)
            !l)
      t.live_values
  | _ -> ()

let run t =
  let tend = Engine.run t.engine in
  (match (t.recorder, t.checker) with
  | Some r, Some _ ->
    stability_sweep t;
    Recorder.close r
  | _ -> ());
  tend

let online_checker t = t.checker

let spawn_process t i f =
  Engine.spawn t.engine ~name:(Printf.sprintf "proc-%d" i) (fun () ->
      f (proc t i))

let spawn_thread t i f =
  (* an additional fiber of process [i]: shares its replica and recorder,
     so the recorded local history becomes a genuine partial order
     (Section 3 models intra-process concurrency) *)
  Engine.spawn t.engine ~name:(Printf.sprintf "proc-%d-thread" i) (fun () ->
      f (proc t i))

(* ------------------------------------------------------------------ *)
(* Instrumentation helpers                                             *)
(* ------------------------------------------------------------------ *)

let timed p h f =
  let t0 = Engine.now p.rt.engine in
  let r = f () in
  Metrics.Histogram.observe h (Engine.now p.rt.engine -. t0);
  r

let charge p = Engine.delay p.rt.engine p.rt.cfg.Config.op_cost

(* One Complete span per recorded operation: emitted at exactly the
   call sites that feed the recorder, so a trace's span count equals the
   recorded history's length. [compute] records nothing and traces
   nothing. *)
let trace_span p ~t0 ?(args = []) name =
  match p.rt.tracer with
  | Some tr ->
    Trace.span tr ~tid:p.id ~ts:t0 ~dur:(Engine.now p.rt.engine -. t0) ~args name
  | None -> ()

let trace_instant p ?(args = []) name =
  match p.rt.tracer with
  | Some tr ->
    Trace.instant tr ~cat:"sync" ~tid:p.id ~ts:(Engine.now p.rt.engine) ~args name
  | None -> ()

let record p kind = Option.map (fun r -> Recorder.record r ~proc:p.id kind) p.rt.recorder

let record_start p = Option.map (fun r -> Recorder.start r ~proc:p.id) p.rt.recorder

let record_finish p token ?sync_seq kind =
  match p.rt.recorder, token with
  | Some r, Some tok -> ignore (Recorder.finish r tok ?sync_seq kind)
  | _ -> ()

let fresh_tag p =
  p.rt.tag_counter <- p.rt.tag_counter + 1;
  ((p.id + 1) lsl 40) lor p.rt.tag_counter

(* ------------------------------------------------------------------ *)
(* Memory operations                                                   *)
(* ------------------------------------------------------------------ *)

(* sharded mode: translate a fetch snapshot clock into the location's
   admissible values — per writer counted in the snapshot, that writer's
   latest write to [loc] within it. The log is complete up to every
   snapshot count: writes are logged at issue time, strictly before the
   home applies them and replies. *)
let fetch_admissible t ~shard ~loc clock =
  List.filter_map
    (fun (w, c) ->
      match Hashtbl.find_opt t.shard_log (w, shard) with
      | None -> None
      | Some l -> (
        match
          List.find_opt (fun (sseq, l', _) -> sseq <= c && l' = loc) !l
        with
        | Some (_, _, v) -> Some v
        | None -> None))
    clock

(* demand-driven propagation for a non-subscriber: ask the shard's home
   and block until the reply. A shard with no subscribers was never
   written (writes require subscription), so its locations still hold
   the virtual initial value — no message needed. *)
let fetch_read p pl ~label ~shard loc =
  Metrics.Counter.incr p.rt.hot.c_fetch;
  (match p.rt.shard_obs with
  | Some so ->
    Metrics.Counter.incr
      (shard_counter p.rt so.so_fetch_count ~name:"mc_shard_fetch_total"
         ~help:"demand fetches per shard" shard)
  | None -> ());
  let node = p.rt.nodes.(p.id) in
  let numeric, tag, clock =
    match Mc_placement.Placement.home pl ~shard with
    | None -> (0, 0, [])
    | Some home ->
      let t_req = Engine.now p.rt.engine in
      send p.rt ~src:p.id ~dst:home
        (Protocol.Fetch_request { proc = p.id; loc });
      let reply =
        timed p p.rt.hot.h_fetch (fun () ->
            Engine.suspend p.rt.engine (fun resume ->
                let q =
                  match Hashtbl.find_opt node.fetch_waiters loc with
                  | Some q -> q
                  | None ->
                    let q = Queue.create () in
                    Hashtbl.add node.fetch_waiters loc q;
                    q
                in
                Queue.push resume q))
      in
      let dt = Engine.now p.rt.engine -. t_req in
      (match p.rt.shard_obs with
      | Some so ->
        Metrics.Histogram.observe
          (shard_hist p.rt so.so_fetch_hist ~name:"mc_shard_fetch_us"
             ~help:"demand-fetch round trip per shard (us)" shard)
          dt
      | None -> ());
      (* the request/reply flow arcs carry a shared rtt id; this slice is
         their requester-side pairing in chrome://tracing *)
      (match p.rt.tracer with
      | Some tr ->
        Trace.span tr ~cat:"fetch" ~tid:p.id ~ts:t_req ~dur:dt
          ~args:
            [
              ("loc", loc);
              ("shard", string_of_int shard);
              ("home", string_of_int home);
            ]
          "fetch_rtt"
      | None -> ());
      reply
  in
  (* announce the snapshot to the partial-view checker, atomically with
     the record below (no suspension in between) *)
  (match p.rt.checker with
  | Some c ->
    let admissible = fetch_admissible p.rt ~shard ~loc clock in
    Mc_consistency.Online.note_fetch c ~proc:p.id ~loc ~admissible
      ~zero_ok:(admissible = [])
  | None -> ());
  ignore
    (record p (Op.Read { loc; label; value = recorded_value ~numeric ~tag }));
  numeric

let read p ?(label = Op.Causal) loc =
  Metrics.Counter.incr p.rt.hot.c_read;
  charge p;
  let node = p.rt.nodes.(p.id) in
  let t0 = Engine.now p.rt.engine in
  (match p.rt.extras with
  | Some e ->
    Metrics.Histogram.observe e.h_staleness
      (float_of_int (Replica.pending_count node.replica))
  | None -> ());
  timed p p.rt.hot.h_read (fun () ->
      (* demand mode: reads of invalidated locations block until the
         pending updates are applied *)
      Replica.wait_until node.replica ~hint:(Replica.Loc loc) (fun () ->
          not (Replica.location_blocked node.replica loc));
      match p.rt.cfg.Config.placement with
      | Some pl -> (
        (match label with
        | Op.Group _ ->
          invalid_arg
            "Runtime.read: group reads are unavailable under sharded placement"
        | Op.Causal | Op.PRAM -> ());
        let shard = Mc_placement.Placement.shard_of_loc pl loc in
        if Replica.shard_subscribed node.replica ~shard then begin
          (match p.rt.shard_obs with
          | Some so ->
            Metrics.Histogram.observe
              (shard_hist p.rt so.so_staleness ~name:"mc_shard_staleness_updates"
                 ~help:"shard updates parked on a gap at read time" shard)
              (float_of_int (Replica.shard_pending_len node.replica ~shard))
          | None -> ());
          let numeric, tag =
            match label with
            | Op.Causal -> Replica.shard_read node.replica ~shard loc
            | Op.PRAM | Op.Group _ -> Replica.pram_read node.replica loc
          in
          ignore
            (record p
               (Op.Read { loc; label; value = recorded_value ~numeric ~tag }));
          trace_span p ~t0 ~args:[ ("loc", loc) ] "read";
          numeric
        end
        else begin
          let numeric = fetch_read p pl ~label ~shard loc in
          trace_span p ~t0 ~args:[ ("loc", loc) ] "fetched_read";
          numeric
        end)
      | None ->
        let numeric, tag =
          match label with
          | Op.Causal ->
            if p.rt.cfg.Config.multicast <> None then
              invalid_arg
                "Runtime.read: causal reads are unavailable under multicast \
                 routing";
            Replica.causal_read node.replica loc
          | Op.PRAM -> Replica.pram_read node.replica loc
          | Op.Group group ->
            if p.rt.cfg.Config.multicast <> None then
              invalid_arg
                "Runtime.read: group reads are unavailable under multicast \
                 routing";
            if not (List.mem p.id group) then
              invalid_arg
                "Runtime.read: process is not a member of the read group";
            Replica.group_read node.replica ~group loc
        in
        ignore
          (record p
             (Op.Read { loc; label; value = recorded_value ~numeric ~tag }));
        trace_span p ~t0 ~args:[ ("loc", loc) ] "read";
        numeric)

(* flush the buffered outbox: a single update goes out as a plain
   [Update] (same wire cost as the unbatched path), a longer run as one
   delta-encoded [Update_batch] whose payload is allocated once and
   shared across the whole fan-out *)
let flush_outbox t node_id =
  let node = t.nodes.(node_id) in
  match node.outbox with
  | [] -> ()
  | buffered ->
    (match t.extras with
    | Some e ->
      Metrics.Histogram.observe e.h_flush (float_of_int node.outbox_len)
    | None -> ());
    node.outbox <- [];
    node.outbox_len <- 0;
    (match buffered with
    | [ u ] ->
      let bytes = update_wire_bytes t.cfg in
      let kind = Protocol.kind (Protocol.Update u) in
      for dst = 0 to t.cfg.Config.procs - 1 do
        if dst <> node_id then begin
          node.sent_updates.(dst) <- node.sent_updates.(dst) + 1;
          Network.send t.net ~src:node_id ~dst ~bytes ~kind (Protocol.Update u)
        end
      done
    | buffered ->
      let b = Protocol.encode_batch (List.rev buffered) in
      let k = Protocol.batch_length b in
      let bytes = batch_wire_bytes t.cfg b in
      for dst = 0 to t.cfg.Config.procs - 1 do
        if dst <> node_id then
          node.sent_updates.(dst) <- node.sent_updates.(dst) + k
      done;
      Network.broadcast t.net ~src:node_id ~bytes ~kind:"update_batch"
        (Protocol.Update_batch b))

let broadcast_update p (u : Protocol.update) =
  let node = p.rt.nodes.(p.id) in
  let bytes = update_wire_bytes p.rt.cfg in
  let kind = Protocol.kind (Protocol.Update u) in
  let send_to dst =
    if dst <> p.id then begin
      node.sent_updates.(dst) <- node.sent_updates.(dst) + 1;
      Network.send p.rt.net ~src:p.id ~dst ~bytes ~kind (Protocol.Update u)
    end
  in
  match p.rt.cfg.Config.multicast with
  | None ->
    if p.rt.cfg.Config.batch_max <= 1 then
      for dst = 0 to p.rt.cfg.Config.procs - 1 do
        send_to dst
      done
    else begin
      (* coalesce: consecutive local updates have consecutive useqs, so
         the outbox is always a valid batch. Flushed when full, when the
         window timer fires, and before every synchronization operation
         (so no dependency clock sent to a peer can ever reference a
         buffered update) *)
      node.outbox <- u :: node.outbox;
      node.outbox_len <- node.outbox_len + 1;
      if node.outbox_len >= p.rt.cfg.Config.batch_max then
        flush_outbox p.rt p.id
      else if not node.flush_scheduled then begin
        node.flush_scheduled <- true;
        let rt = p.rt and id = p.id in
        Engine.schedule rt.engine ~delay:rt.cfg.Config.batch_window (fun () ->
            rt.nodes.(id).flush_scheduled <- false;
            flush_outbox rt id)
      end
    end
  | Some subscribers -> (
    match subscribers u.loc with
    | None ->
      for dst = 0 to p.rt.cfg.Config.procs - 1 do
        send_to dst
      done
    | Some subs -> List.iter send_to (List.sort_uniq compare subs))

(* sharded mode: credit the barrier count vectors for every subscriber
   (they all eventually receive the update via the tree) and send it to
   this writer's tree children only *)
let shard_route p pl (su : Protocol.shard_update) =
  let node = p.rt.nodes.(p.id) in
  let subs = Mc_placement.Placement.subscribers pl ~shard:su.su_shard in
  List.iter
    (fun dst ->
      if dst <> p.id then node.sent_updates.(dst) <- node.sent_updates.(dst) + 1)
    subs;
  let expect = List.length (List.filter (fun d -> d <> p.id) subs) in
  (* flight registration must precede the multicast: hop transmissions
     report through the network observer synchronously below *)
  (match p.rt.shard_obs with
  | Some so ->
    if expect > 0 then
      Hashtbl.replace so.so_inflight
        (su.su_writer, su.su_shard, su.su_sseq)
        {
          fl_t0 = Engine.now p.rt.engine;
          fl_loc = su.su_loc;
          fl_expect = expect;
          fl_applied = 0;
          fl_hops = [];
          fl_applies = [];
          fl_done = false;
        }
  | None -> ());
  (match p.rt.tracer with
  | Some tr ->
    Trace.instant tr ~cat:"shard" ~tid:p.id ~ts:(Engine.now p.rt.engine)
      ~args:
        [
          ("shard", string_of_int su.su_shard);
          ("writer", string_of_int su.su_writer);
          ("sseq", string_of_int su.su_sseq);
          ("loc", su.su_loc);
          ("expect", string_of_int expect);
        ]
      "shard_send"
  | None -> ());
  let kids =
    Mc_placement.Placement.children pl ~shard:su.su_shard ~root:p.id ~node:p.id
  in
  if kids <> [] then
    Network.multicast p.rt.net ~src:p.id ~dsts:kids
      ~bytes:(shard_update_wire_bytes p.rt.cfg su)
      ~kind:(Protocol.kind (Protocol.Shard_update su))
      (Protocol.Shard_update su)

(* feed the (writer, shard) stream log that [fetch_admissible] consults;
   decrements are not logged — counter locations are never fetched (they
   are only read through awaits and decrements, both of which require
   subscription) *)
let log_shard_write p (su : Protocol.shard_update) ~value =
  if p.rt.checker <> None && not su.su_is_dec then begin
    let key = (su.su_writer, su.su_shard) in
    let entry = (su.su_sseq, su.su_loc, value) in
    match Hashtbl.find_opt p.rt.shard_log key with
    | Some l -> l := entry :: !l
    | None -> Hashtbl.add p.rt.shard_log key (ref [ entry ])
  end

let track_write_set p loc ~numeric ~tag =
  let node = p.rt.nodes.(p.id) in
  match node.open_write_sets with
  | [] -> ()
  | logs ->
    node.write_seq <- node.write_seq + 1;
    let seq = node.write_seq in
    List.iter (fun (_, log) -> Hashtbl.replace log loc (seq, numeric, tag)) logs

(* entry mode: is this process inside a write critical section? *)
let in_entry_section p =
  p.rt.cfg.Config.propagation = Config.Entry
  && p.rt.nodes.(p.id).open_write_sets <> []

let write p loc v =
  Metrics.Counter.incr p.rt.hot.c_write;
  charge p;
  let node = p.rt.nodes.(p.id) in
  let t0 = Engine.now p.rt.engine in
  let tag = fresh_tag p in
  ignore (record p (Op.Write { loc; value = tag }));
  trace_span p ~t0 ~args:[ ("loc", loc) ] "write";
  match p.rt.cfg.Config.placement with
  | Some pl ->
    (* write discipline: only subscribers of a shard may write it
       ([Replica.shard_write] enforces it) — this guarantees
       read-your-writes locally and keeps fetched locations
       never-self-written *)
    let shard = Mc_placement.Placement.shard_of_loc pl loc in
    let su = Replica.shard_write node.replica ~shard ~loc ~numeric:v ~tag in
    log_shard_write p su ~value:tag;
    shard_route p pl su
  | None ->
    if in_entry_section p then begin
      (* guarded write: install locally and ship with the unlock instead
         of broadcasting (entry consistency) *)
      Replica.install_direct node.replica ~loc ~numeric:v ~tag;
      track_write_set p loc ~numeric:v ~tag
    end
    else begin
      let u = Replica.local_write node.replica ~loc ~numeric:v ~tag in
      track_write_set p loc ~numeric:v ~tag;
      if p.rt.checker <> None then
        register_live p.rt loc ~value:tag ~writer:p.id ~useq:u.Protocol.useq;
      broadcast_update p u
    end

let init_counter p loc v =
  Metrics.Counter.incr p.rt.hot.c_init_counter;
  charge p;
  let node = p.rt.nodes.(p.id) in
  let t0 = Engine.now p.rt.engine in
  mark_counter_loc p.rt loc;
  ignore (record p (Op.Write { loc; value = v }));
  trace_span p ~t0 ~args:[ ("loc", loc) ] "init_counter";
  (* tag 0 marks the location as numerically recorded *)
  match p.rt.cfg.Config.placement with
  | Some pl ->
    let shard = Mc_placement.Placement.shard_of_loc pl loc in
    let su = Replica.shard_write node.replica ~shard ~loc ~numeric:v ~tag:0 in
    log_shard_write p su ~value:v;
    shard_route p pl su
  | None ->
    if in_entry_section p then begin
      Replica.install_direct node.replica ~loc ~numeric:v ~tag:0;
      track_write_set p loc ~numeric:v ~tag:0
    end
    else begin
      let u = Replica.local_write node.replica ~loc ~numeric:v ~tag:0 in
      track_write_set p loc ~numeric:v ~tag:0;
      broadcast_update p u
    end

let decrement p loc ~amount =
  Metrics.Counter.incr p.rt.hot.c_decrement;
  charge p;
  let node = p.rt.nodes.(p.id) in
  let t0 = Engine.now p.rt.engine in
  mark_counter_loc p.rt loc;
  (match p.rt.cfg.Config.placement with
  | Some pl ->
    let shard = Mc_placement.Placement.shard_of_loc pl loc in
    let su, observed = Replica.shard_dec node.replica ~shard ~loc ~amount in
    ignore (record p (Op.Decrement { loc; amount; observed }));
    shard_route p pl su
  | None ->
    if in_entry_section p then begin
      let observed, _ = Replica.causal_read node.replica loc in
      ignore (record p (Op.Decrement { loc; amount; observed }));
      Replica.install_direct node.replica ~loc ~numeric:(observed - amount)
        ~tag:0;
      track_write_set p loc ~numeric:(observed - amount) ~tag:0
    end
    else begin
      let u, observed = Replica.local_dec node.replica ~loc ~amount in
      ignore (record p (Op.Decrement { loc; amount; observed }));
      track_write_set p loc ~numeric:(observed - amount) ~tag:0;
      broadcast_update p u
    end);
  trace_span p ~t0 ~args:[ ("loc", loc) ] "decrement"

(* ------------------------------------------------------------------ *)
(* Locks                                                               *)
(* ------------------------------------------------------------------ *)

let acquire p lock ~write =
  if p.rt.cfg.Config.multicast <> None then
    invalid_arg
      "Runtime: locks are unavailable under multicast routing (use barriers; \
       the mode is for PRAM-consistent programs)";
  if p.rt.cfg.Config.placement <> None then
    invalid_arg
      "Runtime: locks are unavailable under sharded placement (use barriers; \
       cross-shard ordering comes from the barrier count scheme)";
  Metrics.Counter.incr
    (if write then p.rt.hot.c_write_lock else p.rt.hot.c_read_lock);
  charge p;
  flush_outbox p.rt p.id;
  let node = p.rt.nodes.(p.id) in
  let token = record_start p in
  let t0 = Engine.now p.rt.engine in
  timed p
    (if write then p.rt.hot.h_write_lock else p.rt.hot.h_read_lock)
    (fun () ->
      send p.rt ~src:p.id ~dst:(lock_home p.rt lock)
        (Protocol.Lock_request { proc = p.id; lock; write });
      let grant =
        Engine.suspend p.rt.engine (fun resume ->
            let q =
              match Hashtbl.find_opt node.grant_waiters lock with
              | Some q -> q
              | None ->
                let q = Queue.create () in
                Hashtbl.add node.grant_waiters lock q;
                q
            in
            Queue.push resume q)
      in
      match grant with
      | Protocol.Lock_grant { seq; dep; invalid; values; _ } ->
        (match p.rt.cfg.Config.propagation with
        | Config.Eager | Config.Lazy ->
          (* wait for the previous holders' updates to be applied *)
          Replica.wait_until node.replica ~hint:Replica.Clock (fun () ->
              Replica.dep_satisfied node.replica dep)
        | Config.Demand ->
          (* enter immediately; only reads of the written locations wait *)
          List.iter
            (fun (loc, d) -> Replica.mark_invalid node.replica loc d)
            invalid
        | Config.Entry ->
          (* the guarded variables' current values arrived with the grant *)
          List.iter
            (fun (loc, numeric, tag) ->
              Replica.install_direct node.replica ~loc ~numeric ~tag)
            values);
        if write then
          node.open_write_sets <-
            (lock, Hashtbl.create 8) :: node.open_write_sets;
        record_finish p token ~sync_seq:seq
          (if write then Op.Write_lock lock else Op.Read_lock lock);
        trace_instant p
          ~args:[ ("lock", lock); ("seq", string_of_int seq) ]
          "sync_epoch";
        trace_span p ~t0
          ~args:[ ("lock", lock); ("seq", string_of_int seq) ]
          (if write then "write_lock" else "read_lock")
      | _ -> assert false)

let release p lock ~write =
  Metrics.Counter.incr
    (if write then p.rt.hot.c_write_unlock else p.rt.hot.c_read_unlock);
  charge p;
  (* the unlock's dependency clock counts our buffered updates, so they
     must be on the wire (FIFO) before it is sent *)
  flush_outbox p.rt p.id;
  let node = p.rt.nodes.(p.id) in
  let token = record_start p in
  let t0 = Engine.now p.rt.engine in
  timed p
    (if write then p.rt.hot.h_write_unlock else p.rt.hot.h_read_unlock)
    (fun () ->
      (* eager propagation: flush all our updates everywhere first *)
      (if p.rt.cfg.Config.propagation = Config.Eager && p.rt.cfg.Config.procs > 1
       then begin
         Network.broadcast p.rt.net ~src:p.id ~bytes:p.rt.cfg.Config.control_bytes
           ~kind:"flush_request"
           (Protocol.Flush_request { proc = p.id });
         Engine.suspend p.rt.engine (fun resume ->
             node.flush_waiter <-
               Some (ref (p.rt.cfg.Config.procs - 1), fun () -> resume ()))
       end);
      let written =
        if write then begin
          match List.assoc_opt lock node.open_write_sets with
          | Some log ->
            node.open_write_sets <-
              List.filter (fun (l, _) -> l <> lock) node.open_write_sets;
            (* most-recently-written-first, as the seed's move-to-front
               log produced *)
            Hashtbl.fold (fun loc (seq, numeric, tag) acc ->
                (seq, (loc, numeric, tag)) :: acc)
              log []
            |> List.sort (fun (a, _) (b, _) -> compare (b : int) a)
            |> List.map snd
          | None -> []
        end
        else []
      in
      send p.rt ~src:p.id ~dst:(lock_home p.rt lock)
        (Protocol.Unlock_msg
           {
             proc = p.id;
             lock;
             write;
             vc = Replica.applied node.replica;
             write_set = List.map (fun (l, _, _) -> l) written;
             values =
               (if p.rt.cfg.Config.propagation = Config.Entry then written
                else []);
           });
      let seq =
        Engine.suspend p.rt.engine (fun resume ->
            let q =
              match Hashtbl.find_opt node.ack_waiters lock with
              | Some q -> q
              | None ->
                let q = Queue.create () in
                Hashtbl.add node.ack_waiters lock q;
                q
            in
            Queue.push resume q)
      in
      record_finish p token ~sync_seq:seq
        (if write then Op.Write_unlock lock else Op.Read_unlock lock);
      trace_span p ~t0
        ~args:[ ("lock", lock); ("seq", string_of_int seq) ]
        (if write then "write_unlock" else "read_unlock"));
  stability_sweep p.rt

let write_lock p lock = acquire p lock ~write:true
let write_unlock p lock = release p lock ~write:true
let read_lock p lock = acquire p lock ~write:false
let read_unlock p lock = release p lock ~write:false

(* ------------------------------------------------------------------ *)
(* Barrier and await                                                   *)
(* ------------------------------------------------------------------ *)

let barrier_generic p ~members ~episode ~kind =
  (* the arrival's clock and sent counts include buffered updates *)
  flush_outbox p.rt p.id;
  let node = p.rt.nodes.(p.id) in
  let token = record_start p in
  let t0 = Engine.now p.rt.engine in
  let counts_mode =
    p.rt.cfg.Config.multicast <> None || p.rt.cfg.Config.placement <> None
  in
  timed p p.rt.hot.h_barrier (fun () ->
      send p.rt ~src:p.id ~dst:0
        (Protocol.Barrier_arrive
           {
             proc = p.id;
             episode;
             vc = Replica.applied node.replica;
             members;
             sent = (if counts_mode then Array.copy node.sent_updates else [||]);
           });
      Replica.wait_until node.replica ~hint:Replica.Clock (fun () ->
          match Hashtbl.find_opt node.released (members, episode) with
          | Some (dep, expect) ->
            if expect = [||] then Replica.dep_satisfied node.replica dep
            else begin
              (* Section 6's count scheme: proceed once this node has
                 received as many updates from each peer as the barrier
                 manager counted *)
              let received = Replica.received node.replica in
              let ok = ref true in
              Array.iteri (fun j c -> if received.(j) < c then ok := false) expect;
              !ok
            end
          | None -> false);
      Hashtbl.remove node.released (members, episode);
      record_finish p token kind;
      let args = [ ("episode", string_of_int episode) ] in
      let args =
        if members = [] then args
        else
          ("members", String.concat "," (List.map string_of_int members)) :: args
      in
      trace_instant p ~args "sync_epoch";
      trace_span p ~t0 ~args
        (if members = [] then "barrier" else "barrier_subset"));
  stability_sweep p.rt

let barrier p =
  Metrics.Counter.incr p.rt.hot.c_barrier;
  charge p;
  let node = p.rt.nodes.(p.id) in
  let episode = node.barrier_episode in
  node.barrier_episode <- episode + 1;
  barrier_generic p ~members:[] ~episode ~kind:(Op.Barrier episode)

let barrier_subset p members =
  Metrics.Counter.incr p.rt.hot.c_barrier_subset;
  charge p;
  let members = List.sort_uniq compare members in
  if not (List.mem p.id members) then
    invalid_arg "Runtime.barrier_subset: calling process must be a member";
  let node = p.rt.nodes.(p.id) in
  let counter =
    match Hashtbl.find_opt node.subset_episodes members with
    | Some r -> r
    | None ->
      let r = ref 0 in
      Hashtbl.add node.subset_episodes members r;
      r
  in
  let episode = !counter in
  incr counter;
  barrier_generic p ~members ~episode
    ~kind:(Op.Barrier_group { episode; members })

let await p loc v =
  Metrics.Counter.incr p.rt.hot.c_await;
  charge p;
  flush_outbox p.rt p.id;
  let node = p.rt.nodes.(p.id) in
  let token = record_start p in
  let t0 = Engine.now p.rt.engine in
  (match p.rt.cfg.Config.placement with
  | Some pl ->
    (* awaits busy-wait the local PRAM view, which only ever receives
       updates of subscribed shards *)
    let shard = Mc_placement.Placement.shard_of_loc pl loc in
    if not (Replica.shard_subscribed node.replica ~shard) then
      invalid_arg
        "Runtime.await: cannot await an unsubscribed location under sharded \
         placement"
  | None -> ());
  let view () =
    if p.rt.cfg.Config.multicast <> None || p.rt.cfg.Config.placement <> None
    then Replica.pram_read node.replica loc
    else
      match p.rt.cfg.Config.await_label with
      | Op.Causal -> Replica.causal_read node.replica loc
      | Op.PRAM -> Replica.pram_read node.replica loc
      | Op.Group group -> Replica.group_read node.replica ~group loc
  in
  timed p p.rt.hot.h_await (fun () ->
      Replica.wait_until node.replica ~hint:(Replica.Loc loc) (fun () ->
          fst (view ()) = v);
      let numeric, tag = view () in
      record_finish p token
        (Op.Await { loc; value = recorded_value ~numeric ~tag });
      trace_span p ~t0 ~args:[ ("loc", loc) ] "await")

let compute p cost =
  Metrics.Counter.incr p.rt.hot.c_compute;
  Engine.delay p.rt.engine cost

(* ------------------------------------------------------------------ *)
(* Results and statistics                                              *)
(* ------------------------------------------------------------------ *)

let history t =
  match t.recorder with
  | Some r -> Recorder.history r
  | None -> invalid_arg "Runtime.history: recording is disabled"

let peek t ~proc loc =
  if t.cfg.Config.multicast <> None || t.cfg.Config.placement <> None then
    fst (Replica.pram_read t.nodes.(proc).replica loc)
  else fst (Replica.causal_read t.nodes.(proc).replica loc)

let resident_objects t ~proc = Replica.resident_objects t.nodes.(proc).replica
let fetch_count t = Metrics.Counter.get t.hot.c_fetch

let metrics t = t.metrics
let tracer t = t.tracer

(* ------------------------------------------------------------------ *)
(* Flight recorder introspection (violation audit)                     *)
(* ------------------------------------------------------------------ *)

type flight_info = {
  fi_writer : int;
  fi_shard : int;
  fi_sseq : int;
  fi_t0 : float;
  fi_loc : Op.location;
  fi_expect : int;
  fi_applied : int;
  fi_hops : (int * int * float * float) list; (* (src, dst, sent, recv), by send time *)
  fi_applies : (int * float) list; (* (node, applied at), by time *)
  fi_complete : bool;
}

let flight_info (writer, shard, sseq) fl =
  {
    fi_writer = writer;
    fi_shard = shard;
    fi_sseq = sseq;
    fi_t0 = fl.fl_t0;
    fi_loc = fl.fl_loc;
    fi_expect = fl.fl_expect;
    fi_applied = fl.fl_applied;
    fi_hops =
      List.sort (fun (_, _, a, _) (_, _, b, _) -> compare a b) fl.fl_hops;
    fi_applies = List.sort (fun (_, a) (_, b) -> compare a b) fl.fl_applies;
    fi_complete = fl.fl_done;
  }

let shard_flight t ~writer ~shard ~sseq =
  match t.shard_obs with
  | Some so ->
    Option.map
      (flight_info (writer, shard, sseq))
      (Hashtbl.find_opt so.so_inflight (writer, shard, sseq))
  | None -> None

let shard_flights t =
  match t.shard_obs with
  | Some so ->
    Hashtbl.fold (fun key fl acc -> flight_info key fl :: acc) so.so_inflight []
    |> List.sort (fun a b ->
           compare
             (a.fi_writer, a.fi_shard, a.fi_sseq)
             (b.fi_writer, b.fi_shard, b.fi_sseq))
  | None -> []

(* provenance of a recorded (non-counter) value: values carry unique
   tags, so at most one stream entry matches *)
let shard_write_source t ~loc ~value =
  let found = ref None in
  Hashtbl.iter
    (fun (writer, shard) l ->
      if !found = None then
        List.iter
          (fun (sseq, l', v) ->
            if !found = None && l' = loc && v = value then
              found := Some (writer, shard, sseq))
          !l)
    t.shard_log;
  !found

let op_label labels =
  match List.assoc_opt "op" labels with Some op -> op | None -> ""

(* the hot handles pre-create every series at zero; report only the
   ones actually used, as the seed's lazily-populated tables did. The
   registry lists are already sorted by (name, labels), hence by op. *)
let wait_summaries t =
  Metrics.Registry.histograms t.metrics
  |> List.filter_map (fun (name, labels, h) ->
         if name = "mc_wait_us" && Metrics.Histogram.count h > 0 then
           Some (op_label labels, Metrics.Histogram.summary h)
         else None)

let op_counts t =
  Metrics.Registry.counters t.metrics
  |> List.filter_map (fun (name, labels, c) ->
         if name = "mc_ops_total" && Metrics.Counter.get c > 0 then
           Some (op_label labels, Metrics.Counter.get c)
         else None)
