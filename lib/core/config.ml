type propagation = Eager | Lazy | Demand | Entry
type delivery = Fast | Reference

type t = {
  procs : int;
  propagation : propagation;
  record : bool;
  check_online : bool;
  check_model : Mc_consistency.Lattice.t option;
  await_label : Mc_history.Op.label;
  op_cost : float;
  update_bytes : int;
  control_bytes : int;
  send_cost : float;
  byte_cost : float;
  timestamped_updates : bool;
  groups : int list list;
  multicast : (Mc_history.Op.location -> int list option) option;
  placement : Mc_placement.Placement.t option;
  delivery : delivery;
  batch_max : int;
  batch_window : float;
  observe : bool;
  tracer : Mc_obs.Trace.t option;
}

let default ~procs =
  {
    procs;
    propagation = Lazy;
    record = false;
    check_online = false;
    check_model = None;
    await_label = Mc_history.Op.Causal;
    op_cost = 0.1;
    update_bytes = 64;
    control_bytes = 32;
    send_cost = 2.0;
    byte_cost = 0.02;
    timestamped_updates = true;
    groups = [];
    multicast = None;
    placement = None;
    delivery = Fast;
    batch_max = 1;
    batch_window = 1.0;
    observe = false;
    tracer = None;
  }

let propagation_to_string = function
  | Eager -> "eager"
  | Lazy -> "lazy"
  | Demand -> "demand"
  | Entry -> "entry"

let pp_propagation fmt p = Format.pp_print_string fmt (propagation_to_string p)
