type update = {
  writer : int;
  useq : int;
  dep : int array;
  loc : Mc_history.Op.location;
  numeric : Mc_history.Op.value;
  tag : int;
  is_dec : bool;
}

type batch_item = {
  b_loc : Mc_history.Op.location;
  b_numeric : Mc_history.Op.value;
  b_tag : int;
  b_is_dec : bool;
  b_dep_delta : (int * int) list;
}

type batch = { first : update; rest : batch_item list }

let batch_length b = 1 + List.length b.rest

let batch_delta_entries b =
  List.fold_left (fun acc it -> acc + List.length it.b_dep_delta) 0 b.rest

(* The writer's own dep entry is never transmitted: it is [useq - 1] by
   construction, and useqs within a batch are consecutive. *)
let encode_batch = function
  | [] -> invalid_arg "Protocol.encode_batch: empty batch"
  | (first : update) :: rest ->
    let writer = first.writer in
    let prev = ref first in
    let items =
      List.map
        (fun (u : update) ->
          if u.writer <> writer then
            invalid_arg "Protocol.encode_batch: mixed writers";
          if u.useq <> !prev.useq + 1 then
            invalid_arg "Protocol.encode_batch: non-consecutive useq";
          let delta = ref [] in
          Array.iteri
            (fun j d -> if j <> writer && d <> !prev.dep.(j) then delta := (j, d) :: !delta)
            u.dep;
          prev := u;
          {
            b_loc = u.loc;
            b_numeric = u.numeric;
            b_tag = u.tag;
            b_is_dec = u.is_dec;
            b_dep_delta = List.rev !delta;
          })
        rest
    in
    { first; rest = items }

let decode_batch { first; rest } =
  let writer = first.writer in
  let prev_dep = ref first.dep and useq = ref first.useq in
  let decoded =
    List.map
      (fun it ->
        incr useq;
        let dep = Array.copy !prev_dep in
        List.iter (fun (j, d) -> dep.(j) <- d) it.b_dep_delta;
        dep.(writer) <- !useq - 1;
        prev_dep := dep;
        {
          writer;
          useq = !useq;
          dep;
          loc = it.b_loc;
          numeric = it.b_numeric;
          tag = it.b_tag;
          is_dec = it.b_is_dec;
        })
      rest
  in
  first :: decoded

(* Sharded (partially-replicated) routing: updates are scoped to one
   shard and carry per-shard ordering metadata instead of the global
   vector clock. [su_sseq] numbers the (writer, shard) stream; [su_sdep]
   is the shard-scoped delta clock — the per-writer applied counts of
   that shard at the writer when it issued the update, sparse, with the
   writer's own entry omitted (it is [su_sseq - 1] by construction). *)
type shard_update = {
  su_shard : int;
  su_writer : int;
  su_sseq : int;
  su_sdep : (int * int) list;
  su_loc : Mc_history.Op.location;
  su_numeric : Mc_history.Op.value;
  su_tag : int;
  su_is_dec : bool;
}

type msg =
  | Update of update
  | Update_batch of batch
  | Shard_update of shard_update
  | Fetch_request of { proc : int; loc : Mc_history.Op.location }
  | Fetch_reply of {
      loc : Mc_history.Op.location;
      numeric : Mc_history.Op.value;
      tag : int;
      clock : (int * int) list;
          (** the home's per-writer applied counts for the location's
              shard — the snapshot the fetched read is validated
              against *)
    }
  | Lock_request of { proc : int; lock : Mc_history.Op.lock_name; write : bool }
  | Lock_grant of {
      lock : Mc_history.Op.lock_name;
      write : bool;
      seq : int;
      dep : int array;
      invalid : (Mc_history.Op.location * int array) list;
      values : (Mc_history.Op.location * int * int) list;
    }
  | Unlock_msg of {
      proc : int;
      lock : Mc_history.Op.lock_name;
      write : bool;
      vc : int array;
      write_set : Mc_history.Op.location list;
      values : (Mc_history.Op.location * int * int) list;
    }
  | Unlock_ack of { lock : Mc_history.Op.lock_name; seq : int }
  | Flush_request of { proc : int }
  | Flush_ack of { proc : int }
  | Barrier_arrive of {
      proc : int;
      episode : int;
      vc : int array;
      members : int list;  (** empty means all processes *)
      sent : int array;
          (** multicast mode: cumulative update counts this process has
              sent to each peer (Section 6's count vectors); empty when
              vector timestamps are in use *)
    }
  | Barrier_release of {
      episode : int;
      dep : int array;
      members : int list;
      expect : int array;
          (** multicast mode: cumulative update counts the receiver must
              have received from each peer before leaving the barrier;
              empty when vector timestamps are in use *)
    }

let kind = function
  | Update { is_dec = false; _ } -> "update"
  | Update { is_dec = true; _ } -> "dec_update"
  | Update_batch _ -> "update_batch"
  | Shard_update { su_is_dec = false; _ } -> "shard_update"
  | Shard_update { su_is_dec = true; _ } -> "shard_dec_update"
  | Fetch_request _ -> "fetch_request"
  | Fetch_reply _ -> "fetch_reply"
  | Lock_request _ -> "lock_request"
  | Lock_grant _ -> "lock_grant"
  | Unlock_msg _ -> "unlock"
  | Unlock_ack _ -> "unlock_ack"
  | Flush_request _ -> "flush_request"
  | Flush_ack _ -> "flush_ack"
  | Barrier_arrive _ -> "barrier_arrive"
  | Barrier_release _ -> "barrier_release"
