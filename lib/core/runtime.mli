(** The mixed-consistency DSM runtime — the paper's programming model.

    A runtime hosts [procs] DSM nodes on a simulated network. Application
    processes are fibers spawned with {!spawn_process}; inside a fiber the
    operations of the model are available in direct style:

    {[
      Runtime.spawn_process rt 0 (fun p ->
          Runtime.write p "x" 42;
          Runtime.barrier p;
          let v = Runtime.read p ~label:Op.PRAM "x" in
          ...)
    ]}

    Reads are served from the local replica (PRAM view or causal view
    according to the label, Definition 4); writes update the local
    replica and broadcast asynchronously; locks, barriers and awaits
    implement the synchronization orders of Section 3.1 with the
    propagation strategy chosen in {!Config.t}.

    When [config.record] is set, every operation is recorded and
    {!history} returns a {!Mc_history.History.t} that can be fed to the
    checkers in [mc_consistency]. Written values are recorded as unique
    tags so the reads-from relation of the recorded history is exact;
    counter locations (see {!init_counter}) are recorded numerically. *)

type t

(** A handle on one application process (one per DSM node). *)
type proc

val create : Mc_sim.Engine.t -> ?latency:Mc_net.Latency.t -> Config.t -> t

val engine : t -> Mc_sim.Engine.t
val config : t -> Config.t
val network : t -> Protocol.msg Mc_net.Network.t

(** [proc t i] is the handle for process [i]. *)
val proc : t -> int -> proc

val proc_id : proc -> int

(** [runtime_of_proc p] recovers the runtime a handle belongs to. *)
val runtime_of_proc : proc -> t

(** [spawn_process t i f] spawns the application fiber of process [i]. *)
val spawn_process : t -> int -> (proc -> unit) -> unit

(** [spawn_thread t i f] spawns an additional fiber of process [i]
    sharing its replica — the model's multi-threaded processes
    (Section 3). Operations of concurrent threads overlap, so the
    recorded program order of the process is a partial order. Threads of
    one process must not both join the same (global or subset) barrier
    episode. *)
val spawn_thread : t -> int -> (proc -> unit) -> unit

(** [run t] runs the simulation to completion and returns the final
    virtual time. When [config.check_online] is set the recorder is
    closed at the end of the run (flushing the streaming checker), so
    no further operations may be recorded afterwards. *)
val run : t -> float

(** The streaming consistency checker subscribed to the recorder when
    [config.check_online] is set: every read is validated at response
    time, and the runtime's stability sweeps (at barrier and unlock
    completions, from the replicas' applied vectors) let the checker
    reclaim state for values that are superseded everywhere. *)
val online_checker : t -> Mc_consistency.Online.t option

(** {1 Memory operations} *)

(** [read p ?label loc] returns the current value of [loc] in the view
    selected by [label] (default [Causal]). Non-blocking except in
    demand propagation mode when [loc] has a pending invalidation. *)
val read : proc -> ?label:Mc_history.Op.label -> Mc_history.Op.location -> int

(** [write p loc v] installs [v] at [loc] locally and broadcasts the
    update. Non-blocking. *)
val write : proc -> Mc_history.Op.location -> int -> unit

(** {1 Counter objects (Section 5.3)} *)

(** [init_counter p loc v] initializes an abstract counter. Counter
    locations must only be accessed via [decrement], [await] and
    [read]. *)
val init_counter : proc -> Mc_history.Op.location -> int -> unit

(** [decrement p loc ~amount] atomically subtracts [amount]; decrements
    commute, so concurrent decrements converge without locking. *)
val decrement : proc -> Mc_history.Op.location -> amount:int -> unit

(** {1 Synchronization operations} *)

val read_lock : proc -> Mc_history.Op.lock_name -> unit
val read_unlock : proc -> Mc_history.Op.lock_name -> unit
val write_lock : proc -> Mc_history.Op.lock_name -> unit
val write_unlock : proc -> Mc_history.Op.lock_name -> unit

(** [barrier p] joins the next barrier episode; returns when every
    process has arrived and all pre-barrier updates are applied
    locally. *)
val barrier : proc -> unit

(** [barrier_subset p members] joins the next barrier episode of the
    given process subset (Section 3.1.2). The calling process must be a
    member; every member must eventually call it with the same set. *)
val barrier_subset : proc -> int list -> unit

(** [await p loc v] blocks until [loc] holds [v] in the view selected by
    [config.await_label]. *)
val await : proc -> Mc_history.Op.location -> int -> unit

(** [compute p cost] charges [cost] units of local computation time. *)
val compute : proc -> float -> unit

(** {1 Results and statistics} *)

(** [history t] is the recorded history ([config.record] must be set). *)
val history : t -> Mc_history.History.t

(** [peek t ~proc loc] reads the causal view of a replica from outside
    any fiber (for result extraction after [run]); under multicast or
    sharded routing, where the global causal view is off, the PRAM
    view. *)
val peek : t -> proc:int -> Mc_history.Op.location -> int

(** [resident_objects t ~proc] is the number of distinct locations
    materialized at [proc]'s replica — under sharded placement, only the
    locations of subscribed shards ever land here (fetched values are
    not cached), the resident-state measure of EXP-SHARD. *)
val resident_objects : t -> proc:int -> int

(** [fetch_count t] is the number of read-miss fetches issued so far
    (sharded placement only; 0 otherwise). *)
val fetch_count : t -> int

(** [wait_summaries t] gives the distribution of blocking time per
    operation kind ("read", "write_lock", "barrier", ...). Backed by the
    [mc_wait_us] histograms of {!metrics}. *)
val wait_summaries : t -> (string * Mc_util.Stats.Summary.t) list

(** [op_counts t] counts operations issued per kind. Backed by the
    [mc_ops_total] counters of {!metrics}. *)
val op_counts : t -> (string * int) list

(** The runtime's metric registry. Always contains the op counters
    ([mc_ops_total{op}]) and wait histograms ([mc_wait_us{op}]); with
    [config.observe] set it additionally carries the engine, network,
    replica-delivery, online-checker, read-staleness
    ([mc_read_staleness_updates]) and outbox-flush
    ([mc_outbox_flush_size]) series. Under sharded placement with
    [config.observe] it further carries the shard-labelled series —
    [mc_shard_fetch_total]/[mc_shard_fetch_us] (demand-fetch round
    trips), [mc_shard_visibility_us]/[mc_shard_visibility_full_us]
    (write routed → applied at one / every subscriber),
    [mc_shard_staleness_updates] (gap-parked updates at read time),
    [mc_shard_gap_depth]/[mc_shard_gap_buffered_total] (replica gap
    buffers), [mc_shard_subscribers] and the placement churn /
    tree-rebuild counters — all labelled per shard or per node, so the
    series count is O(procs + shards) independent of operation count. *)
val metrics : t -> Mc_obs.Metrics.Registry.t

(** The tracer passed in [config.tracer], if any. Under sharded
    placement the trace additionally carries category ["shard"] events
    (a [shard_send] instant at the root, one flow arc per tree hop and a
    [shard_apply] instant per subscriber apply, all keyed by the
    update's (writer, shard, sseq) args) and category ["fetch"] events
    ([fetch_rtt] requester spans paired with request/reply flow arcs by
    a shared [rtt] arg, plus [fetch_serve] instants at the home). *)
val tracer : t -> Mc_obs.Trace.t option

(** {1 Flight recorder (sharded placement + [config.observe])}

    Every routed shard update is tracked root → leaves: registration at
    routing time, one hop record per tree-edge transmission, one apply
    record per remote subscriber. Flights feed the per-shard visibility
    histograms; with the online checker on, completed flights are
    retained so checker verdicts can be joined to the causal path that
    delivered (or failed to deliver) a value. *)

type flight_info = {
  fi_writer : int;
  fi_shard : int;
  fi_sseq : int;
  fi_t0 : float;  (** sim time the root routed the update *)
  fi_loc : Mc_history.Op.location;
  fi_expect : int;  (** remote subscribers at routing time *)
  fi_applied : int;
  fi_hops : (int * int * float * float) list;
      (** (src, dst, sent, recv) tree-edge transmissions, by send time *)
  fi_applies : (int * float) list;  (** (node, applied-at), by time *)
  fi_complete : bool;
}

(** [shard_flight t ~writer ~shard ~sseq] is the flight of one update,
    if tracked ([None] when observe is off, placement is absent, or the
    flight completed with the checker off and was dropped). *)
val shard_flight : t -> writer:int -> shard:int -> sseq:int -> flight_info option

(** All tracked flights, sorted by (writer, shard, sseq). Incomplete
    flights ([fi_complete = false]) are updates still in flight — e.g.
    held on a paused link — at the time of the call. *)
val shard_flights : t -> flight_info list

(** [shard_write_source t ~loc ~value] resolves a recorded (tagged)
    value to the (writer, shard, sseq) stream coordinates of the write
    that produced it, via the checker's shard log (requires
    [config.check_online] or [config.record] with placement; values are
    unique tags, so the answer is unambiguous). *)
val shard_write_source : t -> loc:Mc_history.Op.location -> value:int -> (int * int * int) option
