module Engine = Mc_sim.Engine
module Pqueue = Mc_util.Pqueue

type cell = { mutable numeric : int; mutable tag : int }

(* ------------------------------------------------------------------ *)
(* Watchers                                                            *)
(* ------------------------------------------------------------------ *)

(* Watchers are indexed by what their predicate depends on, so the fast
   delivery engine re-evaluates only the ones whose guard can have
   changed. [Any] watchers are re-evaluated on every state change (the
   seed behavior for all watchers, kept as the default and as the
   reference mode). Wake-ups preserve the seed's ordering — ready
   watchers resume newest-first — via the installation sequence number,
   so both engines schedule continuations in the identical order. *)
type hint = Loc of Mc_history.Op.location | Clock | Any

type watcher = { wseq : int; hint : hint; pred : unit -> bool; resume : unit -> unit }

type obs = {
  o_reg : Mc_obs.Metrics.Registry.t;
  h_delay : Mc_obs.Metrics.Histogram.t; (* receipt -> causal apply, sim µs *)
  g_depth : Mc_obs.Metrics.Gauge.t; (* pending updates, per node *)
  h_batch : Mc_obs.Metrics.Histogram.t;
  arrivals : (int * int, float) Hashtbl.t; (* (writer, useq) -> arrival time *)
  (* per-shard gap-buffer series, shared across replicas through the
     registry (labelled by shard only — the high water aggregates) *)
  gap_gauges : (int, Mc_obs.Metrics.Gauge.t) Hashtbl.t;
  gap_buffered : (int, Mc_obs.Metrics.Counter.t) Hashtbl.t;
}

(* A Section-3.2 group view: causality maintained across [members].
   [g_applied] counts updates applied to this view per writer. An update
   applies once its dependencies on members are applied here and its
   dependencies on non-members have at least been received; the group
   relation only tracks edges touching members, so received counts are
   enough for the rest. *)
type group_view = {
  members : bool array;
  g_view : (Mc_history.Op.location, cell) Hashtbl.t;
  g_applied : int array;
  (* reference engine: single rescanned pending list *)
  mutable g_pending : Protocol.update list;
  (* fast engine: per-writer buffers keyed by (writer, useq) carrying the
     arrival sequence number, plus blocked-on indexes. A writer with a
     buffered head is in exactly one place: parked on a member whose view
     application must advance, parked on a non-member whose receipt count
     must advance, or queued in the delivery worklist mid-drain. *)
  g_buffer : (int * int, Protocol.update * int) Hashtbl.t;
  g_wait_applied : int list array;
  g_wait_received : int list array;
}

(* Sharded (partially-replicated) mode: per-subscribed-shard delivery
   state. Within a shard, updates are delivered causally against the
   shard-scoped clock ([Protocol.shard_update.su_sdep]); per-writer
   counts are kept sparse because a node only ever sees the writers
   active in the shards it subscribes to. The pending list is the
   reference-style rescan engine — per-shard traffic is a small slice of
   the system, and tree paths are fixed per (writer, shard) stream, so
   arrivals are near-causal and the list stays short. *)
type shard_state = {
  sh_applied : (int, int) Hashtbl.t; (* writer -> applied sseq count *)
  sh_view : (Mc_history.Op.location, cell) Hashtbl.t;
  mutable sh_pending : Protocol.shard_update list;
}

type t = {
  engine : Engine.t;
  node_id : int;
  n : int;
  fast : bool;
  mutable own_seq : int;
  applied_counts : int array;
  received_counts : int array;
  causal_view : (Mc_history.Op.location, cell) Hashtbl.t;
  pram_view : (Mc_history.Op.location, cell) Hashtbl.t;
  (* reference engine: causal delivery buffer, rescanned in full *)
  mutable pending : Protocol.update list;
  (* fast engine: per-writer FIFO buffers keyed by (writer, useq),
     carrying each update's arrival sequence number. The head of writer
     [w] is the update with useq [applied_counts.(w) + 1]; while present
     it is either parked in [wait_applied.(k)] for the first blocking
     writer [k], or queued in the worklist during an ongoing drain. *)
  buffer : (int * int, Protocol.update * int) Hashtbl.t;
  wait_applied : int list array;
  mutable n_pending : int;
  mutable arr_counter : int;
  (* drain worklist scratch (empty between events): heads ready to apply
     in the current pass / the next pass, keyed by arrival order. The
     two-heap structure reproduces the reference engine's apply order
     exactly — see the fast-engine comment below. *)
  mutable wl_cur : int Pqueue.t;
  mutable wl_next : int Pqueue.t;
  invalid : (Mc_history.Op.location, int array) Hashtbl.t;
  (* fast engine: demand-mode obligations parked on their first
     unsatisfied clock entry; an obligation is re-examined only when that
     writer's applied count advances *)
  inv_wait : Mc_history.Op.location list array;
  (* watcher buckets *)
  mutable w_any : watcher list;
  mutable w_clock : watcher list;
  w_loc : (Mc_history.Op.location, watcher list ref) Hashtbl.t;
  mutable next_wseq : int;
  (* dirty sets accumulated between watcher firings (fast engine) *)
  dirty_locs : (Mc_history.Op.location, unit) Hashtbl.t;
  mutable dirty_clock : bool;
  group_views : (int list * group_view) list;
  causal_delivery : bool;
      (* false under multicast and sharded routing: updates may arrive
         with gaps in the writer sequence, so the global causal view is
         not maintained (sharded mode keeps per-shard causal views in
         [shards] instead) *)
  shards : (int, shard_state) Hashtbl.t; (* subscribed shards only *)
  mutable obs : obs option;
  (* fires after every remote shard update is applied to the shard view;
     the runtime uses it to measure write-visibility latency *)
  mutable on_shard_apply : (shard:int -> writer:int -> sseq:int -> unit) option;
}

let create engine ~id ~n ?(groups = []) ?(causal_delivery = true)
    ?(delivery = Config.Fast) () =
  let make_group members_list =
    let members = Array.make n false in
    List.iter
      (fun m ->
        if m < 0 || m >= n then invalid_arg "Replica.create: group member out of range";
        members.(m) <- true)
      members_list;
    ( List.sort_uniq compare members_list,
      {
        members;
        g_view = Hashtbl.create 32;
        g_applied = Array.make n 0;
        g_pending = [];
        g_buffer = Hashtbl.create 32;
        g_wait_applied = Array.make n [];
        g_wait_received = Array.make n [];
      } )
  in
  {
    engine;
    node_id = id;
    n;
    fast = (delivery = Config.Fast);
    own_seq = 0;
    applied_counts = Array.make n 0;
    received_counts = Array.make n 0;
    causal_view = Hashtbl.create 64;
    pram_view = Hashtbl.create 64;
    pending = [];
    buffer = Hashtbl.create 64;
    wait_applied = Array.make n [];
    n_pending = 0;
    arr_counter = 0;
    wl_cur = Pqueue.create ();
    wl_next = Pqueue.create ();
    invalid = Hashtbl.create 8;
    inv_wait = Array.make n [];
    w_any = [];
    w_clock = [];
    w_loc = Hashtbl.create 8;
    next_wseq = 0;
    dirty_locs = Hashtbl.create 8;
    dirty_clock = false;
    group_views = List.map make_group groups;
    causal_delivery;
    shards = Hashtbl.create 8;
    obs = None;
    on_shard_apply = None;
  }

let set_shard_apply_observer t f = t.on_shard_apply <- Some f

let attach_metrics t reg =
  let module M = Mc_obs.Metrics in
  M.Registry.gauge_fn reg ~help:"locations resident in the local view"
    ~labels:[ ("node", string_of_int t.node_id) ]
    "mc_resident_objects"
    (fun () -> float_of_int (Hashtbl.length t.pram_view));
  t.obs <-
    Some
      {
        o_reg = reg;
        h_delay =
          M.Registry.histogram reg
            ~help:"delay between receipt and causal application (us)"
            "mc_delivery_delay_us";
        g_depth =
          M.Registry.gauge reg ~help:"updates awaiting causal delivery"
            ~labels:[ ("node", string_of_int t.node_id) ]
            "mc_delivery_queue_depth";
        h_batch =
          M.Registry.histogram reg ~help:"updates per received batch"
            "mc_update_batch_size";
        arrivals = Hashtbl.create 64;
        gap_gauges = Hashtbl.create 8;
        gap_buffered = Hashtbl.create 8;
      }

let gap_gauge o shard =
  match Hashtbl.find_opt o.gap_gauges shard with
  | Some g -> g
  | None ->
    let g =
      Mc_obs.Metrics.Registry.gauge o.o_reg
        ~help:"shard updates parked on a sequence gap"
        ~labels:[ ("shard", string_of_int shard) ]
        "mc_shard_gap_depth"
    in
    Hashtbl.add o.gap_gauges shard g;
    g

let gap_counter o shard =
  match Hashtbl.find_opt o.gap_buffered shard with
  | Some c -> c
  | None ->
    let c =
      Mc_obs.Metrics.Registry.counter o.o_reg
        ~help:"shard updates that stalled in the gap buffer"
        ~labels:[ ("shard", string_of_int shard) ]
        "mc_shard_gap_buffered_total"
    in
    Hashtbl.add o.gap_buffered shard c;
    c

let id t = t.node_id
let applied t = Array.copy t.applied_counts
let received t = Array.copy t.received_counts

let shard_pending_total t =
  Hashtbl.fold (fun _ st acc -> acc + List.length st.sh_pending) t.shards 0

let pending_count t =
  (if t.fast then t.n_pending else List.length t.pending)
  + shard_pending_total t

let view_cell view loc =
  match Hashtbl.find_opt view loc with
  | Some c -> c
  | None ->
    let c = { numeric = 0; tag = 0 } in
    Hashtbl.add view loc c;
    c

let read_view view loc =
  match Hashtbl.find_opt view loc with
  | Some c -> (c.numeric, c.tag)
  | None -> (0, 0)

let apply_to_view view (u : Protocol.update) =
  let c = view_cell view u.loc in
  if u.is_dec then c.numeric <- c.numeric - u.numeric
  else begin
    c.numeric <- u.numeric;
    c.tag <- u.tag
  end

let causal_read t loc = read_view t.causal_view loc
let pram_read t loc = read_view t.pram_view loc

let find_group t group =
  let key = List.sort_uniq compare group in
  match List.assoc_opt key t.group_views with
  | Some g -> g
  | None ->
    invalid_arg
      ("Replica.group_read: group not registered: {"
      ^ String.concat "," (List.map string_of_int key)
      ^ "}")

let group_read t ~group loc = read_view (find_group t group).g_view loc

let dep_satisfied t dep =
  let ok = ref true in
  Array.iteri (fun j d -> if t.applied_counts.(j) < d then ok := false) dep;
  !ok

(* ------------------------------------------------------------------ *)
(* Watcher firing                                                      *)
(* ------------------------------------------------------------------ *)

let mark_dirty_loc t loc =
  if t.fast && not (Hashtbl.mem t.dirty_locs loc) then
    Hashtbl.add t.dirty_locs loc ()

let put_back t w =
  match w.hint with
  | Any -> t.w_any <- w :: t.w_any
  | Clock -> t.w_clock <- w :: t.w_clock
  | Loc loc -> (
    match Hashtbl.find_opt t.w_loc loc with
    | Some r -> r := w :: !r
    | None -> Hashtbl.add t.w_loc loc (ref [ w ]))

(* Fire the candidate watchers in descending installation order (the
   seed resumed ready watchers newest-first); predicates that still fail
   return to their bucket. A fired resume only schedules the suspended
   fiber, so no predicate can change state during the sweep. *)
let fire_candidates t candidates =
  match candidates with
  | [] -> ()
  | _ ->
    let sorted = List.sort (fun a b -> compare b.wseq a.wseq) candidates in
    List.iter (fun w -> if w.pred () then w.resume () else put_back t w) sorted

let fire_all t =
  Hashtbl.reset t.dirty_locs;
  t.dirty_clock <- false;
  let candidates = ref [] in
  candidates := List.rev_append t.w_any !candidates;
  t.w_any <- [];
  candidates := List.rev_append t.w_clock !candidates;
  t.w_clock <- [];
  Hashtbl.iter (fun _ r -> candidates := List.rev_append !r !candidates) t.w_loc;
  Hashtbl.reset t.w_loc;
  fire_candidates t !candidates

let fire_dirty t =
  if not t.fast then fire_all t
  else begin
    let candidates = ref [] in
    candidates := List.rev_append t.w_any !candidates;
    t.w_any <- [];
    if t.dirty_clock then begin
      candidates := List.rev_append t.w_clock !candidates;
      t.w_clock <- []
    end;
    Hashtbl.iter
      (fun loc () ->
        match Hashtbl.find_opt t.w_loc loc with
        | Some r ->
          candidates := List.rev_append !r !candidates;
          Hashtbl.remove t.w_loc loc
        | None -> ())
      t.dirty_locs;
    Hashtbl.reset t.dirty_locs;
    t.dirty_clock <- false;
    fire_candidates t !candidates
  end

let notify t = fire_all t

(* ------------------------------------------------------------------ *)
(* Demand-mode invalidation                                            *)
(* ------------------------------------------------------------------ *)

(* first clock entry not yet applied locally; [None] means satisfied *)
let blocking_index t dep =
  let k = ref (-1) in
  (try
     Array.iteri
       (fun j d ->
         if t.applied_counts.(j) < d then begin
           k := j;
           raise Exit
         end)
       dep
   with Exit -> ());
  if !k < 0 then None else Some !k

let mark_invalid t loc dep =
  if not (dep_satisfied t dep) then
    match Hashtbl.find_opt t.invalid loc with
    | Some prev ->
      (* the fast engine keeps the existing parking: the parked clock was
         unsatisfied and the merged clock only grows entrywise *)
      Hashtbl.replace t.invalid loc
        (Array.init (Array.length dep) (fun j -> max prev.(j) dep.(j)))
    | None -> (
      Hashtbl.replace t.invalid loc dep;
      if t.fast then
        match blocking_index t dep with
        | Some k -> t.inv_wait.(k) <- loc :: t.inv_wait.(k)
        | None -> assert false)

let location_blocked t loc =
  match Hashtbl.find_opt t.invalid loc with
  | Some dep -> not (dep_satisfied t dep)
  | None -> false

(* re-examine the obligations parked on writer [w] after its applied
   count advanced: satisfied ones clear (waking readers of the
   location), the rest re-park on their next unsatisfied entry *)
let recheck_invalid t w =
  match t.inv_wait.(w) with
  | [] -> ()
  | locs ->
    t.inv_wait.(w) <- [];
    List.iter
      (fun loc ->
        match Hashtbl.find_opt t.invalid loc with
        | None -> ()
        | Some dep -> (
          match blocking_index t dep with
          | None ->
            Hashtbl.remove t.invalid loc;
            mark_dirty_loc t loc
          | Some k -> t.inv_wait.(k) <- loc :: t.inv_wait.(k)))
      locs

(* ------------------------------------------------------------------ *)
(* Causal application                                                  *)
(* ------------------------------------------------------------------ *)

let causal_apply t (u : Protocol.update) =
  (match t.obs with
  | Some o -> (
    let key = (u.writer, u.useq) in
    match Hashtbl.find_opt o.arrivals key with
    | Some arrived ->
      Hashtbl.remove o.arrivals key;
      Mc_obs.Metrics.Histogram.observe o.h_delay (Engine.now t.engine -. arrived)
    | None -> ())
  | None -> ());
  apply_to_view t.causal_view u;
  mark_dirty_loc t u.loc;
  t.applied_counts.(u.writer) <- t.applied_counts.(u.writer) + 1;
  t.dirty_clock <- true;
  if t.fast then recheck_invalid t u.writer
  else begin
    (* clear satisfied demand-mode obligations (whole-table fold) *)
    let cleared =
      Hashtbl.fold
        (fun loc dep acc -> if dep_satisfied t dep then loc :: acc else acc)
        t.invalid []
    in
    List.iter (Hashtbl.remove t.invalid) cleared
  end

(* ------------------------------------------------------------------ *)
(* Reference delivery engine (retained naive path)                     *)
(* ------------------------------------------------------------------ *)

let deliverable t (u : Protocol.update) =
  t.applied_counts.(u.writer) = u.useq - 1
  && (let ok = ref true in
      Array.iteri
        (fun k d -> if k <> u.writer && t.applied_counts.(k) < d then ok := false)
        u.dep;
      !ok)

let drain_pending_ref t =
  let progress = ref true in
  while !progress do
    progress := false;
    let rec scan acc = function
      | [] -> List.rev acc
      | u :: rest ->
        if deliverable t u then begin
          causal_apply t u;
          progress := true;
          scan acc rest
        end
        else scan (u :: acc) rest
    in
    t.pending <- scan [] t.pending
  done

(* a member update is deliverable to a group view when its member
   dependencies are applied to the view (per-writer in order) and its
   non-member dependencies have at least been received *)
let group_deliverable t g (u : Protocol.update) =
  g.g_applied.(u.writer) = u.useq - 1
  && (let ok = ref true in
      Array.iteri
        (fun k d ->
          if k <> u.writer then
            if g.members.(k) then begin
              if g.g_applied.(k) < d then ok := false
            end
            else if t.received_counts.(k) < d then ok := false)
        u.dep;
      !ok)

let group_apply t g (u : Protocol.update) =
  apply_to_view g.g_view u;
  mark_dirty_loc t u.loc;
  g.g_applied.(u.writer) <- g.g_applied.(u.writer) + 1

let drain_group_ref t g =
  let progress = ref true in
  while !progress do
    progress := false;
    let rec scan acc = function
      | [] -> List.rev acc
      | u :: rest ->
        if group_deliverable t g u then begin
          group_apply t g u;
          progress := true;
          scan acc rest
        end
        else scan (u :: acc) rest
    in
    g.g_pending <- scan [] g.g_pending
  done

let group_receive_ref t g (u : Protocol.update) =
  (* every update waits for its dependencies on group members to be
     applied to this view: a non-member's update can causally depend on a
     member's write (the writer observed it before writing), and the
     group relation includes reads-from edges that touch members *)
  g.g_pending <- g.g_pending @ [ u ];
  drain_group_ref t g

(* ------------------------------------------------------------------ *)
(* Fast delivery engine                                                *)
(* ------------------------------------------------------------------ *)

(* The reference drain is a fixpoint of full rescans: each pass walks
   the pending buffer in arrival order applying whatever is deliverable
   at its scan position. The apply ORDER is observable — two concurrent
   updates to one location resolve last-writer-wins — so the fast engine
   must reproduce it exactly. An update ends up applied at lexicographic
   key (pass, arrival position), where an update enabled by an
   application at arrival position [a] joins the SAME pass if it sits
   after [a] in arrival order and the NEXT pass otherwise; updates
   deliverable when the event starts form pass 1.

   The engine keeps per-writer FIFO buffers — channels are FIFO, so the
   only possibly-deliverable update of writer [w] is its head, useq
   [applied.(w) + 1] — making deliverability one O(procs) check instead
   of a rescan. A blocked head parks on the first clock entry gating it
   and is re-examined exactly when that entry advances; a ready head
   enters a two-heap worklist (current pass / next pass, ordered by
   arrival) whose pops follow exactly the reference order. Once queued a
   head stays deliverable: applied counts only grow. *)

let pop_ready t =
  if Pqueue.is_empty t.wl_cur then
    if Pqueue.is_empty t.wl_next then None
    else begin
      (* pass boundary: promote the accumulated next-pass heads *)
      let tmp = t.wl_cur in
      t.wl_cur <- t.wl_next;
      t.wl_next <- tmp;
      let arr, w = Pqueue.pop_min t.wl_cur in
      Some (int_of_float arr, w)
    end
  else
    let arr, w = Pqueue.pop_min t.wl_cur in
    Some (int_of_float arr, w)

(* first clock entry blocking [u] from the causal view, excluding the
   writer's own entry (the per-writer head invariant covers it). An
   update is never gated on the receiving node itself: FIFO channels
   give [dep.(self) <= applied.(self)] at receipt, so parking on self —
   which could never be woken — cannot happen. *)
let blocking_writer t (u : Protocol.update) =
  let k = ref (-1) in
  (try
     Array.iteri
       (fun j d ->
         if j <> u.writer && t.applied_counts.(j) < d then begin
           k := j;
           raise Exit
         end)
       u.dep
   with Exit -> ());
  if !k < 0 then None else Some !k

(* examine writer [w]'s head after the state advanced: park it if still
   blocked, otherwise queue it for the pass implied by the enabling
   arrival position [from_arr] ([-1] seeds pass 1 at event start) *)
let check_writer t ~from_arr w =
  match Hashtbl.find_opt t.buffer (w, t.applied_counts.(w) + 1) with
  | None -> ()
  | Some (u, arr) -> (
    match blocking_writer t u with
    | Some k -> t.wait_applied.(k) <- w :: t.wait_applied.(k)
    | None ->
      Pqueue.add
        (if arr > from_arr then t.wl_cur else t.wl_next)
        ~priority:(float_of_int arr) w)

let run_main_worklist t =
  let rec go () =
    match pop_ready t with
    | None -> ()
    | Some (arr_v, w) ->
      let key = (w, t.applied_counts.(w) + 1) in
      let u, _ = Hashtbl.find t.buffer key in
      Hashtbl.remove t.buffer key;
      t.n_pending <- t.n_pending - 1;
      causal_apply t u;
      check_writer t ~from_arr:arr_v w;
      let parked = t.wait_applied.(w) in
      t.wait_applied.(w) <- [];
      List.iter (fun w' -> check_writer t ~from_arr:arr_v w') parked;
      go ()
  in
  go ()

(* group-view analogue: the blocked-on index distinguishes member
   entries (woken when the view applies that writer) from non-member
   entries (woken when an update from that writer is received) *)
let g_blocking t g (u : Protocol.update) =
  let res = ref None in
  (try
     Array.iteri
       (fun j d ->
         if j <> u.writer then
           if g.members.(j) then begin
             if g.g_applied.(j) < d then begin
               res := Some (`Member j);
               raise Exit
             end
           end
           else if t.received_counts.(j) < d then begin
             res := Some (`Non_member j);
             raise Exit
           end)
       u.dep
   with Exit -> ());
  !res

let g_check_writer t g ~from_arr w =
  match Hashtbl.find_opt g.g_buffer (w, g.g_applied.(w) + 1) with
  | None -> ()
  | Some (u, arr) -> (
    match g_blocking t g u with
    | Some (`Member k) -> g.g_wait_applied.(k) <- w :: g.g_wait_applied.(k)
    | Some (`Non_member k) -> g.g_wait_received.(k) <- w :: g.g_wait_received.(k)
    | None ->
      Pqueue.add
        (if arr > from_arr then t.wl_cur else t.wl_next)
        ~priority:(float_of_int arr) w)

let run_group_worklist t g =
  let rec go () =
    match pop_ready t with
    | None -> ()
    | Some (arr_v, w) ->
      let key = (w, g.g_applied.(w) + 1) in
      let u, _ = Hashtbl.find g.g_buffer key in
      Hashtbl.remove g.g_buffer key;
      group_apply t g u;
      g_check_writer t g ~from_arr:arr_v w;
      (* only member applications advance here; receipt counts are
         constant within a drain, so g_wait_received stays parked *)
      let parked = g.g_wait_applied.(w) in
      g.g_wait_applied.(w) <- [];
      List.iter (fun w' -> g_check_writer t g ~from_arr:arr_v w') parked;
      go ()
  in
  go ()

(* heads unblocked by an advance of [received_counts.(w)] (or of
   [g_applied.(w)] for a local write) all join pass 1, exactly as the
   reference's first rescan applies them in arrival order *)
let g_seed_received t g w =
  match g.g_wait_received.(w) with
  | [] -> ()
  | parked ->
    g.g_wait_received.(w) <- [];
    List.iter (g_check_writer t g ~from_arr:(-1)) parked

let g_seed_applied t g w =
  match g.g_wait_applied.(w) with
  | [] -> ()
  | parked ->
    g.g_wait_applied.(w) <- [];
    List.iter (g_check_writer t g ~from_arr:(-1)) parked

(* ------------------------------------------------------------------ *)
(* Receive                                                             *)
(* ------------------------------------------------------------------ *)

let receive_one t (u : Protocol.update) =
  if u.writer = t.node_id then
    invalid_arg "Replica.receive: update from self (already applied locally)";
  t.received_counts.(u.writer) <- t.received_counts.(u.writer) + 1;
  t.dirty_clock <- true;
  apply_to_view t.pram_view u;
  mark_dirty_loc t u.loc;
  (match t.obs with
  | Some o when t.causal_delivery ->
    Hashtbl.replace o.arrivals (u.writer, u.useq) (Engine.now t.engine)
  | _ -> ());
  if t.causal_delivery then
    if t.fast then begin
      t.arr_counter <- t.arr_counter + 1;
      let arr = t.arr_counter in
      Hashtbl.add t.buffer (u.writer, u.useq) (u, arr);
      t.n_pending <- t.n_pending + 1;
      (* main view: only the arriving writer's head can have become
         deliverable (applied counts are unchanged by mere receipt) *)
      if u.useq = t.applied_counts.(u.writer) + 1 then begin
        check_writer t ~from_arr:(-1) u.writer;
        run_main_worklist t
      end;
      List.iter
        (fun (_, g) ->
          Hashtbl.add g.g_buffer (u.writer, u.useq) (u, arr);
          if u.useq = g.g_applied.(u.writer) + 1 then
            g_check_writer t g ~from_arr:(-1) u.writer;
          (* the receipt-count advance can unblock heads parked on this
             (non-member) writer *)
          g_seed_received t g u.writer;
          run_group_worklist t g)
        t.group_views
    end
    else begin
      t.pending <- t.pending @ [ u ];
      drain_pending_ref t;
      List.iter (fun (_, g) -> group_receive_ref t g u) t.group_views
    end;
  match t.obs with
  | Some o -> Mc_obs.Metrics.Gauge.set o.g_depth (float_of_int (pending_count t))
  | None -> ()

let receive t u =
  receive_one t u;
  fire_dirty t

let receive_many t us =
  (match t.obs with
  | Some o ->
    Mc_obs.Metrics.Histogram.observe o.h_batch (float_of_int (List.length us))
  | None -> ());
  List.iter (receive_one t) us;
  fire_dirty t

(* ------------------------------------------------------------------ *)
(* Local operations                                                    *)
(* ------------------------------------------------------------------ *)

let make_update t ~loc ~numeric ~tag ~is_dec =
  (* dependency clock: applied counts before this update; the writer's
     own entry equals own_seq, i.e. useq - 1 *)
  let dep = Array.copy t.applied_counts in
  t.own_seq <- t.own_seq + 1;
  let u : Protocol.update =
    { writer = t.node_id; useq = t.own_seq; dep; loc; numeric; tag; is_dec }
  in
  apply_to_view t.causal_view u;
  apply_to_view t.pram_view u;
  mark_dirty_loc t loc;
  t.applied_counts.(t.node_id) <- t.applied_counts.(t.node_id) + 1;
  t.received_counts.(t.node_id) <- t.received_counts.(t.node_id) + 1;
  t.dirty_clock <- true;
  (* a remote update's dependency on us never exceeds the updates we had
     already issued when it was sent, so the main view needs no re-drain
     here — but group views also gate on receipt counts, and our own
     write advances both counts for this node *)
  List.iter
    (fun (_, g) ->
      group_apply t g u;
      if t.fast then begin
        g_seed_applied t g t.node_id;
        g_seed_received t g t.node_id;
        run_group_worklist t g
      end
      else drain_group_ref t g)
    t.group_views;
  fire_dirty t;
  u

let local_write t ~loc ~numeric ~tag = make_update t ~loc ~numeric ~tag ~is_dec:false

let local_dec t ~loc ~amount =
  let observed, _ = causal_read t loc in
  let u = make_update t ~loc ~numeric:amount ~tag:0 ~is_dec:true in
  (u, observed)

(* entry mode: install a value carried by a lock grant directly into
   both views; these values never traveled as counted updates, so the
   vector bookkeeping is untouched (the lock discipline provides the
   ordering) *)
let install_direct t ~loc ~numeric ~tag =
  let set view =
    let c = view_cell view loc in
    c.numeric <- numeric;
    c.tag <- tag
  in
  set t.causal_view;
  set t.pram_view;
  List.iter (fun (_, g) -> set g.g_view) t.group_views;
  mark_dirty_loc t loc;
  fire_dirty t

let wait_until t ?(hint = Any) pred =
  if not (pred ()) then
    Engine.suspend t.engine (fun resume ->
        let w = { wseq = t.next_wseq; hint; pred; resume } in
        t.next_wseq <- t.next_wseq + 1;
        put_back t w)

(* ------------------------------------------------------------------ *)
(* Sharded (partially-replicated) mode                                 *)
(* ------------------------------------------------------------------ *)

let find_shard t shard =
  match Hashtbl.find_opt t.shards shard with
  | Some st -> st
  | None ->
    invalid_arg
      (Printf.sprintf "Replica.%d: not subscribed to shard %d" t.node_id shard)

let shard_subscribed t ~shard = Hashtbl.mem t.shards shard

let subscribe_shard t ?(clock = []) ?(values = []) ~shard () =
  let st =
    {
      sh_applied = Hashtbl.create 8;
      sh_view = Hashtbl.create 32;
      sh_pending = [];
    }
  in
  List.iter (fun (w, c) -> Hashtbl.replace st.sh_applied w c) clock;
  (* state transfer: the snapshot values enter both the shard view and
     the PRAM view (they are this node's local copy now) *)
  List.iter
    (fun (loc, numeric, tag) ->
      let set view =
        let c = view_cell view loc in
        c.numeric <- numeric;
        c.tag <- tag
      in
      set st.sh_view;
      set t.pram_view;
      mark_dirty_loc t loc)
    values;
  Hashtbl.replace t.shards shard st;
  fire_dirty t

let unsubscribe_shard t ~shard = Hashtbl.remove t.shards shard

let sh_get st w =
  match Hashtbl.find_opt st.sh_applied w with Some c -> c | None -> 0

let shard_deliverable st (su : Protocol.shard_update) =
  sh_get st su.su_writer = su.su_sseq - 1
  && List.for_all (fun (j, d) -> sh_get st j >= d) su.su_sdep

let apply_shard_payload view ~loc ~numeric ~tag ~is_dec =
  let c = view_cell view loc in
  if is_dec then c.numeric <- c.numeric - numeric
  else begin
    c.numeric <- numeric;
    c.tag <- tag
  end

let shard_apply t st (su : Protocol.shard_update) =
  apply_shard_payload st.sh_view ~loc:su.su_loc ~numeric:su.su_numeric
    ~tag:su.su_tag ~is_dec:su.su_is_dec;
  Hashtbl.replace st.sh_applied su.su_writer su.su_sseq;
  mark_dirty_loc t su.su_loc;
  match t.on_shard_apply with
  | Some f when su.su_writer <> t.node_id ->
    f ~shard:su.su_shard ~writer:su.su_writer ~sseq:su.su_sseq
  | _ -> ()

let drain_shard t st =
  let progress = ref true in
  while !progress do
    progress := false;
    let rec scan acc = function
      | [] -> List.rev acc
      | su :: rest ->
        if shard_deliverable st su then begin
          shard_apply t st su;
          progress := true;
          scan acc rest
        end
        else scan (su :: acc) rest
    in
    st.sh_pending <- scan [] st.sh_pending
  done

let shard_make t ~shard ~loc ~numeric ~tag ~is_dec =
  let st = find_shard t shard in
  let sseq = sh_get st t.node_id + 1 in
  let sdep =
    Hashtbl.fold
      (fun j c acc -> if j <> t.node_id && c > 0 then (j, c) :: acc else acc)
      st.sh_applied []
    |> List.sort compare
  in
  let su : Protocol.shard_update =
    {
      su_shard = shard;
      su_writer = t.node_id;
      su_sseq = sseq;
      su_sdep = sdep;
      su_loc = loc;
      su_numeric = numeric;
      su_tag = tag;
      su_is_dec = is_dec;
    }
  in
  apply_shard_payload t.pram_view ~loc ~numeric ~tag ~is_dec;
  shard_apply t st su;
  t.received_counts.(t.node_id) <- t.received_counts.(t.node_id) + 1;
  t.dirty_clock <- true;
  fire_dirty t;
  su

let shard_write t ~shard ~loc ~numeric ~tag =
  shard_make t ~shard ~loc ~numeric ~tag ~is_dec:false

let shard_dec t ~shard ~loc ~amount =
  let st = find_shard t shard in
  let observed, _ = read_view st.sh_view loc in
  let su = shard_make t ~shard ~loc ~numeric:amount ~tag:0 ~is_dec:true in
  (su, observed)

let shard_receive t (su : Protocol.shard_update) =
  if su.su_writer = t.node_id then
    invalid_arg "Replica.shard_receive: update from self";
  match Hashtbl.find_opt t.shards su.su_shard with
  | None -> () (* gap-tolerant: not subscribed, ignore *)
  | Some st when su.su_sseq <= sh_get st su.su_writer ->
    (* already covered by the snapshot installed at subscription time
       (or a duplicate): its payload is reflected in the snapshot
       values, so applying it again would go back in time *)
    ()
  | Some st ->
    t.received_counts.(su.su_writer) <- t.received_counts.(su.su_writer) + 1;
    t.dirty_clock <- true;
    apply_shard_payload t.pram_view ~loc:su.su_loc ~numeric:su.su_numeric
      ~tag:su.su_tag ~is_dec:su.su_is_dec;
    mark_dirty_loc t su.su_loc;
    (match t.obs with
    | Some o when not (shard_deliverable st su) ->
      (* arrived ahead of a sequence gap: it will sit in the buffer *)
      Mc_obs.Metrics.Counter.incr (gap_counter o su.su_shard)
    | _ -> ());
    st.sh_pending <- st.sh_pending @ [ su ];
    drain_shard t st;
    (match t.obs with
    | Some o ->
      Mc_obs.Metrics.Gauge.set o.g_depth (float_of_int (pending_count t));
      Mc_obs.Metrics.Gauge.set (gap_gauge o su.su_shard)
        (float_of_int (List.length st.sh_pending))
    | None -> ());
    fire_dirty t

let shard_read t ~shard loc = read_view (find_shard t shard).sh_view loc

let shard_clock t ~shard =
  Hashtbl.fold (fun w c acc -> (w, c) :: acc) (find_shard t shard).sh_applied []
  |> List.sort compare

let resident_objects t = Hashtbl.length t.pram_view

let shard_queue_depths t =
  Hashtbl.fold
    (fun shard st acc -> (shard, List.length st.sh_pending) :: acc)
    t.shards []
  |> List.sort compare

let shard_pending_len t ~shard =
  match Hashtbl.find_opt t.shards shard with
  | Some st -> List.length st.sh_pending
  | None -> 0
