(** Configuration of the mixed-consistency DSM runtime. *)

(** How updates made inside a critical section reach the next lock holder
    (Section 6). [Eager]: the releaser broadcasts a flush and waits for
    acknowledgements from every node before the unlock takes effect.
    [Lazy]: the unlock carries the releaser's update counts to the lock
    manager; the next grantee waits until it has applied that many
    updates before entering the critical section. [Demand]: the unlock
    carries the write-set; the grantee enters immediately and only reads
    of the written locations block until the updates arrive. [Entry]:
    entry consistency in the style of Midway (Section 2: "explicitly
    associating synchronization variables with critical sections ...
    can be implemented more efficiently"): updates made inside a write
    critical section are {e not} broadcast at all — their values travel
    with the unlock to the lock manager and ride the next grant, so the
    guarded variables cost O(1) messages per hand-off instead of a
    broadcast per write. Guarded variables must only be accessed under
    their lock (the entry-consistent discipline of Corollary 1);
    accesses outside critical sections see stale values. *)
type propagation = Eager | Lazy | Demand | Entry

(** Which causal-delivery engine the replicas run. [Fast] (the default)
    uses per-writer FIFO queues with an O(1) deliverability check, a
    blocked-on index waking only the queues whose gating entry advanced,
    and indexed demand-invalidation / watcher wake-ups. [Reference] is the
    retained naive implementation — a single pending list rescanned in
    full after every message, whole-table invalidation folds and
    re-evaluation of every watcher on every event. Both produce
    bit-identical executions (the differential test in
    [test/test_delivery.ml] proves it); [Reference] exists as the oracle
    and as the before-side of the EXP-DELIVERY benchmark. *)
type delivery = Fast | Reference

type t = {
  procs : int;  (** number of DSM nodes / application processes *)
  propagation : propagation;
  record : bool;
      (** record every operation into a {!Mc_history.Recorder} for
          offline consistency checking *)
  check_online : bool;
      (** validate every read at response time with the streaming
          checker ([Mc_consistency.Online]) subscribed to the recorder;
          the runtime forwards stability notifications (values
          superseded at every replica) so checker memory is bounded by
          the in-flight window. Independent of [record]: with [record]
          false the recorder runs in streaming-only mode and
          [Runtime.history] is unavailable. *)
  check_model : Mc_consistency.Lattice.t option;
      (** lattice point the online checker validates every memory read
          under, instead of each read's declared label. Only points with
          [Mc_consistency.Online.supports] may be used here (the
          witness-based ones need the offline [Lattice.failures]).
          Ignored unless [check_online] is set. *)
  await_label : Mc_history.Op.label;
      (** which view an await polls: [Causal] (default; satisfies the
          await only once the witnessed write is causally applied) or
          [PRAM] (the paper's busy-wait of PRAM reads) *)
  op_cost : float;
      (** virtual-time cost charged locally to every memory or
          synchronization operation *)
  update_bytes : int;  (** modelled wire size of one update message *)
  control_bytes : int;  (** modelled wire size of one control message *)
  send_cost : float;
      (** per-message sender occupancy (LogP "o"); makes broadcasts cost
          proportionally to fan-out *)
  byte_cost : float;  (** per-byte transmission time (inverse bandwidth) *)
  timestamped_updates : bool;
      (** when true, updates carry a vector timestamp
          ([8 * procs] extra bytes). Section 6 notes the timestamp can be
          omitted when every read that follows a write is PRAM — set this
          to false for PRAM-consistent programs (Fig. 2, Fig. 4). *)
  groups : int list list;
      (** process groups for which every replica maintains a group view,
          enabling [Group]-labelled reads (the Section-3.2 spectrum) *)
  multicast : (Mc_history.Op.location -> int list option) option;
      (** subscriber-based update routing — the Maya optimization of
          Section 6 ("the overhead of broadcasting messages for each
          update ... may be avoided by making optimizations based on the
          patterns of accesses to shared variables"). When set, a write
          to [loc] is sent only to [subscribers loc] (None means
          broadcast). Only PRAM-consistent programs may use this mode:
          causal delivery is disabled (reads must be PRAM-labelled,
          awaits poll the PRAM view) and barriers switch to the paper's
          update-count scheme — each arrival reports how many updates it
          sent to each peer, and the release tells each process how many
          to wait for. *)
  placement : Mc_placement.Placement.t option;
      (** sharded, partially-replicated routing (mutually exclusive with
          [multicast], which it generalizes). Locations are mapped to
          shards and shards to subscriber sets ({!Mc_placement}); a write
          travels a per-(writer, shard) dissemination tree to subscribers
          only, replicas keep state and delivery queues only for
          subscribed shards, and reads of unsubscribed locations fall
          back to demand-driven fetch from the shard's home. Within a
          subscribed shard both [PRAM] and [Causal] reads are available
          (the causal view is per-shard, ordered by shard-scoped delta
          clocks); cross-shard ordering comes only from barriers, which
          use the Section-6 update-count scheme as under [multicast].
          Locks and [Group] reads are not available in this mode. Writes
          are restricted to subscribed shards. *)
  delivery : delivery;  (** causal-delivery engine, see {!delivery} *)
  batch_max : int;
      (** maximum number of consecutive same-writer updates coalesced
          into one {!Protocol.Update_batch} wire message. [1] (the
          default) disables batching — every write broadcasts its own
          update message, the seed behavior. Batching only applies to
          broadcast routing; under [multicast] updates are always sent
          individually (different locations may have different subscriber
          sets). *)
  batch_window : float;
      (** upper bound, in virtual time, on how long the first buffered
          update may wait before the outgoing batch is flushed (batches
          are also flushed when [batch_max] is reached and before every
          synchronization operation). Only meaningful when
          [batch_max > 1]. *)
  observe : bool;
      (** attach the full {!Mc_obs} metric set — engine, network,
          replica-delivery, online-checker and staleness series — to the
          runtime's registry. When false (the default) the runtime still
          maintains its base op counters and wait histograms (the
          [wait_summaries]/[op_counts] API), but the hot paths carry no
          extra instrumentation. *)
  tracer : Mc_obs.Trace.t option;
      (** when set, the runtime emits one span per recorded operation,
          instants for sync epochs, and message send→deliver flow arcs
          into this tracer, keyed by sim time. Independent of
          [observe]. *)
}

val default : procs:int -> t

val pp_propagation : Format.formatter -> propagation -> unit
val propagation_to_string : propagation -> string
