module Engine = Mc_sim.Engine

type 'msg link = {
  mutable last_delivery : float; (* clamp deliveries to preserve FIFO *)
  mutable paused : bool;
  mutable held : (int * string * 'msg) list; (* reversed: (bytes, kind, msg) *)
}

type obs = {
  reg : Mc_obs.Metrics.Registry.t;
  c_msgs : Mc_obs.Metrics.Counter.t;
  c_bytes : Mc_obs.Metrics.Counter.t;
  h_latency : Mc_obs.Metrics.Histogram.t;
  kind_counters : (string, Mc_obs.Metrics.Counter.t) Hashtbl.t;
}

type 'msg observer =
  src:int -> dst:int -> bytes:int -> kind:string -> seq:int -> sent:float ->
  recv:float -> 'msg -> unit

type 'msg t = {
  engine : Engine.t;
  n : int;
  latency : Latency.t;
  send_cost : float;
  byte_cost : float;
  send_free : float array; (* next time each node's sender is free *)
  handlers : (src:int -> 'msg -> unit) option array;
  links : 'msg link array array;
  mutable messages : int;
  mutable bytes : int;
  kinds : Mc_util.Stats.Counters.t;
  mutable latencies : Mc_util.Stats.Summary.t;
  mutable obs : obs option;
  mutable observer : 'msg observer option;
}

let create engine ~nodes ~latency ?(send_cost = 0.) ?(byte_cost = 0.) () =
  if nodes <= 0 then invalid_arg "Network.create: need at least one node";
  if send_cost < 0. || byte_cost < 0. then
    invalid_arg "Network.create: negative cost";
  {
    engine;
    n = nodes;
    latency;
    send_cost;
    byte_cost;
    send_free = Array.make nodes 0.;
    handlers = Array.make nodes None;
    links =
      Array.init nodes (fun _ ->
          Array.init nodes (fun _ ->
              { last_delivery = 0.; paused = false; held = [] }));
    messages = 0;
    bytes = 0;
    kinds = Mc_util.Stats.Counters.create ();
    latencies = Mc_util.Stats.Summary.create ();
    obs = None;
    observer = None;
  }

let attach_metrics t reg =
  let module M = Mc_obs.Metrics in
  t.obs <-
    Some
      {
        reg;
        c_msgs =
          M.Registry.counter reg ~help:"messages transmitted" "mc_net_messages_total";
        c_bytes = M.Registry.counter reg ~help:"bytes transmitted" "mc_net_bytes_total";
        h_latency =
          M.Registry.histogram reg ~help:"end-to-end message latency (us)"
            "mc_net_latency_us";
        kind_counters = Hashtbl.create 8;
      }

let set_observer t f = t.observer <- Some f

let nodes t = t.n
let engine t = t.engine

let check_node t id =
  if id < 0 || id >= t.n then
    invalid_arg (Printf.sprintf "Network: node %d out of range 0..%d" id (t.n - 1))

let set_handler t node f =
  check_node t node;
  t.handlers.(node) <- Some f

let deliver t ~src ~dst msg =
  match t.handlers.(dst) with
  | Some f -> f ~src msg
  | None ->
    invalid_arg (Printf.sprintf "Network: node %d has no handler installed" dst)

let transmit t ~src ~dst ~bytes ~kind msg =
  let link = t.links.(src).(dst) in
  t.messages <- t.messages + 1;
  t.bytes <- t.bytes + bytes;
  Mc_util.Stats.Counters.incr t.kinds kind;
  let now = Engine.now t.engine in
  (* sender occupancy: consecutive sends from one node serialize *)
  let depart = Float.max now t.send_free.(src) +. t.send_cost in
  t.send_free.(src) <- depart;
  let lat =
    Latency.sample t.latency ~src ~dst +. (float_of_int bytes *. t.byte_cost)
  in
  Mc_util.Stats.Summary.add t.latencies lat;
  (* FIFO per channel: never deliver before a previously-sent message. *)
  let at = Float.max (depart +. lat) link.last_delivery in
  link.last_delivery <- at;
  (match t.obs with
  | Some o ->
    let module M = Mc_obs.Metrics in
    M.Counter.incr o.c_msgs;
    M.Counter.add o.c_bytes bytes;
    M.Histogram.observe o.h_latency (at -. depart);
    let kc =
      match Hashtbl.find_opt o.kind_counters kind with
      | Some c -> c
      | None ->
        let c =
          M.Registry.counter o.reg ~help:"messages transmitted by kind"
            ~labels:[ ("kind", kind) ] "mc_net_messages_total"
        in
        Hashtbl.add o.kind_counters kind c;
        c
    in
    M.Counter.incr kc
  | None -> ());
  (match t.observer with
  | Some f -> f ~src ~dst ~bytes ~kind ~seq:t.messages ~sent:depart ~recv:at msg
  | None -> ());
  Engine.schedule t.engine ~delay:(at -. now) (fun () -> deliver t ~src ~dst msg)

let send t ~src ~dst ?(bytes = 64) ?(kind = "msg") msg =
  check_node t src;
  check_node t dst;
  if src = dst then
    (* Local loopback: delivered as an immediate event, no network cost. *)
    Engine.schedule t.engine ~delay:0. (fun () -> deliver t ~src ~dst msg)
  else begin
    let link = t.links.(src).(dst) in
    if link.paused then link.held <- (bytes, kind, msg) :: link.held
    else transmit t ~src ~dst ~bytes ~kind msg
  end

let broadcast t ~src ?bytes ?kind msg =
  for dst = 0 to t.n - 1 do
    if dst <> src then send t ~src ~dst ?bytes ?kind msg
  done

let multicast t ~src ~dsts ?bytes ?kind msg =
  check_node t src;
  List.iter (fun dst -> if dst <> src then send t ~src ~dst ?bytes ?kind msg) dsts

let pause_link t ~src ~dst =
  check_node t src;
  check_node t dst;
  t.links.(src).(dst).paused <- true

let resume_link t ~src ~dst =
  check_node t src;
  check_node t dst;
  let link = t.links.(src).(dst) in
  link.paused <- false;
  let held = List.rev link.held in
  link.held <- [];
  List.iter (fun (bytes, kind, msg) -> transmit t ~src ~dst ~bytes ~kind msg) held

let messages_sent t = t.messages
let bytes_sent t = t.bytes
let messages_by_kind t = Mc_util.Stats.Counters.to_list t.kinds
let latency_summary t = t.latencies

let reset_stats t =
  t.messages <- 0;
  t.bytes <- 0;
  t.latencies <- Mc_util.Stats.Summary.create ();
  List.iter
    (fun (kind, k) -> Mc_util.Stats.Counters.add t.kinds kind (-k))
    (Mc_util.Stats.Counters.to_list t.kinds)
