(** Simulated message-passing network with FIFO point-to-point channels.

    This is the transport assumed by Section 6 of the paper ("We assume a
    message passing system with FIFO communication channels"). Channels
    preserve per-(src, dst) order even under randomized latencies; across
    different channels messages may arrive in any order.

    Messages are delivered by invoking the destination node's registered
    handler as a plain event (handlers may resume blocked fibers but must
    not themselves suspend). *)

type 'msg t

(** [create engine ~nodes ~latency ?send_cost ?byte_cost] builds a
    network of [nodes] endpoints (ids [0 .. nodes-1]).

    [send_cost] (default 0) is the per-message sender occupancy (the
    LogP "o" overhead): consecutive sends from one node serialize, so a
    broadcast to [k] peers occupies the sender for [k * send_cost].
    [byte_cost] (default 0) adds [bytes * byte_cost] to each message's
    transmission time, modelling finite bandwidth. *)
val create :
  Mc_sim.Engine.t ->
  nodes:int ->
  latency:Latency.t ->
  ?send_cost:float ->
  ?byte_cost:float ->
  unit ->
  'msg t

val nodes : 'msg t -> int
val engine : 'msg t -> Mc_sim.Engine.t

(** [set_handler t node f] installs the delivery handler for [node].
    [f ~src msg] runs once per message, in channel-FIFO order. *)
val set_handler : 'msg t -> int -> (src:int -> 'msg -> unit) -> unit

(** [send t ~src ~dst ?bytes ?kind msg] transmits a message. Self-sends
    ([src = dst]) are delivered immediately without counting as network
    traffic. [bytes] (default 64) and [kind] (default "msg") feed the
    statistics. *)
val send : 'msg t -> src:int -> dst:int -> ?bytes:int -> ?kind:string -> 'msg -> unit

(** [broadcast t ~src ?bytes ?kind msg] sends to every node except
    [src]. *)
val broadcast : 'msg t -> src:int -> ?bytes:int -> ?kind:string -> 'msg -> unit

(** [multicast t ~src ~dsts ?bytes ?kind msg] sends one copy of [msg] to
    each destination in [dsts], skipping [src]; the payload is shared
    across the fan-out (one allocation, one per-destination send). Used
    by the batched update fan-out. *)
val multicast :
  'msg t -> src:int -> dsts:int list -> ?bytes:int -> ?kind:string -> 'msg -> unit

(** [pause_link t ~src ~dst] holds messages on one directed link; they
    queue up and are released, still in FIFO order, by
    [resume_link]. Used by tests to force extreme reorderings between
    different channels. *)
val pause_link : 'msg t -> src:int -> dst:int -> unit

val resume_link : 'msg t -> src:int -> dst:int -> unit

(** Statistics, cumulative since creation. *)

val messages_sent : 'msg t -> int
val bytes_sent : 'msg t -> int

(** [messages_by_kind t] lists (kind, count) pairs sorted by kind. *)
val messages_by_kind : 'msg t -> (string * int) list

(** [latency_summary t] summarizes delivered-message latencies. *)
val latency_summary : 'msg t -> Mc_util.Stats.Summary.t

(** [reset_stats t] zeroes all counters (the topology and handlers are
    kept). *)
val reset_stats : 'msg t -> unit

(** [attach_metrics t reg] registers [mc_net_messages_total] (overall and
    per-[kind] labelled), [mc_net_bytes_total] and [mc_net_latency_us] in
    [reg] and updates them on every transmit. *)
val attach_metrics : 'msg t -> Mc_obs.Metrics.Registry.t -> unit

(** Per-transmit callback: fires once per non-local message with its
    departure ([sent]) and delivery ([recv]) sim times, a unique
    sequence number and the message itself — the hook the tracer uses
    to draw send→deliver arcs and to attribute shard-update hops to
    their (writer, shard, seq) stream. Loopback sends bypass it, as do
    messages held on a paused link (the callback fires when they are
    actually transmitted). *)
type 'msg observer =
  src:int -> dst:int -> bytes:int -> kind:string -> seq:int -> sent:float ->
  recv:float -> 'msg -> unit

val set_observer : 'msg t -> 'msg observer -> unit
