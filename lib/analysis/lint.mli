(** Structural lock- and synchronization-discipline lint rules.

    Each rule walks the per-process program order (invocation order) and
    reports violations as diagnostics with stable rule codes:

    - [L001] unlock without a matching lock held by the process (or an
      unlock in the wrong mode);
    - [L002] acquiring a lock the process already holds (self-deadlock on
      a real lock manager; the simulator's manager would stall too);
    - [L003] a lock still held when the process's history ends;
    - [L004] mismatched barrier episodes: participant sets that disagree
      with the episode's declared membership (or, for global barriers,
      processes that skip an episode others complete);
    - [L005] an await on a (location, value) no operation ever writes and
      that is not the initial value — the await can never fire;
    - [L006] a write-like access performed while the process holds only
      read-mode locks: a read lock cannot protect a write.

    The rules are purely structural: no happens-before or replay
    reasoning, so they run in O(n) and catch discipline bugs even in
    histories that happen to be consistent. *)

val lint : Mc_history.History.t -> Diag.t list
