module History = Mc_history.History
module Op = Mc_history.Op
module Pc = Mc_consistency.Program_class
module Pram = Mc_consistency.Pram
module Causal = Mc_consistency.Causal
module Group = Mc_consistency.Group
module Read_rule = Mc_consistency.Read_rule
module Lattice = Mc_consistency.Lattice

type advice = {
  read_id : int;
  declared : Op.label;
  declared_valid : bool;
  recommended : Op.label option;
  rec_model : Lattice.t option;
}

let label_to_string = function
  | Op.PRAM -> "PRAM"
  | Op.Causal -> "Causal"
  | Op.Group g ->
    Printf.sprintf "Group{%s}" (String.concat "," (List.map string_of_int g))

let strength = function Op.PRAM -> 0 | Op.Group _ -> 1 | Op.Causal -> 2

let valid_under h ~read_id = function
  | Op.PRAM -> Pram.verdict h ~read_id = Read_rule.Valid
  | Op.Causal -> Causal.verdict h ~read_id = Read_rule.Valid
  | Op.Group g -> (
    (* a malformed group (reader not a member) validates nothing *)
    try Group.verdict h ~read_id ~group:g = Read_rule.Valid
    with Invalid_argument _ -> false)

let advise ?shared h =
  let shared =
    match shared with Some f -> f | None -> Pc.default_shared h
  in
  let entry = Pc.is_entry_consistent ~shared h in
  let pramc = Pc.is_pram_consistent ~shared h in
  let advices = ref [] in
  Array.iter
    (fun (o : Op.t) ->
      match o.kind with
      | Op.Read { loc; label; value = _ } ->
        let read_id = o.id in
        let valid = valid_under h ~read_id in
        let declared_valid = valid label in
        let candidates =
          Op.PRAM
          :: (match label with Op.Group _ -> [ label ] | _ -> [])
          @ [ Op.Causal ]
        in
        let weakest = List.find_opt valid candidates in
        let recommended =
          if pramc && valid Op.PRAM then Some Op.PRAM (* Corollary 2 *)
          else if entry && shared loc && valid Op.Causal then
            Some Op.Causal (* Corollary 1 needs causal reads on [loc] *)
          else weakest
        in
        (* the weakest lattice point validating this read in this
           schedule — the same search as [weakest], extended downward
           through the session points below PRAM. Purely advisory: the
           SC corollaries never require going below [recommended]. *)
        let lvalid m =
          try Lattice.verdict h m ~read_id = Read_rule.Valid
          with Invalid_argument _ -> false
        in
        let rec_model =
          List.find_opt lvalid
            (Lattice.
               [
                 Session [];
                 Session [ Read_your_writes ];
                 Session [ Monotonic_reads ];
                 Session [ Read_your_writes; Monotonic_reads ];
                 PRAM;
               ]
            @ (match label with Op.Group g -> [ Lattice.Group g ] | _ -> [])
            @ [ Lattice.Causal ])
        in
        advices :=
          { read_id; declared = label; declared_valid; recommended; rec_model }
          :: !advices
      | _ -> ())
    (History.ops h);
  List.rev !advices

let diagnostics h advices =
  let ops = History.ops h in
  List.filter_map
    (fun { read_id; declared; declared_valid; recommended; rec_model } ->
      let o = ops.(read_id) in
      let loc = Option.map fst (Op.reads_value o) in
      let mk ~rule ~severity msg =
        Some (Diag.make ~rule ~severity ~op_id:read_id ~proc:o.Op.proc ?loc msg)
      in
      match (declared_valid, recommended) with
      | _, None ->
        mk ~rule:"A003" ~severity:Diag.Error
          (Printf.sprintf
             "read %d: no label on the spectrum validates the value read"
             read_id)
      | true, Some r when strength r < strength declared ->
        mk ~rule:"A001" ~severity:Diag.Info
          (Printf.sprintf
             "read %d is over-labelled: %s suffices instead of %s (weaker \
              delivery synchronization)"
             read_id (label_to_string r) (label_to_string declared))
      | true, Some r when strength r > strength declared ->
        mk ~rule:"A002" ~severity:Diag.Warning
          (Printf.sprintf
             "read %d validates under %s in this schedule, but the \
              entry-consistency guarantee (Corollary 1) requires %s"
             read_id (label_to_string declared) (label_to_string r))
      | true, Some _ -> (
        (* correctly labelled on the spectrum; still surface a lattice
           move when a session point below PRAM validates the read *)
        match rec_model with
        | Some (Lattice.Session _ as m) ->
          mk ~rule:"A004" ~severity:Diag.Info
            (Printf.sprintf
               "read %d: lattice move %s -> %s validates in this schedule \
                (session guarantees are schedule-dependent; the declared \
                label keeps the SC guarantee)"
               read_id (label_to_string declared) (Lattice.to_string m))
        | _ -> None)
      | false, Some r ->
        mk ~rule:"A002" ~severity:Diag.Warning
          (Printf.sprintf
             "read %d: declared label %s does not validate the value read; \
              %s does"
             read_id (label_to_string declared) (label_to_string r)))
    advices
