(** Label advisor: the weakest read label that keeps the SC guarantee.

    The consistency spectrum orders read labels PRAM < Group < Causal
    (Section 3.2): stronger labels cost more delivery synchronization at
    run time. For every memory read the advisor computes the label it
    {e should} carry:

    - when the history is PRAM-consistent (Corollary 2) and the read
      validates under the PRAM order, PRAM suffices;
    - when the history is entry-consistent (Corollary 1) and the location
      is shared, the read must be Causal — even if a PRAM verdict happens
      to pass in this schedule, the corollary's SC guarantee needs
      causality;
    - otherwise the weakest label whose read rule (Definitions 2–3)
      validates the value actually read, trying PRAM, then the declared
      group (if any), then Causal.

    Comparing the recommendation with the declared label yields:
    [A001] over-labelled (wasted causal-delivery cost), [A002]
    under-labelled (SC at risk), [A003] no label validates the read,
    [A004] a lattice move below PRAM (a session point) validates the
    read in this schedule. *)

type advice = {
  read_id : int;
  declared : Mc_history.Op.label;
  declared_valid : bool;  (** the declared label's read rule passes *)
  recommended : Mc_history.Op.label option;
      (** [None] when no label validates the read *)
  rec_model : Mc_consistency.Lattice.t option;
      (** the weakest lattice point validating the read in this
          schedule — the [recommended] search extended downward through
          the session points below PRAM. Purely advisory: the SC
          corollaries never require moving below [recommended]. *)
}

val label_to_string : Mc_history.Op.label -> string

(** Strength on the spectrum: PRAM = 0, Group = 1, Causal = 2. *)
val strength : Mc_history.Op.label -> int

(** [advise ?shared h] computes one advice per memory read. *)
val advise :
  ?shared:(Mc_history.Op.location -> bool) ->
  Mc_history.History.t ->
  advice list

(** Diagnostics: [A001]/[A002]/[A003] for reads whose declared label
    disagrees with the recommendation; a correctly-labelled read whose
    weakest lattice point is a session guarantee produces an [A004]
    info (a downward lattice move), otherwise nothing. *)
val diagnostics : Mc_history.History.t -> advice list -> Diag.t list
