(** Driver for the static-analysis passes over a recorded history.

    [analyze] runs the three cooperating analyses — the {!Race} detector
    (R001/R002), the {!Lint} discipline rules (L001–L006) and the
    {!Advisor} label recommendations (A001–A003) — and merges their
    diagnostics into one sorted stream with summary counts. *)

type report = {
  races : Race.report;
  advice : Advisor.advice list;
  diags : Diag.t list;  (** merged from all passes, sorted *)
  errors : int;
  warnings : int;
  infos : int;
}

val analyze :
  ?shared:(Mc_history.Op.location -> bool) ->
  Mc_history.History.t ->
  report

val has_errors : report -> bool

(** Human-readable report: one line per diagnostic plus a summary. *)
val pp : Format.formatter -> report -> unit

(** Machine-readable report (hand-rolled JSON, no dependencies). *)
val to_json : report -> string
