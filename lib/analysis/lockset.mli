(** Eraser-style lockset analysis (Savage et al.) over recorded histories.

    For every shared location the analysis tracks the classic Eraser
    state machine (virgin → exclusive → shared → shared-modified) and
    refines a {e candidate lockset}: the set of locks held — in a
    sufficient mode — at every access so far. A write access requires the
    lock in write mode; a read access accepts either mode.

    Two uses: (1) a location whose final candidate lockset is non-empty
    is fully protected, so every conflicting access pair is ordered by
    the lock order and the race detector can skip it without consulting
    happens-before; (2) a location that reaches shared-modified with an
    empty lockset is flagged even when the recorded schedule happened to
    order every access — the classic Eraser argument that lock-discipline
    violations are schedule-independent race risks. *)

type state = Virgin | Exclusive | Shared | Shared_modified

type info = {
  loc : Mc_history.Op.location;
  state : state;
  candidates : Mc_history.Op.lock_name list;
      (** locks held in a sufficient mode at every access, sorted *)
  accessors : int list;  (** processes that accessed the location, sorted *)
  first_unprotected : int option;
      (** id of the first access that emptied the lockset, if any *)
  awaited : bool;
      (** some await observes the location; awaits execute outside any
          lock discipline, so protection claims exclude them *)
}

val state_to_string : state -> string

(** [analyze ?shared h] computes one {!info} per location subject to the
    discipline. [shared] defaults to
    [Mc_consistency.Program_class.default_shared]. *)
val analyze :
  ?shared:(Mc_history.Op.location -> bool) ->
  Mc_history.History.t ->
  info list

(** [is_protected i] — every access held a common lock (and no await
    bypasses the discipline), so conflicting accesses are lock-ordered. *)
val is_protected : info -> bool

(** Diagnostics: rule [R002] for shared-modified locations with an empty
    candidate lockset. *)
val diagnostics : info list -> Diag.t list
