(** Race detector: ⇝-unrelated non-commuting operation pairs.

    This is exactly the first premise of Theorem 1
    ([Commute.theorem1_report]), recast as a compiler-style analysis:
    instead of closing the causality relation transitively (O(n³/word))
    and scanning all O(n²) pairs, the detector

    + derives happens-before vector clocks from the causality base
      relation ({!Hb}, O((n + e)·procs)),
    + buckets operations into conflict groups — by memory location, and
      by lock object for lock acquires — since [Commute.commute] only
      returns [false] inside such a group,
    + screens out every location whose Eraser candidate lockset is
      non-empty ({!Lockset}): its conflicting accesses are ordered by the
      lock order, so no pair needs checking,
    + enumerates the remaining conflicting pairs and keeps those the
      clocks prove concurrent.

    On a well-formed history the reported pairs are exactly
    [(Commute.theorem1_report h).non_commuting_pairs] (differential
    tested), at O(n·procs + Σ_g |g|²) cost over the small unprotected
    groups instead of O(n²) over everything. *)

type race = {
  first : int;  (** smaller op id *)
  second : int;
  subject : string;  (** the shared location or lock object in conflict *)
}

type report = {
  races : race list;  (** sorted by (first, second); duplicate-free *)
  locksets : Lockset.info list;
  hb_chains : int;  (** program-order chains used by the clocks *)
}

(** [detect ?shared ?hb h] runs the analysis. [shared] is passed to the
    lockset screen; the default treats locations accessed by two or more
    processes as shared. [hb] supplies precomputed happens-before clocks
    — e.g. an {!Hb.Online} builder fed during the run — instead of the
    offline {!Hb.of_history} pass. Raises [Invalid_argument] if
    causality is cyclic. *)
val detect :
  ?shared:(Mc_history.Op.location -> bool) ->
  ?hb:Hb.t ->
  Mc_history.History.t ->
  report

(** The race pairs as (smaller, larger) id pairs, sorted — directly
    comparable with [Commute.theorem1_report]. *)
val race_pairs : report -> (int * int) list

(** Diagnostics: rule [R001] per race, plus the lockset [R002]s. *)
val diagnostics : Mc_history.History.t -> report -> Diag.t list
