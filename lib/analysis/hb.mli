(** Vector-clock happens-before derived from the causality relation [⇝].

    [History.causality] materializes the full transitive closure of
    program order ∪ reads-from ∪ synchronization order — O(n³/word) time
    and O(n²) space. The race detector only ever asks "are these two
    operations ⇝-related?", which vector clocks answer in O(1) after an
    O((n + e)·c) construction pass, where [e] is the number of covering
    edges and [c] the number of program-order chains (= the process count
    for sequential processes).

    Because local histories are partial orders (a process's fibers may
    overlap non-blocking operations), plain per-process vector clocks are
    unsound. Each process's operations are first decomposed into {e
    chains} — maximal sequences totally ordered by program order — and
    clocks are indexed by chain. For the common sequential case this
    degenerates to one chain per process.

    Barrier episodes are modelled with two virtual nodes (one joining
    every participant's pre-barrier state, one fanning the joint state
    back out), so an episode costs O(members) edges instead of the
    quadratic edge set of [History.barrier_order].

    [of_history] and the queries agree exactly with [History.causality]
    on every pair of operations. The history must be well formed enough
    for causality to be acyclic; otherwise [of_history] raises
    [Invalid_argument]. *)

type t

val of_history : Mc_history.History.t -> t

(** [hb t i j] is true when operation [i] strictly precedes [j] in the
    causality relation. O(1). *)
val hb : t -> int -> int -> bool

(** [related t i j] is [hb t i j || hb t j i]. *)
val related : t -> int -> int -> bool

(** [concurrent t i j] — distinct and unrelated in either direction. *)
val concurrent : t -> int -> int -> bool

(** Number of program-order chains (diagnostic; equals the process count
    when every process is sequential). *)
val chains : t -> int

(** {2 Online construction}

    Builds the same clock structure incrementally from recorder events
    through {!Mc_history.Stream}, so happens-before is available without
    materializing the history or constructing the covering offline. The
    builder retains every operation's clock (hb answers arbitrary pairs
    after the run), so memory is O(n · chains) like [of_history]; what
    it saves is the materialized operation array and the offline
    covering passes. *)
module Online : sig
  type builder

  val create : procs:int -> builder

  (** Adapt the builder for [Recorder.subscribe]. *)
  val sink : builder -> Mc_history.Sink.t

  (** The underlying engine (for statistics). *)
  val engine : builder -> Mc_history.Stream.t

  (** [force b] extracts the finished clocks. Raises [Invalid_argument]
      before the stream is closed or when op ids are not contiguous. *)
  val force : builder -> t

  (** [of_history h] replays [h] through a fresh builder; agrees with
      {!of_history} on every query (differential tested). *)
  val of_history : Mc_history.History.t -> t
end
