module History = Mc_history.History
module Op = Mc_history.Op

type mode = R | W

let lint h =
  let ops = History.ops h in
  let procs = History.procs h in
  let diags = ref [] in
  let add d = diags := d :: !diags in
  let by_proc = Array.make procs [] in
  Array.iter (fun (o : Op.t) -> by_proc.(o.proc) <- o :: by_proc.(o.proc)) ops;
  let by_proc =
    Array.map
      (fun l ->
        List.sort (fun (a : Op.t) (b : Op.t) -> compare a.inv_seq b.inv_seq) l)
      by_proc
  in
  (* ---- per-process lock-discipline scan: L001, L002, L003, L006 ---- *)
  Array.iteri
    (fun p ops_of_p ->
      (* lock -> stack of (mode, acquiring op id) *)
      let held : (Op.lock_name, (mode * int) list) Hashtbl.t =
        Hashtbl.create 4
      in
      let stack l = Option.value ~default:[] (Hashtbl.find_opt held l) in
      let acquire (o : Op.t) l m =
        (if stack l <> [] then
           add
             (Diag.make ~rule:"L002" ~severity:Diag.Warning ~op_id:o.id ~proc:p
                ~loc:l
                (Printf.sprintf
                   "process %d acquires lock %s while already holding it" p l)));
        Hashtbl.replace held l ((m, o.id) :: stack l)
      in
      let release (o : Op.t) l m =
        match stack l with
        | [] ->
          add
            (Diag.make ~rule:"L001" ~severity:Diag.Error ~op_id:o.id ~proc:p
               ~loc:l
               (Printf.sprintf "process %d unlocks %s without holding it" p l))
        | (m', _) :: rest ->
          if m' <> m then
            add
              (Diag.make ~rule:"L001" ~severity:Diag.Error ~op_id:o.id ~proc:p
                 ~loc:l
                 (Printf.sprintf
                    "process %d releases %s with a %s unlock but holds it in \
                     %s mode"
                    p l
                    (if m = W then "write" else "read")
                    (if m' = W then "write" else "read")));
          if rest = [] then Hashtbl.remove held l
          else Hashtbl.replace held l rest
      in
      List.iter
        (fun (o : Op.t) ->
          match o.kind with
          | Op.Read_lock l -> acquire o l R
          | Op.Write_lock l -> acquire o l W
          | Op.Read_unlock l -> release o l R
          | Op.Write_unlock l -> release o l W
          | _ ->
            if Op.is_write_like o then begin
              let held_now =
                Hashtbl.fold (fun l s acc -> (l, List.hd s) :: acc) held []
              in
              let only_read =
                held_now <> []
                && List.for_all (fun (_, (m, _)) -> m = R) held_now
              in
              if only_read then
                let locks =
                  String.concat "," (List.map fst held_now)
                in
                add
                  (Diag.make ~rule:"L006" ~severity:Diag.Error ~op_id:o.id
                     ~proc:p
                     ?loc:
                       (match Op.writes_value o with
                       | Some (loc, _) -> Some loc
                       | None -> None)
                     (Printf.sprintf
                        "write by process %d under read lock(s) %s only: a \
                         read lock cannot protect a write"
                        p locks))
            end)
        ops_of_p;
      Hashtbl.iter
        (fun l s ->
          List.iter
            (fun (_, acq_id) ->
              add
                (Diag.make ~rule:"L003" ~severity:Diag.Warning ~op_id:acq_id
                   ~proc:p ~loc:l
                   (Printf.sprintf
                      "lock %s acquired by process %d (op %d) is still held \
                       when its history ends"
                      l p acq_id)))
            s)
        held)
    by_proc;
  (* ---- barrier episode matching: L004 ---- *)
  let episodes : (int list * int, (int * int) list) Hashtbl.t =
    Hashtbl.create 8
  in
  Array.iter
    (fun (o : Op.t) ->
      let key =
        match o.kind with
        | Op.Barrier k -> Some ([], k)
        | Op.Barrier_group { episode; members } ->
          Some (List.sort_uniq compare members, episode)
        | _ -> None
      in
      match key with
      | Some key ->
        Hashtbl.replace episodes key
          ((o.proc, o.id)
          :: Option.value ~default:[] (Hashtbl.find_opt episodes key))
      | None -> ())
    ops;
  Hashtbl.iter
    (fun (members, episode) participants ->
      let expected =
        match members with
        | [] -> List.init procs Fun.id
        | ms -> ms
      in
      let name =
        match members with
        | [] -> Printf.sprintf "barrier episode %d" episode
        | ms ->
          Printf.sprintf "group barrier episode %d {%s}" episode
            (String.concat "," (List.map string_of_int ms))
      in
      List.iter
        (fun m ->
          match List.filter (fun (p, _) -> p = m) participants with
          | [] ->
            add
              (Diag.make ~rule:"L004" ~severity:Diag.Error ~proc:m
                 (Printf.sprintf "process %d never reaches %s" m name))
          | [ _ ] -> ()
          | (_, id) :: _ as many ->
            add
              (Diag.make ~rule:"L004" ~severity:Diag.Error ~op_id:id ~proc:m
                 (Printf.sprintf "process %d executes %s %d times" m name
                    (List.length many))))
        expected;
      List.iter
        (fun (p, id) ->
          if not (List.mem p expected) then
            add
              (Diag.make ~rule:"L004" ~severity:Diag.Error ~op_id:id ~proc:p
                 (Printf.sprintf "process %d participates in %s without being \
                                  a member"
                    p name)))
        participants)
    episodes;
  (* ---- awaits that can never fire: L005 ---- *)
  Array.iter
    (fun (o : Op.t) ->
      match o.kind with
      | Op.Await { loc; value } ->
        if value <> History.initial_value h loc && History.writers_of h loc value = []
        then
          add
            (Diag.make ~rule:"L005" ~severity:Diag.Warning ~op_id:o.id
               ~proc:o.proc ~loc
               (Printf.sprintf
                  "await on %s=%d can never fire: no operation writes that \
                   value"
                  loc value))
      | _ -> ())
    ops;
  List.sort Diag.compare !diags
