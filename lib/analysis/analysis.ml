type report = {
  races : Race.report;
  advice : Advisor.advice list;
  diags : Diag.t list;
  errors : int;
  warnings : int;
  infos : int;
}

let analyze ?shared h =
  let races = Race.detect ?shared h in
  let advice = Advisor.advise ?shared h in
  let diags =
    List.sort Diag.compare
      (Race.diagnostics h races @ Lint.lint h @ Advisor.diagnostics h advice)
  in
  let count s = List.length (List.filter (fun d -> d.Diag.severity = s) diags) in
  {
    races;
    advice;
    diags;
    errors = count Diag.Error;
    warnings = count Diag.Warning;
    infos = count Diag.Info;
  }

let has_errors r = r.errors > 0

let pp ppf r =
  List.iter (fun d -> Format.fprintf ppf "%a@." Diag.pp d) r.diags;
  Format.fprintf ppf "%d error(s), %d warning(s), %d info(s); %d race pair(s)@."
    r.errors r.warnings r.infos
    (List.length r.races.Race.races)

let to_json r =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "{\"diagnostics\":[";
  List.iteri
    (fun i d ->
      if i > 0 then Buffer.add_char buf ',';
      Buffer.add_string buf (Diag.to_json d))
    r.diags;
  Buffer.add_string buf
    (Printf.sprintf
       "],\"summary\":{\"errors\":%d,\"warnings\":%d,\"infos\":%d,\"races\":%d,\"hb_chains\":%d}}"
       r.errors r.warnings r.infos
       (List.length r.races.Race.races)
       r.races.Race.hb_chains);
  Buffer.contents buf
