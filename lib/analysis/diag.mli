(** The unified diagnostic model of the analysis subsystem.

    Every analysis (race detector, discipline linter, label advisor)
    reports its findings as diagnostics carrying a stable rule code, a
    severity, and the operation / process / location they anchor to, so
    the driver can merge, sort, filter and render them uniformly.

    Rule-code namespaces: [R0xx] race detection, [L0xx] lock and
    synchronization discipline, [A0xx] read-label advice, [S0xx] static
    (symbolic, execution-free) analysis. The table of codes lives in
    {!Rules} and is documented in DESIGN.md. *)

type severity = Error | Warning | Info

type t = {
  rule : string;  (** stable rule code, e.g. ["L001"] *)
  severity : severity;
  op_id : int option;  (** primary operation the diagnostic anchors to *)
  related_op : int option;  (** second operation of a pair, if any *)
  proc : int option;
  loc : string option;  (** shared-memory location or lock name *)
  site : string option;
      (** static program point (IR node path), for diagnostics produced
          without an execution; dynamic analyses leave it [None] *)
  message : string;
}

val make :
  rule:string ->
  severity:severity ->
  ?op_id:int ->
  ?related_op:int ->
  ?proc:int ->
  ?loc:string ->
  ?site:string ->
  string ->
  t

(** Severity comparison: [Error] orders before [Warning] before [Info]. *)
val compare_severity : severity -> severity -> int

(** Deterministic report order: severity, then rule code, then anchor op,
    then message. Duplicates compare equal. *)
val compare : t -> t -> int

val severity_to_string : severity -> string

(** [pp] renders one diagnostic on one line:
    [error R001 op#3<->op#7 p1 [x]: message]. *)
val pp : Format.formatter -> t -> unit

(** [to_json d] is a compact JSON object (hand-rolled; no dependencies). *)
val to_json : t -> string

(** Rule-code table: code, default severity, one-line description. *)
module Rules : sig
  val table : (string * severity * string) list

  val description : string -> string option
end
