module History = Mc_history.History
module Op = Mc_history.Op

type t = {
  chains : int;
  chain_of : int array; (* op id -> chain index *)
  rank_of : int array; (* op id -> 1-based rank within its chain *)
  clocks : int array array;
      (* node -> clock; entry c = highest rank of a chain-c operation that
         happens-before-or-equals the node *)
}

(* Barrier episode key, matching History.compute_barrier_order: a plain
   barrier spans all processes ([]), a group barrier its member set. *)
let episode_key (o : Op.t) =
  match o.kind with
  | Op.Barrier k -> Some ([], k)
  | Op.Barrier_group { episode; members } ->
    Some (List.sort_uniq compare members, episode)
  | _ -> None

(* Lock epochs in manager grant order, as in History.epochs_of_lock: each
   write critical section is its own epoch, maximal runs of read
   lock/unlock operations form shared epochs. *)
type epoch = Write_epoch of int list | Read_epoch of int list

let epochs_of_lock (ops : Op.t array) sorted_ids =
  let finish current acc =
    match current with [] -> acc | l -> Read_epoch (List.rev l) :: acc
  in
  let rec walk acc current = function
    | [] -> List.rev (finish current acc)
    | id :: rest -> (
      let o = ops.(id) in
      match o.Op.kind with
      | Op.Write_lock _ -> (
        let acc = finish current acc in
        match rest with
        | u :: rest'
          when ops.(u).Op.proc = o.Op.proc
               && (match ops.(u).Op.kind with
                  | Op.Write_unlock _ -> true
                  | _ -> false) ->
          walk (Write_epoch [ id; u ] :: acc) [] rest'
        | _ -> walk (Write_epoch [ id ] :: acc) [] rest)
      | Op.Read_lock _ | Op.Read_unlock _ -> walk acc (id :: current) rest
      | _ -> walk acc current rest)
  in
  walk [] [] sorted_ids

let epoch_ops = function Write_epoch l -> l | Read_epoch l -> l

let of_history h =
  let n = History.length h in
  let ops = History.ops h in
  let procs = History.procs h in
  (* ---- program-order chain decomposition, per process ---- *)
  let chain_of = Array.make n (-1) in
  let rank_of = Array.make n 0 in
  let by_proc = Array.make procs [] in
  Array.iter (fun (o : Op.t) -> by_proc.(o.proc) <- o.id :: by_proc.(o.proc)) ops;
  let by_proc =
    Array.map
      (fun ids ->
        List.sort
          (fun a b -> compare ops.(a).Op.inv_seq ops.(b).Op.inv_seq)
          ids)
      by_proc
  in
  let n_chains = ref 0 in
  Array.iter
    (fun ids ->
      (* greedy first-fit: an op joins the first chain whose last response
         precedes its invocation, so chain members are totally ordered *)
      let chains = ref [] in
      List.iter
        (fun id ->
          let o = ops.(id) in
          match
            List.find_opt (fun (_, last, _) -> !last < o.Op.inv_seq) !chains
          with
          | Some (c, last, count) ->
            last := o.Op.resp_seq;
            incr count;
            chain_of.(id) <- c;
            rank_of.(id) <- !count
          | None ->
            let c = !n_chains in
            incr n_chains;
            chains := !chains @ [ (c, ref o.Op.resp_seq, ref 1) ];
            chain_of.(id) <- c;
            rank_of.(id) <- 1)
        ids)
    by_proc;
  let chains = max 1 !n_chains in
  (* ---- barrier episodes: two virtual nodes each ---- *)
  let ep_index = Hashtbl.create 8 in
  let ep_of_op = Hashtbl.create 8 in
  let n_eps = ref 0 in
  Array.iter
    (fun (o : Op.t) ->
      match episode_key o with
      | Some key ->
        let e =
          match Hashtbl.find_opt ep_index key with
          | Some e -> e
          | None ->
            let e = !n_eps in
            incr n_eps;
            Hashtbl.add ep_index key e;
            e
        in
        Hashtbl.add ep_of_op o.id e
      | None -> ())
    ops;
  let nodes = n + (2 * !n_eps) in
  let e_in e = n + (2 * e) in
  let e_out e = n + (2 * e) + 1 in
  let succ = Array.make nodes [] in
  let indeg = Array.make nodes 0 in
  let add_edge a b =
    succ.(a) <- b :: succ.(a);
    indeg.(b) <- indeg.(b) + 1
  in
  (* ---- program order: per-process event sweep ---- *)
  Array.iter
    (fun ids ->
      let events =
        List.concat_map
          (fun id ->
            [ (ops.(id).Op.inv_seq, true, id); (ops.(id).Op.resp_seq, false, id) ])
          ids
      in
      let events =
        List.sort (fun (a, _, _) (b, _, _) -> compare a b) events
      in
      (* chain id -> most recently completed op of that chain *)
      let last_done : (int, int) Hashtbl.t = Hashtbl.create 4 in
      List.iter
        (fun (_, is_inv, id) ->
          if is_inv then begin
            (* covering edges: the last completed op of every chain of
               this process dominates all earlier completed ops *)
            Hashtbl.iter
              (fun _c src ->
                add_edge src id;
                (* an op after a barrier is after the whole episode *)
                (match Hashtbl.find_opt ep_of_op src with
                | Some e -> add_edge (e_out e) id
                | None -> ());
                match Hashtbl.find_opt ep_of_op id with
                | Some e -> add_edge src (e_in e)
                | None -> ())
              last_done;
            match Hashtbl.find_opt ep_of_op id with
            | Some e -> add_edge (e_in e) id
            | None -> ()
          end
          else begin
            Hashtbl.replace last_done chain_of.(id) id;
            match Hashtbl.find_opt ep_of_op id with
            | Some e -> add_edge id (e_out e)
            | None -> ()
          end)
        events)
    by_proc;
  (* ---- reads-from (also covers the await order) ---- *)
  Array.iter
    (fun (o : Op.t) ->
      match Op.reads_value o with
      | Some (loc, v) ->
        List.iter
          (fun w -> if w <> o.id then add_edge w o.id)
          (History.writers_of h loc v)
      | None -> ())
    ops;
  (* ---- lock order: chain adjacent epochs ---- *)
  let by_lock = Hashtbl.create 8 in
  Array.iter
    (fun (o : Op.t) ->
      match Op.lock_of o with
      | Some l ->
        let prev = Option.value ~default:[] (Hashtbl.find_opt by_lock l) in
        Hashtbl.replace by_lock l (o.id :: prev)
      | None -> ())
    ops;
  Hashtbl.iter
    (fun _lock ids ->
      let sorted =
        List.sort
          (fun a b -> compare ops.(a).Op.sync_seq ops.(b).Op.sync_seq)
          ids
      in
      let epochs = Array.of_list (epochs_of_lock ops sorted) in
      for e = 0 to Array.length epochs - 2 do
        (* adjacent epochs never are both read epochs (read runs are
           maximal), so this all-pairs step is linear overall *)
        List.iter
          (fun a ->
            List.iter (fun b -> add_edge a b) (epoch_ops epochs.(e + 1)))
          (epoch_ops epochs.(e))
      done;
      Array.iter
        (function
          | Write_epoch [ a; b ] -> add_edge a b
          | Write_epoch _ -> ()
          | Read_epoch l ->
            let open_locks = Hashtbl.create 4 in
            List.iter
              (fun id ->
                match ops.(id).Op.kind with
                | Op.Read_lock _ -> Hashtbl.replace open_locks ops.(id).Op.proc id
                | Op.Read_unlock _ -> (
                  match Hashtbl.find_opt open_locks ops.(id).Op.proc with
                  | Some lid ->
                    add_edge lid id;
                    Hashtbl.remove open_locks ops.(id).Op.proc
                  | None -> ())
                | _ -> ())
              l)
        epochs)
    by_lock;
  (* ---- Kahn propagation of clocks ---- *)
  let clocks = Array.init nodes (fun _ -> Array.make chains 0) in
  let queue = Queue.create () in
  for v = 0 to nodes - 1 do
    if indeg.(v) = 0 then Queue.add v queue
  done;
  let processed = ref 0 in
  while not (Queue.is_empty queue) do
    let v = Queue.pop queue in
    incr processed;
    if v < n then begin
      let c = chain_of.(v) in
      if clocks.(v).(c) < rank_of.(v) then clocks.(v).(c) <- rank_of.(v)
    end;
    List.iter
      (fun w ->
        let cv = clocks.(v) and cw = clocks.(w) in
        for k = 0 to chains - 1 do
          if cw.(k) < cv.(k) then cw.(k) <- cv.(k)
        done;
        indeg.(w) <- indeg.(w) - 1;
        if indeg.(w) = 0 then Queue.add w queue)
      succ.(v)
  done;
  if !processed <> nodes then
    invalid_arg "Hb.of_history: cyclic causality relation";
  { chains; chain_of; rank_of; clocks }

let hb t i j = i <> j && t.clocks.(j).(t.chain_of.(i)) >= t.rank_of.(i)
let related t i j = hb t i j || hb t j i
let concurrent t i j = i <> j && not (related t i j)
let chains t = t.chains

(* ------------------------------------------------------------------ *)
(* Online construction                                                 *)
(* ------------------------------------------------------------------ *)

(* The incremental engine already finalizes operations in an order
   topological for the covering graph and reports each one's chain
   position and covering in-edges, so the clock fold degenerates to a
   single join per operation. Chain ids may differ from [of_history]
   (the engine numbers chains in completion order across processes, the
   offline pass per process), but the relation queries are identical. *)

module Stream = Mc_history.Stream

module Online = struct
  type builder = {
    mutable engine : Stream.t option;
    tbl : (int, int * int * int array) Hashtbl.t; (* id -> chain, rank1, clock *)
    mutable ch : int; (* chain count high-water *)
    mutable n : int; (* ops finalized *)
    mutable done_ : bool;
  }

  let clk_get a c = if c < Array.length a then a.(c) else 0

  let the_engine b =
    match b.engine with
    | Some e -> e
    | None -> assert false

  let create ~procs =
    let b =
      {
        engine = None;
        tbl = Hashtbl.create 256;
        ch = 0;
        n = 0;
        done_ = false;
      }
    in
    let finalize (info : Stream.info) =
      let op = info.Stream.op in
      if info.Stream.chain + 1 > b.ch then b.ch <- info.Stream.chain + 1;
      let clk = Array.make b.ch 0 in
      List.iter
        (fun e ->
          let src =
            match e with Stream.U s | Stream.S s | Stream.RF s -> s
          in
          match Hashtbl.find_opt b.tbl src with
          | Some (_, _, sc) ->
            for c = 0 to min (Array.length clk) (Array.length sc) - 1 do
              if sc.(c) > clk.(c) then clk.(c) <- sc.(c)
            done
          | None ->
            invalid_arg
              (Printf.sprintf "Hb.Online: source op %d not retained" src))
        info.Stream.in_edges;
      let r1 = info.Stream.rank + 1 in
      if r1 > clk.(info.Stream.chain) then clk.(info.Stream.chain) <- r1;
      Hashtbl.replace b.tbl op.Op.id (info.Stream.chain, r1, clk);
      b.n <- b.n + 1
    in
    let cb =
      {
        Stream.on_finalize = finalize;
        (* clocks must outlive engine residence: hb answers arbitrary
           pairs after the run, so retirement is ignored here *)
        on_retire = (fun _ -> ());
        on_dead_value = (fun ~loc:_ ~value:_ -> ());
        on_end = (fun () -> b.done_ <- true);
      }
    in
    b.engine <- Some (Stream.create ~procs cb);
    b

  let sink b = Stream.sink (the_engine b)
  let engine b = the_engine b

  let force b =
    if not b.done_ then
      invalid_arg "Hb.Online.force: stream not closed yet";
    let n = b.n in
    let chains = max 1 b.ch in
    let chain_of = Array.make n (-1) in
    let rank_of = Array.make n 0 in
    let clocks = Array.init n (fun _ -> [||]) in
    Hashtbl.iter
      (fun id (c, r1, clk) ->
        if id < 0 || id >= n then
          invalid_arg "Hb.Online.force: non-contiguous op ids";
        chain_of.(id) <- c;
        rank_of.(id) <- r1;
        let full =
          if Array.length clk = chains then clk
          else Array.init chains (clk_get clk)
        in
        clocks.(id) <- full)
      b.tbl;
    { chains; chain_of; rank_of; clocks }

  let of_history h =
    let b = create ~procs:(Mc_history.History.procs h) in
    Stream.replay (the_engine b) h;
    force b
end
