module History = Mc_history.History
module Op = Mc_history.Op
module Commute = Mc_consistency.Commute

type race = { first : int; second : int; subject : string }

type report = {
  races : race list;
  locksets : Lockset.info list;
  hb_chains : int;
}

let detect ?shared ?hb h =
  let hb = match hb with Some hb -> hb | None -> Hb.of_history h in
  let locksets = Lockset.analyze ?shared h in
  let ops = History.ops h in
  let procs = History.procs h in
  (* The lockset screen argues "every conflicting pair on a protected
     location is lock-ordered"; that argument needs each process's
     operations to be totally ordered (one chain per process). With
     overlapping fibers, fall back to checking every pair. *)
  let can_screen = Hb.chains hb = procs in
  let protected_loc =
    let tbl = Hashtbl.create 16 in
    List.iter
      (fun (i : Lockset.info) ->
        if Lockset.is_protected i then Hashtbl.replace tbl i.Lockset.loc ())
      locksets;
    fun loc -> can_screen && Hashtbl.mem tbl loc
  in
  (* conflict groups: only operations touching the same location — or
     acquiring the same lock — can fail to commute *)
  let mutators : (Op.location, int list) Hashtbl.t = Hashtbl.create 16 in
  let observers : (Op.location, int list) Hashtbl.t = Hashtbl.create 16 in
  let acquires : (Op.lock_name, int list) Hashtbl.t = Hashtbl.create 8 in
  let push tbl key id =
    Hashtbl.replace tbl key (id :: Option.value ~default:[] (Hashtbl.find_opt tbl key))
  in
  Array.iter
    (fun (o : Op.t) ->
      match Commute.footprint o with
      | Some { Commute.mutates = Some loc; _ } -> push mutators loc o.id
      | Some { Commute.observes = Some loc; _ } -> push observers loc o.id
      | Some _ -> ()
      | None -> (
        match o.kind with
        | Op.Read_lock l | Op.Write_lock l -> push acquires l o.id
        | _ -> ()))
    ops;
  let races = ref [] in
  let consider subject i j =
    if
      (not (Commute.commute ops.(i) ops.(j)))
      && not (Hb.related hb i j)
    then
      races :=
        { first = min i j; second = max i j; subject } :: !races
  in
  Hashtbl.iter
    (fun loc ms ->
      if not (protected_loc loc) then begin
        let os = Option.value ~default:[] (Hashtbl.find_opt observers loc) in
        (* at least one mutator per conflicting pair; observer pairs and
           commuting decrement pairs are rejected by Commute.commute *)
        let rec mutator_pairs = function
          | [] -> ()
          | m :: rest ->
            List.iter (fun m' -> consider loc m m') rest;
            List.iter (fun o -> consider loc m o) os;
            mutator_pairs rest
        in
        mutator_pairs ms
      end)
    mutators;
  Hashtbl.iter
    (fun lock ids ->
      let rec pairs = function
        | [] -> ()
        | a :: rest ->
          List.iter (fun b -> consider lock a b) rest;
          pairs rest
      in
      pairs ids)
    acquires;
  let races =
    List.sort_uniq
      (fun a b -> compare (a.first, a.second) (b.first, b.second))
      !races
  in
  { races; locksets; hb_chains = Hb.chains hb }

let race_pairs r = List.map (fun { first; second; _ } -> (first, second)) r.races

let diagnostics h r =
  let ops = History.ops h in
  let race_diags =
    List.map
      (fun { first; second; subject } ->
        Diag.make ~rule:"R001" ~severity:Diag.Error ~op_id:first
          ~related_op:second ~proc:ops.(first).Op.proc ~loc:subject
          (Format.asprintf
             "%a and %a are causally unrelated and do not commute"
             Op.pp ops.(first) Op.pp ops.(second)))
      r.races
  in
  race_diags @ Lockset.diagnostics r.locksets
