module History = Mc_history.History
module Op = Mc_history.Op
module Program_class = Mc_consistency.Program_class

type state = Virgin | Exclusive | Shared | Shared_modified

type info = {
  loc : Op.location;
  state : state;
  candidates : Op.lock_name list;
  accessors : int list;
  first_unprotected : int option;
  awaited : bool;
}

let state_to_string = function
  | Virgin -> "virgin"
  | Exclusive -> "exclusive"
  | Shared -> "shared"
  | Shared_modified -> "shared-modified"

type cell = {
  mutable st : state;
  mutable owner : int;
  mutable cands : Op.lock_name list option; (* None = universe *)
  mutable accs : int list;
  mutable first_empty : int option;
  mutable has_await : bool;
}

let analyze ?shared h =
  let shared =
    match shared with Some f -> f | None -> Program_class.default_shared h
  in
  let cells : (Op.location, cell) Hashtbl.t = Hashtbl.create 16 in
  let cell loc =
    match Hashtbl.find_opt cells loc with
    | Some c -> c
    | None ->
      let c =
        {
          st = Virgin;
          owner = -1;
          cands = None;
          accs = [];
          first_empty = None;
          has_await = false;
        }
      in
      Hashtbl.add cells loc c;
      c
  in
  (* accesses in per-process invocation order, with the held locksets *)
  List.iter
    (fun ((o : Op.t), loc, held) ->
      if shared loc then begin
        let c = cell loc in
        let is_write = Op.is_write_like o in
        (* Eraser state machine *)
        (c.st <-
           (match c.st with
           | Virgin -> Exclusive
           | Exclusive when o.proc = c.owner -> Exclusive
           | Exclusive -> if is_write then Shared_modified else Shared
           | Shared -> if is_write then Shared_modified else Shared
           | Shared_modified -> Shared_modified));
        if c.owner = -1 then c.owner <- o.proc;
        if not (List.mem o.proc c.accs) then c.accs <- o.proc :: c.accs;
        (* lockset refinement: write accesses only count write-mode locks *)
        let sufficient =
          List.filter_map
            (fun (l, mode) ->
              match mode, is_write with
              | Program_class.Mode_write, _ -> Some l
              | Program_class.Mode_read, false -> Some l
              | Program_class.Mode_read, true -> None)
            held
        in
        let refined =
          match c.cands with
          | None -> sufficient
          | Some prev -> List.filter (fun l -> List.mem l sufficient) prev
        in
        if refined = [] && c.first_empty = None then c.first_empty <- Some o.id;
        c.cands <- Some refined
      end)
    (Program_class.accesses_with_held_locks h);
  (* awaits bypass the lock discipline entirely *)
  Array.iter
    (fun (o : Op.t) ->
      match o.kind with
      | Op.Await { loc; _ } when shared loc -> (cell loc).has_await <- true
      | _ -> ())
    (History.ops h);
  Hashtbl.fold
    (fun loc c acc ->
      {
        loc;
        state = c.st;
        candidates = List.sort compare (Option.value ~default:[] c.cands);
        accessors = List.sort compare c.accs;
        first_unprotected = c.first_empty;
        awaited = c.has_await;
      }
      :: acc)
    cells []
  |> List.sort (fun a b -> compare a.loc b.loc)

let is_protected i = i.candidates <> [] && not i.awaited

let diagnostics infos =
  List.filter_map
    (fun i ->
      if i.state = Shared_modified && i.candidates = [] then
        Some
          (Diag.make ~rule:"R002" ~severity:Diag.Warning
             ?op_id:i.first_unprotected ~loc:i.loc
             (Printf.sprintf
                "location %s is written by processes {%s} with an empty \
                 candidate lockset (Eraser discipline)"
                i.loc
                (String.concat "," (List.map string_of_int i.accessors))))
      else None)
    infos
