type severity = Error | Warning | Info

type t = {
  rule : string;
  severity : severity;
  op_id : int option;
  related_op : int option;
  proc : int option;
  loc : string option;
  site : string option;
  message : string;
}

let make ~rule ~severity ?op_id ?related_op ?proc ?loc ?site message =
  { rule; severity; op_id; related_op; proc; loc; site; message }

let severity_rank = function Error -> 0 | Warning -> 1 | Info -> 2
let compare_severity a b = Stdlib.compare (severity_rank a) (severity_rank b)

let compare a b =
  let c = compare_severity a.severity b.severity in
  if c <> 0 then c
  else
    let c = Stdlib.compare a.rule b.rule in
    if c <> 0 then c
    else
      let anchor d = Option.value ~default:max_int d.op_id in
      let c = Stdlib.compare (anchor a) (anchor b) in
      if c <> 0 then c else Stdlib.compare a b

let severity_to_string = function
  | Error -> "error"
  | Warning -> "warning"
  | Info -> "info"

let pp fmt d =
  Format.fprintf fmt "%s %s" (severity_to_string d.severity) d.rule;
  (match d.op_id, d.related_op with
  | Some a, Some b -> Format.fprintf fmt " op#%d<->op#%d" a b
  | Some a, None -> Format.fprintf fmt " op#%d" a
  | None, _ -> ());
  (match d.proc with Some p -> Format.fprintf fmt " p%d" p | None -> ());
  (match d.loc with Some l -> Format.fprintf fmt " [%s]" l | None -> ());
  (match d.site with Some s -> Format.fprintf fmt " @%s" s | None -> ());
  Format.fprintf fmt ": %s" d.message

(* Minimal JSON string escaping: the quote, the backslash and control
   characters — locations and messages are plain ASCII in practice. *)
let json_escape s =
  let b = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let to_json d =
  let fields =
    [ Some (Printf.sprintf "\"rule\":\"%s\"" (json_escape d.rule));
      Some
        (Printf.sprintf "\"severity\":\"%s\""
           (severity_to_string d.severity));
      Option.map (Printf.sprintf "\"op\":%d") d.op_id;
      Option.map (Printf.sprintf "\"related_op\":%d") d.related_op;
      Option.map (Printf.sprintf "\"proc\":%d") d.proc;
      Option.map (fun l -> Printf.sprintf "\"loc\":\"%s\"" (json_escape l)) d.loc;
      Option.map
        (fun s -> Printf.sprintf "\"site\":\"%s\"" (json_escape s))
        d.site;
      Some (Printf.sprintf "\"message\":\"%s\"" (json_escape d.message));
    ]
  in
  "{" ^ String.concat "," (List.filter_map Fun.id fields) ^ "}"

module Rules = struct
  let table =
    [ ("R001", Error, "data race: causally-unrelated non-commuting operation pair");
      ("R002", Warning, "shared location written by several processes with an empty candidate lockset");
      ("L001", Error, "unlock without a matching lock held by the process");
      ("L002", Warning, "lock acquired while already held by the same process");
      ("L003", Warning, "lock still held when the process's history ends");
      ("L004", Error, "barrier episode participant sets disagree across processes");
      ("L005", Warning, "await on a value no operation ever writes");
      ("L006", Error, "write performed under a read lock only");
      ("A001", Info, "read is over-labelled: a weaker label preserves the SC guarantee");
      ("A002", Warning, "read is under-labelled: its label does not validate the value read");
      ("A003", Error, "read returns a value invalid under every label");
      ("S001", Error, "static race: conflicting access pair not provably ordered at any parameters");
      ("S002", Warning, "shared base written by several roles with an empty must-lockset intersection");
      ("S003", Info, "static proof: the program is sequentially consistent by a paper theorem");
      ("S004", Warning, "static proof failed: no theorem of the paper applies");
      ("S005", Info, "read is statically over-labelled: a weaker label suffices at every parameter");
      ("S006", Warning, "read is statically under-labelled: the declared label is weaker than required");
      ("S007", Info, "gate assumption: an await was treated as ordered after its gating lock epochs");
    ]

  let description code =
    List.find_map
      (fun (c, _, d) -> if c = code then Some d else None)
      table
end
