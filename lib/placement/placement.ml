type policy = Hash | Range of { objects : int }

type obs = {
  c_churn : Mc_obs.Metrics.Counter.t;
  c_trees : Mc_obs.Metrics.Counter.t;
}

type t = {
  n_shards : int;
  t_policy : policy;
  t_fanout : int;
  (* shard -> subscribed node set *)
  subs : (int, (int, unit) Hashtbl.t) Hashtbl.t;
  (* node -> subscribed shard set *)
  node_subs : (int, (int, unit) Hashtbl.t) Hashtbl.t;
  loc_cache : (Mc_history.Op.location, int) Hashtbl.t;
  (* (shard, root) -> node -> children, rebuilt after subscription churn *)
  tree_cache : (int * int, (int, int list) Hashtbl.t) Hashtbl.t;
  sorted_cache : (int, int list) Hashtbl.t;
  mutable p_obs : obs option;
}

let policy_to_string = function
  | Hash -> "hash"
  | Range _ -> "range"

let policy_of_string = function
  | "hash" -> Ok Hash
  | "range" -> Ok (Range { objects = 0 })
  | s -> Error (Printf.sprintf "unknown placement policy %S (hash|range)" s)

let create ~shards ~policy ?(fanout = 4) () =
  if shards <= 0 then invalid_arg "Placement.create: need at least one shard";
  if fanout <= 0 then invalid_arg "Placement.create: fanout must be positive";
  {
    n_shards = shards;
    t_policy = policy;
    t_fanout = fanout;
    subs = Hashtbl.create 64;
    node_subs = Hashtbl.create 64;
    loc_cache = Hashtbl.create 256;
    tree_cache = Hashtbl.create 64;
    sorted_cache = Hashtbl.create 64;
    p_obs = None;
  }

let shards t = t.n_shards
let fanout t = t.t_fanout
let policy t = t.t_policy

(* trailing decimal run of [loc], e.g. "x:17" -> Some 17 *)
let numeric_suffix loc =
  let len = String.length loc in
  let rec start i =
    if i > 0 && loc.[i - 1] >= '0' && loc.[i - 1] <= '9' then start (i - 1)
    else i
  in
  let s = start len in
  if s = len then None else int_of_string_opt (String.sub loc s (len - s))

let compute_shard t loc =
  match t.t_policy with
  | Hash -> Hashtbl.hash loc mod t.n_shards
  | Range { objects } -> (
    match numeric_suffix loc with
    | Some id when objects > 0 ->
      let per = (objects + t.n_shards - 1) / t.n_shards in
      min (t.n_shards - 1) (id / per)
    | Some id -> id mod t.n_shards
    | None -> Hashtbl.hash loc mod t.n_shards)

let shard_of_loc t loc =
  match Hashtbl.find_opt t.loc_cache loc with
  | Some s -> s
  | None ->
    let s = compute_shard t loc in
    Hashtbl.add t.loc_cache loc s;
    s

let check_shard t shard =
  if shard < 0 || shard >= t.n_shards then
    invalid_arg (Printf.sprintf "Placement: shard %d out of range" shard)

let set tbl key =
  match Hashtbl.find_opt tbl key with
  | Some s -> s
  | None ->
    let s = Hashtbl.create 8 in
    Hashtbl.add tbl key s;
    s

(* drop every cached tree of this shard, whatever its root *)
let invalidate t shard =
  Hashtbl.remove t.sorted_cache shard;
  let stale =
    Hashtbl.fold
      (fun (sh, root) _ acc -> if sh = shard then (sh, root) :: acc else acc)
      t.tree_cache []
  in
  List.iter (Hashtbl.remove t.tree_cache) stale

let note_churn t =
  match t.p_obs with
  | Some o -> Mc_obs.Metrics.Counter.incr o.c_churn
  | None -> ()

let subscribe t ~node ~shard =
  check_shard t shard;
  if node < 0 then invalid_arg "Placement.subscribe: negative node";
  Hashtbl.replace (set t.subs shard) node ();
  Hashtbl.replace (set t.node_subs node) shard ();
  invalidate t shard;
  note_churn t

let unsubscribe t ~node ~shard =
  check_shard t shard;
  (match Hashtbl.find_opt t.subs shard with
  | Some s -> Hashtbl.remove s node
  | None -> ());
  (match Hashtbl.find_opt t.node_subs node with
  | Some s -> Hashtbl.remove s shard
  | None -> ());
  invalidate t shard;
  note_churn t

let is_subscribed t ~node ~shard =
  match Hashtbl.find_opt t.subs shard with
  | Some s -> Hashtbl.mem s node
  | None -> false

let sorted_members tbl key =
  match Hashtbl.find_opt tbl key with
  | Some s -> List.sort compare (Hashtbl.fold (fun k () acc -> k :: acc) s [])
  | None -> []

let subscribers t ~shard =
  check_shard t shard;
  match Hashtbl.find_opt t.sorted_cache shard with
  | Some l -> l
  | None ->
    let l = sorted_members t.subs shard in
    Hashtbl.add t.sorted_cache shard l;
    l

let subscriptions t ~node = sorted_members t.node_subs node

let home t ~shard =
  match subscribers t ~shard with [] -> None | least :: _ -> Some least

(* k-ary heap layout over the subscriber list rotated so [root] leads:
   the node at index i forwards to indices k*i+1 .. k*i+k. Rotation (not
   re-sorting) keeps the layout deterministic per (shard, root). *)
let build_tree t ~shard ~root =
  let subs = subscribers t ~shard in
  let order = root :: List.filter (fun n -> n <> root) subs in
  let arr = Array.of_list order in
  let len = Array.length arr in
  let k = t.t_fanout in
  let tbl = Hashtbl.create (max 8 len) in
  Array.iteri
    (fun i node ->
      let first = (k * i) + 1 in
      let last = min len (first + k) in
      let rec take j acc =
        if j >= last then List.rev acc else take (j + 1) (arr.(j) :: acc)
      in
      Hashtbl.replace tbl node (take first []))
    arr;
  tbl

let children t ~shard ~root ~node =
  check_shard t shard;
  let tbl =
    match Hashtbl.find_opt t.tree_cache (shard, root) with
    | Some tbl -> tbl
    | None ->
      let tbl = build_tree t ~shard ~root in
      Hashtbl.add t.tree_cache (shard, root) tbl;
      (match t.p_obs with
      | Some o -> Mc_obs.Metrics.Counter.incr o.c_trees
      | None -> ());
      tbl
  in
  match Hashtbl.find_opt tbl node with Some cs -> cs | None -> []

let attach_metrics t reg =
  let module M = Mc_obs.Metrics in
  t.p_obs <-
    Some
      {
        c_churn =
          M.Registry.counter reg ~help:"shard subscription changes"
            "mc_placement_churn_total";
        c_trees =
          M.Registry.counter reg ~help:"dissemination tree (re)builds"
            "mc_placement_tree_builds_total";
      };
  for shard = 0 to t.n_shards - 1 do
    M.Registry.gauge_fn reg ~help:"nodes subscribed to shard"
      ~labels:[ ("shard", string_of_int shard) ]
      "mc_shard_subscribers"
      (fun () -> float_of_int (List.length (subscribers t ~shard)))
  done

let pp fmt t =
  Format.fprintf fmt "placement(%d shards, %s, fanout %d)" t.n_shards
    (policy_to_string t.t_policy)
    t.t_fanout
