(** Object placement for the sharded, partially-replicated DSM.

    The Section-6 implementation sketch replicates every variable at
    every node; this module removes that assumption. A placement maps
    every location to exactly one {e shard} and every shard to the set
    of nodes {e subscribed} to it. Writers disseminate a shard's updates
    only to its subscribers, along a deterministic k-ary multicast tree
    rooted at the writer; everyone else obtains values on demand
    (read-miss fetch from the shard's {!home} subscriber).

    Formally this is the partition-consistency construction of
    Steinke/Nutt specialized to the paper's model: ordering guarantees
    (per-writer FIFO, per-shard causality) hold {e within} a shard, and
    cross-shard ordering is recovered through synchronization operations
    (barrier count vectors), exactly as Section 6's update-count scheme
    already provides for multicast routing. *)

type t

(** Static assignment of locations to shards. [Hash] spreads locations
    by string hash. [Range ~objects] assigns locations with a numeric
    suffix ("x:17") to contiguous ranges of [objects / shards] ids —
    the layout that keeps one worker's rows on one shard; locations
    without a numeric suffix fall back to hashing. *)
type policy = Hash | Range of { objects : int }

val policy_to_string : policy -> string
val policy_of_string : string -> (policy, string) result
(** [policy_of_string] accepts ["hash"] and ["range"] (with
    [Range { objects = 0 }] meaning "size taken from [shards]"); the
    caller patches [objects] when it knows the workload size. *)

(** [create ~shards ~policy ()] builds a placement with no subscribers.
    [fanout] (default 4) bounds each node's out-degree in the per-shard
    dissemination trees. *)
val create : shards:int -> policy:policy -> ?fanout:int -> unit -> t

val shards : t -> int
val fanout : t -> int
val policy : t -> policy

(** [shard_of_loc t loc] is the shard owning [loc] (memoized). *)
val shard_of_loc : t -> Mc_history.Op.location -> int

(** {1 Subscriptions}

    The subscription API configures which nodes replicate which shards.
    Subscriptions are set up before the runtime is created; the replica
    layer additionally supports mid-stream churn via snapshot handshakes
    (see {!Mc_dsm.Replica.subscribe_shard}). *)

val subscribe : t -> node:int -> shard:int -> unit
val unsubscribe : t -> node:int -> shard:int -> unit
val is_subscribed : t -> node:int -> shard:int -> bool

(** [subscribers t ~shard] is the sorted list of subscribed nodes. *)
val subscribers : t -> shard:int -> int list

(** [subscriptions t ~node] is the sorted list of shards [node]
    subscribes to. *)
val subscriptions : t -> node:int -> int list

(** [home t ~shard] is the deterministic fetch target for non-subscriber
    reads: the least subscriber id ([None] when the shard has no
    subscribers, i.e. was never written). Fetching always from the same
    home over a FIFO channel makes successive fetched reads of a
    location monotone in the home's per-shard apply order. *)
val home : t -> shard:int -> int option

(** {1 Dissemination trees} *)

(** [children t ~shard ~root ~node] are the nodes [node] must forward a
    shard-[shard] update originated by [root] to. The tree is the k-ary
    heap layout over the sorted subscriber list rotated so [root] comes
    first; it is deterministic per (shard, root), so consecutive updates
    of one (writer, shard) stream traverse identical FIFO paths and
    arrive in order at every subscriber. Results are memoized and the
    cache is invalidated by subscription changes. *)
val children : t -> shard:int -> root:int -> node:int -> int list

(** {1 Observability} *)

(** [attach_metrics t reg] registers [mc_placement_churn_total]
    (subscription changes), [mc_placement_tree_builds_total]
    (dissemination-tree cache misses) and a per-shard
    [mc_shard_subscribers{shard}] callback gauge — O(shards) series,
    independent of operation count. *)
val attach_metrics : t -> Mc_obs.Metrics.Registry.t -> unit

val pp : Format.formatter -> t -> unit
