type event =
  | Complete of {
      name : string;
      cat : string;
      tid : int;
      ts : float;
      dur : float;
      args : (string * string) list;
    }
  | Instant of {
      name : string;
      cat : string;
      tid : int;
      ts : float;
      args : (string * string) list;
    }
  | Flow of {
      id : int;
      name : string;
      cat : string;
      src : int;
      dst : int;
      ts_send : float;
      ts_recv : float;
      args : (string * string) list;
    }
  | Counter of { name : string; tid : int; ts : float; value : float }

type sink = { on_event : event -> unit; on_close : unit -> unit }

type t = {
  ring : event option array;
  cap : int;
  mutable total : int; (* events ever emitted; write index is total mod cap *)
  mutable spans : int;
  mutable sinks : sink list;
}

let create ?(capacity = 65536) () =
  if capacity <= 0 then invalid_arg "Mc_obs.Trace.create: capacity must be positive";
  { ring = Array.make capacity None; cap = capacity; total = 0; spans = 0; sinks = [] }

let add_sink t s = t.sinks <- s :: t.sinks

let emit t ev =
  t.ring.(t.total mod t.cap) <- Some ev;
  t.total <- t.total + 1;
  List.iter (fun s -> s.on_event ev) t.sinks

let span t ?(cat = "op") ?(args = []) ~tid ~ts ~dur name =
  (* only operation slices count towards the span==ops parity invariant;
     auxiliary categories ("fetch" round trips, shard hops) do not. *)
  if String.equal cat "op" then t.spans <- t.spans + 1;
  emit t (Complete { name; cat; tid; ts; dur; args })

let instant t ?(cat = "event") ?(args = []) ~tid ~ts name =
  emit t (Instant { name; cat; tid; ts; args })

let flow t ?(cat = "msg") ?(args = []) ~id ~src ~dst ~ts_send ~ts_recv name =
  emit t (Flow { id; name; cat; src; dst; ts_send; ts_recv; args })

let counter t ~tid ~ts name value = emit t (Counter { name; tid; ts; value })

let events t =
  let n = min t.total t.cap in
  let start = if t.total <= t.cap then 0 else t.total mod t.cap in
  List.init n (fun i ->
      match t.ring.((start + i) mod t.cap) with
      | Some ev -> ev
      | None -> assert false)

let event_count t = t.total
let span_count t = t.spans
let dropped t = if t.total > t.cap then t.total - t.cap else 0
let capacity t = t.cap

let close t =
  List.iter (fun s -> s.on_close ()) t.sinks;
  t.sinks <- []

(* ---------------- Chrome trace_event export ---------------- *)

let esc s =
  let b = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\t' -> Buffer.add_string b "\\t"
      | '\r' -> Buffer.add_string b "\\r"
      | c when Char.code c < 0x20 ->
        Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let num x = if Float.is_finite x then Printf.sprintf "%.9g" x else "0"

let args_json args =
  "{"
  ^ String.concat ","
      (List.map (fun (k, v) -> Printf.sprintf "\"%s\":\"%s\"" (esc k) (esc v)) args)
  ^ "}"

let event_to_chrome_json ev =
  match ev with
  | Complete { name; cat; tid; ts; dur; args } ->
    Printf.sprintf
      "{\"name\":\"%s\",\"cat\":\"%s\",\"ph\":\"X\",\"pid\":0,\"tid\":%d,\"ts\":%s,\"dur\":%s,\"args\":%s}"
      (esc name) (esc cat) tid (num ts) (num dur) (args_json args)
  | Instant { name; cat; tid; ts; args } ->
    Printf.sprintf
      "{\"name\":\"%s\",\"cat\":\"%s\",\"ph\":\"i\",\"s\":\"t\",\"pid\":0,\"tid\":%d,\"ts\":%s,\"args\":%s}"
      (esc name) (esc cat) tid (num ts) (args_json args)
  | Flow { id; name; cat; src; dst; ts_send; ts_recv; args } ->
    let start =
      Printf.sprintf
        "{\"name\":\"%s\",\"cat\":\"%s\",\"ph\":\"s\",\"id\":%d,\"pid\":0,\"tid\":%d,\"ts\":%s,\"args\":%s}"
        (esc name) (esc cat) id src (num ts_send) (args_json args)
    in
    let finish =
      Printf.sprintf
        "{\"name\":\"%s\",\"cat\":\"%s\",\"ph\":\"f\",\"bp\":\"e\",\"id\":%d,\"pid\":0,\"tid\":%d,\"ts\":%s,\"args\":%s}"
        (esc name) (esc cat) id dst (num ts_recv) (args_json args)
    in
    start ^ "\n" ^ finish
  | Counter { name; tid; ts; value } ->
    Printf.sprintf
      "{\"name\":\"%s\",\"ph\":\"C\",\"pid\":0,\"tid\":%d,\"ts\":%s,\"args\":{\"value\":%s}}"
      (esc name) tid (num ts) (num value)

let event_tids = function
  | Complete { tid; _ } | Instant { tid; _ } | Counter { tid; _ } -> [ tid ]
  | Flow { src; dst; _ } -> [ src; dst ]

let to_chrome t =
  let evs = events t in
  let tids =
    List.sort_uniq compare (List.concat_map event_tids evs)
  in
  let meta =
    List.map
      (fun tid ->
        Printf.sprintf
          "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":0,\"tid\":%d,\"args\":{\"name\":\"proc %d\"}}"
          tid tid)
      tids
  in
  let bodies =
    List.concat_map (fun ev -> String.split_on_char '\n' (event_to_chrome_json ev)) evs
  in
  Printf.sprintf "{\"traceEvents\":[%s]}" (String.concat "," (meta @ bodies))

let jsonl_sink oc =
  {
    on_event = (fun ev -> output_string oc (event_to_chrome_json ev ^ "\n"));
    on_close = (fun () -> flush oc);
  }
