(** Metrics registry: counters, gauges and bucketed histograms with
    labels.

    A {!Registry.t} names every time series by a metric name plus a
    (possibly empty) label set; registering the same (name, labels) pair
    twice returns the {e same} handle, so independent subsystems can
    share a series without coordination. Handles are plain mutable
    records — recording is an increment or a Welford add plus one bucket
    binary search, cheap enough to stay on hot paths.

    Values are deliberately simulation-agnostic: times are recorded in
    whatever unit the caller uses (the DSM runtime records simulated
    microseconds). Callback gauges ([gauge_fn]) are sampled only at
    {!Registry.snapshot} time and therefore cost nothing per event. *)

type labels = (string * string) list
(** Label pairs; order is irrelevant (the registry canonicalizes). *)

module Counter : sig
  type t

  val incr : t -> unit
  val add : t -> int -> unit
  val get : t -> int
end

module Gauge : sig
  type t

  (** [set g v] records the current value and tracks the high water. *)
  val set : t -> float -> unit

  val add : t -> float -> unit
  val get : t -> float

  (** Largest value ever set; [0.] before the first [set]. *)
  val high_water : t -> float
end

module Histogram : sig
  type t

  (** Default upper bounds (strictly increasing): 1, 2, 5 scaled over
      five decades — suits simulated-microsecond waits. *)
  val default_buckets : float array

  (** [observe h x] adds [x] to the summary statistics and to the first
      bucket whose upper bound is [>= x] (the last, implicit bucket has
      bound [+inf]). *)
  val observe : t -> float -> unit

  val count : t -> int
  val sum : t -> float
  val mean : t -> float
  val min : t -> float
  val max : t -> float
  val stddev : t -> float

  (** The live underlying summary (shared, not a copy) — lets existing
      [Stats.Summary] consumers read histogram series directly. *)
  val summary : t -> Mc_util.Stats.Summary.t

  (** [(upper_bound, cumulative_count)] pairs, ending with
      [(infinity, count)]. *)
  val buckets : t -> (float * int) list
end

(** Snapshot of one series, for exporters. *)
type sample =
  | Counter_sample of int
  | Gauge_sample of { value : float; high_water : float }
  | Histogram_sample of {
      count : int;
      sum : float;
      min : float;
      max : float;
      mean : float;
      stddev : float;
      buckets : (float * int) list;  (** cumulative, last bound [infinity] *)
    }

type point = { name : string; labels : labels; help : string; sample : sample }

module Registry : sig
  type t

  val create : unit -> t

  (** [counter t name] returns the counter series [(name, labels)],
      creating it at zero on first use. Raises [Invalid_argument] if the
      series exists with a different type. *)
  val counter : t -> ?help:string -> ?labels:labels -> string -> Counter.t

  val gauge : t -> ?help:string -> ?labels:labels -> string -> Gauge.t

  (** [gauge_fn t name f] registers a callback gauge sampled at
      {!snapshot} time — zero per-event cost. Re-registering replaces
      the callback. *)
  val gauge_fn : t -> ?help:string -> ?labels:labels -> string -> (unit -> float) -> unit

  (** [histogram t ?buckets name] — [buckets] must be strictly
      increasing; ignored when the series already exists. *)
  val histogram :
    t -> ?help:string -> ?labels:labels -> ?buckets:float array -> string -> Histogram.t

  (** Number of registered series. *)
  val series_count : t -> int

  (** Live handles, for programmatic consumers (e.g. the runtime's
      [wait_summaries]). Sorted by (name, labels). *)
  val counters : t -> (string * labels * Counter.t) list

  val histograms : t -> (string * labels * Histogram.t) list

  (** Point-in-time values of every series (callback gauges sampled
      now), sorted by (name, labels). *)
  val snapshot : t -> point list

  (** One JSON object: [{"metrics":[{"name":...,"labels":{...},
      "type":...,...}]}]. Non-finite floats are emitted as [null]. *)
  val to_json : t -> string

  (** Prometheus-flavoured text exposition. *)
  val pp : Format.formatter -> t -> unit
end
