(* Postmortem analyzer over trace events and metric points. The same
   aggregation runs over a live tracer's buffer and over a re-parsed
   trace file, so live-mode and file-mode reports agree by
   construction. All iteration orders are sorted and all floats are
   rendered with fixed precision, so the JSON form is byte-deterministic
   for a deterministic run. *)

(* ---------------- minimal JSON ---------------- *)

module Json = struct
  type v =
    | Null
    | Bool of bool
    | Num of float
    | Str of string
    | List of v list
    | Obj of (string * v) list

  exception Parse_error of string

  let parse (s : string) : v =
    let n = String.length s in
    let pos = ref 0 in
    let fail msg = raise (Parse_error (Printf.sprintf "%s at offset %d" msg !pos)) in
    let peek () = if !pos < n then Some s.[!pos] else None in
    let advance () = incr pos in
    let rec skip_ws () =
      match peek () with
      | Some (' ' | '\t' | '\n' | '\r') ->
        advance ();
        skip_ws ()
      | _ -> ()
    in
    let expect c =
      match peek () with
      | Some c' when c' = c -> advance ()
      | _ -> fail (Printf.sprintf "expected %C" c)
    in
    let literal lit value =
      let l = String.length lit in
      if !pos + l <= n && String.sub s !pos l = lit then begin
        pos := !pos + l;
        value
      end
      else fail (Printf.sprintf "expected %s" lit)
    in
    let parse_string () =
      expect '"';
      let b = Buffer.create 16 in
      let rec go () =
        if !pos >= n then fail "unterminated string";
        let c = s.[!pos] in
        advance ();
        match c with
        | '"' -> Buffer.contents b
        | '\\' ->
          (if !pos >= n then fail "unterminated escape";
           let e = s.[!pos] in
           advance ();
           match e with
           | '"' -> Buffer.add_char b '"'
           | '\\' -> Buffer.add_char b '\\'
           | '/' -> Buffer.add_char b '/'
           | 'b' -> Buffer.add_char b '\b'
           | 'f' -> Buffer.add_char b '\012'
           | 'n' -> Buffer.add_char b '\n'
           | 'r' -> Buffer.add_char b '\r'
           | 't' -> Buffer.add_char b '\t'
           | 'u' ->
             if !pos + 4 > n then fail "truncated \\u escape";
             let hex = String.sub s !pos 4 in
             pos := !pos + 4;
             let code =
               try int_of_string ("0x" ^ hex) with _ -> fail "bad \\u escape"
             in
             (* the exporters only escape control characters; anything
                above the ASCII range degrades to '?' *)
             if code < 0x80 then Buffer.add_char b (Char.chr code)
             else Buffer.add_char b '?'
           | _ -> fail "bad escape");
          go ()
        | c ->
          Buffer.add_char b c;
          go ()
      in
      go ()
    in
    let parse_number () =
      let start = !pos in
      let numchar c =
        (c >= '0' && c <= '9')
        || c = '-' || c = '+' || c = '.' || c = 'e' || c = 'E'
      in
      while !pos < n && numchar s.[!pos] do
        advance ()
      done;
      if !pos = start then fail "expected number";
      match float_of_string_opt (String.sub s start (!pos - start)) with
      | Some f -> Num f
      | None -> fail "bad number"
    in
    let rec parse_value () =
      skip_ws ();
      match peek () with
      | Some '"' -> Str (parse_string ())
      | Some '{' ->
        advance ();
        skip_ws ();
        if peek () = Some '}' then begin
          advance ();
          Obj []
        end
        else begin
          let rec members acc =
            skip_ws ();
            let k = parse_string () in
            skip_ws ();
            expect ':';
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' ->
              advance ();
              members ((k, v) :: acc)
            | Some '}' ->
              advance ();
              Obj (List.rev ((k, v) :: acc))
            | _ -> fail "expected ',' or '}'"
          in
          members []
        end
      | Some '[' ->
        advance ();
        skip_ws ();
        if peek () = Some ']' then begin
          advance ();
          List []
        end
        else begin
          let rec elements acc =
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' ->
              advance ();
              elements (v :: acc)
            | Some ']' ->
              advance ();
              List (List.rev (v :: acc))
            | _ -> fail "expected ',' or ']'"
          in
          elements []
        end
      | Some 't' -> literal "true" (Bool true)
      | Some 'f' -> literal "false" (Bool false)
      | Some 'n' -> literal "null" Null
      | Some _ -> parse_number ()
      | None -> fail "unexpected end of input"
    in
    let v = parse_value () in
    skip_ws ();
    if !pos <> n then fail "trailing garbage";
    v

  let mem key = function Obj kvs -> List.assoc_opt key kvs | _ -> None

  let to_str = function Some (Str s) -> Some s | _ -> None

  let to_num = function
    | Some (Num f) -> Some f
    | Some Null -> Some Float.nan
    | _ -> None

  let to_int v = Option.map int_of_float (to_num v)
end

(* ---------------- trace / metrics ingestion ---------------- *)

let args_of_json v =
  match v with
  | Some (Json.Obj kvs) ->
    List.filter_map
      (fun (k, v) -> match v with Json.Str s -> Some (k, s) | _ -> None)
      kvs
  | _ -> []

(* One Chrome trace_event object back into a {!Trace.event}. Flow
   events were exported as a ph:"s"/"f" pair sharing an id; the "s" half
   is parked in [pending] until its "f" half arrives (the exporters
   write them adjacently). Metadata records and unmatched halves yield
   [None]. *)
let event_of_chrome pending obj =
  let str k = Json.to_str (Json.mem k obj) in
  let num k = Json.to_num (Json.mem k obj) in
  let int_of k = match Json.to_int (Json.mem k obj) with Some i -> i | None -> 0 in
  let name = match str "name" with Some s -> s | None -> "" in
  let cat = match str "cat" with Some s -> s | None -> "" in
  let ts = match num "ts" with Some f -> f | None -> 0. in
  let tid = int_of "tid" in
  let args = args_of_json (Json.mem "args" obj) in
  match str "ph" with
  | Some "X" ->
    let dur = match num "dur" with Some f -> f | None -> 0. in
    Some (Trace.Complete { name; cat; tid; ts; dur; args })
  | Some "i" -> Some (Trace.Instant { name; cat; tid; ts; args })
  | Some "C" ->
    let value =
      match Json.to_num (Option.bind (Json.mem "args" obj) (Json.mem "value")) with
      | Some f -> f
      | None -> 0.
    in
    Some (Trace.Counter { name; tid; ts; value })
  | Some "s" ->
    Hashtbl.replace pending (int_of "id") (name, cat, tid, ts, args);
    None
  | Some "f" -> (
    let id = int_of "id" in
    match Hashtbl.find_opt pending id with
    | Some (name, cat, src, ts_send, args) ->
      Hashtbl.remove pending id;
      Some
        (Trace.Flow { id; name; cat; src; dst = tid; ts_send; ts_recv = ts; args })
    | None -> None)
  | _ -> None (* "M" metadata and unknown phases *)

(* [parse_trace s] accepts either the JSONL form (one Chrome object per
   line) or the whole-buffer chrome form ({"traceEvents":[...]}).
   Raises {!Json.Parse_error} on malformed input. *)
let parse_trace s =
  let pending = Hashtbl.create 16 in
  (* a JSONL file also starts with '{', so the whole-buffer parse is a
     trial: on failure the input is line-delimited *)
  let whole =
    let trimmed = String.trim s in
    if trimmed = "" || trimmed.[0] <> '{' then None
    else match Json.parse trimmed with
      | o -> Some o
      | exception Json.Parse_error _ -> None
  in
  match whole with
  | Some o -> (
    match Json.mem "traceEvents" o with
    | Some (Json.List l) -> List.filter_map (event_of_chrome pending) l
    | Some _ -> []
    | None -> List.filter_map (event_of_chrome pending) [ o ])
  | None ->
    String.split_on_char '\n' s
    |> List.filter_map (fun line ->
           let line = String.trim line in
           if line = "" then None else event_of_chrome pending (Json.parse line))

(* [parse_metrics s] re-reads {!Metrics.Registry.to_json} output. [help]
   is not round-tripped (the exporter omits it). *)
let parse_metrics s =
  let point_of obj =
    let name = match Json.to_str (Json.mem "name" obj) with Some s -> s | None -> "" in
    let labels =
      match Json.mem "labels" obj with
      | Some (Json.Obj kvs) ->
        List.filter_map
          (fun (k, v) -> match v with Json.Str s -> Some (k, s) | _ -> None)
          kvs
      | _ -> []
    in
    let num k = match Json.to_num (Json.mem k obj) with Some f -> f | None -> 0. in
    let sample =
      match Json.to_str (Json.mem "type" obj) with
      | Some "counter" ->
        Some (Metrics.Counter_sample (int_of_float (num "value")))
      | Some "gauge" ->
        Some
          (Metrics.Gauge_sample
             { value = num "value"; high_water = num "high_water" })
      | Some "histogram" ->
        let buckets =
          match Json.mem "buckets" obj with
          | Some (Json.List bs) ->
            List.map
              (fun b ->
                let le =
                  match Json.mem "le" b with
                  | Some (Json.Num f) -> f
                  | Some (Json.Str "+Inf") -> infinity
                  | _ -> infinity
                in
                let count =
                  match Json.to_int (Json.mem "count" b) with
                  | Some c -> c
                  | None -> 0
                in
                (le, count))
              bs
          | _ -> []
        in
        Some
          (Metrics.Histogram_sample
             {
               count = int_of_float (num "count");
               sum = num "sum";
               min = num "min";
               max = num "max";
               mean = num "mean";
               stddev = num "stddev";
               buckets;
             })
      | _ -> None
    in
    Option.map
      (fun sample -> { Metrics.name; labels; help = ""; sample })
      sample
  in
  match Json.parse s with
  | Json.Obj _ as o -> (
    match Json.mem "metrics" o with
    | Some (Json.List points) -> List.filter_map point_of points
    | _ -> [])
  | _ -> []

(* ---------------- data model ---------------- *)

type stat = { n : int; mean : float; p50 : float; p95 : float; max : float }

(* nearest-rank percentiles over the sorted sample list *)
let stat_of_samples samples =
  match samples with
  | [] -> None
  | _ ->
    let arr = Array.of_list samples in
    Array.sort compare arr;
    let n = Array.length arr in
    let rank q =
      let i = int_of_float (Float.ceil (q *. float_of_int n)) - 1 in
      arr.(Stdlib.min (n - 1) (Stdlib.max 0 i))
    in
    let sum = Array.fold_left ( +. ) 0. arr in
    Some
      {
        n;
        mean = sum /. float_of_int n;
        p50 = rank 0.50;
        p95 = rank 0.95;
        max = arr.(n - 1);
      }

type msum = { m_count : int; m_mean : float; m_max : float }

type shard_row = {
  sr_shard : int;
  sr_updates : int; (* shard_send instants *)
  sr_hops : int; (* tree-edge flow arcs *)
  sr_applies : int; (* subscriber-side applies *)
  sr_in_flight : int; (* updates never fully applied *)
  sr_vis : stat option; (* per-subscriber visibility latency *)
  sr_vis_full : stat option; (* until applied at every subscriber *)
  sr_fetches : int;
  sr_fetch : stat option; (* demand-fetch round trip *)
  sr_gap_high_water : float option;
  sr_gap_stalls : int option;
  sr_staleness : msum option;
}

type hot_key = { hk_loc : string; hk_reads : int; hk_writes : int }

type hop = { h_src : int; h_dst : int; h_sent : float; h_recv : float }

type provenance = { p_writer : int; p_shard : int; p_sseq : int }

type overwrite = {
  o_write_id : int;
  o_value : int;
  o_source : provenance option;
  o_path : hop list;
  o_applies : (int * float) list;
  o_complete : bool;
}

type violation = {
  v_read_id : int;
  v_proc : int;
  v_loc : string;
  v_label : string;
  v_verdict : string;
  v_value : int;
  v_fetched : bool;
  v_source : provenance option;
  v_path : hop list;
  v_overwritten_by : overwrite option;
}

type input = {
  events : Trace.event list;
  metrics : Metrics.point list;
  violations : violation list option; (* None: audit unavailable (file mode) *)
  meta : (string * string) list;
}

type report = {
  r_meta : (string * string) list;
  r_events : int;
  r_op_spans : int;
  r_flows : int;
  r_instants : int;
  r_shards : shard_row list;
  r_slowest : (int * float) list; (* (shard, visibility p95) *)
  r_hot_keys : hot_key list;
  r_staleness : msum option; (* global mc_read_staleness_updates *)
  r_placement : (int * int) option; (* churn, tree builds *)
  r_violations : violation list option;
}

(* ---------------- analysis ---------------- *)

let arg args k = List.assoc_opt k args
let arg_int args k = Option.bind (arg args k) int_of_string_opt

let find_point metrics name labels =
  List.find_opt
    (fun (p : Metrics.point) ->
      p.name = name && List.sort compare p.labels = List.sort compare labels)
    metrics

let shard_labels shard = [ ("shard", string_of_int shard) ]

let hist_msum metrics name labels =
  match find_point metrics name labels with
  | Some { sample = Metrics.Histogram_sample { count; mean; max; _ }; _ }
    when count > 0 ->
    Some { m_count = count; m_mean = mean; m_max = max }
  | _ -> None

let counter_value metrics name labels =
  match find_point metrics name labels with
  | Some { sample = Metrics.Counter_sample v; _ } -> Some v
  | _ -> None

let gauge_high_water metrics name labels =
  match find_point metrics name labels with
  | Some { sample = Metrics.Gauge_sample { high_water; _ }; _ } ->
    Some high_water
  | _ -> None

let analyze ?(top_k = 5) (input : input) : report =
  let module H = Hashtbl in
  (* (writer, shard, sseq) -> routing time, expected applies *)
  let sends : (int * int * int, float * int) H.t = H.create 256 in
  (* (writer, shard, sseq) -> apply latencies (vs routing time) *)
  let applies : (int * int * int, float list ref) H.t = H.create 256 in
  let hops_per_shard : (int, int) H.t = H.create 16 in
  let fetch_samples : (int, float list ref) H.t = H.create 16 in
  let fetch_counts : (int, int) H.t = H.create 16 in
  let key_reads : (string, int) H.t = H.create 64 in
  let key_writes : (string, int) H.t = H.create 64 in
  let bump tbl k by = H.replace tbl k (by + Option.value ~default:0 (H.find_opt tbl k)) in
  let push tbl k v =
    match H.find_opt tbl k with
    | Some l -> l := v :: !l
    | None -> H.add tbl k (ref [ v ])
  in
  let op_spans = ref 0 and flows = ref 0 and instants = ref 0 in
  let skey args =
    match (arg_int args "writer", arg_int args "shard", arg_int args "sseq") with
    | Some w, Some s, Some q -> Some (w, s, q)
    | _ -> None
  in
  (* pass 1: index the shard_send instants so apply latencies can be
     joined in pass 2 regardless of interleaving *)
  List.iter
    (fun ev ->
      match ev with
      | Trace.Instant { cat = "shard"; name = "shard_send"; ts; args; _ } -> (
        match skey args with
        | Some key ->
          H.replace sends key (ts, Option.value ~default:0 (arg_int args "expect"))
        | None -> ())
      | _ -> ())
    input.events;
  List.iter
    (fun ev ->
      match ev with
      | Trace.Complete { cat = "op"; args; name; _ } -> (
        incr op_spans;
        match arg args "loc" with
        | Some loc -> (
          match name with
          | "read" | "fetched_read" | "await" -> bump key_reads loc 1
          | "write" | "init_counter" | "decrement" -> bump key_writes loc 1
          | _ -> ())
        | None -> ())
      | Trace.Complete { cat = "fetch"; name = "fetch_rtt"; dur; args; _ } -> (
        match arg_int args "shard" with
        | Some shard ->
          bump fetch_counts shard 1;
          push fetch_samples shard dur
        | None -> ())
      | Trace.Complete _ -> ()
      | Trace.Instant { cat = "shard"; name = "shard_apply"; ts; args; _ } -> (
        incr instants;
        match skey args with
        | Some key -> (
          match H.find_opt sends key with
          | Some (t0, _) -> push applies key (ts -. t0)
          | None -> () (* send evicted from the ring *))
        | None -> ())
      | Trace.Instant _ -> incr instants
      | Trace.Flow { cat = "shard"; args; _ } -> (
        incr flows;
        match arg_int args "shard" with
        | Some shard -> bump hops_per_shard shard 1
        | None -> ())
      | Trace.Flow _ -> incr flows
      | Trace.Counter _ -> ())
    input.events;
  (* fold per-update joins into per-shard aggregates *)
  let upd_per_shard : (int, int) H.t = H.create 16 in
  let applies_per_shard : (int, int) H.t = H.create 16 in
  let inflight_per_shard : (int, int) H.t = H.create 16 in
  let vis_per_shard : (int, float list ref) H.t = H.create 16 in
  let vis_full_per_shard : (int, float list ref) H.t = H.create 16 in
  H.iter
    (fun ((_, shard, _) as key) (_, expect) ->
      bump upd_per_shard shard 1;
      let lats =
        match H.find_opt applies key with Some l -> !l | None -> []
      in
      List.iter (fun dt -> push vis_per_shard shard dt) lats;
      bump applies_per_shard shard (List.length lats);
      if expect > 0 && List.length lats >= expect then
        push vis_full_per_shard shard (List.fold_left Float.max 0. lats)
      else if expect > 0 then bump inflight_per_shard shard 1)
    sends;
  let shard_ids =
    let ids = H.create 16 in
    H.iter (fun s _ -> H.replace ids s ()) upd_per_shard;
    H.iter (fun s _ -> H.replace ids s ()) fetch_counts;
    H.iter (fun s _ -> H.replace ids s ()) hops_per_shard;
    List.iter
      (fun (p : Metrics.point) ->
        if
          p.name = "mc_shard_gap_depth"
          || p.name = "mc_shard_gap_buffered_total"
          || p.name = "mc_shard_staleness_updates"
        then
          match arg_int p.labels "shard" with
          | Some s -> H.replace ids s ()
          | None -> ())
      input.metrics;
    H.fold (fun s () acc -> s :: acc) ids [] |> List.sort compare
  in
  let get tbl s = Option.value ~default:0 (H.find_opt tbl s) in
  let samples tbl s =
    match H.find_opt tbl s with Some l -> !l | None -> []
  in
  let shards =
    List.map
      (fun s ->
        {
          sr_shard = s;
          sr_updates = get upd_per_shard s;
          sr_hops = get hops_per_shard s;
          sr_applies = get applies_per_shard s;
          sr_in_flight = get inflight_per_shard s;
          sr_vis = stat_of_samples (samples vis_per_shard s);
          sr_vis_full = stat_of_samples (samples vis_full_per_shard s);
          sr_fetches = get fetch_counts s;
          sr_fetch = stat_of_samples (samples fetch_samples s);
          sr_gap_high_water =
            gauge_high_water input.metrics "mc_shard_gap_depth" (shard_labels s);
          sr_gap_stalls =
            counter_value input.metrics "mc_shard_gap_buffered_total"
              (shard_labels s);
          sr_staleness =
            hist_msum input.metrics "mc_shard_staleness_updates" (shard_labels s);
        })
      shard_ids
  in
  let slowest =
    List.filter_map
      (fun r -> Option.map (fun st -> (r.sr_shard, st.p95)) r.sr_vis)
      shards
    |> List.sort (fun (s1, p1) (s2, p2) -> compare (-.p1, s1) (-.p2, s2))
    |> List.filteri (fun i _ -> i < top_k)
  in
  let hot_keys =
    let locs = H.create 64 in
    H.iter (fun l _ -> H.replace locs l ()) key_reads;
    H.iter (fun l _ -> H.replace locs l ()) key_writes;
    H.fold
      (fun l () acc ->
        { hk_loc = l; hk_reads = get key_reads l; hk_writes = get key_writes l }
        :: acc)
      locs []
    |> List.sort (fun a b ->
           compare
             (-(a.hk_reads + a.hk_writes), a.hk_loc)
             (-(b.hk_reads + b.hk_writes), b.hk_loc))
    |> List.filteri (fun i _ -> i < top_k)
  in
  {
    r_meta = input.meta;
    r_events = List.length input.events;
    r_op_spans = !op_spans;
    r_flows = !flows;
    r_instants = !instants;
    r_shards = shards;
    r_slowest = slowest;
    r_hot_keys = hot_keys;
    r_staleness = hist_msum input.metrics "mc_read_staleness_updates" [];
    r_placement =
      (match
         ( counter_value input.metrics "mc_placement_churn_total" [],
           counter_value input.metrics "mc_placement_tree_builds_total" [] )
       with
      | Some c, Some t -> Some (c, t)
      | _ -> None);
    r_violations = input.violations;
  }

(* ---------------- rendering ---------------- *)

let esc s =
  let b = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | c when Char.code c < 0x20 ->
        Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

(* fixed decimal rendering: stable under JSON round trips (the trace
   exporter prints 9 significant digits, so re-parsed values differ by
   far less than 0.05 µs) *)
let us x = Printf.sprintf "%.1f" x

let stat_json = function
  | None -> "null"
  | Some { n; mean; p50; p95; max } ->
    Printf.sprintf "{\"n\":%d,\"mean\":%s,\"p50\":%s,\"p95\":%s,\"max\":%s}" n
      (us mean) (us p50) (us p95) (us max)

let msum_json = function
  | None -> "null"
  | Some { m_count; m_mean; m_max } ->
    Printf.sprintf "{\"n\":%d,\"mean\":%s,\"max\":%s}" m_count (us m_mean)
      (us m_max)

let provenance_json = function
  | None -> "null"
  | Some { p_writer; p_shard; p_sseq } ->
    Printf.sprintf "{\"writer\":%d,\"shard\":%d,\"sseq\":%d}" p_writer p_shard
      p_sseq

let hops_json hops =
  "["
  ^ String.concat ","
      (List.map
         (fun { h_src; h_dst; h_sent; h_recv } ->
           Printf.sprintf
             "{\"src\":%d,\"dst\":%d,\"sent_us\":%s,\"recv_us\":%s}" h_src h_dst
             (us h_sent) (us h_recv))
         hops)
  ^ "]"

let applies_json applies =
  "["
  ^ String.concat ","
      (List.map
         (fun (node, at) ->
           Printf.sprintf "{\"node\":%d,\"at_us\":%s}" node (us at))
         applies)
  ^ "]"

let violation_json v =
  let overwritten =
    match v.v_overwritten_by with
    | None -> "null"
    | Some o ->
      Printf.sprintf
        "{\"write_id\":%d,\"value\":%d,\"source\":%s,\"path\":%s,\"applies\":%s,\"complete\":%b}"
        o.o_write_id o.o_value
        (provenance_json o.o_source)
        (hops_json o.o_path) (applies_json o.o_applies) o.o_complete
  in
  Printf.sprintf
    "{\"read_id\":%d,\"proc\":%d,\"loc\":\"%s\",\"label\":\"%s\",\"verdict\":\"%s\",\"value\":%d,\"fetched\":%b,\"source\":%s,\"path\":%s,\"overwritten_by\":%s}"
    v.v_read_id v.v_proc (esc v.v_loc) (esc v.v_label) (esc v.v_verdict)
    v.v_value v.v_fetched
    (provenance_json v.v_source)
    (hops_json v.v_path) overwritten

let shard_json r =
  Printf.sprintf
    "{\"shard\":%d,\"updates\":%d,\"hops\":%d,\"applies\":%d,\"in_flight\":%d,\"visibility_us\":%s,\"full_visibility_us\":%s,\"fetches\":%d,\"fetch_us\":%s,\"gap_high_water\":%s,\"gap_stalls\":%s,\"staleness\":%s}"
    r.sr_shard r.sr_updates r.sr_hops r.sr_applies r.sr_in_flight
    (stat_json r.sr_vis) (stat_json r.sr_vis_full) r.sr_fetches
    (stat_json r.sr_fetch)
    (match r.sr_gap_high_water with None -> "null" | Some h -> us h)
    (match r.sr_gap_stalls with None -> "null" | Some c -> string_of_int c)
    (msum_json r.sr_staleness)

let to_json (r : report) =
  let meta =
    "{"
    ^ String.concat ","
        (List.map
           (fun (k, v) -> Printf.sprintf "\"%s\":\"%s\"" (esc k) (esc v))
           r.r_meta)
    ^ "}"
  in
  let violations =
    match r.r_violations with
    | None -> "{\"available\":false,\"count\":0,\"items\":[]}"
    | Some vs ->
      Printf.sprintf "{\"available\":true,\"count\":%d,\"items\":[%s]}"
        (List.length vs)
        (String.concat "," (List.map violation_json vs))
  in
  Printf.sprintf
    "{\"meta\":%s,\"totals\":{\"events\":%d,\"op_spans\":%d,\"flows\":%d,\"instants\":%d},\"shards\":[%s],\"slowest_shards\":[%s],\"hot_keys\":[%s],\"read_staleness\":%s,\"placement\":%s,\"violations\":%s}"
    meta r.r_events r.r_op_spans r.r_flows r.r_instants
    (String.concat "," (List.map shard_json r.r_shards))
    (String.concat ","
       (List.map
          (fun (s, p95) ->
            Printf.sprintf "{\"shard\":%d,\"visibility_p95_us\":%s}" s (us p95))
          r.r_slowest))
    (String.concat ","
       (List.map
          (fun hk ->
            Printf.sprintf "{\"loc\":\"%s\",\"reads\":%d,\"writes\":%d}"
              (esc hk.hk_loc) hk.hk_reads hk.hk_writes)
          r.r_hot_keys))
    (msum_json r.r_staleness)
    (match r.r_placement with
    | None -> "null"
    | Some (churn, trees) ->
      Printf.sprintf "{\"churn\":%d,\"tree_builds\":%d}" churn trees)
    violations

let to_text (r : report) =
  let b = Buffer.create 4096 in
  let line fmt = Printf.ksprintf (fun s -> Buffer.add_string b (s ^ "\n")) fmt in
  line "postmortem report";
  List.iter (fun (k, v) -> line "  %-12s %s" k v) r.r_meta;
  line "";
  line "totals: %d events (%d op spans, %d flows, %d instants)" r.r_events
    r.r_op_spans r.r_flows r.r_instants;
  (match r.r_placement with
  | Some (churn, trees) ->
    line "placement: %d subscription changes, %d tree builds" churn trees
  | None -> ());
  (match r.r_staleness with
  | Some m ->
    line "read staleness (pending updates at read): n=%d mean=%s max=%s"
      m.m_count (us m.m_mean) (us m.m_max)
  | None -> ());
  if r.r_shards <> [] then begin
    line "";
    line "per-shard flight summary:";
    line "  %5s %8s %6s %8s %9s %22s %22s %8s %16s %6s %6s" "shard" "updates"
      "hops" "applies" "in-flight" "visibility p50/p95" "full-vis p50/p95"
      "fetches" "fetch p50/p95" "gap-hw" "stalls";
    List.iter
      (fun row ->
        let pair = function
          | Some st -> Printf.sprintf "%s/%s" (us st.p50) (us st.p95)
          | None -> "-"
        in
        line "  %5d %8d %6d %8d %9d %22s %22s %8d %16s %6s %6s" row.sr_shard
          row.sr_updates row.sr_hops row.sr_applies row.sr_in_flight
          (pair row.sr_vis) (pair row.sr_vis_full) row.sr_fetches
          (pair row.sr_fetch)
          (match row.sr_gap_high_water with Some h -> us h | None -> "-")
          (match row.sr_gap_stalls with
          | Some c -> string_of_int c
          | None -> "-"))
      r.r_shards
  end;
  if r.r_slowest <> [] then begin
    line "";
    line "slowest shards (by visibility p95, us):";
    List.iter
      (fun (s, p95) -> line "  shard %d: %s" s (us p95))
      r.r_slowest
  end;
  if r.r_hot_keys <> [] then begin
    line "";
    line "hottest keys:";
    List.iter
      (fun hk ->
        line "  %-12s %d reads, %d writes" hk.hk_loc hk.hk_reads hk.hk_writes)
      r.r_hot_keys
  end;
  line "";
  (match r.r_violations with
  | None -> line "violation audit: unavailable (trace-file mode; run live)"
  | Some [] -> line "violation audit: clean (0 verdicts)"
  | Some vs ->
    line "violation audit: %d verdict(s)" (List.length vs);
    List.iter
      (fun v ->
        line "  read #%d by proc %d: %s read of %s returned %d -> %s%s"
          v.v_read_id v.v_proc v.v_label v.v_loc v.v_value v.v_verdict
          (if v.v_fetched then " (fetched)" else "");
        (match v.v_source with
        | Some p ->
          line "    value from writer %d, shard %d, sseq %d" p.p_writer
            p.p_shard p.p_sseq
        | None -> line "    value is the initial value (no delivering write)");
        List.iter
          (fun { h_src; h_dst; h_sent; h_recv } ->
            line "    hop %d -> %d: sent %s, delivered %s" h_src h_dst
              (us h_sent) (us h_recv))
          v.v_path;
        match v.v_overwritten_by with
        | Some o ->
          line "    overwritten by write #%d (value %d)%s" o.o_write_id
            o.o_value
            (match o.o_source with
            | Some p ->
              Printf.sprintf " from writer %d, shard %d, sseq %d" p.p_writer
                p.p_shard p.p_sseq
            | None -> "");
          List.iter
            (fun { h_src; h_dst; h_sent; h_recv } ->
              line "      hop %d -> %d: sent %s, delivered %s" h_src h_dst
                (us h_sent) (us h_recv))
            o.o_path;
          List.iter
            (fun (node, at) -> line "      applied at node %d: %s" node (us at))
            o.o_applies;
          if not o.o_complete then
            line "      still in flight: never applied at every subscriber"
        | None -> ())
      vs);
  Buffer.contents b
