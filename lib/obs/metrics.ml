module Summary = Mc_util.Stats.Summary

type labels = (string * string) list

module Counter = struct
  type t = { mutable v : int }

  let make () = { v = 0 }
  let incr t = t.v <- t.v + 1
  let add t k = t.v <- t.v + k
  let get t = t.v
end

module Gauge = struct
  type t = { mutable v : float; mutable hw : float }

  let make () = { v = 0.; hw = neg_infinity }

  let set t x =
    t.v <- x;
    if x > t.hw then t.hw <- x

  let add t d = set t (t.v +. d)
  let get t = t.v
  let high_water t = if t.hw = neg_infinity then 0. else t.hw
end

module Histogram = struct
  type t = {
    bounds : float array; (* strictly increasing upper bounds *)
    counts : int array; (* length bounds + 1; last bucket is +inf *)
    summary : Summary.t;
  }

  let default_buckets =
    [| 1.; 2.; 5.; 10.; 20.; 50.; 100.; 200.; 500.; 1_000.; 2_000.; 5_000.; 10_000. |]

  let make ?(buckets = default_buckets) () =
    Array.iteri
      (fun i b ->
        if Float.is_nan b then invalid_arg "Mc_obs.Metrics: NaN histogram bound";
        if i > 0 && buckets.(i - 1) >= b then
          invalid_arg "Mc_obs.Metrics: histogram buckets must be strictly increasing")
      buckets;
    {
      bounds = Array.copy buckets;
      counts = Array.make (Array.length buckets + 1) 0;
      summary = Summary.create ();
    }

  (* index of the first bound >= x ("le" semantics); the implicit +inf
     bucket catches everything above the last bound *)
  let bucket_index t x =
    let lo = ref 0 and hi = ref (Array.length t.bounds) in
    while !lo < !hi do
      let mid = (!lo + !hi) / 2 in
      if x <= t.bounds.(mid) then hi := mid else lo := mid + 1
    done;
    !lo

  let observe t x =
    Summary.add t.summary x;
    let i = bucket_index t x in
    t.counts.(i) <- t.counts.(i) + 1

  let count t = Summary.count t.summary
  let sum t = Summary.total t.summary
  let mean t = Summary.mean t.summary
  let min t = Summary.min t.summary
  let max t = Summary.max t.summary
  let stddev t = Summary.stddev t.summary
  let summary t = t.summary

  let buckets t =
    let acc = ref 0 in
    let cumulative =
      Array.mapi
        (fun i c ->
          acc := !acc + c;
          ((if i < Array.length t.bounds then t.bounds.(i) else infinity), !acc))
        t.counts
    in
    Array.to_list cumulative
end

type sample =
  | Counter_sample of int
  | Gauge_sample of { value : float; high_water : float }
  | Histogram_sample of {
      count : int;
      sum : float;
      min : float;
      max : float;
      mean : float;
      stddev : float;
      buckets : (float * int) list;
    }

type point = { name : string; labels : labels; help : string; sample : sample }

module Registry = struct
  type value =
    | C of Counter.t
    | G of Gauge.t
    | F of (unit -> float) ref
    | H of Histogram.t

  type series = { s_help : string; mutable s_value : value }

  type t = { tbl : ((string * labels), series) Hashtbl.t }

  let create () = { tbl = Hashtbl.create 64 }

  let key name labels =
    if name = "" then invalid_arg "Mc_obs.Metrics: empty metric name";
    (name, List.sort compare labels)

  let register t ?(help = "") ?(labels = []) name make describe =
    let k = key name labels in
    match Hashtbl.find_opt t.tbl k with
    | Some s -> s.s_value
    | None ->
      let v = make () in
      ignore describe;
      Hashtbl.add t.tbl k { s_help = help; s_value = v };
      v

  let type_error name =
    invalid_arg
      (Printf.sprintf "Mc_obs.Metrics: series %S already registered with a different type"
         name)

  let counter t ?help ?labels name =
    match register t ?help ?labels name (fun () -> C (Counter.make ())) "counter" with
    | C c -> c
    | _ -> type_error name

  let gauge t ?help ?labels name =
    match register t ?help ?labels name (fun () -> G (Gauge.make ())) "gauge" with
    | G g -> g
    | _ -> type_error name

  let gauge_fn t ?help ?labels name f =
    match register t ?help ?labels name (fun () -> F (ref f)) "gauge_fn" with
    | F r -> r := f
    | _ -> type_error name

  let histogram t ?help ?labels ?buckets name =
    match
      register t ?help ?labels name (fun () -> H (Histogram.make ?buckets ())) "histogram"
    with
    | H h -> h
    | _ -> type_error name

  let series_count t = Hashtbl.length t.tbl

  let sorted t =
    Hashtbl.fold (fun (name, labels) s acc -> (name, labels, s) :: acc) t.tbl []
    |> List.sort (fun (n1, l1, _) (n2, l2, _) -> compare (n1, l1) (n2, l2))

  let counters t =
    List.filter_map
      (fun (n, l, s) -> match s.s_value with C c -> Some (n, l, c) | _ -> None)
      (sorted t)

  let histograms t =
    List.filter_map
      (fun (n, l, s) -> match s.s_value with H h -> Some (n, l, h) | _ -> None)
      (sorted t)

  let snapshot t =
    List.map
      (fun (name, labels, s) ->
        let sample =
          match s.s_value with
          | C c -> Counter_sample (Counter.get c)
          | G g -> Gauge_sample { value = Gauge.get g; high_water = Gauge.high_water g }
          | F f -> Gauge_sample { value = !f (); high_water = !f () }
          | H h ->
            Histogram_sample
              {
                count = Histogram.count h;
                sum = Histogram.sum h;
                min = Histogram.min h;
                max = Histogram.max h;
                mean = Histogram.mean h;
                stddev = Histogram.stddev h;
                buckets = Histogram.buckets h;
              }
        in
        { name; labels; help = s.s_help; sample })
      (sorted t)

  (* ---------------- exporters ---------------- *)

  let esc s =
    let b = Buffer.create (String.length s + 2) in
    String.iter
      (fun c ->
        match c with
        | '"' -> Buffer.add_string b "\\\""
        | '\\' -> Buffer.add_string b "\\\\"
        | '\n' -> Buffer.add_string b "\\n"
        | '\t' -> Buffer.add_string b "\\t"
        | '\r' -> Buffer.add_string b "\\r"
        | c when Char.code c < 0x20 -> Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
        | c -> Buffer.add_char b c)
      s;
    Buffer.contents b

  let json_float x =
    if Float.is_finite x then Printf.sprintf "%.9g" x else "null"

  let labels_json labels =
    "{"
    ^ String.concat ","
        (List.map (fun (k, v) -> Printf.sprintf "\"%s\":\"%s\"" (esc k) (esc v)) labels)
    ^ "}"

  let point_json p =
    let base =
      Printf.sprintf "\"name\":\"%s\",\"labels\":%s" (esc p.name) (labels_json p.labels)
    in
    match p.sample with
    | Counter_sample v -> Printf.sprintf "{%s,\"type\":\"counter\",\"value\":%d}" base v
    | Gauge_sample { value; high_water } ->
      Printf.sprintf "{%s,\"type\":\"gauge\",\"value\":%s,\"high_water\":%s}" base
        (json_float value) (json_float high_water)
    | Histogram_sample { count; sum; min; max; mean; stddev; buckets } ->
      let bucket_json (le, c) =
        if Float.is_finite le then Printf.sprintf "{\"le\":%s,\"count\":%d}" (json_float le) c
        else Printf.sprintf "{\"le\":\"+Inf\",\"count\":%d}" c
      in
      Printf.sprintf
        "{%s,\"type\":\"histogram\",\"count\":%d,\"sum\":%s,\"min\":%s,\"max\":%s,\"mean\":%s,\"stddev\":%s,\"buckets\":[%s]}"
        base count (json_float sum) (json_float min) (json_float max) (json_float mean)
        (json_float stddev)
        (String.concat "," (List.map bucket_json buckets))

  let to_json t =
    Printf.sprintf "{\"metrics\":[%s]}"
      (String.concat "," (List.map point_json (snapshot t)))

  let pp_labels fmt labels =
    if labels <> [] then begin
      Format.fprintf fmt "{";
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Format.fprintf fmt ",";
          Format.fprintf fmt "%s=\"%s\"" k v)
        labels;
      Format.fprintf fmt "}"
    end

  let pp fmt t =
    List.iter
      (fun p ->
        if p.help <> "" then Format.fprintf fmt "# HELP %s %s@." p.name p.help;
        match p.sample with
        | Counter_sample v -> Format.fprintf fmt "%s%a %d@." p.name pp_labels p.labels v
        | Gauge_sample { value; high_water } ->
          Format.fprintf fmt "%s%a %g (high-water %g)@." p.name pp_labels p.labels value
            high_water
        | Histogram_sample { count; mean; min; max; stddev; buckets; _ } ->
          Format.fprintf fmt "%s%a n=%d mean=%.3f sd=%.3f min=%.3f max=%.3f@." p.name
            pp_labels p.labels count mean stddev min max;
          List.iter
            (fun (le, c) ->
              if Float.is_finite le then
                Format.fprintf fmt "%s_bucket%a{le=%g} %d@." p.name pp_labels p.labels le c
              else Format.fprintf fmt "%s_bucket%a{le=+Inf} %d@." p.name pp_labels p.labels c)
            buckets)
      (snapshot t)
end
