(** Postmortem analyzer over trace events and metric points.

    The same aggregation runs over a live tracer's event buffer and over
    a re-parsed trace file, so live-mode and file-mode reports agree by
    construction. Rendering is deterministic: every collection is sorted
    and floats are printed with fixed precision, so two reports of the
    same (seeded) run are byte-identical. *)

(** Minimal JSON reader for the formats this library itself writes
    (Chrome traces, JSONL sinks, {!Metrics.Registry.to_json} dumps). *)
module Json : sig
  type v =
    | Null
    | Bool of bool
    | Num of float
    | Str of string
    | List of v list
    | Obj of (string * v) list

  exception Parse_error of string

  val parse : string -> v
end

(** [parse_trace s] re-reads a trace in either Chrome form
    ([{"traceEvents": [...]}]) or JSONL form (one event object per
    line). Flow arcs are re-paired from their ph ["s"]/["f"] halves by
    shared id; metadata records are dropped. Raises {!Json.Parse_error}
    on malformed input. *)
val parse_trace : string -> Trace.event list

(** [parse_metrics s] re-reads a {!Metrics.Registry.to_json} dump.
    The [help] text is not round-tripped (the exporter omits it). *)
val parse_metrics : string -> Metrics.point list

(** Nearest-rank percentile summary of a latency sample set (µs). *)
type stat = { n : int; mean : float; p50 : float; p95 : float; max : float }

val stat_of_samples : float list -> stat option

(** Count/mean/max summary carried over from a histogram metric. *)
type msum = { m_count : int; m_mean : float; m_max : float }

(** One shard's flight summary: dissemination volume, visibility
    latency, demand-fetch round trips and gap-buffer behaviour. *)
type shard_row = {
  sr_shard : int;
  sr_updates : int;  (** shard_send instants (routed updates) *)
  sr_hops : int;  (** tree-edge flow arcs *)
  sr_applies : int;  (** subscriber-side applies *)
  sr_in_flight : int;  (** updates not yet applied everywhere *)
  sr_vis : stat option;  (** routed → applied at one subscriber (µs) *)
  sr_vis_full : stat option;  (** routed → applied at every subscriber *)
  sr_fetches : int;
  sr_fetch : stat option;  (** demand-fetch round trip (µs) *)
  sr_gap_high_water : float option;  (** [mc_shard_gap_depth] high water *)
  sr_gap_stalls : int option;  (** [mc_shard_gap_buffered_total] *)
  sr_staleness : msum option;  (** [mc_shard_staleness_updates] *)
}

type hot_key = { hk_loc : string; hk_reads : int; hk_writes : int }

(** One tree-edge transmission on a value's causal path. *)
type hop = { h_src : int; h_dst : int; h_sent : float; h_recv : float }

(** Stream coordinates of the write that produced a value. *)
type provenance = { p_writer : int; p_shard : int; p_sseq : int }

(** The later write that makes a stale read a violation, with its own
    causal path and apply record. [o_complete = false] means the write
    was still in flight — never applied at every subscriber. *)
type overwrite = {
  o_write_id : int;
  o_value : int;
  o_source : provenance option;
  o_path : hop list;
  o_applies : (int * float) list;
  o_complete : bool;
}

(** An online-checker verdict joined to the trace: the read, the
    provenance and causal path of the value it returned, and (for
    [Overwritten] verdicts) the interposing write's path. *)
type violation = {
  v_read_id : int;
  v_proc : int;
  v_loc : string;
  v_label : string;
  v_verdict : string;
  v_value : int;
  v_fetched : bool;
  v_source : provenance option;
  v_path : hop list;
  v_overwritten_by : overwrite option;
}

(** Analyzer input. [violations = None] means the audit is unavailable
    (trace-file mode, where no checker ran); [Some []] is a clean run. *)
type input = {
  events : Trace.event list;
  metrics : Metrics.point list;
  violations : violation list option;
  meta : (string * string) list;
}

type report = {
  r_meta : (string * string) list;
  r_events : int;
  r_op_spans : int;
  r_flows : int;
  r_instants : int;
  r_shards : shard_row list;
  r_slowest : (int * float) list;  (** (shard, visibility p95), worst first *)
  r_hot_keys : hot_key list;
  r_staleness : msum option;  (** global [mc_read_staleness_updates] *)
  r_placement : (int * int) option;  (** (churn, tree builds) *)
  r_violations : violation list option;
}

(** [analyze ?top_k input] aggregates events and metrics into a report.
    Shard rows join [shard_send] instants to [shard_apply] instants by
    (writer, shard, sseq); [top_k] (default 5) bounds the slowest-shard
    and hottest-key rankings. *)
val analyze : ?top_k:int -> input -> report

(** Deterministic single-line JSON rendering (all floats [%.1f] µs). *)
val to_json : report -> string

(** Human-readable rendering of the same content. *)
val to_text : report -> string
