(** Structured span/event tracer with pluggable sinks.

    Records timeline events keyed by caller-supplied timestamps (the DSM
    runtime passes simulated microseconds, which map one-to-one onto the
    Chrome [trace_event] [ts]/[dur] unit). Events land in a bounded
    in-memory ring buffer — oldest events are dropped once the buffer is
    full, with {!dropped} counting the casualties — and are mirrored to
    any attached {!sink}s as they are emitted.

    The tracer is engine-agnostic: it never reads a clock itself, so the
    library has no dependency on the simulator. *)

type event =
  | Complete of {
      name : string;
      cat : string;
      tid : int;  (** process id in the simulation; Chrome thread id *)
      ts : float;  (** start, µs *)
      dur : float;  (** duration, µs *)
      args : (string * string) list;
    }
  | Instant of {
      name : string;
      cat : string;
      tid : int;
      ts : float;
      args : (string * string) list;
    }
  | Flow of {
      id : int;  (** unique arc id, e.g. a message sequence number *)
      name : string;
      cat : string;
      src : int;  (** sender tid *)
      dst : int;  (** receiver tid *)
      ts_send : float;
      ts_recv : float;
      args : (string * string) list;
    }
  | Counter of { name : string; tid : int; ts : float; value : float }

type sink = {
  on_event : event -> unit;
  on_close : unit -> unit;
}

type t

(** [create ?capacity ()] — ring buffer capacity defaults to [65536]
    events and must be positive. *)
val create : ?capacity:int -> unit -> t

val add_sink : t -> sink -> unit

(** Emitters. [span] records a Complete slice; [instant] a point event;
    [flow] a send→deliver arc; [counter] a sampled counter track. *)
val span :
  t -> ?cat:string -> ?args:(string * string) list -> tid:int -> ts:float -> dur:float ->
  string -> unit

val instant :
  t -> ?cat:string -> ?args:(string * string) list -> tid:int -> ts:float -> string -> unit

val flow :
  t -> ?cat:string -> ?args:(string * string) list -> id:int -> src:int -> dst:int ->
  ts_send:float -> ts_recv:float -> string -> unit

val counter : t -> tid:int -> ts:float -> string -> float -> unit

(** Buffered events, oldest first (at most [capacity]). *)
val events : t -> event list

(** Total events ever emitted (not limited by the ring). *)
val event_count : t -> int

(** Total [Complete] spans of category ["op"] ever emitted (not limited
    by the ring). Auxiliary span categories — e.g. ["fetch"] round-trip
    slices — are excluded, so the count stays comparable to the number
    of recorded operations. *)
val span_count : t -> int

(** Events evicted from the ring so far. *)
val dropped : t -> int

val capacity : t -> int

(** Flush [on_close] on every sink (idempotent per sink list). *)
val close : t -> unit

(** One event as a Chrome [trace_event] JSON object. Flows render as two
    objects (ph ["s"] then ph ["f"] with [bp:"e"]), newline-joined. *)
val event_to_chrome_json : event -> string

(** Whole buffer as [{"traceEvents":[...]}], including thread-name
    metadata records for every tid seen. Suitable for about://tracing /
    Perfetto. *)
val to_chrome : t -> string

(** A sink that appends one Chrome-format JSON object per line to
    [out_channel] ([Flow] events produce two lines). [on_close] flushes
    but does not close the channel. *)
val jsonl_sink : out_channel -> sink
