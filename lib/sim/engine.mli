(** Deterministic discrete-event simulation engine with cooperative
    fibers.

    Virtual time is a float (microseconds by convention). Events fire in
    time order with FIFO tie-breaking, so a run is fully determined by the
    program and its seed. Fibers are lightweight processes implemented
    with OCaml effects: application code is written in direct style and
    suspends into the engine whenever it blocks on a simulated resource
    (message arrival, lock grant, barrier release, ...).

    Typical use:
    {[
      let engine = Engine.create () in
      Engine.spawn engine (fun () ->
          Engine.delay engine 5.0;
          ...);
      Engine.run engine
    ]} *)

type t

exception Deadlock of string
(** Raised by {!run} when the event queue drains while fibers are still
    blocked; the payload describes the stuck fibers. *)

exception Fiber_failure of exn * Printexc.raw_backtrace
(** Raised by {!run} when a fiber terminates with an uncaught exception. *)

val create : unit -> t

(** [now t] is the current virtual time. *)
val now : t -> float

(** [spawn t ?name f] creates a fiber running [f], started at the current
    virtual time. [name] appears in deadlock diagnostics. *)
val spawn : t -> ?name:string -> (unit -> unit) -> unit

(** [schedule t ~delay f] runs the plain callback [f] at [now + delay].
    Callbacks must not suspend; they may resume suspended fibers. *)
val schedule : t -> delay:float -> (unit -> unit) -> unit

(** [delay t d] suspends the calling fiber for [d] units of virtual time.
    Must be called from within a fiber. *)
val delay : t -> float -> unit

(** [suspend t setup] suspends the calling fiber. [setup] is called
    immediately with a [resume] closure; stash it wherever the wake-up
    signal will come from (a message handler, a lock queue, ...). Calling
    [resume v] schedules the fiber to continue with value [v] at the
    then-current virtual time. [resume] must be called at most once. *)
val suspend : t -> (('a -> unit) -> unit) -> 'a

(** [run t] processes events until the queue is empty. Raises {!Deadlock}
    if any spawned fiber has not finished by then, and {!Fiber_failure}
    if a fiber raised. Returns the final virtual time. *)
val run : t -> float

(** [run_until t ~limit] is {!run} but stops once virtual time would
    exceed [limit]; returns the stop time. Pending events/fibers are
    abandoned without a deadlock check (used by fault-injection tests). *)
val run_until : t -> limit:float -> float

(** [live_fibers t] is the number of fibers spawned but not yet
    finished. *)
val live_fibers : t -> int

(** [events_processed t] counts events executed so far. *)
val events_processed : t -> int

(** [attach_metrics t reg] registers engine counters
    ([mc_engine_events_total], [mc_engine_fibers_spawned_total],
    [mc_engine_suspends_total]) and the [mc_engine_queue_depth] gauge in
    [reg] and starts updating them. Until attached the engine records
    nothing beyond its own [events_processed] count. *)
val attach_metrics : t -> Mc_obs.Metrics.Registry.t -> unit

(** Condition variables for fibers: a wait/wake primitive used by locks,
    barriers and awaits. *)
module Cond : sig
  type engine := t
  type t

  val create : unit -> t

  (** [wait engine c] blocks the calling fiber until signalled. *)
  val wait : engine -> t -> unit

  (** [signal engine c] wakes the longest-waiting fiber, if any. *)
  val signal : engine -> t -> unit

  (** [broadcast engine c] wakes every waiting fiber. *)
  val broadcast : engine -> t -> unit

  (** [waiters c] is the number of fibers currently blocked. *)
  val waiters : t -> int
end
