exception Deadlock of string
exception Fiber_failure of exn * Printexc.raw_backtrace

type obs = {
  c_events : Mc_obs.Metrics.Counter.t;
  c_spawns : Mc_obs.Metrics.Counter.t;
  c_suspends : Mc_obs.Metrics.Counter.t;
  g_queue : Mc_obs.Metrics.Gauge.t;
}

type t = {
  queue : (unit -> unit) Mc_util.Pqueue.t;
  mutable now : float;
  mutable live : int;
  mutable events : int;
  mutable failure : (exn * Printexc.raw_backtrace) option;
  blocked : (int, string) Hashtbl.t; (* fiber id -> name, for diagnostics *)
  mutable next_fiber_id : int;
  mutable obs : obs option;
}

(* The currently-running fiber's id, used only for deadlock diagnostics. *)
let current_fiber : int option ref = ref None

type _ Effect.t += Suspend : (('a -> unit) -> unit) -> 'a Effect.t

let create () =
  {
    queue = Mc_util.Pqueue.create ();
    now = 0.;
    live = 0;
    events = 0;
    failure = None;
    blocked = Hashtbl.create 16;
    next_fiber_id = 0;
    obs = None;
  }

let attach_metrics t reg =
  let module M = Mc_obs.Metrics in
  t.obs <-
    Some
      {
        c_events =
          M.Registry.counter reg ~help:"events executed by the sim engine"
            "mc_engine_events_total";
        c_spawns =
          M.Registry.counter reg ~help:"fibers spawned" "mc_engine_fibers_spawned_total";
        c_suspends =
          M.Registry.counter reg ~help:"fiber suspensions" "mc_engine_suspends_total";
        g_queue =
          M.Registry.gauge reg ~help:"event-queue depth sampled at each step"
            "mc_engine_queue_depth";
      }

let now t = t.now
let live_fibers t = t.live
let events_processed t = t.events

let schedule t ~delay f =
  if delay < 0. then invalid_arg "Engine.schedule: negative delay";
  Mc_util.Pqueue.add t.queue ~priority:(t.now +. delay) f

let handler t fiber_id name =
  let open Effect.Deep in
  {
    retc = (fun () -> t.live <- t.live - 1);
    exnc =
      (fun exn ->
        t.live <- t.live - 1;
        if t.failure = None then
          t.failure <- Some (exn, Printexc.get_raw_backtrace ()));
    effc =
      (fun (type a) (eff : a Effect.t) ->
        match eff with
        | Suspend setup ->
          Some
            (fun (k : (a, _) continuation) ->
              (match t.obs with
              | Some o -> Mc_obs.Metrics.Counter.incr o.c_suspends
              | None -> ());
              Hashtbl.replace t.blocked fiber_id name;
              let resumed = ref false in
              let resume v =
                if !resumed then
                  invalid_arg "Engine: fiber resumed twice"
                else begin
                  resumed := true;
                  Hashtbl.remove t.blocked fiber_id;
                  schedule t ~delay:0. (fun () ->
                      let saved = !current_fiber in
                      current_fiber := Some fiber_id;
                      continue k v;
                      current_fiber := saved)
                end
              in
              setup resume)
        | _ -> None);
  }

let spawn t ?(name = "fiber") f =
  let fiber_id = t.next_fiber_id in
  t.next_fiber_id <- fiber_id + 1;
  t.live <- t.live + 1;
  (match t.obs with
  | Some o -> Mc_obs.Metrics.Counter.incr o.c_spawns
  | None -> ());
  schedule t ~delay:0. (fun () ->
      let saved = !current_fiber in
      current_fiber := Some fiber_id;
      Effect.Deep.match_with f () (handler t fiber_id name);
      current_fiber := saved)

let suspend _t setup = Effect.perform (Suspend setup)

let delay t d =
  if d < 0. then invalid_arg "Engine.delay: negative delay";
  suspend t (fun resume -> schedule t ~delay:d (fun () -> resume ()))

let check_failure t =
  match t.failure with
  | Some (exn, bt) ->
    t.failure <- None;
    raise (Fiber_failure (exn, bt))
  | None -> ()

let step t =
  let time, action = Mc_util.Pqueue.pop_min t.queue in
  t.now <- time;
  t.events <- t.events + 1;
  (match t.obs with
  | Some o ->
    Mc_obs.Metrics.Counter.incr o.c_events;
    Mc_obs.Metrics.Gauge.set o.g_queue (float_of_int (Mc_util.Pqueue.length t.queue))
  | None -> ());
  action ();
  check_failure t

let run t =
  while not (Mc_util.Pqueue.is_empty t.queue) do
    step t
  done;
  if t.live > 0 then begin
    let names =
      Hashtbl.fold (fun _ name acc -> name :: acc) t.blocked []
      |> List.sort String.compare |> String.concat ", "
    in
    raise
      (Deadlock
         (Printf.sprintf "%d fiber(s) blocked at t=%.3f: [%s]" t.live t.now names))
  end;
  t.now

let run_until t ~limit =
  let continue_run = ref true in
  while !continue_run && not (Mc_util.Pqueue.is_empty t.queue) do
    match Mc_util.Pqueue.peek_min t.queue with
    | Some (time, _) when time > limit -> continue_run := false
    | _ -> step t
  done;
  t.now

module Cond = struct
  type nonrec t = { mutable queue : (unit -> unit) list (* resumers, FIFO *) }

  let create () = { queue = [] }
  let waiters c = List.length c.queue

  let wait engine c =
    suspend engine (fun resume -> c.queue <- c.queue @ [ (fun () -> resume ()) ])

  let signal _engine c =
    match c.queue with
    | [] -> ()
    | resume :: rest ->
      c.queue <- rest;
      resume ()

  let broadcast _engine c =
    let resumers = c.queue in
    c.queue <- [];
    List.iter (fun resume -> resume ()) resumers
end
