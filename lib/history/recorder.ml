type token = { proc : int; inv_seq : int }

(* The full-materialize store is itself a sink: the offline path is just
   one subscriber among the streaming consumers. *)
type store = { mutable ops_rev : Op.t list }

let store_sink store =
  Sink.make (fun op -> store.ops_rev <- op :: store.ops_rev)

type t = {
  n_procs : int;
  store : store option;
  mutable sinks : Sink.t list; (* in subscription order *)
  mutable count : int;
  mutable closed : bool;
  event_counters : int array;
  grant_counters : (string, int ref) Hashtbl.t;
}

let create ?(materialize = true) ~procs () =
  if procs <= 0 then invalid_arg "Recorder.create: need at least one process";
  let store = if materialize then Some { ops_rev = [] } else None in
  {
    n_procs = procs;
    store;
    sinks = (match store with Some s -> [ store_sink s ] | None -> []);
    count = 0;
    closed = false;
    event_counters = Array.make procs 0;
    grant_counters = Hashtbl.create 8;
  }

let procs t = t.n_procs

let subscribe t sink =
  if t.closed then invalid_arg "Recorder.subscribe: recorder is closed";
  t.sinks <- t.sinks @ [ sink ]

let emit t f = List.iter f t.sinks

let check_proc t proc =
  if proc < 0 || proc >= t.n_procs then
    invalid_arg (Printf.sprintf "Recorder: process %d out of range" proc)

let check_open t =
  if t.closed then invalid_arg "Recorder: recorder is closed"

let next_event t proc =
  let c = t.event_counters.(proc) in
  t.event_counters.(proc) <- c + 1;
  c

let add_op t ~proc ~inv_seq ~resp_seq ~sync_seq kind =
  let id = t.count in
  t.count <- id + 1;
  let op : Op.t = { id; proc; kind; inv_seq; resp_seq; sync_seq } in
  emit t (fun s -> s.Sink.on_op op);
  id

let record t ~proc ?(sync_seq = -1) kind =
  check_proc t proc;
  check_open t;
  let inv_seq = next_event t proc in
  emit t (fun s -> s.Sink.on_inv ~proc ~seq:inv_seq);
  let resp_seq = next_event t proc in
  add_op t ~proc ~inv_seq ~resp_seq ~sync_seq kind

let start t ~proc =
  check_proc t proc;
  check_open t;
  let inv_seq = next_event t proc in
  emit t (fun s -> s.Sink.on_inv ~proc ~seq:inv_seq);
  { proc; inv_seq }

let finish t token ?(sync_seq = -1) kind =
  check_open t;
  let resp_seq = next_event t token.proc in
  add_op t ~proc:token.proc ~inv_seq:token.inv_seq ~resp_seq ~sync_seq kind

let grant_seq t lock =
  match Hashtbl.find_opt t.grant_counters lock with
  | Some r ->
    incr r;
    !r
  | None ->
    Hashtbl.add t.grant_counters lock (ref 0);
    0

let notify_dead t ~loc ~value =
  check_open t;
  emit t (fun s -> s.Sink.on_dead ~loc ~value)

let close t =
  if not t.closed then begin
    t.closed <- true;
    emit t (fun s -> s.Sink.on_close ())
  end

let op_count t = t.count

let history t =
  match t.store with
  | Some store ->
    let arr = Array.of_list (List.rev store.ops_rev) in
    History.create ~procs:t.n_procs arr
  | None ->
    invalid_arg "Recorder.history: recorder was created with ~materialize:false"
