module Relation = Mc_util.Relation

type t = {
  procs : int;
  ops : Op.t array;
  writers : (Op.location * Op.value, int list) Hashtbl.t;
  (* memoized derived relations *)
  mutable program_order_memo : Relation.t option;
  mutable reads_from_memo : Relation.t option;
  mutable lock_order_memo : Relation.t option;
  mutable barrier_order_memo : Relation.t option;
  mutable await_order_memo : Relation.t option;
  mutable sync_reduced_memo : Relation.t option;
  mutable causality_memo : Relation.t option;
  causal_rel_memo : Relation.t option array;
  pram_rel_memo : Relation.t option array;
  (* string-keyed memo for relations derived by other layers (the
     lattice engine caches one relation per (model, reader) here) *)
  rel_cache : (string, Relation.t) Hashtbl.t;
}

let create ~procs ops =
  if procs <= 0 then invalid_arg "History.create: need at least one process";
  Array.iteri
    (fun i (op : Op.t) ->
      if op.id <> i then
        invalid_arg
          (Printf.sprintf "History.create: op at index %d has id %d" i op.id);
      if op.proc < 0 || op.proc >= procs then
        invalid_arg
          (Printf.sprintf "History.create: op %d has process %d out of range" i
             op.proc))
    ops;
  let writers = Hashtbl.create 64 in
  Array.iter
    (fun (op : Op.t) ->
      match Op.writes_value op with
      | Some (loc, v) ->
        let key = (loc, v) in
        let prev = Option.value ~default:[] (Hashtbl.find_opt writers key) in
        Hashtbl.replace writers key (op.id :: prev)
      | None -> ())
    ops;
  {
    procs;
    ops;
    writers;
    program_order_memo = None;
    reads_from_memo = None;
    lock_order_memo = None;
    barrier_order_memo = None;
    await_order_memo = None;
    sync_reduced_memo = None;
    causality_memo = None;
    causal_rel_memo = Array.make procs None;
    pram_rel_memo = Array.make procs None;
    rel_cache = Hashtbl.create 8;
  }

let procs t = t.procs
let ops t = t.ops
let length t = Array.length t.ops
let op t i = t.ops.(i)
let initial_value _t _loc = 0

let writers_of t loc v =
  Option.value ~default:[] (Hashtbl.find_opt t.writers (loc, v)) |> List.sort compare

let cached_relation t key compute =
  match Hashtbl.find_opt t.rel_cache key with
  | Some r -> r
  | None ->
    let r = compute () in
    Hashtbl.add t.rel_cache key r;
    r

(* Memoization helper over the mutable record fields. *)
let with_memo get set t compute =
  match get t with
  | Some r -> r
  | None ->
    let r = compute t in
    set t (Some r);
    r

(* ------------------------------------------------------------------ *)
(* Program order                                                       *)
(* ------------------------------------------------------------------ *)

let compute_program_order t =
  let n = length t in
  let r = Relation.create n in
  (* Group operations by process, then add o1 -> o2 whenever the response
     of o1 precedes the invocation of o2 (both events process-local). *)
  let by_proc = Array.make t.procs [] in
  Array.iter
    (fun (o : Op.t) -> by_proc.(o.proc) <- o :: by_proc.(o.proc))
    t.ops;
  Array.iter
    (fun ops_of_p ->
      let arr = Array.of_list ops_of_p in
      let len = Array.length arr in
      for a = 0 to len - 1 do
        for b = 0 to len - 1 do
          let (o1 : Op.t) = arr.(a) and (o2 : Op.t) = arr.(b) in
          if o1.id <> o2.id && o1.resp_seq < o2.inv_seq then
            Relation.add r o1.id o2.id
        done
      done)
    by_proc;
  r

let program_order t =
  with_memo
    (fun t -> t.program_order_memo)
    (fun t v -> t.program_order_memo <- v)
    t compute_program_order

(* ------------------------------------------------------------------ *)
(* Reads-from                                                          *)
(* ------------------------------------------------------------------ *)

let compute_reads_from t =
  let n = length t in
  let r = Relation.create n in
  Array.iter
    (fun (o : Op.t) ->
      match Op.reads_value o with
      | Some (loc, v) ->
        List.iter
          (fun w -> if w <> o.id then Relation.add r w o.id)
          (writers_of t loc v)
      | None -> ())
    t.ops;
  r

let reads_from t =
  with_memo
    (fun t -> t.reads_from_memo)
    (fun t v -> t.reads_from_memo <- v)
    t compute_reads_from

(* ------------------------------------------------------------------ *)
(* Lock order                                                          *)
(* ------------------------------------------------------------------ *)

type epoch = Write_epoch of int list | Read_epoch of int list

(* Group the lock operations of one lock object, sorted by the manager
   grant order, into epochs: each write critical section is its own epoch;
   maximal runs of read lock/unlock operations form shared epochs. *)
let epochs_of_lock ops_sorted =
  let finish current acc =
    match current with
    | [] -> acc
    | ops -> Read_epoch (List.rev ops) :: acc
  in
  let rec walk acc current = function
    | [] -> List.rev (finish current acc)
    | (o : Op.t) :: rest -> (
      match o.kind with
      | Op.Write_lock _ -> (
        let acc = finish current acc in
        (* consume until the matching write unlock by the same process *)
        match rest with
        | (u : Op.t) :: rest' when u.proc = o.proc
                                   && (match u.kind with
                                      | Op.Write_unlock _ -> true
                                      | _ -> false) ->
          walk (Write_epoch [ o.id; u.id ] :: acc) [] rest'
        | _ ->
          (* unmatched write lock (end of history inside a critical
             section): epoch contains just the lock operation *)
          walk (Write_epoch [ o.id ] :: acc) [] rest)
      | Op.Read_lock _ | Op.Read_unlock _ -> walk acc (o.id :: current) rest
      | _ -> walk acc current rest)
  in
  walk [] [] ops_sorted

let epoch_ops = function Write_epoch l -> l | Read_epoch l -> l

let compute_lock_order t =
  let n = length t in
  let r = Relation.create n in
  (* bucket lock operations per lock object *)
  let by_lock = Hashtbl.create 8 in
  Array.iter
    (fun (o : Op.t) ->
      match Op.lock_of o with
      | Some l ->
        let prev = Option.value ~default:[] (Hashtbl.find_opt by_lock l) in
        Hashtbl.replace by_lock l (o :: prev)
      | None -> ())
    t.ops;
  Hashtbl.iter
    (fun _lock ops_of_l ->
      let sorted =
        List.sort
          (fun (a : Op.t) (b : Op.t) -> compare a.sync_seq b.sync_seq)
          ops_of_l
      in
      let epochs = Array.of_list (epochs_of_lock sorted) in
      (* all operations of an earlier epoch precede all of a later epoch *)
      for e1 = 0 to Array.length epochs - 1 do
        for e2 = e1 + 1 to Array.length epochs - 1 do
          List.iter
            (fun a ->
              List.iter (fun b -> Relation.add r a b) (epoch_ops epochs.(e2)))
            (epoch_ops epochs.(e1))
        done
      done;
      (* within a write epoch, lock precedes unlock *)
      Array.iter
        (function
          | Write_epoch [ a; b ] -> Relation.add r a b
          | Write_epoch _ -> ()
          | Read_epoch ops ->
            (* read lock precedes its matching unlock: same process, the
               unlock that follows it in the epoch *)
            let open_locks = Hashtbl.create 4 in
            List.iter
              (fun id ->
                let o = t.ops.(id) in
                match o.kind with
                | Op.Read_lock _ -> Hashtbl.replace open_locks o.proc id
                | Op.Read_unlock _ -> (
                  match Hashtbl.find_opt open_locks o.proc with
                  | Some lid ->
                    Relation.add r lid id;
                    Hashtbl.remove open_locks o.proc
                  | None -> ())
                | _ -> ())
              ops)
        epochs)
    by_lock;
  r

let lock_order t =
  with_memo
    (fun t -> t.lock_order_memo)
    (fun t v -> t.lock_order_memo <- v)
    t compute_lock_order

(* ------------------------------------------------------------------ *)
(* Barrier order                                                       *)
(* ------------------------------------------------------------------ *)

let compute_barrier_order t =
  let n = length t in
  let r = Relation.create n in
  let po = program_order t in
  (* (member set, episode) -> barrier op ids; a plain barrier spans all
     processes *)
  let episodes = Hashtbl.create 8 in
  let add key id =
    let prev = Option.value ~default:[] (Hashtbl.find_opt episodes key) in
    Hashtbl.replace episodes key (id :: prev)
  in
  Array.iter
    (fun (o : Op.t) ->
      match o.kind with
      | Op.Barrier k -> add ([], k) o.id
      | Op.Barrier_group { episode; members } ->
        add (List.sort_uniq compare members, episode) o.id
      | _ -> ())
    t.ops;
  Hashtbl.iter
    (fun _k barrier_ids ->
      List.iter
        (fun bid ->
          let b = t.ops.(bid) in
          Array.iter
            (fun (o : Op.t) ->
              if o.proc = b.proc && o.id <> b.id then begin
                if Relation.mem po o.id b.id then
                  (* o ->j bkj, hence o => bki for every i *)
                  List.iter (fun bid' -> if bid' <> o.id then Relation.add r o.id bid') barrier_ids
                else if Relation.mem po b.id o.id then
                  List.iter (fun bid' -> if bid' <> o.id then Relation.add r bid' o.id) barrier_ids
              end)
            t.ops)
        barrier_ids)
    episodes;
  r

let barrier_order t =
  with_memo
    (fun t -> t.barrier_order_memo)
    (fun t v -> t.barrier_order_memo <- v)
    t compute_barrier_order

(* ------------------------------------------------------------------ *)
(* Await order                                                         *)
(* ------------------------------------------------------------------ *)

let compute_await_order t =
  let n = length t in
  let r = Relation.create n in
  Array.iter
    (fun (o : Op.t) ->
      match o.kind with
      | Op.Await { loc; value } ->
        (* the unique write installing the awaited value precedes the
           await; awaiting the initial value has no incoming edge *)
        List.iter
          (fun w -> if w <> o.id then Relation.add r w o.id)
          (writers_of t loc value)
      | _ -> ())
    t.ops;
  r

let await_order t =
  with_memo
    (fun t -> t.await_order_memo)
    (fun t v -> t.await_order_memo <- v)
    t compute_await_order

let sync_order t =
  Relation.union (lock_order t) (Relation.union (barrier_order t) (await_order t))

(* Structural covering of the lock order: the intra-epoch edges plus the
   surface edges between adjacent epochs (from the operations of an epoch
   with no intra-epoch successor to the operations of the next epoch with
   no intra-epoch predecessor). For lock orders this equals the canonical
   transitive reduction; unlike a generic matrix reduction it can also be
   produced edge-for-edge by the streaming checker, which keeps the
   offline and online PRAM relations identical. *)
let compute_lock_covering t =
  let n = length t in
  let r = Relation.create n in
  let by_lock = Hashtbl.create 8 in
  Array.iter
    (fun (o : Op.t) ->
      match Op.lock_of o with
      | Some l ->
        let prev = Option.value ~default:[] (Hashtbl.find_opt by_lock l) in
        Hashtbl.replace by_lock l (o :: prev)
      | None -> ())
    t.ops;
  Hashtbl.iter
    (fun _lock ops_of_l ->
      let sorted =
        List.sort
          (fun (a : Op.t) (b : Op.t) -> compare a.sync_seq b.sync_seq)
          ops_of_l
      in
      let epochs = Array.of_list (epochs_of_lock sorted) in
      (* intra-epoch edges, remembering which side of a pair each op is on *)
      let has_succ = Hashtbl.create 8 and has_pred = Hashtbl.create 8 in
      Array.iter
        (function
          | Write_epoch [ a; b ] ->
            Relation.add r a b;
            Hashtbl.replace has_succ a ();
            Hashtbl.replace has_pred b ()
          | Write_epoch _ -> ()
          | Read_epoch ops ->
            let open_locks = Hashtbl.create 4 in
            List.iter
              (fun id ->
                let o = t.ops.(id) in
                match o.kind with
                | Op.Read_lock _ -> Hashtbl.replace open_locks o.proc id
                | Op.Read_unlock _ -> (
                  match Hashtbl.find_opt open_locks o.proc with
                  | Some lid ->
                    Relation.add r lid id;
                    Hashtbl.replace has_succ lid ();
                    Hashtbl.replace has_pred id ();
                    Hashtbl.remove open_locks o.proc
                  | None -> ())
                | _ -> ())
              ops)
        epochs;
      (* surface edges between adjacent epochs *)
      for e = 0 to Array.length epochs - 2 do
        let srcs =
          List.filter
            (fun a -> not (Hashtbl.mem has_succ a))
            (epoch_ops epochs.(e))
        and dsts =
          List.filter
            (fun b -> not (Hashtbl.mem has_pred b))
            (epoch_ops epochs.(e + 1))
        in
        List.iter (fun a -> List.iter (fun b -> Relation.add r a b) dsts) srcs
      done)
    by_lock;
  r

(* Structural covering of the barrier order: for every operation [o] of
   process [j], an edge to every member of the first barrier episode(s)
   following [o] on [j], and from every member of the last episode(s)
   preceding [o] on [j]. Chaining through the per-process episode
   sequence reproduces the full barrier order under transitive closure
   while emitting O(members) edges per operation. *)
let barrier_episode_key (o : Op.t) =
  match o.kind with
  | Op.Barrier k -> Some ([], k)
  | Op.Barrier_group { episode; members } ->
    Some (List.sort_uniq compare members, episode)
  | _ -> None

let compute_barrier_covering t =
  let n = length t in
  let r = Relation.create n in
  let episodes = Hashtbl.create 8 in
  Array.iter
    (fun (o : Op.t) ->
      match barrier_episode_key o with
      | Some key ->
        let prev = Option.value ~default:[] (Hashtbl.find_opt episodes key) in
        Hashtbl.replace episodes key (o.id :: prev)
      | None -> ())
    t.ops;
  let members bid =
    match barrier_episode_key t.ops.(bid) with
    | Some key -> Option.value ~default:[] (Hashtbl.find_opt episodes key)
    | None -> []
  in
  let by_proc = Array.make t.procs [] in
  Array.iter (fun (o : Op.t) -> by_proc.(o.proc) <- o.id :: by_proc.(o.proc)) t.ops;
  Array.iter
    (fun ids ->
      let sorted =
        List.sort
          (fun a b -> compare t.ops.(a).inv_seq t.ops.(b).inv_seq)
          ids
      in
      (* greedy first-fit chain decomposition, as in the online engine:
         an op joins the first chain whose last response precedes its
         invocation *)
      let chains = ref [] (* (last_resp ref, ops-in-order ref) per chain *) in
      let chain_of = Hashtbl.create 8 in
      List.iter
        (fun id ->
          let o = t.ops.(id) in
          match
            List.find_opt (fun (last, _) -> !last < o.inv_seq) !chains
          with
          | Some ((last, ops_r) as c) ->
            last := o.resp_seq;
            ops_r := id :: !ops_r;
            Hashtbl.replace chain_of id c
          | None ->
            let c = (ref o.resp_seq, ref [ id ]) in
            chains := !chains @ [ c ];
            Hashtbl.replace chain_of id c)
        sorted;
      let barriers =
        List.filter (fun id -> barrier_episode_key t.ops.(id) <> None) sorted
      in
      (* first-following: for each barrier b, an edge from the maximal op
         of every chain in b's window (responses strictly between the
         previous barrier's invocation and b's invocation) to every
         member of b's episode. Non-maximal window ops reach the episode
         through program order within their own chain, which preserves
         every per-process filtered closure. *)
      List.iter
        (fun bid ->
          let b = t.ops.(bid) in
          let threshold =
            List.fold_left
              (fun acc bid' ->
                let b' = t.ops.(bid') in
                if bid' <> bid && b'.resp_seq < b.inv_seq then
                  max acc b'.inv_seq
                else acc)
              (-1) barriers
          in
          List.iter
            (fun (_, ops_r) ->
              let src =
                List.fold_left
                  (fun acc id ->
                    let o = t.ops.(id) in
                    if o.resp_seq > threshold && o.resp_seq < b.inv_seq then
                      match acc with
                      | Some best when t.ops.(best).resp_seq >= o.resp_seq -> acc
                      | _ -> Some id
                    else acc)
                  None !ops_r
              in
              match src with
              | Some src ->
                List.iter
                  (fun m -> if m <> src then Relation.add r src m)
                  (members bid)
              | None -> ())
            !chains)
        barriers;
      (* last-preceding: the first op of each chain after an episode gets
         edges from every member; later chain ops reach it through
         program order *)
      List.iter
        (fun (_, ops_r) ->
          let marker = ref None in
          List.iter
            (fun oid ->
              let o = t.ops.(oid) in
              let last_b =
                List.fold_left
                  (fun acc bid ->
                    let b = t.ops.(bid) in
                    if bid <> oid && b.resp_seq < o.inv_seq then
                      match acc with
                      | Some best when t.ops.(best).resp_seq >= b.resp_seq -> acc
                      | _ -> Some bid
                    else acc)
                  None barriers
              in
              if last_b <> !marker then begin
                marker := last_b;
                match last_b with
                | Some bid ->
                  List.iter
                    (fun m -> if m <> oid then Relation.add r m oid)
                    (members bid)
                | None -> ()
              end)
            (List.rev !ops_r))
        !chains)
    by_proc;
  r

let compute_sync_reduced t =
  Relation.union
    (compute_lock_covering t)
    (Relation.union (compute_barrier_covering t) (await_order t))

let sync_order_reduced t =
  with_memo
    (fun t -> t.sync_reduced_memo)
    (fun t v -> t.sync_reduced_memo <- v)
    t compute_sync_reduced

(* ------------------------------------------------------------------ *)
(* Causality                                                           *)
(* ------------------------------------------------------------------ *)

let causality_base t =
  Relation.union (program_order t) (Relation.union (reads_from t) (sync_order t))

let compute_causality t =
  let closure = Relation.transitive_closure (causality_base t) in
  (* a cyclic causality relation means some op precedes itself *)
  let cyclic = ref false in
  for i = 0 to length t - 1 do
    if Relation.mem closure i i then cyclic := true
  done;
  if !cyclic then invalid_arg "History.causality: cyclic causality relation";
  closure

let causality t =
  with_memo
    (fun t -> t.causality_memo)
    (fun t v -> t.causality_memo <- v)
    t compute_causality

let causality_is_acyclic t =
  match causality t with
  | (_ : Relation.t) -> true
  | exception Invalid_argument _ -> false

(* ------------------------------------------------------------------ *)
(* Process-relative relations                                          *)
(* ------------------------------------------------------------------ *)

let causal_relation t i =
  match t.causal_rel_memo.(i) with
  | Some r -> r
  | None ->
    let keep id =
      let o = t.ops.(id) in
      o.proc = i || Op.is_write_like o || Op.is_sync o
    in
    let r = Relation.restrict (causality t) keep in
    t.causal_rel_memo.(i) <- Some r;
    r

let pram_relation t i =
  match t.pram_rel_memo.(i) with
  | Some r -> r
  | None ->
    let touches_i rel =
      let n = length t in
      let out = Relation.create n in
      let add acc a b =
        ignore acc;
        if t.ops.(a).proc = i || t.ops.(b).proc = i then Relation.add out a b
      in
      Relation.fold rel add ();
      out
    in
    let base =
      Relation.union (program_order t)
        (Relation.union
           (touches_i (sync_order_reduced t))
           (touches_i (reads_from t)))
    in
    let closure = Relation.transitive_closure base in
    let keep id =
      let o = t.ops.(id) in
      not (Op.is_memory_read o && o.proc <> i)
    in
    let r = Relation.restrict closure keep in
    t.pram_rel_memo.(i) <- Some r;
    r

let group_relation t ~reader ~group =
  if not (List.mem reader group) then
    invalid_arg "History.group_relation: reader must be a group member";
  List.iter
    (fun m ->
      if m < 0 || m >= t.procs then
        invalid_arg "History.group_relation: member out of range")
    group;
  let in_group = Array.make t.procs false in
  List.iter (fun m -> in_group.(m) <- true) group;
  let touches_group rel =
    let n = length t in
    let out = Relation.create n in
    Relation.fold rel
      (fun () a b ->
        if in_group.(t.ops.(a).proc) || in_group.(t.ops.(b).proc) then
          Relation.add out a b)
      ();
    out
  in
  let base =
    Relation.union (program_order t)
      (Relation.union
         (touches_group (sync_order_reduced t))
         (touches_group (reads_from t)))
  in
  let closure = Relation.transitive_closure base in
  let keep id =
    let o = t.ops.(id) in
    not (Op.is_memory_read o && o.proc <> reader)
  in
  Relation.restrict closure keep

(* ------------------------------------------------------------------ *)
(* Well-formedness                                                     *)
(* ------------------------------------------------------------------ *)

type violation = { op_id : int option; reason : string }

let well_formedness_violations t =
  let violations = ref [] in
  let report ?op_id reason = violations := { op_id; reason } :: !violations in
  (* 1. event sequence numbers: invocation precedes response; per-process
     event numbers are distinct *)
  let seen_events = Hashtbl.create 64 in
  Array.iter
    (fun (o : Op.t) ->
      if o.inv_seq >= o.resp_seq then
        report ~op_id:o.id "invocation event does not precede response event";
      List.iter
        (fun seq ->
          let key = (o.proc, seq) in
          if Hashtbl.mem seen_events key then
            report ~op_id:o.id
              (Printf.sprintf "duplicate event sequence number %d on process %d"
                 seq o.proc)
          else Hashtbl.add seen_events key ())
        [ o.inv_seq; o.resp_seq ])
    t.ops;
  (* 2. at most one pending invocation per (process, object) at a time *)
  let object_of (o : Op.t) =
    match o.kind with
    | Op.Read { loc; _ } | Op.Write { loc; _ } | Op.Decrement { loc; _ }
    | Op.Await { loc; _ } ->
      Some ("loc:" ^ loc)
    | Op.Read_lock l | Op.Read_unlock l | Op.Write_lock l | Op.Write_unlock l ->
      Some ("lock:" ^ l)
    | Op.Barrier _ | Op.Barrier_group _ -> None
  in
  Array.iter
    (fun (o1 : Op.t) ->
      Array.iter
        (fun (o2 : Op.t) ->
          if o1.id < o2.id && o1.proc = o2.proc then
            match object_of o1, object_of o2 with
            | Some obj1, Some obj2 when obj1 = obj2 ->
              (* overlapping executions on the same object *)
              let overlap =
                not (o1.resp_seq < o2.inv_seq || o2.resp_seq < o1.inv_seq)
              in
              if overlap then
                report ~op_id:o2.id
                  (Printf.sprintf
                     "two pending invocations on %s by process %d (ops %d, %d)"
                     obj1 o1.proc o1.id o2.id)
            | _ -> ())
        t.ops)
    t.ops;
  (* 3. every unlock has a preceding matching lock by the same process,
     and global lock discipline holds in the manager grant order *)
  let by_lock = Hashtbl.create 8 in
  Array.iter
    (fun (o : Op.t) ->
      match Op.lock_of o with
      | Some l ->
        if o.sync_seq < 0 then
          report ~op_id:o.id "lock operation without a manager grant order";
        let prev = Option.value ~default:[] (Hashtbl.find_opt by_lock l) in
        Hashtbl.replace by_lock l (o :: prev)
      | None -> ())
    t.ops;
  Hashtbl.iter
    (fun lock ops_of_l ->
      let sorted =
        List.sort
          (fun (a : Op.t) (b : Op.t) -> compare a.sync_seq b.sync_seq)
          ops_of_l
      in
      let writer = ref None in
      let readers = Hashtbl.create 4 in
      List.iter
        (fun (o : Op.t) ->
          match o.kind with
          | Op.Write_lock _ ->
            if !writer <> None || Hashtbl.length readers > 0 then
              report ~op_id:o.id
                (Printf.sprintf "write lock %s granted while held" lock);
            writer := Some o.proc
          | Op.Write_unlock _ ->
            if !writer <> Some o.proc then
              report ~op_id:o.id
                (Printf.sprintf "write unlock of %s without matching lock" lock);
            writer := None
          | Op.Read_lock _ ->
            if !writer <> None then
              report ~op_id:o.id
                (Printf.sprintf "read lock %s granted while write-held" lock);
            Hashtbl.replace readers o.proc
              (1 + Option.value ~default:0 (Hashtbl.find_opt readers o.proc))
          | Op.Read_unlock _ -> (
            match Hashtbl.find_opt readers o.proc with
            | Some 1 -> Hashtbl.remove readers o.proc
            | Some k -> Hashtbl.replace readers o.proc (k - 1)
            | None ->
              report ~op_id:o.id
                (Printf.sprintf "read unlock of %s without matching lock" lock))
          | _ -> ())
        sorted)
    by_lock;
  (* 4. barrier operations are totally ordered w.r.t. all operations of
     their process *)
  let po = program_order t in
  Array.iter
    (fun (b : Op.t) ->
      match b.kind with
      | Op.Barrier _ | Op.Barrier_group _ ->
        Array.iter
          (fun (o : Op.t) ->
            if o.proc = b.proc && o.id <> b.id then
              if
                (not (Relation.mem po o.id b.id))
                && not (Relation.mem po b.id o.id)
              then
                report ~op_id:b.id
                  (Printf.sprintf "barrier op %d overlaps op %d of process %d"
                     b.id o.id b.proc))
          t.ops
      | _ -> ())
    t.ops;
  (* unique-writes assumption *)
  Hashtbl.iter
    (fun (loc, v) ids ->
      match ids with
      | [] | [ _ ] -> ()
      | _ ->
        report
          (Printf.sprintf "value %d written to %s by %d distinct operations" v
             loc (List.length ids)))
    t.writers;
  List.rev !violations

let is_well_formed t = well_formedness_violations t = []

let pp fmt t =
  Format.fprintf fmt "@[<v>history (%d processes, %d operations):@ " t.procs
    (length t);
  Array.iter (fun o -> Format.fprintf fmt "%a@ " Op.pp o) t.ops;
  Format.fprintf fmt "@]"
