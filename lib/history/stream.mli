(** Incremental structural engine for online consistency checking.

    Fed with recorder events (via {!sink}) or an already-materialized
    history (via {!feed_history}), the engine finalizes every operation
    exactly once, in an order that is topological for the full causality
    covering graph, and hands each finalized operation to the consumer
    together with its chain position and covering in-edges:

    - {!U} edges form the program-order chain covering (greedy first-fit
      chain decomposition, identical to the offline [Hb] index);
    - {!S} edges form the structural sync covering (lock epoch surfaces
      and pairs, barrier first-following / last-preceding episode edges),
      edge-for-edge identical to [History.sync_order_reduced];
    - {!RF} edges are reads-from, resolved through a per-(location,
      value) writer registry.

    Every per-reader consistency relation of the paper is the transitive
    closure of a subgraph of this covering, so a checker can fold
    per-family chain clocks in a single pass over [on_finalize].

    Memory is bounded by the in-flight window: once a finalized
    operation's last internal reference is dropped it is retired
    ([on_retire]) and the engine forgets it. Consumers that need longer-
    lived per-operation state (e.g. writer clock summaries) must copy it
    out during [on_finalize].

    Restrictions for exact offline agreement (see DESIGN.md): unique
    writes per location, no writes of the initial value 0, no reuse of
    plain barrier indices, no overlapping barriers on one process. *)

type edge =
  | U of int  (** program-order covering edge from the given op id *)
  | S of int  (** sync-order covering edge from the given op id *)
  | RF of int  (** reads-from edge from the given writer op id *)

type info = {
  op : Op.t;
  chain : int;  (** global chain id of the operation *)
  rank : int;  (** position of the operation on its chain, from 0 *)
  in_edges : edge list;  (** covering in-edges; valid during the callback *)
}

type callbacks = {
  on_finalize : info -> unit;
      (** called exactly once per operation, in an order topological for
          the covering graph; [U]/[S] sources are still resident *)
  on_retire : int -> unit;
      (** the operation left the in-flight window; per-op state may be
          dropped by consumers that mirror engine residence *)
  on_dead_value : loc:Op.location -> value:Op.value -> unit;
      (** forwarded stability notification: no op will read this value
          again and all its past readers have finalized *)
  on_end : unit -> unit;  (** the stream is complete *)
}

type t

(** [create ~procs cb] makes an engine for processes [0..procs-1]. *)
val create : procs:int -> callbacks -> t

(** [sink t] adapts the engine to a {!Sink.t} for [Recorder.subscribe].
    The engine finalizes operations as their causal covering past
    completes and raises [Invalid_argument] on close if the recorded
    causality is cyclic. *)
val sink : t -> Sink.t

(** [replay t h] replays a materialized history through the engine
    (invocations in process order, responses gated on id order) and
    closes it. Raises [Invalid_argument] if the history's event
    sequencing is inconsistent or its causality cyclic. *)
val replay : t -> History.t -> unit

(** [feed_history ~callbacks h] is {!replay} on a fresh engine. *)
val feed_history : callbacks:callbacks -> History.t -> t

(** {2 Statistics} *)

val procs : t -> int

(** Number of concurrency chains allocated so far. *)
val chains : t -> int

(** Operations whose response has been seen. *)
val ops_seen : t -> int

(** Operations finalized so far. *)
val finalized : t -> int

(** Operations currently resident in the in-flight window. *)
val resident : t -> int

(** High-water mark of {!resident}. *)
val max_resident : t -> int
