type spec = { kind : Op.kind; sync_seq : int }

let mk ?(seq = -1) kind = { kind; sync_seq = seq }

let w loc value = mk (Op.Write { loc; value })
let rp loc value = mk (Op.Read { loc; label = Op.PRAM; value })
let rc loc value = mk (Op.Read { loc; label = Op.Causal; value })
let rg members loc value = mk (Op.Read { loc; label = Op.Group members; value })
let dec loc ~amount ~observed = mk (Op.Decrement { loc; amount; observed })
let wl ~seq l = mk ~seq (Op.Write_lock l)
let wu ~seq l = mk ~seq (Op.Write_unlock l)
let rl ~seq l = mk ~seq (Op.Read_lock l)
let ru ~seq l = mk ~seq (Op.Read_unlock l)
let bar k = mk (Op.Barrier k)
let barg episode members = mk (Op.Barrier_group { episode; members })
let await loc value = mk (Op.Await { loc; value })

let make ~procs per_proc =
  if List.length per_proc <> procs then
    invalid_arg "Dsl.make: per-process list length mismatch";
  let recorder = Recorder.create ~procs () in
  List.iteri
    (fun proc specs ->
      List.iter
        (fun { kind; sync_seq } ->
          ignore (Recorder.record recorder ~proc ~sync_seq kind))
        specs)
    per_proc;
  Recorder.history recorder
