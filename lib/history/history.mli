(** Global histories and their derived relations (paper, Section 3).

    A history is a pair [(Op, ⇝)]: the operations of all processes plus a
    causality relation [⇝] defined as the transitive closure of the union
    of program order [→], the reads-from relation [↦], and the
    synchronization order [⤇] (itself the union of the lock, barrier and
    await orders).

    All relations returned by this module are {!Mc_util.Relation.t} values
    over operation ids. *)

type t

(** [create ~procs ops] builds a history over processes [0..procs-1].
    Operation ids must equal their index in [ops]. Raises
    [Invalid_argument] if ids are out of order or a process id is out of
    range. *)
val create : procs:int -> Op.t array -> t

val procs : t -> int
val ops : t -> Op.t array
val length : t -> int
val op : t -> int -> Op.t

(** [initial_value h loc] is the value a location holds before any write
    (always 0 in this implementation). *)
val initial_value : t -> Op.location -> Op.value

(** {1 Well-formedness (the four conditions of Section 3)}

    A local history is well-formed when: the interface ordering is
    consistent with the program (encoded here as: event sequence numbers
    are distinct and each invocation precedes its response); at any time
    at most one invocation is pending per object; every unlock has a
    preceding matching lock by the same process; and barrier operations
    are totally ordered with respect to all operations of the process. *)

type violation = { op_id : int option; reason : string }

(** [well_formedness_violations h] returns all violations found, empty if
    well-formed. Also validates global lock discipline (write locks
    exclusive, readers excluded while a writer holds the lock) and the
    unique-writes-per-location assumption of Section 3. *)
val well_formedness_violations : t -> violation list

val is_well_formed : t -> bool

(** {1 Derived relations} *)

(** [program_order h] is [→]: the union of the per-process partial orders.
    [o1 →i o2] iff both are by process [i] and the response event of [o1]
    precedes the invocation event of [o2]. *)
val program_order : t -> Mc_util.Relation.t

(** [reads_from h] is [↦]: edges from each write-like operation to the
    operations that return its value (unique-writes assumption). Reads of
    the initial value have no incoming edge. *)
val reads_from : t -> Mc_util.Relation.t

(** [lock_order h] is [⤇lock]: built per lock object from the
    manager-assigned grant order ([sync_seq]). Operations are grouped into
    epochs — one write epoch per critical section, maximal groups of
    overlapping read locks — with every operation of an earlier epoch
    ordered before every operation of a later epoch. *)
val lock_order : t -> Mc_util.Relation.t

(** [barrier_order h] is [⤇bar]: for every operation [o] of process [j]
    with [o →j bkj], an edge [o ⤇ bki] for every process [i], and
    symmetrically from [bki] to every operation after [bkj] in [→j]. *)
val barrier_order : t -> Mc_util.Relation.t

(** [await_order h] is [⤇await]: an edge from the unique write [w(x)v] to
    every [await(x = v)]. *)
val await_order : t -> Mc_util.Relation.t

(** [sync_order h] is [⤇]: the union of the three synchronization
    orders. *)
val sync_order : t -> Mc_util.Relation.t

(** [sync_order_reduced h] is [⤇p]: the union of structural coverings of
    the three synchronization orders, as used by the PRAM order
    (Definition 3, step 1). Each covering has the same transitive closure
    as the order it covers while staying sparse: for locks it is exactly
    the canonical transitive reduction (intra-epoch edges plus the surface
    edges between adjacent epochs); for barriers each operation connects
    to the members of the episode(s) immediately following and preceding
    it on its own process; the await order is already reduced. The
    coverings are defined edge-for-edge so the streaming online checker
    reproduces them incrementally. *)
val sync_order_reduced : t -> Mc_util.Relation.t

(** [causality h] is [⇝]: the transitive closure of
    [→ ∪ ↦ ∪ ⤇]. Raises [Invalid_argument] if the result is cyclic (the
    paper restricts attention to histories with acyclic causality). *)
val causality : t -> Mc_util.Relation.t

(** [causality_is_acyclic h] checks acyclicity without raising. *)
val causality_is_acyclic : t -> bool

(** {1 Process-relative relations (Definitions 2 and 3)} *)

(** [causal_relation h i] is [⇝i,C]: the causality relation restricted to
    the operations that may affect process [i] — the operations of [i]
    plus all write-like and synchronization operations of other
    processes. *)
val causal_relation : t -> int -> Mc_util.Relation.t

(** [pram_relation h i] is [⇝i,P]: the transitive closure of
    [→ ∪ ⤇p,i ∪ ↦i] (reduced sync edges and reads-from edges incident to
    process [i]) projected on all operations excluding reads not of
    process [i]. *)
val pram_relation : t -> int -> Mc_util.Relation.t

(** [group_relation h ~reader ~group] is [⇝i,G], the Section-3.2
    interpolation between the two: the transitive closure of program
    order together with the reduced synchronization edges and reads-from
    edges incident to {e any} member of [group], projected on all
    operations excluding memory reads not of [reader]. [group = [reader]]
    coincides with {!pram_relation}; a group of all processes yields the
    same read verdicts as {!causal_relation}. [reader] must be a
    member. *)
val group_relation : t -> reader:int -> group:int list -> Mc_util.Relation.t

(** {1 Writes} *)

(** [writers_of h loc v] lists ids of write-like operations installing
    value [v] at [loc]. With unique writes there is at most one. *)
val writers_of : t -> Op.location -> Op.value -> int list

(** [cached_relation h key compute] memoizes [compute ()] on the history
    under [key]. Histories are immutable, so derived relations built by
    other layers (e.g. the per-(model, reader) relations of
    [Mc_consistency.Lattice]) can be cached here without recomputation. *)
val cached_relation : t -> string -> (unit -> Mc_util.Relation.t) -> Mc_util.Relation.t

val pp : Format.formatter -> t -> unit
