(** A small DSL for writing histories by hand in tests and examples.

    A history is given as one operation list per process; operations of a
    process are totally ordered in program order, in list order. Lock
    operations take an explicit [seq] argument giving the global grant
    order at the lock manager (ties across processes are what make
    hand-written interleavings expressive). *)

type spec

(** {2 Memory operations} *)

val w : Op.location -> Op.value -> spec
(** write *)

val rp : Op.location -> Op.value -> spec
(** PRAM-labelled read returning the given value *)

val rc : Op.location -> Op.value -> spec
(** Causal-labelled read returning the given value *)

val rg : int list -> Op.location -> Op.value -> spec
(** Group-labelled read (Section 3.2 generalization): causality is
    maintained across the given group of processes, which must include
    the reading process. *)

val dec : Op.location -> amount:Op.value -> observed:Op.value -> spec
(** counter-object decrement *)

(** {2 Synchronization operations} *)

val wl : seq:int -> Op.lock_name -> spec
val wu : seq:int -> Op.lock_name -> spec
val rl : seq:int -> Op.lock_name -> spec
val ru : seq:int -> Op.lock_name -> spec
val bar : int -> spec

(** [barg episode members] — a subset barrier (Section 3.1.2). *)
val barg : int -> int list -> spec
val await : Op.location -> Op.value -> spec

(** [make ~procs per_proc] builds the history. [per_proc] must have
    [procs] elements; element [i] is process [i]'s program. *)
val make : procs:int -> spec list list -> History.t
