(** Streaming consumers of recorded operation events.

    A {!Recorder} is an event source: every invocation and every
    completed operation is pushed to the subscribed sinks in real-time
    order, so consumers (the full-materialize store, the online
    consistency checker, the online happens-before index) can process a
    run incrementally instead of materializing the whole history first.

    Event order guarantees, per recorder:
    - [on_inv] fires when an operation invokes ([Recorder.record] and
      [Recorder.start]), before the matching [on_op]; [seq] is the
      process-local invocation event number, which together with [proc]
      identifies the later completed operation ([Op.t.inv_seq]).
    - [on_op] fires when an operation completes, in completion order —
      which is also op-id order.
    - [on_dead loc value] is a stability notification forwarded from the
      runtime: no operation recorded after this event will ever read
      [value] at [loc] again (the value has been superseded at every
      replica), so per-value checker state may be reclaimed.
    - [on_close] fires exactly once, when the run ends. *)

type t = {
  on_inv : proc:int -> seq:int -> unit;
  on_op : Op.t -> unit;
  on_dead : loc:Op.location -> value:Op.value -> unit;
  on_close : unit -> unit;
}

(** A sink that ignores every event. *)
val null : t

(** [make ?on_inv ?on_dead ?on_close on_op] builds a sink, defaulting the
    omitted callbacks to no-ops. *)
val make :
  ?on_inv:(proc:int -> seq:int -> unit) ->
  ?on_dead:(loc:Op.location -> value:Op.value -> unit) ->
  ?on_close:(unit -> unit) ->
  (Op.t -> unit) ->
  t
