(* An event sink fed by a {!Recorder}. See sink.mli. *)

type t = {
  on_inv : proc:int -> seq:int -> unit;
  on_op : Op.t -> unit;
  on_dead : loc:Op.location -> value:Op.value -> unit;
  on_close : unit -> unit;
}

let null =
  {
    on_inv = (fun ~proc:_ ~seq:_ -> ());
    on_op = (fun _ -> ());
    on_dead = (fun ~loc:_ ~value:_ -> ());
    on_close = (fun () -> ());
  }

let make ?(on_inv = null.on_inv) ?(on_dead = null.on_dead)
    ?(on_close = null.on_close) on_op =
  { on_inv; on_op; on_dead; on_close }
