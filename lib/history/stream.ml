(* Incremental structural engine behind the online consistency pipeline.

   The engine consumes recorder events ([Sink.on_inv] / [Sink.on_op]) and
   finalizes every operation exactly once, in an order that is topological
   for the full causality covering graph:

   - [U] edges: the program-order chain covering (edges from the last
     completed operation of every chain of the process, captured at
     invocation time) — the same greedy first-fit decomposition the
     offline [Hb] index uses, so chains and ranks agree.
   - [S] edges: the structural sync covering — lock epoch surfaces and
     intra-epoch pairs (identical to [History.sync_order_reduced]'s lock
     part), plus barrier first-following / last-preceding episode edges
     reduced to per-chain extremal operations (identical to the offline
     barrier covering).
   - [RF] edges: reads-from, resolved through a per-(location, value)
     writer registry; a read of a not-yet-written value parks until its
     writer completes (or until close, when no writer exists).

   Since every per-reader family relation is the closure of a subgraph of
   this covering, one finalization order serves every family: a checker
   can fold per-family clocks in a single pass over [on_finalize].

   Memory is bounded by the in-flight window: a finalized node is
   retired — removed from the engine and announced via [on_retire] — as
   soon as its reference count drops to zero.  References are held by
   (a) the chain tail (released when a later op completes on the chain),
   (b) pending covering in-edges (released when the dependent finalizes),
   (c) invocation snapshots (released when the invoking op completes),
   (d) episode pre-sources and members (released when the episode closes
   resp. stops being any process's latest episode), and
   (e) the lock machine's current-epoch members and surface sources
   (released as epochs close and are superseded).

   Restrictions (see DESIGN.md): values are written at most once per
   location, the initial value 0 is never written, barrier indices are
   not reused across rounds, and per-process barriers do not overlap.
   Histories violating these are still processed, but the streaming
   verdicts may diverge from the offline checker. *)

type edge = U of int | S of int | RF of int

type info = { op : Op.t; chain : int; rank : int; in_edges : edge list }

type callbacks = {
  on_finalize : info -> unit;
  on_retire : int -> unit;
  on_dead_value : loc:Op.location -> value:Op.value -> unit;
  on_end : unit -> unit;
}

type episode = {
  e_expected : int;
  mutable e_members : int list;
  mutable e_pre : int list; (* first-following sources, ref-held *)
  mutable e_waiters : int list; (* ops awaiting last-preceding edges *)
  mutable e_closed : bool;
  mutable e_holds : int; (* latest-episode + invocation holds *)
  mutable e_released : bool;
}

type chain = {
  c_gid : int;
  mutable c_busy : bool;
  mutable c_count : int;
  mutable c_last : int; (* last completed op id on this chain, -1 none *)
  mutable c_last_resp : int;
  mutable c_lp_mark : episode option;
}

type inv_info = {
  i_chain : chain;
  i_srcs : (int * int) list; (* (id, resp_seq) last completed per chain *)
  i_lp : episode option; (* episode owed last-preceding edges, held *)
}

type pstate = {
  mutable p_chains : chain list; (* creation order: first-fit target *)
  p_open : (int, inv_info) Hashtbl.t; (* inv_seq -> pending invocation *)
  mutable p_last_barrier_inv : int;
  mutable p_last_episode : episode option;
}

type node = {
  n_op : Op.t;
  n_chain : int;
  n_rank : int;
  mutable n_in : edge list;
  mutable n_waits : int;
  mutable n_deps : int list;
  mutable n_final : bool;
  mutable n_refs : int;
}

type read_run = {
  mutable run_ops : int list; (* reverse grant order *)
  run_open : (int, int) Hashtbl.t; (* proc -> open read lock id *)
  mutable run_matched : int list; (* read locks with an intra successor *)
}

type epoch_state = Idle | Write_open of int | Read_run of read_run

type lockstate = {
  mutable l_next : int; (* next expected grant number *)
  l_buffer : (int, int) Hashtbl.t; (* out-of-order grants *)
  mutable l_prev_srcs : int list; (* surface sources, ref-held *)
  mutable l_cur : epoch_state;
}

type vstate = {
  mutable v_writers : int list;
  mutable v_parked : int list; (* completed readers awaiting the writer *)
  mutable v_pending : int; (* completed, not yet finalized readers *)
  mutable v_dead : bool;
  mutable v_dead_sent : bool;
}

type t = {
  cb : callbacks;
  n_procs : int;
  nodes : (int, node) Hashtbl.t;
  pstates : pstate array;
  mutable n_chains : int;
  episodes : (int list * int, episode) Hashtbl.t;
  locks : (string, lockstate) Hashtbl.t;
  values : (Op.location * Op.value, vstate) Hashtbl.t;
  queue : int Queue.t;
  mutable draining : bool;
  mutable ops_seen : int;
  mutable n_finalized : int;
  mutable max_resident : int;
  mutable closed : bool;
}

let create ~procs cb =
  if procs <= 0 then invalid_arg "Stream.create: need at least one process";
  {
    cb;
    n_procs = procs;
    nodes = Hashtbl.create 256;
    pstates =
      Array.init procs (fun _ ->
          {
            p_chains = [];
            p_open = Hashtbl.create 4;
            p_last_barrier_inv = -1;
            p_last_episode = None;
          });
    n_chains = 0;
    episodes = Hashtbl.create 8;
    locks = Hashtbl.create 8;
    values = Hashtbl.create 64;
    queue = Queue.create ();
    draining = false;
    ops_seen = 0;
    n_finalized = 0;
    max_resident = 0;
    closed = false;
  }

let procs t = t.n_procs
let chains t = t.n_chains
let ops_seen t = t.ops_seen
let finalized t = t.n_finalized
let resident t = Hashtbl.length t.nodes
let max_resident t = t.max_resident

let node t id =
  match Hashtbl.find_opt t.nodes id with
  | Some n -> n
  | None -> invalid_arg (Printf.sprintf "Stream: unknown operation %d" id)

(* ------------------------------------------------------------------ *)
(* Retirement refcounting                                              *)
(* ------------------------------------------------------------------ *)

let maybe_retire t id =
  match Hashtbl.find_opt t.nodes id with
  | Some n when n.n_final && n.n_refs = 0 ->
    Hashtbl.remove t.nodes id;
    t.cb.on_retire id
  | _ -> ()

let incref t id =
  let n = node t id in
  n.n_refs <- n.n_refs + 1

let decref t id =
  let n = node t id in
  n.n_refs <- n.n_refs - 1;
  if n.n_refs = 0 then maybe_retire t id

(* ------------------------------------------------------------------ *)
(* Edges and finalization                                              *)
(* ------------------------------------------------------------------ *)

(* Covering (U/S) edge: the source must stay resident until the dependent
   finalizes, so the checker can join its clocks. *)
let add_cov t (n : node) src ~sync =
  n.n_in <- (if sync then S src else U src) :: n.n_in;
  incref t src;
  let s = node t src in
  if not s.n_final then begin
    s.n_deps <- n.n_op.Op.id :: s.n_deps;
    n.n_waits <- n.n_waits + 1
  end

(* Reads-from edge: no reference — the checker keeps per-value writer
   summaries alive independently of node residence. *)
let add_rf t (n : node) src =
  n.n_in <- RF src :: n.n_in;
  match Hashtbl.find_opt t.nodes src with
  | Some s when not s.n_final ->
    s.n_deps <- n.n_op.Op.id :: s.n_deps;
    n.n_waits <- n.n_waits + 1
  | _ -> ()

let send_dead t loc value vs =
  if not vs.v_dead_sent then begin
    vs.v_dead_sent <- true;
    Hashtbl.remove t.values (loc, value);
    t.cb.on_dead_value ~loc ~value
  end

let finalize t (n : node) =
  n.n_final <- true;
  t.n_finalized <- t.n_finalized + 1;
  t.cb.on_finalize
    { op = n.n_op; chain = n.n_chain; rank = n.n_rank; in_edges = n.n_in };
  List.iter (function U s | S s -> decref t s | RF _ -> ()) n.n_in;
  n.n_in <- [];
  (match Op.reads_value n.n_op with
  | Some (loc, v) -> (
    match Hashtbl.find_opt t.values (loc, v) with
    | Some vs ->
      vs.v_pending <- vs.v_pending - 1;
      if vs.v_dead && vs.v_pending <= 0 then send_dead t loc v vs
    | None -> ())
  | None -> ());
  List.iter
    (fun d ->
      let dn = node t d in
      dn.n_waits <- dn.n_waits - 1;
      if dn.n_waits = 0 && not dn.n_final then Queue.add d t.queue)
    n.n_deps;
  n.n_deps <- [];
  maybe_retire t n.n_op.Op.id

let drain t =
  if not t.draining then begin
    t.draining <- true;
    while not (Queue.is_empty t.queue) do
      let id = Queue.pop t.queue in
      let n = node t id in
      if not n.n_final then finalize t n
    done;
    t.draining <- false
  end

let enqueue_if_ready t (n : node) =
  if (not n.n_final) && n.n_waits = 0 then begin
    Queue.add n.n_op.Op.id t.queue;
    drain t
  end

let release_slot t id =
  let n = node t id in
  n.n_waits <- n.n_waits - 1;
  enqueue_if_ready t n

(* ------------------------------------------------------------------ *)
(* Barrier episodes                                                    *)
(* ------------------------------------------------------------------ *)

let episode_key (op : Op.t) =
  match op.kind with
  | Op.Barrier k -> Some (([], k), None)
  | Op.Barrier_group { episode; members } ->
    let m = List.sort_uniq compare members in
    Some ((m, episode), Some (List.length m))
  | _ -> None

let find_episode t key expected =
  match Hashtbl.find_opt t.episodes key with
  | Some e -> e
  | None ->
    let e =
      {
        e_expected = expected;
        e_members = [];
        e_pre = [];
        e_waiters = [];
        e_closed = false;
        e_holds = 0;
        e_released = false;
      }
    in
    Hashtbl.add t.episodes key e;
    e

let maybe_release_episode t e =
  if e.e_closed && e.e_holds = 0 && not e.e_released then begin
    e.e_released <- true;
    List.iter (fun m -> decref t m) e.e_members
  end

let episode_hold e = e.e_holds <- e.e_holds + 1

let episode_unhold t e =
  e.e_holds <- e.e_holds - 1;
  maybe_release_episode t e

let close_episode t e =
  if not e.e_closed then begin
    e.e_closed <- true;
    (* first-following edges: windowed chain-maximal sources into every
       member; other window ops reach the episode through program order *)
    List.iter
      (fun m ->
        let mn = node t m in
        List.iter (fun s -> if s <> m then add_cov t mn s ~sync:true) e.e_pre)
      e.e_members;
    List.iter (fun s -> decref t s) e.e_pre;
    e.e_pre <- [];
    (* last-preceding edges owed to ops that completed before the episode
       was fully assembled *)
    List.iter
      (fun w ->
        let wn = node t w in
        List.iter
          (fun m -> if m <> w then add_cov t wn m ~sync:true)
          e.e_members;
        release_slot t w)
      e.e_waiters;
    e.e_waiters <- [];
    List.iter (fun m -> release_slot t m) e.e_members;
    maybe_release_episode t e
  end

(* ------------------------------------------------------------------ *)
(* Lock epochs                                                         *)
(* ------------------------------------------------------------------ *)

let lockstate t l =
  match Hashtbl.find_opt t.locks l with
  | Some ls -> ls
  | None ->
    let ls =
      {
        l_next = 0;
        l_buffer = Hashtbl.create 4;
        l_prev_srcs = [];
        l_cur = Idle;
      }
    in
    Hashtbl.add t.locks l ls;
    ls

let lock_surface t ls (n : node) =
  List.iter (fun s -> add_cov t n s ~sync:true) ls.l_prev_srcs

(* Close the bookkeeping of an epoch: every member held one machine
   reference; the surface sources carry theirs over as the new previous
   surface, the rest are dropped along with the old surface. *)
let set_prev_srcs t ls srcs members =
  List.iter (fun id -> if not (List.mem id srcs) then decref t id) members;
  List.iter (fun id -> decref t id) ls.l_prev_srcs;
  ls.l_prev_srcs <- srcs

let close_epoch t ls =
  match ls.l_cur with
  | Idle -> ()
  | Write_open wl ->
    ls.l_cur <- Idle;
    set_prev_srcs t ls [ wl ] [ wl ]
  | Read_run rr ->
    ls.l_cur <- Idle;
    let members = List.rev rr.run_ops in
    let srcs =
      List.filter (fun id -> not (List.mem id rr.run_matched)) members
    in
    set_prev_srcs t ls srcs members

(* One grant-ordered step of the epoch state machine; mirrors
   [History.epochs_of_lock] walk-for-walk so the surface and intra-epoch
   edges match the offline covering exactly. *)
let rec lock_step t ls (n : node) =
  let id = n.n_op.Op.id in
  match (ls.l_cur, n.n_op.Op.kind) with
  | Write_open wl, Op.Write_unlock _
    when (node t wl).n_op.Op.proc = n.n_op.Op.proc ->
    incref t id;
    add_cov t n wl ~sync:true;
    ls.l_cur <- Idle;
    set_prev_srcs t ls [ id ] [ wl; id ]
  | Write_open _, _ ->
    close_epoch t ls;
    lock_step t ls n
  | Read_run _, Op.Write_lock _ ->
    close_epoch t ls;
    lock_step t ls n
  | Idle, Op.Write_lock _ ->
    incref t id;
    lock_surface t ls n;
    ls.l_cur <- Write_open id
  | (Idle | Read_run _), Op.Write_unlock _ ->
    (* stray unlock: skipped by the offline epoch walk as well *)
    ()
  | Idle, (Op.Read_lock _ | Op.Read_unlock _) ->
    incref t id;
    lock_surface t ls n;
    let rr =
      { run_ops = [ id ]; run_open = Hashtbl.create 4; run_matched = [] }
    in
    (match n.n_op.Op.kind with
    | Op.Read_lock _ -> Hashtbl.replace rr.run_open n.n_op.Op.proc id
    | _ -> ());
    ls.l_cur <- Read_run rr
  | Read_run rr, Op.Read_lock _ ->
    incref t id;
    rr.run_ops <- id :: rr.run_ops;
    lock_surface t ls n;
    Hashtbl.replace rr.run_open n.n_op.Op.proc id
  | Read_run rr, Op.Read_unlock _ ->
    incref t id;
    rr.run_ops <- id :: rr.run_ops;
    (match Hashtbl.find_opt rr.run_open n.n_op.Op.proc with
    | Some rl ->
      add_cov t n rl ~sync:true;
      rr.run_matched <- rl :: rr.run_matched;
      Hashtbl.remove rr.run_open n.n_op.Op.proc
    | None -> lock_surface t ls n)
  | ( _,
      ( Op.Read _ | Op.Write _ | Op.Decrement _ | Op.Barrier _
      | Op.Barrier_group _ | Op.Await _ ) ) ->
    assert false

let rec drain_lock_buffer t ls =
  match Hashtbl.find_opt ls.l_buffer ls.l_next with
  | Some id ->
    Hashtbl.remove ls.l_buffer ls.l_next;
    ls.l_next <- ls.l_next + 1;
    lock_step t ls (node t id);
    release_slot t id;
    drain_lock_buffer t ls
  | None -> ()

(* ------------------------------------------------------------------ *)
(* Values                                                              *)
(* ------------------------------------------------------------------ *)

let vstate t loc v =
  let key = (loc, v) in
  match Hashtbl.find_opt t.values key with
  | Some vs -> vs
  | None ->
    let vs =
      {
        v_writers = [];
        v_parked = [];
        v_pending = 0;
        v_dead = false;
        v_dead_sent = false;
      }
    in
    Hashtbl.add t.values key vs;
    vs

(* ------------------------------------------------------------------ *)
(* Event handlers                                                      *)
(* ------------------------------------------------------------------ *)

let handle_inv t ~proc ~seq =
  if proc < 0 || proc >= t.n_procs then
    invalid_arg (Printf.sprintf "Stream: process %d out of range" proc);
  let ps = t.pstates.(proc) in
  let chain =
    match List.find_opt (fun c -> not c.c_busy) ps.p_chains with
    | Some c -> c
    | None ->
      let c =
        {
          c_gid = t.n_chains;
          c_busy = false;
          c_count = 0;
          c_last = -1;
          c_last_resp = -1;
          c_lp_mark = None;
        }
      in
      t.n_chains <- t.n_chains + 1;
      ps.p_chains <- ps.p_chains @ [ c ];
      c
  in
  chain.c_busy <- true;
  let srcs =
    List.filter_map
      (fun c -> if c.c_last >= 0 then Some (c.c_last, c.c_last_resp) else None)
      ps.p_chains
  in
  List.iter (fun (s, _) -> incref t s) srcs;
  let lp =
    match ps.p_last_episode with
    | Some e ->
      let marked =
        match chain.c_lp_mark with Some e' -> e' == e | None -> false
      in
      if marked then None
      else begin
        chain.c_lp_mark <- Some e;
        episode_hold e;
        Some e
      end
    | None -> None
  in
  Hashtbl.replace ps.p_open seq { i_chain = chain; i_srcs = srcs; i_lp = lp }

let handle_op t (op : Op.t) =
  let ps = t.pstates.(op.proc) in
  let ii =
    match Hashtbl.find_opt ps.p_open op.inv_seq with
    | Some ii ->
      Hashtbl.remove ps.p_open op.inv_seq;
      ii
    | None -> invalid_arg "Stream: response without matching invocation"
  in
  let chain = ii.i_chain in
  let n =
    {
      n_op = op;
      n_chain = chain.c_gid;
      n_rank = chain.c_count;
      n_in = [];
      n_waits = 0;
      n_deps = [];
      n_final = false;
      n_refs = 0;
    }
  in
  Hashtbl.add t.nodes op.id n;
  t.ops_seen <- t.ops_seen + 1;
  let r = Hashtbl.length t.nodes in
  if r > t.max_resident then t.max_resident <- r;
  (* program-order chain covering *)
  List.iter (fun (s, _) -> add_cov t n s ~sync:false) ii.i_srcs;
  chain.c_count <- chain.c_count + 1;
  incref t op.id;
  (* chain-tail hold *)
  if chain.c_last >= 0 then decref t chain.c_last;
  chain.c_last <- op.id;
  chain.c_last_resp <- op.resp_seq;
  chain.c_busy <- false;
  (* barrier membership *)
  let close_after = ref None in
  (match episode_key op with
  | Some (key, expected) ->
    let e = find_episode t key (Option.value ~default:t.n_procs expected) in
    if not e.e_closed then begin
      e.e_members <- op.id :: e.e_members;
      incref t op.id;
      (* membership hold *)
      n.n_waits <- n.n_waits + 1;
      (* episode slot *)
      List.iter
        (fun (s, resp) ->
          if resp > ps.p_last_barrier_inv && not (List.mem s e.e_pre) then begin
            incref t s;
            e.e_pre <- s :: e.e_pre
          end)
        ii.i_srcs;
      if List.length e.e_members >= e.e_expected then close_after := Some e
    end;
    ps.p_last_barrier_inv <- max ps.p_last_barrier_inv op.inv_seq;
    (match ps.p_last_episode with
    | Some old when old == e -> ()
    | old ->
      episode_hold e;
      ps.p_last_episode <- Some e;
      (match old with Some o -> episode_unhold t o | None -> ()))
  | None -> ());
  (* release the invocation snapshot *)
  List.iter (fun (s, _) -> decref t s) ii.i_srcs;
  (* last-preceding episode edges (first op per chain after the episode) *)
  (match ii.i_lp with
  | Some e ->
    if e.e_closed then
      List.iter
        (fun m -> if m <> op.id then add_cov t n m ~sync:true)
        e.e_members
    else begin
      e.e_waiters <- op.id :: e.e_waiters;
      n.n_waits <- n.n_waits + 1
    end;
    episode_unhold t e
  | None -> ());
  (* reads-from *)
  (match Op.reads_value op with
  | Some (loc, v) ->
    let vs = vstate t loc v in
    vs.v_pending <- vs.v_pending + 1;
    if vs.v_writers <> [] then
      List.iter (fun w -> if w <> op.id then add_rf t n w) vs.v_writers
    else if v <> 0 then begin
      vs.v_parked <- op.id :: vs.v_parked;
      n.n_waits <- n.n_waits + 1
    end
  | None -> ());
  (* writer registration and parked-read release *)
  (match Op.writes_value op with
  | Some (loc, v) ->
    let vs = vstate t loc v in
    vs.v_writers <- op.id :: vs.v_writers;
    List.iter
      (fun rid ->
        if rid = op.id then n.n_waits <- n.n_waits - 1
        else begin
          let rn = node t rid in
          (* the park slot becomes the dependency wait on this writer *)
          rn.n_in <- RF op.id :: rn.n_in;
          n.n_deps <- rid :: n.n_deps
        end)
      vs.v_parked;
    vs.v_parked <- []
  | None -> ());
  (* lock grant ordering *)
  (match Op.lock_of op with
  | Some l ->
    let ls = lockstate t l in
    n.n_waits <- n.n_waits + 1;
    (* machine slot *)
    if op.sync_seq = ls.l_next then begin
      ls.l_next <- ls.l_next + 1;
      lock_step t ls n;
      release_slot t op.id;
      drain_lock_buffer t ls
    end
    else Hashtbl.replace ls.l_buffer op.sync_seq op.id
  | None -> ());
  (match !close_after with Some e -> close_episode t e | None -> ());
  enqueue_if_ready t n

let handle_dead t ~loc ~value =
  let vs = vstate t loc value in
  vs.v_dead <- true;
  if vs.v_pending <= 0 then send_dead t loc value vs

let handle_close t =
  if not t.closed then begin
    t.closed <- true;
    (* flush lock reorder buffers in grant order, then close open epochs *)
    Hashtbl.iter
      (fun _ ls ->
        let rest =
          Hashtbl.fold (fun seq id acc -> (seq, id) :: acc) ls.l_buffer []
        in
        Hashtbl.reset ls.l_buffer;
        List.iter
          (fun (_, id) ->
            lock_step t ls (node t id);
            release_slot t id)
          (List.sort compare rest);
        close_epoch t ls;
        List.iter (fun s -> decref t s) ls.l_prev_srcs;
        ls.l_prev_srcs <- [])
      t.locks;
    (* close still-open episodes (missing participants) *)
    let open_eps =
      Hashtbl.fold
        (fun key e acc -> if e.e_closed then acc else (key, e) :: acc)
        t.episodes []
    in
    List.iter
      (fun (_, e) -> close_episode t e)
      (List.sort (fun (a, _) (b, _) -> compare a b) open_eps);
    (* release reads parked on writers that never happened *)
    Hashtbl.iter
      (fun _ vs ->
        let parked = vs.v_parked in
        vs.v_parked <- [];
        List.iter (fun rid -> release_slot t rid) parked)
      t.values;
    drain t;
    if t.n_finalized <> t.ops_seen then
      invalid_arg "Stream: cyclic causality relation";
    (* deliver stability notifications that were waiting on readers *)
    let dead =
      Hashtbl.fold
        (fun (loc, v) vs acc ->
          if vs.v_dead && not vs.v_dead_sent then (loc, v, vs) :: acc else acc)
        t.values []
    in
    List.iter (fun (loc, v, vs) -> send_dead t loc v vs) dead;
    t.cb.on_end ()
  end

(* ------------------------------------------------------------------ *)
(* Entry points                                                        *)
(* ------------------------------------------------------------------ *)

let sink t =
  Sink.make
    ~on_inv:(fun ~proc ~seq -> handle_inv t ~proc ~seq)
    ~on_dead:(fun ~loc ~value -> handle_dead t ~loc ~value)
    ~on_close:(fun () -> handle_close t)
    (fun op -> handle_op t op)

let replay t h =
  if History.procs h > t.n_procs then
    invalid_arg "Stream.replay: history has more processes than the engine";
  let evs = Array.make (History.procs h) [] in
  Array.iter
    (fun (o : Op.t) ->
      evs.(o.proc) <-
        (o.inv_seq, `Inv o) :: (o.resp_seq, `Resp o) :: evs.(o.proc))
    (History.ops h);
  let evs =
    Array.map
      (fun l -> ref (List.sort (fun (a, _) (b, _) -> compare a b) l))
      evs
  in
  (* Replay: invocation events go in process-local order; responses are
     additionally gated on global id (completion) order, which every
     recorder-produced history satisfies. *)
  let next_id = ref 0 in
  let progress = ref true in
  while !progress do
    progress := false;
    Array.iter
      (fun cell ->
        let continue_ = ref true in
        while !continue_ do
          match !cell with
          | (seq, `Inv (o : Op.t)) :: rest ->
            handle_inv t ~proc:o.proc ~seq;
            cell := rest;
            progress := true
          | (_, `Resp (o : Op.t)) :: rest when o.id = !next_id ->
            handle_op t o;
            incr next_id;
            cell := rest;
            progress := true
          | _ -> continue_ := false
        done)
      evs
  done;
  if Array.exists (fun c -> !c <> []) evs then
    invalid_arg "Stream.replay: inconsistent event sequencing";
  handle_close t

let feed_history ~callbacks h =
  let t = create ~procs:(History.procs h) callbacks in
  replay t h;
  t
