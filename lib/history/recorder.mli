(** Incremental history recording for runtime systems.

    The recorder is an event source: every invocation and completed
    operation is pushed to the subscribed {!Sink}s in real-time order.
    The traditional offline path — materialize the full operation array,
    then build a {!History} — is one built-in sink (enabled by default);
    streaming consumers such as the online consistency checker subscribe
    alongside it and never need the whole run in memory.

    Event sequence numbers are process-local and monotone, so operations
    recorded sequentially by one fiber are totally ordered in program
    order, while [start]/[finish] allow overlapping (non-blocking)
    operations. *)

type t

(** [create ?materialize ~procs ()] makes a recorder for processes
    [0..procs-1]. When [materialize] is [true] (the default) a
    full-materialize store sink is subscribed so {!history} works; pass
    [false] for streaming-only recording with O(1) memory in the
    recorder itself. *)
val create : ?materialize:bool -> procs:int -> unit -> t

val procs : t -> int

(** [subscribe t sink] adds a streaming consumer. Sinks receive events in
    subscription order (the materialize store, when present, is first).
    Raises [Invalid_argument] if the recorder is closed. *)
val subscribe : t -> Sink.t -> unit

(** [record t ~proc ?sync_seq kind] records a complete operation whose
    invocation and response are adjacent events. Returns the op id. *)
val record : t -> proc:int -> ?sync_seq:int -> Op.kind -> int

(** [start t ~proc] marks an invocation event and returns a token. *)
type token

val start : t -> proc:int -> token

(** [finish t token ?sync_seq kind] records the response for a started
    operation. Returns the op id. *)
val finish : t -> token -> ?sync_seq:int -> Op.kind -> int

(** [grant_seq t lock] returns the next grant-order number for the named
    lock object (used by lock managers to stamp lock/unlock operations). *)
val grant_seq : t -> string -> int

(** [notify_dead t ~loc ~value] forwards a runtime stability
    notification to the sinks: no future operation will read [value] at
    [loc] (see {!Sink.t.on_dead}). *)
val notify_dead : t -> loc:Op.location -> value:Op.value -> unit

(** [close t] ends the run: sinks receive [on_close] exactly once and
    further recording raises. Idempotent. *)
val close : t -> unit

(** [op_count t] is the number of operations recorded so far. *)
val op_count : t -> int

(** [history t] snapshots the recorded operations into a history. Raises
    [Invalid_argument] for a recorder created with [~materialize:false]. *)
val history : t -> History.t
