(** The consistency lattice: models as values (axiom sets).

    Following the axiom decompositions of Steinke & Nutt and Almeida, a
    model is a set of ordering/visibility axioms; its relation for a
    reader is the restricted transitive closure of the axiom-selected
    edges, and read validity is the one generic {!Read_rule}. The
    [Causal], [PRAM], [Group] and [Mixed] points reproduce the seed
    checkers verdict-for-verdict; [SC] and [Linearizable] check the
    sim-time serialization witness (id order = response order), so a
    failure there means "not SC/linearizable under the simulated
    execution order" — conservative in the strong direction.

    Monotonicity by construction: every model keeps the writes-into
    edges incident to the reader, so under the unique-writes assumption
    of Section 3 [leq m1 m2] implies the failing read-id set of [m1] is
    contained in that of [m2]. *)

(** Per-process session guarantees (Terry et al.), the lattice points
    below PRAM: [Read_your_writes] orders a process's writes before its
    own later reads; [Monotonic_reads] orders its reads among
    themselves (writes seen by an earlier read stay visible). *)
type guarantee = Read_your_writes | Monotonic_reads

type t =
  | Linearizable  (** SC plus the sim-time real-time order *)
  | SC  (** causal plus a sim-time total write order *)
  | Processor  (** PRAM and cache: the join of the two *)
  | Cache  (** per-location SC (same-location program order + write order) *)
  | Causal  (** Definition 2, [History.causal_relation] *)
  | Mixed  (** each read checked at its own declared label (Definition 4) *)
  | Group of int list
      (** Section 3.2 visibility groups; the reader is implicitly a
          member, so [Group []] coincides with [PRAM] and
          [Group all_procs] with [Causal] *)
  | PRAM  (** Definition 3, [History.pram_relation] *)
  | Slow  (** per-location PRAM: the meet of PRAM and cache *)
  | Session of guarantee list
      (** only the selected session guarantees; [Session []] is the
          lattice bottom (reads may return any written or initial value) *)

(** {1 Axioms} *)

type po_axiom =
  | Po_none
  | Po_session of { ryw : bool; mr : bool }
      (** the reader's own write→read (ryw) and read→read (mr) edges *)
  | Po_per_location  (** same-location edges; sync operations fence *)
  | Po_global

(** Edge filter for writes-into and synchronization edges: none, only
    edges touching the reader, only edges touching a group member, or
    all. *)
type scope = S_none | S_reader | S_group of int list | S_all

type wo_axiom = Wo_none | Wo_per_location | Wo_global

type axioms = {
  po : po_axiom;
  wi : scope;  (** writes-into (reads-from) edges *)
  sync : scope;  (** reduced synchronization-order edges *)
  wo : wo_axiom;  (** sim-time (id-order) total write order *)
  rt : bool;  (** sim-time real-time order over all operations *)
}

(** [axioms_of m] is the axiom set of model [m]. Raises
    [Invalid_argument] for [Mixed], which dispatches per read. *)
val axioms_of : t -> axioms

(** The axiom point of one declared read label. Groups are kept
    verbatim: the reader must be a member, as in
    {!Mc_history.History.group_relation}. *)
val axioms_of_label : Mc_history.Op.label -> axioms

(** {1 Lattice structure} *)

(** [leq m1 m2]: [m1]'s relation is contained in [m2]'s for every
    history and reader (axiom-set inclusion). [Mixed] behaves as the
    interval [PRAM, Causal]: [leq x Mixed = leq x PRAM] and
    [leq Mixed y = leq Causal y]. *)
val leq : t -> t -> bool

(** Order-equivalence ([leq] both ways — e.g. [Group []] and [PRAM]). *)
val equal : t -> t -> bool

val meet : t -> t -> t
val join : t -> t -> t

(** {1 Names} *)

val to_string : t -> string

(** [of_string s] parses [sc], [linearizable] (or [lin]), [causal],
    [mixed], [processor], [cache], [pram], [slow], [group:0,1,...],
    [session] (both guarantees), [session:none], [session:ryw,mr]. *)
val of_string : string -> (t, string) result

val pp : Format.formatter -> t -> unit

(** The documentation / benchmark sweep, weakest points first (the
    order is a linear extension of [leq] restricted to comparable
    pairs; cache/processor and mixed are mutually incomparable with
    some neighbours). *)
val ladder : t list

(** {1 Checking} *)

(** [relation h ax ~reader] builds (and caches on [h]) the axiom set's
    relation for [reader]: the transitive closure of the selected edges
    restricted to exclude other processes' memory reads. Raises
    [Invalid_argument] if a group scope omits the reader or has a
    member out of range. *)
val relation : Mc_history.History.t -> axioms -> reader:int -> Mc_util.Relation.t

(** [verdict h m ~read_id] applies {!Read_rule.check} under model [m].
    [Group g] is implicitly reader-augmented; [Mixed] dispatches on the
    read's declared label. Raises [Invalid_argument] if [read_id] is
    not a memory read. *)
val verdict : Mc_history.History.t -> t -> read_id:int -> Read_rule.verdict

(** [verdict_at h label ~read_id] checks one read at one declared
    label's axiom point (the seed per-label checkers). *)
val verdict_at :
  Mc_history.History.t -> Mc_history.Op.label -> read_id:int -> Read_rule.verdict

type failure = { read_id : int; verdict : Read_rule.verdict }

(** [failures h m] checks every memory read of [h] under [m], in
    ascending id order. *)
val failures : Mc_history.History.t -> t -> failure list

val is_consistent : Mc_history.History.t -> t -> bool
val pp_failure : Format.formatter -> failure -> unit
