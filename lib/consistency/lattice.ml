(* The consistency lattice: a model is a value (ISSUE 7 tentpole).

   Following the axiom decompositions of Steinke & Nutt ("A Unified
   Theory of Shared Memory Consistency") and Almeida ("A Framework for
   Consistency Models"), every model here is a set of edge-generating
   axioms. For a reader [i] the model's relation is

     restrict (TC (po ∪ wi ∪ sync ∪ wo ∪ rt)) (no foreign memory reads)

   where each component is an axiom-selected subset of the history's
   derived relations:

   - po:   program order — all of it, only same-location edges (plus
           fences), only the reader's session edges, or none;
   - wi:   writes-into (reads-from) edges, filtered to the edges that
           touch the reader, a process group, or kept whole;
   - sync: the reduced synchronization covering, filtered the same way
           (its transitive closure equals the full sync order, so the
           causal point matches [History.causal_relation] exactly);
   - wo:   a total per-location (or global) write order taken from the
           recording order — ids are assigned in simulation-time response
           order, so this is the sim-time serialization witness;
   - rt:   the real-time total order over all operations, again the id
           order.

   Verdicts come from the one generic {!Read_rule} engine applied to
   that relation, so [Causal]/[PRAM]/[Group]/[Mixed] reproduce the seed
   checkers verdict-for-verdict (the differential suite in
   test/test_lattice.ml proves it), while [SC] and [Linearizable] are
   witness-based: a failure means the history is not SC/linearizable
   under the sim-time serialization (conservative in the strong
   direction — a history rejected here might still be SC under some
   other serialization; [Sequential.is_sequentially_consistent] remains
   the bounded exact search).

   Monotonicity holds by construction: every model keeps the writes-into
   edges incident to the reader, so under the unique-writes assumption
   the candidate-writer set of a read is the same at every lattice point
   and a larger relation can only add interposers. Hence
   [leq m1 m2] implies [failures m1 ⊆ failures m2] (as read-id sets) —
   the QCheck property of the test suite. *)

module History = Mc_history.History
module Op = Mc_history.Op
module Relation = Mc_util.Relation

type guarantee = Read_your_writes | Monotonic_reads

type t =
  | Linearizable
  | SC
  | Processor
  | Cache
  | Causal
  | Mixed
  | Group of int list
  | PRAM
  | Slow
  | Session of guarantee list

(* ------------------------------------------------------------------ *)
(* Axioms                                                              *)
(* ------------------------------------------------------------------ *)

type po_axiom =
  | Po_none
  | Po_session of { ryw : bool; mr : bool }
  | Po_per_location
  | Po_global

type scope = S_none | S_reader | S_group of int list | S_all
type wo_axiom = Wo_none | Wo_per_location | Wo_global

type axioms = {
  po : po_axiom;
  wi : scope;  (** writes-into (reads-from) edges *)
  sync : scope;  (** reduced synchronization-order edges *)
  wo : wo_axiom;  (** sim-time total write order *)
  rt : bool;  (** sim-time real-time order over all operations *)
}

let norm_group g = List.sort_uniq compare g

let norm_session gs =
  let mem g = List.mem g gs in
  (mem Read_your_writes, mem Monotonic_reads)

let session_po gs =
  match norm_session gs with
  | false, false -> Po_none
  | ryw, mr -> Po_session { ryw; mr }

let axioms_of = function
  | Linearizable -> { po = Po_global; wi = S_all; sync = S_all; wo = Wo_global; rt = true }
  | SC -> { po = Po_global; wi = S_all; sync = S_all; wo = Wo_global; rt = false }
  | Processor -> { po = Po_global; wi = S_all; sync = S_reader; wo = Wo_per_location; rt = false }
  | Cache -> { po = Po_per_location; wi = S_all; sync = S_none; wo = Wo_per_location; rt = false }
  | Causal -> { po = Po_global; wi = S_all; sync = S_all; wo = Wo_none; rt = false }
  | Group g ->
    let g = norm_group g in
    { po = Po_global; wi = S_group g; sync = S_group g; wo = Wo_none; rt = false }
  | PRAM -> { po = Po_global; wi = S_reader; sync = S_reader; wo = Wo_none; rt = false }
  | Slow -> { po = Po_per_location; wi = S_reader; sync = S_none; wo = Wo_none; rt = false }
  | Session gs -> { po = session_po gs; wi = S_reader; sync = S_none; wo = Wo_none; rt = false }
  | Mixed -> invalid_arg "Lattice.axioms_of: Mixed dispatches on per-read labels"

(* the axiom point of one declared read label: the seed per-label
   checkers (Defs. 2/3, §3.2). The group is kept verbatim — the reader
   must be a member, mirroring [History.group_relation]. *)
let axioms_of_label = function
  | Op.PRAM -> axioms_of PRAM
  | Op.Causal -> axioms_of Causal
  | Op.Group g ->
    let g = norm_group g in
    { po = Po_global; wi = S_group g; sync = S_group g; wo = Wo_none; rt = false }

(* ------------------------------------------------------------------ *)
(* Order, meet, join                                                   *)
(* ------------------------------------------------------------------ *)

let po_leq a b =
  match (a, b) with
  | Po_none, _ -> true
  | _, Po_global -> true
  | Po_session { ryw = r1; mr = m1 }, Po_session { ryw = r2; mr = m2 } ->
    ((not r1) || r2) && ((not m1) || m2)
  | Po_per_location, Po_per_location -> true
  | (Po_session _ | Po_per_location | Po_global), _ -> false

let scope_leq a b =
  match (a, b) with
  | S_none, _ -> true
  | _, S_all -> true
  (* group scopes are implicitly reader-augmented, so the reader scope
     is below every group scope and the empty group collapses to it *)
  | S_reader, (S_reader | S_group _) -> true
  | S_group g, S_reader -> norm_group g = []
  | S_group g1, S_group g2 ->
    List.for_all (fun m -> List.mem m (norm_group g2)) (norm_group g1)
  | (S_reader | S_group _ | S_all), _ -> false

let wo_leq a b =
  match (a, b) with
  | Wo_none, _ -> true
  | _, Wo_global -> true
  | Wo_per_location, Wo_per_location -> true
  | (Wo_per_location | Wo_global), _ -> false

let ax_leq a b =
  po_leq a.po b.po && scope_leq a.wi b.wi && scope_leq a.sync b.sync
  && wo_leq a.wo b.wo
  && ((not a.rt) || b.rt)

(* [Mixed] checks each read at its own declared label, every label point
   lying between PRAM and Causal; as a lattice element it behaves as
   that interval: below everything above Causal, above everything below
   PRAM. *)
let rec leq a b =
  match (a, b) with
  | Mixed, Mixed -> true
  | Mixed, _ -> leq Causal b
  | _, Mixed -> leq a PRAM
  | _ -> ax_leq (axioms_of a) (axioms_of b)

let equal a b = leq a b && leq b a

let base_candidates =
  [
    Linearizable;
    SC;
    Processor;
    Cache;
    Causal;
    PRAM;
    Slow;
    Session [ Read_your_writes; Monotonic_reads ];
    Session [ Read_your_writes ];
    Session [ Monotonic_reads ];
    Session [];
  ]

let group_inter g1 g2 = List.filter (fun m -> List.mem m (norm_group g2)) (norm_group g1)
let group_union g1 g2 = norm_group (g1 @ g2)

(* glb / lub within the named model set. The named poset is a lattice
   (checked pairwise); the search picks the unique extremal bound and
   falls back to a safe bound should a new named point ever break
   uniqueness. *)
let extremal ~above candidates a b =
  let bound c = if above then leq a c && leq b c else leq c a && leq c b in
  let bounds = List.filter bound candidates in
  let dominates c = List.for_all (fun c' -> if above then leq c c' else leq c' c) bounds in
  match List.find_opt dominates bounds with
  | Some c -> c
  | None -> if above then Linearizable else Session []

let meet a b =
  if leq a b then a
  else if leq b a then b
  else
    let a' = match a with Mixed -> PRAM | _ -> a in
    let b' = match b with Mixed -> PRAM | _ -> b in
    let groups =
      match (a', b') with
      | Group g1, Group g2 -> [ Group (group_inter g1 g2) ]
      | _ -> []
    in
    extremal ~above:false (groups @ base_candidates) a' b'

let join a b =
  if leq a b then b
  else if leq b a then a
  else
    let a' = match a with Mixed -> Causal | _ -> a in
    let b' = match b with Mixed -> Causal | _ -> b in
    let groups =
      match (a', b') with
      | Group g1, Group g2 -> [ Group (group_union g1 g2) ]
      | _ -> []
    in
    extremal ~above:true (groups @ base_candidates) a' b'

(* ------------------------------------------------------------------ *)
(* Names                                                               *)
(* ------------------------------------------------------------------ *)

let guarantee_to_string = function
  | Read_your_writes -> "ryw"
  | Monotonic_reads -> "mr"

let to_string = function
  | Linearizable -> "linearizable"
  | SC -> "sc"
  | Processor -> "processor"
  | Cache -> "cache"
  | Causal -> "causal"
  | Mixed -> "mixed"
  | Group g ->
    Printf.sprintf "group:%s" (String.concat "," (List.map string_of_int (norm_group g)))
  | PRAM -> "pram"
  | Slow -> "slow"
  | Session gs -> (
    match List.sort_uniq compare gs with
    | [] -> "session:none"
    | gs -> Printf.sprintf "session:%s" (String.concat "," (List.map guarantee_to_string gs)))

let of_string s =
  let s = String.lowercase_ascii (String.trim s) in
  let split_tail prefix =
    let n = String.length prefix in
    if String.length s > n && String.sub s 0 n = prefix then
      Some (String.split_on_char ',' (String.sub s n (String.length s - n)))
    else None
  in
  match s with
  | "linearizable" | "lin" -> Ok Linearizable
  | "sc" -> Ok SC
  | "processor" -> Ok Processor
  | "cache" -> Ok Cache
  | "causal" -> Ok Causal
  | "mixed" -> Ok Mixed
  | "pram" -> Ok PRAM
  | "slow" -> Ok Slow
  | "session" -> Ok (Session [ Read_your_writes; Monotonic_reads ])
  | "session:none" -> Ok (Session [])
  | "group" | "group:" -> Ok (Group []) (* order-equivalent to pram *)
  | _ -> (
    match split_tail "session:" with
    | Some parts -> (
      try
        Ok
          (Session
             (List.map
                (function
                  | "ryw" -> Read_your_writes
                  | "mr" -> Monotonic_reads
                  | g -> failwith g)
                parts))
      with Failure g -> Error (Printf.sprintf "unknown session guarantee %S (want ryw|mr)" g))
    | None -> (
      match split_tail "group:" with
      | Some parts -> (
        try Ok (Group (List.map int_of_string parts))
        with Failure _ -> Error "group members must be integers: group:0,1,...")
      | None ->
        Error
          (Printf.sprintf
             "unknown model %S (want \
              sc|linearizable|causal|mixed|processor|cache|pram|slow|group:0,1|session:ryw,mr)"
             s)))

let pp fmt m = Format.pp_print_string fmt (to_string m)

(* the default bench / documentation ladder, weakest first *)
let ladder =
  [
    Session [ Read_your_writes; Monotonic_reads ];
    Slow;
    PRAM;
    Cache;
    Mixed;
    Causal;
    Processor;
    SC;
    Linearizable;
  ]

(* ------------------------------------------------------------------ *)
(* Relation construction                                               *)
(* ------------------------------------------------------------------ *)

let locs_of (o : Op.t) =
  let add acc = function Some (l, _) -> l :: acc | None -> acc in
  add (add [] (Op.writes_value o)) (Op.reads_value o)

let share_loc a b =
  let la = locs_of a in
  List.exists (fun l -> List.mem l la) (locs_of b)

let scope_admits scope ~reader =
  match scope with
  | S_none -> fun _ _ -> false
  | S_reader -> fun sp np -> sp = reader || np = reader
  | S_group g ->
    let g = norm_group g in
    fun sp np -> List.mem sp g || List.mem np g
  | S_all -> fun _ _ -> true

let scope_key = function
  | S_none -> "n"
  | S_reader -> "r"
  | S_group g -> "g" ^ String.concat "," (List.map string_of_int (norm_group g))
  | S_all -> "*"

let axioms_key ax ~reader =
  let po =
    match ax.po with
    | Po_none -> "n"
    | Po_session { ryw; mr } -> Printf.sprintf "s%b%b" ryw mr
    | Po_per_location -> "l"
    | Po_global -> "*"
  in
  let wo =
    match ax.wo with Wo_none -> "n" | Wo_per_location -> "l" | Wo_global -> "*"
  in
  Printf.sprintf "lat|po=%s|wi=%s|sy=%s|wo=%s|rt=%b|i=%d" po (scope_key ax.wi)
    (scope_key ax.sync) wo ax.rt reader

(* chain consecutive elements; the transitive closure totally orders
   them. Ids ascend, so the chain is the sim-time order. *)
let chain rel = function
  | [] | [ _ ] -> ()
  | first :: rest -> ignore (List.fold_left (fun p x -> Relation.add rel p x; x) first rest)

let build h ax ~reader =
  let n = History.length h in
  let ops = History.ops h in
  let e = Relation.create n in
  let add_filtered src keep =
    Relation.fold src (fun () i j -> if keep i j then Relation.add e i j) ()
  in
  (match ax.po with
  | Po_none -> ()
  | Po_global -> add_filtered (History.program_order h) (fun _ _ -> true)
  | Po_per_location ->
    (* same-location edges; synchronization operations act as fences *)
    add_filtered (History.program_order h) (fun i j ->
        let a = ops.(i) and b = ops.(j) in
        Op.is_sync a || Op.is_sync b || share_loc a b)
  | Po_session { ryw; mr } ->
    add_filtered (History.program_order h) (fun i j ->
        let a = ops.(i) and b = ops.(j) in
        a.Op.proc = reader && b.Op.proc = reader
        && Op.is_memory_read b
        && ((ryw && Op.is_write_like a) || (mr && Op.is_memory_read a))));
  (let admits = scope_admits ax.wi ~reader in
   add_filtered (History.reads_from h) (fun i j ->
       admits ops.(i).Op.proc ops.(j).Op.proc));
  (match ax.sync with
  | S_none -> ()
  | sc ->
    let admits = scope_admits sc ~reader in
    add_filtered (History.sync_order_reduced h) (fun i j ->
        admits ops.(i).Op.proc ops.(j).Op.proc));
  (match ax.wo with
  | Wo_none -> ()
  | Wo_per_location ->
    let by_loc = Hashtbl.create 16 in
    Array.iter
      (fun (o : Op.t) ->
        match Op.writes_value o with
        | Some (loc, _) ->
          Hashtbl.replace by_loc loc
            (o.Op.id :: Option.value ~default:[] (Hashtbl.find_opt by_loc loc))
        | None -> ())
      ops;
    Hashtbl.iter (fun _ ids -> chain e (List.rev ids)) by_loc
  | Wo_global ->
    let writes = ref [] in
    Array.iter (fun (o : Op.t) -> if Op.is_write_like o then writes := o.Op.id :: !writes) ops;
    chain e (List.rev !writes));
  if ax.rt then chain e (List.init n Fun.id);
  e

let validate_scope h ~reader = function
  | S_group g ->
    if not (List.mem reader g) then
      invalid_arg "Lattice.relation: reader must be a group member";
    List.iter
      (fun m ->
        if m < 0 || m >= History.procs h then
          invalid_arg "Lattice.relation: group member out of range")
      g
  | S_none | S_reader | S_all -> ()

let relation h ax ~reader =
  validate_scope h ~reader ax.wi;
  validate_scope h ~reader ax.sync;
  History.cached_relation h (axioms_key ax ~reader) (fun () ->
      let tc = Relation.transitive_closure (build h ax ~reader) in
      Relation.restrict tc (fun id ->
          let o = History.op h id in
          not (Op.is_memory_read o && o.Op.proc <> reader)))

(* ------------------------------------------------------------------ *)
(* Checking                                                            *)
(* ------------------------------------------------------------------ *)

type failure = { read_id : int; verdict : Read_rule.verdict }

let augment_group ~reader g = norm_group (reader :: g)

let verdict_at h label ~read_id =
  let reader = (History.op h read_id).Op.proc in
  Read_rule.check h (relation h (axioms_of_label label) ~reader) ~read_id

let verdict h model ~read_id =
  let o = History.op h read_id in
  let reader = o.Op.proc in
  match model with
  | Mixed -> (
    match o.Op.kind with
    | Op.Read { label; _ } -> verdict_at h label ~read_id
    | _ -> invalid_arg "Read_rule.check: not a memory read")
  | Group g ->
    Read_rule.check h
      (relation h (axioms_of (Group (augment_group ~reader g))) ~reader)
      ~read_id
  | m -> Read_rule.check h (relation h (axioms_of m) ~reader) ~read_id

let failures h model =
  let acc = ref [] in
  Array.iter
    (fun (o : Op.t) ->
      if Op.is_memory_read o then
        match verdict h model ~read_id:o.Op.id with
        | Read_rule.Valid -> ()
        | v -> acc := { read_id = o.Op.id; verdict = v } :: !acc)
    (History.ops h);
  List.rev !acc

let is_consistent h model = failures h model = []

let pp_failure fmt { read_id; verdict } =
  Format.fprintf fmt "read %d: %a" read_id Read_rule.pp_verdict verdict
