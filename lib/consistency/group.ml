(* Thin wrapper over the lattice engine: a group-labelled read checks
   at the Section-3.2 point of its own declared group (kept verbatim —
   the reader must be a member). *)

module History = Mc_history.History
module Op = Mc_history.Op

type failure = { read_id : int; verdict : Read_rule.verdict }

let verdict h ~read_id ~group = Lattice.verdict_at h (Op.Group group) ~read_id

let is_group_read h ~read_id ~group = verdict h ~read_id ~group = Read_rule.Valid

let failures h =
  let acc = ref [] in
  Array.iter
    (fun (o : Op.t) ->
      match o.kind with
      | Op.Read { label = Op.Group group; _ } -> (
        match verdict h ~read_id:o.id ~group with
        | Read_rule.Valid -> ()
        | v -> acc := { read_id = o.id; verdict = v } :: !acc)
      | _ -> ())
    (History.ops h);
  List.rev !acc

let pp_failure fmt { read_id; verdict } =
  Format.fprintf fmt "group read %d: %a" read_id Read_rule.pp_verdict verdict
