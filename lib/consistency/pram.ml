(* Thin wrapper over the lattice engine: the [PRAM] point is the
   per-reader relation of Definition 3. *)

type failure = { read_id : int; verdict : Read_rule.verdict }

let verdict h ~read_id = Lattice.verdict_at h Mc_history.Op.PRAM ~read_id
let is_pram_read h ~read_id = verdict h ~read_id = Read_rule.Valid

let failures h =
  List.map
    (fun (f : Lattice.failure) ->
      { read_id = f.Lattice.read_id; verdict = f.Lattice.verdict })
    (Lattice.failures h Lattice.PRAM)

let is_pram_history h = failures h = []

let pp_failure fmt { read_id; verdict } =
  Format.fprintf fmt "read %d: %a" read_id Read_rule.pp_verdict verdict
