(* Thin wrapper over the lattice engine: the [Mixed] point of
   Definition 4 checks every read at its own declared label. *)

module History = Mc_history.History
module Op = Mc_history.Op

type failure = { read_id : int; label : Op.label; verdict : Read_rule.verdict }

let failures h =
  let acc = ref [] in
  Array.iter
    (fun (o : Op.t) ->
      match o.kind with
      | Op.Read { label; _ } -> (
        match Lattice.verdict_at h label ~read_id:o.id with
        | Read_rule.Valid -> ()
        | v -> acc := { read_id = o.id; label; verdict = v } :: !acc)
      | _ -> ())
    (History.ops h);
  List.rev !acc

let is_mixed_consistent h = failures h = []

let pp_failure fmt { read_id; label; verdict } =
  Format.fprintf fmt "%s read %d: %a"
    (match label with
    | Op.PRAM -> "PRAM"
    | Op.Causal -> "causal"
    | Op.Group _ -> "group")
    read_id Read_rule.pp_verdict verdict
