(** Program-class checkers for the two corollaries of Section 4.

    Corollary 1: any history of an {e entry-consistent} program in which
    all reads of shared variables are causal is sequentially consistent.
    A program is entry-consistent when shared variables are partitioned
    into sets, each set has a unique lock, reads occur under a read or
    write lock of that lock, and writes occur under a write lock.

    Corollary 2: any history of a {e PRAM-consistent} program in which all
    reads of shared variables are PRAM reads is sequentially consistent.
    A program is PRAM-consistent when, in any phase (the computation
    between consecutive barriers), a variable is updated at most once and
    all reads of the variable follow the update.

    Both checkers operate on recorded histories: they verify that the
    recorded execution obeys the discipline, which is how a compiler-style
    analysis would validate a run of the program. *)

type lock_mode = Mode_read | Mode_write

(** [loc_of_memory_op o] is the location a plain memory operation (read,
    write, decrement) accesses; [None] for awaits and synchronization
    operations. *)
val loc_of_memory_op : Mc_history.Op.t -> Mc_history.Op.location option

(** [accesses_with_held_locks h] scans each process in invocation order
    and pairs every memory access with the locks (and modes) the process
    holds when it is issued. The building block shared by the
    entry-consistency checker and the [Mc_analysis] lockset race
    detector. *)
val accesses_with_held_locks :
  Mc_history.History.t ->
  (Mc_history.Op.t * Mc_history.Op.location * (Mc_history.Op.lock_name * lock_mode) list)
  list

type entry_violation = {
  op_id : int;
  loc : Mc_history.Op.location;
  reason : string;
}

type entry_result = {
  assignment : (Mc_history.Op.location * Mc_history.Op.lock_name) list;
      (** an inferred variable-to-lock assignment covering every access *)
  entry_violations : entry_violation list;
}

(** [check_entry_consistent ?shared h] infers a lock assignment for each
    shared variable from the locks held at each access and reports
    accesses that no single lock covers. [shared] selects the variables
    subject to the discipline; the default treats a variable as shared
    when more than one process accesses it. *)
val check_entry_consistent :
  ?shared:(Mc_history.Op.location -> bool) ->
  Mc_history.History.t ->
  entry_result

val is_entry_consistent :
  ?shared:(Mc_history.Op.location -> bool) -> Mc_history.History.t -> bool

type phase_violation = {
  op_id : int;
  loc : Mc_history.Op.location;
  phase : int;
  reason : string;
}

(** [check_pram_consistent ?shared h] assigns each operation the phase
    equal to the number of barrier operations preceding it in its
    process's program order, then checks that within each phase every
    shared variable is written at most once, is never read by another
    process in the phase it is written, and is never read before its
    same-phase write by the writing process. *)
val check_pram_consistent :
  ?shared:(Mc_history.Op.location -> bool) ->
  Mc_history.History.t ->
  phase_violation list

val is_pram_consistent :
  ?shared:(Mc_history.Op.location -> bool) -> Mc_history.History.t -> bool

(** [default_shared h] is the default shared-variable predicate: true for
    locations accessed by at least two distinct processes. *)
val default_shared : Mc_history.History.t -> Mc_history.Op.location -> bool
