(** Commutativity analysis (Definition 5) and the Theorem 1 condition.

    Two operations commute when, from any state in which both are enabled,
    executing them in either order is possible and yields the same final
    state. The paper's sufficient conditions are encoded syntactically:
    operations on different objects commute, reads commute, decrements on
    the same counter commute, and operations never enabled simultaneously
    commute vacuously.

    Theorem 1: a history is sequentially consistent if every pair of
    operations unrelated by the causality relation commutes and every read
    is a causal read. *)

(** Memory footprint of an operation, for the syntactic commutativity
    rules: what location it observes and what location it mutates.
    Synchronization operations (locks, barriers) have no footprint. *)
type footprint = {
  observes : Mc_history.Op.location option;
  mutates : Mc_history.Op.location option;
  counter_op : bool;  (** decrements commute with each other *)
}

val footprint : Mc_history.Op.t -> footprint option

(** [commute a b] decides commutativity of two operations from their
    kinds. *)
val commute : Mc_history.Op.t -> Mc_history.Op.t -> bool

type report = {
  non_commuting_pairs : (int * int) list;
      (** causally-unrelated pairs that do not commute; order-canonical
          (smaller id first), sorted, duplicate-free *)
  non_causal_reads : Causal.failure list;
}

(** [theorem1_report h] evaluates both premises of Theorem 1. *)
val theorem1_report : Mc_history.History.t -> report

(** [theorem1_holds h] is true when the premises hold — in which case the
    history is sequentially consistent. *)
val theorem1_holds : Mc_history.History.t -> bool

val pp_report : Format.formatter -> report -> unit
