(** Streaming mixed-consistency checker.

    Validates every memory read at response time against the read rule
    of its label (Def. 2 causal, Def. 3 PRAM, §3.2 group reads, composed
    per Def. 4 mixed consistency) by folding per-family chain clocks
    over the finalization stream of {!Mc_history.Stream}. Produces the
    same failures, verdict-for-verdict, as the offline {!Mixed.check} —
    see the differential test suite — while keeping only the in-flight
    operation window plus live writer summaries in memory.

    Per finalized operation the cost is O(families × chains) integer
    work, with families = 1 (causal) + procs (PRAM) + registered reader
    groups, i.e. O(procs · chains) per read as required.

    Reader groups must be registered up front (via [~groups] or
    {!groups_of_history}); a group equal to all processes aliases to
    causal and a singleton group to the reader's PRAM family, so only
    the remaining proper groups consume a family slot (max 62 families
    in total). *)

type t

type stats = {
  ops_checked : int;
  reads_checked : int;
  pram_reads : int;
  causal_reads : int;
  group_reads : int;
  fetched_reads : int;  (** reads validated against a fetch snapshot *)
  failure_count : int;
  chains : int;  (** concurrency chains allocated by the engine *)
  max_resident : int;  (** high-water of the engine's in-flight window *)
  live_summaries : int;  (** writer summaries not yet reclaimed *)
}

(** [supports m]: can the streaming engine validate lattice point [m]?
    True for [Causal], [PRAM], [Mixed] and [Group _] (chain-clock
    families) and for [Session _] (decided directly on the reader's own
    per-location read/write timeline, which every path of a session
    relation runs through). False for the sim-time witness points
    ([SC], [Linearizable], [Processor], [Cache], [Slow]), whose total
    write / real-time orders are not incremental here — check those
    offline with {!Lattice.failures}. *)
val supports : Lattice.t -> bool

(** [create ~procs ?groups ?model ()] makes a checker with its own
    {!Mc_history.Stream} engine. [groups] lists the reader groups that
    [Group]-labeled reads may use (order and duplicates irrelevant).
    Without [model] every read is checked at its declared label (the
    seed [Mixed] behavior); with [model] every memory read is checked
    under that single lattice point instead ([Group g] is implicitly
    reader-augmented per read). Raises [Invalid_argument] for
    out-of-range members, empty groups, more than 62 consistency
    families, or a model [supports] rejects. *)
val create : procs:int -> ?groups:int list list -> ?model:Lattice.t -> unit -> t

(** [sink t] adapts the checker for [Recorder.subscribe]: operations are
    validated online as their causal covering past completes. *)
val sink : t -> Mc_history.Sink.t

(** The checker's underlying engine (for window statistics). *)
val engine : t -> Mc_history.Stream.t

(** [check ?groups ?model h] replays a materialized history through a
    fresh checker. When [groups] is omitted the groups are harvested
    from the history's read labels. *)
val check : ?groups:int list list -> ?model:Lattice.t -> Mc_history.History.t -> t

(** Invalid reads seen so far, in ascending id order — equal to
    [Mixed.failures h] after a full replay (or, under a uniform
    [~model], to [Lattice.failures h model]; the [label] field then
    still records each read's declared label). *)
val failures : t -> Mixed.failure list

val is_consistent : t -> bool
val stats : t -> stats

(** {1 Partial-view checking (sharded mode)}

    On a partially-replicated node the chain-clock read rule does not
    describe reads of {e unsubscribed} locations: the replica holds no
    view of them and the value comes from a demand fetch against the
    shard home's snapshot. The runtime announces each such read with
    {!note_fetch} immediately before recording it; the checker then
    validates that read by snapshot membership instead of the family
    read rule. Reads of subscribed locations take the unchanged code
    path, so verdicts and diagnostics on them are identical to the
    full-replication checker by construction (the differential suite in
    [test/test_shard.ml] exercises this). *)

(** [note_fetch t ~proc ~loc ~admissible ~zero_ok] registers that the
    next recorded read of [loc] by [proc] was served by a fetch whose
    snapshot admits exactly the values [admissible] (per writer counted
    in the snapshot clock, that writer's latest write to [loc] within
    it); [zero_ok] states that no write to [loc] lies inside the
    snapshot, so the virtual initial value 0 is the valid answer. Must
    be called with no intervening operation of [proc] before the read
    is recorded. *)
val note_fetch :
  t ->
  proc:int ->
  loc:Mc_history.Op.location ->
  admissible:Mc_history.Op.value list ->
  zero_ok:bool ->
  unit

(** [fetched_ids t] is the ascending list of read ids that were
    validated against fetch snapshots — the reads to exclude when
    comparing against an offline full-replication checker, whose
    global-view read rule can legitimately disagree on them (e.g. a
    home lagging a writer after a barrier that did not cover it). *)
val fetched_ids : t -> int list

(** [attach_metrics t reg] registers callback gauges ([mc_online_*]) over
    {!stats} — sampled only at snapshot time, so attaching costs nothing
    per checked operation. *)
val attach_metrics : t -> Mc_obs.Metrics.Registry.t -> unit

(** Distinct (sorted) groups appearing in [Group] read labels of [h]. *)
val groups_of_history : Mc_history.History.t -> int list list
