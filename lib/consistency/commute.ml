module History = Mc_history.History
module Op = Mc_history.Op
module Relation = Mc_util.Relation

(* Memory footprint of an operation, for the syntactic commutativity
   rules: what location it observes and what location it mutates. *)
type footprint = {
  observes : Op.location option;
  mutates : Op.location option;
  counter_op : bool; (* decrements commute with each other *)
}

let footprint (o : Op.t) =
  match o.kind with
  | Op.Read { loc; _ } -> Some { observes = Some loc; mutates = None; counter_op = false }
  | Op.Await { loc; _ } -> Some { observes = Some loc; mutates = None; counter_op = false }
  | Op.Write { loc; _ } -> Some { observes = None; mutates = Some loc; counter_op = false }
  | Op.Decrement { loc; _ } ->
    Some { observes = None; mutates = Some loc; counter_op = true }
  | Op.Read_lock _ | Op.Read_unlock _ | Op.Write_lock _ | Op.Write_unlock _
  | Op.Barrier _ | Op.Barrier_group _ ->
    None

let commute (a : Op.t) (b : Op.t) =
  match a.kind, b.kind with
  (* lock operations on the same object *)
  | (Op.Write_lock la | Op.Read_lock la), (Op.Write_lock lb | Op.Read_lock lb)
    when la = lb -> (
    (* two read locks commute; any pair involving a write lock can be
       simultaneously enabled (lock free) but not sequenced both ways *)
    match a.kind, b.kind with
    | Op.Read_lock _, Op.Read_lock _ -> true
    | _ -> false)
  | (Op.Write_unlock la | Op.Read_unlock la), (Op.Write_unlock lb | Op.Read_unlock lb)
    when la = lb -> (
    (* write unlocks of the same lock are never enabled simultaneously;
       read unlocks by different holders commute *)
    match a.kind, b.kind with
    | Op.Write_unlock _, Op.Write_unlock _ -> true (* vacuous *)
    | _ -> true)
  | (Op.Write_lock la | Op.Read_lock la), (Op.Write_unlock lb | Op.Read_unlock lb)
  | (Op.Write_unlock la | Op.Read_unlock la), (Op.Write_lock lb | Op.Read_lock lb)
    when la = lb -> (
    (* lock vs unlock on the same object: a write lock and any unlock are
       never simultaneously enabled (vacuously commute); a read lock and a
       read unlock by another process commute; a read lock and a write
       unlock are never simultaneously enabled *)
    match a.kind, b.kind with
    | Op.Read_lock _, Op.Read_unlock _ | Op.Read_unlock _, Op.Read_lock _ -> true
    | _ -> true)
  | _ -> (
    match footprint a, footprint b with
    | None, _ | _, None -> true (* barriers and cross-object lock ops *)
    | Some fa, Some fb ->
      let touches f loc =
        f.observes = Some loc || f.mutates = Some loc
      in
      let conflict =
        match fa.mutates, fb.mutates with
        | Some la, _ when touches fb la ->
          (* both decrements on the same counter commute *)
          not (fa.counter_op && fb.counter_op && fb.mutates = Some la)
        | _, Some lb when touches fa lb ->
          not (fa.counter_op && fb.counter_op && fa.mutates = Some lb)
        | _ -> false
      in
      not conflict)

type report = {
  non_commuting_pairs : (int * int) list;
  non_causal_reads : Causal.failure list;
}

(* Pairs are kept order-canonical (smaller id first) and duplicate-free so
   reports are deterministic across runs. *)
let canonical_pairs pairs =
  List.sort_uniq compare
    (List.map (fun (i, j) -> if i <= j then (i, j) else (j, i)) pairs)

let theorem1_report h =
  let causality = History.causality h in
  let ops = History.ops h in
  let n = Array.length ops in
  let pairs = ref [] in
  for i = 0 to n - 1 do
    for j = i + 1 to n - 1 do
      let unrelated =
        (not (Relation.mem causality i j)) && not (Relation.mem causality j i)
      in
      if unrelated && not (commute ops.(i) ops.(j)) then
        pairs := (i, j) :: !pairs
    done
  done;
  {
    non_commuting_pairs = canonical_pairs !pairs;
    non_causal_reads = Causal.failures h;
  }

let theorem1_holds h =
  let r = theorem1_report h in
  r.non_commuting_pairs = [] && r.non_causal_reads = []

let pp_report fmt r =
  let pairs = canonical_pairs r.non_commuting_pairs in
  Format.fprintf fmt "@[<v>non-commuting unrelated pairs: %d" (List.length pairs);
  List.iter (fun (i, j) -> Format.fprintf fmt "@   (%d, %d)" i j) pairs;
  Format.fprintf fmt "@ non-causal reads: %d" (List.length r.non_causal_reads);
  let reads = List.sort_uniq compare r.non_causal_reads in
  List.iter
    (fun (f : Causal.failure) -> Format.fprintf fmt "@   %a" Causal.pp_failure f)
    reads;
  Format.fprintf fmt "@]"
