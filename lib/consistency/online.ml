(* Streaming mixed-consistency checker.

   Consumes the finalization stream of [Mc_history.Stream] and validates
   every memory read at response time against the read rule of its label
   (Def. 2 causal, Def. 3 PRAM, §3.2 group, composed per Def. 4),
   reproducing [Mixed.failures] verdict-for-verdict without materializing
   the history or any relation matrix.

   Per finalized operation the checker folds one chain clock per family —
   causal, PRAM(i) for every process i, and one per registered reader
   group — joining the clocks of its covering in-edge sources, with sync
   and reads-from edges filtered by the family's touches predicate (a
   per-family cost of O(chains) ints, O(procs · chains) overall).

   A read's verdict needs three kinds of relation queries, all answered
   in O(1) from clocks: [rel w r] (candidate writer in the read's past),
   [rel o r] (interposer in the read's past) and [rel w o] (interposer
   after the writer). The first two use the read's own clocks; the last
   is precomputed when [o] finalizes, as a per-family bitmask attached to
   the writer's summary, because either operation may be retired by the
   time the read arrives.

   State is reclaimed through runtime stability notifications: when a
   value is dead (superseded at every replica, so no future operation can
   read it) its writer summaries and their interposer lists are dropped;
   when the initial value of a location is dead the location's
   virtual-initial-write interposer list is dropped too. *)

module Stream = Mc_history.Stream
module History = Mc_history.History
module Op = Mc_history.Op

(* An operation that touched a location: potential interposer. Kept in
   ascending id order so the first match reproduces the offline scan. *)
type toucher = {
  f_id : int;
  f_chain : int;
  f_rank : int;
  f_proc : int;
  f_read : bool; (* memory read: excluded for foreign readers *)
  f_vals : Op.value list; (* values it wrote/observed there *)
  f_mask : int; (* per-family [rel w o] bits, 0 for the virtual write *)
}

(* Retained essence of a finalized writer. *)
type summary = {
  s_id : int;
  s_proc : int;
  s_chain : int;
  s_rank : int;
  s_clk : int array array; (* inclusive clocks, per family *)
  mutable s_followers : toucher list; (* ascending id *)
}

type lstate = {
  mutable li_dead : bool; (* initial value is dead *)
  mutable li_touchers : toucher list; (* ascending id *)
  mutable li_values : Op.value list; (* values with live summaries *)
}

type resident = { r_proc : int; r_clk : int array array }

(* Which lattice point every read is validated against. [Per_label] is
   the seed behavior (the [Mixed] point of Definition 4); [Uniform m]
   checks every memory read under model [m] regardless of its declared
   label. *)
type mode = Per_label | Uniform of Lattice.t

(* Session-point state. A session relation keeps only the reader's own
   selected program-order edges (write→read for read-your-writes,
   read→read for monotonic reads) plus the reads-from edges touching
   the reader, so every path to a read runs through the reader's own
   earlier memory operations — chain clocks (whose ranks cover whole
   program-order prefixes) over-approximate it. Instead each process
   keeps its memory reads and writes per location, in program order
   (finalization order within a process is program order: the stream's
   U edges are finalized topologically), and the read rule is decided
   directly on that structure. [sr_writers] records the writers of the
   value a read returned, for reporting foreign-write interposers. *)
type sess_rec = { sr_id : int; sr_value : Op.value; sr_writers : int list }

type sess_state = {
  se_reads : (Op.location, sess_rec list ref) Hashtbl.t; (* newest first *)
  se_writes : (Op.location, sess_rec list ref) Hashtbl.t;
}

(* A read served by demand-driven fetch instead of the local replica
   (sharded mode): the replica holds no view of the location, so the
   chain-clock read rule — which reasons about what this process has
   locally applied — does not describe it. The runtime announces, just
   before recording such a read, the admissible value set derived from
   the fetch snapshot: for every writer counted in the home's per-shard
   clock, that writer's latest write to the location within the
   snapshot. The fetched value is exactly the home's causal-view value
   at the snapshot, so validity is membership in that set. *)
type fetch_note = {
  fn_loc : Op.location;
  fn_admissible : Op.value list;
  fn_zero_ok : bool; (* no write to the location inside the snapshot *)
}

type stats = {
  ops_checked : int;
  reads_checked : int;
  pram_reads : int;
  causal_reads : int;
  group_reads : int;
  fetched_reads : int;
  failure_count : int;
  chains : int;
  max_resident : int;
  live_summaries : int;
}

type t = {
  t_procs : int;
  t_fams : int;
  t_mode : mode;
  sess_ryw : bool;
  sess_mr : bool;
  sess : sess_state array;
  group_idx : (int list, int) Hashtbl.t;
  group_mem : bool array array;
  clocks : (int, resident) Hashtbl.t;
  sums : (Op.location * Op.value, summary list ref) Hashtbl.t;
  locs : (Op.location, lstate) Hashtbl.t;
  mutable failures : Mixed.failure list; (* reverse finalization order *)
  mutable ops_checked : int;
  mutable reads_checked : int;
  mutable pram_reads : int;
  mutable causal_reads : int;
  mutable group_reads : int;
  fetch_notes : (int, fetch_note Queue.t) Hashtbl.t; (* per proc, FIFO *)
  mutable fetched : int list; (* read ids validated via snapshot, reverse *)
  mutable n_fetched : int;
  mutable ch : int; (* chain count high-water *)
  mutable t_engine : Stream.t option;
}

let clk_get a c = if c < Array.length a then a.(c) else 0

(* Family layout: 0 = causal, 1+i = PRAM(i), 1+procs+k = k-th group. *)

let fam_causal = 0

let lstate t loc =
  match Hashtbl.find_opt t.locs loc with
  | Some ls -> ls
  | None ->
    let ls = { li_dead = false; li_touchers = []; li_values = [] } in
    Hashtbl.add t.locs loc ls;
    ls

let all_procs t = List.init t.t_procs Fun.id

let fam_of_label t ~reader = function
  | Op.PRAM -> 1 + reader
  | Op.Causal -> fam_causal
  | Op.Group g ->
    if not (List.mem reader g) then
      invalid_arg "Online: reader must be a group member";
    List.iter
      (fun m ->
        if m < 0 || m >= t.t_procs then
          invalid_arg "Online: group member out of range")
      g;
    let sg = List.sort_uniq compare g in
    if sg = all_procs t then fam_causal
    else (
      match sg with
      | [ i ] -> 1 + i (* i = reader, by the membership check *)
      | _ -> (
        match Hashtbl.find_opt t.group_idx sg with
        | Some f -> f
        | None ->
          invalid_arg
            "Online: unregistered reader group (pass it via ~groups)"))

(* Lattice points the streaming engine can express as chain-clock
   families. The witness-based points (SC, linearizable, processor,
   cache, slow) need sim-time write/real-time orders that are not
   incremental here — check those offline with [Lattice.failures]. *)
let supports = function
  | Lattice.Causal | Lattice.PRAM | Lattice.Mixed | Lattice.Group _
  | Lattice.Session _ ->
    true
  | Lattice.SC | Lattice.Linearizable | Lattice.Processor | Lattice.Cache
  | Lattice.Slow ->
    false

let make ~procs ?(groups = []) ?model () =
  if procs <= 0 then invalid_arg "Online.make: need at least one process";
  let mode = match model with None -> Per_label | Some m -> Uniform m in
  (match mode with
  | Uniform m when not (supports m) ->
    invalid_arg
      (Printf.sprintf
         "Online.make: model %s is not streamable (sim-time witness \
          orders); use the offline Lattice checker"
         (Lattice.to_string m))
  | _ -> ());
  let groups =
    (* a uniform group point checks every reader against its own
       reader-augmented group *)
    match mode with
    | Uniform (Lattice.Group g) ->
      List.init procs (fun i -> List.sort_uniq compare (i :: g)) @ groups
    | _ -> groups
  in
  let canonical =
    List.sort_uniq compare (List.map (List.sort_uniq compare) groups)
  in
  let all = List.init procs Fun.id in
  let real =
    List.filter
      (fun g ->
        List.iter
          (fun m ->
            if m < 0 || m >= procs then
              invalid_arg "Online.make: group member out of range")
          g;
        match g with [] -> invalid_arg "Online.make: empty group" | [ _ ] -> false | _ -> g <> all)
      canonical
  in
  let sessions = match mode with Uniform (Lattice.Session _) -> true | _ -> false in
  let n_fams = 1 + procs + List.length real in
  if n_fams > 62 then
    invalid_arg "Online.make: too many consistency families (max 62)";
  let sess_ryw, sess_mr =
    match mode with
    | Uniform (Lattice.Session gs) ->
      ( List.mem Lattice.Read_your_writes gs,
        List.mem Lattice.Monotonic_reads gs )
    | _ -> (false, false)
  in
  let group_idx = Hashtbl.create 8 in
  let group_mem =
    Array.of_list
      (List.mapi
         (fun k g ->
           Hashtbl.add group_idx g (1 + procs + k);
           let a = Array.make procs false in
           List.iter (fun m -> a.(m) <- true) g;
           a)
         real)
  in
  {
    t_procs = procs;
    t_fams = n_fams;
    t_mode = mode;
    sess_ryw;
    sess_mr;
    sess =
      (if sessions then
         Array.init procs (fun _ ->
             { se_reads = Hashtbl.create 8; se_writes = Hashtbl.create 8 })
       else [||]);
    group_idx;
    group_mem;
    clocks = Hashtbl.create 256;
    sums = Hashtbl.create 64;
    locs = Hashtbl.create 16;
    failures = [];
    ops_checked = 0;
    reads_checked = 0;
    pram_reads = 0;
    causal_reads = 0;
    group_reads = 0;
    fetch_notes = Hashtbl.create 8;
    fetched = [];
    n_fetched = 0;
    ch = 0;
    t_engine = None;
  }

(* Does family [f] include a sync / reads-from edge with these endpoint
   processes? Program-order edges are included in every family. *)
let edge_in_fam t f ~sp ~np =
  if f = fam_causal then true
  else if f <= t.t_procs then
    let i = f - 1 in
    sp = i || np = i
  else
    let g = t.group_mem.(f - 1 - t.t_procs) in
    g.(sp) || g.(np)

let sync_edge_in_fam = edge_in_fam

let join_into dst src =
  let n = min (Array.length dst) (Array.length src) in
  for c = 0 to n - 1 do
    if src.(c) > dst.(c) then dst.(c) <- src.(c)
  done

let resident t id =
  match Hashtbl.find_opt t.clocks id with
  | Some r -> r
  | None -> invalid_arg (Printf.sprintf "Online: source op %d not resident" id)

let rf_summary t ~loc ~value id =
  match Hashtbl.find_opt t.sums (loc, value) with
  | Some l -> (
    match List.find_opt (fun s -> s.s_id = id) !l with
    | Some s -> s
    | None ->
      invalid_arg (Printf.sprintf "Online: no summary for writer %d" id))
  | None -> invalid_arg (Printf.sprintf "Online: no summaries for writer %d" id)

let values_at (o : Op.t) loc =
  let add acc = function
    | Some (l, v) when l = loc -> v :: acc
    | Some _ | None -> acc
  in
  add (add [] (Op.writes_value o)) (Op.reads_value o)

let rec insert_toucher fo = function
  | [] -> [ fo ]
  | x :: rest as l ->
    if fo.f_id < x.f_id then fo :: l else x :: insert_toucher fo rest

let rec insert_summary s = function
  | [] -> [ s ]
  | x :: rest as l ->
    if s.s_id < x.s_id then s :: l else x :: insert_summary s rest

(* --- the read rule, replicating Read_rule.check query-for-query ----- *)

let verdict t (op : Op.t) strict ~loc ~value ~fam =
  let sr = strict.(fam) in
  let rel_to_r chain rank = clk_get sr chain > rank in
  let keep fo = not (fo.f_read && fo.f_proc <> op.proc) in
  let bad fo = List.exists (fun u -> u <> value) fo.f_vals in
  let eligible fo =
    fo.f_id <> op.id && rel_to_r fo.f_chain fo.f_rank && keep fo && bad fo
  in
  let interposed w =
    List.find_opt
      (fun fo -> fo.f_mask land (1 lsl fam) <> 0 && eligible fo)
      w.s_followers
  in
  let cands =
    match Hashtbl.find_opt t.sums (loc, value) with
    | Some l -> List.filter (fun w -> rel_to_r w.s_chain w.s_rank) !l
    | None -> []
  in
  let rec first_valid = function
    | [] -> None
    | w :: rest ->
      if interposed w = None then Some w else first_valid rest
  in
  match first_valid cands with
  | Some _ -> Read_rule.Valid
  | None -> (
    if value = 0 then
      (* virtual initial write: every toucher of the location counts *)
      let touchers =
        match Hashtbl.find_opt t.locs loc with
        | Some ls -> ls.li_touchers
        | None -> []
      in
      match List.find_opt eligible touchers with
      | None -> Read_rule.Valid
      | Some fo -> Read_rule.Overwritten fo.f_id
    else
      match cands with
      | [] -> Read_rule.No_matching_write
      | w :: _ -> (
        match interposed w with
        | Some fo -> Read_rule.Overwritten fo.f_id
        | None -> assert false))

(* --- the read rule on a fetch snapshot (partial view) ---------------- *)

(* Validity of a fetched read is membership of its value in the
   admissible set the runtime derived from the snapshot clock. For
   failure diagnostics the interposing write is named by the smallest
   live summary id of any admissible value (the admissible writes are
   exactly those the home had applied over the returned value); when no
   such summary has finalized yet the interposer is reported as [-1] —
   fetched diagnostics are best-effort, and the differential suite
   compares diagnostics on non-fetched reads only. *)
let fetched_verdict t ~loc ~value fn =
  let admissible_interposer () =
    let ids =
      List.concat_map
        (fun v ->
          if v = value then []
          else
            match Hashtbl.find_opt t.sums (loc, v) with
            | Some l -> List.map (fun s -> s.s_id) !l
            | None -> [])
        fn.fn_admissible
    in
    match ids with
    | [] -> Read_rule.Overwritten (-1)
    | ids -> Read_rule.Overwritten (List.fold_left min max_int ids)
  in
  if value = 0 then
    if fn.fn_zero_ok then Read_rule.Valid else admissible_interposer ()
  else if List.mem value fn.fn_admissible then Read_rule.Valid
  else if Hashtbl.mem t.sums (loc, value) then admissible_interposer ()
  else Read_rule.No_matching_write

(* --- the read rule at a session point -------------------------------- *)

(* Replicates [Read_rule.check] under [Lattice.axioms_of (Session gs)]:
   the relation is the reads-from edges touching the reader plus the
   reader's own write→read (ryw) / read→read (mr) edges, so

   - a real candidate writer [w] reaches an interposer o(x)u only
     through one of the reader's own reads: w →rf r1(x)v →mr o →mr r,
     or (own write, ryw) w →ryw o →mr r;
   - against the virtual initial write, the reader's own earlier reads
     (mr) and writes (ryw) of another value interpose, as do the
     foreign writers of a value an earlier read returned (rf;mr).

   Ids are compared to pick the same (smallest-id) interposer as the
   offline scan. Under the unique-writes assumption of Section 3 the
   writers a read's verdict consulted are exactly the streamed
   summaries at its finalization. *)
let session_verdict t (op : Op.t) ~loc ~value =
  let st = t.sess.(op.proc) in
  let recs tbl =
    match Hashtbl.find_opt tbl loc with Some l -> List.rev !l | None -> []
  in
  let reads = recs st.se_reads and writes = recs st.se_writes in
  let cands =
    match Hashtbl.find_opt t.sums (loc, value) with
    | Some l -> List.map (fun s -> (s.s_id, s.s_proc)) !l (* id ascending *)
    | None -> []
  in
  let min_id = function
    | [] -> None
    | ids -> Some (List.fold_left min max_int ids)
  in
  let interposers (w_id, w_proc) =
    if not t.sess_mr then []
    else
      let later_other_reads from_id =
        List.filter_map
          (fun r ->
            if r.sr_id > from_id && r.sr_value <> value then Some r.sr_id
            else None)
          reads
      in
      (match List.find_opt (fun r -> r.sr_value = value) reads with
      | Some rv -> later_other_reads rv.sr_id
      | None -> [])
      @
      if
        t.sess_ryw && w_proc = op.proc
        && List.exists (fun w -> w.sr_id = w_id) writes
      then later_other_reads w_id
      else []
  in
  let rec first_valid = function
    | [] -> None
    | c :: rest -> if interposers c = [] then Some c else first_valid rest
  in
  match first_valid cands with
  | Some _ -> Read_rule.Valid
  | None -> (
    if value = 0 then
      (* virtual initial write *)
      let virt =
        (if t.sess_mr then
           List.concat_map
             (fun r ->
               if r.sr_value <> value then r.sr_id :: r.sr_writers else [])
             reads
         else [])
        @
        if t.sess_ryw then
          List.filter_map
            (fun w -> if w.sr_value <> value then Some w.sr_id else None)
            writes
        else []
      in
      match min_id virt with
      | None -> Read_rule.Valid
      | Some o -> Read_rule.Overwritten o
    else
      match cands with
      | [] -> Read_rule.No_matching_write
      | c :: _ -> (
        match min_id (interposers c) with
        | Some o -> Read_rule.Overwritten o
        | None -> assert false))

(* the reader's own finalized memory operations, per location, in
   program order — consulted by [session_verdict] for later reads *)
let session_register t (op : Op.t) =
  if Array.length t.sess > 0 then begin
    let st = t.sess.(op.proc) in
    let push tbl loc r =
      match Hashtbl.find_opt tbl loc with
      | Some l -> l := r :: !l
      | None -> Hashtbl.add tbl loc (ref [ r ])
    in
    (* awaits never carry session edges: they are neither memory reads
       (mr) nor write-like (ryw), so only [Op.Read] enters [se_reads] *)
    (match (Op.is_memory_read op, Op.reads_value op) with
    | true, Some (loc, v) ->
      let sr_writers =
        match Hashtbl.find_opt t.sums (loc, v) with
        | Some l -> List.map (fun s -> s.s_id) !l
        | None -> []
      in
      push st.se_reads loc { sr_id = op.id; sr_value = v; sr_writers }
    | _ -> ());
    match Op.writes_value op with
    | Some (loc, v) ->
      push st.se_writes loc { sr_id = op.id; sr_value = v; sr_writers = [] }
    | None -> ()
  end

(* --- finalization ---------------------------------------------------- *)

let finalize t (info : Stream.info) =
  let op = info.Stream.op in
  t.ops_checked <- t.ops_checked + 1;
  if info.Stream.chain + 1 > t.ch then t.ch <- info.Stream.chain + 1;
  let strict = Array.init t.t_fams (fun _ -> Array.make t.ch 0) in
  let join_filtered ~filter clk ~sp =
    for f = 0 to t.t_fams - 1 do
      if filter t f ~sp ~np:op.proc then join_into strict.(f) clk.(f)
    done
  in
  List.iter
    (fun e ->
      match e with
      | Stream.U s ->
        let r = resident t s in
        Array.iteri (fun f d -> join_into d r.r_clk.(f)) strict
      | Stream.S s ->
        let r = resident t s in
        join_filtered ~filter:sync_edge_in_fam r.r_clk ~sp:r.r_proc
      | Stream.RF s -> (
        match Op.reads_value op with
        | Some (loc, value) ->
          let sm = rf_summary t ~loc ~value s in
          join_filtered ~filter:edge_in_fam sm.s_clk ~sp:sm.s_proc
        | None -> ()))
    info.Stream.in_edges;
  (* read validation, before this op registers as its own interposer *)
  (match op.kind with
  | Op.Read { loc; label; value } ->
    t.reads_checked <- t.reads_checked + 1;
    (match label with
    | Op.PRAM -> t.pram_reads <- t.pram_reads + 1
    | Op.Causal -> t.causal_reads <- t.causal_reads + 1
    | Op.Group _ -> t.group_reads <- t.group_reads + 1);
    (* a queued fetch note matches this read iff it heads the process's
       note queue with the same location: notes are enqueued immediately
       before the read is recorded (atomically — no suspension between),
       and per-process finalization order is program order, so the k-th
       noted read of a process finalizes k-th among its noted reads *)
    let fetch =
      match Hashtbl.find_opt t.fetch_notes op.proc with
      | Some q when (not (Queue.is_empty q)) && (Queue.peek q).fn_loc = loc ->
        Some (Queue.pop q)
      | _ -> None
    in
    let v =
      match (fetch, t.t_mode) with
      | Some fn, _ ->
        t.fetched <- op.id :: t.fetched;
        t.n_fetched <- t.n_fetched + 1;
        fetched_verdict t ~loc ~value fn
      | None, Uniform (Lattice.Session _) -> session_verdict t op ~loc ~value
      | None, _ ->
        let fam =
          match t.t_mode with
          | Per_label | Uniform Lattice.Mixed ->
            fam_of_label t ~reader:op.proc label
          | Uniform Lattice.Causal -> fam_causal
          | Uniform Lattice.PRAM -> 1 + op.proc
          | Uniform (Lattice.Group g) ->
            fam_of_label t ~reader:op.proc
              (Op.Group (List.sort_uniq compare (op.proc :: g)))
          | Uniform _ -> assert false (* rejected by [make] *)
        in
        verdict t op strict ~loc ~value ~fam
    in
    (match v with
    | Read_rule.Valid -> ()
    | v ->
      t.failures <-
        { Mixed.read_id = op.id; label; verdict = v } :: t.failures)
  | _ -> ());
  session_register t op;
  (* interposer registration *)
  (match
     match (Op.writes_value op, Op.reads_value op) with
     | Some (l, _), _ | None, Some (l, _) -> Some l
     | None, None -> None
   with
  | Some loc ->
    let vals = values_at op loc in
    if vals <> [] then begin
      let base mask =
        {
          f_id = op.id;
          f_chain = info.Stream.chain;
          f_rank = info.Stream.rank;
          f_proc = op.proc;
          f_read = Op.is_memory_read op;
          f_vals = vals;
          f_mask = mask;
        }
      in
      let ls = lstate t loc in
      if not ls.li_dead then
        ls.li_touchers <- insert_toucher (base 0) ls.li_touchers;
      List.iter
        (fun v' ->
          match Hashtbl.find_opt t.sums (loc, v') with
          | Some l ->
            List.iter
              (fun w ->
                if w.s_id <> op.id then begin
                  let mask = ref 0 in
                  for f = 0 to t.t_fams - 1 do
                    if clk_get strict.(f) w.s_chain > w.s_rank then
                      mask := !mask lor (1 lsl f)
                  done;
                  if !mask <> 0 then
                    w.s_followers <- insert_toucher (base !mask) w.s_followers
                end)
              !l
          | None -> ())
        ls.li_values
    end
  | None -> ());
  (* bump own chain: [strict] becomes the inclusive clock set *)
  Array.iter
    (fun a ->
      let r = info.Stream.rank + 1 in
      if r > a.(info.Stream.chain) then a.(info.Stream.chain) <- r)
    strict;
  (* writer summary *)
  (match Op.writes_value op with
  | Some (loc, v) ->
    let s =
      {
        s_id = op.id;
        s_proc = op.proc;
        s_chain = info.Stream.chain;
        s_rank = info.Stream.rank;
        s_clk = strict;
        s_followers = [];
      }
    in
    (match Hashtbl.find_opt t.sums (loc, v) with
    | Some l -> l := insert_summary s !l
    | None -> Hashtbl.add t.sums (loc, v) (ref [ s ]));
    let ls = lstate t loc in
    if not (List.mem v ls.li_values) then ls.li_values <- v :: ls.li_values
  | None -> ());
  Hashtbl.replace t.clocks op.id { r_proc = op.proc; r_clk = strict }

let retire t id = Hashtbl.remove t.clocks id

let dead t loc value =
  Hashtbl.remove t.sums (loc, value);
  match Hashtbl.find_opt t.locs loc with
  | Some ls ->
    ls.li_values <- List.filter (fun v -> v <> value) ls.li_values;
    if value = 0 then begin
      ls.li_dead <- true;
      ls.li_touchers <- []
    end
  | None -> if value = 0 then (lstate t loc).li_dead <- true

let callbacks t =
  {
    Stream.on_finalize = (fun info -> finalize t info);
    on_retire = (fun id -> retire t id);
    on_dead_value = (fun ~loc ~value -> dead t loc value);
    on_end = (fun () -> ());
  }

(* --- public API ------------------------------------------------------ *)

let create ~procs ?groups ?model () =
  let t = make ~procs ?groups ?model () in
  let e = Stream.create ~procs (callbacks t) in
  t.t_engine <- Some e;
  t

let engine t =
  match t.t_engine with
  | Some e -> e
  | None -> invalid_arg "Online.engine: checker has no engine"

let sink t = Stream.sink (engine t)
let failures t = List.sort (fun a b -> compare a.Mixed.read_id b.Mixed.read_id) t.failures
let is_consistent t = t.failures = []

let note_fetch t ~proc ~loc ~admissible ~zero_ok =
  if proc < 0 || proc >= t.t_procs then
    invalid_arg "Online.note_fetch: process out of range";
  let note = { fn_loc = loc; fn_admissible = admissible; fn_zero_ok = zero_ok } in
  match Hashtbl.find_opt t.fetch_notes proc with
  | Some q -> Queue.push note q
  | None ->
    let q = Queue.create () in
    Queue.push note q;
    Hashtbl.add t.fetch_notes proc q

let fetched_ids t = List.sort compare t.fetched

let stats t =
  let live =
    Hashtbl.fold (fun _ l acc -> acc + List.length !l) t.sums 0
  in
  let e = t.t_engine in
  {
    ops_checked = t.ops_checked;
    reads_checked = t.reads_checked;
    pram_reads = t.pram_reads;
    causal_reads = t.causal_reads;
    group_reads = t.group_reads;
    fetched_reads = t.n_fetched;
    failure_count = List.length t.failures;
    chains = t.ch;
    max_resident = (match e with Some e -> Stream.max_resident e | None -> 0);
    live_summaries = live;
  }

let attach_metrics t reg =
  let module M = Mc_obs.Metrics in
  let fn name help f =
    M.Registry.gauge_fn reg ~help name (fun () -> float_of_int (f (stats t)))
  in
  fn "mc_online_ops_checked" "operations validated by the online checker" (fun s ->
      s.ops_checked);
  fn "mc_online_reads_checked" "reads validated" (fun s -> s.reads_checked);
  fn "mc_online_failures" "invalid reads found" (fun s -> s.failure_count);
  fn "mc_online_chains" "concurrency chains allocated" (fun s -> s.chains);
  fn "mc_online_window_high_water" "high-water of the in-flight window" (fun s ->
      s.max_resident);
  fn "mc_online_live_summaries" "writer summaries not yet reclaimed" (fun s ->
      s.live_summaries)

let groups_of_history h =
  let acc = ref [] in
  Array.iter
    (fun (o : Op.t) ->
      match o.kind with
      | Op.Read { label = Op.Group g; _ } ->
        let sg = List.sort_uniq compare g in
        if not (List.mem sg !acc) then acc := sg :: !acc
      | _ -> ())
    (History.ops h);
  !acc

let check ?groups ?model h =
  let groups =
    match groups with Some g -> g | None -> groups_of_history h
  in
  let t = create ~procs:(History.procs h) ~groups ?model () in
  Stream.replay (engine t) h;
  t
