module Engine = Mc_sim.Engine
module Network = Mc_net.Network
module Latency = Mc_net.Latency
module Op = Mc_history.Op
module Recorder = Mc_history.Recorder
module Summary = Mc_util.Stats.Summary

type msg =
  (* coherence *)
  | Read_req of { proc : int; loc : Op.location }
  | Read_data of { loc : Op.location; numeric : int; tag : int }
  | Write_req of { proc : int; loc : Op.location }
  | Write_grant of { loc : Op.location; numeric : int; tag : int }
  | Inv_req of { loc : Op.location }
  | Inv_ack of { proc : int; loc : Op.location }
  | Fetch_req of { loc : Op.location; downgrade : bool }
  | Fetch_reply of { proc : int; loc : Op.location; numeric : int; tag : int }
  (* synchronization, centralized at node 0 *)
  | Lock_req of { proc : int; lock : Op.lock_name; write : bool }
  | Lock_grant of { seq : int }
  | Unlock_req of { proc : int; lock : Op.lock_name; write : bool }
  | Unlock_ack of { seq : int }
  | Bar_arrive of { proc : int; episode : int }
  | Bar_release

let kind = function
  | Read_req _ -> "read_req"
  | Read_data _ -> "read_data"
  | Write_req _ -> "write_req"
  | Write_grant _ -> "write_grant"
  | Inv_req _ -> "inv_req"
  | Inv_ack _ -> "inv_ack"
  | Fetch_req _ -> "fetch_req"
  | Fetch_reply _ -> "fetch_reply"
  | Lock_req _ -> "lock_req"
  | Lock_grant _ -> "lock_grant"
  | Unlock_req _ -> "unlock_req"
  | Unlock_ack _ -> "unlock_ack"
  | Bar_arrive _ -> "bar_arrive"
  | Bar_release -> "bar_release"

type cache_state = Modified | Shared

type cache_line = {
  mutable state : cache_state;
  mutable numeric : int;
  mutable tag : int;
}

(* A directory transaction in flight for one location. *)
type txn =
  | Read_txn of { requester : int }
  | Write_txn of { requester : int; mutable pending_acks : int }

type dir_entry = {
  mutable owner : int option;
  mutable sharers : int list;
  mutable mem_numeric : int;
  mutable mem_tag : int;
  mutable busy : txn option;
  mutable queue : txn list;
}

type lock_state = {
  mutable writer : int option;
  mutable readers : int list;
  mutable lqueue : (int * bool) list;
  mutable seq : int;
}

type t = {
  engine : Engine.t;
  procs : int;
  op_cost : float;
  poll_interval : float;
  net : msg Network.t;
  directories : (Op.location, dir_entry) Hashtbl.t array; (* per home node *)
  caches : (Op.location, cache_line) Hashtbl.t array; (* per client *)
  locks : (Op.lock_name, lock_state) Hashtbl.t; (* at node 0 *)
  mutable bar_count : int;
  mutable bar_episode : int;
  replies : (msg -> unit) option array;
  recorder : Recorder.t option;
  mutable tag_counter : int;
  waits : (string, Summary.t) Hashtbl.t;
  mutable hits : int;
  mutable misses : int;
}

let home t loc = Hashtbl.hash loc mod t.procs

let dir_entry t node loc =
  match Hashtbl.find_opt t.directories.(node) loc with
  | Some e -> e
  | None ->
    let e =
      {
        owner = None;
        sharers = [];
        mem_numeric = 0;
        mem_tag = 0;
        busy = None;
        queue = [];
      }
    in
    Hashtbl.add t.directories.(node) loc e;
    e

let debug = ref false

let msg_to_string = function
  | Read_req { proc; loc } -> Printf.sprintf "Read_req p%d %s" proc loc
  | Read_data { loc; _ } -> Printf.sprintf "Read_data %s" loc
  | Write_req { proc; loc } -> Printf.sprintf "Write_req p%d %s" proc loc
  | Write_grant { loc; _ } -> Printf.sprintf "Write_grant %s" loc
  | Inv_req { loc } -> Printf.sprintf "Inv_req %s" loc
  | Inv_ack { proc; loc } -> Printf.sprintf "Inv_ack p%d %s" proc loc
  | Fetch_req { loc; downgrade } -> Printf.sprintf "Fetch_req %s dg=%b" loc downgrade
  | Fetch_reply { proc; loc; _ } -> Printf.sprintf "Fetch_reply p%d %s" proc loc
  | _ -> "sync"

let send t ~src ~dst msg =
  if !debug then Printf.printf "  [%8.1f] %d -> %d : %s\n" (Engine.now t.engine) src dst (msg_to_string msg);
  Network.send t.net ~src ~dst ~kind:(kind msg) msg

(* ------------------------------------------------------------------ *)
(* Directory engine (runs at each location's home node)                *)
(* ------------------------------------------------------------------ *)

let rec start_txn t node loc e txn =
  match txn with
  | Read_txn { requester } -> (
    match e.owner with
    | Some o when o <> requester ->
      e.busy <- Some txn;
      send t ~src:node ~dst:o (Fetch_req { loc; downgrade = true })
    | Some _ | None ->
      (* serve directly from memory *)
      if not (List.mem requester e.sharers) then e.sharers <- requester :: e.sharers;
      send t ~src:node ~dst:requester
        (Read_data { loc; numeric = e.mem_numeric; tag = e.mem_tag }))
  | Write_txn w ->
    e.busy <- Some txn;
    let invalidations = ref 0 in
    (match e.owner with
    | Some o when o <> w.requester ->
      incr invalidations;
      send t ~src:node ~dst:o (Fetch_req { loc; downgrade = false })
    | Some _ | None -> ());
    List.iter
      (fun s ->
        if s <> w.requester then begin
          incr invalidations;
          send t ~src:node ~dst:s (Inv_req { loc })
        end)
      e.sharers;
    w.pending_acks <- !invalidations;
    if !invalidations = 0 then finish_write t node loc e w.requester

and finish_write t node loc e requester =
  e.owner <- Some requester;
  e.sharers <- [];
  e.busy <- None;
  send t ~src:node ~dst:requester
    (Write_grant { loc; numeric = e.mem_numeric; tag = e.mem_tag });
  next_txn t node loc e

and finish_read t node loc e requester =
  e.busy <- None;
  if not (List.mem requester e.sharers) then e.sharers <- requester :: e.sharers;
  send t ~src:node ~dst:requester
    (Read_data { loc; numeric = e.mem_numeric; tag = e.mem_tag });
  next_txn t node loc e

and next_txn t node loc e =
  match e.queue with
  | [] -> ()
  | txn :: rest ->
    e.queue <- rest;
    start_txn t node loc e txn

let submit_txn t node loc txn =
  let e = dir_entry t node loc in
  match e.busy with
  | Some _ -> e.queue <- e.queue @ [ txn ]
  | None -> start_txn t node loc e txn

let handle_fetch_reply t node ~loc ~proc ~numeric ~tag =
  let e = dir_entry t node loc in
  e.mem_numeric <- numeric;
  e.mem_tag <- tag;
  match e.busy with
  | Some (Read_txn { requester }) ->
    (* previous owner keeps a shared copy *)
    e.owner <- None;
    e.sharers <- [ proc ];
    finish_read t node loc e requester
  | Some (Write_txn w) ->
    e.owner <- None;
    w.pending_acks <- w.pending_acks - 1;
    if w.pending_acks = 0 then finish_write t node loc e w.requester
  | None -> invalid_arg "Sc_invalidate: fetch reply with no transaction"

let handle_inv_ack t node ~loc ~proc =
  let e = dir_entry t node loc in
  e.sharers <- List.filter (fun s -> s <> proc) e.sharers;
  match e.busy with
  | Some (Write_txn w) ->
    w.pending_acks <- w.pending_acks - 1;
    if w.pending_acks = 0 then finish_write t node loc e w.requester
  | Some (Read_txn _) | None ->
    invalid_arg "Sc_invalidate: invalidation ack with no write transaction"

(* ------------------------------------------------------------------ *)
(* Lock / barrier manager (node 0)                                     *)
(* ------------------------------------------------------------------ *)

let lock_state t lock =
  match Hashtbl.find_opt t.locks lock with
  | Some s -> s
  | None ->
    let s = { writer = None; readers = []; lqueue = []; seq = 0 } in
    Hashtbl.add t.locks lock s;
    s

let next_seq s =
  let seq = s.seq in
  s.seq <- seq + 1;
  seq

let rec try_grant t s =
  match s.lqueue with
  | [] -> ()
  | (proc, true) :: rest ->
    if s.writer = None && s.readers = [] then begin
      s.lqueue <- rest;
      s.writer <- Some proc;
      send t ~src:0 ~dst:proc (Lock_grant { seq = next_seq s })
    end
  | (proc, false) :: rest ->
    if s.writer = None then begin
      s.lqueue <- rest;
      s.readers <- proc :: s.readers;
      send t ~src:0 ~dst:proc (Lock_grant { seq = next_seq s });
      try_grant t s
    end

let handle_sync t msg =
  match msg with
  | Lock_req { proc; lock; write } ->
    let s = lock_state t lock in
    s.lqueue <- s.lqueue @ [ (proc, write) ];
    try_grant t s
  | Unlock_req { proc; lock; write } ->
    let s = lock_state t lock in
    (if write then s.writer <- None
     else
       let rec remove_one = function
         | [] -> []
         | p :: rest -> if p = proc then rest else p :: remove_one rest
       in
       s.readers <- remove_one s.readers);
    send t ~src:0 ~dst:proc (Unlock_ack { seq = next_seq s });
    try_grant t s
  | Bar_arrive { proc = _; episode } ->
    if episode <> t.bar_episode then
      invalid_arg "Sc_invalidate: barrier episode mismatch";
    t.bar_count <- t.bar_count + 1;
    if t.bar_count = t.procs then begin
      t.bar_count <- 0;
      t.bar_episode <- episode + 1;
      for dst = 0 to t.procs - 1 do
        send t ~src:0 ~dst Bar_release
      done
    end
  | _ -> invalid_arg "Sc_invalidate: unexpected sync message"

(* ------------------------------------------------------------------ *)
(* Node message handler                                                *)
(* ------------------------------------------------------------------ *)

let resume_client t node msg =
  match t.replies.(node) with
  | Some resume ->
    t.replies.(node) <- None;
    resume msg
  | None -> invalid_arg "Sc_invalidate: reply with no pending request"

let handle_message t node ~src msg =
  ignore src;
  match msg with
  | Read_req { proc; loc } -> submit_txn t node loc (Read_txn { requester = proc })
  | Write_req { proc; loc } ->
    submit_txn t node loc (Write_txn { requester = proc; pending_acks = 0 })
  | Fetch_reply { proc; loc; numeric; tag } ->
    handle_fetch_reply t node ~loc ~proc ~numeric ~tag
  | Inv_ack { proc; loc } -> handle_inv_ack t node ~loc ~proc
  | Inv_req { loc } ->
    Hashtbl.remove t.caches.(node) loc;
    send t ~src:node ~dst:(home t loc) (Inv_ack { proc = node; loc })
  | Fetch_req { loc; downgrade } -> (
    match Hashtbl.find_opt t.caches.(node) loc with
    | Some line ->
      let reply =
        Fetch_reply { proc = node; loc; numeric = line.numeric; tag = line.tag }
      in
      if downgrade then line.state <- Shared
      else Hashtbl.remove t.caches.(node) loc;
      send t ~src:node ~dst:(home t loc) reply
    | None -> invalid_arg "Sc_invalidate: fetch for a line we do not hold")
  | Read_data { loc; numeric; tag } ->
    (* install the line inside the delivery handler, not in the resumed
       fiber: a Fetch_req or Inv_req delivered at the same instant must
       already see it (the home serializes them after this grant) *)
    Hashtbl.replace t.caches.(node) loc { state = Shared; numeric; tag };
    resume_client t node msg
  | Write_grant { loc; numeric; tag } ->
    Hashtbl.replace t.caches.(node) loc { state = Modified; numeric; tag };
    resume_client t node msg
  | Lock_grant _ | Unlock_ack _ | Bar_release -> resume_client t node msg
  | Lock_req _ | Unlock_req _ | Bar_arrive _ -> handle_sync t msg

(* ------------------------------------------------------------------ *)
(* Construction                                                        *)
(* ------------------------------------------------------------------ *)

let create engine ?latency ?(record = false) ?(op_cost = 0.1) ?(poll_interval = 10.)
    ?(send_cost = 2.0) ?(byte_cost = 0.02) ~procs () =
  let latency =
    match latency with
    | Some l -> l
    | None -> Latency.uniform (Mc_util.Rng.make 0xC0FFEE) ~lo:30. ~hi:70.
  in
  let net =
    Network.create engine ~nodes:procs ~latency ~send_cost ~byte_cost ()
  in
  let t =
    {
      engine;
      procs;
      op_cost;
      poll_interval;
      net;
      directories = Array.init procs (fun _ -> Hashtbl.create 32);
      caches = Array.init procs (fun _ -> Hashtbl.create 32);
      locks = Hashtbl.create 8;
      bar_count = 0;
      bar_episode = 0;
      replies = Array.make procs None;
      recorder = (if record then Some (Recorder.create ~procs ()) else None);
      tag_counter = 0;
      waits = Hashtbl.create 8;
      hits = 0;
      misses = 0;
    }
  in
  for node = 0 to procs - 1 do
    Network.set_handler net node (fun ~src msg -> handle_message t node ~src msg)
  done;
  t

let note_wait t name dt =
  let s =
    match Hashtbl.find_opt t.waits name with
    | Some s -> s
    | None ->
      let s = Summary.create () in
      Hashtbl.add t.waits name s;
      s
  in
  Summary.add s dt

let timed t name f =
  let t0 = Engine.now t.engine in
  let r = f () in
  note_wait t name (Engine.now t.engine -. t0);
  r

let rpc t client msg =
  send t ~src:client ~dst:(match msg with
      | Read_req { loc; _ } | Write_req { loc; _ } -> home t loc
      | Lock_req _ | Unlock_req _ | Bar_arrive _ -> 0
      | _ -> invalid_arg "Sc_invalidate.rpc: not a request")
    msg;
  Engine.suspend t.engine (fun resume ->
      if t.replies.(client) <> None then
        invalid_arg "Sc_invalidate: overlapping requests from one client";
      t.replies.(client) <- Some resume)

let recorded_value ~numeric ~tag = if tag <> 0 then tag else numeric

let fresh_tag t client =
  t.tag_counter <- t.tag_counter + 1;
  ((client + 1) lsl 40) lor t.tag_counter

let record_span t client ~sync_seq kind_of =
  match t.recorder with
  | Some r ->
    let tok = Recorder.start r ~proc:client in
    fun result ->
      ignore (Recorder.finish r tok ?sync_seq:(sync_seq result) (kind_of result))
  | None -> fun _ -> ()

(* ------------------------------------------------------------------ *)
(* Client operations                                                   *)
(* ------------------------------------------------------------------ *)

let read_line t client loc =
  match Hashtbl.find_opt t.caches.(client) loc with
  | Some line ->
    t.hits <- t.hits + 1;
    (line.numeric, line.tag)
  | None -> (
    t.misses <- t.misses + 1;
    (* the delivery handler installed the line; the returned values are
       the linearized ones even if the line was invalidated again before
       this fiber resumed *)
    match rpc t client (Read_req { proc = client; loc }) with
    | Read_data { numeric; tag; _ } -> (numeric, tag)
    | _ -> assert false)

(* obtain an exclusive (Modified) line, returning it for mutation. The
   grant installs the line in the delivery handler; if a concurrent
   transaction stole it again before this fiber resumed, retry - the
   standard cache-controller race resolution. *)
let rec exclusive_line t client loc =
  match Hashtbl.find_opt t.caches.(client) loc with
  | Some ({ state = Modified; _ } as line) -> line
  | Some _ | None -> (
    match rpc t client (Write_req { proc = client; loc }) with
    | Write_grant _ -> exclusive_line t client loc
    | _ -> assert false)

let api t client : Mc_dsm.Api.t =
  let charge () = Engine.delay t.engine t.op_cost in
  let read ?(label = Op.Causal) loc =
    charge ();
    timed t "read" (fun () ->
        let finish =
          record_span t client
            ~sync_seq:(fun _ -> None)
            (fun (numeric, tag) ->
              Op.Read { loc; label; value = recorded_value ~numeric ~tag })
        in
        let numeric, tag = read_line t client loc in
        finish (numeric, tag);
        numeric)
  in
  let write_tagged loc v tag =
    timed t "write" (fun () ->
        let finish =
          record_span t client
            ~sync_seq:(fun _ -> None)
            (fun () -> Op.Write { loc; value = recorded_value ~numeric:v ~tag })
        in
        let line = exclusive_line t client loc in
        line.numeric <- v;
        line.tag <- tag;
        finish ())
  in
  let write loc v =
    charge ();
    write_tagged loc v (fresh_tag t client)
  in
  let init_counter loc v =
    charge ();
    write_tagged loc v 0
  in
  let decrement loc ~amount =
    charge ();
    timed t "decrement" (fun () ->
        let finish =
          record_span t client
            ~sync_seq:(fun _ -> None)
            (fun observed -> Op.Decrement { loc; amount; observed })
        in
        let line = exclusive_line t client loc in
        let observed = line.numeric in
        line.numeric <- observed - amount;
        finish observed)
  in
  let lock_op ~write:w ~acquire lock =
    charge ();
    let name =
      match w, acquire with
      | true, true -> "write_lock"
      | true, false -> "write_unlock"
      | false, true -> "read_lock"
      | false, false -> "read_unlock"
    in
    timed t name (fun () ->
        let finish =
          record_span t client
            ~sync_seq:(fun seq -> Some seq)
            (fun _seq ->
              match w, acquire with
              | true, true -> Op.Write_lock lock
              | true, false -> Op.Write_unlock lock
              | false, true -> Op.Read_lock lock
              | false, false -> Op.Read_unlock lock)
        in
        let msg =
          if acquire then Lock_req { proc = client; lock; write = w }
          else Unlock_req { proc = client; lock; write = w }
        in
        match rpc t client msg with
        | Lock_grant { seq } | Unlock_ack { seq } -> finish seq
        | _ -> assert false)
  in
  let episode = ref 0 in
  let barrier () =
    charge ();
    timed t "barrier" (fun () ->
        let k = !episode in
        incr episode;
        let finish =
          record_span t client ~sync_seq:(fun _ -> None) (fun () -> Op.Barrier k)
        in
        match rpc t client (Bar_arrive { proc = client; episode = k }) with
        | Bar_release -> finish ()
        | _ -> assert false)
  in
  let await loc v =
    charge ();
    timed t "await" (fun () ->
        let finish =
          record_span t client
            ~sync_seq:(fun _ -> None)
            (fun (numeric, tag) ->
              Op.Await { loc; value = recorded_value ~numeric ~tag })
        in
        (* poll through the cache: hits are local; an invalidation makes
           the next poll fetch fresh data *)
        let rec poll () =
          let numeric, tag = read_line t client loc in
          if numeric = v then finish (numeric, tag)
          else begin
            Engine.delay t.engine t.poll_interval;
            poll ()
          end
        in
        poll ())
  in
  {
    Mc_dsm.Api.proc_id = client;
    n_procs = t.procs;
    read;
    write;
    init_counter;
    decrement;
    read_lock = lock_op ~write:false ~acquire:true;
    read_unlock = lock_op ~write:false ~acquire:false;
    write_lock = lock_op ~write:true ~acquire:true;
    write_unlock = lock_op ~write:true ~acquire:false;
    barrier;
    await;
    compute = (fun cost -> Engine.delay t.engine cost);
  }

let spawn t i f =
  Engine.spawn t.engine ~name:(Printf.sprintf "inv-client-%d" i) (fun () ->
      f (api t i))

let run t = Engine.run t.engine

let history t =
  match t.recorder with
  | Some r -> Recorder.history r
  | None -> invalid_arg "Sc_invalidate.history: recording is disabled"

let peek t loc =
  let e = dir_entry t (home t loc) loc in
  match e.owner with
  | Some o -> (
    match Hashtbl.find_opt t.caches.(o) loc with
    | Some line -> line.numeric
    | None -> e.mem_numeric)
  | None -> e.mem_numeric

let messages_sent t = Network.messages_sent t.net
let bytes_sent t = Network.bytes_sent t.net

let wait_summaries t =
  Hashtbl.fold (fun name s acc -> (name, s) :: acc) t.waits []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let cache_hits t = t.hits
let cache_misses t = t.misses
