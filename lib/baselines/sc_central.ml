module Engine = Mc_sim.Engine
module Network = Mc_net.Network
module Latency = Mc_net.Latency
module Op = Mc_history.Op
module Recorder = Mc_history.Recorder
module Summary = Mc_util.Stats.Summary

type msg =
  | Read_req of { proc : int; loc : Op.location }
  | Read_reply of { numeric : int; tag : int }
  | Write_req of { proc : int; loc : Op.location; numeric : int; tag : int }
  | Write_ack
  | Dec_req of { proc : int; loc : Op.location; amount : int }
  | Dec_reply of { observed : int }
  | Lock_req of { proc : int; lock : Op.lock_name; write : bool }
  | Lock_grant of { seq : int }
  | Unlock_req of { proc : int; lock : Op.lock_name; write : bool }
  | Unlock_ack of { seq : int }
  | Bar_arrive of { proc : int; episode : int }
  | Bar_release
  | Await_req of { proc : int; loc : Op.location; value : int }
  | Await_fire of { numeric : int; tag : int }

let kind = function
  | Read_req _ -> "read_req"
  | Read_reply _ -> "read_reply"
  | Write_req _ -> "write_req"
  | Write_ack -> "write_ack"
  | Dec_req _ -> "dec_req"
  | Dec_reply _ -> "dec_reply"
  | Lock_req _ -> "lock_req"
  | Lock_grant _ -> "lock_grant"
  | Unlock_req _ -> "unlock_req"
  | Unlock_ack _ -> "unlock_ack"
  | Bar_arrive _ -> "bar_arrive"
  | Bar_release -> "bar_release"
  | Await_req _ -> "await_req"
  | Await_fire _ -> "await_fire"

type lock_state = {
  mutable writer : int option;
  mutable readers : int list;
  mutable queue : (int * bool) list; (* proc, write *)
  mutable seq : int;
}

type server = {
  memory : (Op.location, int * int) Hashtbl.t; (* numeric, tag *)
  locks : (Op.lock_name, lock_state) Hashtbl.t;
  mutable bar_count : int;
  mutable bar_episode : int;
  mutable awaiters : (int * Op.location * int) list; (* proc, loc, value *)
}

type t = {
  engine : Engine.t;
  procs : int;
  op_cost : float;
  net : msg Network.t;
  server : server;
  recorder : Recorder.t option;
  replies : (msg -> unit) option array; (* per-client pending resolver *)
  mutable tag_counter : int;
  waits : (string, Summary.t) Hashtbl.t;
}

let server_node t = t.procs

let mem_get t loc = Option.value ~default:(0, 0) (Hashtbl.find_opt t.server.memory loc)

let reply t ~dst msg = Network.send t.net ~src:(server_node t) ~dst ~kind:(kind msg) msg

(* fire awaits that became true after a memory change *)
let fire_awaits t loc =
  let numeric, tag = mem_get t loc in
  let fired, rest =
    List.partition
      (fun (_, l, v) -> l = loc && v = numeric)
      t.server.awaiters
  in
  t.server.awaiters <- rest;
  List.iter (fun (proc, _, _) -> reply t ~dst:proc (Await_fire { numeric; tag })) fired

let lock_state t lock =
  match Hashtbl.find_opt t.server.locks lock with
  | Some s -> s
  | None ->
    let s = { writer = None; readers = []; queue = []; seq = 0 } in
    Hashtbl.add t.server.locks lock s;
    s

let next_seq s =
  let seq = s.seq in
  s.seq <- seq + 1;
  seq

let rec try_grant t lock s =
  match s.queue with
  | [] -> ()
  | (proc, true) :: rest ->
    if s.writer = None && s.readers = [] then begin
      s.queue <- rest;
      s.writer <- Some proc;
      reply t ~dst:proc (Lock_grant { seq = next_seq s })
    end
  | (proc, false) :: rest ->
    if s.writer = None then begin
      s.queue <- rest;
      s.readers <- proc :: s.readers;
      reply t ~dst:proc (Lock_grant { seq = next_seq s });
      try_grant t lock s
    end

let handle_server t ~src msg =
  ignore src;
  match msg with
  | Read_req { proc; loc } ->
    let numeric, tag = mem_get t loc in
    reply t ~dst:proc (Read_reply { numeric; tag })
  | Write_req { proc; loc; numeric; tag } ->
    Hashtbl.replace t.server.memory loc (numeric, tag);
    fire_awaits t loc;
    reply t ~dst:proc Write_ack
  | Dec_req { proc; loc; amount } ->
    let numeric, tag = mem_get t loc in
    Hashtbl.replace t.server.memory loc (numeric - amount, tag);
    fire_awaits t loc;
    reply t ~dst:proc (Dec_reply { observed = numeric })
  | Lock_req { proc; lock; write } ->
    let s = lock_state t lock in
    s.queue <- s.queue @ [ (proc, write) ];
    try_grant t lock s
  | Unlock_req { proc; lock; write } ->
    let s = lock_state t lock in
    (if write then s.writer <- None
     else
       let rec remove_one = function
         | [] -> []
         | p :: rest -> if p = proc then rest else p :: remove_one rest
       in
       s.readers <- remove_one s.readers);
    reply t ~dst:proc (Unlock_ack { seq = next_seq s });
    try_grant t lock s
  | Bar_arrive { proc = _; episode } ->
    if episode <> t.server.bar_episode then
      invalid_arg "Sc_central: barrier episode mismatch";
    t.server.bar_count <- t.server.bar_count + 1;
    if t.server.bar_count = t.procs then begin
      t.server.bar_count <- 0;
      t.server.bar_episode <- episode + 1;
      for dst = 0 to t.procs - 1 do
        reply t ~dst Bar_release
      done
    end
  | Await_req { proc; loc; value } ->
    let numeric, tag = mem_get t loc in
    if numeric = value then reply t ~dst:proc (Await_fire { numeric; tag })
    else t.server.awaiters <- (proc, loc, value) :: t.server.awaiters
  | Read_reply _ | Write_ack | Dec_reply _ | Lock_grant _ | Unlock_ack _
  | Bar_release | Await_fire _ ->
    invalid_arg "Sc_central: reply delivered to server"

let handle_client t client ~src msg =
  ignore src;
  match t.replies.(client) with
  | Some resume ->
    t.replies.(client) <- None;
    resume msg
  | None -> invalid_arg "Sc_central: reply with no pending request"

let create engine ?latency ?(record = false) ?(op_cost = 0.1) ?(send_cost = 2.0)
    ?(byte_cost = 0.02) ~procs () =
  let latency =
    match latency with
    | Some l -> l
    | None -> Latency.uniform (Mc_util.Rng.make 0xC0FFEE) ~lo:30. ~hi:70.
  in
  let net =
    Network.create engine ~nodes:(procs + 1) ~latency ~send_cost ~byte_cost ()
  in
  let t =
    {
      engine;
      procs;
      op_cost;
      net;
      server =
        {
          memory = Hashtbl.create 64;
          locks = Hashtbl.create 8;
          bar_count = 0;
          bar_episode = 0;
          awaiters = [];
        };
      recorder = (if record then Some (Recorder.create ~procs ()) else None);
      replies = Array.make procs None;
      tag_counter = 0;
      waits = Hashtbl.create 8;
    }
  in
  Network.set_handler net (server_node t) (fun ~src msg -> handle_server t ~src msg);
  for client = 0 to procs - 1 do
    Network.set_handler net client (fun ~src msg -> handle_client t client ~src msg)
  done;
  t

let note_wait t name dt =
  let s =
    match Hashtbl.find_opt t.waits name with
    | Some s -> s
    | None ->
      let s = Summary.create () in
      Hashtbl.add t.waits name s;
      s
  in
  Summary.add s dt

(* blocking round trip: send request, suspend until the reply arrives *)
let rpc t client msg =
  Network.send t.net ~src:client ~dst:(server_node t) ~kind:(kind msg) msg;
  Engine.suspend t.engine (fun resume ->
      if t.replies.(client) <> None then
        invalid_arg "Sc_central: overlapping requests from one client";
      t.replies.(client) <- Some resume)

let timed t name f =
  let t0 = Engine.now t.engine in
  let r = f () in
  note_wait t name (Engine.now t.engine -. t0);
  r

let recorded_value ~numeric ~tag = if tag <> 0 then tag else numeric

let fresh_tag t client =
  t.tag_counter <- t.tag_counter + 1;
  ((client + 1) lsl 40) lor t.tag_counter

let record_span t client ~sync_seq kind_of =
  (* records an op whose invocation event is taken now and whose response
     event is taken when the returned closure is applied to the result,
     preserving the blocking span of the operation *)
  match t.recorder with
  | Some r ->
    let tok = Recorder.start r ~proc:client in
    fun result ->
      ignore (Recorder.finish r tok ?sync_seq:(sync_seq result) (kind_of result))
  | None -> fun _ -> ()

let api t client : Mc_dsm.Api.t =
  let charge () = Engine.delay t.engine t.op_cost in
  let read ?(label = Op.Causal) loc =
    charge ();
    timed t "read" (fun () ->
        let finish =
          record_span t client
            ~sync_seq:(fun _ -> None)
            (fun (numeric, tag) -> Op.Read { loc; label; value = recorded_value ~numeric ~tag })
        in
        match rpc t client (Read_req { proc = client; loc }) with
        | Read_reply { numeric; tag } ->
          finish (numeric, tag);
          numeric
        | _ -> assert false)
  in
  let write loc v =
    charge ();
    timed t "write" (fun () ->
        let tag = fresh_tag t client in
        let finish =
          record_span t client
            ~sync_seq:(fun _ -> None)
            (fun () -> Op.Write { loc; value = tag })
        in
        match rpc t client (Write_req { proc = client; loc; numeric = v; tag }) with
        | Write_ack -> finish ()
        | _ -> assert false)
  in
  let init_counter loc v =
    charge ();
    timed t "write" (fun () ->
        let finish =
          record_span t client
            ~sync_seq:(fun _ -> None)
            (fun () -> Op.Write { loc; value = v })
        in
        match rpc t client (Write_req { proc = client; loc; numeric = v; tag = 0 }) with
        | Write_ack -> finish ()
        | _ -> assert false)
  in
  let decrement loc ~amount =
    charge ();
    timed t "decrement" (fun () ->
        let finish =
          record_span t client
            ~sync_seq:(fun _ -> None)
            (fun observed -> Op.Decrement { loc; amount; observed })
        in
        match rpc t client (Dec_req { proc = client; loc; amount }) with
        | Dec_reply { observed } -> finish observed
        | _ -> assert false)
  in
  let lock_op ~write ~acquire lock =
    charge ();
    let name =
      match write, acquire with
      | true, true -> "write_lock"
      | true, false -> "write_unlock"
      | false, true -> "read_lock"
      | false, false -> "read_unlock"
    in
    timed t name (fun () ->
        let finish =
          record_span t client
            ~sync_seq:(fun seq -> Some seq)
            (fun _seq ->
              match write, acquire with
              | true, true -> Op.Write_lock lock
              | true, false -> Op.Write_unlock lock
              | false, true -> Op.Read_lock lock
              | false, false -> Op.Read_unlock lock)
        in
        let msg =
          if acquire then Lock_req { proc = client; lock; write }
          else Unlock_req { proc = client; lock; write }
        in
        match rpc t client msg with
        | Lock_grant { seq } | Unlock_ack { seq } -> finish seq
        | _ -> assert false)
  in
  let episode = ref 0 in
  let barrier () =
    charge ();
    timed t "barrier" (fun () ->
        let k = !episode in
        incr episode;
        let finish =
          record_span t client ~sync_seq:(fun _ -> None) (fun () -> Op.Barrier k)
        in
        match rpc t client (Bar_arrive { proc = client; episode = k }) with
        | Bar_release -> finish ()
        | _ -> assert false)
  in
  let await loc v =
    charge ();
    timed t "await" (fun () ->
        let finish =
          record_span t client
            ~sync_seq:(fun _ -> None)
            (fun (numeric, tag) -> Op.Await { loc; value = recorded_value ~numeric ~tag })
        in
        match rpc t client (Await_req { proc = client; loc; value = v }) with
        | Await_fire { numeric; tag } -> finish (numeric, tag)
        | _ -> assert false)
  in
  {
    Mc_dsm.Api.proc_id = client;
    n_procs = t.procs;
    read;
    write;
    init_counter;
    decrement;
    read_lock = lock_op ~write:false ~acquire:true;
    read_unlock = lock_op ~write:false ~acquire:false;
    write_lock = lock_op ~write:true ~acquire:true;
    write_unlock = lock_op ~write:true ~acquire:false;
    barrier;
    await;
    compute = (fun cost -> Engine.delay t.engine cost);
  }

let spawn t i f =
  Engine.spawn t.engine ~name:(Printf.sprintf "sc-client-%d" i) (fun () ->
      f (api t i))

let run t = Engine.run t.engine

let history t =
  match t.recorder with
  | Some r -> Recorder.history r
  | None -> invalid_arg "Sc_central.history: recording is disabled"

let peek t loc = fst (mem_get t loc)
let messages_sent t = Network.messages_sent t.net
let bytes_sent t = Network.bytes_sent t.net

let wait_summaries t =
  Hashtbl.fold (fun name s acc -> (name, s) :: acc) t.waits []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)
