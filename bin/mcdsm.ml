(* mcdsm: command-line driver for the mixed-consistency DSM.

   Subcommands run each Section-5 application on a chosen memory system
   and optionally check the recorded history against the formal
   consistency definitions.

     mcdsm solver --variant barrier --workers 4 -n 16
     mcdsm em --procs 4 --steps 8 --memory invalidate
     mcdsm cholesky --variant counter -n 24
     mcdsm litmus *)

module Engine = Mc_sim.Engine
module Runtime = Mc_dsm.Runtime
module Config = Mc_dsm.Config
module Api = Mc_dsm.Api
module Op = Mc_history.Op
module Placement = Mc_placement.Placement
module Solver = Mc_apps.Linear_solver
module Em = Mc_apps.Em_field
module Sparse = Mc_apps.Sparse_spd
module Cholesky = Mc_apps.Cholesky

type memory = Mixed | Central | Invalidate

let memory_conv =
  let parse = function
    | "mixed" -> Ok Mixed
    | "central" -> Ok Central
    | "invalidate" -> Ok Invalidate
    | s -> Error (`Msg (Printf.sprintf "unknown memory system %S" s))
  in
  let print fmt m =
    Format.pp_print_string fmt
      (match m with Mixed -> "mixed" | Central -> "central" | Invalidate -> "invalidate")
  in
  Cmdliner.Arg.conv (parse, print)

let propagation_conv =
  let parse = function
    | "eager" -> Ok Config.Eager
    | "lazy" -> Ok Config.Lazy
    | "demand" -> Ok Config.Demand
    | "entry" -> Ok Config.Entry
    | s -> Error (`Msg (Printf.sprintf "unknown propagation mode %S" s))
  in
  Cmdliner.Arg.conv (parse, Config.pp_propagation)

module Online = Mc_consistency.Online
module Mixed_chk = Mc_consistency.Mixed
module Read_rule = Mc_consistency.Read_rule
module Lattice = Mc_consistency.Lattice

(* the uniform lattice point the *online* checker can be asked to
   validate: witness-based models fall back to the offline check with a
   note on stderr (never stdout — it must stay JSON-pure) *)
let online_model ~check_online model =
  match model with
  | Some m when Online.supports m -> Some m
  | Some m ->
    if check_online then
      Printf.eprintf
        "note: model %s is not streamable (sim-time witness orders); the \
         online checker runs per-label and %s is checked offline\n"
        (Lattice.to_string m) (Lattice.to_string m);
    None
  | None -> None

(* run [f] on the chosen memory system; returns (result, sim time,
   messages, history if recorded, online checker if requested). On the
   mixed runtime the online checker runs during execution (streaming
   verdicts, runtime stability sweeps); on the baselines it replays the
   recorded history through the same engine afterwards. With [model]
   (and [check_online]) the online checker validates every memory read
   under that single lattice point instead of its declared label. *)
let run_on ~memory ~procs ~propagation ~record ~check_online ?model ?placement f =
  let model = online_model ~check_online model in
  if placement <> None && memory <> Mixed then
    invalid_arg "sharded placement requires the mixed memory system";
  match memory with
  | Mixed ->
    let engine = Engine.create () in
    let cfg =
      { (Config.default ~procs) with
        propagation; record; check_online; check_model = model; placement }
    in
    let rt = Runtime.create engine cfg in
    let out = f (Api.spawn rt) in
    let time = Runtime.run rt in
    let history = if record then Some (Runtime.history rt) else None in
    ( out,
      time,
      Mc_net.Network.messages_sent (Runtime.network rt),
      history,
      Runtime.online_checker rt )
  | Central ->
    let engine = Engine.create () in
    let record' = record || check_online in
    let m = Mc_baselines.Sc_central.create engine ~record:record' ~procs () in
    let out = f (Mc_baselines.Sc_central.spawn m) in
    let time = Mc_baselines.Sc_central.run m in
    let h = if record' then Some (Mc_baselines.Sc_central.history m) else None in
    let checker =
      if check_online then Option.map (Online.check ?model) h else None
    in
    let history = if record then h else None in
    (out, time, Mc_baselines.Sc_central.messages_sent m, history, checker)
  | Invalidate ->
    let engine = Engine.create () in
    let record' = record || check_online in
    let m = Mc_baselines.Sc_invalidate.create engine ~record:record' ~procs () in
    let out = f (Mc_baselines.Sc_invalidate.spawn m) in
    let time = Mc_baselines.Sc_invalidate.run m in
    let h = if record' then Some (Mc_baselines.Sc_invalidate.history m) else None in
    let checker =
      if check_online then Option.map (Online.check ?model) h else None
    in
    let history = if record then h else None in
    (out, time, Mc_baselines.Sc_invalidate.messages_sent m, history, checker)

(* --------- check reports (shared by every app subcommand) ----------- *)

let label_string = function
  | Op.PRAM -> "pram"
  | Op.Causal -> "causal"
  | Op.Group _ -> "group"

let verdict_fields = function
  | Read_rule.Valid -> ("valid", None)
  | Read_rule.No_matching_write -> ("no_matching_write", None)
  | Read_rule.Overwritten o -> ("overwritten", Some o)

let failure_json (f : Mixed_chk.failure) =
  let verdict, over = verdict_fields f.Mixed_chk.verdict in
  Printf.sprintf "{\"read_id\":%d,\"label\":%S,\"verdict\":%S%s}"
    f.Mixed_chk.read_id
    (label_string f.Mixed_chk.label)
    verdict
    (match over with Some o -> Printf.sprintf ",\"overwritten_by\":%d" o | None -> "")

let lattice_failure_json (f : Lattice.failure) =
  let verdict, over = verdict_fields f.Lattice.verdict in
  Printf.sprintf "{\"read_id\":%d,\"verdict\":%S%s}" f.Lattice.read_id verdict
    (match over with Some o -> Printf.sprintf ",\"overwritten_by\":%d" o | None -> "")

let read_counts h =
  let pram = ref 0 and causal = ref 0 and group = ref 0 in
  Array.iter
    (fun (o : Op.t) ->
      match o.Op.kind with
      | Op.Read { label = Op.PRAM; _ } -> incr pram
      | Op.Read { label = Op.Causal; _ } -> incr causal
      | Op.Read { label = Op.Group _; _ } -> incr group
      | _ -> ())
    (Mc_history.History.ops h);
  (!pram, !causal, !group)

(* machine-readable check report, mirroring [lint --json]: one object
   with the app result fields, the verdict, per-rule read/failure counts
   and, in online mode, the engine's memory statistics. [extra] holds
   already-JSON-encoded (key, value) pairs from the app subcommand. *)
let check_json ?model ~extra ~history ~checker () =
  let parts = ref [] in
  let add fmt = Printf.ksprintf (fun s -> parts := s :: !parts) fmt in
  List.iter (fun (k, v) -> add "%S:%s" k v) extra;
  (match (model, history) with
  | Some m, Some h ->
    let failures = Lattice.failures h m in
    add
      "\"model\":{\"name\":%S,\"consistent\":%b,\"streamable\":%b,\"failures\":[%s]}"
      (Lattice.to_string m) (failures = []) (Online.supports m)
      (String.concat "," (List.map lattice_failure_json failures))
  | _ -> ());
  (match history with
  | Some h ->
    let failures = Mixed_chk.failures h in
    let pram, causal, group = read_counts h in
    add "\"offline\":{\"ops\":%d,\"well_formed\":%b,\"mixed_consistent\":%b,\"reads\":{\"pram\":%d,\"causal\":%d,\"group\":%d},\"failures\":[%s]}"
      (Mc_history.History.length h)
      (Mc_history.History.is_well_formed h)
      (failures = []) pram causal group
      (String.concat "," (List.map failure_json failures))
  | None -> ());
  (match checker with
  | Some c ->
    let s = Online.stats c in
    add "\"online\":{\"ops_checked\":%d,\"mixed_consistent\":%b,\"reads\":{\"pram\":%d,\"causal\":%d,\"group\":%d},\"fetched_reads\":%d,\"failures\":[%s],\"chains\":%d,\"max_resident\":%d,\"live_summaries\":%d}"
      s.Online.ops_checked (Online.is_consistent c) s.Online.pram_reads
      s.Online.causal_reads s.Online.group_reads s.Online.fetched_reads
      (String.concat "," (List.map failure_json (Online.failures c)))
      s.Online.chains s.Online.max_resident s.Online.live_summaries
  | None -> ());
  Printf.sprintf "{%s}" (String.concat "," (List.rev !parts))

let print_offline_report ~trace h =
  if trace then begin
    print_endline "\n--- space-time diagram ---";
    print_string (Mc_history.Render.space_time h);
    let path = "history.dot" in
    let oc = open_out path in
    output_string oc (Mc_history.Render.dot h);
    close_out oc;
    Printf.printf "--- causality graph written to %s ---\n" path;
    print_string (Mc_history.Render.summary h)
  end;
  Printf.printf "history: %d ops, well-formed=%b, mixed-consistent=%b\n"
    (Mc_history.History.length h)
    (Mc_history.History.is_well_formed h)
    (Mixed_chk.is_mixed_consistent h);
  (if Mc_history.History.length h <= 60 then
     match Mc_consistency.Sequential.is_sequentially_consistent h with
     | Mc_consistency.Sequential.Consistent ->
       print_endline "sequentially consistent: yes"
     | Inconsistent -> print_endline "sequentially consistent: no"
     | Unknown -> print_endline "sequentially consistent: unknown (bound)");
  let report = Mc_analysis.Analysis.analyze h in
  print_endline "--- analysis ---";
  Format.printf "%a" Mc_analysis.Analysis.pp report

let print_online_report c =
  let s = Online.stats c in
  Printf.printf
    "online check: ops=%d reads=%d (pram=%d causal=%d group=%d) failures=%d\n"
    s.Online.ops_checked s.Online.reads_checked s.Online.pram_reads
    s.Online.causal_reads s.Online.group_reads s.Online.failure_count;
  Printf.printf
    "online memory: chains=%d in-flight high-water=%d live summaries=%d\n"
    s.Online.chains s.Online.max_resident s.Online.live_summaries;
  List.iter
    (fun f -> Format.printf "  %a@." Mixed_chk.pp_failure f)
    (Online.failures c)

(* Print the requested reports; returns false when any requested check
   found an inconsistency, so every subcommand exits with the same
   status (1) on a consistency failure. Under [strict] a recorded
   history that is not well-formed also fails. Under [json] stdout
   carries exactly one JSON object — the app result fields ([extra])
   plus whichever check sections ran — with all human-readable lines on
   stderr, so `mcdsm <app> --json` is machine-parseable with or without
   --check. *)
let print_model_report m h =
  let failures = Lattice.failures h m in
  Printf.printf "model %s: consistent=%b failures=%d%s\n" (Lattice.to_string m)
    (failures = []) (List.length failures)
    (if Online.supports m then "" else " (offline: not streamable)");
  List.iter (fun f -> Format.printf "  %a@." Lattice.pp_failure f) failures

let check_report ?(json = false) ?(trace = false) ?(strict = false) ?model
    ?(extra = []) ~history ~checker () =
  if json then print_endline (check_json ?model ~extra ~history ~checker ())
  else begin
    Option.iter (print_offline_report ~trace) history;
    (match (model, history) with
    | Some m, Some h -> print_model_report m h
    | _ -> ());
    Option.iter print_online_report checker
  end;
  Option.fold ~none:true ~some:Mixed_chk.is_mixed_consistent history
  && Option.fold ~none:true ~some:Online.is_consistent checker
  && (match (model, history) with
     | Some m, Some h -> Lattice.is_consistent h m
     | _ -> true)
  && (not strict
     || Option.fold ~none:true ~some:Mc_history.History.is_well_formed history)

let exit_if_inconsistent ok = if not ok then exit 1

(* app result lines go to stderr under --json so stdout is exactly the
   machine-readable report *)
let info ~json fmt =
  Printf.ksprintf (fun s -> if json then prerr_string s else print_string s) fmt

open Cmdliner

let seed_arg =
  Arg.(value & opt int 42 & info [ "seed" ] ~docv:"SEED" ~doc:"Random seed.")

let procs_arg default =
  Arg.(value & opt int default & info [ "p"; "procs" ] ~docv:"P" ~doc:"Number of processes.")

let memory_arg =
  Arg.(
    value
    & opt memory_conv Mixed
    & info [ "memory" ] ~docv:"MEM" ~doc:"Memory system: mixed, central or invalidate.")

let propagation_arg =
  Arg.(
    value
    & opt propagation_conv Config.Lazy
    & info [ "propagation" ] ~docv:"MODE" ~doc:"Lock propagation: eager, lazy, demand or entry.")

let record_arg =
  Arg.(value & flag & info [ "check" ] ~doc:"Record the execution and run the consistency checkers.")

let trace_arg =
  Arg.(
    value & flag
    & info [ "trace" ]
        ~doc:
          "With --check: print a space-time diagram and write the causality \
           graph to history.dot.")

let check_online_arg =
  Arg.(
    value & flag
    & info [ "check-online" ]
        ~doc:
          "Validate every read at response time with the streaming checker \
           and report its memory statistics. On the mixed memory the checker \
           runs during execution; on the baselines the recorded history is \
           replayed through it. Exits with status 1 on an inconsistency, like \
           --check.")

let check_json_arg =
  Arg.(
    value & flag
    & info [ "json" ]
        ~doc:
          "With --check or --check-online: emit the check report as a single \
           JSON object (verdict, per-rule read and failure counts, streaming \
           memory statistics) instead of text.")

let model_conv =
  let parse s = Result.map_error (fun e -> `Msg e) (Lattice.of_string s) in
  Cmdliner.Arg.conv (parse, Lattice.pp)

let model_arg =
  Arg.(
    value
    & opt (some model_conv) None
    & info [ "model" ] ~docv:"MODEL"
        ~doc:
          "Check the execution against one consistency-lattice point \
           (implies --check): sc, linearizable, processor, cache, causal, \
           mixed, pram, slow, group:0,1,..., session[:ryw,mr|:none]. \
           Streamable points (causal, pram, mixed, group, session) also \
           drive --check-online; witness-based points (sc, linearizable, \
           processor, cache, slow) are checked offline. Exits with status \
           1 when any read violates the model.")

let check_strict_arg =
  Arg.(
    value & flag
    & info [ "strict" ]
        ~doc:
          "With --check or --check-online: additionally exit with status 1 \
           when the recorded history is not well-formed. (Consistency \
           failures always exit with status 1.)")

let shards_arg =
  Arg.(
    value & opt int 0
    & info [ "shards" ] ~docv:"S"
        ~doc:
          "Run on the sharded, partially-replicated DSM with $(docv) \
           shards: each process subscribes only the shards it writes, \
           other reads are served by demand fetches from the shard home. \
           Requires the mixed memory and the solver's barrier variant; 0 \
           (the default) keeps full replication.")

let placement_conv =
  let parse s = Result.map_error (fun e -> `Msg e) (Placement.policy_of_string s) in
  Arg.conv (parse, fun fmt p -> Format.pp_print_string fmt (Placement.policy_to_string p))

let placement_arg =
  Arg.(
    value
    & opt placement_conv (Placement.Range { objects = 0 })
    & info [ "placement" ] ~docv:"POLICY"
        ~doc:
          "With --shards: the location-to-shard policy, range (contiguous \
           object-id slices, the default) or hash.")

(* ---------------- solver ---------------- *)

let solver_cmd =
  let variant_conv =
    let parse = function
      | "barrier" -> Ok Solver.Barrier_pram
      | "handshake" -> Ok Solver.Handshake_causal
      | "handshake-pram" -> Ok Solver.Handshake_pram
      | s -> Error (`Msg (Printf.sprintf "unknown variant %S" s))
    in
    Arg.conv (parse, fun fmt v -> Format.pp_print_string fmt (Solver.variant_to_string v))
  in
  let run n workers variant memory propagation record check_online model json strict trace seed shards policy =
    let procs = workers + 1 in
    let record = record || model <> None in
    let placement =
      if shards <= 0 then None
      else begin
        if variant <> Solver.Barrier_pram then begin
          prerr_endline
            "mcdsm solver: --shards requires --variant barrier (write \
             ownership is per-row; the handshake variants write shared \
             handshake locations from every process)";
          exit 2
        end;
        let policy =
          match policy with
          | Placement.Range _ -> Placement.Range { objects = n }
          | Placement.Hash -> Placement.Hash
        in
        let pl = Placement.create ~shards ~policy () in
        Solver.subscribe_shards pl ~procs ~n;
        Some pl
      end
    in
    let problem = Solver.Problem.generate ~seed ~n in
    let expected = Solver.reference ~variant problem in
    let res, time, msgs, history, checker =
      run_on ~memory ~procs ~propagation ~record ~check_online ?model ?placement
        (fun spawn -> Solver.launch ~spawn ~procs ~variant problem)
    in
    let r = Option.get !res in
    info ~json "%s: n=%d workers=%d iters=%d converged=%b\n"
      (Solver.variant_to_string variant)
      n workers r.Solver.iterations r.Solver.converged;
    let exact = r.Solver.x = expected.Solver.x in
    info ~json "sim time=%.1fus messages=%d exact=%b\n" time msgs exact;
    let extra =
      [
        ("app", Printf.sprintf "%S" "solver");
        ("variant", Printf.sprintf "%S" (Solver.variant_to_string variant));
        ("iterations", string_of_int r.Solver.iterations);
        ("converged", string_of_bool r.Solver.converged);
        ("sim_time_us", Printf.sprintf "%.1f" time);
        ("messages", string_of_int msgs);
        ("exact", string_of_bool exact);
      ]
      @
      match placement with
      | None -> []
      | Some pl ->
        [
          ("shards", string_of_int shards);
          ("placement", Printf.sprintf "%S" (Placement.policy_to_string (Placement.policy pl)));
        ]
    in
    exit_if_inconsistent
      (check_report ~json ~strict ~trace ?model ~extra ~history ~checker ())
  in
  let n_arg = Arg.(value & opt int 16 & info [ "n" ] ~docv:"N" ~doc:"System size.") in
  let workers_arg =
    Arg.(value & opt int 4 & info [ "w"; "workers" ] ~docv:"W" ~doc:"Worker count.")
  in
  let variant_arg =
    Arg.(
      value
      & opt variant_conv Solver.Barrier_pram
      & info [ "variant" ] ~docv:"V" ~doc:"barrier, handshake or handshake-pram.")
  in
  Cmd.v
    (Cmd.info "solver" ~doc:"Iterative linear-equation solver (Sec. 5.1, Figs. 2-3)")
    Term.(
      const run $ n_arg $ workers_arg $ variant_arg $ memory_arg $ propagation_arg
      $ record_arg $ check_online_arg $ model_arg $ check_json_arg $ check_strict_arg $ trace_arg $ seed_arg
      $ shards_arg $ placement_arg)

(* ---------------- em ---------------- *)

let em_cmd =
  let run procs steps cols memory propagation record check_online model json strict trace seed =
    let record = record || model <> None in
    let params = { Em.rows = 4 * procs; cols; steps; seed } in
    let expected = Em.reference ~procs params in
    let res, time, msgs, history, checker =
      run_on ~memory ~procs ~propagation ~record ~check_online ?model (fun spawn ->
          Em.launch ~spawn ~procs params)
    in
    let r = Option.get !res in
    info ~json "EM field %dx%d, %d steps on %d procs\n" params.Em.rows cols steps
      procs;
    let exact = r.Em.checksum = expected.Em.checksum in
    info ~json "sim time=%.1fus messages=%d exact=%b energy=%d\n" time msgs exact
      r.Em.energy;
    let extra =
      [
        ("app", Printf.sprintf "%S" "em");
        ("steps", string_of_int steps);
        ("energy", string_of_int r.Em.energy);
        ("sim_time_us", Printf.sprintf "%.1f" time);
        ("messages", string_of_int msgs);
        ("exact", string_of_bool exact);
      ]
    in
    exit_if_inconsistent
      (check_report ~json ~strict ~trace ?model ~extra ~history ~checker ())
  in
  let steps_arg = Arg.(value & opt int 8 & info [ "steps" ] ~doc:"Update rounds.") in
  let cols_arg = Arg.(value & opt int 8 & info [ "cols" ] ~doc:"Grid width.") in
  Cmd.v
    (Cmd.info "em" ~doc:"Electromagnetic field computation (Sec. 5.2, Fig. 4)")
    Term.(
      const run $ procs_arg 4 $ steps_arg $ cols_arg $ memory_arg $ propagation_arg
      $ record_arg $ check_online_arg $ model_arg $ check_json_arg $ check_strict_arg $ trace_arg $ seed_arg)

(* ---------------- cholesky ---------------- *)

let cholesky_cmd =
  let variant_conv =
    let parse = function
      | "lock" -> Ok Cholesky.Lock_based
      | "counter" -> Ok Cholesky.Counter_based
      | s -> Error (`Msg (Printf.sprintf "unknown variant %S" s))
    in
    Arg.conv
      (parse, fun fmt v -> Format.pp_print_string fmt (Cholesky.variant_to_string v))
  in
  let run n density variant memory propagation record check_online model json strict trace seed =
    let record = record || model <> None in
    let m = Sparse.generate ~seed ~n ~density in
    let lref = Sparse.factor_reference m in
    let res, time, msgs, history, checker =
      run_on ~memory ~procs:4 ~propagation ~record ~check_online ?model (fun spawn ->
          Cholesky.launch ~spawn ~procs:4 ~variant m)
    in
    let r = Option.get !res in
    info ~json "%s: n=%d nnz(L)=%d\n"
      (Cholesky.variant_to_string variant)
      n (Sparse.nnz m);
    let exact = r.Cholesky.l = lref in
    info ~json "sim time=%.1fus messages=%d exact=%b max_error=%d\n" time msgs
      exact r.Cholesky.max_error;
    let extra =
      [
        ("app", Printf.sprintf "%S" "cholesky");
        ("variant", Printf.sprintf "%S" (Cholesky.variant_to_string variant));
        ("max_error", string_of_int r.Cholesky.max_error);
        ("sim_time_us", Printf.sprintf "%.1f" time);
        ("messages", string_of_int msgs);
        ("exact", string_of_bool exact);
      ]
    in
    exit_if_inconsistent
      (check_report ~json ~strict ~trace ?model ~extra ~history ~checker ())
  in
  let n_arg = Arg.(value & opt int 24 & info [ "n" ] ~doc:"Matrix dimension.") in
  let density_arg =
    Arg.(value & opt float 0.2 & info [ "density" ] ~doc:"Off-diagonal density.")
  in
  let variant_arg =
    Arg.(
      value
      & opt variant_conv Cholesky.Lock_based
      & info [ "variant" ] ~docv:"V" ~doc:"lock or counter.")
  in
  Cmd.v
    (Cmd.info "cholesky" ~doc:"Sparse Cholesky factorization (Sec. 5.3, Fig. 5)")
    Term.(
      const run $ n_arg $ density_arg $ variant_arg $ memory_arg $ propagation_arg
      $ record_arg $ check_online_arg $ model_arg $ check_json_arg $ check_strict_arg $ trace_arg $ seed_arg)

(* ---------------- lint ---------------- *)

let litmus_catalog () =
  let module Dsl = Mc_history.Dsl in
  [
    ( "dekker",
      Dsl.make ~procs:2
        [ [ Dsl.w "x" 1; Dsl.rc "y" 0 ]; [ Dsl.w "y" 1; Dsl.rc "x" 0 ] ] );
    ( "message-passing",
      Dsl.make ~procs:2
        [ [ Dsl.w "x" 42; Dsl.w "f" 1 ]; [ Dsl.rc "f" 1; Dsl.rc "x" 42 ] ] );
    ( "transitive-chain-pram",
      Dsl.make ~procs:3
        [
          [ Dsl.w "x" 1 ];
          [ Dsl.rp "x" 1; Dsl.w "y" 2 ];
          [ Dsl.rp "y" 2; Dsl.rp "x" 0 ];
        ] );
    ( "racy-writes",
      Dsl.make ~procs:2
        [ [ Dsl.w "x" 1; Dsl.rp "y" 0 ]; [ Dsl.w "x" 2; Dsl.w "y" 1 ] ] );
    ( "bad-lock-discipline",
      Dsl.make ~procs:2
        [
          [ Dsl.wl ~seq:0 "l"; Dsl.w "x" 1 ];
          [ Dsl.rl ~seq:1 "l"; Dsl.w "x" 2; Dsl.ru ~seq:2 "l" ];
        ] );
    ( "await-never-fires",
      Dsl.make ~procs:2 [ [ Dsl.await "f" 5 ]; [ Dsl.w "f" 1 ] ] );
    ( "over-labelled",
      Dsl.make ~procs:2 [ [ Dsl.w "x" 1 ]; [ Dsl.rc "x" 1 ] ] );
  ]

(* the EXP-DELIVERY bench workload shape: phase-disciplined writes with
   post-barrier PRAM reads, a lock-protected accumulator and an
   await-signalled finish (mixed runtime only: batching is a
   mixed-memory feature). Shared by `lint --app delivery` and the
   metrics/trace subcommands. *)
let spawn_delivery_workload rt =
  for i = 0 to 3 do
    Api.spawn rt i (fun api ->
        for round = 1 to 3 do
          for k = 0 to 5 do
            api.Api.write
              (Printf.sprintf "d:%d:%d" i k)
              ((round * 100) + (10 * i) + k)
          done;
          api.Api.barrier ();
          for j = 0 to 3 do
            ignore
              (api.Api.read ~label:Op.PRAM
                 (Printf.sprintf "d:%d:%d" j (round mod 6)))
          done;
          api.Api.write_lock "sum";
          let v = api.Api.read "acc" in
          api.Api.write "acc" (v + 1);
          api.Api.write_unlock "sum";
          api.Api.barrier ()
        done;
        if i = 0 then api.Api.write "go" 1 else api.Api.await "go" 1)
  done

(* record one small history per requested app — shared by `lint` (full
   analysis pipeline) and `check` (lattice-model conformance) *)
let app_histories app memory propagation seed =
    let solver () =
      let problem = Solver.Problem.generate ~seed ~n:8 in
      let _, _, _, h, _ =
        run_on ~memory ~procs:3 ~propagation ~record:true ~check_online:false (fun spawn ->
            Solver.launch ~spawn ~procs:3 ~variant:Solver.Barrier_pram problem)
      in
      ("solver", Option.get h)
    in
    let em () =
      let params = { Em.rows = 8; cols = 4; steps = 2; seed } in
      let _, _, _, h, _ =
        run_on ~memory ~procs:2 ~propagation ~record:true ~check_online:false (fun spawn ->
            Em.launch ~spawn ~procs:2 params)
      in
      ("em", Option.get h)
    in
    let cholesky () =
      let m = Sparse.generate ~seed ~n:8 ~density:0.2 in
      let _, _, _, h, _ =
        run_on ~memory ~procs:4 ~propagation ~record:true ~check_online:false (fun spawn ->
            Cholesky.launch ~spawn ~procs:4 ~variant:Cholesky.Lock_based m)
      in
      ("cholesky", Option.get h)
    in
    let delivery () =
      let engine = Engine.create () in
      let cfg =
        { (Config.default ~procs:4) with record = true; batch_max = 8; propagation }
      in
      let rt = Runtime.create engine cfg in
      spawn_delivery_workload rt;
      ignore (Runtime.run rt);
      ("delivery", Runtime.history rt)
    in
    match app with
    | `Litmus -> litmus_catalog ()
    | `Solver -> [ solver () ]
    | `Em -> [ em () ]
    | `Cholesky -> [ cholesky () ]
    | `Delivery -> [ delivery () ]
    | `All -> litmus_catalog () @ [ solver (); em (); cholesky (); delivery () ]

let lint_app_arg =
  Arg.(
    value
    & opt
        (enum
           [
             ("litmus", `Litmus);
             ("solver", `Solver);
             ("em", `Em);
             ("cholesky", `Cholesky);
             ("delivery", `Delivery);
             ("all", `All);
           ])
        `Litmus
    & info [ "app" ] ~docv:"APP"
        ~doc:"History source: litmus, solver, em, cholesky, delivery or all.")

let lint_cmd =
  let run app json strict memory propagation seed =
    let reports =
      List.map
        (fun (name, h) -> (name, Mc_analysis.Analysis.analyze h))
        (app_histories app memory propagation seed)
    in
    if json then begin
      print_string "[";
      List.iteri
        (fun i (name, r) ->
          if i > 0 then print_string ",";
          Printf.printf "{\"name\":%S,\"report\":%s}" name
            (Mc_analysis.Analysis.to_json r))
        reports;
      print_endline "]"
    end
    else
      List.iter
        (fun (name, r) ->
          Printf.printf "== %s ==\n" name;
          Format.printf "%a" Mc_analysis.Analysis.pp r)
        reports;
    if strict && List.exists (fun (_, r) -> Mc_analysis.Analysis.has_errors r) reports
    then exit 1
  in
  let json_arg =
    Arg.(value & flag & info [ "json" ] ~doc:"Emit machine-readable JSON.")
  in
  let strict_arg =
    Arg.(
      value & flag
      & info [ "strict" ] ~doc:"Exit with status 1 if any error is reported.")
  in
  Cmd.v
    (Cmd.info "lint"
       ~doc:
         "Run the race detector, discipline linter and label advisor on \
          recorded histories")
    Term.(
      const run $ lint_app_arg $ json_arg $ strict_arg $ memory_arg $ propagation_arg
      $ seed_arg)

(* ---------------- check ---------------- *)

(* [mcdsm check]: record one small history per app and validate every
   memory read against one lattice point. Streamable models are also
   replayed through the online engine, and the two verdicts are
   compared; witness-based models check offline only. Follows the
   [info ~json] discipline: with --json, stdout carries exactly one
   JSON array. *)
let check_cmd =
  let run app model online json strict memory propagation seed shards policy =
    let model = Option.value model ~default:Lattice.Mixed in
    let streamable = Online.supports model in
    (* Sharded runs must stream the checker during execution: only the
       runtime knows which reads were demand fetches and what snapshot
       each fetch saw, so an after-the-fact [Online.check] replay (no
       fetch notes) would hold them to the full-replication rule. The
       offline verdict set is accordingly restricted to non-fetched
       reads — on those, sharded delivery must agree with the offline
       checker verdict-for-verdict. *)
    let sharded_solver () =
      if app <> `Solver then begin
        prerr_endline "mcdsm check: --shards supports --app solver only";
        exit 2
      end;
      if memory <> Mixed then begin
        prerr_endline "mcdsm check: --shards requires --memory mixed";
        exit 2
      end;
      let n = 8 and procs = 3 in
      let policy =
        match policy with
        | Placement.Range _ -> Placement.Range { objects = n }
        | Placement.Hash -> Placement.Hash
      in
      let pl = Placement.create ~shards ~policy () in
      Solver.subscribe_shards pl ~procs ~n;
      let problem = Solver.Problem.generate ~seed ~n in
      let _, _, _, h, checker =
        run_on ~memory ~procs ~propagation ~record:true
          ~check_online:streamable ~model ~placement:pl (fun spawn ->
            Solver.launch ~spawn ~procs ~variant:Solver.Barrier_pram problem)
      in
      let h = Option.get h in
      let fetched =
        match checker with Some c -> Online.fetched_ids c | None -> []
      in
      let failures =
        List.filter
          (fun (f : Lattice.failure) ->
            not (List.mem f.Lattice.read_id fetched))
          (Lattice.failures h model)
      in
      let online_agrees =
        match checker with
        | Some c when online ->
          Some
            (List.map
               (fun (f : Mixed_chk.failure) -> f.Mixed_chk.read_id)
               (Online.failures c)
            = List.map (fun (f : Lattice.failure) -> f.Lattice.read_id) failures)
        | _ -> None
      in
      [ ("solver", h, failures, Mc_history.History.is_well_formed h, online_agrees) ]
    in
    let results =
      if shards > 0 then sharded_solver ()
      else
        List.map
          (fun (name, h) ->
            let failures = Lattice.failures h model in
            let well_formed = Mc_history.History.is_well_formed h in
            let online_agrees =
              if online && streamable then
                let c = Online.check ~model h in
                Some
                  (List.map (fun (f : Mixed_chk.failure) -> f.Mixed_chk.read_id)
                     (Online.failures c)
                  = List.map (fun (f : Lattice.failure) -> f.Lattice.read_id)
                      failures)
              else None
            in
            (name, h, failures, well_formed, online_agrees))
          (app_histories app memory propagation seed)
    in
    if json then begin
      print_string "[";
      List.iteri
        (fun i (name, h, failures, well_formed, online_agrees) ->
          if i > 0 then print_string ",";
          Printf.printf
            "{\"name\":%S,\"model\":%S,\"shards\":%d,\"ops\":%d,\"well_formed\":%b,\"consistent\":%b,\"streamable\":%b%s,\"failures\":[%s]}"
            name
            (Lattice.to_string model)
            shards
            (Mc_history.History.length h)
            well_formed (failures = []) streamable
            (match online_agrees with
            | Some b -> Printf.sprintf ",\"online_agrees\":%b" b
            | None -> "")
            (String.concat "," (List.map lattice_failure_json failures)))
        results;
      print_endline "]"
    end
    else
      List.iter
        (fun (name, h, _failures, well_formed, online_agrees) ->
          Printf.printf "== %s ==\n" name;
          Printf.printf "ops=%d well-formed=%b\n"
            (Mc_history.History.length h) well_formed;
          print_model_report model h;
          Option.iter
            (fun b -> Printf.printf "online checker agrees: %b\n" b)
            online_agrees)
        results;
    if
      strict
      && List.exists
           (fun (_, _, failures, well_formed, online_agrees) ->
             failures <> [] || (not well_formed)
             || online_agrees = Some false)
           results
    then exit 1
  in
  let online_arg =
    Arg.(
      value & flag
      & info [ "online" ]
          ~doc:
            "Also replay each history through the streaming checker under \
             the model (streamable models only) and report whether the two \
             verdict sets agree.")
  in
  let json_arg =
    Arg.(
      value & flag
      & info [ "json" ]
          ~doc:
            "Emit one JSON array of per-history conformance reports on \
             stdout; human-readable lines go to stderr.")
  in
  let strict_arg =
    Arg.(
      value & flag
      & info [ "strict" ]
          ~doc:
            "Exit with status 1 on any non-conforming read, ill-formed \
             history or online/offline disagreement.")
  in
  Cmd.v
    (Cmd.info "check"
       ~doc:
         "Record app histories and validate every read against one \
          consistency-lattice point")
    Term.(
      const run $ lint_app_arg $ model_arg $ online_arg $ json_arg $ strict_arg
      $ memory_arg $ propagation_arg $ seed_arg $ shards_arg $ placement_arg)

(* ---------------- metrics / trace ---------------- *)

module Metrics = Mc_obs.Metrics
module Obs_trace = Mc_obs.Trace

(* run one Section-5 app on the mixed runtime with the full Mc_obs
   instrumentation attached; returns the runtime and the final sim
   time *)
let observed_run ?placement ?(check_online = false) ~app ~propagation ~seed
    ~record ~tracer () =
  let engine = Engine.create () in
  let procs, batch_max, launch =
    match app with
    | `Solver ->
      let problem = Solver.Problem.generate ~seed ~n:8 in
      ( 3,
        1,
        fun rt ->
          ignore
            (Solver.launch ~spawn:(Api.spawn rt) ~procs:3
               ~variant:Solver.Barrier_pram problem) )
    | `Em ->
      let params = { Em.rows = 8; cols = 4; steps = 2; seed } in
      (2, 1, fun rt -> ignore (Em.launch ~spawn:(Api.spawn rt) ~procs:2 params))
    | `Cholesky ->
      let m = Sparse.generate ~seed ~n:8 ~density:0.2 in
      ( 4,
        1,
        fun rt ->
          ignore
            (Cholesky.launch ~spawn:(Api.spawn rt) ~procs:4
               ~variant:Cholesky.Lock_based m) )
    | `Delivery -> (4, 8, spawn_delivery_workload)
  in
  let cfg =
    {
      (Config.default ~procs) with
      propagation;
      record;
      batch_max;
      observe = true;
      tracer;
      placement;
      check_online;
    }
  in
  let rt = Runtime.create engine cfg in
  launch rt;
  let time = Runtime.run rt in
  (rt, time)

let obs_app_arg =
  Cmdliner.Arg.(
    value
    & opt
        (enum
           [
             ("solver", `Solver);
             ("em", `Em);
             ("cholesky", `Cholesky);
             ("delivery", `Delivery);
           ])
        `Solver
    & info [ "app" ] ~docv:"APP"
        ~doc:"Workload: solver, em, cholesky or delivery.")

let out_arg =
  Cmdliner.Arg.(
    value
    & opt (some string) None
    & info [ "o"; "out" ] ~docv:"FILE" ~doc:"Write the dump to FILE.")

let write_file path payload =
  let oc = open_out path in
  output_string oc payload;
  output_char oc '\n';
  close_out oc

let metrics_cmd =
  let run app propagation seed json out =
    let rt, time =
      observed_run ~app ~propagation ~seed ~record:false ~tracer:None ()
    in
    let reg = Runtime.metrics rt in
    let payload =
      if json then Metrics.Registry.to_json reg
      else Format.asprintf "%a" Metrics.Registry.pp reg
    in
    info ~json "sim time=%.1fus series=%d\n" time
      (Metrics.Registry.series_count reg);
    match out with
    | Some path ->
      write_file path payload;
      if json then
        Printf.printf "{\"out\":%S,\"series\":%d,\"sim_time_us\":%.1f}\n" path
          (Metrics.Registry.series_count reg)
          time
      else Printf.printf "metrics written to %s\n" path
    | None -> print_string (payload ^ if json then "\n" else "")
  in
  Cmd.v
    (Cmd.info "metrics"
       ~doc:
         "Run an app with observability on and dump the metric registry \
          (counters, gauges, histograms)")
    Term.(
      const run $ obs_app_arg $ propagation_arg $ seed_arg
      $ Arg.(value & flag & info [ "json" ] ~doc:"Emit the registry as JSON.")
      $ out_arg)

let trace_cmd =
  let run app propagation seed json out format buffer =
    let tracer = Obs_trace.create ~capacity:buffer () in
    let rt, time =
      observed_run ~app ~propagation ~seed ~record:true ~tracer:(Some tracer) ()
    in
    let ops = Mc_history.History.length (Runtime.history rt) in
    let spans = Obs_trace.span_count tracer in
    let events = Obs_trace.event_count tracer in
    let dropped = Obs_trace.dropped tracer in
    let payload =
      match format with
      | `Chrome -> Obs_trace.to_chrome tracer
      | `Jsonl ->
        String.concat "\n"
          (List.map Obs_trace.event_to_chrome_json (Obs_trace.events tracer))
    in
    let path = Option.value out ~default:"trace.json" in
    write_file path payload;
    if dropped > 0 then
      info ~json
        "warning: ring buffer overflowed, %d event(s) dropped (raise --buffer)\n"
        dropped;
    info ~json "sim time=%.1fus spans=%d events=%d ops=%d -> %s\n" time spans
      events ops path;
    if json then
      Printf.printf
        "{\"app\":%S,\"out\":%S,\"spans\":%d,\"events\":%d,\"dropped\":%d,\"ops\":%d,\"sim_time_us\":%.1f,\"spans_match_ops\":%b}\n"
        (match app with
        | `Solver -> "solver"
        | `Em -> "em"
        | `Cholesky -> "cholesky"
        | `Delivery -> "delivery")
        path spans events dropped ops time (spans = ops);
    if spans <> ops then begin
      info ~json "error: span count %d does not match recorded op count %d\n"
        spans ops;
      exit 1
    end
  in
  let format_arg =
    Arg.(
      value
      & opt (enum [ ("chrome", `Chrome); ("jsonl", `Jsonl) ]) `Chrome
      & info [ "format" ] ~docv:"FMT"
          ~doc:
            "chrome: one trace_event JSON object for about://tracing; jsonl: \
             one event object per line.")
  in
  let buffer_arg =
    Arg.(
      value & opt int 65536
      & info [ "buffer" ] ~docv:"N" ~doc:"Tracer ring-buffer capacity (events).")
  in
  Cmd.v
    (Cmd.info "trace"
       ~doc:
         "Run an app with the span tracer attached and export a Chrome \
          trace_event timeline (op spans, sync epochs, message arcs)")
    Term.(
      const run $ obs_app_arg $ propagation_arg $ seed_arg
      $ Arg.(
          value & flag
          & info [ "json" ] ~doc:"Print a machine-readable summary on stdout.")
      $ out_arg $ format_arg $ buffer_arg)

(* ---------------- report ---------------- *)

module Report = Mc_obs.Report

(* Join every online-checker verdict to its causal path: the checker
   names the read and (for overwritten verdicts) the interposing write;
   the runtime's shard log resolves each recorded value to its (writer,
   shard, sseq) stream coordinates, and the flight recorder yields the
   tree hops and apply times of that update. An incomplete flight is a
   value still in transit — the usual shape of an engineered staleness
   violation (e.g. a paused link). *)
let assemble_violations rt checker =
  let h = Runtime.history rt in
  let fetched = Online.fetched_ids checker in
  let prov_and_path loc value =
    match Runtime.shard_write_source rt ~loc ~value with
    | None -> (None, [], [], true)
    | Some (w, s, q) -> (
      let prov = Some { Report.p_writer = w; p_shard = s; p_sseq = q } in
      match Runtime.shard_flight rt ~writer:w ~shard:s ~sseq:q with
      | None -> (prov, [], [], true)
      | Some fi ->
        ( prov,
          List.map
            (fun (src, dst, sent, recv) ->
              { Report.h_src = src; h_dst = dst; h_sent = sent; h_recv = recv })
            fi.Runtime.fi_hops,
          fi.Runtime.fi_applies,
          fi.Runtime.fi_complete ))
  in
  List.map
    (fun (f : Mixed_chk.failure) ->
      let op = Mc_history.History.op h f.Mixed_chk.read_id in
      let loc, value =
        match op.Op.kind with
        | Op.Read { loc; value; _ } -> (loc, value)
        | _ -> ("?", 0)
      in
      let verdict, over = verdict_fields f.Mixed_chk.verdict in
      let v_source, v_path, _, _ = prov_and_path loc value in
      let v_overwritten_by =
        Option.map
          (fun w_id ->
            let wop = Mc_history.History.op h w_id in
            let wvalue =
              match Op.writes_value wop with
              | Some (wloc, wv) when wloc = loc -> wv
              | _ -> 0
            in
            let o_source, o_path, o_applies, o_complete =
              prov_and_path loc wvalue
            in
            {
              Report.o_write_id = w_id;
              o_value = wvalue;
              o_source;
              o_path;
              o_applies;
              o_complete;
            })
          over
      in
      {
        Report.v_read_id = f.Mixed_chk.read_id;
        v_proc = op.Op.proc;
        v_loc = loc;
        v_label = label_string f.Mixed_chk.label;
        v_verdict = verdict;
        v_value = value;
        v_fetched = List.mem f.Mixed_chk.read_id fetched;
        v_source;
        v_path;
        v_overwritten_by;
      })
    (Online.failures checker)

(* The engineered-staleness demo workload of [mcdsm report --app
   violation]: writer 2 writes shard 0 (direct edge 2 -> 1, paused) then
   shard 1 (whose tree routes 2 -> 0 -> 1); process 1 observes the later
   write and then PRAM-reads the older location stale — a real PRAM
   violation whose causal path the audit must exhibit. One extra read of
   an unsubscribed location exercises the demand-fetch path. *)
let violation_run ~tracer =
  let engine = Engine.create () in
  let pl =
    Placement.create ~shards:3 ~policy:(Placement.Range { objects = 30 })
      ~fanout:1 ()
  in
  List.iter (fun n -> Placement.subscribe pl ~node:n ~shard:0) [ 1; 2 ];
  List.iter (fun n -> Placement.subscribe pl ~node:n ~shard:1) [ 0; 1; 2 ];
  Placement.subscribe pl ~node:0 ~shard:2;
  let cfg =
    {
      (Config.default ~procs:3) with
      record = true;
      check_online = true;
      observe = true;
      placement = Some pl;
      await_label = Op.PRAM;
      tracer = Some tracer;
    }
  in
  let rt = Runtime.create engine cfg in
  Mc_net.Network.pause_link (Runtime.network rt) ~src:2 ~dst:1;
  Runtime.spawn_process rt 2 (fun p ->
      Runtime.write p "s:5" 11;
      Runtime.write p "s:15" 22);
  Runtime.spawn_process rt 1 (fun p ->
      Runtime.await p "s:15" 22;
      ignore (Runtime.read p ~label:Op.PRAM "s:5");
      ignore (Runtime.read p ~label:Op.PRAM "s:25"));
  let time = Runtime.run rt in
  (rt, time)

let report_cmd =
  let read_file path =
    let ic = open_in_bin path in
    let s = really_input_string ic (in_channel_length ic) in
    close_in ic;
    s
  in
  let run app propagation seed shards policy json top out trace_file
      metrics_file buffer =
    let propagation_str =
      Format.asprintf "%a" Config.pp_propagation propagation
    in
    let input =
      match trace_file with
      | Some tpath ->
        (* trace-file mode: re-analyze an exported trace (and optional
           metrics dump); no checker ran here, so the audit is marked
           unavailable rather than claimed clean *)
        let events = Report.parse_trace (read_file tpath) in
        let metrics =
          match metrics_file with
          | Some mpath -> Report.parse_metrics (read_file mpath)
          | None -> []
        in
        info ~json "trace-file mode: %d event(s) from %s\n"
          (List.length events) tpath;
        {
          Report.events;
          metrics;
          violations = None;
          meta =
            [ ("mode", "trace-file"); ("trace", Filename.basename tpath) ]
            @
            (match metrics_file with
            | Some mpath -> [ ("metrics", Filename.basename mpath) ]
            | None -> []);
        }
      | None ->
        (* live mode: run the app with metrics + tracer + recorder +
           online checker attached, then analyze in-process *)
        let tracer = Obs_trace.create ~capacity:buffer () in
        let rt, time, app_name, shards =
          match app with
          | `Violation ->
            let rt, time = violation_run ~tracer in
            (rt, time, "violation", 3)
          | (`Solver | `Em | `Cholesky | `Delivery) as app ->
            let name =
              match app with
              | `Solver -> "solver"
              | `Em -> "em"
              | `Cholesky -> "cholesky"
              | `Delivery -> "delivery"
            in
            let placement =
              if shards <= 0 then None
              else begin
                if app <> `Solver then begin
                  prerr_endline
                    "mcdsm report: --shards supports --app solver only";
                  exit 2
                end;
                let policy =
                  match policy with
                  | Placement.Range _ -> Placement.Range { objects = 8 }
                  | Placement.Hash -> Placement.Hash
                in
                let pl = Placement.create ~shards ~policy () in
                Solver.subscribe_shards pl ~procs:3 ~n:8;
                Some pl
              end
            in
            let rt, time =
              observed_run ?placement ~check_online:true ~app ~propagation
                ~seed ~record:true ~tracer:(Some tracer) ()
            in
            (rt, time, name, shards)
        in
        let violations =
          Option.map (assemble_violations rt) (Runtime.online_checker rt)
        in
        if Obs_trace.dropped tracer > 0 then
          info ~json
            "warning: ring buffer overflowed, %d event(s) dropped (raise \
             --buffer)\n"
            (Obs_trace.dropped tracer);
        info ~json "sim time=%.1fus events=%d series=%d\n" time
          (Obs_trace.event_count tracer)
          (Metrics.Registry.series_count (Runtime.metrics rt));
        {
          Report.events = Obs_trace.events tracer;
          metrics = Metrics.Registry.snapshot (Runtime.metrics rt);
          violations;
          meta =
            [
              ("mode", "live");
              ("app", app_name);
              ("propagation", propagation_str);
              ("seed", string_of_int seed);
              ("shards", string_of_int shards);
              ("sim_time_us", Printf.sprintf "%.1f" time);
            ];
        }
    in
    let report = Report.analyze ~top_k:top input in
    let payload =
      if json then Report.to_json report else Report.to_text report
    in
    match out with
    | Some path ->
      write_file path payload;
      if json then
        Printf.printf "{\"out\":%S,\"events\":%d}\n" path report.Report.r_events
      else Printf.printf "report written to %s\n" path
    | None -> print_string (payload ^ if json then "\n" else "")
  in
  let app_arg =
    Arg.(
      value
      & opt
          (enum
             [
               ("solver", `Solver);
               ("em", `Em);
               ("cholesky", `Cholesky);
               ("delivery", `Delivery);
               ("violation", `Violation);
             ])
          `Solver
      & info [ "app" ] ~docv:"APP"
          ~doc:
            "Live-mode workload: solver, em, cholesky, delivery, or \
             violation (an engineered stale read on a paused link, to \
             demonstrate the audit).")
  in
  let top_arg =
    Arg.(
      value & opt int 5
      & info [ "top" ] ~docv:"K"
          ~doc:"Rows in the slowest-shard and hottest-key rankings.")
  in
  let trace_in_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "trace" ] ~docv:"FILE"
          ~doc:
            "Analyze an exported trace (chrome or jsonl) instead of \
             running an app. The violation audit needs the online \
             checker, so it is unavailable in this mode.")
  in
  let metrics_in_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "metrics" ] ~docv:"FILE"
          ~doc:"With --trace: a `mcdsm metrics --json` dump to include.")
  in
  let buffer_arg =
    Arg.(
      value & opt int 65536
      & info [ "buffer" ] ~docv:"N" ~doc:"Tracer ring-buffer capacity (events).")
  in
  Cmd.v
    (Cmd.info "report"
       ~doc:
         "Postmortem analyzer: per-shard visibility-latency percentiles, \
          demand-fetch round trips, gap-buffer stalls, hottest keys and a \
          violation audit joining checker verdicts to their causal paths")
    Term.(
      const run $ app_arg $ propagation_arg $ seed_arg $ shards_arg
      $ placement_arg
      $ Arg.(
          value & flag
          & info [ "json" ]
              ~doc:
                "Emit the report as one deterministic JSON object on \
                 stdout; human-readable lines go to stderr.")
      $ top_arg $ out_arg $ trace_in_arg $ metrics_in_arg $ buffer_arg)

(* ---------------- analyze ---------------- *)

(* [mcdsm analyze]: the symbolic analyzer over the IR models of the
   Section-5 applications — no execution, verdicts hold at every
   parameter valuation. Follows the [info ~json] discipline: with
   --json, stdout carries exactly one JSON array of per-program
   reports. *)
let analyze_cmd =
  let module St = Mc_static.Static in
  let module Sm = Mc_apps.Static_models in
  let progs_of = function
    | `Solver ->
      [ Sm.solver_barrier; Sm.solver_handshake ~labels:Sm.Hs_group () ]
    | `Em -> [ Sm.em_field ]
    | `Cholesky -> [ Sm.cholesky ]
    | `All -> Sm.all ()
  in
  let run app json strict proof lattice =
    let reports = List.map St.analyze (progs_of app) in
    if json then begin
      List.iter
        (fun (r : St.report) ->
          info ~json "%s: %s (weakest model %s)\n" r.St.program
            (Mc_static.Classify.verdict_to_string r.St.verdict)
            (Mc_static.Classify.lmodel_to_string
               r.St.lattice.Mc_static.Classify.weakest))
        reports;
      print_endline
        ("[" ^ String.concat "," (List.map St.to_json reports) ^ "]")
    end
    else
      List.iter (fun r -> St.pp ~proof ~lattice Format.std_formatter r) reports;
    if strict && List.exists St.has_errors reports then exit 1
  in
  let app_arg =
    Arg.(
      value
      & opt
          (enum
             [ ("solver", `Solver); ("em", `Em); ("cholesky", `Cholesky);
               ("all", `All) ])
          `All
      & info [ "app" ] ~docv:"APP"
          ~doc:
            "Programs to analyze: solver (barrier and group-handshake \
             variants), em, cholesky, or all.")
  in
  let json_arg =
    Arg.(
      value & flag
      & info [ "json" ]
          ~doc:
            "Emit one JSON array of per-program reports on stdout; \
             human-readable lines go to stderr.")
  in
  let strict_arg =
    Arg.(
      value & flag
      & info [ "strict" ]
          ~doc:"Exit with status 1 when any S0xx error is reported.")
  in
  let proof_arg =
    Arg.(
      value & flag
      & info [ "proof" ]
          ~doc:
            "Print the verdict justification and the per-read label table \
             with inference proofs.")
  in
  let lattice_arg =
    Arg.(
      value & flag
      & info [ "lattice" ]
          ~doc:
            "Print the weakest consistency-lattice model the program \
             provably tolerates, its per-read decomposition and the \
             per-axiom proof trace. (Always present in --json output.)")
  in
  Cmd.v
    (Cmd.info "analyze"
       ~doc:
         "Statically prove the Section-5 IR models SC and infer weakest \
          read labels, without executing them")
    Term.(const run $ app_arg $ json_arg $ strict_arg $ proof_arg $ lattice_arg)

(* ---------------- litmus ---------------- *)

let litmus_cmd =
  let run () =
    let module Dsl = Mc_history.Dsl in
    let show name h =
      let sc =
        match Mc_consistency.Sequential.is_sequentially_consistent h with
        | Mc_consistency.Sequential.Consistent -> "SC"
        | Inconsistent -> "not SC"
        | Unknown -> "SC?"
      in
      Printf.printf "%-28s PRAM:%-3b causal:%-3b mixed:%-3b %s\n" name
        (Mc_consistency.Pram.is_pram_history h)
        (Mc_consistency.Causal.is_causal_history h)
        (Mc_consistency.Mixed.is_mixed_consistent h)
        sc
    in
    show "dekker"
      (Dsl.make ~procs:2
         [ [ Dsl.w "x" 1; Dsl.rc "y" 0 ]; [ Dsl.w "y" 1; Dsl.rc "x" 0 ] ]);
    show "message-passing"
      (Dsl.make ~procs:2
         [ [ Dsl.w "x" 42; Dsl.w "f" 1 ]; [ Dsl.rc "f" 1; Dsl.rc "x" 42 ] ]);
    show "transitive-chain-pram"
      (Dsl.make ~procs:3
         [
           [ Dsl.w "x" 1 ];
           [ Dsl.rp "x" 1; Dsl.w "y" 2 ];
           [ Dsl.rp "y" 2; Dsl.rp "x" 0 ];
         ])
  in
  Cmd.v
    (Cmd.info "litmus" ~doc:"Check classic litmus histories against the definitions")
    Term.(const run $ const ())

let () =
  let info =
    Cmd.info "mcdsm" ~version:"1.0.0"
      ~doc:"Mixed-consistency distributed shared memory (PODC '94 reproduction)"
  in
  exit
    (Cmd.eval
       (Cmd.group info
          [
            solver_cmd;
            em_cmd;
            cholesky_cmd;
            analyze_cmd;
            check_cmd;
            litmus_cmd;
            lint_cmd;
            metrics_cmd;
            trace_cmd;
            report_cmd;
          ]))
