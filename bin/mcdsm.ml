(* mcdsm: command-line driver for the mixed-consistency DSM.

   Subcommands run each Section-5 application on a chosen memory system
   and optionally check the recorded history against the formal
   consistency definitions.

     mcdsm solver --variant barrier --workers 4 -n 16
     mcdsm em --procs 4 --steps 8 --memory invalidate
     mcdsm cholesky --variant counter -n 24
     mcdsm litmus *)

module Engine = Mc_sim.Engine
module Runtime = Mc_dsm.Runtime
module Config = Mc_dsm.Config
module Api = Mc_dsm.Api
module Op = Mc_history.Op
module Solver = Mc_apps.Linear_solver
module Em = Mc_apps.Em_field
module Sparse = Mc_apps.Sparse_spd
module Cholesky = Mc_apps.Cholesky

type memory = Mixed | Central | Invalidate

let memory_conv =
  let parse = function
    | "mixed" -> Ok Mixed
    | "central" -> Ok Central
    | "invalidate" -> Ok Invalidate
    | s -> Error (`Msg (Printf.sprintf "unknown memory system %S" s))
  in
  let print fmt m =
    Format.pp_print_string fmt
      (match m with Mixed -> "mixed" | Central -> "central" | Invalidate -> "invalidate")
  in
  Cmdliner.Arg.conv (parse, print)

let propagation_conv =
  let parse = function
    | "eager" -> Ok Config.Eager
    | "lazy" -> Ok Config.Lazy
    | "demand" -> Ok Config.Demand
    | "entry" -> Ok Config.Entry
    | s -> Error (`Msg (Printf.sprintf "unknown propagation mode %S" s))
  in
  Cmdliner.Arg.conv (parse, Config.pp_propagation)

(* run [f] on the chosen memory system; returns (result, sim time,
   messages, history if recorded) *)
let run_on ~memory ~procs ~propagation ~record f =
  match memory with
  | Mixed ->
    let engine = Engine.create () in
    let cfg = { (Config.default ~procs) with propagation; record } in
    let rt = Runtime.create engine cfg in
    let out = f (Api.spawn rt) in
    let time = Runtime.run rt in
    let history = if record then Some (Runtime.history rt) else None in
    (out, time, Mc_net.Network.messages_sent (Runtime.network rt), history)
  | Central ->
    let engine = Engine.create () in
    let m = Mc_baselines.Sc_central.create engine ~record ~procs () in
    let out = f (Mc_baselines.Sc_central.spawn m) in
    let time = Mc_baselines.Sc_central.run m in
    let history = if record then Some (Mc_baselines.Sc_central.history m) else None in
    (out, time, Mc_baselines.Sc_central.messages_sent m, history)
  | Invalidate ->
    let engine = Engine.create () in
    let m = Mc_baselines.Sc_invalidate.create engine ~record ~procs () in
    let out = f (Mc_baselines.Sc_invalidate.spawn m) in
    let time = Mc_baselines.Sc_invalidate.run m in
    let history = if record then Some (Mc_baselines.Sc_invalidate.history m) else None in
    (out, time, Mc_baselines.Sc_invalidate.messages_sent m, history)

let check_history ?(trace = false) = function
  | None -> ()
  | Some h ->
    if trace then begin
      print_endline "\n--- space-time diagram ---";
      print_string (Mc_history.Render.space_time h);
      let path = "history.dot" in
      let oc = open_out path in
      output_string oc (Mc_history.Render.dot h);
      close_out oc;
      Printf.printf "--- causality graph written to %s ---\n" path;
      print_string (Mc_history.Render.summary h)
    end;
    Printf.printf "history: %d ops, well-formed=%b, mixed-consistent=%b\n"
      (Mc_history.History.length h)
      (Mc_history.History.is_well_formed h)
      (Mc_consistency.Mixed.is_mixed_consistent h);
    (if Mc_history.History.length h <= 60 then
       match Mc_consistency.Sequential.is_sequentially_consistent h with
       | Mc_consistency.Sequential.Consistent ->
         print_endline "sequentially consistent: yes"
       | Inconsistent -> print_endline "sequentially consistent: no"
       | Unknown -> print_endline "sequentially consistent: unknown (bound)");
    let report = Mc_analysis.Analysis.analyze h in
    print_endline "--- analysis ---";
    Format.printf "%a" Mc_analysis.Analysis.pp report

open Cmdliner

let seed_arg =
  Arg.(value & opt int 42 & info [ "seed" ] ~docv:"SEED" ~doc:"Random seed.")

let procs_arg default =
  Arg.(value & opt int default & info [ "p"; "procs" ] ~docv:"P" ~doc:"Number of processes.")

let memory_arg =
  Arg.(
    value
    & opt memory_conv Mixed
    & info [ "memory" ] ~docv:"MEM" ~doc:"Memory system: mixed, central or invalidate.")

let propagation_arg =
  Arg.(
    value
    & opt propagation_conv Config.Lazy
    & info [ "propagation" ] ~docv:"MODE" ~doc:"Lock propagation: eager, lazy, demand or entry.")

let record_arg =
  Arg.(value & flag & info [ "check" ] ~doc:"Record the execution and run the consistency checkers.")

let trace_arg =
  Arg.(
    value & flag
    & info [ "trace" ]
        ~doc:
          "With --check: print a space-time diagram and write the causality \
           graph to history.dot.")

(* ---------------- solver ---------------- *)

let solver_cmd =
  let variant_conv =
    let parse = function
      | "barrier" -> Ok Solver.Barrier_pram
      | "handshake" -> Ok Solver.Handshake_causal
      | "handshake-pram" -> Ok Solver.Handshake_pram
      | s -> Error (`Msg (Printf.sprintf "unknown variant %S" s))
    in
    Arg.conv (parse, fun fmt v -> Format.pp_print_string fmt (Solver.variant_to_string v))
  in
  let run n workers variant memory propagation record trace seed =
    let procs = workers + 1 in
    let problem = Solver.Problem.generate ~seed ~n in
    let expected = Solver.reference ~variant problem in
    let res, time, msgs, history =
      run_on ~memory ~procs ~propagation ~record (fun spawn ->
          Solver.launch ~spawn ~procs ~variant problem)
    in
    let r = Option.get !res in
    Printf.printf "%s: n=%d workers=%d iters=%d converged=%b\n"
      (Solver.variant_to_string variant)
      n workers r.Solver.iterations r.Solver.converged;
    Printf.printf "sim time=%.1fus messages=%d exact=%b\n" time msgs
      (r.Solver.x = expected.Solver.x);
    check_history ~trace history
  in
  let n_arg = Arg.(value & opt int 16 & info [ "n" ] ~docv:"N" ~doc:"System size.") in
  let workers_arg =
    Arg.(value & opt int 4 & info [ "w"; "workers" ] ~docv:"W" ~doc:"Worker count.")
  in
  let variant_arg =
    Arg.(
      value
      & opt variant_conv Solver.Barrier_pram
      & info [ "variant" ] ~docv:"V" ~doc:"barrier, handshake or handshake-pram.")
  in
  Cmd.v
    (Cmd.info "solver" ~doc:"Iterative linear-equation solver (Sec. 5.1, Figs. 2-3)")
    Term.(
      const run $ n_arg $ workers_arg $ variant_arg $ memory_arg $ propagation_arg
      $ record_arg $ trace_arg $ seed_arg)

(* ---------------- em ---------------- *)

let em_cmd =
  let run procs steps cols memory propagation record trace seed =
    let params = { Em.rows = 4 * procs; cols; steps; seed } in
    let expected = Em.reference ~procs params in
    let res, time, msgs, history =
      run_on ~memory ~procs ~propagation ~record (fun spawn ->
          Em.launch ~spawn ~procs params)
    in
    let r = Option.get !res in
    Printf.printf "EM field %dx%d, %d steps on %d procs\n" params.Em.rows cols steps
      procs;
    Printf.printf "sim time=%.1fus messages=%d exact=%b energy=%d\n" time msgs
      (r.Em.checksum = expected.Em.checksum)
      r.Em.energy;
    check_history ~trace history
  in
  let steps_arg = Arg.(value & opt int 8 & info [ "steps" ] ~doc:"Update rounds.") in
  let cols_arg = Arg.(value & opt int 8 & info [ "cols" ] ~doc:"Grid width.") in
  Cmd.v
    (Cmd.info "em" ~doc:"Electromagnetic field computation (Sec. 5.2, Fig. 4)")
    Term.(
      const run $ procs_arg 4 $ steps_arg $ cols_arg $ memory_arg $ propagation_arg
      $ record_arg $ trace_arg $ seed_arg)

(* ---------------- cholesky ---------------- *)

let cholesky_cmd =
  let variant_conv =
    let parse = function
      | "lock" -> Ok Cholesky.Lock_based
      | "counter" -> Ok Cholesky.Counter_based
      | s -> Error (`Msg (Printf.sprintf "unknown variant %S" s))
    in
    Arg.conv
      (parse, fun fmt v -> Format.pp_print_string fmt (Cholesky.variant_to_string v))
  in
  let run n density variant memory propagation record trace seed =
    let m = Sparse.generate ~seed ~n ~density in
    let lref = Sparse.factor_reference m in
    let res, time, msgs, history =
      run_on ~memory ~procs:4 ~propagation ~record (fun spawn ->
          Cholesky.launch ~spawn ~procs:4 ~variant m)
    in
    let r = Option.get !res in
    Printf.printf "%s: n=%d nnz(L)=%d\n"
      (Cholesky.variant_to_string variant)
      n (Sparse.nnz m);
    Printf.printf "sim time=%.1fus messages=%d exact=%b max_error=%d\n" time msgs
      (r.Cholesky.l = lref) r.Cholesky.max_error;
    check_history ~trace history
  in
  let n_arg = Arg.(value & opt int 24 & info [ "n" ] ~doc:"Matrix dimension.") in
  let density_arg =
    Arg.(value & opt float 0.2 & info [ "density" ] ~doc:"Off-diagonal density.")
  in
  let variant_arg =
    Arg.(
      value
      & opt variant_conv Cholesky.Lock_based
      & info [ "variant" ] ~docv:"V" ~doc:"lock or counter.")
  in
  Cmd.v
    (Cmd.info "cholesky" ~doc:"Sparse Cholesky factorization (Sec. 5.3, Fig. 5)")
    Term.(
      const run $ n_arg $ density_arg $ variant_arg $ memory_arg $ propagation_arg
      $ record_arg $ trace_arg $ seed_arg)

(* ---------------- lint ---------------- *)

let litmus_catalog () =
  let module Dsl = Mc_history.Dsl in
  [
    ( "dekker",
      Dsl.make ~procs:2
        [ [ Dsl.w "x" 1; Dsl.rc "y" 0 ]; [ Dsl.w "y" 1; Dsl.rc "x" 0 ] ] );
    ( "message-passing",
      Dsl.make ~procs:2
        [ [ Dsl.w "x" 42; Dsl.w "f" 1 ]; [ Dsl.rc "f" 1; Dsl.rc "x" 42 ] ] );
    ( "transitive-chain-pram",
      Dsl.make ~procs:3
        [
          [ Dsl.w "x" 1 ];
          [ Dsl.rp "x" 1; Dsl.w "y" 2 ];
          [ Dsl.rp "y" 2; Dsl.rp "x" 0 ];
        ] );
    ( "racy-writes",
      Dsl.make ~procs:2
        [ [ Dsl.w "x" 1; Dsl.rp "y" 0 ]; [ Dsl.w "x" 2; Dsl.w "y" 1 ] ] );
    ( "bad-lock-discipline",
      Dsl.make ~procs:2
        [
          [ Dsl.wl ~seq:0 "l"; Dsl.w "x" 1 ];
          [ Dsl.rl ~seq:1 "l"; Dsl.w "x" 2; Dsl.ru ~seq:2 "l" ];
        ] );
    ( "await-never-fires",
      Dsl.make ~procs:2 [ [ Dsl.await "f" 5 ]; [ Dsl.w "f" 1 ] ] );
    ( "over-labelled",
      Dsl.make ~procs:2 [ [ Dsl.w "x" 1 ]; [ Dsl.rc "x" 1 ] ] );
  ]

let lint_cmd =
  let app_histories app memory propagation seed =
    let solver () =
      let problem = Solver.Problem.generate ~seed ~n:8 in
      let _, _, _, h =
        run_on ~memory ~procs:3 ~propagation ~record:true (fun spawn ->
            Solver.launch ~spawn ~procs:3 ~variant:Solver.Barrier_pram problem)
      in
      ("solver", Option.get h)
    in
    let em () =
      let params = { Em.rows = 8; cols = 4; steps = 2; seed } in
      let _, _, _, h =
        run_on ~memory ~procs:2 ~propagation ~record:true (fun spawn ->
            Em.launch ~spawn ~procs:2 params)
      in
      ("em", Option.get h)
    in
    let cholesky () =
      let m = Sparse.generate ~seed ~n:8 ~density:0.2 in
      let _, _, _, h =
        run_on ~memory ~procs:4 ~propagation ~record:true (fun spawn ->
            Cholesky.launch ~spawn ~procs:4 ~variant:Cholesky.Lock_based m)
      in
      ("cholesky", Option.get h)
    in
    (* the EXP-DELIVERY bench workload shape: phase-disciplined writes
       with post-barrier PRAM reads, a lock-protected accumulator and an
       await-signalled finish, recorded under update batching (mixed
       runtime only: batching is a mixed-memory feature) *)
    let delivery () =
      let engine = Engine.create () in
      let cfg =
        { (Config.default ~procs:4) with record = true; batch_max = 8; propagation }
      in
      let rt = Runtime.create engine cfg in
      for i = 0 to 3 do
        Api.spawn rt i (fun api ->
            for round = 1 to 3 do
              for k = 0 to 5 do
                api.Api.write
                  (Printf.sprintf "d:%d:%d" i k)
                  ((round * 100) + (10 * i) + k)
              done;
              api.Api.barrier ();
              for j = 0 to 3 do
                ignore
                  (api.Api.read ~label:Op.PRAM
                     (Printf.sprintf "d:%d:%d" j (round mod 6)))
              done;
              api.Api.write_lock "sum";
              let v = api.Api.read "acc" in
              api.Api.write "acc" (v + 1);
              api.Api.write_unlock "sum";
              api.Api.barrier ()
            done;
            if i = 0 then api.Api.write "go" 1 else api.Api.await "go" 1)
      done;
      ignore (Runtime.run rt);
      ("delivery", Runtime.history rt)
    in
    match app with
    | `Litmus -> litmus_catalog ()
    | `Solver -> [ solver () ]
    | `Em -> [ em () ]
    | `Cholesky -> [ cholesky () ]
    | `Delivery -> [ delivery () ]
    | `All -> litmus_catalog () @ [ solver (); em (); cholesky (); delivery () ]
  in
  let run app json strict memory propagation seed =
    let reports =
      List.map
        (fun (name, h) -> (name, Mc_analysis.Analysis.analyze h))
        (app_histories app memory propagation seed)
    in
    if json then begin
      print_string "[";
      List.iteri
        (fun i (name, r) ->
          if i > 0 then print_string ",";
          Printf.printf "{\"name\":%S,\"report\":%s}" name
            (Mc_analysis.Analysis.to_json r))
        reports;
      print_endline "]"
    end
    else
      List.iter
        (fun (name, r) ->
          Printf.printf "== %s ==\n" name;
          Format.printf "%a" Mc_analysis.Analysis.pp r)
        reports;
    if strict && List.exists (fun (_, r) -> Mc_analysis.Analysis.has_errors r) reports
    then exit 1
  in
  let app_arg =
    Arg.(
      value
      & opt
          (enum
             [
               ("litmus", `Litmus);
               ("solver", `Solver);
               ("em", `Em);
               ("cholesky", `Cholesky);
               ("delivery", `Delivery);
               ("all", `All);
             ])
          `Litmus
      & info [ "app" ] ~docv:"APP"
          ~doc:"History source: litmus, solver, em, cholesky, delivery or all.")
  in
  let json_arg =
    Arg.(value & flag & info [ "json" ] ~doc:"Emit machine-readable JSON.")
  in
  let strict_arg =
    Arg.(
      value & flag
      & info [ "strict" ] ~doc:"Exit with status 1 if any error is reported.")
  in
  Cmd.v
    (Cmd.info "lint"
       ~doc:
         "Run the race detector, discipline linter and label advisor on \
          recorded histories")
    Term.(
      const run $ app_arg $ json_arg $ strict_arg $ memory_arg $ propagation_arg
      $ seed_arg)

(* ---------------- litmus ---------------- *)

let litmus_cmd =
  let run () =
    let module Dsl = Mc_history.Dsl in
    let show name h =
      let sc =
        match Mc_consistency.Sequential.is_sequentially_consistent h with
        | Mc_consistency.Sequential.Consistent -> "SC"
        | Inconsistent -> "not SC"
        | Unknown -> "SC?"
      in
      Printf.printf "%-28s PRAM:%-3b causal:%-3b mixed:%-3b %s\n" name
        (Mc_consistency.Pram.is_pram_history h)
        (Mc_consistency.Causal.is_causal_history h)
        (Mc_consistency.Mixed.is_mixed_consistent h)
        sc
    in
    show "dekker"
      (Dsl.make ~procs:2
         [ [ Dsl.w "x" 1; Dsl.rc "y" 0 ]; [ Dsl.w "y" 1; Dsl.rc "x" 0 ] ]);
    show "message-passing"
      (Dsl.make ~procs:2
         [ [ Dsl.w "x" 42; Dsl.w "f" 1 ]; [ Dsl.rc "f" 1; Dsl.rc "x" 42 ] ]);
    show "transitive-chain-pram"
      (Dsl.make ~procs:3
         [
           [ Dsl.w "x" 1 ];
           [ Dsl.rp "x" 1; Dsl.w "y" 2 ];
           [ Dsl.rp "y" 2; Dsl.rp "x" 0 ];
         ])
  in
  Cmd.v
    (Cmd.info "litmus" ~doc:"Check classic litmus histories against the definitions")
    Term.(const run $ const ())

let () =
  let info =
    Cmd.info "mcdsm" ~version:"1.0.0"
      ~doc:"Mixed-consistency distributed shared memory (PODC '94 reproduction)"
  in
  exit
    (Cmd.eval
       (Cmd.group info [ solver_cmd; em_cmd; cholesky_cmd; litmus_cmd; lint_cmd ]))
