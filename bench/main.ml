(* Benchmark harness: regenerates every experiment of DESIGN.md /
   EXPERIMENTS.md. Each experiment prints a paper-style table of
   simulated-time / message-count comparisons; `--bechamel` additionally
   runs wall-clock micro-benchmarks (one Bechamel test per experiment
   family) over the same workloads.

   Usage:
     bench/main.exe                 run every experiment table
     bench/main.exe --exp f2f3      run one experiment
     bench/main.exe --quick         smaller sweeps
     bench/main.exe --bechamel      also run the bechamel suite *)


open Harness

(* ------------------------------------------------------------------ *)
(* EXP-F2F3: linear solver, barriers (Fig. 2) vs handshaking (Fig. 3)  *)
(* ------------------------------------------------------------------ *)

let exp_f2f3 () =
  let sweeps =
    if !quick then [ (3, 16); (5, 16) ] else [ (3, 16); (5, 16); (9, 32); (9, 64) ]
  in
  let rows = ref [] in
  List.iter
    (fun (procs, n) ->
      let problem = Solver.Problem.generate ~seed:42 ~n in
      let run variant timestamped =
        let res, stats =
          run_mixed ~procs ~timestamped (fun _rt spawn ->
              Solver.launch ~spawn ~procs ~variant problem)
        in
        (Option.get !res, stats)
      in
      (* Fig. 2 is PRAM-consistent: updates need no vector timestamps *)
      let rb, sb = run Solver.Barrier_pram false in
      let rh, sh = run Solver.Handshake_causal true in
      let expected_b = Solver.reference ~variant:Solver.Barrier_pram problem in
      let expected_h = Solver.reference ~variant:Solver.Handshake_causal problem in
      let row variant (r : Solver.result) expected stats =
        [
          string_of_int (procs - 1);
          string_of_int n;
          variant;
          string_of_int r.Solver.iterations;
          (if r.Solver.x = expected.Solver.x then "yes" else "NO");
          T.fmt_float stats.time;
          string_of_int stats.messages;
          string_of_int stats.bytes;
        ]
      in
      rows := row "barrier+PRAM" rb expected_b sb :: !rows;
      rows := row "handshake+causal" rh expected_h sh :: !rows;
      rows :=
        [ ""; ""; "-> barrier speedup"; ""; ""; T.fmt_ratio (sh.time /. sb.time);
          T.fmt_ratio (float_of_int sh.messages /. float_of_int sb.messages) ]
        :: !rows)
    sweeps;
  T.print ~title:"EXP-F2F3: iterative solver, Fig. 2 (barriers) vs Fig. 3 (handshaking)"
    ~headers:[ "workers"; "n"; "variant"; "iters"; "exact"; "sim time"; "msgs"; "bytes" ]
    (List.rev !rows);
  print_endline
    "paper claim (Sec. 7): the barrier version outperforms the handshaking version."

(* ------------------------------------------------------------------ *)
(* EXP-F3-PRAM: weakened Fig. 3 reads inconsistent values              *)
(* ------------------------------------------------------------------ *)

let adverse_latency nodes =
  (* coordinator close to everyone; workers far from each other *)
  let lat = Array.make_matrix nodes nodes 2000. in
  for i = 0 to nodes - 1 do
    lat.(i).(i) <- 0.;
    lat.(i).(0) <- 5.;
    lat.(0).(i) <- 5.
  done;
  Latency.matrix lat

let exp_f3pram () =
  let procs = 4 in
  let problem = Solver.Problem.generate ~seed:42 ~n:8 in
  (* compare mid-iteration trajectories (before convergence smooths the
     difference away): cap the iteration count below convergence *)
  let max_iters = 4 in
  let expected =
    Solver.reference ~variant:Solver.Handshake_causal ~max_iters problem
  in
  let run ?await_label variant =
    let res, _ =
      run_mixed ~procs ?await_label ~latency:(adverse_latency procs)
        (fun _rt spawn -> Solver.launch ~spawn ~procs ~variant ~max_iters problem)
    in
    Option.get !res
  in
  let causal = run Solver.Handshake_causal in
  (* the weakened variant uses the paper's PRAM await (busy-wait of PRAM
     reads); a causal-gated await would mask the staleness *)
  let pram = run ~await_label:Op.PRAM Solver.Handshake_pram in
  (* consistency checks on a tiny recorded instance *)
  let tiny = Solver.Problem.generate ~seed:7 ~n:3 in
  let check_tiny variant =
    let engine = Engine.create () in
    let cfg = { (Config.default ~procs:3) with record = true } in
    let cfg =
      if variant = Solver.Handshake_pram then { cfg with await_label = Op.PRAM }
      else cfg
    in
    let rt = Runtime.create engine ~latency:(adverse_latency 3) cfg in
    let res =
      Solver.launch ~spawn:(Api.spawn rt) ~procs:3 ~variant ~max_iters:2 tiny
    in
    ignore (Runtime.run rt);
    ignore (Option.get !res);
    let h = Runtime.history rt in
    ( Mc_history.History.is_well_formed h,
      Mc_consistency.Mixed.is_mixed_consistent h )
  in
  let wf_c, mc_c = check_tiny Solver.Handshake_causal in
  let wf_p, mc_p = check_tiny Solver.Handshake_pram in
  T.print ~title:"EXP-F3-PRAM: Fig. 3 with reads weakened to PRAM (Sec. 5.1 warning)"
    ~headers:[ "variant"; "matches reference"; "well-formed"; "mixed consistent" ]
    [
      [
        "handshake+causal";
        (if causal.Solver.x = expected.Solver.x then "yes" else "NO");
        string_of_bool wf_c;
        string_of_bool mc_c;
      ];
      [
        "handshake+PRAM";
        (if pram.Solver.x = expected.Solver.x then "yes (unexpected)"
         else "no (stale reads)");
        string_of_bool wf_p;
        string_of_bool mc_p;
      ];
    ];
  print_endline
    "paper claim (Sec. 5.1): with PRAM reads, inconsistent values of the matrix are\n\
     read; the execution is still mixed consistent - the model permits it - but no\n\
     longer equivalent to a sequentially consistent run."

(* ------------------------------------------------------------------ *)
(* EXP-F4: electromagnetic field computation (Fig. 4)                  *)
(* ------------------------------------------------------------------ *)

let exp_f4 () =
  let sweeps = if !quick then [ 2; 4 ] else [ 2; 4; 8 ] in
  let rows = ref [] in
  List.iter
    (fun procs ->
      let params =
        { Em.rows = 4 * procs; cols = 8; steps = (if !quick then 4 else 8); seed = 5 }
      in
      let expected = Em.reference ~procs params in
      let correct (r : Em.result) =
        if r.Em.checksum = expected.Em.checksum then "yes" else "NO"
      in
      let res_m, s_m =
        run_mixed ~procs ~timestamped:false (fun _rt spawn ->
            Em.launch ~spawn ~procs params)
      in
      let res_i, s_i = run_inval ~procs (fun spawn -> Em.launch ~spawn ~procs params) in
      let res_c, s_c = run_central ~procs (fun spawn -> Em.launch ~spawn ~procs params) in
      let row system res stats =
        [
          string_of_int procs;
          Printf.sprintf "%dx%d" params.Em.rows params.Em.cols;
          system;
          correct (Option.get !res);
          T.fmt_float stats.time;
          string_of_int stats.messages;
          string_of_int stats.bytes;
        ]
      in
      rows := row "mixed (PRAM+barriers)" res_m s_m :: !rows;
      rows := row "SC write-invalidate" res_i s_i :: !rows;
      rows := row "SC central server" res_c s_c :: !rows;
      rows :=
        [ ""; ""; "-> mixed speedup vs invalidate"; "";
          T.fmt_ratio (s_i.time /. s_m.time) ]
        :: !rows)
    sweeps;
  T.print ~title:"EXP-F4: EM field computation (Fig. 4), mixed vs SC baselines"
    ~headers:[ "procs"; "grid"; "system"; "exact"; "sim time"; "msgs"; "bytes" ]
    (List.rev !rows);
  print_endline
    "paper claim (Secs. 1, 5.2): PRAM reads + barriers give the ghost-copy pattern\n\
     without per-access coherence traffic, so the weak memory outperforms SC."

(* ------------------------------------------------------------------ *)
(* EXP-F5: sparse Cholesky (Fig. 5), locks vs counter objects          *)
(* ------------------------------------------------------------------ *)

let exp_f5 () =
  let matrices =
    if !quick then
      [ ("random n=24 d=0.15", Sparse.generate ~seed:11 ~n:24 ~density:0.15) ]
    else
      [
        ("random n=24 d=0.15", Sparse.generate ~seed:11 ~n:24 ~density:0.15);
        ("random n=32 d=0.25", Sparse.generate ~seed:12 ~n:32 ~density:0.25);
        ("arrow n=32 bw=3", Sparse.arrow ~seed:13 ~n:32 ~bandwidth:3);
      ]
  in
  let procs = 4 in
  let rows = ref [] in
  List.iter
    (fun (name, m) ->
      let lref = Sparse.factor_reference m in
      let run variant =
        let res, stats =
          run_mixed ~procs (fun _rt spawn -> Cholesky.launch ~spawn ~procs ~variant m)
        in
        (Option.get !res, stats)
      in
      let r_lock, s_lock = run Cholesky.Lock_based in
      let r_ctr, s_ctr = run Cholesky.Counter_based in
      let row variant (r : Cholesky.result) stats =
        [
          name;
          string_of_int (Sparse.nnz m);
          variant;
          (if r.Cholesky.l = lref then "yes" else "NO");
          T.fmt_float stats.time;
          string_of_int stats.messages;
          T.fmt_float (mean_wait stats "write_lock");
        ]
      in
      rows := row "locks (Fig. 5)" r_lock s_lock :: !rows;
      rows := row "counter objects" r_ctr s_ctr :: !rows;
      rows :=
        [ ""; ""; "-> counter speedup"; "";
          T.fmt_ratio (s_lock.time /. s_ctr.time);
          T.fmt_ratio (float_of_int s_lock.messages /. float_of_int s_ctr.messages) ]
        :: !rows)
    matrices;
  T.print ~title:"EXP-F5: sparse Cholesky (Fig. 5), lock-based vs counter objects"
    ~headers:[ "matrix"; "nnz(L)"; "variant"; "exact"; "sim time"; "msgs"; "lock wait" ]
    (List.rev !rows);
  print_endline
    "paper claim (Sec. 7): the counter-object algorithm outperforms the lock-based\n\
     algorithm significantly."

(* ------------------------------------------------------------------ *)
(* EXP-SPECTRUM: access latency across the consistency spectrum        *)
(* ------------------------------------------------------------------ *)

let spectrum_workload ~label (api : Api.t) =
  let rng = Mc_util.Rng.make (1000 + api.Api.proc_id) in
  let locs = Array.init 8 (fun i -> "s:" ^ string_of_int i) in
  let value = ref (api.Api.proc_id * 10_000) in
  for _ = 1 to 60 do
    let loc = Mc_util.Rng.pick rng locs in
    if Mc_util.Rng.int rng 100 < 25 then begin
      incr value;
      api.Api.write loc !value
    end
    else ignore (api.Api.read ~label loc)
  done;
  api.Api.barrier ()

let exp_spectrum () =
  let procs = 4 in
  let rows = ref [] in
  let add name stats =
    rows :=
      [
        name;
        T.fmt_float (mean_wait stats "read");
        T.fmt_float (mean_wait stats "write");
        T.fmt_float stats.time;
        string_of_int stats.messages;
        string_of_int stats.bytes;
      ]
      :: !rows
  in
  let _, s =
    run_mixed ~procs (fun rt _spawn ->
        for i = 0 to procs - 1 do
          Api.spawn rt i (spectrum_workload ~label:Op.PRAM)
        done)
  in
  add "mixed: PRAM reads" s;
  let _, s =
    run_mixed ~procs (fun rt _spawn ->
        for i = 0 to procs - 1 do
          Api.spawn rt i (spectrum_workload ~label:Op.Causal)
        done)
  in
  add "mixed: causal reads" s;
  let _, s =
    run_inval ~procs (fun spawn ->
        for i = 0 to procs - 1 do
          spawn i (spectrum_workload ~label:Op.Causal)
        done)
  in
  add "SC write-invalidate" s;
  let _, s =
    run_central ~procs (fun spawn ->
        for i = 0 to procs - 1 do
          spawn i (spectrum_workload ~label:Op.Causal)
        done)
  in
  add "SC central server" s;
  T.print ~title:"EXP-SPECTRUM: mean access latency across consistency levels"
    ~headers:[ "memory"; "read wait"; "write wait"; "total time"; "msgs"; "bytes" ]
    (List.rev !rows);
  print_endline
    "paper claim (Secs. 1, 3.2): weaker consistency means lower access latency;\n\
     PRAM and causal reads are local, SC reads pay coherence/round-trip costs."

(* ------------------------------------------------------------------ *)
(* EXP-PROP: eager vs lazy vs demand-driven lock propagation (Sec. 6)  *)
(* ------------------------------------------------------------------ *)

(* a lock name homed at node 0 (lock home = hash mod procs) *)
let lock_homed_at ~procs ~home =
  let rec search i =
    let name = Printf.sprintf "cs%d" i in
    if Hashtbl.hash name mod procs = home then name else search (i + 1)
  in
  search 0

let prop_workload ~lock ~writes ~reads (api : Api.t) =
  (* processes take turns in a critical section; each writes [writes]
     variables, the next holder reads [reads] of them *)
  for round = 1 to 4 do
    api.Api.write_lock lock;
    for k = 0 to reads - 1 do
      ignore (api.Api.read ("d:" ^ string_of_int k))
    done;
    for k = 0 to writes - 1 do
      api.Api.write
        ("d:" ^ string_of_int k)
        ((round * 100_000) + (api.Api.proc_id * 1000) + k)
    done;
    api.Api.write_unlock lock;
    api.Api.compute 20.
  done;
  api.Api.barrier ()

let exp_prop () =
  let procs = 4 in
  (* the lock manager and its links are fast; peer-to-peer data links are
     slow, so update propagation - not the lock hand-off - is the
     bottleneck, which is where the three modes differ *)
  let lock = lock_homed_at ~procs ~home:0 in
  let lat = Array.make_matrix procs procs 400. in
  for i = 0 to procs - 1 do
    lat.(i).(i) <- 0.;
    lat.(i).(0) <- 10.;
    lat.(0).(i) <- 10.
  done;
  let latency = Latency.matrix lat in
  let cases = [ ("W=12 R=0", 12, 0); ("W=12 R=2", 12, 2); ("W=12 R=12", 12, 12) ] in
  let rows = ref [] in
  List.iter
    (fun (case, writes, reads) ->
      List.iter
        (fun propagation ->
          let _, s =
            run_mixed ~procs ~propagation ~latency (fun rt _spawn ->
                for i = 0 to procs - 1 do
                  Api.spawn rt i (prop_workload ~lock ~writes ~reads)
                done)
          in
          rows :=
            [
              case;
              Config.propagation_to_string propagation;
              T.fmt_float s.time;
              string_of_int s.messages;
              T.fmt_float (mean_wait s "write_lock");
              T.fmt_float (mean_wait s "write_unlock");
              T.fmt_float (mean_wait s "read");
            ]
            :: !rows)
        [ Config.Eager; Config.Lazy; Config.Demand; Config.Entry ])
    cases;
  T.print ~title:"EXP-PROP: critical-section update propagation (Sec. 6)"
    ~headers:
      [ "write/read set"; "mode"; "sim time"; "msgs"; "lock wait"; "unlock wait";
        "read wait" ]
    (List.rev !rows);
  print_endline
    "paper discussion (Sec. 6): eager pays at release (flush broadcast + acks), lazy\n\
     shifts the wait to the next acquirer, demand-driven blocks only the reads that\n\
     actually touch the written locations. Entry consistency (Sec. 2, Midway) ships\n\
     the guarded values with the lock itself - no broadcasts at all."

(* ------------------------------------------------------------------ *)
(* EXP-BARRIER: barrier cost vs process count (Sec. 6)                 *)
(* ------------------------------------------------------------------ *)

let exp_barrier () =
  let sweeps = if !quick then [ 2; 4; 8 ] else [ 2; 4; 8; 16 ] in
  let episodes = 6 in
  let rows = ref [] in
  List.iter
    (fun procs ->
      let workload (api : Api.t) =
        for round = 1 to episodes do
          api.Api.write
            ("b:" ^ string_of_int api.Api.proc_id)
            ((round * 100) + api.Api.proc_id);
          api.Api.barrier ()
        done
      in
      let _, s_mixed =
        run_mixed ~procs ~timestamped:false (fun rt _ ->
            for i = 0 to procs - 1 do
              Api.spawn rt i workload
            done)
      in
      let _, s_central =
        run_central ~procs (fun spawn ->
            for i = 0 to procs - 1 do
              spawn i workload
            done)
      in
      rows :=
        [
          string_of_int procs;
          T.fmt_float (s_mixed.time /. float_of_int episodes);
          T.fmt_float (mean_wait s_mixed "barrier");
          string_of_int (s_mixed.messages / episodes);
          T.fmt_float (s_central.time /. float_of_int episodes);
          string_of_int (s_central.messages / episodes);
        ]
        :: !rows)
    sweeps;
  T.print
    ~title:"EXP-BARRIER: count-vector barrier (Sec. 6) vs SC-central equivalent"
    ~headers:
      [
        "procs";
        "mixed time/episode";
        "mixed barrier wait";
        "mixed msgs/episode";
        "SC time/episode";
        "SC msgs/episode";
      ]
    (List.rev !rows);
  print_endline
    "the update-count barrier lets post-barrier reads proceed as soon as the counted\n\
     updates arrive; an SC memory serializes every access at the server instead."

(* ------------------------------------------------------------------ *)
(* EXP-THEORY: Theorem 1 / corollaries on recorded executions          *)
(* ------------------------------------------------------------------ *)

let exp_theory () =
  let rows = ref [] in
  let report name h class_holds =
    let wf = Mc_history.History.is_well_formed h in
    let mixed = Mc_consistency.Mixed.is_mixed_consistent h in
    let sc =
      match
        Mc_consistency.Sequential.is_sequentially_consistent ~max_states:300_000 h
      with
      | Mc_consistency.Sequential.Consistent -> "yes"
      | Mc_consistency.Sequential.Inconsistent -> "no"
      | Mc_consistency.Sequential.Unknown -> "search bound"
    in
    rows :=
      [
        name;
        string_of_int (Mc_history.History.length h);
        string_of_bool wf;
        string_of_bool mixed;
        sc;
        string_of_bool class_holds;
      ]
      :: !rows
  in
  (* 1. entry-consistent random program (Corollary 1) *)
  let engine = Engine.create () in
  let cfg = { (Config.default ~procs:2) with record = true } in
  let rt = Runtime.create engine cfg in
  for i = 0 to 1 do
    Runtime.spawn_process rt i (fun p ->
        for round = 1 to 2 do
          Runtime.write_lock p "g";
          Runtime.write p "x" ((i * 100) + round);
          ignore (Runtime.read p "x");
          Runtime.write_unlock p "g"
        done)
  done;
  ignore (Runtime.run rt);
  let h = Runtime.history rt in
  report "entry-consistent + causal reads (Cor. 1)" h
    (Mc_consistency.Program_class.is_entry_consistent h);
  (* 2. PRAM-consistent phase program (Corollary 2) *)
  let engine = Engine.create () in
  let rt = Runtime.create engine { (Config.default ~procs:3) with record = true } in
  for i = 0 to 2 do
    Runtime.spawn_process rt i (fun p ->
        for round = 1 to 2 do
          Runtime.write p (Printf.sprintf "v:%d" i) ((round * 10) + i);
          Runtime.barrier p;
          for j = 0 to 2 do
            ignore (Runtime.read p ~label:Op.PRAM (Printf.sprintf "v:%d" j))
          done;
          Runtime.barrier p
        done)
  done;
  ignore (Runtime.run rt);
  let h = Runtime.history rt in
  report "PRAM-consistent phases (Cor. 2)" h
    (Mc_consistency.Program_class.is_pram_consistent h);
  (* 3. tiny Fig. 3 handshake (Theorem 1 premises) *)
  let tiny = Solver.Problem.generate ~seed:7 ~n:2 in
  let engine = Engine.create () in
  let rt = Runtime.create engine { (Config.default ~procs:2) with record = true } in
  let res =
    Solver.launch ~spawn:(Api.spawn rt) ~procs:2 ~variant:Solver.Handshake_causal
      ~max_iters:2 tiny
  in
  ignore (Runtime.run rt);
  ignore (Option.get !res);
  let h = Runtime.history rt in
  report "Fig. 3 handshake round (Thm. 1)" h
    (Mc_consistency.Commute.theorem1_holds h);
  T.print ~title:"EXP-THEORY: consistency checking of recorded executions"
    ~headers:[ "program"; "ops"; "well-formed"; "mixed"; "SC"; "class/premise" ]
    (List.rev !rows);
  print_endline
    "Theorem 1 and Corollaries 1-2: executions of the disciplined program classes\n\
     are sequentially consistent; the checkers verify this on recorded runs."

(* ------------------------------------------------------------------ *)
(* EXP-DELIVERY: fast causal delivery engine vs seed pending list      *)
(* ------------------------------------------------------------------ *)

module Replica = Mc_dsm.Replica
module Protocol = Mc_dsm.Protocol

(* Worst case for the rescanned pending list: each writer's stream is fed
   newest-first (round-robin across writers), so nothing is deliverable
   until the writer's first update arrives — by then the buffer holds the
   writer's whole stream and each rescan pass frees exactly one update.
   The per-writer-queue engine buffers each arrival in O(1) and drains
   the cascade in O(updates x procs). *)
let drain_workload ~p ~depth =
  let updates = ref [] in
  for useq = depth downto 1 do
    for w = 1 to p - 1 do
      let dep = Array.make p 0 in
      dep.(w) <- useq - 1;
      updates :=
        {
          Protocol.writer = w;
          useq;
          dep;
          loc = "x:" ^ string_of_int w;
          numeric = useq;
          tag = w;
          is_dec = false;
        }
        :: !updates
    done
  done;
  List.rev !updates

let run_drain ~delivery ~p updates =
  let engine = Engine.create () in
  let r = Replica.create engine ~id:0 ~n:p ~delivery () in
  let t0 = Sys.time () in
  List.iter (Replica.receive r) updates;
  let dt = Sys.time () -. t0 in
  assert (Replica.pending_count r = 0);
  (r, dt)

let batch_workload ~procs ~writes (api : Api.t) =
  let me = api.Api.proc_id in
  for k = 1 to writes do
    api.Api.write (Printf.sprintf "bw:%d:%d" me (k mod 8)) ((me * 1_000_000) + k)
  done;
  api.Api.barrier ();
  for j = 0 to procs - 1 do
    ignore (api.Api.read (Printf.sprintf "bw:%d:%d" j (writes mod 8)))
  done

let run_batching ~procs ~batch_max ~writes =
  let engine = Engine.create () in
  let cfg = { (Config.default ~procs) with batch_max } in
  let rt = Runtime.create engine cfg in
  for i = 0 to procs - 1 do
    Api.spawn rt i (batch_workload ~procs ~writes)
  done;
  let time = Runtime.run rt in
  let net = Runtime.network rt in
  (time, Network.messages_sent net, Network.bytes_sent net)

let exp_delivery () =
  let drain_targets = if !quick then [ 200; 1_000 ] else [ 1_000; 10_000 ] in
  let ps = [ 2; 4; 8 ] in
  let drain_rows = ref [] and drain_json = ref [] in
  List.iter
    (fun buffered_target ->
      List.iter
        (fun p ->
          let depth = max 1 (buffered_target / (p - 1)) in
          let buffered = depth * (p - 1) in
          let updates = drain_workload ~p ~depth in
          let r_ref, t_ref = run_drain ~delivery:Config.Reference ~p updates in
          let r_fast, t_fast = run_drain ~delivery:Config.Fast ~p updates in
          (* both engines must agree on the final state *)
          assert (Replica.applied r_ref = Replica.applied r_fast);
          for w = 1 to p - 1 do
            let loc = "x:" ^ string_of_int w in
            assert (Replica.causal_read r_ref loc = Replica.causal_read r_fast loc)
          done;
          let rate t = float_of_int buffered /. Float.max t 1e-9 in
          let speedup = rate t_fast /. rate t_ref in
          drain_rows :=
            [
              string_of_int p;
              string_of_int buffered;
              Printf.sprintf "%.4f" t_ref;
              Printf.sprintf "%.4f" t_fast;
              Printf.sprintf "%.3e" (rate t_ref);
              Printf.sprintf "%.3e" (rate t_fast);
              T.fmt_ratio speedup;
            ]
            :: !drain_rows;
          drain_json :=
            Printf.sprintf
              "    {\"p\": %d, \"depth\": %d, \"buffered\": %d, \"ref_s\": %.6f, \
               \"fast_s\": %.6f, \"ref_updates_per_s\": %.1f, \"fast_updates_per_s\": \
               %.1f, \"speedup\": %.2f}"
              p depth buffered t_ref t_fast (rate t_ref) (rate t_fast) speedup
            :: !drain_json)
        ps)
    drain_targets;
  T.print
    ~title:"EXP-DELIVERY/drain: buffered-update drain, per-writer queues vs rescan"
    ~headers:
      [ "p"; "buffered"; "ref (s)"; "fast (s)"; "ref upd/s"; "fast upd/s"; "speedup" ]
    (List.rev !drain_rows);
  let procs = 4 in
  let writes = if !quick then 50 else 200 in
  let batch_rows = ref [] and batch_json = ref [] in
  List.iter
    (fun batch_max ->
      let time, messages, bytes = run_batching ~procs ~batch_max ~writes in
      batch_rows :=
        [
          string_of_int batch_max;
          T.fmt_float time;
          string_of_int messages;
          string_of_int bytes;
        ]
        :: !batch_rows;
      batch_json :=
        Printf.sprintf
          "    {\"batch_max\": %d, \"sim_time\": %.3f, \"messages\": %d, \"bytes\": \
           %d}"
          batch_max time messages bytes
        :: !batch_json)
    [ 1; 8; 32 ];
  T.print
    ~title:
      (Printf.sprintf
         "EXP-DELIVERY/batching: %d procs x %d writes, delta-encoded update batches"
         procs writes)
    ~headers:[ "batch_max"; "sim time"; "msgs"; "bytes" ]
    (List.rev !batch_rows);
  bench_core_add "EXP-DELIVERY"
    ~params:
      (Printf.sprintf
         "{\"drain_targets\": [%s], \"ps\": [%s], \"batch_procs\": %d, \
          \"batch_writes\": %d}"
         (String.concat ", " (List.map string_of_int drain_targets))
         (String.concat ", " (List.map string_of_int ps))
         procs writes)
    (Printf.sprintf "    \"drain\": [\n%s\n    ],\n    \"batching\": [\n%s\n    ]"
       (String.concat ",\n" (List.rev !drain_json))
       (String.concat ",\n" (List.rev !batch_json)));
  print_endline
    "per-writer FIFO queues make deliverability a single head check (channels are\n\
     FIFO, so only the head can apply); the seed rescans its whole pending list on\n\
     every receive. Batching coalesces consecutive same-writer updates between sync\n\
     points, delta-encoding the dependency clocks. Raw numbers: BENCH_CORE.json."

(* ------------------------------------------------------------------ *)
(* EXP-ONLINE: record-then-check vs the streaming online checker       *)
(* ------------------------------------------------------------------ *)

module Online = Mc_consistency.Online

(* a phase-disciplined workload: per-round writes, a barrier, PRAM reads
   of the neighbours' fresh values, one lock-protected accumulator
   increment and a closing barrier; every write value is unique so the
   recorded reads-from relation is exact *)
let online_workload ~procs ~rounds (api : Api.t) =
  let me = api.Api.proc_id in
  for round = 1 to rounds do
    for k = 0 to 3 do
      api.Api.write
        (Printf.sprintf "o:%d:%d" me k)
        ((me * 10_000_000) + (round * 10) + k)
    done;
    api.Api.barrier ();
    for j = 0 to procs - 1 do
      ignore (api.Api.read ~label:Op.PRAM (Printf.sprintf "o:%d:%d" j (round mod 4)))
    done;
    api.Api.write_lock "acc";
    let v = api.Api.read "sum" in
    api.Api.write "sum" (v + 1);
    api.Api.write_unlock "acc";
    api.Api.barrier ()
  done

let exp_online () =
  let procs = 4 in
  (* ops per round: per proc 4 writes + [procs] reads + lock/read/write/
     unlock + 2 barriers *)
  let per_round = procs * (4 + procs + 4 + 2) in
  let sizes =
    if !quick then [ 1_000; 4_000 ] else [ 2_000; 5_000; 10_500; 21_000 ]
  in
  (* the offline checker closes the causality relation transitively and
     retains the whole history; cap the sizes it runs at *)
  let offline_cap = if !quick then 4_000 else 11_000 in
  let rows = ref [] and json = ref [] in
  List.iter
    (fun total ->
      let rounds = max 1 (total / per_round) in
      let execute ~record ~check_online =
        let engine = Engine.create () in
        let cfg = { (Config.default ~procs) with record; check_online } in
        let rt = Runtime.create engine cfg in
        for i = 0 to procs - 1 do
          Api.spawn rt i (online_workload ~procs ~rounds)
        done;
        let t0 = Sys.time () in
        ignore (Runtime.run rt);
        (rt, Sys.time () -. t0)
      in
      (* plain execution: the simulation cost with no checking at all *)
      let _, t_plain = execute ~record:false ~check_online:false in
      (* offline path: record, then materialize and check post-hoc *)
      let rt_rec, _ = execute ~record:true ~check_online:false in
      let h = Runtime.history rt_rec in
      let n = Mc_history.History.length h in
      let offline =
        if n <= offline_cap then begin
          let t0 = Sys.time () in
          let fs = Mc_consistency.Mixed.failures h in
          Some (List.length fs, Sys.time () -. t0)
        end
        else None
      in
      (* online path: streaming-only checker riding the execution; its
         cost is the increment over the plain run, its memory the engine
         window plus the live writer summaries (stability sweeps reclaim
         superseded values during the run) *)
      let rt_on, t_checked = execute ~record:false ~check_online:true in
      let c = Option.get (Runtime.online_checker rt_on) in
      let live = Online.stats c in
      let t_on = Float.max (t_checked -. t_plain) 1e-4 in
      let on_fail = live.Online.failure_count in
      let rate t = float_of_int n /. Float.max t 1e-9 in
      let agree =
        match offline with
        | Some (off_fail, _) -> if off_fail = on_fail then "yes" else "NO"
        | None -> "-"
      in
      rows :=
        [
          string_of_int n;
          (match offline with
          | Some (_, t) -> Printf.sprintf "%.3f" t
          | None -> "(skipped)");
          Printf.sprintf "%.3f" t_on;
          (match offline with
          | Some (_, t) -> Printf.sprintf "%.3e" (rate t)
          | None -> "-");
          Printf.sprintf "%.3e" (rate t_on);
          (match offline with
          | Some (_, t) -> T.fmt_ratio (t /. t_on)
          | None -> "-");
          string_of_int n;
          string_of_int live.Online.max_resident;
          string_of_int live.Online.live_summaries;
          agree;
        ]
        :: !rows;
      json :=
        Printf.sprintf
          "      {\"ops\": %d, \"rounds\": %d, \"offline_s\": %s, \"online_s\": \
           %.6f, \"offline_ops_per_s\": %s, \"online_ops_per_s\": %.1f, \
           \"speedup\": %s, \"offline_resident_ops\": %d, \
           \"online_window_high_water\": %d, \"online_live_summaries\": %d, \
           \"failures_agree\": %b}"
          n rounds
          (match offline with
          | Some (_, t) -> Printf.sprintf "%.6f" t
          | None -> "null")
          t_on
          (match offline with
          | Some (_, t) -> Printf.sprintf "%.1f" (rate t)
          | None -> "null")
          (rate t_on)
          (match offline with
          | Some (_, t) -> Printf.sprintf "%.2f" (t /. t_on)
          | None -> "null")
          n live.Online.max_resident live.Online.live_summaries
          (agree <> "NO")
        :: !json)
    sizes;
  T.print
    ~title:
      "EXP-ONLINE: offline record-then-check vs streaming checker (4 procs)"
    ~headers:
      [
        "ops"; "offline (s)"; "online (s)"; "off ops/s"; "on ops/s"; "speedup";
        "off resident"; "window hw"; "live summaries"; "agree";
      ]
    (List.rev !rows);
  bench_core_add "EXP-ONLINE"
    ~params:
      (Printf.sprintf
         "{\"procs\": %d, \"sizes\": [%s], \"offline_cap\": %d, \"seed\": %d}"
         procs
         (String.concat ", " (List.map string_of_int sizes))
         offline_cap bench_seed)
    (Printf.sprintf "    \"runs\": [\n%s\n    ]"
       (String.concat ",\n" (List.rev !json)));
  print_endline
    "the offline path closes the causality relation transitively and keeps all n\n\
     recorded operations resident; the streaming checker validates each read at\n\
     response time from incremental chain clocks and retires operations once their\n\
     causal past is covered, so its window stays bounded while throughput scales."

(* ------------------------------------------------------------------ *)
(* Bechamel micro-benchmarks                                           *)
(* ------------------------------------------------------------------ *)

let bechamel_suite () =
  let open Bechamel in
  let open Toolkit in
  let problem = Solver.Problem.generate ~seed:42 ~n:8 in
  let em_params = { Em.rows = 8; cols = 4; steps = 3; seed = 5 } in
  let matrix = Sparse.generate ~seed:11 ~n:12 ~density:0.25 in
  let stage name f = Test.make ~name (Staged.stage f) in
  let tests =
    Test.make_grouped ~name:"experiments"
      [
        stage "exp_f2f3/solver-barrier" (fun () ->
            let res, _ =
              run_mixed ~procs:3 ~timestamped:false (fun _rt spawn ->
                  Solver.launch ~spawn ~procs:3 ~variant:Solver.Barrier_pram problem)
            in
            ignore (Option.get !res));
        stage "exp_f2f3/solver-handshake" (fun () ->
            let res, _ =
              run_mixed ~procs:3 (fun _rt spawn ->
                  Solver.launch ~spawn ~procs:3 ~variant:Solver.Handshake_causal
                    problem)
            in
            ignore (Option.get !res));
        stage "exp_f4/em-field" (fun () ->
            let res, _ =
              run_mixed ~procs:2 ~timestamped:false (fun _rt spawn ->
                  Em.launch ~spawn ~procs:2 em_params)
            in
            ignore (Option.get !res));
        stage "exp_f5/cholesky-locks" (fun () ->
            let res, _ =
              run_mixed ~procs:3 (fun _rt spawn ->
                  Cholesky.launch ~spawn ~procs:3 ~variant:Cholesky.Lock_based matrix)
            in
            ignore (Option.get !res));
        stage "exp_f5/cholesky-counters" (fun () ->
            let res, _ =
              run_mixed ~procs:3 (fun _rt spawn ->
                  Cholesky.launch ~spawn ~procs:3 ~variant:Cholesky.Counter_based
                    matrix)
            in
            ignore (Option.get !res));
        stage "exp_spectrum/mixed-pram" (fun () ->
            let _, s =
              run_mixed ~procs:3 (fun rt _ ->
                  for i = 0 to 2 do
                    Api.spawn rt i (spectrum_workload ~label:Op.PRAM)
                  done)
            in
            ignore s);
        stage "exp_prop/lazy" (fun () ->
            let _, s =
              run_mixed ~procs:3 ~propagation:Config.Lazy (fun rt _ ->
                  for i = 0 to 2 do
                    Api.spawn rt i
                      (prop_workload ~lock:(lock_homed_at ~procs:3 ~home:0)
                         ~writes:4 ~reads:2)
                  done)
            in
            ignore s);
        stage "exp_barrier/episodes" (fun () ->
            let _, s =
              run_mixed ~procs:4 ~timestamped:false (fun rt _ ->
                  for i = 0 to 3 do
                    Api.spawn rt i (fun api ->
                        for _ = 1 to 4 do
                          api.Api.write ("b:" ^ string_of_int api.Api.proc_id) 1;
                          api.Api.barrier ()
                        done)
                  done)
            in
            ignore s);
        stage "exp_delivery/drain-fast"
          (let updates = drain_workload ~p:4 ~depth:100 in
           fun () -> ignore (run_drain ~delivery:Config.Fast ~p:4 updates));
        stage "exp_delivery/drain-reference"
          (let updates = drain_workload ~p:4 ~depth:100 in
           fun () -> ignore (run_drain ~delivery:Config.Reference ~p:4 updates));
        stage "exp_theory/checkers" (fun () ->
            let h =
              Mc_history.Dsl.make ~procs:3
                [
                  [ Mc_history.Dsl.w "x" 1 ];
                  [ Mc_history.Dsl.rp "x" 1; Mc_history.Dsl.w "y" 2 ];
                  [ Mc_history.Dsl.rp "y" 2; Mc_history.Dsl.rp "x" 0 ];
                ]
            in
            ignore (Mc_consistency.Mixed.is_mixed_consistent h));
      ]
  in
  let ols = Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:Measure.[| run |] in
  let instances = Instance.[ monotonic_clock ] in
  let cfg = Benchmark.cfg ~limit:200 ~quota:(Time.second 0.5) ~stabilize:false () in
  let raw_results = Benchmark.all cfg instances tests in
  let results =
    List.map (fun instance -> Analyze.all ols instance raw_results) instances
  in
  let results = Analyze.merge ols instances results in
  print_endline "\n== Bechamel micro-benchmarks (wall-clock per experiment run) ==";
  let window = { Bechamel_notty.w = 100; h = 1 } in
  Bechamel_notty.Multiple.image_of_ols_results ~rect:window ~predictor:Measure.run
    results
  |> Notty_unix.output_image;
  print_newline ()


(* ------------------------------------------------------------------ *)
(* EXP-GROUP: the Section-3.2 consistency spectrum on the solver       *)
(* ------------------------------------------------------------------ *)

let exp_group () =
  let procs = 4 in
  let problem = Solver.Problem.generate ~seed:42 ~n:8 in
  let max_iters = 4 in
  let expected =
    Solver.reference ~variant:Solver.Handshake_causal ~max_iters problem
  in
  let rows = ref [] in
  let run name variant ?await_label ?(groups = []) () =
    let res, stats =
      run_mixed ~procs ?await_label ~groups ~latency:(adverse_latency procs)
        (fun _rt spawn -> Solver.launch ~spawn ~procs ~variant ~max_iters problem)
    in
    let r = Option.get !res in
    rows :=
      [
        name;
        (if r.Solver.x = expected.Solver.x then "yes" else "no (stale reads)");
        T.fmt_float stats.time;
        string_of_int stats.messages;
      ]
      :: !rows
  in
  run "PRAM reads" Solver.Handshake_pram ~await_label:Op.PRAM ();
  run "group {coordinator, self} reads" Solver.Handshake_group
    ~groups:(Solver.solver_groups ~procs) ();
  run "causal reads" Solver.Handshake_causal ();
  T.print
    ~title:
      "EXP-GROUP: handshaking solver across the Sec. 3.2 spectrum (adverse latency)"
    ~headers:[ "read label"; "exact result"; "sim time"; "msgs" ]
    (List.rev !rows);
  print_endline
    "paper (Sec. 3.2): \"the definition can be easily generalized to maintain\n\
     causality across an arbitrary group of processes\"; the smallest useful group -\n\
     each worker with the coordinator - already restores correctness, because all\n\
     handshake causality flows through the coordinator."

(* ------------------------------------------------------------------ *)
(* EXP-PRODCON: awaits vs locks for producer/consumer (Sec. 1)         *)
(* ------------------------------------------------------------------ *)

let exp_prodcon () =
  let cases =
    if !quick then [ (3, 40, 4) ] else [ (2, 60, 4); (4, 60, 4); (4, 60, 1) ]
  in
  let rows = ref [] in
  List.iter
    (fun (procs, items, slots) ->
      let params = { Mc_apps.Pipeline.items; slots; work = 5.0 } in
      let expected = Mc_apps.Pipeline.reference ~procs params in
      List.iter
        (fun impl ->
          let res, s =
            run_mixed ~procs (fun _rt spawn ->
                Mc_apps.Pipeline.launch ~spawn ~procs ~impl params)
          in
          let r = Option.get !res in
          rows :=
            [
              Printf.sprintf "%d stages, %d items, window %d" procs items slots;
              Mc_apps.Pipeline.impl_to_string impl;
              (if r.Mc_apps.Pipeline.checksum = expected.Mc_apps.Pipeline.checksum
               then "yes"
               else "NO");
              T.fmt_float s.time;
              string_of_int s.messages;
              T.fmt_float
                (float_of_int items /. s.time *. 1000.);
            ]
            :: !rows)
        [ Mc_apps.Pipeline.Await_based; Mc_apps.Pipeline.Lock_based ])
    cases;
  T.print
    ~title:"EXP-PRODCON: pipeline streams, awaits vs locks+polling (Sec. 1)"
    ~headers:[ "pipeline"; "implementation"; "exact"; "sim time"; "msgs"; "items/ms" ]
    (List.rev !rows);
  print_endline
    "paper claim (Sec. 1): \"await operations are useful for producer/consumer type\n\
     of interactions\" - without them the bounded buffer degenerates to lock-guarded\n\
     polling, paying a lock-manager round trip per emptiness check."

(* ------------------------------------------------------------------ *)
(* EXP-MULTICAST: subscriber routing + count-vector barriers (Sec. 6)  *)
(* ------------------------------------------------------------------ *)

let exp_multicast () =
  let sweeps = if !quick then [ 4 ] else [ 2; 4; 8 ] in
  let rows = ref [] in
  List.iter
    (fun procs ->
      let params =
        { Em.rows = 4 * procs; cols = 8; steps = (if !quick then 4 else 8); seed = 5 }
      in
      let expected = Em.reference ~procs params in
      let run multicast =
        let res, s =
          run_mixed ~procs ~timestamped:false
            ?multicast:
              (if multicast then Some (Em.subscriptions ~procs) else None)
            (fun _rt spawn -> Em.launch ~spawn ~procs params)
        in
        ((Option.get !res : Em.result), s)
      in
      let r_b, s_b = run false in
      let r_m, s_m = run true in
      let row name (r : Em.result) s =
        [
          string_of_int procs;
          name;
          (if r.Em.checksum = expected.Em.checksum then "yes" else "NO");
          T.fmt_float s.time;
          string_of_int s.messages;
          string_of_int s.bytes;
        ]
      in
      rows := row "broadcast updates" r_b s_b :: !rows;
      rows := row "subscriber multicast" r_m s_m :: !rows;
      rows :=
        [ ""; "-> message reduction"; "";
          T.fmt_ratio (s_b.time /. s_m.time);
          T.fmt_ratio (float_of_int s_b.messages /. float_of_int s_m.messages) ]
        :: !rows)
    sweeps;
  T.print
    ~title:
      "EXP-MULTICAST: subscriber update routing + count-vector barriers (Sec. 6)"
    ~headers:[ "procs"; "routing"; "exact"; "sim time"; "msgs"; "bytes" ]
    (List.rev !rows);
  print_endline
    "paper (Sec. 6): \"the overhead of broadcasting messages for each update ... may\n\
     be avoided by making optimizations based on the patterns of accesses to shared\n\
     variables\"; with subscriber routing the barrier switches to the paper's\n\
     update-count vectors, since vector timestamps no longer apply."

(* ------------------------------------------------------------------ *)
(* EXP-ASYNC: asynchronous relaxation under PRAM (Sec. 7)              *)
(* ------------------------------------------------------------------ *)

let exp_async () =
  let procs = 4 in
  let sizes = if !quick then [ 12 ] else [ 12; 24 ] in
  let rows = ref [] in
  List.iter
    (fun n ->
      let problem = Solver.Problem.generate ~seed:42 ~n in
      let truth = Mc_apps.Async_solver.solution problem in
      (* synchronous Fig. 2 baseline *)
      let res, s_sync =
        run_mixed ~procs ~timestamped:false (fun _rt spawn ->
            Solver.launch ~spawn ~procs ~variant:Solver.Barrier_pram problem)
      in
      let sync = Option.get !res in
      rows :=
        [
          string_of_int n;
          "synchronous (Fig. 2, barriers)";
          string_of_int sync.Solver.iterations;
          T.fmt_float
            (Mc_apps.Fixed.to_float (Solver.residual problem sync.Solver.x));
          T.fmt_float s_sync.time;
          string_of_int s_sync.messages;
        ]
        :: !rows;
      (* asynchronous chaotic relaxation, PRAM reads, no sync ops at all *)
      let res, s_async =
        run_mixed ~procs ~timestamped:false (fun _rt spawn ->
            Mc_apps.Async_solver.launch ~spawn ~procs problem)
      in
      let a = Option.get !res in
      let maxdiff =
        Array.fold_left max 0
          (Array.mapi (fun i v -> abs (v - truth.(i))) a.Mc_apps.Async_solver.x)
      in
      rows :=
        [
          string_of_int n;
          "async (chaotic, PRAM, no sync)";
          Printf.sprintf "%d sweeps"
            (Array.fold_left max 0 a.Mc_apps.Async_solver.sweeps);
          T.fmt_float (Mc_apps.Fixed.to_float a.Mc_apps.Async_solver.residual);
          T.fmt_float s_async.time;
          string_of_int s_async.messages;
        ]
        :: !rows;
      rows :=
        [ ""; Printf.sprintf "-> async converged: %b, max diff to solution %.4f"
            a.Mc_apps.Async_solver.converged (Mc_apps.Fixed.to_float maxdiff) ]
        :: !rows)
    sizes;
  T.print
    ~title:"EXP-ASYNC: asynchronous relaxation converges even with PRAM (Sec. 7)"
    ~headers:[ "n"; "algorithm"; "iterations"; "residual"; "sim time"; "msgs" ]
    (List.rev !rows);
  print_endline
    "paper claim (Sec. 7): equivalence to SC is not always necessary - asynchronous\n\
     relaxation converges on plain PRAM with no synchronization operations at all."

(* ------------------------------------------------------------------ *)
(* EXP-LINT: race-detector throughput vs the pairwise Theorem-1 scan   *)
(* ------------------------------------------------------------------ *)

(* a disciplined application-shaped workload: lock-protected shared
   counters, private per-process data, barrier phases, plus one
   deliberate unprotected conflict so both analyses report a race *)
let lint_workload ~procs ~ops_per_proc =
  let r = Mc_history.Recorder.create ~procs () in
  let next = ref 0 in
  let fresh () =
    incr next;
    !next
  in
  for k = 0 to ops_per_proc - 1 do
    for p = 0 to procs - 1 do
      match k mod 8 with
      | 0 ->
        let lock = "m:" ^ string_of_int (k mod 4)
        and loc = "s:" ^ string_of_int (k mod 4) in
        ignore
          (Mc_history.Recorder.record r ~proc:p
             ~sync_seq:(Mc_history.Recorder.grant_seq r lock)
             (Op.Write_lock lock));
        ignore (Mc_history.Recorder.record r ~proc:p (Op.Write { loc; value = fresh () }));
        ignore
          (Mc_history.Recorder.record r ~proc:p
             ~sync_seq:(Mc_history.Recorder.grant_seq r lock)
             (Op.Write_unlock lock))
      | 5 when k = 5 && p <= 1 ->
        (* the only unprotected conflicting accesses in the history *)
        ignore
          (Mc_history.Recorder.record r ~proc:p
             (Op.Write { loc = "racy"; value = fresh () }))
      | 7 when k mod 16 = 15 ->
        ignore (Mc_history.Recorder.record r ~proc:p (Op.Barrier (k / 16)))
      | m when m < 4 ->
        ignore
          (Mc_history.Recorder.record r ~proc:p
             (Op.Write
                {
                  loc = Printf.sprintf "p:%d:%d" p (k mod 7);
                  value = fresh ();
                }))
      | _ ->
        ignore
          (Mc_history.Recorder.record r ~proc:p
             (Op.Read
                {
                  loc = Printf.sprintf "p:%d:%d" p (k mod 7);
                  label = Op.PRAM;
                  value = 0;
                }))
    done
  done;
  Mc_history.Recorder.history r

let exp_lint () =
  let procs = 4 in
  (* the pairwise scan needs the O(n^3/word) transitive closure of the
     causality relation plus an O(n^2) pair enumeration; cap the sizes it
     runs at so the experiment terminates promptly *)
  let sizes, pairwise_cap =
    if !quick then ([ 400; 1_000; 2_000; 10_000 ], 2_000)
    else ([ 1_000; 2_500; 5_000; 10_000; 20_000; 40_000 ], 13_000)
  in
  let rows = ref [] in
  List.iter
    (fun total_ops ->
      let h = lint_workload ~procs ~ops_per_proc:(total_ops / procs) in
      let n = Mc_history.History.length h in
      let time f =
        let t0 = Sys.time () in
        let x = f () in
        (x, Sys.time () -. t0)
      in
      let detect, t_detect = time (fun () -> Mc_analysis.Race.detect h) in
      let fast_pairs = Mc_analysis.Race.race_pairs detect in
      let pairwise, t_pairwise =
        if n <= pairwise_cap then
          let report, t =
            time (fun () -> Mc_consistency.Commute.theorem1_report h)
          in
          (Some report.Mc_consistency.Commute.non_commuting_pairs, t)
        else (None, nan)
      in
      let agree =
        match pairwise with
        | Some pairs -> if pairs = fast_pairs then "yes" else "NO"
        | None -> "-"
      in
      rows :=
        [
          string_of_int n;
          string_of_int (List.length fast_pairs);
          (match pairwise with
          | Some _ -> Printf.sprintf "%.3f" t_pairwise
          | None -> "(skipped)");
          Printf.sprintf "%.3f" t_detect;
          (match pairwise with
          | Some _ -> T.fmt_ratio (t_pairwise /. t_detect)
          | None -> "-");
          agree;
        ]
        :: !rows)
    sizes;
  T.print
    ~title:
      "EXP-LINT: race detection, pairwise Theorem-1 scan vs lockset+HB clocks"
    ~headers:[ "ops"; "races"; "pairwise (s)"; "detector (s)"; "speedup"; "agree" ]
    (List.rev !rows);
  print_endline
    "the pairwise scan closes the causality relation transitively (cubic in history\n\
     length) before checking every operation pair; the detector derives\n\
     happens-before chain clocks from the covering relations and screens\n\
     lock-protected locations with Eraser candidate locksets, so it keeps scaling\n\
     past the sizes where the closure becomes intractable."

(* ------------------------------------------------------------------ *)
(* EXP-OBS: overhead of the observability layer                        *)
(* ------------------------------------------------------------------ *)

module Metrics = Mc_obs.Metrics
module Obs_trace = Mc_obs.Trace

(* Wall-clock of the EXP-DELIVERY batching workload under three
   instrumentation levels. [observe = false] is the acceptance gate: the
   base op counters and wait histograms (the [wait_summaries] API) run
   unconditionally, so the off column must stay within noise of the PR 4
   runtime. Observation must not perturb virtual time, so the three sim
   times are asserted equal. *)
let run_observed ~procs ~writes ~observe ~tracer () =
  let engine = Engine.create () in
  let cfg = { (Config.default ~procs) with batch_max = 8; observe; tracer } in
  let rt = Runtime.create engine cfg in
  for i = 0 to procs - 1 do
    Api.spawn rt i (batch_workload ~procs ~writes)
  done;
  let t0 = Sys.time () in
  let time = Runtime.run rt in
  let dt = Sys.time () -. t0 in
  (rt, time, dt)

let exp_obs () =
  let procs = 4 in
  let writes = if !quick then 50 else 200 in
  let reps = if !quick then 3 else 5 in
  (* min-of-reps: each rep builds a fresh runtime (and tracer, when
     traced); keep the last runtime for metric/tracer inspection *)
  let min_of f =
    let best = ref infinity and last = ref None in
    for _ = 1 to reps do
      let rt, time, dt = f () in
      if dt < !best then best := dt;
      last := Some (rt, time)
    done;
    let rt, time = Option.get !last in
    (rt, time, !best)
  in
  (* one untimed warmup so the off baseline doesn't absorb first-run
     allocation/page-in cost *)
  ignore (run_observed ~procs ~writes ~observe:false ~tracer:None ());
  (* the PR 4 reference: the exact EXP-DELIVERY batching entry point
     (Config.default, no observe/tracer fields touched) — the acceptance
     gate is observe=off within 5% of this *)
  let t_ref =
    let best = ref infinity in
    for _ = 1 to reps do
      let t0 = Sys.time () in
      ignore (run_batching ~procs ~batch_max:8 ~writes);
      let dt = Sys.time () -. t0 in
      if dt < !best then best := dt
    done;
    !best
  in
  let _, sim_off, t_off =
    min_of (run_observed ~procs ~writes ~observe:false ~tracer:None)
  in
  let rt_m, sim_m, t_m =
    min_of (run_observed ~procs ~writes ~observe:true ~tracer:None)
  in
  let rt_t, sim_t, t_t =
    min_of (fun () ->
        run_observed ~procs ~writes ~observe:true
          ~tracer:(Some (Obs_trace.create ~capacity:65536 ())) ())
  in
  assert (sim_off = sim_m && sim_m = sim_t);
  let overhead t = (t /. t_off) -. 1.0 in
  let pct t = Printf.sprintf "%+.1f%%" (100.0 *. overhead t) in
  let spans, events =
    match Runtime.tracer rt_t with
    | Some tr -> (Obs_trace.span_count tr, Obs_trace.event_count tr)
    | None -> (0, 0)
  in
  T.print
    ~title:
      (Printf.sprintf
         "EXP-OBS: observability overhead, %d procs x %d writes (batch_max 8, \
          min of %d)"
         procs writes reps)
    ~headers:[ "mode"; "wall (s)"; "sim time"; "overhead"; "series"; "spans" ]
    [
      [ "exp-delivery"; Printf.sprintf "%.4f" t_ref; T.fmt_float sim_off;
        pct t_ref; "-"; "-" ];
      [ "observe=off"; Printf.sprintf "%.4f" t_off; T.fmt_float sim_off;
        "baseline"; "-"; "-" ];
      [ "metrics"; Printf.sprintf "%.4f" t_m; T.fmt_float sim_m; pct t_m;
        string_of_int (Metrics.Registry.series_count (Runtime.metrics rt_m));
        "-" ];
      [ "metrics+trace"; Printf.sprintf "%.4f" t_t; T.fmt_float sim_t; pct t_t;
        string_of_int (Metrics.Registry.series_count (Runtime.metrics rt_t));
        string_of_int spans ];
    ];
  (* drain microbench: the raw delivery hot path with and without an
     attached registry — isolates the per-update cost of the delivery
     histogram, arrival stamping and the queue-depth gauge *)
  let p = 4 in
  let depth = if !quick then 500 else 2_000 in
  let updates = drain_workload ~p ~depth in
  let drain_rep attach =
    let best = ref infinity in
    for _ = 1 to reps do
      let engine = Engine.create () in
      let r = Replica.create engine ~id:0 ~n:p ~delivery:Config.Fast () in
      if attach then Replica.attach_metrics r (Metrics.Registry.create ());
      let t0 = Sys.time () in
      List.iter (Replica.receive r) updates;
      let dt = Sys.time () -. t0 in
      assert (Replica.pending_count r = 0);
      if dt < !best then best := dt
    done;
    !best
  in
  let d_bare = drain_rep false in
  let d_obs = drain_rep true in
  T.print
    ~title:
      (Printf.sprintf "EXP-OBS/drain: %d updates x %d writers, bare vs observed"
         depth (p - 1))
    ~headers:[ "mode"; "wall (s)"; "overhead" ]
    [
      [ "bare"; Printf.sprintf "%.4f" d_bare; "baseline" ];
      [ "observed"; Printf.sprintf "%.4f" d_obs;
        Printf.sprintf "%+.1f%%" (100.0 *. ((d_obs /. d_bare) -. 1.0)) ];
    ];
  bench_core_add "EXP-OBS"
    ~params:
      (Printf.sprintf
         "{\"procs\": %d, \"writes\": %d, \"reps\": %d, \"drain_depth\": %d}"
         procs writes reps depth)
    (Printf.sprintf
       "    \"runtime\": [\n\
       \      {\"mode\": \"exp_delivery_ref\", \"wall_s\": %.6f, \
        \"off_vs_ref\": %.4f},\n\
       \      {\"mode\": \"off\", \"wall_s\": %.6f, \"sim_time\": %.3f},\n\
       \      {\"mode\": \"metrics\", \"wall_s\": %.6f, \"sim_time\": %.3f, \
        \"overhead\": %.4f},\n\
       \      {\"mode\": \"metrics_trace\", \"wall_s\": %.6f, \"sim_time\": \
        %.3f, \"overhead\": %.4f, \"spans\": %d, \"events\": %d}\n\
       \    ],\n\
       \    \"drain\": {\"bare_s\": %.6f, \"observed_s\": %.6f, \"overhead\": \
        %.4f},\n\
       \    \"observability\": %s"
       t_ref
       ((t_off /. t_ref) -. 1.0)
       t_off sim_off t_m sim_m (overhead t_m) t_t sim_t (overhead t_t) spans
       events d_bare d_obs
       ((d_obs /. d_bare) -. 1.0)
       (Metrics.Registry.to_json (Runtime.metrics rt_m)));
  print_endline
    "the base op counters and wait histograms replace the seed's cached Stats\n\
     handles at identical cost, so observe=off tracks the PR 4 runtime; observe=on\n\
     adds delivery/staleness/engine/network series and the tracer appends one ring\n\
     slot per recorded op. Full metric dump: BENCH_CORE.json (observability key)."

(* ------------------------------------------------------------------ *)
(* EXP-STATIC: symbolic analysis cost vs dynamic lint (ISSUE 6)        *)
(* ------------------------------------------------------------------ *)

module Static = Mc_static.Static
module Cz = Mc_static.Concretize
module Models = Mc_apps.Static_models

(* The symbolic analyzer never unrolls loops: its verdict for the
   barrier solver holds at every iteration count [T], so its cost is
   flat while the dynamic pipeline (concretize, then lint the recorded
   history) grows linearly with the execution it must observe. *)
let exp_static () =
  let iters = if !quick then [ 4; 16 ] else [ 4; 16; 64 ] in
  let reps = if !quick then 10 else 25 in
  let prog = Models.solver_barrier in
  let time_static () =
    let best = ref infinity and last = ref None in
    for _ = 1 to reps do
      let t0 = Sys.time () in
      let r = Static.analyze prog in
      let dt = Sys.time () -. t0 in
      if dt < !best then best := dt;
      last := Some r
    done;
    (Option.get !last, !best)
  in
  let rows = ref [] and json = ref [] in
  List.iter
    (fun t_iters ->
      let srep, t_static = time_static () in
      let static_races = List.length srep.Static.srace.Mc_static.Srace.races in
      let run = Cz.run ~params:[ ("T", t_iters) ] prog in
      let h = run.Cz.history in
      let n = Mc_history.History.length h in
      let t0 = Sys.time () in
      let drep = Mc_analysis.Analysis.analyze h in
      let t_dyn = Sys.time () -. t0 in
      let dyn_races = List.length drep.Mc_analysis.Analysis.races.Mc_analysis.Race.races in
      rows :=
        [
          string_of_int t_iters;
          string_of_int n;
          Printf.sprintf "%.5f" t_static;
          Printf.sprintf "%.5f" t_dyn;
          T.fmt_ratio (t_dyn /. Float.max t_static 1e-9);
          Printf.sprintf "%d / %d" static_races dyn_races;
          Mc_static.Classify.verdict_to_string srep.Static.verdict;
        ]
        :: !rows;
      json :=
        Printf.sprintf
          "      {\"iters\": %d, \"ops\": %d, \"static_s\": %.6f, \"lint_s\": \
           %.6f, \"static_races\": %d, \"dynamic_races\": %d, \"verdict\": %S}"
          t_iters n t_static t_dyn static_races dyn_races
          (match srep.Static.verdict with
          | Mc_static.Classify.Corollary2 -> "corollary2"
          | Mc_static.Classify.Corollary1 -> "corollary1"
          | Mc_static.Classify.Theorem1 -> "theorem1"
          | Mc_static.Classify.Unproved _ -> "unproved")
        :: !json)
    iters;
  T.print
    ~title:
      "EXP-STATIC: symbolic analyzer (flat in T) vs dynamic lint of the \
       concretized run"
    ~headers:
      [ "T"; "dyn ops"; "static (s)"; "lint (s)"; "lint/static";
        "races s/d"; "verdict" ]
    (List.rev !rows);
  (* verdicts and analysis cost for every app model at default params *)
  let apps =
    List.map
      (fun p ->
        let t0 = Sys.time () in
        let r = Static.analyze p in
        let dt = Sys.time () -. t0 in
        Printf.sprintf
          "      {\"program\": %S, \"verdict\": %S, \"analyze_s\": %.6f, \
           \"errors\": %d}"
          r.Static.program
          (match r.Static.verdict with
          | Mc_static.Classify.Corollary2 -> "corollary2"
          | Mc_static.Classify.Corollary1 -> "corollary1"
          | Mc_static.Classify.Theorem1 -> "theorem1"
          | Mc_static.Classify.Unproved _ -> "unproved")
          dt
          (Static.count Mc_analysis.Diag.Error r))
      (Models.all ())
  in
  bench_core_add "EXP-STATIC"
    ~params:
      (Printf.sprintf
         "{\"program\": \"solver-barrier\", \"iters\": [%s], \"reps\": %d, \
          \"seed\": %d}"
         (String.concat ", " (List.map string_of_int iters))
         reps bench_seed)
    (Printf.sprintf
       "    \"runs\": [\n%s\n    ],\n    \"apps\": [\n%s\n    ]"
       (String.concat ",\n" (List.rev !json))
       (String.concat ",\n" apps));
  print_endline
    "the symbolic analyzer reasons over loop binders, so one analysis covers every\n\
     iteration count and process count at once: its cost stays flat in T while the\n\
     dynamic pipeline must execute and lint a history that grows with T. Both\n\
     agree on race counts at every concretization (the containment property)."

(* ------------------------------------------------------------------ *)
(* EXP-LATTICE: one workload checked across the model ladder (ISSUE 7) *)
(* ------------------------------------------------------------------ *)

module Lattice = Mc_consistency.Lattice

(* one phase-disciplined execution, checked at every point of the
   lattice ladder. Verdict monotonicity shows directly: failure sets
   grow with model strength. Cost splits into a cold pass (builds and
   memoizes the per-reader relations on the history) and warm passes
   (re-verdicts against the memoized relations); streamable points are
   additionally replayed through the online engine. *)
let exp_lattice () =
  let procs = 4 in
  let rounds = if !quick then 8 else 40 in
  let reps = if !quick then 3 else 5 in
  let engine = Engine.create () in
  let cfg = { (Config.default ~procs) with record = true } in
  let rt = Runtime.create engine cfg in
  for i = 0 to procs - 1 do
    Api.spawn rt i (online_workload ~procs ~rounds)
  done;
  ignore (Runtime.run rt);
  let h = Runtime.history rt in
  let n = Mc_history.History.length h in
  let rows = ref [] and json = ref [] in
  List.iter
    (fun model ->
      let t0 = Sys.time () in
      let fs = Lattice.failures h model in
      let cold = Sys.time () -. t0 in
      let warm = ref infinity in
      for _ = 1 to reps do
        let t0 = Sys.time () in
        ignore (Lattice.failures h model);
        let dt = Sys.time () -. t0 in
        if dt < !warm then warm := dt
      done;
      let streamable = Online.supports model in
      let online_s =
        if streamable then begin
          let best = ref infinity in
          for _ = 1 to reps do
            let t0 = Sys.time () in
            ignore (Online.check ~model h);
            let dt = Sys.time () -. t0 in
            if dt < !best then best := dt
          done;
          Some !best
        end
        else None
      in
      let name = Lattice.to_string model in
      let nf = List.length fs in
      rows :=
        [
          name;
          string_of_int nf;
          (if fs = [] then "yes" else "no");
          Printf.sprintf "%.4f" cold;
          Printf.sprintf "%.4f" !warm;
          Printf.sprintf "%.3e" (float_of_int n /. Float.max !warm 1e-9);
          (match online_s with
          | Some t -> Printf.sprintf "%.4f" t
          | None -> "(offline only)");
        ]
        :: !rows;
      json :=
        Printf.sprintf
          "      {\"model\": %S, \"failures\": %d, \"consistent\": %b, \
           \"cold_s\": %.6f, \"warm_s\": %.6f, \"streamable\": %b, \
           \"online_s\": %s}"
          name nf (fs = []) cold !warm streamable
          (match online_s with
          | Some t -> Printf.sprintf "%.6f" t
          | None -> "null")
        :: !json)
    Lattice.ladder;
  T.print
    ~title:
      (Printf.sprintf
         "EXP-LATTICE: one %d-op execution checked across the model ladder"
         n)
    ~headers:
      [
        "model"; "failures"; "consistent"; "cold (s)"; "warm (s)";
        "warm ops/s"; "online (s)";
      ]
    (List.rev !rows);
  bench_core_add "EXP-LATTICE"
    ~params:
      (Printf.sprintf
         "{\"procs\": %d, \"rounds\": %d, \"reps\": %d, \"ops\": %d, \
          \"seed\": %d}"
         procs rounds reps n bench_seed)
    (Printf.sprintf "    \"runs\": [\n%s\n    ]"
       (String.concat ",\n" (List.rev !json)));
  print_endline
    "models are values: one generic read-rule engine checks every ladder point.\n\
     failure sets grow monotonically with model strength (session ... linearizable);\n\
     the cold pass builds and memoizes each point's per-reader relations, warm\n\
     passes re-verdict against the memo, and streamable points also replay through\n\
     the online chain-clock engine."

(* ------------------------------------------------------------------ *)
(* EXP-SHARD: partial replication vs full replication                  *)
(* ------------------------------------------------------------------ *)

(* Symmetric neighbour-exchange workload over [objects] locations in
   [procs] range shards (shard i = process i's slice of the namespace).
   Per round each process writes [writes] slots of its own range,
   crosses a barrier, then reads the same slots from two foreign
   ranges — its subscribed neighbour i+1 (a local read under placement)
   and process i+2 (a non-subscribed shard, i.e. a read-miss fetch) —
   and crosses a second barrier. The full-replication side runs the
   identical program with broadcast update routing (multicast mode with
   an all-[None] subscriber map), so both sides use the count-vector
   barrier scheme and the comparison isolates placement. *)

(* The EXP-SHARD grid-point workload, shared with EXP-OBS-SHARD: every
   process writes its own object slice, barriers, then reads the slices
   of its two clockwise neighbours — the nearer one subscribed, the
   farther one served by demand fetches. *)

let shard_loc id = "s:" ^ string_of_int id
let shard_value ~procs ~proc ~slot = (slot * procs) + proc + 1
let shard_slot ~per ~proc ~slot = (proc * per) + (slot mod per)

let shard_expected ~procs ~writes ~rounds ~reads =
  let sum = ref 0 in
  for i = 0 to procs - 1 do
    for r = 0 to rounds - 1 do
      for k = 0 to reads - 1 do
        let slot = (r * writes) + k in
        sum := !sum + shard_value ~procs ~proc:((i + 1) mod procs) ~slot;
        sum := !sum + shard_value ~procs ~proc:((i + 2) mod procs) ~slot
      done
    done
  done;
  !sum

let shard_workload ~procs ~writes ~rounds ~reads ~per checksum spawn =
  for i = 0 to procs - 1 do
    spawn i (fun (api : Api.t) ->
        for r = 0 to rounds - 1 do
          for k = 0 to writes - 1 do
            let slot = (r * writes) + k in
            api.write
              (shard_loc (shard_slot ~per ~proc:i ~slot))
              (shard_value ~procs ~proc:i ~slot)
          done;
          api.barrier ();
          for k = 0 to reads - 1 do
            let slot = (r * writes) + k in
            let near =
              api.read ~label:Op.PRAM
                (shard_loc (shard_slot ~per ~proc:((i + 1) mod procs) ~slot))
            in
            let far =
              api.read ~label:Op.PRAM
                (shard_loc (shard_slot ~per ~proc:((i + 2) mod procs) ~slot))
            in
            checksum := !checksum + near + far
          done;
          api.barrier ()
        done)
  done

(* one shard per process; each node subscribes its own shard and its
   clockwise neighbour's, so near reads are local and far reads fetch *)
let shard_placement ~procs ~objects =
  let pl =
    Placement.create ~shards:procs ~policy:(Placement.Range { objects }) ()
  in
  for i = 0 to procs - 1 do
    Placement.subscribe pl ~node:i ~shard:i;
    Placement.subscribe pl ~node:i ~shard:((i + 1) mod procs)
  done;
  pl

let exp_shard () =
  (* (procs, objects, writes per proc per round, rounds) *)
  let grid =
    if !quick then [ (4, 400, 2, 2); (8, 800, 2, 2) ]
    else
      [
        (8, 800, 2, 2);
        (40, 4_000, 2, 2);
        (200, 20_000, 2, 2);
        (1_000, 100_000, 2, 1);
      ]
  in
  let json = ref [] in
  let rows = ref [] in
  List.iter
    (fun (procs, objects, writes, rounds) ->
      let reads = writes in
      let per = (objects + procs - 1) / procs in
      let expected = shard_expected ~procs ~writes ~rounds ~reads in
      let workload checksum spawn =
        shard_workload ~procs ~writes ~rounds ~reads ~per checksum spawn
      in
      let run sharded =
        let pl =
          if not sharded then None else Some (shard_placement ~procs ~objects)
        in
        let checksum = ref 0 in
        let rt_ref = ref None in
        let (), s =
          run_mixed ~procs ~timestamped:false
            ?multicast:(if sharded then None else Some (fun _loc -> None))
            ?placement:pl
            (fun rt spawn ->
              rt_ref := Some rt;
              workload checksum spawn)
        in
        let rt = Option.get !rt_ref in
        let upd_msgs =
          List.fold_left
            (fun acc (kind, n) ->
              match kind with
              | "update" | "shard_update" -> acc + n
              | _ -> acc)
            0
            (Network.messages_by_kind (Runtime.network rt))
        in
        let res_max = ref 0 and res_sum = ref 0 in
        for i = 0 to procs - 1 do
          let r = Runtime.resident_objects rt ~proc:i in
          res_max := max !res_max r;
          res_sum := !res_sum + r
        done;
        ( s,
          !checksum = expected,
          upd_msgs,
          !res_max,
          float_of_int !res_sum /. float_of_int procs,
          Runtime.fetch_count rt )
      in
      let updates = procs * writes * rounds in
      let s_f, ok_f, upd_f, rmax_f, rmean_f, fet_f = run false in
      let s_s, ok_s, upd_s, rmax_s, rmean_s, fet_s = run true in
      let row mode (s : stats) ok upd rmax fetches =
        [
          string_of_int procs;
          string_of_int objects;
          mode;
          (if ok then "yes" else "NO");
          T.fmt_float s.time;
          string_of_int s.messages;
          T.fmt_ratio (float_of_int upd /. float_of_int updates);
          string_of_int rmax;
          string_of_int fetches;
        ]
      in
      rows := row "full replication" s_f ok_f upd_f rmax_f fet_f :: !rows;
      rows := row "sharded placement" s_s ok_s upd_s rmax_s fet_s :: !rows;
      rows :=
        [ ""; ""; "-> reduction"; "";
          T.fmt_ratio (s_f.time /. s_s.time);
          T.fmt_ratio (float_of_int s_f.messages /. float_of_int s_s.messages);
          T.fmt_ratio (float_of_int upd_f /. float_of_int upd_s);
          T.fmt_ratio (float_of_int rmax_f /. float_of_int rmax_s);
          "" ]
        :: !rows;
      let add mode (s : stats) ok upd rmax rmean fetches =
        json :=
          Printf.sprintf
            "      {\"procs\": %d, \"objects\": %d, \"writes\": %d, \
             \"rounds\": %d, \"mode\": %S, \"exact\": %b, \"sim_time\": %.3f, \
             \"messages\": %d, \"update_messages\": %d, \"bytes\": %d, \
             \"msgs_per_update\": %.3f, \"resident_max\": %d, \
             \"resident_mean\": %.2f, \"fetches\": %d}"
            procs objects writes rounds mode ok s.time s.messages upd s.bytes
            (float_of_int upd /. float_of_int updates)
            rmax rmean fetches
          :: !json
      in
      add "full" s_f ok_f upd_f rmax_f rmean_f fet_f;
      add "sharded" s_s ok_s upd_s rmax_s rmean_s fet_s)
    grid;
  T.print
    ~title:
      "EXP-SHARD: sharded partial replication vs full replication (Sec. 6)"
    ~headers:
      [ "procs"; "objects"; "mode"; "exact"; "sim time"; "msgs";
        "upd msgs/update"; "resident max"; "fetches" ]
    (List.rev !rows);
  bench_core_add "EXP-SHARD"
    ~params:
      (Printf.sprintf "{\"points\": %d, \"reads_eq_writes\": true, \"seed\": %d}"
         (List.length grid) bench_seed)
    (Printf.sprintf "    \"runs\": [\n%s\n    ]"
       (String.concat ",\n" (List.rev !json)));
  print_endline
    "paper (Sec. 6): broadcast-per-update \"may be avoided by making optimizations\n\
     based on the patterns of accesses to shared variables\"; with range placement\n\
     each update reaches only its shard's subscriber tree and each replica holds\n\
     only its subscribed slice, so message volume per update and resident state\n\
     per replica drop superlinearly as processes x objects grow, while read\n\
     misses fall back to demand fetches from the shard home."

(* EXP-OBS-SHARD: cost of the shard-aware flight recorder at the
   EXP-SHARD top point. Four configurations of the same sharded run:
   the plain EXP-SHARD entry point (nothing passed), observe=off
   explicitly (the always-compiled option checks on the shard hot paths
   must stay in the noise — gate: < 2%), metrics, and metrics+trace. *)
let exp_obs_shard () =
  let procs, objects, writes, rounds =
    if !quick then (40, 4_000, 2, 2) else (1_000, 100_000, 2, 1)
  in
  let reps = if !quick then 2 else 3 in
  let reads = writes in
  let per = (objects + procs - 1) / procs in
  let expected = shard_expected ~procs ~writes ~rounds ~reads in
  let run ?observe ?tracer () =
    let checksum = ref 0 in
    let rt_ref = ref None in
    let t0 = Sys.time () in
    let (), s =
      run_mixed ~procs ~timestamped:false
        ~placement:(shard_placement ~procs ~objects)
        ?observe ?tracer
        (fun rt spawn ->
          rt_ref := Some rt;
          shard_workload ~procs ~writes ~rounds ~reads ~per checksum spawn)
    in
    let dt = Sys.time () -. t0 in
    assert (!checksum = expected);
    (Option.get !rt_ref, s.time, dt)
  in
  let min_of f =
    let best = ref infinity and last = ref None in
    for _ = 1 to reps do
      let rt, time, dt = f () in
      if dt < !best then best := dt;
      last := Some (rt, time)
    done;
    let rt, time = Option.get !last in
    (rt, time, !best)
  in
  ignore (run ());
  (* warmup *)
  let _, sim_ref, t_ref = min_of (fun () -> run ()) in
  let _, sim_off, t_off = min_of (fun () -> run ~observe:false ()) in
  let rt_m, sim_m, t_m = min_of (fun () -> run ~observe:true ()) in
  let rt_t, sim_t, t_t =
    min_of (fun () ->
        run ~observe:true ~tracer:(Obs_trace.create ~capacity:(1 lsl 18) ()) ())
  in
  assert (sim_ref = sim_off && sim_off = sim_m && sim_m = sim_t);
  let overhead t = (t /. t_off) -. 1.0 in
  let off_overhead = (t_off /. t_ref) -. 1.0 in
  let pct x = Printf.sprintf "%+.1f%%" (100.0 *. x) in
  let series rt = Metrics.Registry.series_count (Runtime.metrics rt) in
  let spans, events, dropped =
    match Runtime.tracer rt_t with
    | Some tr ->
      (Obs_trace.span_count tr, Obs_trace.event_count tr, Obs_trace.dropped tr)
    | None -> (0, 0, 0)
  in
  T.print
    ~title:
      (Printf.sprintf
         "EXP-OBS-SHARD: flight-recorder overhead, sharded %d procs x %d \
          objects (min of %d)"
         procs objects reps)
    ~headers:[ "mode"; "wall (s)"; "sim time"; "overhead"; "series"; "events" ]
    [
      [ "exp-shard ref"; Printf.sprintf "%.4f" t_ref; T.fmt_float sim_ref;
        pct ((t_ref /. t_off) -. 1.0); "-"; "-" ];
      [ "observe=off"; Printf.sprintf "%.4f" t_off; T.fmt_float sim_off;
        "baseline"; "-"; "-" ];
      [ "metrics"; Printf.sprintf "%.4f" t_m; T.fmt_float sim_m;
        pct (overhead t_m); string_of_int (series rt_m); "-" ];
      [ "metrics+trace"; Printf.sprintf "%.4f" t_t; T.fmt_float sim_t;
        pct (overhead t_t); string_of_int (series rt_t);
        string_of_int events ];
    ];
  Printf.printf
    "acceptance gate: observe=off vs exp-shard entry point %s (< 2%% required)\n"
    (pct off_overhead);
  bench_core_add "EXP-OBS-SHARD"
    ~params:
      (Printf.sprintf
         "{\"procs\": %d, \"objects\": %d, \"writes\": %d, \"rounds\": %d, \
          \"reps\": %d}"
         procs objects writes rounds reps)
    (Printf.sprintf
       "    \"runs\": [\n\
       \      {\"mode\": \"exp_shard_ref\", \"wall_s\": %.6f, \"sim_time\": \
        %.3f},\n\
       \      {\"mode\": \"off\", \"wall_s\": %.6f, \"sim_time\": %.3f, \
        \"off_overhead\": %.4f, \"gate_pass\": %b},\n\
       \      {\"mode\": \"metrics\", \"wall_s\": %.6f, \"sim_time\": %.3f, \
        \"overhead\": %.4f, \"series\": %d},\n\
       \      {\"mode\": \"metrics_trace\", \"wall_s\": %.6f, \"sim_time\": \
        %.3f, \"overhead\": %.4f, \"series\": %d, \"spans\": %d, \"events\": \
        %d, \"dropped\": %d}\n\
       \    ]"
       t_ref sim_ref t_off sim_off off_overhead
       (off_overhead < 0.02)
       t_m sim_m (overhead t_m) (series rt_m) t_t sim_t (overhead t_t)
       (series rt_t) spans events dropped);
  print_endline
    "the flight recorder hangs off the shard hot paths behind option checks that\n\
     compile to a load-and-branch when nothing is attached, so observe=off stays\n\
     at the EXP-SHARD entry-point cost; metrics mode adds per-shard labelled\n\
     series (cardinality O(procs + shards), memoized handles) and tracing adds\n\
     one ring append per hop, apply, fetch and op."

(* ------------------------------------------------------------------ *)
(* Entry point                                                         *)
(* ------------------------------------------------------------------ *)

let experiments =
  [
    ("f2f3", exp_f2f3);
    ("f3pram", exp_f3pram);
    ("f4", exp_f4);
    ("f5", exp_f5);
    ("spectrum", exp_spectrum);
    ("prop", exp_prop);
    ("barrier", exp_barrier);
    ("theory", exp_theory);
    ("group", exp_group);
    ("async", exp_async);
    ("multicast", exp_multicast);
    ("prodcon", exp_prodcon);
    ("lint", exp_lint);
    ("delivery", exp_delivery);
    ("online", exp_online);
    ("obs", exp_obs);
    ("static", exp_static);
    ("lattice", exp_lattice);
    ("shard", exp_shard);
    ("obs-shard", exp_obs_shard);
  ]

let () =
  let rec parse = function
    | [] -> ()
    | "--quick" :: rest ->
      quick := true;
      parse rest
    | "--bechamel" :: rest ->
      with_bechamel := true;
      parse rest
    | "--exp" :: name :: rest ->
      selected := name :: !selected;
      parse rest
    | arg :: _ ->
      Printf.eprintf
        "unknown argument %s\nusage: main.exe [--quick] [--bechamel] [--exp <%s>]...\n"
        arg
        (String.concat "|" (List.map fst experiments));
      exit 2
  in
  parse (List.tl (Array.to_list Sys.argv));
  List.iter (fun (name, f) -> if wants name then f ()) experiments;
  write_bench_core ();
  if !with_bechamel then bechamel_suite ()
