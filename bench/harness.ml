(* Shared experiment plumbing for bench/main.ml: CLI mode flags, the
   BENCH_CORE.json section writer, and the three memory runners every
   experiment goes through. Opened wholesale by the experiments
   ([open Harness]), so the module aliases below are part of the
   surface. *)

module Engine = Mc_sim.Engine
module Runtime = Mc_dsm.Runtime
module Config = Mc_dsm.Config
module Api = Mc_dsm.Api
module Network = Mc_net.Network
module Latency = Mc_net.Latency
module Op = Mc_history.Op
module Central = Mc_baselines.Sc_central
module Inval = Mc_baselines.Sc_invalidate
module Solver = Mc_apps.Linear_solver
module Em = Mc_apps.Em_field
module Sparse = Mc_apps.Sparse_spd
module Cholesky = Mc_apps.Cholesky
module Placement = Mc_placement.Placement
module T = Mc_util.Tablefmt
module Summary = Mc_util.Stats.Summary

let quick = ref false
let selected : string list ref = ref []
let with_bechamel = ref false

let wants name = !selected = [] || List.mem name !selected

(* ------------------------------------------------------------------ *)
(* BENCH_CORE.json writer                                              *)
(* ------------------------------------------------------------------ *)

(* Experiments append named sections here; the file is written once at
   exit so several experiments can share it. Every workload below is
   seeded with [bench_seed]. *)
let bench_core_sections : (string * string) list ref = ref []
let bench_seed = 42

let bench_core_add name ~params body =
  bench_core_sections :=
    (name, Printf.sprintf "{\n    \"params\": %s,\n%s\n  }" params body)
    :: !bench_core_sections

let write_bench_core () =
  if !bench_core_sections <> [] then begin
    let oc = open_out "BENCH_CORE.json" in
    Printf.fprintf oc
      "{\n\
      \  \"schema_version\": 2,\n\
      \  \"seed\": %d,\n\
      \  \"quick\": %b,\n\
      \  \"argv\": [%s],\n\
       %s\n\
       }\n"
      bench_seed !quick
      (String.concat ", "
         (List.map
            (fun a -> Printf.sprintf "%S" a)
            (List.tl (Array.to_list Sys.argv))))
      (String.concat ",\n"
         (List.rev_map
            (fun (name, body) -> Printf.sprintf "  %S: %s" name body)
            !bench_core_sections));
    close_out oc;
    print_endline "raw numbers: BENCH_CORE.json"
  end

(* ------------------------------------------------------------------ *)
(* Runners                                                             *)
(* ------------------------------------------------------------------ *)

type stats = {
  time : float;
  messages : int;
  bytes : int;
  waits : (string * Summary.t) list;
}

let run_mixed ?(procs = 4) ?(propagation = Config.Lazy) ?(timestamped = true)
    ?(await_label = Op.Causal) ?(groups = []) ?multicast ?placement ?latency
    ?(observe = false) ?tracer f =
  let engine = Engine.create () in
  let cfg =
    {
      (Config.default ~procs) with
      propagation;
      timestamped_updates = timestamped;
      await_label;
      groups;
      multicast;
      placement;
      observe;
      tracer;
    }
  in
  let rt = Runtime.create engine ?latency cfg in
  let out = f rt (Api.spawn rt) in
  let time = Runtime.run rt in
  let net = Runtime.network rt in
  ( out,
    {
      time;
      messages = Network.messages_sent net;
      bytes = Network.bytes_sent net;
      waits = Runtime.wait_summaries rt;
    } )

let run_central ?(procs = 4) f =
  let engine = Engine.create () in
  let m = Central.create engine ~procs () in
  let out = f (Central.spawn m) in
  let time = Central.run m in
  ( out,
    {
      time;
      messages = Central.messages_sent m;
      bytes = Central.bytes_sent m;
      waits = Central.wait_summaries m;
    } )

let run_inval ?(procs = 4) f =
  let engine = Engine.create () in
  let m = Inval.create engine ~procs () in
  let out = f (Inval.spawn m) in
  let time = Inval.run m in
  ( out,
    {
      time;
      messages = Inval.messages_sent m;
      bytes = Inval.bytes_sent m;
      waits = Inval.wait_summaries m;
    } )

let mean_wait stats name =
  match List.assoc_opt name stats.waits with
  | Some s -> Summary.mean s
  | None -> 0.
