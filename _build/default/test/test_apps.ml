(* Tests for the Section-5 applications: distributed runs must match the
   sequential references exactly, across propagation modes and memory
   systems; the deliberately weakened Fig. 3 variant must be able to
   diverge. *)

module Engine = Mc_sim.Engine
module Runtime = Mc_dsm.Runtime
module Config = Mc_dsm.Config
module Api = Mc_dsm.Api
module Latency = Mc_net.Latency
module Solver = Mc_apps.Linear_solver
module Em = Mc_apps.Em_field
module Sparse = Mc_apps.Sparse_spd
module Cholesky = Mc_apps.Cholesky
module Fixed = Mc_apps.Fixed

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let run_mixed ?(procs = 4) ?propagation ?await_label ?latency f =
  let engine = Engine.create () in
  let cfg =
    let base = Config.default ~procs in
    let base =
      match propagation with Some p -> { base with propagation = p } | None -> base
    in
    match await_label with
    | Some l -> { base with await_label = l }
    | None -> base
  in
  let rt = Runtime.create engine ?latency cfg in
  let out = f (Api.spawn rt) in
  let tend = Runtime.run rt in
  (out, tend)

(* ------------------------------------------------------------------ *)
(* Fixed-point arithmetic                                              *)
(* ------------------------------------------------------------------ *)

let test_fixed_roundtrip () =
  List.iter
    (fun v ->
      let enc = Fixed.of_float v in
      check "roundtrip within ulp" true (Float.abs (Fixed.to_float enc -. v) < 0.001))
    [ 0.; 1.; -1.; 3.14159; -200.5 ]

let test_fixed_ops () =
  let two = Fixed.of_float 2.0 and three = Fixed.of_float 3.0 in
  check_int "mul" (Fixed.of_float 6.0) (Fixed.mul two three);
  check_int "div" (Fixed.of_float 1.5) (Fixed.div three two);
  check_int "sqrt 4" (Fixed.of_float 2.0) (Fixed.sqrt (Fixed.of_float 4.0));
  check_int "isqrt" 10 (Fixed.isqrt 100);
  check_int "isqrt rounds down" 9 (Fixed.isqrt 99);
  check_int "isqrt 0" 0 (Fixed.isqrt 0);
  Alcotest.check_raises "negative sqrt"
    (Invalid_argument "Fixed.sqrt: negative argument") (fun () ->
      ignore (Fixed.sqrt (-1)))

let fixed_sqrt_property =
  QCheck.Test.make ~name:"fixed sqrt is within one ulp of float sqrt" ~count:200
    QCheck.(float_range 0.0 1000.0)
    (fun v ->
      let s = Fixed.sqrt (Fixed.of_float v) in
      Float.abs (Fixed.to_float s -. Float.sqrt v) < 0.01)

(* ------------------------------------------------------------------ *)
(* Linear solver                                                       *)
(* ------------------------------------------------------------------ *)

let problem = Solver.Problem.generate ~seed:42 ~n:10

let test_solver_reference_converges () =
  let r = Solver.reference ~variant:Solver.Barrier_pram problem in
  check "converged" true r.Solver.converged;
  check "residual small" true
    (Solver.residual problem r.Solver.x < Fixed.scale)

let test_solver_barrier_matches_reference () =
  let res, _ =
    run_mixed (fun spawn ->
        Solver.launch ~spawn ~procs:4 ~variant:Solver.Barrier_pram problem)
  in
  let r = Option.get !res in
  let expected = Solver.reference ~variant:Solver.Barrier_pram problem in
  check_int "iterations" expected.Solver.iterations r.Solver.iterations;
  Alcotest.(check (array int)) "exact solution" expected.Solver.x r.Solver.x;
  check "converged" true r.Solver.converged

let test_solver_handshake_matches_reference () =
  let res, _ =
    run_mixed (fun spawn ->
        Solver.launch ~spawn ~procs:3 ~variant:Solver.Handshake_causal problem)
  in
  let r = Option.get !res in
  let expected = Solver.reference ~variant:Solver.Handshake_causal problem in
  check_int "iterations" expected.Solver.iterations r.Solver.iterations;
  Alcotest.(check (array int)) "exact solution" expected.Solver.x r.Solver.x

let test_solver_two_procs () =
  (* one coordinator, one worker: degenerate but legal *)
  let res, _ =
    run_mixed ~procs:2 (fun spawn ->
        Solver.launch ~spawn ~procs:2 ~variant:Solver.Barrier_pram problem)
  in
  let r = Option.get !res in
  let expected = Solver.reference ~variant:Solver.Barrier_pram problem in
  Alcotest.(check (array int)) "exact solution" expected.Solver.x r.Solver.x

let test_solver_handshake_pram_diverges_under_adverse_latency () =
  (* coordinator close to every worker, workers far from each other: the
     handshake completes before direct worker-to-worker updates land, so
     PRAM reads of the estimate are stale (Section 5.1's warning) *)
  let n_nodes = 4 in
  let lat = Array.make_matrix n_nodes n_nodes 2000. in
  for i = 0 to n_nodes - 1 do
    lat.(i).(i) <- 0.;
    lat.(i).(0) <- 5.;
    lat.(0).(i) <- 5.
  done;
  let latency = Latency.matrix lat in
  (* the fully weakened variant also uses the paper's PRAM await (a
     busy-wait of PRAM reads); a causal-gated await would reimpose the
     full causal closure and mask the staleness *)
  let res, _ =
    run_mixed ~procs:n_nodes ~latency ~await_label:Mc_history.Op.PRAM
      (fun spawn ->
        Solver.launch ~spawn ~procs:n_nodes ~variant:Solver.Handshake_pram
          ~max_iters:30 problem)
  in
  let r = Option.get !res in
  let expected = Solver.reference ~variant:Solver.Handshake_causal ~max_iters:30 problem in
  check "stale reads change the computation" true (r.Solver.x <> expected.Solver.x);
  (* while the causal variant under the same latencies stays exact *)
  let res, _ =
    run_mixed ~procs:n_nodes ~latency (fun spawn ->
        Solver.launch ~spawn ~procs:n_nodes ~variant:Solver.Handshake_causal
          ~max_iters:30 problem)
  in
  let r = Option.get !res in
  Alcotest.(check (array int)) "causal stays exact" expected.Solver.x r.Solver.x

let test_solver_on_sc_central () =
  let engine = Engine.create () in
  let m = Mc_baselines.Sc_central.create engine ~procs:3 () in
  let res =
    Solver.launch ~spawn:(Mc_baselines.Sc_central.spawn m) ~procs:3
      ~variant:Solver.Barrier_pram problem
  in
  ignore (Mc_baselines.Sc_central.run m);
  let r = Option.get !res in
  let expected = Solver.reference ~variant:Solver.Barrier_pram problem in
  Alcotest.(check (array int)) "SC central agrees" expected.Solver.x r.Solver.x

(* ------------------------------------------------------------------ *)
(* EM field                                                            *)
(* ------------------------------------------------------------------ *)

let em_params = { Em.rows = 12; cols = 6; steps = 5; seed = 5 }

let test_em_matches_reference () =
  List.iter
    (fun procs ->
      let res, _ =
        run_mixed ~procs (fun spawn -> Em.launch ~spawn ~procs em_params)
      in
      let r = Option.get !res in
      let expected = Em.reference ~procs em_params in
      check_int
        (Printf.sprintf "checksum with %d procs" procs)
        expected.Em.checksum r.Em.checksum;
      check_int "energy" expected.Em.energy r.Em.energy)
    [ 1; 2; 3; 4 ]

let test_em_nontrivial () =
  let r = Em.reference ~procs:2 em_params in
  check "field evolved" true (r.Em.energy > 0)

let test_em_causal_label_also_works () =
  let res, _ =
    run_mixed ~procs:3 (fun spawn ->
        Em.launch ~spawn ~procs:3 ~label:Mc_history.Op.Causal em_params)
  in
  let r = Option.get !res in
  check_int "causal label agrees" (Em.reference ~procs:3 em_params).Em.checksum
    r.Em.checksum

let test_em_on_sc_invalidate () =
  let engine = Engine.create () in
  let m = Mc_baselines.Sc_invalidate.create engine ~procs:3 () in
  let res = Em.launch ~spawn:(Mc_baselines.Sc_invalidate.spawn m) ~procs:3 em_params in
  ignore (Mc_baselines.Sc_invalidate.run m);
  let r = Option.get !res in
  check_int "invalidate protocol agrees" (Em.reference ~procs:3 em_params).Em.checksum
    r.Em.checksum

(* ------------------------------------------------------------------ *)
(* Sparse matrices and Cholesky                                        *)
(* ------------------------------------------------------------------ *)

let test_symbolic_factorization () =
  let m = Sparse.generate ~seed:1 ~n:12 ~density:0.2 in
  check "pattern includes diagonal" true
    (List.for_all (fun j -> List.mem j (Sparse.column m j)) (List.init 12 Fun.id));
  check "nnz at least diagonal" true (Sparse.nnz m >= 12);
  (* elimination tree parents point upward *)
  Array.iteri
    (fun k p -> check "parent above child" true (p = -1 || p > k))
    m.Sparse.parent;
  (* deps counts match the pattern *)
  Array.iteri
    (fun j d ->
      let count = ref 0 in
      for k = 0 to j - 1 do
        if m.Sparse.pattern.(j).(k) then incr count
      done;
      check_int "deps" !count d)
    m.Sparse.deps

let test_reference_factor_correct () =
  let m = Sparse.generate ~seed:2 ~n:14 ~density:0.3 in
  let l = Sparse.factor_reference m in
  (* fixed-point rounding error grows with n; stay well under one unit *)
  check "factor reproduces the matrix" true
    (Sparse.verify m l < Fixed.scale / 16)

let test_arrow_shape () =
  let m = Sparse.arrow ~seed:3 ~n:10 ~bandwidth:2 in
  check "last row dense" true
    (List.for_all (fun j -> m.Sparse.pattern.(9).(j)) (List.init 9 Fun.id));
  let l = Sparse.factor_reference m in
  check "arrow factors" true (Sparse.verify m l < Fixed.scale / 16)

let cholesky_matches ~variant ~procs m =
  let lref = Sparse.factor_reference m in
  let res, _ =
    run_mixed ~procs (fun spawn -> Cholesky.launch ~spawn ~procs ~variant m)
  in
  let r = Option.get !res in
  r.Cholesky.l = lref

let test_cholesky_lock_based () =
  let m = Sparse.generate ~seed:11 ~n:14 ~density:0.25 in
  check "matches reference" true
    (cholesky_matches ~variant:Cholesky.Lock_based ~procs:4 m)

let test_cholesky_counters () =
  let m = Sparse.generate ~seed:11 ~n:14 ~density:0.25 in
  check "matches reference" true
    (cholesky_matches ~variant:Cholesky.Counter_based ~procs:4 m)

let test_cholesky_all_propagation_modes () =
  let m = Sparse.generate ~seed:13 ~n:10 ~density:0.3 in
  let lref = Sparse.factor_reference m in
  List.iter
    (fun propagation ->
      let res, _ =
        run_mixed ~procs:3 ~propagation (fun spawn ->
            Cholesky.launch ~spawn ~procs:3 ~variant:Cholesky.Lock_based m)
      in
      let r = Option.get !res in
      check
        (Printf.sprintf "lock-based under %s"
           (Config.propagation_to_string propagation))
        true
        (r.Cholesky.l = lref))
    [ Config.Eager; Config.Lazy; Config.Demand ]

let test_cholesky_single_proc () =
  let m = Sparse.generate ~seed:17 ~n:8 ~density:0.4 in
  check "single process" true (cholesky_matches ~variant:Cholesky.Counter_based ~procs:1 m)

let test_cholesky_counter_faster_and_leaner () =
  let m = Sparse.generate ~seed:19 ~n:16 ~density:0.3 in
  let run variant =
    let engine = Engine.create () in
    let rt = Runtime.create engine (Config.default ~procs:4) in
    let res = Cholesky.launch ~spawn:(Api.spawn rt) ~procs:4 ~variant m in
    let tend = Runtime.run rt in
    ignore (Option.get !res);
    (tend, Mc_net.Network.messages_sent (Runtime.network rt))
  in
  let t_lock, m_lock = run Cholesky.Lock_based in
  let t_ctr, m_ctr = run Cholesky.Counter_based in
  check "counter variant is faster (Sec. 7 claim)" true (t_ctr < t_lock);
  check "counter variant sends fewer messages" true (m_ctr < m_lock)

(* ------------------------------------------------------------------ *)
(* Pipeline (producer/consumer)                                        *)
(* ------------------------------------------------------------------ *)

let pipe_params = { Mc_apps.Pipeline.items = 25; slots = 3; work = 2.0 }

let run_pipeline ~procs ~impl =
  let res, time =
    run_mixed ~procs (fun spawn ->
        Mc_apps.Pipeline.launch ~spawn ~procs ~impl pipe_params)
  in
  (Option.get !res, time)

let test_pipeline_awaits_exact () =
  List.iter
    (fun procs ->
      let expected = Mc_apps.Pipeline.reference ~procs pipe_params in
      let r, _ = run_pipeline ~procs ~impl:Mc_apps.Pipeline.Await_based in
      check_int
        (Printf.sprintf "checksum with %d stages" procs)
        expected.Mc_apps.Pipeline.checksum r.Mc_apps.Pipeline.checksum;
      check_int "all delivered" pipe_params.Mc_apps.Pipeline.items
        r.Mc_apps.Pipeline.delivered)
    [ 2; 3; 5 ]

let test_pipeline_locks_exact () =
  let procs = 3 in
  let expected = Mc_apps.Pipeline.reference ~procs pipe_params in
  let r, _ = run_pipeline ~procs ~impl:Mc_apps.Pipeline.Lock_based in
  check_int "checksum" expected.Mc_apps.Pipeline.checksum
    r.Mc_apps.Pipeline.checksum

let test_pipeline_awaits_beat_locks () =
  let procs = 3 in
  let _, t_await = run_pipeline ~procs ~impl:Mc_apps.Pipeline.Await_based in
  let _, t_lock = run_pipeline ~procs ~impl:Mc_apps.Pipeline.Lock_based in
  check "awaits faster than polling locks (Sec. 1 claim)" true (t_await < t_lock)

let test_pipeline_single_slot_window () =
  (* fully synchronous hand-off: the tightest flow control still works *)
  let procs = 3 in
  let params = { Mc_apps.Pipeline.items = 10; slots = 1; work = 1.0 } in
  let expected = Mc_apps.Pipeline.reference ~procs params in
  let res, _ =
    run_mixed ~procs (fun spawn ->
        Mc_apps.Pipeline.launch ~spawn ~procs
          ~impl:Mc_apps.Pipeline.Await_based params)
  in
  let r = Option.get !res in
  check_int "checksum" expected.Mc_apps.Pipeline.checksum
    r.Mc_apps.Pipeline.checksum

let () =
  let qt = QCheck_alcotest.to_alcotest in
  Alcotest.run "mc_apps"
    [
      ( "fixed",
        [
          Alcotest.test_case "roundtrip" `Quick test_fixed_roundtrip;
          Alcotest.test_case "operations" `Quick test_fixed_ops;
          qt fixed_sqrt_property;
        ] );
      ( "linear_solver",
        [
          Alcotest.test_case "reference converges" `Quick test_solver_reference_converges;
          Alcotest.test_case "Fig. 2 matches reference" `Quick
            test_solver_barrier_matches_reference;
          Alcotest.test_case "Fig. 3 matches reference" `Quick
            test_solver_handshake_matches_reference;
          Alcotest.test_case "two processes" `Quick test_solver_two_procs;
          Alcotest.test_case "weakened Fig. 3 diverges" `Quick
            test_solver_handshake_pram_diverges_under_adverse_latency;
          Alcotest.test_case "runs on SC central" `Quick test_solver_on_sc_central;
        ] );
      ( "em_field",
        [
          Alcotest.test_case "matches reference (1-4 procs)" `Quick
            test_em_matches_reference;
          Alcotest.test_case "nontrivial field" `Quick test_em_nontrivial;
          Alcotest.test_case "causal label agrees" `Quick test_em_causal_label_also_works;
          Alcotest.test_case "runs on SC invalidate" `Quick test_em_on_sc_invalidate;
        ] );
      ( "sparse",
        [
          Alcotest.test_case "symbolic factorization" `Quick test_symbolic_factorization;
          Alcotest.test_case "reference factor" `Quick test_reference_factor_correct;
          Alcotest.test_case "arrowhead problems" `Quick test_arrow_shape;
        ] );
      ( "pipeline",
        [
          Alcotest.test_case "awaits exact (2-5 stages)" `Quick
            test_pipeline_awaits_exact;
          Alcotest.test_case "locks exact" `Quick test_pipeline_locks_exact;
          Alcotest.test_case "awaits beat polling locks" `Quick
            test_pipeline_awaits_beat_locks;
          Alcotest.test_case "single-slot window" `Quick
            test_pipeline_single_slot_window;
        ] );
      ( "cholesky",
        [
          Alcotest.test_case "lock-based (Fig. 5)" `Quick test_cholesky_lock_based;
          Alcotest.test_case "counter objects" `Quick test_cholesky_counters;
          Alcotest.test_case "all propagation modes" `Quick
            test_cholesky_all_propagation_modes;
          Alcotest.test_case "single process" `Quick test_cholesky_single_proc;
          Alcotest.test_case "counters beat locks" `Quick
            test_cholesky_counter_faster_and_leaner;
        ] );
    ]
