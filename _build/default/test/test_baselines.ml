(* Tests for the sequentially consistent baselines: the central server
   and the directory-based write-invalidate protocol. *)

module Engine = Mc_sim.Engine
module Central = Mc_baselines.Sc_central
module Inval = Mc_baselines.Sc_invalidate
module Op = Mc_history.Op
module Sequential = Mc_consistency.Sequential

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* run the same little program on either baseline through Api.t *)
let dekker_program spawn =
  let r0 = ref (-1) and r1 = ref (-1) in
  spawn 0 (fun (api : Mc_dsm.Api.t) ->
      api.write "x" 1;
      r0 := api.read "y");
  spawn 1 (fun (api : Mc_dsm.Api.t) ->
      api.write "y" 1;
      r1 := api.read "x");
  (r0, r1)

let test_central_basic () =
  let e = Engine.create () in
  let m = Central.create e ~record:true ~procs:2 () in
  let seen = ref (-1) in
  Central.spawn m 0 (fun api ->
      api.write "x" 42;
      api.barrier ());
  Central.spawn m 1 (fun api ->
      api.barrier ();
      seen := api.read "x");
  ignore (Central.run m);
  check_int "visible after barrier" 42 !seen;
  check_int "server memory" 42 (Central.peek m "x");
  check "round trips happened" true (Central.messages_sent m >= 6);
  let h = Central.history m in
  check "history is SC" true
    (Sequential.is_sequentially_consistent h = Sequential.Consistent)

let test_central_never_dekker_violates () =
  (* blocking round trips: at least one process must see the other's
     write, and the recorded history must be SC *)
  let e = Engine.create () in
  let m = Central.create e ~record:true ~procs:2 () in
  let r0, r1 = dekker_program (Central.spawn m) in
  ignore (Central.run m);
  check "SC forbids 0/0" false (!r0 = 0 && !r1 = 0);
  check "history checks as SC" true
    (Sequential.is_sequentially_consistent (Central.history m)
    = Sequential.Consistent)

let test_central_sync_ops () =
  let e = Engine.create () in
  let m = Central.create e ~procs:3 () in
  let active = ref 0 and max_active = ref 0 and order = ref [] in
  for i = 0 to 2 do
    Central.spawn m i (fun api ->
        api.write_lock "m";
        incr active;
        max_active := max !max_active !active;
        api.compute 20.;
        decr active;
        order := i :: !order;
        api.write_unlock "m")
  done;
  ignore (Central.run m);
  check_int "mutual exclusion" 1 !max_active;
  check_int "all entered" 3 (List.length !order)

let test_central_await_and_counters () =
  let e = Engine.create () in
  let m = Central.create e ~procs:2 () in
  let final = ref (-1) in
  Central.spawn m 0 (fun api ->
      api.init_counter "c" 2;
      api.barrier ();
      api.decrement "c" ~amount:1;
      api.await "c" 0;
      final := api.read "c");
  Central.spawn m 1 (fun api ->
      api.barrier ();
      api.decrement "c" ~amount:1);
  ignore (Central.run m);
  check_int "await fired on zero" 0 !final

let test_invalidate_basic_coherence () =
  let e = Engine.create () in
  let m = Inval.create e ~record:true ~procs:3 () in
  let seen = ref (-1) in
  Inval.spawn m 0 (fun api ->
      api.write "x" 5;
      api.barrier ());
  Inval.spawn m 1 (fun api ->
      api.barrier ();
      seen := api.read "x");
  Inval.spawn m 2 (fun api -> api.barrier ());
  ignore (Inval.run m);
  check_int "coherent read" 5 !seen;
  check_int "peek" 5 (Inval.peek m "x");
  check "history is SC" true
    (Sequential.is_sequentially_consistent (Inval.history m)
    = Sequential.Consistent)

let test_invalidate_cache_hits () =
  let e = Engine.create () in
  let m = Inval.create e ~procs:2 () in
  Inval.spawn m 0 (fun api ->
      api.write "x" 1;
      api.barrier ());
  Inval.spawn m 1 (fun api ->
      api.barrier ();
      for _ = 1 to 10 do
        ignore (api.read "x")
      done);
  ignore (Inval.run m);
  check "repeated reads mostly hit" true (Inval.cache_hits m >= 9);
  check "first read missed" true (Inval.cache_misses m >= 1)

let test_invalidate_write_invalidates_readers () =
  let e = Engine.create () in
  let m = Inval.create e ~procs:2 () in
  let v1 = ref (-1) and v2 = ref (-1) in
  Inval.spawn m 0 (fun api ->
      api.write "x" 1;
      api.barrier ();
      api.barrier ();
      (* p1 cached x; now overwrite: p1's next read must see 2 *)
      api.write "x" 2;
      api.barrier ());
  Inval.spawn m 1 (fun api ->
      api.barrier ();
      v1 := api.read "x";
      api.barrier ();
      api.barrier ();
      v2 := api.read "x");
  ignore (Inval.run m);
  check_int "first value" 1 !v1;
  check_int "invalidated, fresh value" 2 !v2

let test_invalidate_dekker () =
  let e = Engine.create () in
  let m = Inval.create e ~record:true ~procs:2 () in
  let r0, r1 = dekker_program (Inval.spawn m) in
  ignore (Inval.run m);
  check "SC forbids 0/0" false (!r0 = 0 && !r1 = 0);
  check "history checks as SC" true
    (Sequential.is_sequentially_consistent (Inval.history m)
    = Sequential.Consistent)

let test_invalidate_ownership_migration () =
  let e = Engine.create () in
  let m = Inval.create e ~procs:3 () in
  let total = ref 0 in
  (* each process increments a shared counter under a lock: ownership of
     the line migrates between writers *)
  for i = 0 to 2 do
    Inval.spawn m i (fun api ->
        for _ = 1 to 3 do
          api.write_lock "m";
          let v = api.read "acc" in
          api.write "acc" (v + 1);
          api.write_unlock "m"
        done;
        api.barrier ();
        if i = 0 then total := api.read "acc")
  done;
  ignore (Inval.run m);
  check_int "nine increments" 9 !total

let test_invalidate_decrement_atomic () =
  let e = Engine.create () in
  let m = Inval.create e ~procs:3 () in
  let final = ref 99 in
  for i = 0 to 2 do
    Inval.spawn m i (fun api ->
        if i = 0 then api.init_counter "c" 9;
        api.barrier ();
        for _ = 1 to 3 do
          api.decrement "c" ~amount:1
        done;
        api.await "c" 0;
        if i = 0 then final := api.read "c")
  done;
  ignore (Inval.run m);
  check_int "exclusive-line decrements are atomic" 0 !final

let test_central_vs_invalidate_read_cost () =
  (* read-heavy sharing: the invalidate protocol's cached reads beat the
     central server's per-read round trips *)
  let run_one create_run =
    create_run (fun spawn ->
        spawn 0 (fun (api : Mc_dsm.Api.t) ->
            api.write "x" 1;
            api.barrier ();
            api.barrier ());
        spawn 1 (fun (api : Mc_dsm.Api.t) ->
            api.barrier ();
            for _ = 1 to 50 do
              ignore (api.read "x")
            done;
            api.barrier ()))
  in
  let central_time =
    run_one (fun body ->
        let e = Engine.create () in
        let m = Central.create e ~procs:2 () in
        body (Central.spawn m);
        Central.run m)
  in
  let inval_time =
    run_one (fun body ->
        let e = Engine.create () in
        let m = Inval.create e ~procs:2 () in
        body (Inval.spawn m);
        Inval.run m)
  in
  check "caching wins on read-heavy workloads" true (inval_time < central_time)

(* randomized programs on both baselines: recorded histories are always
   sequentially consistent (they are linearizable memories) *)
let test_random_programs_are_sc () =
  for seed = 1 to 8 do
    let rng = Mc_util.Rng.make (9000 + seed) in
    let procs = 2 in
    let next_value = ref 0 in
    let plans =
      List.init procs (fun _ ->
          List.init 5 (fun _ ->
              let loc = Mc_util.Rng.pick rng [| "ra"; "rb" |] in
              if Mc_util.Rng.bool rng then begin
                incr next_value;
                `W (loc, !next_value)
              end
              else `R loc))
    in
    let run_plan (api : Mc_dsm.Api.t) plan =
      List.iter
        (function
          | `W (loc, v) -> api.write loc v
          | `R loc -> ignore (api.read loc))
        plan
    in
    let check_one name history =
      match Sequential.is_sequentially_consistent ~max_states:100_000 history with
      | Sequential.Consistent | Sequential.Unknown -> ()
      | Sequential.Inconsistent ->
        Alcotest.failf "%s produced a non-SC history (seed %d)" name seed
    in
    let e = Engine.create () in
    let m = Central.create e ~record:true ~procs () in
    List.iteri (fun i plan -> Central.spawn m i (fun api -> run_plan api plan)) plans;
    ignore (Central.run m);
    check_one "central" (Central.history m);
    let e = Engine.create () in
    let m = Inval.create e ~record:true ~procs () in
    List.iteri (fun i plan -> Inval.spawn m i (fun api -> run_plan api plan)) plans;
    ignore (Inval.run m);
    check_one "invalidate" (Inval.history m)
  done

let () =
  Alcotest.run "mc_baselines"
    [
      ( "sc_central",
        [
          Alcotest.test_case "basic round trips" `Quick test_central_basic;
          Alcotest.test_case "no dekker anomaly" `Quick test_central_never_dekker_violates;
          Alcotest.test_case "locks" `Quick test_central_sync_ops;
          Alcotest.test_case "awaits and counters" `Quick test_central_await_and_counters;
        ] );
      ( "sc_invalidate",
        [
          Alcotest.test_case "coherence" `Quick test_invalidate_basic_coherence;
          Alcotest.test_case "cache hits" `Quick test_invalidate_cache_hits;
          Alcotest.test_case "invalidation on write" `Quick
            test_invalidate_write_invalidates_readers;
          Alcotest.test_case "no dekker anomaly" `Quick test_invalidate_dekker;
          Alcotest.test_case "ownership migration" `Quick
            test_invalidate_ownership_migration;
          Alcotest.test_case "atomic decrements" `Quick test_invalidate_decrement_atomic;
          Alcotest.test_case "caching beats central reads" `Quick
            test_central_vs_invalidate_read_cost;
        ] );
      ( "linearizability",
        [
          Alcotest.test_case "random programs are SC" `Slow
            test_random_programs_are_sc;
        ] );
    ]
